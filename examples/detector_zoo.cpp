// Detector zoo: every drift detector in the library on the same stream —
// all driven through core::Pipeline via drift::DetectorSpec. No detector
// is hand-wired; each row of the table is the same program with a
// different `config.detector.kind`.
//
// Part 1 runs the nine detector kinds in detect-only mode and prints when
// each fires, what signal it consumes, and how much state it holds — a
// practical menu for picking a detector. Part 2 re-runs the proposed
// detector under each recovery policy to show what the response choice is
// worth in post-drift accuracy.
//
//   $ ./example_detector_zoo
#include <cstdio>
#include <string>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/drift/detector_factory.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

namespace {

core::PipelineConfig base_config(std::size_t dim) {
  core::PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = dim;
  config.hidden_dim = 22;
  config.window_size = 100;
  config.detector_initial_count = 0;
  config.reconstruction = {20, 120, 500};
  return config;
}

drift::DetectorSpec spec_for(drift::DetectorKind kind) {
  drift::DetectorSpec spec;
  spec.kind = kind;
  spec.quanttree.num_bins = 32;
  spec.quanttree.batch_size = 480;
  spec.quanttree.alpha = 0.001;
  spec.spll.num_clusters = 2;
  spec.spll.batch_size = 480;
  spec.page_hinkley.lambda = 10.0;
  spec.page_hinkley.use_anomaly_score = true;
  spec.windows = {50, 100, 200};
  return spec;
}

const char* signal_for(drift::DetectorKind kind) {
  switch (kind) {
    case drift::DetectorKind::kCentroid:
      return "features (labels from model)";
    case drift::DetectorKind::kMultiWindow:
      return "features (3-window vote)";
    case drift::DetectorKind::kQuantTree:
    case drift::DetectorKind::kSpll:
      return "features (batched)";
    case drift::DetectorKind::kDdm:
    case drift::DetectorKind::kAdwin:
      return "0/1 errors (needs labels)";
    case drift::DetectorKind::kEddm:
      return "error gaps (needs labels)";
    case drift::DetectorKind::kKswin:
      return "anomaly scores (windowed)";
    case drift::DetectorKind::kPageHinkley:
      return "anomaly scores";
  }
  return "?";
}

}  // namespace

int main() {
  // Stream: NSL-KDD-like, short version.
  data::NslKddLikeConfig data_config;
  data_config.train_size = 1500;
  data_config.test_size = 8000;
  data_config.drift_point = 3000;
  data::NslKddLike generator(data_config);
  util::Rng rng(9);
  const data::Dataset train = generator.training(rng);
  const data::Dataset stream = generator.test_stream(rng);
  const std::size_t drift_at = data_config.drift_point;

  // Part 1: every detector kind through the same pipeline, detect-only.
  util::Table table({"Detector", "Signal", "First firing", "Delay",
                     "False alarms", "State (kB)"});
  for (const drift::DetectorKind kind : drift::kAllDetectorKinds) {
    core::PipelineConfig config = base_config(train.dim());
    config.detector = spec_for(kind);
    config.recovery = core::RecoveryPolicy::kDetectOnly;
    core::Pipeline pipeline(config);
    pipeline.fit(train.x, train.labels);

    std::ptrdiff_t first_after = -1;
    std::size_t false_alarms = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      // The true label feeds only the error-rate detectors' mistake
      // stream; the model never sees it.
      const auto step = pipeline.process(stream.x.row(i), stream.labels[i]);
      if (step.drift_detected) {
        if (i < drift_at) {
          ++false_alarms;
        } else if (first_after < 0) {
          first_after = static_cast<std::ptrdiff_t>(i);
        }
      }
    }
    table.add_row(
        {std::string(pipeline.detector().name()),
         signal_for(kind),
         first_after < 0 ? "-" : std::to_string(first_after),
         first_after < 0 ? "-" : std::to_string(first_after -
                                                static_cast<std::ptrdiff_t>(
                                                    drift_at)),
         std::to_string(false_alarms),
         util::fmt(pipeline.detector().memory_bytes() / 1024.0, 1)});
  }
  std::printf("stream: %zu samples, drift at %zu\n\n%s\n", stream.size(),
              drift_at, table.str().c_str());
  std::printf("Notes: error-rate detectors (DDM/ADWIN) need ground-truth\n"
              "labels, which resource-limited deployments rarely have\n"
              "(paper Section 2.2.2); the proposed detector and the batch\n"
              "methods work from features alone.\n\n");

  // Part 2: the same detector, three drift responses.
  struct PolicyRow {
    core::RecoveryPolicy policy;
    const char* name;
  };
  const PolicyRow policies[] = {
      {core::RecoveryPolicy::kReconstruct, "reconstruct (Algorithms 2-4)"},
      {core::RecoveryPolicy::kResetRecalibrate, "reset + recalibrate"},
      {core::RecoveryPolicy::kDetectOnly, "detect only"},
  };
  util::Table recovery_table(
      {"Recovery policy", "Detections", "Tail accuracy (%)"});
  for (const PolicyRow& row : policies) {
    core::PipelineConfig config = base_config(train.dim());
    config.recovery = row.policy;
    core::Pipeline pipeline(config);
    pipeline.fit(train.x, train.labels);

    std::size_t hits = 0;
    const std::size_t tail_start = stream.size() * 3 / 4;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const auto step = pipeline.process(stream.x.row(i));
      if (i >= tail_start &&
          static_cast<int>(step.prediction.label) == stream.labels[i]) {
        ++hits;
      }
    }
    recovery_table.add_row(
        {row.name, std::to_string(pipeline.stats().drifts),
         util::fmt(100.0 * static_cast<double>(hits) /
                       static_cast<double>(stream.size() - tail_start),
                   1)});
  }
  std::printf("proposed detector under each recovery policy (accuracy over\n"
              "the final quarter of the stream, after the drift):\n\n%s\n",
              recovery_table.str().c_str());
  return 0;
}
