// Detector zoo: every drift detector in the library on the same stream.
//
// Runs the proposed centroid detector, QuantTree, SPLL, DDM, ADWIN,
// Page–Hinkley and the multi-window ensemble against one sudden-drift
// stream and prints when each fires, what signal it consumes, and how much
// state it holds. A practical menu for picking a detector.
//
//   $ ./example_detector_zoo
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/drift/adwin.hpp"
#include "edgedrift/drift/centroid_detector.hpp"
#include "edgedrift/drift/ddm.hpp"
#include "edgedrift/drift/eddm.hpp"
#include "edgedrift/drift/kswin.hpp"
#include "edgedrift/drift/multi_window.hpp"
#include "edgedrift/drift/page_hinkley.hpp"
#include "edgedrift/drift/quanttree.hpp"
#include "edgedrift/drift/spll.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

int main() {
  // Stream: NSL-KDD-like, short version.
  data::NslKddLikeConfig data_config;
  data_config.train_size = 1500;
  data_config.test_size = 8000;
  data_config.drift_point = 3000;
  data::NslKddLike generator(data_config);
  util::Rng rng(9);
  const data::Dataset train = generator.training(rng);
  const data::Dataset stream = generator.test_stream(rng);
  const std::size_t drift_at = data_config.drift_point;

  // One discriminative model shared by every detector (so error-rate
  // detectors get a mistake stream and score-based ones get anomaly
  // scores).
  util::Rng model_rng(1);
  auto projection = oselm::make_projection(
      train.dim(), 22, oselm::Activation::kSigmoid, model_rng);
  model::MultiInstanceModel model(2, projection, 1e-2);
  model.init_train(train.x, train.labels);

  // Detector lineup.
  struct Entry {
    std::unique_ptr<drift::Detector> detector;
    const char* signal;
  };
  std::vector<Entry> zoo;

  {
    drift::CentroidDetectorConfig config;
    config.num_labels = 2;
    config.dim = train.dim();
    config.window_size = 100;
    config.theta_error = 0.0;  // Open gate: pure distance behaviour.
    config.initial_count = 0;
    auto det = std::make_unique<drift::CentroidDetector>(config);
    det->calibrate(train.x, train.labels);
    zoo.push_back({std::move(det), "features (labels from model)"});
  }
  {
    drift::QuantTreeConfig config;
    config.num_bins = 32;
    config.batch_size = 480;
    config.alpha = 0.001;
    auto det = std::make_unique<drift::QuantTree>(config);
    det->fit(train.x);
    zoo.push_back({std::move(det), "features (batched)"});
  }
  {
    drift::SpllConfig config;
    config.num_clusters = 2;
    config.batch_size = 480;
    auto det = std::make_unique<drift::Spll>(config);
    det->fit(train.x);
    zoo.push_back({std::move(det), "features (batched)"});
  }
  zoo.push_back({std::make_unique<drift::Ddm>(), "0/1 errors (needs labels)"});
  zoo.push_back(
      {std::make_unique<drift::Eddm>(), "error gaps (needs labels)"});
  zoo.push_back(
      {std::make_unique<drift::Adwin>(), "0/1 errors (needs labels)"});
  zoo.push_back(
      {std::make_unique<drift::Kswin>(), "anomaly scores (windowed)"});
  {
    drift::PageHinkleyConfig config;
    config.lambda = 10.0;
    config.use_anomaly_score = true;
    zoo.push_back(
        {std::make_unique<drift::PageHinkley>(config), "anomaly scores"});
  }
  {
    drift::CentroidDetectorConfig base;
    base.num_labels = 2;
    base.dim = train.dim();
    base.theta_error = 0.0;
    base.initial_count = 0;
    const std::vector<std::size_t> windows{50, 100, 200};
    auto det = std::make_unique<drift::MultiWindowDetector>(
        base, windows, drift::VotePolicy::kMajority);
    det->calibrate(train.x, train.labels);
    zoo.push_back({std::move(det), "features (3-window vote)"});
  }

  // Feed the stream to every detector.
  util::Table table({"Detector", "Signal", "First firing", "Delay",
                     "False alarms", "State (kB)"});
  for (auto& entry : zoo) {
    std::ptrdiff_t first_after = -1;
    std::size_t false_alarms = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const auto pred = model.predict(stream.x.row(i));
      drift::Observation obs;
      obs.x = stream.x.row(i);
      obs.predicted_label = static_cast<int>(pred.label);
      obs.anomaly_score = pred.score;
      obs.error = static_cast<int>(pred.label) != stream.labels[i];
      if (entry.detector->observe(obs).drift) {
        if (i < drift_at) {
          ++false_alarms;
        } else if (first_after < 0) {
          first_after = static_cast<std::ptrdiff_t>(i);
        }
      }
    }
    table.add_row(
        {std::string(entry.detector->name()), entry.signal,
         first_after < 0 ? "-" : std::to_string(first_after),
         first_after < 0 ? "-" : std::to_string(first_after -
                                                static_cast<std::ptrdiff_t>(
                                                    drift_at)),
         std::to_string(false_alarms),
         util::fmt(entry.detector->memory_bytes() / 1024.0, 1)});
  }
  std::printf("stream: %zu samples, drift at %zu\n\n%s\n", stream.size(),
              drift_at, table.str().c_str());
  std::printf("Notes: error-rate detectors (DDM/ADWIN) need ground-truth\n"
              "labels, which resource-limited deployments rarely have\n"
              "(paper Section 2.2.2); the proposed detector and the batch\n"
              "methods work from features alone.\n");
  return 0;
}
