// Predictive-maintenance scenario (the paper's cooling-fan evaluation,
// Section 4.1.2).
//
// A vibration sensor on a cooling fan produces 511-bin frequency spectra.
// The device learns the healthy fan's spectral signature; when a blade is
// damaged (holes / chipped edge) the spectrum changes and the detector
// flags the drift. The example runs all three drift schedules the paper
// constructs — sudden, gradual, reoccurring — and shows how the window
// size changes what is detected.
//
//   $ ./example_fan_monitoring
#include <cstdio>
#include <string>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

namespace {

core::PipelineConfig fan_config(std::size_t window) {
  core::PipelineConfig config;
  config.num_labels = 1;  // One healthy pattern; anomaly-style monitoring.
  config.input_dim = data::CoolingFanLike::kDim;
  config.hidden_dim = 22;  // Paper: 511-22-511.
  config.window_size = window;
  config.detector_initial_count = 0;
  config.reconstruction = {5, 30, 120};
  return config;
}

}  // namespace

int main() {
  data::CoolingFanLike generator;
  util::Rng rng(3);
  const data::Dataset train = generator.training(rng);
  const std::size_t drift_at = generator.config().drift_point;

  std::printf("cooling-fan monitoring: %zu healthy training spectra, "
              "%zu-bin spectrum, drift at sample %zu\n\n",
              train.size(), train.dim(), drift_at);

  util::Table table({"Stream", "Window", "First detection", "Comment"});
  for (const std::size_t window : {10ul, 50ul, 150ul}) {
    int stream_idx = 0;
    for (const auto* kind : {"sudden (holes)", "gradual (chipped)",
                             "reoccurring (chipped burst)"}) {
      util::Rng stream_rng(50 + stream_idx);
      data::Dataset stream;
      if (stream_idx == 0) {
        stream = generator.sudden_stream(stream_rng);
      } else if (stream_idx == 1) {
        stream = generator.gradual_stream(stream_rng);
      } else {
        stream = generator.reoccurring_stream(stream_rng);
      }
      ++stream_idx;

      core::Pipeline pipeline(fan_config(window));
      pipeline.fit(train.x, train.labels);

      std::ptrdiff_t first = -1;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        const auto step = pipeline.process(stream.x.row(i));
        if (step.drift_detected && first < 0) {
          first = static_cast<std::ptrdiff_t>(i);
        }
      }

      std::string comment;
      if (first < 0) {
        comment = std::string(kind).find("reoccurring") != std::string::npos
                      ? "transient ignored (often desired)"
                      : "missed";
      } else if (static_cast<std::size_t>(first) >= drift_at) {
        comment = "delay " + std::to_string(first - drift_at);
      } else {
        comment = "false alarm";
      }
      table.add_row({kind, "W=" + std::to_string(window),
                     first < 0 ? "-" : std::to_string(first), comment});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Pick the window for the failure mode you care about: small\n"
              "windows catch sudden damage fastest; larger windows ride\n"
              "through short transients (paper Section 5.2).\n");
  return 0;
}
