// Sensor-to-decision walkthrough: raw accelerometer waveform -> windowed
// FFT spectrum -> OS-ELM anomaly model -> sequential drift detection ->
// on-device retraining.
//
// This is the full signal chain the paper's cooling-fan deployment implies:
// the published dataset contains precomputed 511-bin spectra, and this
// example shows where they come from and that the pipeline behaves
// identically when fed from a live (simulated) sensor.
//
//   $ ./example_vibration_sensor
#include <cstdio>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/dsp/spectrum.hpp"
#include "edgedrift/util/rng.hpp"

using namespace edgedrift;

int main() {
  util::Rng rng(11);
  dsp::SpectrumExtractor extractor;  // 1024-sample Hann frames -> 511 bins.
  std::printf("sensor: %zu-sample frames at %.0f Hz -> %zu-bin spectra\n",
              extractor.frame_size(), dsp::FanWaveform::kSampleRate,
              extractor.output_dim());

  // Phase 1: learn the healthy fan from 200 frames.
  dsp::FanWaveform healthy(data::FanCondition::kNormal,
                           data::FanEnvironment::kSilent);
  std::vector<double> frame(extractor.frame_size());
  linalg::Matrix train(200, extractor.output_dim());
  std::vector<int> labels(200, 0);
  for (std::size_t i = 0; i < train.rows(); ++i) {
    healthy.synthesize(rng, frame);
    extractor.extract(frame, train.row(i));
  }

  core::PipelineConfig config;
  config.num_labels = 1;
  config.input_dim = extractor.output_dim();
  config.hidden_dim = 22;
  config.window_size = 25;
  config.detector_initial_count = 0;
  config.reconstruction = {5, 25, 100};
  core::Pipeline pipeline(config);
  pipeline.fit(train, labels);
  std::printf("trained on %zu healthy frames (theta_error=%.4f, "
              "theta_drift=%.2f)\n\n",
              train.rows(), pipeline.theta_error(),
              pipeline.centroid_detector()->theta_drift());

  // Phase 2: stream 150 healthy frames, then the blades take damage.
  dsp::FanWaveform damaged(data::FanCondition::kHoles,
                           data::FanEnvironment::kSilent);
  std::vector<double> spectrum(extractor.output_dim());
  const std::size_t damage_at = 150;
  for (std::size_t i = 0; i < 500; ++i) {
    auto& sensor = i < damage_at ? healthy : damaged;
    sensor.synthesize(rng, frame);
    extractor.extract(frame, spectrum);
    const auto step = pipeline.process(spectrum);
    if (step.drift_detected) {
      std::printf("frame %zu: DRIFT — abnormal vibration signature "
                  "(damage began at frame %zu; reaction delay %zu "
                  "frames)\n",
                  i, damage_at, i - damage_at);
      // Drift localization: which frequency bins moved the most. For the
      // "holes" damage this should point at the blade-pass region
      // (~350 Hz) and its sidebands (~300/400 Hz).
      const auto bins = pipeline.centroid_detector()->top_drifted_dimensions(5);
      std::printf("  most-displaced frequency bins:");
      for (const std::size_t b : bins) std::printf(" %zu Hz", b + 1);
      std::printf("\n");
    }
    if (step.reconstruction_finished) {
      std::printf("frame %zu: model retrained on the new signature; "
                  "monitoring resumes\n",
                  i);
    }
  }
  std::printf("\ntotal on-device state: %.1f kB (Raspberry Pi Pico budget: "
              "264 kB)\n",
              pipeline.memory_bytes() / 1024.0);
  return 0;
}
