// edgedrift command-line runner: any method on any bundled (or CSV) stream.
//
//   $ ./example_edgedrift_cli --dataset nslkdd --method proposed --window 100
//   $ ./example_edgedrift_cli --dataset fan-gradual --method spll
//   $ ./example_edgedrift_cli --train-csv train.csv --test-csv test.csv
//         [continued] --method quanttree --drift-at 5000
//   $ ./example_edgedrift_cli --dataset nslkdd --method proposed
//         [continued] --series 500 --checkpoint /tmp/model.bin
//   $ ./example_edgedrift_cli --dataset nslkdd --streams 100000
//         [continued] --shards 4 --hot-streams 64 --pin-cores
//
// Options:
//   --dataset nslkdd | fan-sudden | fan-gradual | fan-reoccurring
//   --train-csv PATH / --test-csv PATH   (labels in the last column)
//   --method proposed | baseline | quanttree | spll | onlad | multiwindow
//   --detector KIND run any drift::DetectorKind by name (centroid,
//                   multiwindow, quanttree, spll, ddm, eddm, adwin,
//                   kswin, pagehinkley) through the pipeline; overrides
//                   --method
//   --recovery reconstruct | recalibrate | detect-only   (default reconstruct)
//   --numerics f64 | f32 | i8   scoring numerics tier     (default f64):
//                   f64 is the bit-exact reference; f32/i8 score against
//                   the packed-beta replicas under the error-bounded
//                   drift-decision-equivalence contract (applies to
//                   pipeline-backed methods and --detector runs)
//   --train-chunk N chunked rank-k recovery training      (default 1):
//                   1 keeps the exact per-sample path; N > 1 buckets each
//                   drained chunk by winning instance, applies one Woodbury
//                   block update per bucket and requantizes the f32/i8
//                   replicas once per bucket (decision-equivalent, not
//                   bit-identical)
//   --window N      proposed-method window size W        (default 100)
//   --drift-at N    true drift index for delay reporting  (dataset default)
//   --seed N        stream RNG seed                       (default 2023)
//   --series N      print windowed accuracy every N samples
//   --checkpoint P  save the fitted proposed pipeline to P (method=proposed)
//   --stats         print the runtime observability snapshot (counters,
//                   stage latency quantiles, drift journal) after the run;
//                   available for pipeline-backed methods (proposed,
//                   quanttree, spll, multiwindow) and any --detector
//   --stats-json P  write the snapshot as edgedrift-obs-v1 JSON to P
//
// Sweep subcommand — the scenario-grid detection matrix:
//
//   $ ./example_edgedrift_cli sweep --detectors all --json -
//   $ ./example_edgedrift_cli sweep --scenarios scenarios/ --detectors
//         [continued] centroid,ddm --filter abrupt,gradual --json out.json
//
//   sweep runs every requested drift detector over every scenario (the six
//   built-in presets, or each *.json ScenarioSpec in --scenarios DIR) and
//   scores the cells against the compiled ground truth: detection delay,
//   false-alarm rate per 1k clean samples, recovery accuracy, throughput.
//   --json PATH writes the versioned edgedrift-eval-v1 matrix ("-" =
//   stdout); without it a summary table prints. --filter csv keeps only
//   the named scenarios; --detectors is "all" or a csv of kind names.
//
//   --streams N     serve mode: register N streams with PipelineManager
//                   (stream 0 fitted, the rest seeded cold from it) and
//                   replay the test stream round-robin across them; reports
//                   aggregate throughput, residency and eviction counters.
//                   Proposed-method (centroid) pipelines only — the
//                   checkpoint format behind eviction requires it
//   --shards N      serve mode: independent core-affine shards  (default 1)
//   --hot-streams N serve mode: resident streams each shard keeps; evicted
//                   streams go to the cold store        (default 0 = all hot)
//   --pin-cores     serve mode: pin each shard's drain worker to a core
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/data/csv.hpp"
#include "edgedrift/drift/detector_factory.hpp"
#include "edgedrift/util/stopwatch.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/data/scenario.hpp"
#include "edgedrift/eval/experiment.hpp"
#include "edgedrift/eval/sweep.hpp"
#include "edgedrift/eval/paper_configs.hpp"
#include "edgedrift/io/checkpoint.hpp"
#include "edgedrift/obs/snapshot.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

namespace {

struct Options {
  std::string dataset = "nslkdd";
  std::string train_csv;
  std::string test_csv;
  std::string method = "proposed";
  std::string detector;
  std::string recovery = "reconstruct";
  std::string numerics = "f64";
  std::size_t train_chunk = 1;
  std::size_t window = 100;
  std::optional<std::size_t> drift_at;
  std::uint64_t seed = 2023;
  std::size_t series = 0;
  std::string checkpoint;
  bool stats = false;
  std::string stats_json;
  std::size_t streams = 0;
  std::size_t shards = 1;
  std::size_t hot_streams = 0;
  bool pin_cores = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset nslkdd|fan-sudden|fan-gradual|"
               "fan-reoccurring]\n"
               "          [--train-csv PATH --test-csv PATH]\n"
               "          [--method proposed|baseline|quanttree|spll|onlad|multiwindow]\n"
               "          [--detector KIND] [--recovery reconstruct|"
               "recalibrate|detect-only]\n"
               "          [--numerics f64|f32|i8] [--train-chunk N]\n"
               "          [--window N] [--drift-at N] [--seed N]\n"
               "          [--series N] [--checkpoint PATH]\n"
               "          [--stats] [--stats-json PATH]\n"
               "          [--streams N] [--shards N] [--hot-streams N]\n"
               "          [--pin-cores]\n",
               argv0);
  std::exit(2);
}

bool parse_options(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--dataset") {
      opts.dataset = next();
    } else if (arg == "--train-csv") {
      opts.train_csv = next();
    } else if (arg == "--test-csv") {
      opts.test_csv = next();
    } else if (arg == "--method") {
      opts.method = next();
    } else if (arg == "--detector") {
      opts.detector = next();
    } else if (arg == "--recovery") {
      opts.recovery = next();
    } else if (arg == "--numerics") {
      opts.numerics = next();
    } else if (arg == "--train-chunk") {
      opts.train_chunk = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--window") {
      opts.window = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--drift-at") {
      opts.drift_at = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--series") {
      opts.series = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--checkpoint") {
      opts.checkpoint = next();
    } else if (arg == "--stats") {
      opts.stats = true;
    } else if (arg == "--stats-json") {
      opts.stats_json = next();
    } else if (arg == "--streams") {
      opts.streams = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--shards") {
      opts.shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--hot-streams") {
      opts.hot_streams = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--pin-cores") {
      opts.pin_cores = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::optional<eval::Method> method_of(const std::string& name) {
  if (name == "proposed") return eval::Method::kProposed;
  if (name == "baseline") return eval::Method::kBaseline;
  if (name == "quanttree") return eval::Method::kQuantTree;
  if (name == "spll") return eval::Method::kSpll;
  if (name == "onlad") return eval::Method::kOnlad;
  if (name == "multiwindow") return eval::Method::kMultiWindow;
  return std::nullopt;
}

std::optional<core::RecoveryPolicy> recovery_of(const std::string& name) {
  if (name == "reconstruct") return core::RecoveryPolicy::kReconstruct;
  if (name == "recalibrate") return core::RecoveryPolicy::kResetRecalibrate;
  if (name == "detect-only") return core::RecoveryPolicy::kDetectOnly;
  return std::nullopt;
}

/// Streams any detector kind through the pipeline, mirroring what
/// eval::run_experiment collects. True labels feed only the error-rate
/// detectors (DDM/EDDM/ADWIN) and the accuracy accounting.
eval::ExperimentResult run_detector(drift::DetectorKind kind,
                                    const data::Dataset& train,
                                    const data::Dataset& test,
                                    const eval::ExperimentConfig& config,
                                    obs::Snapshot* obs_out = nullptr) {
  eval::ExperimentResult result;
  result.method = eval::Method::kProposed;

  core::PipelineConfig pc = config.pipeline;
  pc.input_dim = train.dim();
  pc.detector.kind = kind;
  pc.detector.quanttree = config.quanttree;
  pc.detector.spll = config.spll;
  pc.detector.windows = config.ensemble_windows;
  core::Pipeline pipeline(pc);
  pipeline.fit(train.x, train.labels);

  util::Stopwatch clock;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const core::PipelineStep step =
        pipeline.process(test.x.row(i), test.labels[i]);
    result.accuracy.record(static_cast<int>(step.prediction.label) ==
                           test.labels[i]);
    if (step.drift_detected) result.detections.record(i);
  }
  result.runtime_seconds = clock.elapsed_seconds();
  result.detector_memory_bytes = pipeline.detector_memory_bytes();
  result.model_memory_bytes = pipeline.model().memory_bytes();
  if (obs_out != nullptr) {
    obs_out->streams.push_back(pipeline.obs().snapshot(0));
  }
  return result;
}

/// Serve mode: replays the test stream round-robin across `--streams`
/// managed streams through the sharded serving layer (stream 0 fitted from
/// the training set, the rest seeded cold from it), then reports aggregate
/// throughput, residency and the eviction/restore counters.
int run_serve(const Options& opts, const data::Dataset& train,
              const data::Dataset& test,
              const eval::ExperimentConfig& config) {
  core::PipelineConfig pc = config.pipeline;
  pc.input_dim = train.dim();

  core::ManagerOptions mopts;
  mopts.shards = std::max<std::size_t>(1, opts.shards);
  mopts.hot_stream_budget = opts.hot_streams;
  mopts.pin_cores = opts.pin_cores;

  core::PipelineManager manager(pc, 1, mopts);
  manager.fit(0, train.x, train.labels);
  if (opts.streams > 1) manager.seed_cold_from(0, opts.streams - 1);

  util::Stopwatch clock;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const std::size_t id = i % opts.streams;
    core::SubmitStatus status = core::SubmitStatus::kOk;
    if (!manager.submit(id, test.x.row(i), test.labels[i], &status)) {
      std::fprintf(stderr, "submit to stream %zu failed (status %d)\n", id,
                   static_cast<int>(status));
      return 1;
    }
  }
  manager.drain();
  const double seconds = clock.elapsed_seconds();

  const core::PipelineStats totals = manager.totals();
  const obs::Snapshot snapshot = manager.stats();
  std::uint64_t evictions = 0;
  std::uint64_t restores = 0;
  std::uint64_t coalesced_gemms = 0;
  std::uint64_t coalesced_rows = 0;
  std::uint64_t coalesce_fallbacks = 0;
  bool pinned = !snapshot.shards.empty();
  for (const auto& sh : snapshot.shards) {
    evictions += sh.evictions;
    restores += sh.restores;
    coalesced_gemms += sh.coalesced_gemms;
    coalesced_rows += sh.coalesced_rows;
    coalesce_fallbacks += sh.coalesce_fallbacks;
    pinned = pinned && sh.pinned;
  }

  util::Table summary({"Metric", "Value"});
  summary.add_row({"registered streams",
                   std::to_string(manager.num_streams())});
  summary.add_row({"shards", std::to_string(manager.num_shards())});
  summary.add_row({"hot budget / shard",
                   opts.hot_streams > 0 ? std::to_string(opts.hot_streams)
                                        : std::string("unlimited")});
  summary.add_row({"resident streams",
                   std::to_string(manager.hot_streams())});
  summary.add_row({"cold streams", std::to_string(manager.cold_streams())});
  summary.add_row({"samples processed", std::to_string(totals.samples)});
  summary.add_row({"throughput",
                   util::fmt(static_cast<double>(test.size()) / seconds / 1e3,
                             1) +
                       " ksamples/s"});
  summary.add_row({"drift detections", std::to_string(totals.drifts)});
  summary.add_row({"evictions", std::to_string(evictions)});
  summary.add_row({"restores", std::to_string(restores)});
  summary.add_row({"mega-batch GEMMs", std::to_string(coalesced_gemms)});
  summary.add_row(
      {"rows / mega-batch",
       coalesced_gemms > 0
           ? util::fmt(static_cast<double>(coalesced_rows) /
                           static_cast<double>(coalesced_gemms),
                       1)
           : std::string("-")});
  summary.add_row({"coalesce fallbacks", std::to_string(coalesce_fallbacks)});
  summary.add_row({"workers pinned", pinned ? "yes" : "no"});
  std::printf("%s\n", summary.str().c_str());

  if (opts.stats) {
    std::printf("observability snapshot:\n%s\n", snapshot.to_text().c_str());
  }
  if (!opts.stats_json.empty()) {
    if (!snapshot.write_json(opts.stats_json, "edgedrift_cli")) {
      std::fprintf(stderr, "failed to write %s\n", opts.stats_json.c_str());
      return 1;
    }
    std::printf("observability snapshot written to %s\n",
                opts.stats_json.c_str());
  }
  return 0;
}

/// The detector kind behind a pipeline-backed method, nullopt for methods
/// that bypass the pipeline (baseline, onlad) and so have no obs snapshot.
std::optional<drift::DetectorKind> pipeline_kind_of(eval::Method method) {
  switch (method) {
    case eval::Method::kProposed:
      return drift::DetectorKind::kCentroid;
    case eval::Method::kQuantTree:
      return drift::DetectorKind::kQuantTree;
    case eval::Method::kSpll:
      return drift::DetectorKind::kSpll;
    case eval::Method::kMultiWindow:
      return drift::DetectorKind::kMultiWindow;
    default:
      return std::nullopt;
  }
}

// ------------------------------------------------------- sweep subcommand

/// Splits a comma-separated list ("a,b,c") into its items.
std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> items;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    std::size_t comma = csv.find(',', begin);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > begin) items.push_back(csv.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return items;
}

[[noreturn]] void sweep_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s sweep [--scenarios DIR] [--detectors all|k1,k2,...]"
               "\n"
               "          [--filter name1,name2,...] [--json PATH|-]\n"
               "          [--emit-presets DIR]\n",
               argv0);
  std::exit(2);
}

int run_sweep_command(int argc, char** argv) {
  std::string scenarios_dir;
  std::string detectors = "all";
  std::string filter;
  std::string json_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) sweep_usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenarios") {
      scenarios_dir = next();
    } else if (arg == "--detectors") {
      detectors = next();
    } else if (arg == "--filter") {
      filter = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--emit-presets") {
      // Write every built-in preset spec as DIR/<name>.json and exit —
      // this is how the committed scenarios/ directory is produced.
      const std::filesystem::path dir = next();
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      for (const std::string_view name : data::scenario_preset_names()) {
        const std::string json =
            data::scenario_to_json(*data::scenario_preset(name));
        const std::filesystem::path path =
            dir / (std::string(name) + ".json");
        std::FILE* f = std::fopen(path.c_str(), "wb");
        if (f == nullptr) {
          std::fprintf(stderr, "cannot write %s\n", path.c_str());
          return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
      }
      return 0;
    } else {
      std::fprintf(stderr, "unknown sweep option: %s\n", arg.c_str());
      sweep_usage(argv[0]);
    }
  }

  // Scenario grid: every *.json spec in --scenarios DIR (sorted by path),
  // or the built-in presets.
  std::vector<data::ScenarioSpec> specs;
  if (scenarios_dir.empty()) {
    for (const std::string_view name : data::scenario_preset_names()) {
      specs.push_back(*data::scenario_preset(name));
    }
  } else {
    std::error_code ec;
    std::vector<std::filesystem::path> paths;
    for (const auto& entry :
         std::filesystem::directory_iterator(scenarios_dir, ec)) {
      if (entry.path().extension() == ".json") paths.push_back(entry.path());
    }
    if (ec) {
      std::fprintf(stderr, "cannot read scenario dir %s: %s\n",
                   scenarios_dir.c_str(), ec.message().c_str());
      return 1;
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths) {
      std::string error;
      auto spec = data::load_scenario_file(path.string(), &error);
      if (!spec) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      specs.push_back(std::move(*spec));
    }
  }
  if (!filter.empty()) {
    const std::vector<std::string> keep = split_csv(filter);
    std::erase_if(specs, [&](const data::ScenarioSpec& s) {
      return std::find(keep.begin(), keep.end(), s.name) == keep.end();
    });
  }
  if (specs.empty()) {
    std::fprintf(stderr, "no scenarios selected\n");
    return 1;
  }

  std::vector<drift::DetectorKind> kinds;
  if (detectors == "all") {
    kinds.assign(std::begin(drift::kAllDetectorKinds),
                 std::end(drift::kAllDetectorKinds));
  } else {
    for (const std::string& name : split_csv(detectors)) {
      const auto kind = drift::kind_from_name(name);
      if (!kind) {
        std::fprintf(stderr, "unknown detector: %s\n", name.c_str());
        return 1;
      }
      kinds.push_back(*kind);
    }
  }

  const eval::SweepResult result = eval::run_sweep(specs, kinds, {});

  if (!json_path.empty()) {
    const std::string json = eval::sweep_json(result);
    if (json_path == "-") {
      std::fwrite(json.data(), 1, json.size(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("sweep matrix written to %s (%zu cells)\n",
                  json_path.c_str(), result.cells.size());
    }
    return 0;
  }

  util::Table table({"Scenario", "Detector", "Detected", "Mean delay",
                     "FA/1k", "Recovery acc", "krows/s"});
  for (const eval::SweepCell& c : result.cells) {
    const eval::ScenarioMetrics& m = c.metrics;
    table.add_row({c.scenario, std::string(drift::kind_name(c.kind)),
                   std::to_string(m.detected) + "/" +
                       std::to_string(m.drift_points),
                   m.detected > 0 ? util::fmt(m.mean_delay, 1)
                                  : std::string("-"),
                   util::fmt(m.false_alarm_rate_per_1k, 2),
                   util::fmt(m.recovery_accuracy * 100.0, 1) + " %",
                   util::fmt(c.throughput_rows_per_s / 1e3, 1)});
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0) {
    return run_sweep_command(argc, argv);
  }
  Options opts;
  if (!parse_options(argc, argv, opts)) usage(argv[0]);
  const auto method = method_of(opts.method);
  if (!method) usage(argv[0]);
  const auto recovery = recovery_of(opts.recovery);
  if (!recovery) usage(argv[0]);
  std::optional<drift::DetectorKind> detector_kind;
  if (!opts.detector.empty()) {
    detector_kind = drift::kind_from_name(opts.detector);
    if (!detector_kind) {
      std::fprintf(stderr, "unknown detector: %s\n", opts.detector.c_str());
      usage(argv[0]);
    }
  }

  // ------------------------------------------------------------------ data
  data::Dataset train, test;
  eval::ExperimentConfig config;
  if (!opts.train_csv.empty() || !opts.test_csv.empty()) {
    if (opts.train_csv.empty() || opts.test_csv.empty()) usage(argv[0]);
    data::CsvOptions csv;
    csv.label_column = -2;
    auto loaded_train = data::load_csv(opts.train_csv, csv);
    auto loaded_test = data::load_csv(opts.test_csv, csv);
    if (!loaded_train || !loaded_test) return 1;
    train = std::move(*loaded_train);
    test = std::move(*loaded_test);
    int max_label = 0;
    for (const int l : train.labels) max_label = std::max(max_label, l);
    config = eval::nsl_kdd_paper_config(opts.window);
    config.pipeline.num_labels = static_cast<std::size_t>(max_label) + 1;
    config.pipeline.input_dim = train.dim();
  } else if (opts.dataset == "nslkdd") {
    data::NslKddLike generator;
    util::Rng rng(opts.seed);
    train = generator.training(rng);
    test = generator.test_stream(rng);
    if (!opts.drift_at) opts.drift_at = generator.config().drift_point;
    config = eval::nsl_kdd_paper_config(opts.window);
  } else if (opts.dataset.rfind("fan-", 0) == 0) {
    data::CoolingFanLike generator;
    util::Rng rng(opts.seed);
    train = generator.training(rng);
    util::Rng stream_rng(opts.seed ^ 0x9e37ULL);
    if (opts.dataset == "fan-sudden") {
      test = generator.sudden_stream(stream_rng);
    } else if (opts.dataset == "fan-gradual") {
      test = generator.gradual_stream(stream_rng);
    } else if (opts.dataset == "fan-reoccurring") {
      test = generator.reoccurring_stream(stream_rng);
    } else {
      usage(argv[0]);
    }
    if (!opts.drift_at) opts.drift_at = generator.config().drift_point;
    config = eval::cooling_fan_paper_config(opts.window);
  } else {
    usage(argv[0]);
  }
  config.pipeline.window_size = opts.window;
  config.pipeline.recovery = *recovery;
  const auto tier = linalg::tier_from_name(opts.numerics);
  if (!tier) {
    std::fprintf(stderr, "unknown numerics tier: %s\n", opts.numerics.c_str());
    usage(argv[0]);
  }
  config.pipeline.numerics = *tier;
  config.pipeline.train_chunk = opts.train_chunk > 0 ? opts.train_chunk : 1;
  config.seed = opts.seed;

  std::printf("dataset: %s (%zu train / %zu test, %zu features)\n",
              opts.dataset.c_str(), train.size(), test.size(), train.dim());
  if (detector_kind) {
    std::printf("detector: %s (recovery: %s)\n\n",
                std::string(drift::kind_name(*detector_kind)).c_str(),
                opts.recovery.c_str());
  } else {
    std::printf("method:  %s\n\n", eval::method_name(*method).c_str());
  }

  // ----------------------------------------------------------- serve mode
  if (opts.streams > 0) {
    if (*method != eval::Method::kProposed || detector_kind) {
      // Eviction serializes through the checkpoint format, which requires
      // the proposed method's centroid detector.
      std::fprintf(stderr,
                   "--streams serve mode supports only --method proposed\n");
      return 1;
    }
    return run_serve(opts, train, test, config);
  }

  // ------------------------------------------------------------------- run
  const bool want_stats = opts.stats || !opts.stats_json.empty();
  obs::Snapshot obs_snapshot;
  obs::Snapshot* obs_out = nullptr;
  std::optional<drift::DetectorKind> run_kind = detector_kind;
  if (want_stats && !run_kind) {
    // The experiment runner hides its pipeline; route pipeline-backed
    // methods through run_detector so the obs block is reachable.
    run_kind = pipeline_kind_of(*method);
    if (!run_kind) {
      std::fprintf(stderr,
                   "--stats is unavailable for --method %s (no pipeline)\n",
                   opts.method.c_str());
      return 1;
    }
  }
  if (want_stats) obs_out = &obs_snapshot;
  const eval::ExperimentResult result =
      run_kind
          ? run_detector(*run_kind, train, test, config, obs_out)
          : eval::run_experiment(*method, train, test, config);

  util::Table summary({"Metric", "Value"});
  summary.add_row({"overall accuracy",
                   util::fmt(result.accuracy.overall() * 100.0, 2) + " %"});
  summary.add_row({"runtime", util::fmt(result.runtime_seconds * 1e3, 1) +
                                  " ms"});
  summary.add_row({"detections", std::to_string(result.detections.count())});
  if (opts.drift_at) {
    const auto delay = result.detections.delay(*opts.drift_at);
    summary.add_row({"detection delay",
                     delay ? std::to_string(*delay) : std::string("-")});
    summary.add_row(
        {"false alarms",
         std::to_string(result.detections.false_alarms(*opts.drift_at))});
  }
  summary.add_row({"detector memory",
                   util::fmt_kb(result.detector_memory_bytes)});
  summary.add_row({"model memory", util::fmt_kb(result.model_memory_bytes)});
  std::printf("%s\n", summary.str().c_str());

  if (opts.stats) {
    std::printf("observability snapshot:\n%s\n",
                obs_snapshot.to_text().c_str());
  }
  if (!opts.stats_json.empty()) {
    if (!obs_snapshot.write_json(opts.stats_json, "edgedrift_cli")) {
      std::fprintf(stderr, "failed to write %s\n", opts.stats_json.c_str());
      return 1;
    }
    std::printf("observability snapshot written to %s\n",
                opts.stats_json.c_str());
  }

  if (opts.series > 0) {
    std::printf("windowed accuracy (every %zu samples):\n", opts.series);
    for (const double a : result.accuracy.windowed(opts.series)) {
      std::printf(" %.3f", a);
    }
    std::printf("\n");
  }

  // ---------------------------------------------------------- checkpointing
  if (!opts.checkpoint.empty()) {
    if (*method != eval::Method::kProposed) {
      std::fprintf(stderr,
                   "--checkpoint supports only --method proposed\n");
      return 1;
    }
    core::PipelineConfig pipeline_config = config.pipeline;
    pipeline_config.input_dim = train.dim();
    core::Pipeline pipeline(pipeline_config);
    pipeline.fit(train.x, train.labels);
    if (!io::save_pipeline_file(opts.checkpoint, pipeline)) {
      std::fprintf(stderr, "failed to write checkpoint %s\n",
                   opts.checkpoint.c_str());
      return 1;
    }
    std::printf("fitted pipeline checkpoint written to %s\n",
                opts.checkpoint.c_str());
  }
  return 0;
}
