// Network-intrusion scenario (the paper's NSL-KDD evaluation, Section 4.1.1).
//
// An edge gateway classifies traffic as "normal" or "neptune" (SYN flood)
// with per-class OS-ELM autoencoders. At some point the traffic
// distribution shifts — new service mix, new attack variant — and the
// stale model starts mislabeling. The proposed detector notices the
// centroid displacement and triggers an on-device retraining; no labeled
// data and no sample buffer are involved.
//
//   $ ./example_network_intrusion [--csv stream.csv]
//
// With --csv, the stream is loaded from a CSV whose last column is the
// label (0 = normal, 1 = attack); otherwise the bundled NSL-KDD-like
// generator is used.
#include <cstdio>
#include <cstring>
#include <string>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/csv.hpp"
#include "edgedrift/data/normalize.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/eval/metrics.hpp"
#include "edgedrift/util/rng.hpp"

using namespace edgedrift;

int main(int argc, char** argv) {
  data::Dataset train;
  data::Dataset stream;
  std::size_t expected_drift = 0;

  if (argc == 3 && std::strcmp(argv[1], "--csv") == 0) {
    data::CsvOptions options;
    options.label_column = -2;  // Last column.
    auto loaded = data::load_csv(argv[2], options);
    if (!loaded) return 1;
    // First 20% trains, the rest streams.
    const std::size_t split = loaded->size() / 5;
    train = loaded->slice(0, split);
    stream = loaded->slice(split, loaded->size());
    std::printf("loaded %zu samples (%zu train / %zu stream) from %s\n",
                loaded->size(), train.size(), stream.size(), argv[2]);
  } else {
    data::NslKddLike generator;
    util::Rng rng(7);
    train = generator.training(rng);
    stream = generator.test_stream(rng);
    expected_drift = generator.config().drift_point;
    std::printf("synthetic NSL-KDD-like stream: %zu train / %zu test, "
                "drift at %zu\n",
                train.size(), stream.size(), expected_drift);
  }

  // Scale features to [0, 1] using only the training window (the stream is
  // unseen, as on a real device).
  data::MinMaxScaler scaler;
  scaler.fit(train.x);
  scaler.transform(train);
  scaler.transform(stream);

  core::PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = train.dim();
  config.hidden_dim = 22;  // Paper: 38-22-38.
  config.window_size = 100;
  config.detector_initial_count = 0;
  config.theta_error_z = 4.0;
  config.reconstruction = {20, 200, 1000};

  core::Pipeline pipeline(config);
  pipeline.fit(train.x, train.labels);

  eval::StreamingAccuracy accuracy;
  eval::DetectionLog detections;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto step = pipeline.process(stream.x.row(i));
    accuracy.record(static_cast<int>(step.prediction.label) ==
                    stream.labels[i]);
    if (step.drift_detected) {
      detections.record(i);
      std::printf("[%zu] drift detected -> retraining from the stream\n", i);
    }
    if (step.reconstruction_finished) {
      std::printf("[%zu] retraining finished\n", i);
    }
  }

  std::printf("\noverall accuracy: %.1f%%\n", accuracy.overall() * 100.0);
  if (expected_drift > 0) {
    const auto delay = detections.delay(expected_drift);
    std::printf("detection delay: %s samples (false alarms: %zu)\n",
                delay ? std::to_string(*delay).c_str() : "not detected",
                detections.false_alarms(expected_drift));
    std::printf("accuracy before drift: %.1f%%, after recovery window: "
                "%.1f%%\n",
                accuracy.range(0, expected_drift) * 100.0,
                accuracy.range(stream.size() * 3 / 4, stream.size()) * 100.0);
  }
  return 0;
}
