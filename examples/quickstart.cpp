// Quickstart: the smallest complete edgedrift program.
//
// Builds a 2-class 8-D stream with a sudden concept drift, fits the
// proposed pipeline (OS-ELM autoencoder bank + sequential centroid
// detector + streaming reconstruction), and walks the stream printing what
// happens.
//
// Note the hidden layer (4) is smaller than the input (8): the per-class
// autoencoders must be undercomplete, otherwise they learn the identity
// map and the argmin-score prediction loses its discriminative power. The
// paper's configurations (38-22-38, 511-22-511) obey the same rule.
//
//   $ ./example_quickstart
#include <cstdio>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/util/rng.hpp"

using namespace edgedrift;

namespace {

constexpr std::size_t kDim = 8;

data::GaussianConcept make_concept(double red_base, double blue_base,
                                   double even_dim_shift) {
  data::GaussianClass red;
  red.mean.assign(kDim, red_base);
  red.stddev = {0.08};
  data::GaussianClass blue;
  blue.mean.assign(kDim, blue_base);
  blue.stddev = {0.08};
  for (std::size_t j = 0; j < kDim; j += 2) {
    red.mean[j] += even_dim_shift;
    blue.mean[j] -= even_dim_shift;
  }
  return data::GaussianConcept({red, blue});
}

}  // namespace

int main() {
  // 1. A labeled stream: two Gaussian classes whose anchors move at
  //    sample 2000 (each stays nearer its own old position than the other
  //    class's, as real drifts usually do).
  const data::GaussianConcept before = make_concept(0.25, 0.75, 0.0);
  const data::GaussianConcept after = make_concept(0.25, 0.75, 0.3);

  util::Rng rng(42);
  const data::Dataset train = data::draw(before, 500, rng);
  const data::Dataset stream =
      data::make_sudden_drift(before, after, 5000, 2000, rng);

  // 2. Configure the pipeline. Dimensions come from the data; everything
  //    else has sensible defaults.
  core::PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = kDim;
  config.hidden_dim = 4;  // Undercomplete — see the note above.
  config.window_size = 50;
  config.detector_initial_count = 0;
  config.theta_error_z = 4.0;  // Open check windows only for clear outliers.
  config.reconstruction = {10, 60, 300};

  core::Pipeline pipeline(config);
  pipeline.fit(train.x, train.labels);
  std::printf("fitted: theta_error=%.4f theta_drift=%.4f\n",
              pipeline.theta_error(), pipeline.centroid_detector()->theta_drift());

  // 3. Stream. The pipeline predicts every sample; when the detector fires
  //    it transparently rebuilds the model from the next 300 samples.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const core::PipelineStep step = pipeline.process(stream.x.row(i));
    if (static_cast<int>(step.prediction.label) == stream.labels[i]) ++hits;
    if (step.drift_detected) {
      std::printf("sample %zu: concept drift detected (distance %.3f >= "
                  "threshold %.3f)\n",
                  i, step.statistic, pipeline.centroid_detector()->theta_drift());
    }
    if (step.reconstruction_finished) {
      std::printf("sample %zu: model reconstruction finished; detector "
                  "re-armed with theta_drift=%.3f\n",
                  i, pipeline.centroid_detector()->theta_drift());
    }
  }
  std::printf("overall accuracy: %.1f%% over %zu samples\n",
              100.0 * static_cast<double>(hits) / stream.size(),
              stream.size());
  std::printf("total on-device state: %.1f kB\n",
              static_cast<double>(pipeline.memory_bytes()) / 1024.0);
  return 0;
}
