// Microcontroller memory budgeting (the paper's Raspberry Pi Pico
// deployment, Sections 4.3 and 5.3).
//
// The Pico has 264 kB of SRAM. This example audits, byte by byte, what the
// full proposed system needs for both paper configurations and contrasts
// it with what the batch baselines would require — demonstrating why only
// the proposed method deploys.
//
//   $ ./example_mcu_budget
#include <cstdio>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/drift/quanttree.hpp"
#include "edgedrift/drift/spll.hpp"
#include "edgedrift/eval/memory_audit.hpp"
#include "edgedrift/mcu/static_pipeline.hpp"
#include "edgedrift/util/rng.hpp"

using namespace edgedrift;

namespace {

constexpr std::size_t kPicoSram = 264 * 1024;

void audit_pipeline(const char* name, const core::PipelineConfig& config) {
  core::Pipeline pipeline(config);
  eval::MemoryAudit audit;
  audit.add("model (projection + per-label beta/P)",
            pipeline.model().memory_bytes());
  audit.add("detector (2 centroid sets + counters)",
            pipeline.detector().memory_bytes());
  audit.add("reconstruction bookkeeping",
            pipeline.reconstructor().memory_bytes());
  std::printf("--- %s ---\n%s", name, audit.table().c_str());
  const std::size_t total = pipeline.memory_bytes();
  std::printf("=> %.1f kB of 264 kB Pico SRAM (%.0f%%) — %s\n\n",
              total / 1024.0, 100.0 * total / kPicoSram,
              total < kPicoSram ? "FITS" : "DOES NOT FIT");
}

}  // namespace

int main() {
  std::printf("Raspberry Pi Pico budget: %zu kB SRAM\n\n", kPicoSram / 1024);

  // NSL-KDD configuration: 38 features, 2 labels, hidden 22.
  core::PipelineConfig nsl;
  nsl.num_labels = 2;
  nsl.input_dim = data::NslKddLike::kDim;
  nsl.hidden_dim = 22;
  audit_pipeline("proposed system, NSL-KDD config (38-22-38, C=2)", nsl);

  // Cooling-fan configuration: 511 features, 1 label, hidden 22.
  core::PipelineConfig fan;
  fan.num_labels = 1;
  fan.input_dim = data::CoolingFanLike::kDim;
  fan.hidden_dim = 22;
  audit_pipeline("proposed system, cooling-fan config (511-22-511, C=1)",
                 fan);

  // What the batch baselines would need on top of the model, fan config.
  data::CoolingFanLike generator;
  util::Rng rng(1);
  const data::Dataset train = generator.training(rng);

  drift::QuantTreeConfig qt_config;
  qt_config.num_bins = 16;
  qt_config.batch_size = 235;
  drift::QuantTree qt(qt_config);
  qt.fit(train.x);

  drift::SpllConfig spll_config;
  spll_config.num_clusters = 1;
  spll_config.batch_size = 235;
  drift::Spll spll(spll_config);
  spll.fit(train.x);

  std::printf("--- batch baselines (detector state only, fan config) ---\n");
  std::printf("QuantTree (B=235, K=16): %.1f kB -> %s on the Pico\n",
              qt.memory_bytes() / 1024.0,
              qt.memory_bytes() < kPicoSram ? "fits" : "does not fit");
  std::printf("SPLL      (B=235):       %.1f kB -> %s on the Pico\n",
              spll.memory_bytes() / 1024.0,
              spll.memory_bytes() < kPicoSram ? "fits" : "does not fit");
  std::printf("\nThis is the paper's Section 5.3 conclusion: the batch\n"
              "detectors cannot run on the Pico at all, while the proposed\n"
              "fully sequential system fits with room to spare.\n\n");

  // The float32 MCU profile makes the budget a compile-time fact: these
  // sizes are sizeof() of heap-free, fixed-capacity objects.
  using NslDevice = mcu::StaticPipeline<38, 22, 2>;
  using FanDevice = mcu::StaticPipeline<511, 22, 1>;
  static_assert(NslDevice::state_bytes() < kPicoSram);
  static_assert(FanDevice::state_bytes() < kPicoSram);
  std::printf("--- float32 MCU profile (mcu::StaticPipeline, compile-time "
              "sizeof) ---\n");
  std::printf("NSL-KDD device object <38,22,2>:  %.1f kB (%.0f%% of Pico "
              "SRAM)\n",
              NslDevice::state_bytes() / 1024.0,
              100.0 * NslDevice::state_bytes() / kPicoSram);
  std::printf("fan device object     <511,22,1>: %.1f kB (%.0f%% of Pico "
              "SRAM)\n",
              FanDevice::state_bytes() / 1024.0,
              100.0 * FanDevice::state_bytes() / kPicoSram);
  return 0;
}
