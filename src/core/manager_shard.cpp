// The per-shard drain workers: scheduling handoff, the take-all/park loop,
// and best-effort core pinning.
//
// Park/wake protocol (no lost wakeups): a producer pushes onto the ready
// stack, THEN loads `parked`; the worker stores `parked = true`, THEN
// rechecks the stack (and the cv wait predicate rechecks it again under the
// wake mutex). All four accesses are seq_cst, so in the single total order
// either the producer's push precedes the worker's recheck (the worker sees
// the stream and skips the sleep) or the worker's parked-store precedes the
// producer's load (the producer takes the wake mutex and notifies into the
// wait). There is no interleaving in which the push lands after the final
// recheck AND the parked-load misses the flag.
#include <chrono>
#include <thread>

#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/util/thread_pool.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace edgedrift::core {

void PipelineManager::start_workers() {
  for (auto& shard : shards_) {
    Shard* sp = shard.get();
    sp->worker = std::thread([this, sp] { shard_worker(*sp); });
  }
}

void PipelineManager::maybe_schedule(Stream& s) {
  if (options_.dispatch == DispatchMode::kManual) return;
  if (s.scheduled.exchange(true)) return;  // A drain cycle already owns it.
  active_.fetch_add(1);
  Shard& shard = *shards_[s.shard];
  shard.ready.push(&s);
  if (shard.parked.load()) {
    // Lock-and-drop pins the worker either before its wait predicate (it
    // will see the push) or inside the wait (it will get this notify).
    { std::lock_guard lock(shard.wake_mutex); }
    shard.wake_cv.notify_one();
  }
}

void PipelineManager::shard_worker(Shard& shard) {
  // The shard worker is this shard's compute thread: any parallel_for a
  // pipeline issues mid-drain must run inline here, not fan out onto the
  // shared pool where shards would contend with each other.
  util::ThreadPool::mark_inline_worker();
  if (options_.pin_cores) pin_worker(shard);
  for (;;) {
    Stream* chain = shard.ready.take_all();
    if (chain == nullptr) {
      if (shard.stopping.load()) return;
      shard.parked.store(true);
      if (shard.ready.empty() && !shard.stopping.load()) {
        std::unique_lock lock(shard.wake_mutex);
        shard.wake_cv.wait(lock, [&] {
          return !shard.ready.empty() || shard.stopping.load();
        });
        shard.obs.add_worker_park();
      }
      shard.parked.store(false);
      continue;
    }
    const DrainOptions& dopts = options_.drain_opts;
    const bool planning =
        dopts.coalesce && options_.drain == DrainMode::kBatch;
    if (planning && dopts.coalesce_wait_ns > 0) {
      // Bounded straggler window: let more ready streams accumulate into
      // this cycle so groups come out wider. The deadline is absolute —
      // one sleep, then whatever is there gets planned — so a lone stream
      // is delayed by at most coalesce_wait_ns.
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(dopts.coalesce_wait_ns));
      Stream* extra = shard.ready.take_all();
      if (extra != nullptr) {
        Stream* t = extra;
        while (t->ready_next.load(std::memory_order_relaxed) != nullptr) {
          t = t->ready_next.load(std::memory_order_relaxed);
        }
        t->ready_next.store(chain, std::memory_order_relaxed);
        chain = extra;
      }
    }
    // The Treiber stack hands the chain over newest-first; reverse it so
    // streams drain roughly in scheduling order.
    Stream* ordered = nullptr;
    while (chain != nullptr) {
      Stream* next = chain->ready_next.load(std::memory_order_relaxed);
      chain->ready_next.store(ordered, std::memory_order_relaxed);
      ordered = chain;
      chain = next;
    }
    if (planning) {
      // The coalesced pass drains shared-projection groups in one
      // mega-batch each; the per-stream loop below then drains leftovers
      // (staging caps, recovery fallbacks) and runs the scheduled-flag
      // handoff for every chained stream, coalesced or not.
      shard.plan_candidates.clear();
      for (Stream* s = ordered; s != nullptr;
           s = s->ready_next.load(std::memory_order_relaxed)) {
        shard.plan_candidates.push_back(s);
      }
      coalesce_candidates(shard);
    }
    while (ordered != nullptr) {
      // Save the link before run_stream: the moment the scheduled flag is
      // released, a producer may push this stream again and repurpose
      // ready_next for the new stack node.
      Stream* next = ordered->ready_next.load(std::memory_order_relaxed);
      ordered->ready_next.store(nullptr, std::memory_order_relaxed);
      run_stream(*ordered);
      // The final decrement happens under done_mutex_ so a drain() waiter
      // can only observe active_ == 0 after this cycle is past its last
      // member access — the manager may be destroyed the moment the wait
      // returns. (The worker itself is joined by the destructor, which can
      // only run after drain() returned.)
      {
        std::lock_guard lock(done_mutex_);
        active_.fetch_sub(1);
        if (pending_.load() == 0 && active_.load() == 0) {
          done_cv_.notify_all();
        }
      }
      ordered = next;
    }
  }
}

void PipelineManager::run_stream(Stream& s) {
  for (;;) {
    drain_burst(s);
    // Handoff: clear the flag, then re-check for rows published in the
    // gap. exchange(true) == false means we won the flag back and keep
    // draining; true means a producer already scheduled a successor cycle.
    s.scheduled.store(false);
    if (s.tail.load() == s.head.load()) break;
    if (s.scheduled.exchange(true)) break;
  }
  after_drain(s);
}

void PipelineManager::pin_worker(Shard& shard) {
#if defined(__linux__)
  // Pin shard i to the i-th CPU this process is allowed to run on — the
  // allowed set, not raw core numbers, so cgroup/taskset restrictions are
  // respected. With more shards than allowed cores, shards wrap.
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return;
  int target = -1;
  std::size_t seen = 0;
  const std::size_t count = static_cast<std::size_t>(CPU_COUNT(&allowed));
  if (count == 0) return;
  const std::size_t want = shard.index % count;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (!CPU_ISSET(c, &allowed)) continue;
    if (seen == want) {
      target = c;
      break;
    }
    ++seen;
  }
  if (target < 0) return;
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(target, &one);
  if (pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0) {
    shard.pinned.store(true);
  }
#else
  (void)shard;
#endif
}

}  // namespace edgedrift::core
