#include "edgedrift/core/cold_store.hpp"

#include <cstdio>
#include <fstream>
#include <unordered_set>
#include <utility>

namespace edgedrift::core {
namespace {

/// FNV-1a over a byte string — the same digest the io layer uses, applied
/// here to whole spill files so silent storage corruption is caught at
/// read-back time.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ColdStore::~ColdStore() {
  // Spill files belong to this store's lifetime; leave nothing behind.
  for (const auto& [id, entry] : entries_) {
    if (!entry.path.empty()) std::remove(entry.path.c_str());
  }
}

void ColdStore::set_spill_dir(std::string dir) {
  std::lock_guard lock(mutex_);
  spill_dir_ = std::move(dir);
}

std::string ColdStore::spill_path_locked(std::uint64_t id) const {
  return spill_dir_ + "/edgedrift-stream-" + std::to_string(id) + ".ckpt";
}

bool ColdStore::put(std::uint64_t id,
                    std::shared_ptr<const std::string> blob) {
  std::lock_guard lock(mutex_);
  Entry entry;
  entry.bytes = blob->size();
  bool spilled_ok = true;
  if (!spill_dir_.empty()) {
    entry.checksum = fnv1a(*blob);
    entry.path = spill_path_locked(id);
    std::ofstream out(entry.path, std::ios::binary | std::ios::trunc);
    if (out && out.write(blob->data(),
                         static_cast<std::streamsize>(blob->size()))) {
      out.close();
      spilled_ok = static_cast<bool>(out);
    } else {
      spilled_ok = false;
    }
    if (!spilled_ok) {
      // Failed spill: fall back to holding the blob in memory so the
      // stream stays restorable; report the degradation to the caller.
      std::remove(entry.path.c_str());
      entry.path.clear();
    }
  }
  if (entry.path.empty()) entry.blob = std::move(blob);
  auto [it, inserted] = entries_.insert_or_assign(id, std::move(entry));
  (void)it;
  (void)inserted;
  return spilled_ok;
}

void ColdStore::put_memory(std::uint64_t id,
                           std::shared_ptr<const std::string> blob) {
  std::lock_guard lock(mutex_);
  Entry entry;
  entry.bytes = blob->size();
  entry.blob = std::move(blob);
  entries_.insert_or_assign(id, std::move(entry));
}

std::shared_ptr<const std::string> ColdStore::peek(std::uint64_t id) const {
  std::string path;
  std::uint64_t expected = 0;
  std::size_t expected_bytes = 0;
  {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(id);
    if (it == entries_.end()) return nullptr;
    if (it->second.blob != nullptr) return it->second.blob;
    path = it->second.path;
    expected = it->second.checksum;
    expected_bytes = it->second.bytes;
  }
  // Spilled entry: read the file outside the lock (the per-stream produce
  // mutex already serializes accesses to one id), then verify the put-time
  // checksum from the buffer just read — one pass over the file, one over
  // memory, no re-read. A truncated or bit-flipped file surfaces as a
  // restore failure here instead of reaching the checkpoint parser.
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  auto blob = std::make_shared<std::string>();
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return nullptr;
  blob->resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  if (!in.read(blob->data(), size)) return nullptr;
  if (blob->size() != expected_bytes || fnv1a(*blob) != expected) {
    return nullptr;
  }
  return blob;
}

void ColdStore::erase(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  if (!it->second.path.empty()) std::remove(it->second.path.c_str());
  entries_.erase(it);
}

bool ColdStore::contains(std::uint64_t id) const {
  std::lock_guard lock(mutex_);
  return entries_.find(id) != entries_.end();
}

std::size_t ColdStore::count() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::size_t ColdStore::bytes() const {
  std::lock_guard lock(mutex_);
  // Deduplicate by blob identity: mass-seeded ids share one template blob
  // and should report its footprint once — that sharing is the point.
  std::unordered_set<const std::string*> seen;
  std::size_t total = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.blob != nullptr) {
      if (seen.insert(entry.blob.get()).second) total += entry.bytes;
    } else {
      total += entry.bytes;
    }
  }
  return total;
}

}  // namespace edgedrift::core
