#include "edgedrift/core/pipeline_manager.hpp"

#include "edgedrift/util/assert.hpp"

namespace edgedrift::core {

PipelineManager::PipelineManager(const PipelineConfig& config,
                                 std::size_t num_streams,
                                 util::ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &util::ThreadPool::global()) {
  EDGEDRIFT_ASSERT(num_streams > 0, "need at least one stream");
  streams_.reserve(num_streams);
  for (std::size_t i = 0; i < num_streams; ++i) {
    PipelineConfig stream_config = config;
    stream_config.seed = config.seed + i;
    auto stream = std::make_unique<Stream>();
    stream->pipeline = std::make_unique<Pipeline>(stream_config);
    streams_.push_back(std::move(stream));
  }
}

PipelineManager::~PipelineManager() { drain(); }

Pipeline& PipelineManager::stream(std::size_t id) {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  return *streams_[id]->pipeline;
}

const Pipeline& PipelineManager::stream(std::size_t id) const {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  return *streams_[id]->pipeline;
}

void PipelineManager::fit(std::size_t id, const linalg::Matrix& x,
                          std::span<const int> labels) {
  stream(id).fit(x, labels);
}

void PipelineManager::submit(std::size_t id, std::span<const double> x,
                             int true_label) {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  Stream& s = *streams_[id];
  QueuedSample sample;
  sample.x.assign(x.begin(), x.end());
  sample.true_label = true_label;

  bool need_schedule = false;
  {
    std::lock_guard lock(done_mutex_);
    ++pending_;
  }
  {
    std::lock_guard lock(s.mutex);
    s.queue.push_back(std::move(sample));
    if (!s.scheduled) {
      s.scheduled = true;
      need_schedule = true;
    }
  }
  if (need_schedule) {
    {
      std::lock_guard lock(done_mutex_);
      ++active_;
    }
    pool_->submit([this, id] { run_stream(id); });
  }
}

void PipelineManager::submit_batch(std::size_t id, const linalg::Matrix& x,
                                   std::span<const int> true_labels) {
  EDGEDRIFT_ASSERT(true_labels.empty() || true_labels.size() == x.rows(),
                   "true_labels must be empty or one per row");
  for (std::size_t r = 0; r < x.rows(); ++r) {
    submit(id, x.row(r), true_labels.empty() ? -1 : true_labels[r]);
  }
}

void PipelineManager::drain() {
  std::unique_lock lock(done_mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0 && active_ == 0; });
}

std::vector<PipelineStep> PipelineManager::take_steps(std::size_t id) {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  Stream& s = *streams_[id];
  std::lock_guard lock(s.mutex);
  std::vector<PipelineStep> steps = std::move(s.steps);
  s.steps.clear();
  return steps;
}

const PipelineStats& PipelineManager::stats(std::size_t id) const {
  return stream(id).stats();
}

PipelineStats PipelineManager::totals() const {
  PipelineStats totals;
  for (const auto& s : streams_) {
    const PipelineStats& st = s->pipeline->stats();
    totals.samples += st.samples;
    totals.drifts += st.drifts;
    totals.recoveries += st.recoveries;
    totals.recovery_samples += st.recovery_samples;
  }
  return totals;
}

void PipelineManager::run_stream(std::size_t id) {
  Stream& s = *streams_[id];
  for (;;) {
    QueuedSample sample;
    {
      std::lock_guard lock(s.mutex);
      if (s.queue.empty()) {
        s.scheduled = false;
        break;
      }
      sample = std::move(s.queue.front());
      s.queue.pop_front();
    }
    // The pipeline is touched only here, by the single task draining this
    // stream — per-stream ordering needs no further locking. Any nested
    // parallel_for in the batch kernels runs inline (ThreadPool::in_worker).
    const PipelineStep step =
        s.pipeline->process(sample.x, sample.true_label);
    {
      std::lock_guard lock(s.mutex);
      s.steps.push_back(step);
    }
    {
      // The exit path below notifies once this task winds down; a waiter
      // only cares about pending_ == 0 && active_ == 0.
      std::lock_guard lock(done_mutex_);
      --pending_;
    }
  }
  {
    std::lock_guard lock(done_mutex_);
    --active_;
    if (pending_ == 0 && active_ == 0) done_cv_.notify_all();
  }
}

}  // namespace edgedrift::core
