// PipelineManager: construction, ingestion (submit/submit_batch), the ring
// drain, and the stats surfaces. The shard worker loop lives in
// manager_shard.cpp; the eviction/restore layer in manager_eviction.cpp.
#include "edgedrift/core/pipeline_manager.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::core {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

using detail::burst_bucket;
using detail::raise_high_water;

void set_status(SubmitStatus* status, SubmitStatus value) {
  if (status != nullptr) *status = value;
}

}  // namespace

PipelineManager::PipelineManager(const PipelineConfig& config,
                                 std::size_t num_streams)
    : PipelineManager(config, num_streams, ManagerOptions{}) {}

PipelineManager::PipelineManager(const PipelineConfig& config,
                                 std::size_t num_streams,
                                 const ManagerOptions& options)
    : options_(options),
      template_config_(config),
      obs_on_(obs::kObsCompiled && config.obs.enabled) {
  EDGEDRIFT_ASSERT(num_streams > 0, "need at least one stream");
  EDGEDRIFT_ASSERT(options_.queue_capacity > 0, "queue_capacity must be > 0");
  EDGEDRIFT_ASSERT(options_.drain_batch_max > 0,
                   "drain_batch_max must be > 0");
  if (options_.shards == 0) options_.shards = 1;
  if (options_.numerics) template_config_.numerics = *options_.numerics;
  if (options_.drain_opts.train_chunk > 0) {
    template_config_.train_chunk = options_.drain_opts.train_chunk;
  }
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    if (!options_.cold_spill_dir.empty()) {
      shard->cold.set_spill_dir(options_.cold_spill_dir);
    }
    shards_.push_back(std::move(shard));
  }
  init_streams(config, num_streams);
  if (options_.dispatch == DispatchMode::kShard) start_workers();
}

void PipelineManager::init_streams(const PipelineConfig& config,
                                   std::size_t num_streams) {
  streams_.reserve(num_streams);
  for (std::size_t i = 0; i < num_streams; ++i) {
    PipelineConfig stream_config = template_config_;
    stream_config.seed = config.seed + i;
    auto stream = std::make_unique<Stream>();
    stream->id = i;
    stream->shard = shard_of(i);
    stream->pipeline = std::make_unique<Pipeline>(stream_config);
    stream->slab.resize_zero(options_.queue_capacity, config.input_dim);
    stream->labels.assign(options_.queue_capacity, -1);
    if (obs_on_) stream->submit_ns.assign(options_.queue_capacity, 0);
    Shard& shard = *shards_[stream->shard];
    {
      std::lock_guard lock(shard.evict_mutex);
      stream->hot_footprint_bytes = hot_footprint(*stream);
      shard.lru.push_mru(stream.get());
      ++shard.hot_streams;
      shard.hot_bytes += stream->hot_footprint_bytes;
    }
    streams_.push_back(std::move(stream));
  }
}

PipelineManager::~PipelineManager() {
  drain();
  for (auto& shard : shards_) {
    shard->stopping.store(true);
    // Pin the worker either before its park recheck or inside the cv wait,
    // then wake it — the same no-lost-wakeup argument producers use.
    { std::lock_guard lock(shard->wake_mutex); }
    shard->wake_cv.notify_all();
    if (shard->worker.joinable()) shard->worker.join();
  }
}

Pipeline& PipelineManager::stream(std::size_t id) {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  EDGEDRIFT_ASSERT(streams_[id]->pipeline != nullptr,
                   "stream is evicted — restore it (submit) or check "
                   "resident(id) first");
  return *streams_[id]->pipeline;
}

const Pipeline& PipelineManager::stream(std::size_t id) const {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  EDGEDRIFT_ASSERT(streams_[id]->pipeline != nullptr,
                   "stream is evicted — restore it (submit) or check "
                   "resident(id) first");
  return *streams_[id]->pipeline;
}

void PipelineManager::fit(std::size_t id, const linalg::Matrix& x,
                          std::span<const int> labels) {
  stream(id).fit(x, labels);
}

bool PipelineManager::submit(std::size_t id, std::span<const double> x,
                             int true_label, SubmitStatus* status) {
  set_status(status, SubmitStatus::kOk);
  if (id >= streams_.size()) {
    set_status(status, SubmitStatus::kUnknownStream);
    return false;
  }
  Stream& s = *streams_[id];
  if (x.size() != template_config_.input_dim) {
    set_status(status, SubmitStatus::kDimensionMismatch);
    return false;
  }
  Shard& shard = *shards_[s.shard];
  const std::uint64_t capacity = options_.queue_capacity;
  {
    std::unique_lock lock(s.produce_mutex);
    bool counted_block = false;
    for (;;) {
      // Checked inside the loop: every wait below releases produce_mutex,
      // and an evictor may push the stream cold while this producer sleeps
      // (space_waiters blocks that for the cv wait, but the kManual poll
      // unlock has no such guard) — the slab must be re-materialized before
      // any slot is written.
      if (s.residency == Stream::Residency::kCold &&
          !restore_cold(shard, s)) {
        set_status(status, SubmitStatus::kRestoreFailed);
        return false;
      }
      const std::uint64_t tail = s.tail.load();
      if (tail - s.head.load() < capacity) break;
      if (options_.backpressure == BackpressurePolicy::kReject) {
        ++s.telemetry.rejected;
        if (obs_on_) s.pipeline->obs().counters.add_rejected(1);
        return false;
      }
      if (!counted_block) {
        ++s.telemetry.blocked;
        counted_block = true;
      }
      if (options_.dispatch == DispatchMode::kManual) {
        // No consumer exists to free slots: drain the stream on this
        // thread (manual mode is single-threaded operation by design).
        lock.unlock();
        poll(id);
        lock.lock();
        continue;
      }
      // Make sure a consumer is actually running before sleeping on it.
      maybe_schedule(s);
      s.space_waiters.fetch_add(1);
      s.space_cv.wait(lock, [&] {
        return s.tail.load() - s.head.load() < capacity;
      });
      s.space_waiters.fetch_sub(1);
    }
    const std::uint64_t tail = s.tail.load();
    const std::size_t pos = static_cast<std::size_t>(tail % capacity);
    if (options_.drain == DrainMode::kSample) {
      // The pre-ring submit() heap-allocated the sample copy and took the
      // global done mutex for the pending increment on every call — the
      // baseline mode keeps both ingestion costs, not just the drain side.
      std::vector<double> copy(x.begin(), x.end());
      s.slab.set_row(pos, copy);
      s.labels[pos] = true_label;
      std::lock_guard done_lock(done_mutex_);
      pending_.fetch_add(1);
    } else {
      s.slab.set_row(pos, x);
      s.labels[pos] = true_label;
      // pending_ rises before the row is published so the consumer's
      // burst-sized decrement can never run ahead of it.
      pending_.fetch_add(1);
    }
    // Stamp only the sampled slots (absolute position selects them, so the
    // drain side — which advances the same counter — reads exactly these).
    if (obs_on_ &&
        (tail & s.pipeline->obs().latency_sample_mask()) == 0) {
      s.submit_ns[pos] = obs::now_ns();
    }
    s.tail.store(tail + 1);
    ++s.telemetry.submitted;
    const std::size_t depth =
        static_cast<std::size_t>(tail + 1 - s.head.load());
    raise_high_water(s.telemetry.queue_high_water, depth);
    if (obs_on_) s.pipeline->obs().counters.update_ring_high_water(depth);
  }
  maybe_schedule(s);
  return true;
}

std::size_t PipelineManager::submit_batch(std::size_t id,
                                          const linalg::Matrix& x,
                                          std::span<const int> true_labels,
                                          SubmitStatus* status) {
  set_status(status, SubmitStatus::kOk);
  if (id >= streams_.size()) {
    set_status(status, SubmitStatus::kUnknownStream);
    return 0;
  }
  // A partial label span would silently pair rows with the wrong labels (or
  // read past the span) — only all-or-nothing is accepted.
  if (!true_labels.empty() && true_labels.size() != x.rows()) {
    set_status(status, SubmitStatus::kBadLabelSpan);
    return 0;
  }
  Stream& s = *streams_[id];
  if (x.cols() != template_config_.input_dim) {
    set_status(status, SubmitStatus::kDimensionMismatch);
    return 0;
  }
  Shard& shard = *shards_[s.shard];
  const std::uint64_t capacity = options_.queue_capacity;
  std::size_t accepted = 0;
  {
    std::unique_lock lock(s.produce_mutex);
    bool counted_block = false;
    std::size_t r = 0;
    while (r < x.rows()) {
      // Re-checked per iteration: the waits below release produce_mutex
      // (see submit()), so the stream may have gone cold mid-batch.
      if (s.residency == Stream::Residency::kCold &&
          !restore_cold(shard, s)) {
        set_status(status, SubmitStatus::kRestoreFailed);
        return accepted;
      }
      const std::uint64_t tail = s.tail.load();
      const std::uint64_t avail = capacity - (tail - s.head.load());
      if (avail == 0) {
        if (options_.backpressure == BackpressurePolicy::kReject) {
          s.telemetry.rejected += x.rows() - r;
          if (obs_on_) {
            s.pipeline->obs().counters.add_rejected(x.rows() - r);
          }
          break;
        }
        if (!counted_block) {
          ++s.telemetry.blocked;
          counted_block = true;
        }
        if (options_.dispatch == DispatchMode::kManual) {
          lock.unlock();
          poll(id);
          lock.lock();
          continue;
        }
        maybe_schedule(s);
        s.space_waiters.fetch_add(1);
        s.space_cv.wait(lock, [&] {
          return s.tail.load() - s.head.load() < capacity;
        });
        s.space_waiters.fetch_sub(1);
        continue;
      }
      // One reservation covers every row that fits right now: copy them
      // all, then publish with a single tail store.
      const std::size_t take =
          static_cast<std::size_t>(std::min<std::uint64_t>(avail,
                                                           x.rows() - r));
      pending_.fetch_add(take);
      // One timestamp per reservation segment: every sampled row of the
      // segment entered the ring "now" for submit->drain latency purposes.
      // Only slots whose absolute position matches the sample mask are
      // stamped — the drain side reads exactly those.
      const std::uint64_t t_sub = obs_on_ ? obs::now_ns() : 0;
      const std::uint64_t mask =
          obs_on_ ? s.pipeline->obs().latency_sample_mask() : 0;
      for (std::size_t i = 0; i < take; ++i) {
        const std::size_t pos =
            static_cast<std::size_t>((tail + i) % capacity);
        s.slab.set_row(pos, x.row(r + i));
        s.labels[pos] = true_labels.empty() ? -1 : true_labels[r + i];
        if (obs_on_ && ((tail + i) & mask) == 0) s.submit_ns[pos] = t_sub;
      }
      s.tail.store(tail + take);
      s.telemetry.submitted += take;
      const std::size_t depth =
          static_cast<std::size_t>(tail + take - s.head.load());
      raise_high_water(s.telemetry.queue_high_water, depth);
      if (obs_on_) s.pipeline->obs().counters.update_ring_high_water(depth);
      accepted += take;
      r += take;
    }
  }
  if (accepted > 0) maybe_schedule(s);
  return accepted;
}

std::size_t PipelineManager::drain_burst(Stream& s) {
  const std::size_t capacity = options_.queue_capacity;
  std::uint64_t head = s.head.load();
  std::uint64_t tail = s.tail.load();
  std::size_t total = 0;
  while (head != tail) {
    const std::size_t queued = static_cast<std::size_t>(tail - head);
    const std::size_t pos = static_cast<std::size_t>(head % capacity);
    // The largest contiguous slab range: stop at the ring-wrap boundary
    // (the wrapped remainder is the next burst, itself contiguous from
    // slot 0) and at the drain_batch_max chunk bound.
    const std::size_t burst = std::min(
        {queued, capacity - pos, options_.drain_batch_max});
    const std::uint64_t t0 = now_ns();
    if (options_.drain == DrainMode::kBatch) {
      {
        std::lock_guard lock(s.steps_mutex);
        if (burst > 1) {
          s.pipeline->process_batch_range(s.slab, pos, pos + burst,
                                          s.labels, s.steps);
        } else {
          s.steps.push_back(
              s.pipeline->process(s.slab.row(pos), s.labels[pos]));
        }
      }
      // Record before the head advance frees the slots: a producer may
      // reuse submit_ns[pos..] the moment head moves past them. Only the
      // sampled slots (absolute position & mask == 0) carry stamps.
      if (obs_on_) {
        obs::StreamObs& ob = s.pipeline->obs();
        const std::uint64_t mask = ob.latency_sample_mask();
        const std::uint64_t first = (head + mask) & ~mask;
        if (first < head + burst) {
          const std::uint64_t t_end = obs::now_ns();
          for (std::uint64_t a = first; a < head + burst; a += mask + 1) {
            ob.submit_to_drain.record(
                t_end - s.submit_ns[pos + (a - head)]);
          }
        }
        ob.counters.update_ring_high_water(queued);
      }
      head += burst;
      s.head.store(head);
      pending_.fetch_sub(burst);
      notify_space(s);
      ++s.telemetry.drain_bursts;
      ++s.telemetry.drain_burst_hist[burst_bucket(burst)];
    } else {
      // DrainMode::kSample — the pre-ring drain, kept as the in-binary
      // baseline for bench_manager_throughput with its full per-sample cost
      // profile: the old run_stream() popped a heap-allocated QueuedSample
      // from a deque under the stream mutex, processed it, pushed the step
      // under the mutex again, and decremented the global pending counter
      // under done_mutex_ — one allocation and three lock rounds per sample.
      for (std::size_t i = 0; i < burst; ++i) {
        std::vector<double> sample;
        int label;
        // Absolute position selects the sampled slots, matching the
        // producer's stamping predicate.
        const bool timed =
            obs_on_ &&
            (head & s.pipeline->obs().latency_sample_mask()) == 0;
        std::uint64_t sub_ns = 0;
        {
          std::lock_guard lock(s.produce_mutex);
          const std::span<const double> row = s.slab.row(pos + i);
          sample.assign(row.begin(), row.end());
          label = s.labels[pos + i];
          // Read the enqueue stamp before the head advance frees the slot.
          if (timed) sub_ns = s.submit_ns[pos + i];
          ++head;
          s.head.store(head);  // The old pop freed the slot before process.
        }
        notify_space(s);
        const PipelineStep step = s.pipeline->process(sample, label);
        if (timed) {
          s.pipeline->obs().submit_to_drain.record(obs::now_ns() - sub_ns);
        }
        {
          std::lock_guard lock(s.steps_mutex);
          s.steps.push_back(step);
        }
        {
          std::lock_guard lock(done_mutex_);
          pending_.fetch_sub(1);
        }
      }
      s.telemetry.drain_bursts += burst;
      s.telemetry.drain_burst_hist[0] += burst;
    }
    s.telemetry.busy_ns += now_ns() - t0;
    s.telemetry.processed += burst;
    raise_high_water(s.telemetry.queue_high_water, queued);
    total += burst;
    tail = s.tail.load();
  }
  return total;
}

void PipelineManager::notify_space(Stream& s) {
  if (s.space_waiters.load() == 0) return;
  // Taking the produce mutex pins any producer either before its full-ring
  // check (it will see the new head) or inside the cv wait (it will get
  // this notify) — no missed wakeup.
  { std::lock_guard lock(s.produce_mutex); }
  s.space_cv.notify_all();
}

void PipelineManager::notify_done() {
  if (pending_.load() != 0 || active_.load() != 0) return;
  std::lock_guard lock(done_mutex_);
  done_cv_.notify_all();
}

void PipelineManager::poll(std::size_t id) {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  Stream& s = *streams_[id];
  // Empty-ring fast path: the manual drain loop polls every stream after
  // the coalesced planning pass has already emptied most rings — skip the
  // scheduled-flag claim and the after_drain bookkeeping for those.
  if (s.tail.load() == s.head.load()) return;
  bool drained = false;
  for (;;) {
    // Take the consumer role through the same flag the shard workers use,
    // so poll() never violates the one-consumer-per-stream invariant.
    if (s.scheduled.exchange(true)) break;
    drain_burst(s);
    drained = true;
    s.scheduled.store(false);
    if (s.tail.load() == s.head.load()) break;
  }
  // Keep the LRU order and budget honest in manual mode too.
  if (drained) after_drain(s);
  notify_done();
}

void PipelineManager::drain() {
  if (options_.dispatch == DispatchMode::kManual) {
    const bool planning = options_.drain_opts.coalesce &&
                          options_.drain == DrainMode::kBatch;
    while (pending_.load() != 0) {
      if (planning) {
        // Deterministic coalescing for the manual dispatcher: every shard
        // plans over all of its streams with published rows, then the poll
        // sweep drains the leftovers. Manual mode is single-threaded
        // operation by design, but the consumer role is still claimed per
        // stream through the scheduled flag so a concurrent poll() can
        // never double-drain.
        for (auto& shard : shards_) shard->plan_candidates.clear();
        for (auto& sp : streams_) {
          Stream& s = *sp;
          if (s.tail.load() == s.head.load()) continue;
          if (s.scheduled.exchange(true)) continue;
          shards_[s.shard]->plan_candidates.push_back(&s);
        }
        for (auto& shard : shards_) {
          coalesce_candidates(*shard);
          for (Stream* s : shard->plan_candidates) {
            s->scheduled.store(false);
            after_drain(*s);
          }
        }
        if (pending_.load() == 0) {
          // The planning pass consumed every published row — the usual
          // steady state when all streams fit one group. Skip the poll
          // sweep; the loop condition re-checks for racing producers.
          notify_done();
          continue;
        }
      }
      for (std::size_t id = 0; id < streams_.size(); ++id) poll(id);
    }
    return;
  }
  std::unique_lock lock(done_mutex_);
  done_cv_.wait(lock, [this] {
    return pending_.load() == 0 && active_.load() == 0;
  });
}

std::vector<PipelineStep> PipelineManager::take_steps(std::size_t id) {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  Stream& s = *streams_[id];
  std::lock_guard lock(s.steps_mutex);
  std::vector<PipelineStep> steps = std::move(s.steps);
  s.steps.clear();
  return steps;
}

void PipelineManager::take_steps(std::size_t id,
                                 std::vector<PipelineStep>& out) {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  Stream& s = *streams_[id];
  std::lock_guard lock(s.steps_mutex);
  out.insert(out.end(), s.steps.begin(), s.steps.end());
  s.steps.clear();
}

const StreamTelemetry& PipelineManager::telemetry(std::size_t id) const {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  return streams_[id]->telemetry;
}

const PipelineStats& PipelineManager::stats(std::size_t id) const {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  Stream& s = *streams_[id];
  Shard& shard = *shards_[s.shard];
  std::lock_guard lock(shard.evict_mutex);
  s.stats_view = s.carried_stats;
  if (s.residency == Stream::Residency::kHot) {
    s.stats_view += s.pipeline->stats();
  }
  return s.stats_view;
}

obs::Snapshot PipelineManager::stats() const {
  obs::Snapshot snap;
  snap.streams.reserve(streams_.size());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    Stream& s = *streams_[i];
    Shard& shard = *shards_[s.shard];
    // The shard's evict mutex freezes this stream's residency for the read:
    // the snapshot never observes a half-evicted stream. Uncontended unless
    // an eviction or restore is in flight on the same shard.
    std::lock_guard lock(shard.evict_mutex);
    obs::StreamSnapshot ss;
    if (s.carried_obs != nullptr) ss = *s.carried_obs;
    ss.stream_id = i;
    if (s.residency == Stream::Residency::kHot) {
      ss += s.pipeline->obs().snapshot(i);
    }
    snap.streams.push_back(std::move(ss));
  }
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->evict_mutex);
    obs::ShardSnapshot sh = shard->obs.snapshot(shard->index);
    sh.pinned = shard->pinned.load();
    sh.hot_streams = shard->hot_streams;
    sh.cold_streams = shard->cold_streams;
    sh.hot_bytes = shard->hot_bytes;
    sh.cold_bytes = shard->cold.bytes();
    snap.shards.push_back(std::move(sh));
  }
  return snap;
}

PipelineStats PipelineManager::totals() const {
  PipelineStats totals;
  for (std::size_t i = 0; i < streams_.size(); ++i) totals += stats(i);
  return totals;
}

}  // namespace edgedrift::core
