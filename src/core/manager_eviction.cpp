// The LRU admission/eviction layer: serializing idle streams into the
// per-shard cold store, restoring them on the next submit, and the
// mass-registration path that seeds large stream populations cold.
//
// Locking (see serving_shard.hpp): every residency transition holds the
// stream's produce_mutex AND the shard's evict_mutex. The restore path
// (producer) acquires produce -> evict; the eviction side acquires evict
// first and only ever try_locks a victim's produce_mutex, so the two orders
// cannot deadlock — a busy victim is simply skipped until its next idle
// moment.
#include <sstream>
#include <utility>

#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/io/checkpoint.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::core {

std::size_t PipelineManager::hot_footprint(const Stream& s) const {
  std::size_t bytes = s.pipeline != nullptr ? s.pipeline->memory_bytes() : 0;
  bytes += s.slab.size() * sizeof(double);
  bytes += s.labels.capacity() * sizeof(int);
  bytes += s.submit_ns.capacity() * sizeof(std::uint64_t);
  return bytes;
}

bool PipelineManager::evictable_locked(const Stream& s) const {
  // Idle: no published-but-undrained rows, no drain cycle holding the
  // consumer role (the worker only touches the pipeline inside a cycle),
  // and no producer parked in the space_cv wait — a waiter released the
  // produce_mutex (so the try_lock may succeed) but will write into the
  // slab the moment slots free up. Serializable: fitted, centroid-family
  // detector (the checkpoint format's requirement), and not mid-recovery
  // (recovery state is not persisted).
  return s.residency == Stream::Residency::kHot &&
         !s.scheduled.load() && s.head.load() == s.tail.load() &&
         s.space_waiters.load() == 0 &&
         s.pipeline != nullptr && s.pipeline->fitted() &&
         !s.pipeline->recovering() &&
         s.pipeline->centroid_detector() != nullptr;
}

bool PipelineManager::evict_locked(Shard& shard, Stream& s) {
  const std::uint64_t t0 = obs_on_ ? obs::now_ns() : 0;
  std::ostringstream out(std::ios::binary);
  if (!io::save_pipeline(out, *s.pipeline)) return false;
  shard.cold.put(static_cast<std::uint64_t>(s.id),
                 std::make_shared<const std::string>(out.str()));

  // Carry the pipeline's books across the residency gap — the live blocks
  // die with the pipeline, stats(id)/stats() report carried + live.
  s.carried_stats += s.pipeline->stats();
  if (obs_on_) {
    obs::StreamSnapshot live = s.pipeline->obs().snapshot(s.id);
    if (s.carried_obs == nullptr) {
      s.carried_obs =
          std::make_unique<obs::StreamSnapshot>(std::move(live));
    } else {
      *s.carried_obs += live;
    }
  }

  // Release the hot state: the model and the ring storage. Telemetry,
  // steps and the monotonic ring counters stay (the ring is empty, so
  // head == tail survives the slab's absence).
  shard.lru.erase(&s);
  EDGEDRIFT_ASSERT(shard.hot_streams > 0, "hot-stream accounting underflow");
  --shard.hot_streams;
  ++shard.cold_streams;
  shard.hot_bytes -= s.hot_footprint_bytes;
  s.hot_footprint_bytes = 0;
  s.pipeline.reset();
  s.slab = linalg::Matrix();
  s.labels = std::vector<int>();
  s.submit_ns = std::vector<std::uint64_t>();
  s.residency = Stream::Residency::kCold;

  shard.obs.add_eviction();
  if (obs_on_) shard.obs.evict_ns().record(obs::now_ns() - t0);
  return true;
}

void PipelineManager::enforce_budget_locked(Shard& shard,
                                            const Stream* skip) {
  const std::size_t budget = options_.hot_stream_budget;
  while (shard.hot_streams > budget) {
    // Walk from the LRU end toward MRU for the first evictable victim; a
    // stream whose producer is mid-submit (try_lock fails) or which is
    // busy/unserializable is skipped. `skip` marks the stream whose
    // producer is running this enforcement (a restore): its produce_mutex
    // is already held by this thread, so try_locking it would be UB — and
    // evicting the stream being restored would be pointless anyway.
    Stream* victim = shard.lru.lru();
    bool evicted = false;
    while (victim != nullptr) {
      Stream* next_older = victim->lru_prev;
      if (victim != skip) {
        std::unique_lock plock(victim->produce_mutex, std::try_to_lock);
        if (plock.owns_lock() && evictable_locked(*victim) &&
            evict_locked(shard, *victim)) {
          evicted = true;
          break;
        }
      }
      victim = next_older;
    }
    if (!evicted) {
      // Over budget but nothing can go right now (everything hot is busy
      // or unserializable). Count it and retry after the next drain.
      shard.obs.add_evict_skipped();
      break;
    }
  }
}

void PipelineManager::after_drain(Stream& s) {
  Shard& shard = *shards_[s.shard];
  std::lock_guard lock(shard.evict_mutex);
  if (s.residency == Stream::Residency::kHot && s.in_lru) {
    shard.lru.touch(&s);
  }
  if (options_.hot_stream_budget > 0) enforce_budget_locked(shard);
}

bool PipelineManager::evict(std::size_t id) {
  if (id >= streams_.size()) return false;
  Stream& s = *streams_[id];
  Shard& shard = *shards_[s.shard];
  std::lock_guard elock(shard.evict_mutex);
  std::unique_lock plock(s.produce_mutex, std::try_to_lock);
  if (!plock.owns_lock()) return false;
  if (!evictable_locked(s)) return false;
  return evict_locked(shard, s);
}

bool PipelineManager::resident(std::size_t id) const {
  EDGEDRIFT_ASSERT(id < streams_.size(), "stream id out of range");
  Stream& s = *streams_[id];
  Shard& shard = *shards_[s.shard];
  std::lock_guard lock(shard.evict_mutex);
  return s.residency == Stream::Residency::kHot;
}

bool PipelineManager::restore_cold(Shard& shard, Stream& s) {
  // Caller holds s.produce_mutex, so no other producer can race this
  // restore and the eviction side's try_lock keeps its hands off s.
  const std::uint64_t t0 = obs_on_ ? obs::now_ns() : 0;
  const std::shared_ptr<const std::string> blob =
      shard.cold.peek(static_cast<std::uint64_t>(s.id));
  if (blob == nullptr) {
    shard.obs.add_restore_failure();
    return false;
  }
  std::istringstream in(*blob, std::ios::binary);
  std::string err;
  std::optional<Pipeline> pipeline = io::load_pipeline(
      in, template_config_.numerics, &err, &template_config_);
  if (!pipeline) {
    // The blob stays in the store: the stream remains cold-but-addressed,
    // and the caller surfaces kRestoreFailed (with the blob intact an
    // operator can still extract or repair it).
    shard.obs.add_restore_failure();
    return false;
  }
  s.pipeline = std::make_unique<Pipeline>(std::move(*pipeline));
  s.slab.resize_zero(options_.queue_capacity, template_config_.input_dim);
  s.labels.assign(options_.queue_capacity, -1);
  if (obs_on_) s.submit_ns.assign(options_.queue_capacity, 0);
  {
    std::lock_guard elock(shard.evict_mutex);
    s.residency = Stream::Residency::kHot;
    s.hot_footprint_bytes = hot_footprint(s);
    ++shard.hot_streams;
    EDGEDRIFT_ASSERT(shard.cold_streams > 0,
                     "cold-stream accounting underflow");
    --shard.cold_streams;
    shard.hot_bytes += s.hot_footprint_bytes;
    shard.lru.push_mru(&s);
    shard.cold.erase(static_cast<std::uint64_t>(s.id));
    shard.obs.add_restore();
    if (obs_on_) shard.obs.restore_ns().record(obs::now_ns() - t0);
    // Admitting this stream may push the shard over budget: make room by
    // evicting someone colder before the submit proceeds.
    if (options_.hot_stream_budget > 0) enforce_budget_locked(shard, &s);
  }
  return true;
}

std::size_t PipelineManager::seed_cold_from(std::size_t source_id,
                                            std::size_t count) {
  EDGEDRIFT_ASSERT(source_id < streams_.size(), "source stream out of range");
  Stream& src = *streams_[source_id];
  EDGEDRIFT_ASSERT(src.residency == Stream::Residency::kHot &&
                       src.pipeline != nullptr && src.pipeline->fitted(),
                   "seed_cold_from needs a fitted, resident source stream");
  std::ostringstream out(std::ios::binary);
  const bool ok = io::save_pipeline(out, *src.pipeline);
  EDGEDRIFT_ASSERT(ok, "seed_cold_from: source stream is not serializable "
                       "(centroid detector required)");
  // One blob, shared by every seeded id: the whole population costs one
  // serialization plus one string, however large `count` is.
  const auto blob = std::make_shared<const std::string>(out.str());
  const std::size_t first = streams_.size();
  streams_.reserve(first + count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t id = first + i;
    auto s = std::make_unique<Stream>();
    s->id = id;
    s->shard = shard_of(id);
    s->residency = Stream::Residency::kCold;
    Shard& shard = *shards_[s->shard];
    shard.cold.put_memory(static_cast<std::uint64_t>(id), blob);
    {
      std::lock_guard lock(shard.evict_mutex);
      ++shard.cold_streams;
    }
    streams_.push_back(std::move(s));
  }
  return first;
}

std::size_t PipelineManager::hot_streams() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->evict_mutex);
    total += shard->hot_streams;
  }
  return total;
}

std::size_t PipelineManager::cold_streams() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->evict_mutex);
    total += shard->cold_streams;
  }
  return total;
}

}  // namespace edgedrift::core
