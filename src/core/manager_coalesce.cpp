// The cross-stream drain planner: shared-projection mega-batch scoring.
//
// A high-density shard wakes with many ready streams, each carrying a small
// burst (often 1-8 rows). Draining them one stream at a time runs one tiny
// projection GEMM per stream — all kernel ramp, no steady state. But every
// stream seeded from one template (seed_cold_from) or restored from the
// same checkpoint shares a bit-identical random projection, so their bursts
// can share ONE GEMM: the planner gathers the pending ring rows of every
// ready stream in the same projection group into a staging slab, projects
// the whole mega-batch once, and scatters the hidden rows back into each
// stream's own packed-beta scoring and drift detection
// (Pipeline::process_batch_from_hidden).
//
// Grouping is keyed on Pipeline::projection_fingerprint() — the alpha/bias/
// shape/activation digest folded with the numerics tier — so two streams
// land in one group only when their hidden batches are bit-identical and
// their scoring replicas have the same format. The projection GEMM is
// row-independent, which makes the coalesced drain bit-identical to the
// per-stream drain at kExactF64 and decision-equivalent at the approximate
// tiers (tests/test_coalesced_drain.cpp).
//
// Scheduling safety: the caller owns every candidate's `scheduled` flag
// (the shard worker took them off the ready stack; the kManual drain wins
// the flag explicitly), which is exactly the condition that blocks eviction
// (evictable_locked requires !scheduled) — so no stream can be evicted or
// restored between group formation and scatter. Streams that are
// ineligible (recovering, unfitted, released) or whose group is too small
// fall back to the ordinary per-stream drain that always follows a
// planning pass; the same pass also picks up rows the staging caps left
// behind.
#include <algorithm>

#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/linalg/gather.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::core {

bool PipelineManager::coalesce_eligible(const Stream& s) const {
  // Residency and the pipeline pointer are stable while the caller holds
  // the stream's scheduled flag: eviction requires !scheduled. With the
  // default per-sample training (train_chunk <= 1) a stream mid-recovery
  // drains per-stream, keeping the sequential path's exact update order;
  // with chunked training opted in, recovery consumes whole bursts through
  // the bucketed rank-k path, so the stream stays inside the mega-batch
  // group and keeps reusing the shared-projection GEMM rows.
  return s.residency == Stream::Residency::kHot && s.pipeline != nullptr &&
         s.pipeline->fitted() &&
         (!s.pipeline->recovering() ||
          s.pipeline->config().train_chunk > 1) &&
         s.head.load() != s.tail.load();
}

void PipelineManager::coalesce_candidates(Shard& shard) {
  const DrainOptions& opts = options_.drain_opts;
  auto& cand = shard.plan_candidates;
  if (cand.empty()) return;
  if (cand.size() < opts.coalesce_min_streams) {
    shard.obs.add_coalesce_fallback(cand.size());
    return;
  }
  // One fingerprint read (and pipeline pointer chase) per stream; the sort
  // and the run scan below compare flat keys. Sorting by fingerprint makes
  // every projection group one contiguous run.
  auto& keys = shard.plan_keys;
  keys.clear();
  std::size_t ineligible = 0;
  for (Stream* s : cand) {
    if (coalesce_eligible(*s)) {
      keys.emplace_back(s->pipeline->projection_fingerprint(), s);
    } else {
      ++ineligible;
    }
  }
  shard.obs.add_coalesce_fallback(ineligible);
  const auto fp_less = [](const std::pair<std::uint64_t, Stream*>& a,
                          const std::pair<std::uint64_t, Stream*>& b) {
    return a.first < b.first;
  };
  // The high-density steady state is one seeded template group — already
  // "sorted". Pay O(n) to check before paying O(n log n) to sort.
  if (!std::is_sorted(keys.begin(), keys.end(), fp_less)) {
    std::sort(keys.begin(), keys.end(), fp_less);
  }

  auto run_begin = keys.begin();
  while (run_begin != keys.end()) {
    auto run_end = run_begin + 1;
    while (run_end != keys.end() && run_end->first == run_begin->first) {
      ++run_end;
    }
    const std::size_t width = static_cast<std::size_t>(run_end - run_begin);
    if (width < opts.coalesce_min_streams) {
      // Group of one (or a fingerprint mismatch splitting the shard):
      // staging would only add a copy on top of the same GEMM.
      shard.obs.add_coalesce_fallback(width);
      run_begin = run_end;
      continue;
    }
    // Pack the group: one row block per member, bounded per stream by
    // drain_batch_max and overall by the staging budget. Only rows already
    // published at planning time are taken — the planner never waits on a
    // producer.
    shard.plan.clear();
    std::size_t total = 0;
    for (auto it = run_begin; it != run_end && total < opts.coalesce_rows;
         ++it) {
      Stream& s = *it->second;
      const std::uint64_t head = s.head.load();
      const std::size_t queued =
          static_cast<std::size_t>(s.tail.load() - head);
      const std::size_t take =
          std::min({queued, options_.drain_batch_max,
                    opts.coalesce_rows - total});
      if (take == 0) continue;
      shard.plan.push_back({&s, head, take, total, queued});
      total += take;
    }
    if (shard.plan.empty() || shard.plan.size() < opts.coalesce_min_streams) {
      shard.obs.add_coalesce_fallback(width);
    } else {
      coalesce_group(shard);
    }
    run_begin = run_end;
  }
}

void PipelineManager::coalesce_group(Shard& shard) {
  auto& plan = shard.plan;
  const std::size_t capacity = options_.queue_capacity;
  const std::size_t total = plan.back().offset + plan.back().take;
  const std::uint64_t t0 = obs::now_ns();

  // Gather: each member's ring burst is at most two contiguous segments of
  // its slab, copied into its reserved staging block. Labels ride along in
  // a parallel array so the scatter can hand each stream a span indexed by
  // staging row, exactly like the per-stream drain hands s.labels indexed
  // by ring slot.
  shard.stage_x.resize_discard(total, template_config_.input_dim);
  if (shard.stage_labels.size() < total) shard.stage_labels.resize(total);
  for (const auto& m : plan) {
    const std::size_t slot = static_cast<std::size_t>(m.head % capacity);
    linalg::gather_ring_rows(m.stream->slab, slot, m.take, shard.stage_x,
                             m.offset);
    linalg::gather_ring_values(
        m.stream->labels, slot, m.take,
        std::span<int>(shard.stage_labels).subspan(m.offset, m.take));
  }

  // One shared projection GEMM for the whole group. Any member's
  // projection produces bit-identical rows (equal fingerprints), so the
  // first one serves. Alpha's GEMM panels are prepacked and cached on the
  // shard keyed by the raw projection fingerprint — in the one-template
  // steady state every mega-batch reuses the pack.
  const oselm::Projection& proj =
      *plan.front().stream->pipeline->model().projection();
  if (!shard.packed_alpha_valid ||
      shard.packed_alpha_fp != proj.fingerprint()) {
    proj.pack_alpha(shard.packed_alpha);
    shard.packed_alpha_fp = proj.fingerprint();
    shard.packed_alpha_valid = true;
  }
  proj.hidden_batch_into(shard.stage_x, shard.stage_hidden,
                         shard.packed_alpha);

  // Scatter: each stream scores its row block against its own packed beta
  // and runs its own detector, then releases its ring slots. Per-slot
  // bookkeeping mirrors drain_burst exactly — latency stamps are read
  // before the head advance frees the slots for producer reuse.
  for (const auto& m : plan) {
    Stream& s = *m.stream;
    {
      std::lock_guard lock(s.steps_mutex);
      if (m.take == 1) {
        // Single-row member: the lean scalar step, mirroring drain_burst's
        // burst==1 fast path. At 1-row bursts the batch entry's per-call
        // machinery costs more than the projection it skips; the scalar
        // from-hidden step keeps only the saving.
        s.steps.push_back(s.pipeline->process_from_hidden(
            shard.stage_x.row(m.offset), shard.stage_hidden.row(m.offset),
            shard.stage_labels[m.offset]));
      } else {
        s.pipeline->process_batch_from_hidden(
            shard.stage_x, shard.stage_hidden, m.offset, m.offset + m.take,
            shard.stage_labels, s.steps);
      }
    }
    if (obs_on_) {
      obs::StreamObs& ob = s.pipeline->obs();
      const std::uint64_t mask = ob.latency_sample_mask();
      const std::uint64_t first = (m.head + mask) & ~mask;
      if (first < m.head + m.take) {
        const std::uint64_t t_end = obs::now_ns();
        for (std::uint64_t a = first; a < m.head + m.take; a += mask + 1) {
          ob.submit_to_drain.record(
              t_end - s.submit_ns[static_cast<std::size_t>(a % capacity)]);
        }
      }
      ob.counters.update_ring_high_water(m.queued);
    }
    s.head.store(m.head + m.take);
    notify_space(s);
    ++s.telemetry.drain_bursts;
    ++s.telemetry.drain_burst_hist[detail::burst_bucket(m.take)];
    s.telemetry.processed += m.take;
    detail::raise_high_water(s.telemetry.queue_high_water, m.queued);
  }

  // One decrement for the whole group: nothing reads pending_ between the
  // member scatters (done-notification happens in the caller's per-stream
  // sweep), so batching the RMW is observationally equivalent and drops
  // group_size-1 contended atomics per mega-batch.
  pending_.fetch_sub(total);

  // The group's wall time covers gather + GEMM + every member's scatter;
  // attribute it to members by row share so per-stream samples_per_second
  // stays meaningful.
  const std::uint64_t elapsed = obs::now_ns() - t0;
  for (const auto& m : plan) {
    m.stream->telemetry.busy_ns += elapsed * m.take / total;
  }
  shard.obs.add_coalesced_gemm(total, plan.size());
}

}  // namespace edgedrift::core
