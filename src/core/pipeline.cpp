#include "edgedrift/core/pipeline.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "edgedrift/cluster/matching.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::core {
namespace {

drift::CentroidDetectorConfig detector_config(const PipelineConfig& config) {
  drift::CentroidDetectorConfig det;
  det.num_labels = config.num_labels;
  det.dim = config.input_dim;
  det.window_size = config.window_size;
  det.theta_error = config.theta_error;  // May be re-set after calibration.
  det.theta_drift = 0.0;                 // Always from Eq. 1.
  det.z = config.z;
  det.ewma_decay = config.ewma_decay;
  det.initial_count = config.detector_initial_count;
  return det;
}

/// Per-label mean of a labeled batch.
linalg::Matrix per_label_means(const linalg::Matrix& x,
                               std::span<const int> labels,
                               std::size_t num_labels) {
  linalg::Matrix means(num_labels, x.cols());
  std::vector<std::size_t> counts(num_labels, 0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto label = static_cast<std::size_t>(labels[i]);
    linalg::axpy(1.0, x.row(i), means.row(label));
    ++counts[label];
  }
  for (std::size_t c = 0; c < num_labels; ++c) {
    if (counts[c] == 0) continue;
    const double inv = 1.0 / static_cast<double>(counts[c]);
    for (auto& v : means.row(c)) v *= inv;
  }
  return means;
}

}  // namespace

Pipeline::Pipeline(PipelineConfig config)
    : config_(config),
      reconstructor_(config.reconstruction, config.num_labels,
                     config.input_dim),
      obs_(std::make_unique<obs::StreamObs>(config.obs, config.num_labels)),
      obs_enabled_(obs_->enabled()),
      obs_mask_(obs_->latency_sample_mask()) {
  EDGEDRIFT_ASSERT(config_.input_dim > 0, "input_dim must be set");
  EDGEDRIFT_ASSERT(config_.num_labels > 0, "num_labels must be set");
  EDGEDRIFT_ASSERT(config_.max_batch_rows > 0, "max_batch_rows must be > 0");
  // Journal scratch: per_label_distances() writes into this preallocated
  // span on the drift branch, keeping event recording heap-free.
  obs_label_dist_.resize(config_.num_labels, 0.0);
  util::Rng rng(config_.seed);
  auto projection =
      oselm::make_projection(config_.input_dim, config_.hidden_dim,
                             config_.activation, rng, config_.weight_scale);
  model_ = std::make_unique<model::MultiInstanceModel>(
      config_.num_labels, std::move(projection), config_.reg_lambda);
  model_->set_numerics_tier(config_.numerics);
  detector_ =
      drift::make_detector(config_.detector, detector_config(config_));
  if (config_.detector.kind == drift::DetectorKind::kCentroid) {
    centroid_ = static_cast<drift::CentroidDetector*>(detector_.get());
  }
  // Cache the coalescing-group digest: the projection is immutable for the
  // pipeline's whole life (recovery retrains beta, reconstruction keeps the
  // projection, checkpoint restore builds a new Pipeline) and the numerics
  // tier is fixed at construction, so the fold never changes. The drain
  // planner reads this in its sort comparator every planning pass.
  std::uint64_t fp = model_->projection()->fingerprint();
  fp ^= static_cast<std::uint64_t>(config_.numerics) +
        0x9e3779b97f4a7c15ULL + (fp << 6) + (fp >> 2);
  projection_fp_ = fp;
}

void Pipeline::fit(const linalg::Matrix& x, std::span<const int> labels) {
  model_->init_train(x, labels);

  // Pre-grow the streaming scratch to the steady-state geometry up front:
  // the calibration pass below reuses the batch workspace, and even the
  // first process()/process_batch() call after fit() touches the heap zero
  // times (the buffers are grow-only; pinned by tests/test_allocation_free).
  batch_ws_.reserve(config_.max_batch_rows, config_.input_dim,
                    config_.hidden_dim, config_.num_labels, config_.numerics);
  chunk_preds_.reserve(config_.max_batch_rows);
  kernel_ws_.hidden(config_.hidden_dim);
  kernel_ws_.recon(config_.num_labels * config_.input_dim);
  kernel_ws_.scores(config_.num_labels);
  if (config_.numerics != linalg::NumericsTier::kExactF64) {
    kernel_ws_.input_f32(config_.input_dim);
    kernel_ws_.hidden_f32(config_.hidden_dim);
    kernel_ws_.recon_f32(config_.num_labels * config_.input_dim);
    kernel_ws_.hidden_i8(config_.hidden_dim);
    kernel_ws_.accum_i32(config_.num_labels * config_.input_dim);
  }
  if (config_.train_chunk > 1) {
    // Chunked training scratch: every instance's Woodbury workspace and
    // rank-k buffers plus the bucket gather scratch, pre-grown so a chunked
    // drain honors the steady-state allocation-free contract from its very
    // first recovery chunk (pinned by tests/test_allocation_free.cpp).
    const std::size_t chunk =
        std::min(config_.train_chunk, config_.max_batch_rows);
    model_->reserve_chunk_train(chunk, batch_ws_);
    chunk_labels_.resize(chunk);
  }

  if (config_.theta_error <= 0.0) {
    // Auto-calibrate the anomaly gate from the training scores: a window
    // should open only for samples the trained model reconstructs badly.
    // Score through the fused batch GEMM path in max_batch_rows chunks —
    // score_batch rows are bit-identical to per-sample score_of (pinned by
    // tests/test_fused_scoring), so the calibrated gate is unchanged.
    std::vector<double> scores(x.rows());
    std::size_t i = 0;
    while (i < x.rows()) {
      const std::size_t chunk =
          std::min(x.rows() - i, config_.max_batch_rows);
      // Rows [i, i+chunk) are contiguous in x — score them in place.
      model_->score_batch({x, i, i + chunk}, batch_ws_);
      for (std::size_t r = 0; r < chunk; ++r) {
        scores[i + r] =
            batch_ws_.scores(r, static_cast<std::size_t>(labels[i + r]));
      }
      i += chunk;
    }
    theta_error_ = linalg::mean(scores) +
                   config_.theta_error_z * linalg::stddev_population(scores);
  } else {
    theta_error_ = config_.theta_error;
  }
  // Set the gate first, then calibrate once — the detector sees its final
  // configuration in a single pass.
  detector_->set_anomaly_gate(theta_error_);
  detector_->calibrate(x, labels);

  // Concept bookkeeping for recoveries. Detectors that track no centroids
  // of their own get a pipeline-owned running estimate; everyone gets a
  // per-label anchor for post-reconstruction re-alignment.
  train_rows_ = x.rows();
  trained_means_ = per_label_means(x, labels, config_.num_labels);
  tracker_enabled_ = detector_->reconstruction_seed() == nullptr;
  if (tracker_enabled_) {
    tracker_.centroids = trained_means_;
    tracker_.counts.assign(config_.num_labels, 1);
  }
  if (detector_->needs_reference_data()) {
    // After a recovery the batch detector's reference is stale; it is
    // re-fit from a fresh window at least as large as the training
    // reference — a reference of only one batch makes the fit so noisy the
    // detector re-fires on its own calibration error.
    const std::size_t rows =
        std::max(detector_->reference_rows(), train_rows_);
    refit_buffer_.resize_zero(rows, config_.input_dim);
  }
  state_ = RecoveryState::kIdle;
  refit_fill_ = 0;
  fitted_ = true;
}

PipelineStep Pipeline::process(std::span<const double> x, int true_label) {
  EDGEDRIFT_ASSERT(fitted_, "process() before fit()");
  if (!model_frozen()) return recovery_step(x);
  return frozen_step(x, timed_predict(x), true_label);
}

PipelineStep Pipeline::process_from_hidden(std::span<const double> x,
                                           std::span<const double> hidden,
                                           int true_label) {
  EDGEDRIFT_ASSERT(fitted_, "process_from_hidden() before fit()");
  if (!model_frozen()) return recovery_step(x);
  return frozen_step(x, timed_predict_from_hidden(x, hidden), true_label);
}

std::vector<PipelineStep> Pipeline::process_batch(
    const linalg::Matrix& x, std::span<const int> true_labels) {
  EDGEDRIFT_ASSERT(true_labels.empty() || true_labels.size() == x.rows(),
                   "true_labels must be empty or one per row");
  std::vector<PipelineStep> steps;
  process_batch_range(x, 0, x.rows(), true_labels, steps);
  return steps;
}

void Pipeline::process_batch_range(const linalg::Matrix& x,
                                   std::size_t row_begin, std::size_t row_end,
                                   std::span<const int> true_labels,
                                   std::vector<PipelineStep>& out) {
  process_batch_range_impl(x, nullptr, row_begin, row_end, true_labels, out);
}

void Pipeline::process_batch_from_hidden(const linalg::Matrix& x,
                                         const linalg::Matrix& hidden,
                                         std::size_t row_begin,
                                         std::size_t row_end,
                                         std::span<const int> true_labels,
                                         std::vector<PipelineStep>& out) {
  EDGEDRIFT_ASSERT(
      hidden.rows() == x.rows() && hidden.cols() == config_.hidden_dim,
      "hidden block must be row-parallel to x");
  process_batch_range_impl(x, &hidden, row_begin, row_end, true_labels, out);
}

void Pipeline::process_batch_range_impl(const linalg::Matrix& x,
                                        const linalg::Matrix* hidden,
                                        std::size_t row_begin,
                                        std::size_t row_end,
                                        std::span<const int> true_labels,
                                        std::vector<PipelineStep>& out) {
  EDGEDRIFT_ASSERT(fitted_, "process_batch() before fit()");
  EDGEDRIFT_ASSERT(row_begin <= row_end && row_end <= x.rows(),
                   "row range out of bounds");
  EDGEDRIFT_ASSERT(true_labels.empty() || true_labels.size() >= row_end,
                   "true_labels must be empty or cover the row range");
  out.reserve(out.size() + (row_end - row_begin));
  std::size_t i = row_begin;
  while (i < row_end) {
    if (!model_frozen()) {
      // A recovery is training the model. With chunked training enabled,
      // try to absorb a whole chunk of recovery samples through the
      // bucketed rank-k path first; the per-sample fallback below handles
      // everything the chunk path declines (coordinate phases, finishing
      // samples, 1-row tails) and the train_chunk == 1 default, keeping the
      // exact sequential recovery bit-identical.
      if (config_.train_chunk > 1) {
        const std::size_t consumed =
            recovery_chunk(x, hidden, i, row_end, out);
        if (consumed > 0) {
          i += consumed;
          continue;
        }
      }
      // Sequential path: predictions depend on every intervening update.
      // When a coalesced drain hands us pre-projected hidden rows, those
      // rows stay valid but unused here — recovery retrains beta, not the
      // projection.
      out.push_back(recovery_step(x.row(i)));
      ++i;
      continue;
    }
    // While frozen, predictions are a pure per-sample function of the
    // model: pre-score a whole chunk through the GEMM kernels (bit-identical
    // to the scalar path), then run the detector sequentially over it. The
    // chunk rows are contiguous in x (row-major), so they feed the kernels
    // as a view — no staging copy, whether x is a caller batch or a
    // PipelineManager ring slab.
    const std::size_t chunk = std::min(row_end - i, config_.max_batch_rows);
    const linalg::ConstMatrixView chunk_view{x, i, i + chunk};
    chunk_preds_.resize(chunk);
    // Score-stage latency for the batch path: one clock pair per chunk,
    // recorded as the chunk's mean per-sample cost (the per-sample path
    // records individual samples instead — see timed_predict).
    const bool obs_on = obs_enabled_;
    const std::uint64_t obs_t0 = obs_on ? obs::now_ns() : 0;
    if (stages_ != nullptr) {
      util::StageTimer::Scope scope(*stages_, kStagePredict);
      if (hidden != nullptr) {
        model_->predict_batch_from_hidden(chunk_view, {*hidden, i, i + chunk},
                                          batch_ws_, chunk_preds_);
      } else {
        model_->predict_batch(chunk_view, batch_ws_, chunk_preds_);
      }
    } else if (hidden != nullptr) {
      model_->predict_batch_from_hidden(chunk_view, {*hidden, i, i + chunk},
                                        batch_ws_, chunk_preds_);
    } else {
      model_->predict_batch(chunk_view, batch_ws_, chunk_preds_);
    }
    if (obs_on) obs_->score.record((obs::now_ns() - obs_t0) / chunk);
    ++stats_.batch_chunks;
    std::size_t consumed = 0;
    for (std::size_t r = 0; r < chunk; ++r) {
      const int tl = true_labels.empty() ? -1 : true_labels[i + r];
      out.push_back(
          frozen_step(x.row(i + r), chunk_preds_[r], tl,
                      /*count_io=*/false));
      ++consumed;
      // A detection just started a recovery: the remaining pre-scored
      // predictions are stale (the model is about to retrain).
      if (!model_frozen()) break;
    }
    // Bulk the samples_in/out bump for the whole chunk (in before out, so
    // a racing stats() reader never sees out run ahead across snapshots).
    if (obs_on) {
      obs_->counters.add_samples_in(consumed);
      obs_->counters.add_samples_out(consumed);
    }
    stats_.batch_rows += consumed;
    i += consumed;
  }
}

model::Prediction Pipeline::timed_predict(std::span<const double> x) {
  // Score-stage latency, clock-timed on every Nth sample (the tick is
  // advanced by frozen_step/recovery_step after this sample completes, so
  // score and detect time the same samples).
  const bool timed = obs_enabled_ && (obs_tick_ & obs_mask_) == 0;
  const std::uint64_t obs_t0 = timed ? obs::now_ns() : 0;
  model::Prediction pred;
  if (stages_ != nullptr) {
    util::StageTimer::Scope scope(*stages_, kStagePredict);
    pred = model_->predict(x, kernel_ws_);
  } else {
    pred = model_->predict(x, kernel_ws_);
  }
  if (timed) obs_->score.record(obs::now_ns() - obs_t0);
  return pred;
}

model::Prediction Pipeline::timed_predict_from_hidden(
    std::span<const double> x, std::span<const double> hidden) {
  // Same sampling discipline as timed_predict — the coalesced single-row
  // scatter times the identical Nth samples the per-stream drain would.
  const bool timed = obs_enabled_ && (obs_tick_ & obs_mask_) == 0;
  const std::uint64_t obs_t0 = timed ? obs::now_ns() : 0;
  model::Prediction pred;
  if (stages_ != nullptr) {
    util::StageTimer::Scope scope(*stages_, kStagePredict);
    pred = model_->predict_from_hidden(x, hidden, kernel_ws_);
  } else {
    pred = model_->predict_from_hidden(x, hidden, kernel_ws_);
  }
  if (timed) obs_->score.record(obs::now_ns() - obs_t0);
  return pred;
}

PipelineStep Pipeline::frozen_step(std::span<const double> x,
                                   const model::Prediction& pred,
                                   int true_label, bool count_io) {
  ++stats_.samples;
  const bool obs_on = obs_enabled_;
  if (obs_on && count_io) obs_->counters.add_samples_in();
  PipelineStep step;
  step.prediction = pred;
  if (tracker_enabled_) update_tracker(pred.label, x);

  if (state_ == RecoveryState::kCollectingReference) {
    step.collecting_reference = true;
    refit_buffer_.set_row(refit_fill_++, x);
    if (refit_fill_ == refit_buffer_.rows()) {
      detector_->rebuild_reference(refit_buffer_);
      state_ = RecoveryState::kIdle;
    }
    if (obs_on) {
      if (count_io) obs_->counters.add_samples_out();
      ++obs_tick_;
    }
    return step;
  }

  drift::Observation obs;
  obs.x = x;
  obs.predicted_label = static_cast<int>(pred.label);
  obs.anomaly_score = pred.score;
  obs.error = true_label >= 0 &&
              static_cast<std::size_t>(true_label) != pred.label;
  const bool window_was_open =
      obs_on && centroid_ != nullptr && centroid_->window_open();
  const bool timed_detect = obs_on && (obs_tick_ & obs_mask_) == 0;
  const std::uint64_t obs_t0 = timed_detect ? obs::now_ns() : 0;
  drift::Detection detection;
  if (stages_ != nullptr) {
    util::StageTimer::Scope scope(*stages_, kStageDistance);
    detection = detector_->observe(obs);
  } else {
    detection = detector_->observe(obs);
  }
  if (timed_detect) obs_->detect.record(obs::now_ns() - obs_t0);
  if (obs_on) {
    // Window accounting: the centroid family exposes its anomaly window
    // directly (count open transitions); for everything else each emitted
    // statistic marks one completed evaluation window.
    if (centroid_ != nullptr) {
      if (!window_was_open && centroid_->window_open()) {
        obs_->counters.add_window_opened();
      }
    } else if (detection.statistic_valid) {
      obs_->counters.add_window_opened();
    }
  }
  step.statistic = detection.statistic;
  step.statistic_valid = detection.statistic_valid;

  if (detection.drift) {
    step.drift_detected = true;
    ++stats_.drifts;
    if (obs_on) record_drift_event(detection);
    start_recovery();
  }
  if (obs_on) {
    if (count_io) obs_->counters.add_samples_out();
    ++obs_tick_;
  }
  return step;
}

void Pipeline::record_drift_event(const drift::Detection& detection) {
  obs_->counters.add_drift();
  std::span<const double> distances;
  double theta = 0.0;
  if (centroid_ != nullptr) {
    centroid_->per_label_distances(obs_label_dist_);
    distances = obs_label_dist_;
    theta = centroid_->theta_drift();
  }
  obs::RecoveryAction action = obs::RecoveryAction::kNone;
  switch (config_.recovery) {
    case RecoveryPolicy::kReconstruct:
      action = obs::RecoveryAction::kReconstruct;
      break;
    case RecoveryPolicy::kResetRecalibrate:
      action = obs::RecoveryAction::kRecalibrate;
      break;
    case RecoveryPolicy::kDetectOnly:
      action = obs::RecoveryAction::kNone;
      break;
  }
  // stats_.samples was already advanced for this sample: index = samples-1.
  obs_->journal.begin_event(stats_.samples - 1, detection.statistic, theta,
                           static_cast<std::uint32_t>(config_.window_size),
                           action, distances);
}

PipelineStep Pipeline::recovery_step(std::span<const double> x) {
  if (!obs_enabled_) return recovery_step_impl(x);
  obs_->counters.add_samples_in();
  const std::uint64_t obs_t0 = obs::now_ns();
  PipelineStep step = recovery_step_impl(x);
  obs_->reconstruct.record(obs::now_ns() - obs_t0);
  obs_->counters.add_samples_out();
  ++obs_tick_;
  return step;
}

PipelineStep Pipeline::recovery_step_impl(std::span<const double> x) {
  ++stats_.samples;
  ++stats_.recovery_samples;
  PipelineStep step;
  step.reconstructing = true;

  if (state_ == RecoveryState::kReconstructing) {
    const drift::ReconstructionPhase phase = reconstructor_.phase();
    const char* stage = nullptr;
    switch (phase) {
      case drift::ReconstructionPhase::kSearchCoords:
        stage = kStageInitCoord;
        break;
      case drift::ReconstructionPhase::kUpdateCoords:
        stage = kStageUpdateCoord;
        break;
      case drift::ReconstructionPhase::kTrainNearest:
        stage = kStageRetrainNearest;
        break;
      case drift::ReconstructionPhase::kTrainPredict:
        stage = kStageRetrainPredict;
        break;
      case drift::ReconstructionPhase::kIdle:
        break;
    }
    bool still_running = true;
    if (stages_ != nullptr && stage != nullptr) {
      util::StageTimer::Scope scope(*stages_, stage);
      still_running = reconstructor_.step(x, *model_);
    } else {
      still_running = reconstructor_.step(x, *model_);
    }
    // Even while reconstructing, report the model's current prediction so
    // accuracy accounting stays per-sample.
    step.prediction = model_->predict(x, kernel_ws_);
    if (tracker_enabled_) update_tracker(step.prediction.label, x);
    if (!still_running) {
      finish_reconstruction();
      step.reconstruction_finished = true;
    }
    return step;
  }

  // kRecalibrating: retraining without the coordinate search. A freshly
  // reset model scores every sample identically, so self-labelling would
  // collapse onto one label; bootstrap by training the instance nearest (L1)
  // to the sample among the recovery centroids — the same supervision-free
  // trick as reconstruction's train-nearest phase — then switch to
  // self-labelled training once the instances have separated.
  const std::size_t bootstrap =
      config_.reconstruction.n_search + config_.reconstruction.n_update;
  if (recal_count_ < bootstrap) {
    std::size_t nearest = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < recal_.centroids.rows(); ++c) {
      const double d = linalg::l1_distance(recal_.centroids.row(c), x);
      if (d < best) {
        best = d;
        nearest = c;
      }
    }
    if (stages_ != nullptr) {
      util::StageTimer::Scope scope(*stages_, kStageRetrainNearest);
      model_->train_label(x, nearest);
    } else {
      model_->train_label(x, nearest);
    }
    step.prediction = model_->predict(x, kernel_ws_);
  } else if (stages_ != nullptr) {
    util::StageTimer::Scope scope(*stages_, kStageRetrainPredict);
    step.prediction = model_->train_closest(x, kernel_ws_);
  } else {
    step.prediction = model_->train_closest(x, kernel_ws_);
  }
  if (tracker_enabled_) update_tracker(step.prediction.label, x);
  linalg::running_mean_update(recal_.centroids.row(step.prediction.label), x,
                              recal_.counts[step.prediction.label]);
  ++recal_.counts[step.prediction.label];
  ++recal_count_;
  if (recal_count_ >= config_.reconstruction.n_total) {
    finish_recalibration();
    step.reconstruction_finished = true;
  }
  return step;
}

std::size_t Pipeline::recovery_chunk(const linalg::Matrix& x,
                                     const linalg::Matrix* hidden,
                                     std::size_t row_begin,
                                     std::size_t row_end,
                                     std::vector<PipelineStep>& out) {
  const std::size_t limit = std::min(
      {config_.train_chunk, config_.max_batch_rows, row_end - row_begin});
  if (limit < 2) return 0;
  const auto& rc = config_.reconstruction;

  // How many rows the current recovery sub-phase can absorb without
  // straddling a phase boundary or performing a finishing sample — those
  // flow through the per-sample path so completion semantics and the
  // order-sensitive coordinate recursions are untouched.
  std::size_t take = 0;
  bool recal_bootstrap = false;
  if (state_ == RecoveryState::kReconstructing) {
    const std::size_t c0 = reconstructor_.count() + 1;
    if (c0 < rc.n_update || c0 >= rc.n_total) return 0;
    const std::size_t half = rc.n_total / 2;
    const std::size_t cap = (c0 < half ? half : rc.n_total) - c0;
    take = std::min(limit, cap);
  } else {
    const std::size_t bootstrap = rc.n_search + rc.n_update;
    recal_bootstrap = recal_count_ < bootstrap;
    const std::size_t cap =
        (recal_bootstrap ? bootstrap : rc.n_total) - recal_count_;
    take = std::min(limit, cap);
  }
  if (take < 2) return 0;

  const bool obs_on = obs_enabled_;
  const std::uint64_t obs_t0 = obs_on ? obs::now_ns() : 0;

  // Hidden rows for the chunk: reuse the coalesced drain's mega-batch rows
  // when supplied, else project per row through the scalar kernel — at
  // chunk sizes in the single digits the batch GEMM's per-call packing
  // costs more than the projection itself, and the batch entry is
  // bit-identical to the scalar one row by row (the projection contract).
  const linalg::ConstMatrixView xc{x, row_begin, row_begin + take};
  if (hidden == nullptr) {
    batch_ws_.hidden.resize_discard(take, config_.hidden_dim);
    for (std::size_t r = 0; r < take; ++r) {
      model_->projection()->hidden(xc.row(r), batch_ws_.hidden.row(r));
    }
  }
  const linalg::ConstMatrixView hc =
      hidden != nullptr
          ? linalg::ConstMatrixView{*hidden, row_begin, row_begin + take}
          : linalg::ConstMatrixView{batch_ws_.hidden, 0, take};

  chunk_preds_.resize(take);
  if (chunk_labels_.size() < take) chunk_labels_.resize(take);
  const std::span<model::Prediction> preds{chunk_preds_.data(), take};
  const std::span<std::size_t> labels{chunk_labels_.data(), take};
  model::ChunkTrainStats tstats;
  std::size_t consumed = 0;

  if (state_ == RecoveryState::kReconstructing) {
    const char* stage = reconstructor_.count() + 1 < rc.n_total / 2
                            ? kStageRetrainNearest
                            : kStageRetrainPredict;
    if (stages_ != nullptr) {
      util::StageTimer::Scope scope(*stages_, stage);
      consumed = reconstructor_.train_chunk(xc, hc, *model_, batch_ws_, preds,
                                            labels, &tstats);
    } else {
      consumed = reconstructor_.train_chunk(xc, hc, *model_, batch_ws_, preds,
                                            labels, &tstats);
    }
    if (consumed == 0) return 0;
    EDGEDRIFT_DASSERT(consumed == take, "chunk eligibility disagreement");
    // Post-train predictions for reporting, mirroring the sequential loop's
    // predict-after-step — per-row scatter scoring (bit-identical to the
    // batch entry, cheaper at single-digit chunk sizes).
    for (std::size_t r = 0; r < consumed; ++r) {
      preds[r] = model_->predict_from_hidden(xc.row(r), hc.row(r), kernel_ws_);
    }
    for (std::size_t r = 0; r < consumed; ++r) {
      PipelineStep step;
      step.reconstructing = true;
      step.prediction = preds[r];
      if (tracker_enabled_) update_tracker(preds[r].label, xc.row(r));
      out.push_back(step);
    }
  } else {
    // kRecalibrating, chunked. Bootstrap: nearest-L1 labels against the
    // chunk-start recovery centroids (sequentially the centroids move per
    // sample — the chunked approximation labels the whole chunk against the
    // start state), train the buckets, report post-train predictions.
    // Self-label: the pre-train prediction is both the winner and the
    // reported prediction (the train_closest contract).
    if (recal_bootstrap) {
      for (std::size_t r = 0; r < take; ++r) {
        std::size_t nearest = 0;
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < recal_.centroids.rows(); ++c) {
          const double d =
              linalg::l1_distance(recal_.centroids.row(c), xc.row(r));
          if (d < best) {
            best = d;
            nearest = c;
          }
        }
        labels[r] = nearest;
      }
      if (stages_ != nullptr) {
        util::StageTimer::Scope scope(*stages_, kStageRetrainNearest);
        tstats = model_->train_buckets_from_hidden(xc, hc, labels, batch_ws_);
      } else {
        tstats = model_->train_buckets_from_hidden(xc, hc, labels, batch_ws_);
      }
      for (std::size_t r = 0; r < take; ++r) {
        preds[r] =
            model_->predict_from_hidden(xc.row(r), hc.row(r), kernel_ws_);
      }
    } else {
      for (std::size_t r = 0; r < take; ++r) {
        preds[r] =
            model_->predict_from_hidden(xc.row(r), hc.row(r), kernel_ws_);
      }
      for (std::size_t r = 0; r < take; ++r) labels[r] = preds[r].label;
      if (stages_ != nullptr) {
        util::StageTimer::Scope scope(*stages_, kStageRetrainPredict);
        tstats = model_->train_buckets_from_hidden(xc, hc, labels, batch_ws_);
      } else {
        tstats = model_->train_buckets_from_hidden(xc, hc, labels, batch_ws_);
      }
    }
    consumed = take;
    for (std::size_t r = 0; r < take; ++r) {
      PipelineStep step;
      step.reconstructing = true;
      step.prediction = preds[r];
      if (tracker_enabled_) update_tracker(preds[r].label, xc.row(r));
      linalg::running_mean_update(recal_.centroids.row(preds[r].label),
                                  xc.row(r), recal_.counts[preds[r].label]);
      ++recal_.counts[preds[r].label];
      ++recal_count_;
      out.push_back(step);
    }
    // The chunk cap stops exactly at n_total, so completion can only land
    // on the chunk's last row.
    if (recal_count_ >= rc.n_total) {
      finish_recalibration();
      out.back().reconstruction_finished = true;
    }
  }

  stats_.samples += consumed;
  stats_.recovery_samples += consumed;
  if (obs_on) {
    obs_->counters.add_samples_in(consumed);
    obs_->counters.add_samples_out(consumed);
    obs_->reconstruct.record((obs::now_ns() - obs_t0) / consumed);
    obs_->counters.add_chunk_trains(tstats.buckets);
    obs_->counters.add_chunk_train_rows(tstats.rows);
    if (tstats.replica_refreshes > 0) {
      obs_->counters.add_requants_saved(tstats.rows -
                                        tstats.replica_refreshes);
    }
    obs_tick_ += consumed;
  }
  return consumed;
}

void Pipeline::start_recovery() {
  switch (config_.recovery) {
    case RecoveryPolicy::kDetectOnly:
      // Record-and-rearm: the model is left alone, the detector restarts
      // against its existing reference.
      detector_->reset();
      return;
    case RecoveryPolicy::kReconstruct: {
      // Seed from the detector's own recent centroids when it tracks them,
      // else from the pipeline's running estimate of the new concept.
      const linalg::Matrix* seed = detector_->reconstruction_seed();
      reconstructor_.begin(*model_,
                           seed != nullptr ? *seed : tracker_.centroids);
      state_ = RecoveryState::kReconstructing;
      return;
    }
    case RecoveryPolicy::kResetRecalibrate: {
      model_->reset();
      const linalg::Matrix* seed = detector_->reconstruction_seed();
      recal_.centroids = seed != nullptr ? *seed : tracker_.centroids;
      recal_.counts.assign(config_.num_labels, 1);
      recal_count_ = 0;
      state_ = RecoveryState::kRecalibrating;
      return;
    }
  }
}

void Pipeline::finish_reconstruction() {
  // Re-align the rebuilt clusters with the pre-drift label identities:
  // optimally match the rebuilt coordinates against the detector's frozen
  // reference centroids (or the pipeline's per-label anchor when the
  // detector tracks none), then permute coordinates and model instances
  // together.
  auto& coords = reconstructor_.coords_mutable();
  const linalg::Matrix* ref = detector_->reference_centroids();
  const linalg::Matrix& reference =
      ref != nullptr ? *ref : trained_means_;
  const std::vector<std::size_t> perm =
      cluster::match_rows(reference, coords.centroids());
  bool identity = true;
  for (std::size_t i = 0; i < perm.size(); ++i) identity &= perm[i] == i;
  if (!identity) {
    coords.apply_permutation(perm);
    model_->apply_permutation(perm);
  }
  // The rebuilt coordinates are the anchor for any later recovery.
  trained_means_ = coords.centroids();

  // Re-arm the detector: the rebuilt coordinates become the new trained
  // centroids, with an Eq. 1 threshold recomputed over the reconstruction's
  // training-phase samples.
  detector_->rearm(coords.centroids(), coords.counts(),
                   reconstructor_.suggested_theta_drift(config_.z));
  ++stats_.recoveries;
  if (obs_->enabled()) {
    obs_->counters.add_retrain();
    obs_->journal.complete_event(reconstructor_.count());
  }
  if (detector_->needs_reference_data()) {
    begin_reference_collection();
  } else {
    state_ = RecoveryState::kIdle;
  }
}

void Pipeline::finish_recalibration() {
  // No Eq. 1 statistics were gathered, so keep the detector's threshold
  // (<= 0 means "retain") and anchor it on the recovery centroids.
  detector_->rearm(recal_.centroids, recal_.counts, 0.0);
  trained_means_ = recal_.centroids;
  ++stats_.recoveries;
  if (obs_->enabled()) {
    obs_->counters.add_retrain();
    obs_->journal.complete_event(recal_count_);
  }
  if (detector_->needs_reference_data()) {
    begin_reference_collection();
  } else {
    state_ = RecoveryState::kIdle;
  }
}

void Pipeline::begin_reference_collection() {
  state_ = RecoveryState::kCollectingReference;
  refit_fill_ = 0;
}

void Pipeline::update_tracker(std::size_t label, std::span<const double> x) {
  linalg::running_mean_update(tracker_.centroids.row(label), x,
                              tracker_.counts[label]);
  ++tracker_.counts[label];
}

std::size_t Pipeline::memory_bytes() const {
  return model_->memory_bytes() + detector_memory_bytes();
}

std::size_t Pipeline::detector_memory_bytes() const {
  std::size_t bytes = detector_->memory_bytes() +
                      reconstructor_.memory_bytes() +
                      refit_buffer_.memory_bytes();
  if (tracker_enabled_) {
    bytes += tracker_.centroids.memory_bytes() +
             tracker_.counts.capacity() * sizeof(std::size_t);
  }
  return bytes;
}

}  // namespace edgedrift::core
