#include "edgedrift/core/pipeline.hpp"

#include <limits>
#include <vector>

#include "edgedrift/cluster/matching.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::core {
namespace {

drift::CentroidDetectorConfig detector_config(const PipelineConfig& config) {
  drift::CentroidDetectorConfig det;
  det.num_labels = config.num_labels;
  det.dim = config.input_dim;
  det.window_size = config.window_size;
  det.theta_error = config.theta_error;  // May be re-set after calibration.
  det.theta_drift = 0.0;                 // Always from Eq. 1.
  det.z = config.z;
  det.ewma_decay = config.ewma_decay;
  det.initial_count = config.detector_initial_count;
  return det;
}

}  // namespace

Pipeline::Pipeline(PipelineConfig config)
    : config_(config),
      reconstructor_(config.reconstruction, config.num_labels,
                     config.input_dim) {
  EDGEDRIFT_ASSERT(config_.input_dim > 0, "input_dim must be set");
  EDGEDRIFT_ASSERT(config_.num_labels > 0, "num_labels must be set");
  util::Rng rng(config_.seed);
  auto projection =
      oselm::make_projection(config_.input_dim, config_.hidden_dim,
                             config_.activation, rng, config_.weight_scale);
  model_ = std::make_unique<model::MultiInstanceModel>(
      config_.num_labels, std::move(projection), config_.reg_lambda);
  detector_ =
      std::make_unique<drift::CentroidDetector>(detector_config(config_));
}

void Pipeline::fit(const linalg::Matrix& x, std::span<const int> labels) {
  model_->init_train(x, labels);
  detector_->calibrate(x, labels);

  if (config_.theta_error <= 0.0) {
    // Auto-calibrate the anomaly gate from the training scores: a window
    // should open only for samples the trained model reconstructs badly.
    std::vector<double> scores(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) {
      scores[i] =
          model_->score_of(x.row(i), static_cast<std::size_t>(labels[i]));
    }
    theta_error_ = linalg::mean(scores) +
                   config_.theta_error_z * linalg::stddev_population(scores);
  } else {
    theta_error_ = config_.theta_error;
  }
  // Propagate the calibrated gate into the detector's config.
  drift::CentroidDetectorConfig det = detector_->config();
  det.theta_error = theta_error_;
  auto replacement = std::make_unique<drift::CentroidDetector>(det);
  replacement->calibrate(x, labels);
  detector_ = std::move(replacement);

  fitted_ = true;
}

PipelineStep Pipeline::process(std::span<const double> x) {
  EDGEDRIFT_ASSERT(fitted_, "process() before fit()");
  PipelineStep step;

  // Algorithm 1 line 20-21: while drift is active, every sample feeds the
  // reconstruction instead of the detector.
  if (reconstructor_.active()) {
    step.reconstructing = true;
    const drift::ReconstructionPhase phase = reconstructor_.phase();
    bool still_running = true;
    {
      const char* stage = nullptr;
      switch (phase) {
        case drift::ReconstructionPhase::kSearchCoords:
          stage = kStageInitCoord;
          break;
        case drift::ReconstructionPhase::kUpdateCoords:
          stage = kStageUpdateCoord;
          break;
        case drift::ReconstructionPhase::kTrainNearest:
          stage = kStageRetrainNearest;
          break;
        case drift::ReconstructionPhase::kTrainPredict:
          stage = kStageRetrainPredict;
          break;
        case drift::ReconstructionPhase::kIdle:
          break;
      }
      if (stages_ != nullptr && stage != nullptr) {
        util::StageTimer::Scope scope(*stages_, stage);
        still_running = reconstructor_.step(x, *model_);
      } else {
        still_running = reconstructor_.step(x, *model_);
      }
    }
    // Even while reconstructing, report the model's current prediction so
    // accuracy accounting stays per-sample.
    step.prediction = model_->predict(x);
    if (!still_running) {
      finish_reconstruction();
      step.reconstruction_finished = true;
    }
    return step;
  }

  // Algorithm 1 lines 6-7: label prediction by the instance bank.
  if (stages_ != nullptr) {
    util::StageTimer::Scope scope(*stages_, kStagePredict);
    step.prediction = model_->predict(x);
  } else {
    step.prediction = model_->predict(x);
  }

  // Lines 8-19: the sequential detector.
  drift::Observation obs;
  obs.x = x;
  obs.predicted_label = static_cast<int>(step.prediction.label);
  obs.anomaly_score = step.prediction.score;
  drift::Detection detection;
  if (stages_ != nullptr) {
    util::StageTimer::Scope scope(*stages_, kStageDistance);
    detection = detector_->observe(obs);
  } else {
    detection = detector_->observe(obs);
  }
  step.statistic = detection.statistic;
  step.statistic_valid = detection.statistic_valid;

  if (detection.drift) {
    step.drift_detected = true;
    // Lines 20-21: enter reconstruction, seeded from the recent test
    // centroids (the best running estimate of the new concept).
    reconstructor_.begin(*model_, detector_->recent_centroids());
  }
  return step;
}

void Pipeline::finish_reconstruction() {
  // Re-align the rebuilt clusters with the pre-drift label identities:
  // optimally match the rebuilt coordinates against the pre-drift trained
  // centroids (the most stable per-label anchor available without ground
  // truth), then permute coordinates and model instances together.
  auto& coords = reconstructor_.coords_mutable();
  const std::size_t c = config_.num_labels;
  const std::vector<std::size_t> perm =
      cluster::match_rows(detector_->trained_centroids(), coords.centroids());
  bool identity = true;
  for (std::size_t i = 0; i < c; ++i) identity &= perm[i] == i;
  if (!identity) {
    coords.apply_permutation(perm);
    model_->apply_permutation(perm);
  }

  // Re-arm the detector: the rebuilt coordinates become the new trained
  // centroids, with an Eq. 1 threshold recomputed over the reconstruction's
  // training-phase samples.
  detector_->rearm(coords.centroids(), coords.counts(),
                   reconstructor_.suggested_theta_drift(config_.z));
}

std::size_t Pipeline::memory_bytes() const {
  return model_->memory_bytes() + detector_->memory_bytes() +
         reconstructor_.memory_bytes();
}

}  // namespace edgedrift::core
