#include "edgedrift/util/table.hpp"

#include <cstdio>
#include <sstream>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  EDGEDRIFT_ASSERT(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  EDGEDRIFT_ASSERT(row.size() == header_.size(),
                   "row arity must match header arity");
  rows_.push_back(std::move(row));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& out,
                      const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_row(out, header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out.str();
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_kb(std::size_t bytes, int digits) {
  return fmt(static_cast<double>(bytes) / 1024.0, digits) + " kB";
}

}  // namespace edgedrift::util
