#include "edgedrift/util/stage_timer.hpp"

namespace edgedrift::util {

StageTimer::Scope::Scope(StageTimer& timer, std::string_view stage)
    : timer_(timer),
      index_(timer.index_of(stage)),
      start_(std::chrono::steady_clock::now()) {}

StageTimer::Scope::~Scope() {
  const auto end = std::chrono::steady_clock::now();
  auto& entry = timer_.entries_[index_];
  entry.seconds += std::chrono::duration<double>(end - start_).count();
  entry.count += 1;
}

void StageTimer::add(std::string_view stage, double seconds) {
  auto& entry = entries_[index_of(stage)];
  entry.seconds += seconds;
  entry.count += 1;
}

double StageTimer::seconds(std::string_view stage) const {
  const Entry* e = find(stage);
  return e ? e->seconds : 0.0;
}

std::uint64_t StageTimer::count(std::string_view stage) const {
  const Entry* e = find(stage);
  return e ? e->count : 0;
}

double StageTimer::mean_ms(std::string_view stage) const {
  const Entry* e = find(stage);
  if (e == nullptr || e->count == 0) return 0.0;
  return e->seconds * 1e3 / static_cast<double>(e->count);
}

std::vector<std::string> StageTimer::stages() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& e : entries_) names.push_back(e.name);
  return names;
}

void StageTimer::reset() { entries_.clear(); }

std::size_t StageTimer::index_of(std::string_view stage) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == stage) return i;
  }
  entries_.push_back(Entry{std::string(stage), 0.0, 0});
  return entries_.size() - 1;
}

const StageTimer::Entry* StageTimer::find(std::string_view stage) const {
  for (const auto& e : entries_) {
    if (e.name == stage) return &e;
  }
  return nullptr;
}

}  // namespace edgedrift::util
