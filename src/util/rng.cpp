#include "edgedrift/util/rng.hpp"

#include <cmath>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
  has_cached_gaussian_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  EDGEDRIFT_DASSERT(lo <= hi, "uniform range must be ordered");
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  EDGEDRIFT_ASSERT(n > 0, "uniform_index needs a non-empty range");
  // Rejection-free for our purposes: modulo bias is negligible for n << 2^64.
  return static_cast<std::size_t>(next_u64() % n);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 is kept away from zero so log() stays finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace edgedrift::util
