#include "edgedrift/util/thread_pool.hpp"

#include <algorithm>

namespace edgedrift::util {
namespace {

// Set while a thread is executing inside worker_loop(). Used to run nested
// parallel_for calls inline instead of deadlocking the pool.
thread_local bool t_in_worker = false;

}  // namespace

bool ThreadPool::in_worker() { return t_in_worker; }

void ThreadPool::mark_inline_worker() { t_in_worker = true; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto promise = std::make_shared<std::promise<void>>();
  auto future = promise->get_future();
  submit_detached([promise = std::move(promise), task = std::move(task)] {
    try {
      task();
      promise->set_value();
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

void ThreadPool::submit_detached(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_chunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = size();
  if (workers <= 1 || n <= min_chunk || t_in_worker) {
    body(begin, end);
    return;
  }
  const std::size_t chunks = std::min(workers, (n + min_chunk - 1) / min_chunk);
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * step;
    const std::size_t hi = std::min(end, lo + step);
    if (lo >= hi) break;
    futures.push_back(submit([&body, lo, hi] { body(lo, hi); }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace edgedrift::util
