#include "edgedrift/drift/ddm.hpp"

#include <cmath>

namespace edgedrift::drift {

Ddm::Ddm(DdmConfig config) : config_(config) {}

double Ddm::error_rate() const {
  // Laplace-smoothed error rate: keeps p (and hence s) strictly positive so
  // an error-free warm-up cannot register a degenerate zero minimum that
  // would make every later error fire a drift.
  return (static_cast<double>(errors_) + 1.0) /
         (static_cast<double>(samples_) + 2.0);
}

Detection Ddm::observe(const Observation& obs) {
  ++samples_;
  if (obs.error) ++errors_;

  Detection result;
  if (samples_ < config_.min_samples) return result;

  const double p = error_rate();
  const double s = std::sqrt(p * (1.0 - p) / static_cast<double>(samples_));
  result.statistic = p + s;
  result.statistic_valid = true;

  if (!has_min_ || p + s < min_p_plus_s_) {
    min_p_plus_s_ = p + s;
    min_p_ = p;
    min_s_ = s;
    has_min_ = true;
  }

  if (p + s > min_p_ + config_.drift_factor * min_s_) {
    result.drift = true;
  } else if (p + s > min_p_ + config_.warning_factor * min_s_) {
    result.warning = true;
  }
  return result;
}

void Ddm::reset() {
  samples_ = 0;
  errors_ = 0;
  min_p_plus_s_ = 0.0;
  min_p_ = 0.0;
  min_s_ = 0.0;
  has_min_ = false;
}

}  // namespace edgedrift::drift
