#include "edgedrift/drift/threshold.hpp"

#include <vector>

#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::drift {

double drift_threshold_from_distances(std::span<const double> distances,
                                      double z) {
  EDGEDRIFT_ASSERT(!distances.empty(), "need at least one distance");
  return linalg::mean(distances) + z * linalg::stddev_population(distances);
}

double calibrate_drift_threshold(const linalg::Matrix& x,
                                 std::span<const int> labels,
                                 const linalg::Matrix& centroids, double z) {
  EDGEDRIFT_ASSERT(x.rows() == labels.size(), "X/label row mismatch");
  EDGEDRIFT_ASSERT(x.cols() == centroids.cols(), "dim mismatch");
  std::vector<double> distances(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int c = labels[i];
    EDGEDRIFT_ASSERT(
        c >= 0 && static_cast<std::size_t>(c) < centroids.rows(),
        "label out of range");
    distances[i] = linalg::l1_distance(x.row(i), centroids.row(c));
  }
  return drift_threshold_from_distances(distances, z);
}

}  // namespace edgedrift::drift
