#include "edgedrift/drift/detector_factory.hpp"

#include "edgedrift/util/assert.hpp"

namespace edgedrift::drift {

std::unique_ptr<Detector> make_detector(
    const DetectorSpec& spec, const CentroidDetectorConfig& centroid_base) {
  switch (spec.kind) {
    case DetectorKind::kCentroid:
      return std::make_unique<CentroidDetector>(centroid_base);
    case DetectorKind::kMultiWindow:
      return std::make_unique<MultiWindowDetector>(centroid_base, spec.windows,
                                                   spec.vote_policy);
    case DetectorKind::kQuantTree:
      return std::make_unique<QuantTree>(spec.quanttree);
    case DetectorKind::kSpll:
      return std::make_unique<Spll>(spec.spll);
    case DetectorKind::kDdm:
      return std::make_unique<Ddm>(spec.ddm);
    case DetectorKind::kEddm:
      return std::make_unique<Eddm>(spec.eddm);
    case DetectorKind::kAdwin:
      return std::make_unique<Adwin>(spec.adwin);
    case DetectorKind::kKswin:
      return std::make_unique<Kswin>(spec.kswin);
    case DetectorKind::kPageHinkley:
      return std::make_unique<PageHinkley>(spec.page_hinkley);
  }
  EDGEDRIFT_ASSERT(false, "unknown detector kind");
  return nullptr;
}

std::string_view kind_name(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kCentroid:
      return "centroid";
    case DetectorKind::kMultiWindow:
      return "multiwindow";
    case DetectorKind::kQuantTree:
      return "quanttree";
    case DetectorKind::kSpll:
      return "spll";
    case DetectorKind::kDdm:
      return "ddm";
    case DetectorKind::kEddm:
      return "eddm";
    case DetectorKind::kAdwin:
      return "adwin";
    case DetectorKind::kKswin:
      return "kswin";
    case DetectorKind::kPageHinkley:
      return "pagehinkley";
  }
  return "unknown";
}

std::optional<DetectorKind> kind_from_name(std::string_view name) {
  for (const DetectorKind kind : kAllDetectorKinds) {
    if (name == kind_name(kind)) return kind;
  }
  return std::nullopt;
}

}  // namespace edgedrift::drift
