#include "edgedrift/drift/multi_window.hpp"

#include <algorithm>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::drift {

MultiWindowDetector::MultiWindowDetector(
    CentroidDetectorConfig base, std::span<const std::size_t> window_sizes,
    VotePolicy policy)
    : policy_(policy) {
  EDGEDRIFT_ASSERT(!window_sizes.empty(), "need at least one window size");
  members_.reserve(window_sizes.size());
  for (const std::size_t w : window_sizes) {
    CentroidDetectorConfig config = base;
    config.window_size = w;
    members_.push_back(std::make_unique<CentroidDetector>(config));
  }
  member_fired_.assign(members_.size(), false);
}

void MultiWindowDetector::calibrate(const linalg::Matrix& x,
                                    std::span<const int> labels) {
  for (auto& m : members_) m->calibrate(x, labels);
}

Detection MultiWindowDetector::observe(const Observation& obs) {
  // Members latch their drift verdicts: windows of different lengths close
  // on different samples, so a vote is counted until the ensemble either
  // fires or is reset.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const Detection d = members_[i]->observe(obs);
    if (d.drift) member_fired_[i] = true;
  }
  const auto votes = static_cast<std::size_t>(
      std::count(member_fired_.begin(), member_fired_.end(), true));
  last_votes_ = votes;

  Detection result;
  result.statistic = static_cast<double>(votes);
  result.statistic_valid = true;
  if (vote_passes(votes)) {
    result.drift = true;
    std::fill(member_fired_.begin(), member_fired_.end(), false);
  }
  return result;
}

bool MultiWindowDetector::vote_passes(std::size_t votes) const {
  switch (policy_) {
    case VotePolicy::kAny:
      return votes >= 1;
    case VotePolicy::kMajority:
      return votes * 2 > members_.size();
    case VotePolicy::kAll:
      return votes == members_.size();
  }
  return false;
}

void MultiWindowDetector::clear_votes() {
  std::fill(member_fired_.begin(), member_fired_.end(), false);
  last_votes_ = 0;
}

void MultiWindowDetector::reset() {
  for (auto& m : members_) m->reset();
  std::fill(member_fired_.begin(), member_fired_.end(), false);
  last_votes_ = 0;
}

void MultiWindowDetector::rebuild_reference(const linalg::Matrix& x) {
  for (auto& m : members_) m->rebuild_reference(x);
  std::fill(member_fired_.begin(), member_fired_.end(), false);
}

void MultiWindowDetector::set_anomaly_gate(double theta_error) {
  for (auto& m : members_) m->set_anomaly_gate(theta_error);
}

void MultiWindowDetector::rearm(const linalg::Matrix& centroids,
                                std::span<const std::size_t> counts,
                                double theta_drift) {
  for (auto& m : members_) m->rearm(centroids, counts, theta_drift);
  clear_votes();
}

std::size_t MultiWindowDetector::memory_bytes() const {
  std::size_t bytes = member_fired_.capacity() / 8 + sizeof(*this);
  for (const auto& m : members_) bytes += m->memory_bytes();
  return bytes;
}

}  // namespace edgedrift::drift
