#include "edgedrift/drift/kswin.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::drift {

Kswin::Kswin(KswinConfig config) : config_(config), rng_(config.seed) {
  EDGEDRIFT_ASSERT(config_.stat_size > 0, "stat_size must be positive");
  EDGEDRIFT_ASSERT(config_.window_size >= 2 * config_.stat_size,
                   "window must hold at least two stat slices");
  EDGEDRIFT_ASSERT(config_.alpha > 0.0 && config_.alpha < 1.0,
                   "alpha must be in (0, 1)");
  // Two-sample KS critical value: c(alpha) * sqrt((n+m)/(n*m)) with
  // n = m = stat_size and c(alpha) = sqrt(-ln(alpha/2) / 2).
  const double n = static_cast<double>(config_.stat_size);
  threshold_ = std::sqrt(-std::log(config_.alpha / 2.0) / 2.0) *
               std::sqrt(2.0 / n);
}

double Kswin::ks_statistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double inv_a = 1.0 / static_cast<double>(a.size());
  const double inv_b = 1.0 / static_cast<double>(b.size());
  std::size_t ia = 0, ib = 0;
  double cdf_a = 0.0, cdf_b = 0.0, best = 0.0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] <= b[ib]) {
      cdf_a = static_cast<double>(++ia) * inv_a;
    } else {
      cdf_b = static_cast<double>(++ib) * inv_b;
    }
    best = std::max(best, std::abs(cdf_a - cdf_b));
  }
  return best;
}

bool Kswin::insert(double value) {
  window_.push_back(value);
  if (window_.size() > config_.window_size) window_.pop_front();
  if (window_.size() < config_.window_size) {
    last_stat_ = 0.0;
    return false;
  }

  // Recent slice: the newest stat_size values.
  std::vector<double> recent(window_.end() - config_.stat_size,
                             window_.end());
  // Older part: uniform subsample of stat_size values from the rest.
  const std::size_t older_len = window_.size() - config_.stat_size;
  std::vector<double> older(config_.stat_size);
  for (auto& v : older) {
    v = window_[rng_.uniform_index(older_len)];
  }

  last_stat_ = ks_statistic(std::move(recent), std::move(older));
  if (last_stat_ > threshold_) {
    // Drop the old regime: keep only the recent slice, as KSWIN does.
    std::deque<double> kept(window_.end() - config_.stat_size,
                            window_.end());
    window_ = std::move(kept);
    return true;
  }
  return false;
}

Detection Kswin::observe(const Observation& obs) {
  const double value =
      config_.use_anomaly_score ? obs.anomaly_score : (obs.error ? 1.0 : 0.0);
  Detection result;
  result.drift = insert(value);
  result.statistic = last_stat_;
  result.statistic_valid = window_fill() >= config_.window_size ||
                           result.drift;
  return result;
}

void Kswin::reset() {
  window_.clear();
  last_stat_ = 0.0;
}

std::size_t Kswin::memory_bytes() const {
  return window_.size() * sizeof(double) + sizeof(*this);
}

}  // namespace edgedrift::drift
