#include "edgedrift/drift/reconstructor.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::drift {

Reconstructor::Reconstructor(ReconstructorConfig config,
                             std::size_t num_labels, std::size_t dim)
    : config_(config), coords_(num_labels, dim) {
  EDGEDRIFT_ASSERT(config_.n_search <= config_.n_update,
                   "N_search must not exceed N_update");
  EDGEDRIFT_ASSERT(config_.n_update <= config_.n_total,
                   "N_update must not exceed N");
  EDGEDRIFT_ASSERT(config_.n_update <= config_.n_total / 2,
                   "coordinate refinement must end before model training "
                   "(N_update <= N/2)");
  EDGEDRIFT_ASSERT(config_.n_total > 0, "N must be positive");
}

void Reconstructor::begin(model::MultiInstanceModel& model,
                          const linalg::Matrix& seed_coords) {
  EDGEDRIFT_ASSERT(seed_coords.rows() == coords_.num_clusters() &&
                       seed_coords.cols() == coords_.dim(),
                   "seed coordinate shape mismatch");
  model.init_sequential();
  std::vector<std::size_t> zeros(coords_.num_clusters(), 0);
  coords_.set_centroids(seed_coords, zeros);
  count_ = 0;
  dist_count_ = 0;
  dist_mean_ = 0.0;
  dist_m2_ = 0.0;
  phase_ = config_.n_search > 0 ? ReconstructionPhase::kSearchCoords
                                : ReconstructionPhase::kUpdateCoords;
  update_phase();
}

bool Reconstructor::step(std::span<const double> x,
                         model::MultiInstanceModel& model) {
  EDGEDRIFT_ASSERT(active(), "step() without begin()");
  EDGEDRIFT_ASSERT(x.size() == coords_.dim(), "sample dim mismatch");
  ++count_;  // Algorithm 2 line 2 increments before the phase tests.
  if (count_ >= config_.n_total) {
    // Algorithm 2 lines 13-15: the N-th sample does no work; reconstruction
    // reports completion so Algorithm 1 clears its drift flag.
    phase_ = ReconstructionPhase::kIdle;
    return false;
  }
  update_phase();

  switch (phase_) {
    case ReconstructionPhase::kSearchCoords:
      // "C initial samples are selected as initial coordinates of C labels"
      // (paper Section 3.3): the first C streamed samples seed the
      // coordinates unconditionally — the begin() seeds are placeholders
      // and must not win the spread contest against real data. Later
      // samples substitute via the Algorithm 3 spread maximization.
      if (count_ <= coords_.num_clusters()) {
        linalg::copy(x, coords_.centroid_mutable(count_ - 1));
      } else {
        coords_.spread_init(x);
      }
      break;
    case ReconstructionPhase::kUpdateCoords:
      coords_.update(x);
      break;
    case ReconstructionPhase::kTrainNearest: {
      const std::size_t label = coords_.nearest(x);
      model.train_label(x, label);
      // Track Equation 1 distances against the rebuilt coordinates so the
      // detector can be re-armed for the new concept.
      const double d = linalg::l1_distance(x, coords_.centroid(label));
      ++dist_count_;
      const double delta = d - dist_mean_;
      dist_mean_ += delta / static_cast<double>(dist_count_);
      dist_m2_ += delta * (d - dist_mean_);
      break;
    }
    case ReconstructionPhase::kTrainPredict: {
      // Fused predict-then-train: projects the sample once and shares the
      // hidden vector between the ensemble scorer and the winning
      // instance's update (identical semantics to predict + train_label on
      // the predicted label).
      const model::Prediction pred = model.train_closest(x, ws_);
      const double d = linalg::l1_distance(x, coords_.centroid(pred.label));
      ++dist_count_;
      const double delta = d - dist_mean_;
      dist_mean_ += delta / static_cast<double>(dist_count_);
      dist_m2_ += delta * (d - dist_mean_);
      break;
    }
    case ReconstructionPhase::kIdle:
      break;
  }
  return true;
}

std::size_t Reconstructor::train_chunk(linalg::ConstMatrixView x,
                                       linalg::ConstMatrixView h,
                                       model::MultiInstanceModel& model,
                                       model::BatchWorkspace& ws,
                                       std::span<model::Prediction> preds,
                                       std::span<std::size_t> labels,
                                       model::ChunkTrainStats* stats) {
  EDGEDRIFT_ASSERT(active(), "train_chunk() without begin()");
  EDGEDRIFT_ASSERT(x.cols() == coords_.dim(), "chunk dim mismatch");
  EDGEDRIFT_ASSERT(preds.size() >= x.rows() && labels.size() >= x.rows(),
                   "chunk scratch too small");
  // c0 is the Algorithm 2 count the first row would get from step()'s
  // pre-increment. Only the training phases chunk; the coordinate phases
  // are order-sensitive sequential recursions and the N-th (finishing)
  // sample must flow through step() so completion reporting is unchanged.
  const std::size_t c0 = count_ + 1;
  if (c0 >= config_.n_total || c0 < config_.n_update) return 0;
  const std::size_t half = config_.n_total / 2;
  const bool nearest_phase = c0 < half;
  const std::size_t cap = (nearest_phase ? half : config_.n_total) - c0;
  const std::size_t take = std::min(x.rows(), cap);
  if (take < 2) return 0;  // A 1-row "chunk" is just a worse rank-1 step.
  const linalg::ConstMatrixView xc(x, take), hc(h, take);
  if (nearest_phase) {
    // Coordinates are frozen in the training phases, so per-row nearest()
    // matches the sequential loop exactly.
    for (std::size_t r = 0; r < take; ++r) {
      labels[r] = coords_.nearest(xc.row(r));
    }
  } else {
    // Self-labeling: the whole chunk predicts against the pre-chunk model
    // (sequentially, row r would see the model trained through row r-1 —
    // the chunked-training approximation).
    model.predict_batch_from_hidden(xc, hc, ws, preds.subspan(0, take));
    for (std::size_t r = 0; r < take; ++r) labels[r] = preds[r].label;
  }
  const model::ChunkTrainStats done = model.train_buckets_from_hidden(
      xc, hc, std::span<const std::size_t>(labels.data(), take), ws);
  if (stats != nullptr) {
    stats->rows += done.rows;
    stats->buckets += done.buckets;
    stats->replica_refreshes += done.replica_refreshes;
  }
  // Equation 1 Welford statistics, per row in stream order against the
  // frozen coordinates — identical accumulation chain to the sequential
  // loop (only the trained model differs).
  for (std::size_t r = 0; r < take; ++r) {
    const double d =
        linalg::l1_distance(xc.row(r), coords_.centroid(labels[r]));
    ++dist_count_;
    const double delta = d - dist_mean_;
    dist_mean_ += delta / static_cast<double>(dist_count_);
    dist_m2_ += delta * (d - dist_mean_);
  }
  count_ += take;
  update_phase();  // Same post-step phase bookkeeping as step().
  return take;
}

void Reconstructor::update_phase() {
  if (phase_ == ReconstructionPhase::kIdle) return;
  if (count_ < config_.n_search) {
    phase_ = ReconstructionPhase::kSearchCoords;
  } else if (count_ < config_.n_update) {
    // Entering the refinement phase: the coordinates currently hold real
    // samples placed by Init_Coord, so give each a unit weight.
    if (phase_ == ReconstructionPhase::kSearchCoords) coords_.set_counts(1);
    phase_ = ReconstructionPhase::kUpdateCoords;
  } else if (count_ < config_.n_total / 2) {
    phase_ = ReconstructionPhase::kTrainNearest;
  } else {
    phase_ = ReconstructionPhase::kTrainPredict;
  }
}

double Reconstructor::suggested_theta_drift(double z) const {
  if (dist_count_ == 0) return 0.0;
  const double variance = dist_m2_ / static_cast<double>(dist_count_);
  return dist_mean_ + z * std::sqrt(std::max(0.0, variance));
}

std::size_t Reconstructor::memory_bytes() const {
  return coords_.memory_bytes() + ws_.memory_bytes() + sizeof(*this) -
         sizeof(coords_);
}

}  // namespace edgedrift::drift
