#include "edgedrift/drift/reconstructor.hpp"

#include <cmath>

#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::drift {

Reconstructor::Reconstructor(ReconstructorConfig config,
                             std::size_t num_labels, std::size_t dim)
    : config_(config), coords_(num_labels, dim) {
  EDGEDRIFT_ASSERT(config_.n_search <= config_.n_update,
                   "N_search must not exceed N_update");
  EDGEDRIFT_ASSERT(config_.n_update <= config_.n_total,
                   "N_update must not exceed N");
  EDGEDRIFT_ASSERT(config_.n_update <= config_.n_total / 2,
                   "coordinate refinement must end before model training "
                   "(N_update <= N/2)");
  EDGEDRIFT_ASSERT(config_.n_total > 0, "N must be positive");
}

void Reconstructor::begin(model::MultiInstanceModel& model,
                          const linalg::Matrix& seed_coords) {
  EDGEDRIFT_ASSERT(seed_coords.rows() == coords_.num_clusters() &&
                       seed_coords.cols() == coords_.dim(),
                   "seed coordinate shape mismatch");
  model.init_sequential();
  std::vector<std::size_t> zeros(coords_.num_clusters(), 0);
  coords_.set_centroids(seed_coords, zeros);
  count_ = 0;
  dist_count_ = 0;
  dist_mean_ = 0.0;
  dist_m2_ = 0.0;
  phase_ = config_.n_search > 0 ? ReconstructionPhase::kSearchCoords
                                : ReconstructionPhase::kUpdateCoords;
  update_phase();
}

bool Reconstructor::step(std::span<const double> x,
                         model::MultiInstanceModel& model) {
  EDGEDRIFT_ASSERT(active(), "step() without begin()");
  EDGEDRIFT_ASSERT(x.size() == coords_.dim(), "sample dim mismatch");
  ++count_;  // Algorithm 2 line 2 increments before the phase tests.
  if (count_ >= config_.n_total) {
    // Algorithm 2 lines 13-15: the N-th sample does no work; reconstruction
    // reports completion so Algorithm 1 clears its drift flag.
    phase_ = ReconstructionPhase::kIdle;
    return false;
  }
  update_phase();

  switch (phase_) {
    case ReconstructionPhase::kSearchCoords:
      // "C initial samples are selected as initial coordinates of C labels"
      // (paper Section 3.3): the first C streamed samples seed the
      // coordinates unconditionally — the begin() seeds are placeholders
      // and must not win the spread contest against real data. Later
      // samples substitute via the Algorithm 3 spread maximization.
      if (count_ <= coords_.num_clusters()) {
        linalg::copy(x, coords_.centroid_mutable(count_ - 1));
      } else {
        coords_.spread_init(x);
      }
      break;
    case ReconstructionPhase::kUpdateCoords:
      coords_.update(x);
      break;
    case ReconstructionPhase::kTrainNearest: {
      const std::size_t label = coords_.nearest(x);
      model.train_label(x, label);
      // Track Equation 1 distances against the rebuilt coordinates so the
      // detector can be re-armed for the new concept.
      const double d = linalg::l1_distance(x, coords_.centroid(label));
      ++dist_count_;
      const double delta = d - dist_mean_;
      dist_mean_ += delta / static_cast<double>(dist_count_);
      dist_m2_ += delta * (d - dist_mean_);
      break;
    }
    case ReconstructionPhase::kTrainPredict: {
      // Fused predict-then-train: projects the sample once and shares the
      // hidden vector between the ensemble scorer and the winning
      // instance's update (identical semantics to predict + train_label on
      // the predicted label).
      const model::Prediction pred = model.train_closest(x, ws_);
      const double d = linalg::l1_distance(x, coords_.centroid(pred.label));
      ++dist_count_;
      const double delta = d - dist_mean_;
      dist_mean_ += delta / static_cast<double>(dist_count_);
      dist_m2_ += delta * (d - dist_mean_);
      break;
    }
    case ReconstructionPhase::kIdle:
      break;
  }
  return true;
}

void Reconstructor::update_phase() {
  if (phase_ == ReconstructionPhase::kIdle) return;
  if (count_ < config_.n_search) {
    phase_ = ReconstructionPhase::kSearchCoords;
  } else if (count_ < config_.n_update) {
    // Entering the refinement phase: the coordinates currently hold real
    // samples placed by Init_Coord, so give each a unit weight.
    if (phase_ == ReconstructionPhase::kSearchCoords) coords_.set_counts(1);
    phase_ = ReconstructionPhase::kUpdateCoords;
  } else if (count_ < config_.n_total / 2) {
    phase_ = ReconstructionPhase::kTrainNearest;
  } else {
    phase_ = ReconstructionPhase::kTrainPredict;
  }
}

double Reconstructor::suggested_theta_drift(double z) const {
  if (dist_count_ == 0) return 0.0;
  const double variance = dist_m2_ / static_cast<double>(dist_count_);
  return dist_mean_ + z * std::sqrt(std::max(0.0, variance));
}

std::size_t Reconstructor::memory_bytes() const {
  return coords_.memory_bytes() + ws_.memory_bytes() + sizeof(*this) -
         sizeof(coords_);
}

}  // namespace edgedrift::drift
