#include "edgedrift/drift/adwin.hpp"

#include <cmath>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::drift {

Adwin::Adwin(AdwinConfig config) : config_(config) {
  EDGEDRIFT_ASSERT(config_.delta > 0.0 && config_.delta < 1.0,
                   "delta must be in (0, 1)");
  EDGEDRIFT_ASSERT(config_.max_buckets >= 2, "need at least two buckets/row");
  rows_.emplace_back();
}

Detection Adwin::observe(const Observation& obs) {
  const double value =
      config_.use_anomaly_score ? obs.anomaly_score : (obs.error ? 1.0 : 0.0);
  Detection result;
  result.drift = insert(value);
  result.statistic = mean();
  result.statistic_valid = true;
  return result;
}

bool Adwin::insert(double value) {
  rows_[0].push_front(Bucket{value, 1});
  total_sum_ += value;
  total_count_ += 1;
  compress();

  if (++inserts_since_check_ < config_.check_every) return false;
  inserts_since_check_ = 0;
  return detect_cut();
}

void Adwin::compress() {
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r].size() <= config_.max_buckets) break;
    // Merge the two oldest buckets of this row into one bucket of the next.
    Bucket oldest = rows_[r].back();
    rows_[r].pop_back();
    Bucket second = rows_[r].back();
    rows_[r].pop_back();
    if (r + 1 == rows_.size()) rows_.emplace_back();
    rows_[r + 1].push_front(
        Bucket{oldest.sum + second.sum, oldest.count + second.count});
  }
}

bool Adwin::detect_cut() {
  bool any_cut = false;
  bool cut_found = true;
  while (cut_found && total_count_ > config_.min_window) {
    cut_found = false;
    double sum0 = 0.0;
    std::size_t n0 = 0;
    // Walk boundaries from the oldest end of the window.
    for (std::size_t ri = rows_.size(); ri-- > 0 && !cut_found;) {
      for (auto it = rows_[ri].rbegin(); it != rows_[ri].rend(); ++it) {
        sum0 += it->sum;
        n0 += it->count;
        const std::size_t n1 = total_count_ - n0;
        if (n1 == 0) break;
        const double mean0 = sum0 / static_cast<double>(n0);
        const double mean1 =
            (total_sum_ - sum0) / static_cast<double>(n1);
        const double m =
            1.0 / (1.0 / static_cast<double>(n0) +
                   1.0 / static_cast<double>(n1));
        const double delta_prime =
            config_.delta / static_cast<double>(total_count_);
        const double eps =
            std::sqrt(std::log(4.0 / delta_prime) / (2.0 * m));
        if (std::abs(mean0 - mean1) > eps) {
          // Drop the oldest bucket and rescan.
          for (std::size_t rj = rows_.size(); rj-- > 0;) {
            if (!rows_[rj].empty()) {
              total_sum_ -= rows_[rj].back().sum;
              total_count_ -= rows_[rj].back().count;
              rows_[rj].pop_back();
              break;
            }
          }
          any_cut = true;
          cut_found = true;
          break;
        }
      }
    }
  }
  return any_cut;
}

double Adwin::mean() const {
  return total_count_ == 0
             ? 0.0
             : total_sum_ / static_cast<double>(total_count_);
}

void Adwin::reset() {
  rows_.clear();
  rows_.emplace_back();
  total_sum_ = 0.0;
  total_count_ = 0;
  inserts_since_check_ = 0;
}

std::size_t Adwin::memory_bytes() const {
  std::size_t buckets = 0;
  for (const auto& row : rows_) buckets += row.size();
  return buckets * sizeof(Bucket) + rows_.capacity() * sizeof(rows_[0]);
}

}  // namespace edgedrift::drift
