#include "edgedrift/drift/quanttree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::drift {

QuantTree::QuantTree(QuantTreeConfig config) : config_(config) {
  EDGEDRIFT_ASSERT(config_.num_bins >= 2, "need at least two bins");
  EDGEDRIFT_ASSERT(config_.batch_size > 0, "batch size must be positive");
  EDGEDRIFT_ASSERT(config_.alpha > 0.0 && config_.alpha < 1.0,
                   "alpha must be in (0, 1)");
  bin_probs_.assign(config_.num_bins, 1.0 / double(config_.num_bins));
  counts_.assign(config_.num_bins, 0);
}

void QuantTree::fit(const linalg::Matrix& reference) {
  const std::size_t n = reference.rows();
  const std::size_t k = config_.num_bins;
  EDGEDRIFT_ASSERT(n >= k, "reference must hold at least K samples");

  util::Rng rng(config_.seed);
  splits_.clear();
  splits_.reserve(k - 1);

  // Remaining reference rows not yet captured by a bin.
  std::vector<std::size_t> remaining(n);
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<double> values;

  for (std::size_t bin = 0; bin + 1 < k; ++bin) {
    // Target count for this bin out of what remains: keep the residual bins
    // balanced, i.e. floor(remaining / bins_left).
    const std::size_t bins_left = k - bin;
    const std::size_t take = std::max<std::size_t>(
        1, remaining.size() / bins_left);

    Split split;
    split.dim = rng.uniform_index(reference.cols());
    split.low_side = rng.bernoulli(0.5);

    values.resize(remaining.size());
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      values[i] = reference(remaining[i], split.dim);
    }
    // The cut captures exactly `take` points from the chosen tail.
    if (split.low_side) {
      std::nth_element(values.begin(), values.begin() + (take - 1),
                       values.end());
      split.threshold = values[take - 1];
    } else {
      std::nth_element(values.begin(), values.begin() + (take - 1),
                       values.end(), std::greater<double>());
      split.threshold = values[take - 1];
    }
    splits_.push_back(split);

    // Remove captured points. Ties on the threshold can capture more than
    // `take` points; that is fine — the Monte Carlo calibration below uses
    // the ideal uniform probabilities, matching the QuantTree analysis.
    std::vector<std::size_t> kept;
    kept.reserve(remaining.size());
    for (const std::size_t row : remaining) {
      const double v = reference(row, split.dim);
      const bool captured =
          split.low_side ? (v <= split.threshold) : (v >= split.threshold);
      if (!captured) kept.push_back(row);
    }
    // Degenerate reference (many identical values) can capture everything;
    // keep at least one point per residual bin by re-adding arbitrarily.
    if (kept.empty()) kept.push_back(remaining.front());
    remaining.swap(kept);
  }

  calibrate_threshold();
  buffer_.resize_zero(config_.batch_size, reference.cols());
  buffered_ = 0;
  fitted_ = true;
}

std::size_t QuantTree::bin_of(std::span<const double> x) const {
  EDGEDRIFT_ASSERT(fitted_, "bin_of() before fit()");
  for (std::size_t k = 0; k < splits_.size(); ++k) {
    const Split& s = splits_[k];
    const double v = x[s.dim];
    const bool captured = s.low_side ? (v <= s.threshold) : (v >= s.threshold);
    if (captured) return k;
  }
  return splits_.size();  // Remainder bin.
}

double QuantTree::statistic(const linalg::Matrix& batch) const {
  EDGEDRIFT_ASSERT(fitted_, "statistic() before fit()");
  std::vector<std::size_t> counts(config_.num_bins, 0);
  for (std::size_t i = 0; i < batch.rows(); ++i) {
    ++counts[bin_of(batch.row(i))];
  }
  return pearson_statistic(counts, batch.rows());
}

double QuantTree::pearson_statistic(std::span<const std::size_t> counts,
                                    std::size_t batch_rows) const {
  const double b = static_cast<double>(batch_rows);
  double stat = 0.0;
  for (std::size_t k = 0; k < config_.num_bins; ++k) {
    const double expected = b * bin_probs_[k];
    const double delta = static_cast<double>(counts[k]) - expected;
    stat += delta * delta / expected;
  }
  return stat;
}

void QuantTree::calibrate_threshold() {
  // Under H0 the bin counts are (asymptotically in the reference size)
  // multinomial(B, pi); simulate the Pearson statistic and take the
  // (1 - alpha) quantile.
  util::Rng rng(config_.seed ^ 0xabcdef12345ULL);
  const std::size_t trials = config_.monte_carlo_trials;
  std::vector<double> stats(trials);
  std::vector<std::size_t> counts(config_.num_bins);
  for (std::size_t t = 0; t < trials; ++t) {
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < config_.batch_size; ++i) {
      // Uniform bins: direct index draw.
      ++counts[rng.uniform_index(config_.num_bins)];
    }
    stats[t] = pearson_statistic(counts, config_.batch_size);
  }
  std::sort(stats.begin(), stats.end());
  const auto idx = static_cast<std::size_t>(
      std::min<double>(double(trials) - 1.0,
                       std::ceil((1.0 - config_.alpha) * double(trials))));
  threshold_ = stats[idx];
}

Detection QuantTree::observe(const Observation& obs) {
  EDGEDRIFT_ASSERT(fitted_, "observe() before fit()");
  EDGEDRIFT_ASSERT(obs.x.size() == buffer_.cols(), "sample dim mismatch");
  buffer_.set_row(buffered_++, obs.x);
  Detection result;
  if (buffered_ == config_.batch_size) {
    // Full batch: bin it, emit the Pearson statistic, drop the buffer.
    std::fill(counts_.begin(), counts_.end(), 0);
    for (std::size_t i = 0; i < buffered_; ++i) {
      ++counts_[bin_of(buffer_.row(i))];
    }
    const double stat = pearson_statistic(counts_, buffered_);
    buffered_ = 0;
    result.statistic = stat;
    result.statistic_valid = true;
    result.drift = stat > threshold_;
  }
  return result;
}

void QuantTree::reset() { buffered_ = 0; }

std::size_t QuantTree::memory_bytes() const {
  // The dominant term is the B x D batch buffer — exactly what makes batch
  // detectors unsuitable for a 264 kB microcontroller (paper Section 5.3).
  return buffer_.memory_bytes() + splits_.capacity() * sizeof(Split) +
         bin_probs_.capacity() * sizeof(double) +
         counts_.capacity() * sizeof(std::size_t);
}

}  // namespace edgedrift::drift
