#include "edgedrift/drift/spll.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/cluster/kmeans.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::drift {

Spll::Spll(SpllConfig config) : config_(config) {
  EDGEDRIFT_ASSERT(config_.num_clusters > 0, "need at least one cluster");
  EDGEDRIFT_ASSERT(config_.batch_size > 0, "batch size must be positive");
  EDGEDRIFT_ASSERT(config_.quantile > 0.0 && config_.quantile < 1.0,
                   "quantile must be in (0, 1)");
}

void Spll::fit(const linalg::Matrix& reference) {
  EDGEDRIFT_ASSERT(reference.rows() >= config_.num_clusters,
                   "reference smaller than cluster count");
  reference_ = reference;

  util::Rng rng(config_.seed);
  const cluster::KMeansResult km =
      cluster::kmeans(reference_, config_.num_clusters, rng);
  gmm_ = cluster::DiagonalGmm::from_clusters(reference_, km.assignments,
                                             config_.num_clusters);

  // Bootstrap the H0 distribution of the batch statistic from the reference
  // window itself.
  std::vector<double> stats(config_.bootstrap_trials);
  const std::size_t n = reference_.rows();
  for (std::size_t t = 0; t < config_.bootstrap_trials; ++t) {
    double acc = 0.0;
    for (std::size_t i = 0; i < config_.batch_size; ++i) {
      acc += gmm_.min_mahalanobis_sq(reference_.row(rng.uniform_index(n)));
    }
    stats[t] = acc / static_cast<double>(config_.batch_size);
  }
  std::sort(stats.begin(), stats.end());
  const auto idx = static_cast<std::size_t>(std::min<double>(
      double(stats.size()) - 1.0,
      std::ceil(config_.quantile * double(stats.size()))));
  threshold_ = stats[idx];

  buffer_.resize_zero(config_.batch_size, reference.cols());
  buffered_ = 0;
  fitted_ = true;
}

double Spll::statistic(const linalg::Matrix& batch) const {
  EDGEDRIFT_ASSERT(fitted_, "statistic() before fit()");
  if (batch.rows() == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < batch.rows(); ++i) {
    acc += gmm_.min_mahalanobis_sq(batch.row(i));
  }
  return acc / static_cast<double>(batch.rows());
}

Detection Spll::observe(const Observation& obs) {
  EDGEDRIFT_ASSERT(fitted_, "observe() before fit()");
  EDGEDRIFT_ASSERT(obs.x.size() == buffer_.cols(), "sample dim mismatch");
  buffer_.set_row(buffered_++, obs.x);
  Detection result;
  if (buffered_ == config_.batch_size) {
    double acc = 0.0;
    for (std::size_t i = 0; i < buffered_; ++i) {
      acc += gmm_.min_mahalanobis_sq(buffer_.row(i));
    }
    const double stat = acc / static_cast<double>(buffered_);
    buffered_ = 0;
    result.statistic = stat;
    result.statistic_valid = true;
    result.drift = stat > threshold_;
  }
  return result;
}

void Spll::reset() { buffered_ = 0; }

std::size_t Spll::memory_bytes() const {
  // Reference window + test buffer + mixture parameters. The retained
  // window is what puts SPLL far above QuantTree in Table 4.
  return reference_.memory_bytes() + buffer_.memory_bytes() +
         gmm_.memory_bytes();
}

}  // namespace edgedrift::drift
