#include "edgedrift/drift/centroid_detector.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/drift/threshold.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::drift {

CentroidDetector::CentroidDetector(CentroidDetectorConfig config)
    : config_(config),
      theta_drift_(config.theta_drift),
      trained_(config.num_labels, config.dim),
      recent_(config.num_labels, config.dim),
      counts_(config.num_labels, 0),
      calibrated_counts_(config.num_labels, 0) {
  EDGEDRIFT_ASSERT(config_.num_labels > 0, "need at least one label");
  EDGEDRIFT_ASSERT(config_.dim > 0, "dim must be positive");
  EDGEDRIFT_ASSERT(config_.window_size > 0, "window size must be positive");
  EDGEDRIFT_ASSERT(config_.ewma_decay >= 0.0 && config_.ewma_decay < 1.0,
                   "ewma_decay must be in [0, 1)");
}

void CentroidDetector::calibrate(const linalg::Matrix& x,
                                 std::span<const int> labels) {
  EDGEDRIFT_ASSERT(x.rows() == labels.size(), "X/label row mismatch");
  EDGEDRIFT_ASSERT(x.cols() == config_.dim, "dim mismatch");
  trained_.fill(0.0);
  std::vector<std::size_t>& counts = calib_counts_scratch_;
  counts.assign(config_.num_labels, 0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int c = labels[i];
    EDGEDRIFT_ASSERT(
        c >= 0 && static_cast<std::size_t>(c) < config_.num_labels,
        "label out of range");
    linalg::axpy(1.0, x.row(i), trained_.row(c));
    ++counts[c];
  }
  for (std::size_t c = 0; c < config_.num_labels; ++c) {
    EDGEDRIFT_ASSERT(counts[c] > 0, "every label needs training samples");
    const double inv = 1.0 / static_cast<double>(counts[c]);
    auto row = trained_.row(c);
    for (auto& v : row) v *= inv;
  }

  std::vector<double>& distances = calib_distances_scratch_;
  distances.resize(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    distances[i] = linalg::l1_distance(x.row(i), trained_.row(labels[i]));
  }
  calibrate_from_centroids(trained_, counts, distances);
}

void CentroidDetector::calibrate_from_centroids(
    const linalg::Matrix& centroids, std::span<const std::size_t> counts,
    std::span<const double> distances) {
  EDGEDRIFT_ASSERT(centroids.rows() == config_.num_labels &&
                       centroids.cols() == config_.dim,
                   "centroid shape mismatch");
  EDGEDRIFT_ASSERT(counts.size() == config_.num_labels,
                   "count arity mismatch");
  trained_ = centroids;
  calibrated_counts_.assign(counts.begin(), counts.end());
  if (config_.theta_drift <= 0.0) {
    theta_drift_ = drift_threshold_from_distances(distances, config_.z);
  } else {
    theta_drift_ = config_.theta_drift;
  }
  calibrated_ = true;
  reset();
}

Detection CentroidDetector::observe(const Observation& obs) {
  EDGEDRIFT_ASSERT(calibrated_, "observe() before calibrate()");
  EDGEDRIFT_ASSERT(obs.x.size() == config_.dim, "sample dim mismatch");
  EDGEDRIFT_ASSERT(obs.predicted_label >= 0 &&
                       static_cast<std::size_t>(obs.predicted_label) <
                           config_.num_labels,
                   "predicted label out of range");

  Detection result;
  // Algorithm 1 lines 8-10: arm the window on an anomalous sample.
  if (!check_ && obs.anomaly_score >= config_.theta_error) {
    check_ = true;
    win_ = 0;
  }

  // Lines 11-19: inside an open window, fold the sample into the recent
  // centroid of its predicted label and re-evaluate the summed displacement.
  if (check_ && win_ < config_.window_size) {
    const auto c = static_cast<std::size_t>(obs.predicted_label);
    if (config_.ewma_decay > 0.0) {
      linalg::ewma_update(recent_.row(c), obs.x, config_.ewma_decay);
      ++counts_[c];
    } else {
      linalg::running_mean_update(recent_.row(c), obs.x, counts_[c]);
      ++counts_[c];
    }
    last_distance_ = distance_sum();
    ++win_;
    if (win_ == config_.window_size) {
      result.statistic = last_distance_;
      result.statistic_valid = true;
      if (last_distance_ >= theta_drift_) {
        result.drift = true;
      }
      check_ = false;
    }
  }
  return result;
}

double CentroidDetector::distance_sum() const {
  double total = 0.0;
  for (std::size_t c = 0; c < config_.num_labels; ++c) {
    total += linalg::l1_distance(recent_.row(c), trained_.row(c));
  }
  return total;
}

void CentroidDetector::per_label_distances(std::span<double> out) const {
  EDGEDRIFT_ASSERT(out.size() == config_.num_labels,
                   "output arity mismatch");
  for (std::size_t c = 0; c < config_.num_labels; ++c) {
    out[c] = linalg::l1_distance(recent_.row(c), trained_.row(c));
  }
}

std::vector<std::size_t> CentroidDetector::top_drifted_dimensions(
    std::size_t k) const {
  k = std::min(k, config_.dim);
  std::vector<double> displacement(config_.dim, 0.0);
  for (std::size_t c = 0; c < config_.num_labels; ++c) {
    const auto recent = recent_.row(c);
    const auto trained = trained_.row(c);
    for (std::size_t j = 0; j < config_.dim; ++j) {
      displacement[j] += std::abs(recent[j] - trained[j]);
    }
  }
  std::vector<std::size_t> order(config_.dim);
  for (std::size_t j = 0; j < config_.dim; ++j) order[j] = j;
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return displacement[a] > displacement[b];
                    });
  order.resize(k);
  return order;
}

void CentroidDetector::reset() {
  // Recent centroids restart from the trained reference.
  recent_ = trained_;
  if (config_.initial_count >= 0) {
    std::fill(counts_.begin(), counts_.end(),
              static_cast<std::size_t>(config_.initial_count));
  } else {
    counts_ = calibrated_counts_;
  }
  check_ = false;
  win_ = 0;
  last_distance_ = 0.0;
}

void CentroidDetector::rebuild_reference(const linalg::Matrix& x) {
  // Without labels, re-anchor the trained centroids to the current recent
  // ones (the stream has moved; the recent centroids are the best available
  // estimate of the new concept) and restart.
  (void)x;
  trained_ = recent_;
  reset();
}

void CentroidDetector::rearm(const linalg::Matrix& new_trained_centroids,
                             std::span<const std::size_t> counts,
                             double new_theta_drift) {
  EDGEDRIFT_ASSERT(new_trained_centroids.rows() == config_.num_labels &&
                       new_trained_centroids.cols() == config_.dim,
                   "centroid shape mismatch");
  trained_ = new_trained_centroids;
  calibrated_counts_.assign(counts.begin(), counts.end());
  if (new_theta_drift > 0.0) theta_drift_ = new_theta_drift;
  reset();
}

void CentroidDetector::restore(const linalg::Matrix& trained,
                               const linalg::Matrix& recent,
                               std::span<const std::size_t> counts,
                               std::span<const std::size_t> calibrated_counts,
                               double theta_drift) {
  EDGEDRIFT_ASSERT(trained.rows() == config_.num_labels &&
                       trained.cols() == config_.dim,
                   "restored trained-centroid shape mismatch");
  EDGEDRIFT_ASSERT(recent.rows() == config_.num_labels &&
                       recent.cols() == config_.dim,
                   "restored recent-centroid shape mismatch");
  EDGEDRIFT_ASSERT(counts.size() == config_.num_labels &&
                       calibrated_counts.size() == config_.num_labels,
                   "restored count arity mismatch");
  trained_ = trained;
  recent_ = recent;
  counts_.assign(counts.begin(), counts.end());
  calibrated_counts_.assign(calibrated_counts.begin(),
                            calibrated_counts.end());
  theta_drift_ = theta_drift;
  calibrated_ = true;
  check_ = false;
  win_ = 0;
  last_distance_ = 0.0;
}

std::size_t CentroidDetector::memory_bytes() const {
  return trained_.memory_bytes() + recent_.memory_bytes() +
         (counts_.capacity() + calibrated_counts_.capacity()) *
             sizeof(std::size_t);
}

}  // namespace edgedrift::drift
