#include "edgedrift/drift/eddm.hpp"

#include <cmath>

namespace edgedrift::drift {

Eddm::Eddm(EddmConfig config) : config_(config) {}

Detection Eddm::observe(const Observation& obs) {
  ++samples_;
  Detection result;
  if (!obs.error) return result;

  // Gap between this error and the previous one.
  const double gap = static_cast<double>(samples_ - last_error_at_);
  last_error_at_ = samples_;
  ++errors_;

  // Welford update of the gap mean/variance.
  const double delta = gap - gap_mean_;
  gap_mean_ += delta / static_cast<double>(errors_);
  gap_m2_ += delta * (gap - gap_mean_);

  if (errors_ < config_.min_errors) return result;

  const double variance = gap_m2_ / static_cast<double>(errors_);
  const double score = gap_mean_ + 2.0 * std::sqrt(std::max(0.0, variance));
  if (score > best_score_) best_score_ = score;
  if (best_score_ <= 0.0) return result;

  const double ratio = score / best_score_;
  result.statistic = ratio;
  result.statistic_valid = true;
  if (ratio < config_.drift_ratio) {
    result.drift = true;
  } else if (ratio < config_.warning_ratio) {
    result.warning = true;
  }
  return result;
}

void Eddm::reset() {
  samples_ = 0;
  errors_ = 0;
  last_error_at_ = 0;
  gap_mean_ = 0.0;
  gap_m2_ = 0.0;
  best_score_ = 0.0;
}

}  // namespace edgedrift::drift
