#include "edgedrift/drift/page_hinkley.hpp"

#include <algorithm>

namespace edgedrift::drift {

PageHinkley::PageHinkley(PageHinkleyConfig config) : config_(config) {}

Detection PageHinkley::observe(const Observation& obs) {
  const double value =
      config_.use_anomaly_score ? obs.anomaly_score : (obs.error ? 1.0 : 0.0);
  Detection result;
  result.drift = insert(value);
  result.statistic = cumulative_ - minimum_;
  result.statistic_valid = samples_ >= config_.min_samples;
  return result;
}

bool PageHinkley::insert(double value) {
  ++samples_;
  // Incremental mean of everything seen since the last reset.
  running_mean_ += (value - running_mean_) / static_cast<double>(samples_);
  cumulative_ = config_.alpha * cumulative_ +
                (value - running_mean_ - config_.delta);
  minimum_ = std::min(minimum_, cumulative_);
  if (samples_ < config_.min_samples) return false;
  return cumulative_ - minimum_ > config_.lambda;
}

void PageHinkley::reset() {
  samples_ = 0;
  running_mean_ = 0.0;
  cumulative_ = 0.0;
  minimum_ = 0.0;
}

}  // namespace edgedrift::drift
