#include "edgedrift/data/traffic.hpp"

#include <cmath>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::data {

const char* arrival_pattern_name(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kUniform:
      return "uniform";
    case ArrivalPattern::kPoisson:
      return "poisson";
    case ArrivalPattern::kBursty:
      return "bursty";
  }
  return "?";
}

bool arrival_pattern_from_name(std::string_view name, ArrivalPattern* out) {
  if (name == "uniform") {
    *out = ArrivalPattern::kUniform;
  } else if (name == "poisson") {
    *out = ArrivalPattern::kPoisson;
  } else if (name == "bursty") {
    *out = ArrivalPattern::kBursty;
  } else {
    return false;
  }
  return true;
}

TrafficShaper::TrafficShaper(const TrafficSpec& spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {
  EDGEDRIFT_ASSERT(spec_.streams > 0, "traffic needs at least one stream");
  EDGEDRIFT_ASSERT(spec_.pareto_alpha > 1.0,
                   "pareto_alpha must exceed 1 (finite mean)");
}

std::size_t TrafficShaper::poisson_at_least_one(double mean) {
  if (mean <= 1.0) return 1;
  // Knuth's product method: exact, and cheap for the small means traffic
  // shaping uses (tens of rows per tick).
  const double limit = std::exp(-mean);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng_.uniform();
  } while (p > limit);
  return k > 1 ? k - 1 : 1;
}

std::size_t TrafficShaper::pareto_period() {
  // Pareto with shape alpha and scale xm chosen so the mean is
  // mean_period: E = xm * alpha / (alpha - 1).
  const double alpha = spec_.pareto_alpha;
  const double xm = spec_.mean_period * (alpha - 1.0) / alpha;
  double u = rng_.uniform();
  if (u < 1e-12) u = 1e-12;  // Bounds the tail draw.
  const double period = xm / std::pow(u, 1.0 / alpha);
  const double clamped = std::fmin(period, 1e6);
  return clamped < 1.0 ? 1 : static_cast<std::size_t>(clamped);
}

std::size_t TrafficShaper::next_batch() {
  switch (spec_.pattern) {
    case ArrivalPattern::kUniform: {
      const double r = std::round(spec_.mean_batch);
      return r < 1.0 ? 1 : static_cast<std::size_t>(r);
    }
    case ArrivalPattern::kPoisson:
      return poisson_at_least_one(spec_.mean_batch);
    case ArrivalPattern::kBursty: {
      if (period_left_ == 0) {
        bursting_ = !bursting_;
        period_left_ = pareto_period();
      }
      --period_left_;
      return poisson_at_least_one(bursting_ ? spec_.burst_batch
                                            : spec_.idle_batch);
    }
  }
  return 1;
}

std::size_t TrafficShaper::next_stream() {
  if (spec_.streams == 1) return 0;
  if (spec_.churn > 0.0 && rng_.bernoulli(spec_.churn)) {
    cursor_ = rng_.uniform_index(spec_.streams);
  }
  const std::size_t id = cursor_;
  cursor_ = (cursor_ + 1) % spec_.streams;
  return id;
}

}  // namespace edgedrift::data
