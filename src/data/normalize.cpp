#include "edgedrift/data/normalize.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::data {

void MinMaxScaler::fit(const linalg::Matrix& x) {
  EDGEDRIFT_ASSERT(x.rows() > 0, "cannot fit on empty data");
  const std::size_t d = x.cols();
  min_.assign(d, std::numeric_limits<double>::infinity());
  std::vector<double> max(d, -std::numeric_limits<double>::infinity());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t j = 0; j < d; ++j) {
      min_[j] = std::min(min_[j], row[j]);
      max[j] = std::max(max[j], row[j]);
    }
  }
  inv_range_.resize(d);
  for (std::size_t j = 0; j < d; ++j) {
    const double range = max[j] - min_[j];
    inv_range_[j] = range > 0.0 ? 1.0 / range : 0.0;
  }
}

void MinMaxScaler::transform(std::span<double> x) const {
  EDGEDRIFT_ASSERT(fitted(), "transform() before fit()");
  EDGEDRIFT_ASSERT(x.size() == min_.size(), "dimension mismatch");
  for (std::size_t j = 0; j < x.size(); ++j) {
    x[j] = (x[j] - min_[j]) * inv_range_[j];
    if (clamp) x[j] = std::clamp(x[j], 0.0, 1.0);
  }
}

void MinMaxScaler::transform(Dataset& dataset) const {
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    transform(dataset.x.row(r));
  }
}

void ZScoreScaler::fit(const linalg::Matrix& x) {
  EDGEDRIFT_ASSERT(x.rows() > 0, "cannot fit on empty data");
  const std::size_t d = x.cols();
  const double inv_n = 1.0 / static_cast<double>(x.rows());
  mean_.assign(d, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (auto& m : mean_) m *= inv_n;

  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - mean_[j];
      var[j] += delta * delta;
    }
  }
  inv_std_.resize(d);
  for (std::size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] * inv_n);
    inv_std_[j] = sd > 0.0 ? 1.0 / sd : 0.0;
  }
}

void ZScoreScaler::transform(std::span<double> x) const {
  EDGEDRIFT_ASSERT(fitted(), "transform() before fit()");
  EDGEDRIFT_ASSERT(x.size() == mean_.size(), "dimension mismatch");
  for (std::size_t j = 0; j < x.size(); ++j) {
    x[j] = (x[j] - mean_[j]) * inv_std_[j];
  }
}

void ZScoreScaler::transform(Dataset& dataset) const {
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    transform(dataset.x.row(r));
  }
}

}  // namespace edgedrift::data
