// The four Figure-1 composers are thin wrappers over the scenario
// compiler's shared executor (scenario.hpp). Each wrapper preserves the
// exact RNG draw sequence of its original loop — the NSL-KDD golden
// transcript and the fan-gradual threshold tests replay these streams
// bit-for-bit.
#include "edgedrift/data/drift_stream.hpp"

#include "edgedrift/data/scenario.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::data {

Dataset make_sudden_drift(const ConceptGenerator& a, const ConceptGenerator& b,
                          std::size_t n, std::size_t drift_at,
                          util::Rng& rng) {
  EDGEDRIFT_ASSERT(a.dim() == b.dim(), "concept dim mismatch");
  EDGEDRIFT_ASSERT(drift_at <= n, "drift point beyond stream length");
  // A width-0 edge switches instantly and draws no mixing randomness.
  const MixEdge edges[] = {{drift_at, drift_at, &b, MixCurve::kLinear}};
  return render_drift_stream(a, edges, n, rng);
}

Dataset make_gradual_drift(const ConceptGenerator& a,
                           const ConceptGenerator& b, std::size_t n,
                           std::size_t start, std::size_t end,
                           util::Rng& rng) {
  EDGEDRIFT_ASSERT(a.dim() == b.dim(), "concept dim mismatch");
  EDGEDRIFT_ASSERT(start <= end && end <= n, "invalid transition range");
  const MixEdge edges[] = {{start, end, &b, MixCurve::kLinear}};
  // bernoulli_every_row reproduces the original loop, which drew one
  // (p-clamped) bernoulli on every row, pure segments included.
  return render_drift_stream(a, edges, n, rng, /*bernoulli_every_row=*/true);
}

Dataset make_incremental_drift(const GaussianConcept& a,
                               const GaussianConcept& b, std::size_t n,
                               std::size_t start, std::size_t end,
                               util::Rng& rng) {
  return render_incremental_stream(a, b, n, start, end, rng);
}

Dataset make_reoccurring_drift(const ConceptGenerator& a,
                               const ConceptGenerator& b, std::size_t n,
                               std::size_t start, std::size_t end,
                               util::Rng& rng) {
  EDGEDRIFT_ASSERT(a.dim() == b.dim(), "concept dim mismatch");
  EDGEDRIFT_ASSERT(start <= end && end <= n, "invalid reoccurrence range");
  const MixEdge edges[] = {{start, start, &b, MixCurve::kLinear},
                           {end, end, &a, MixCurve::kLinear}};
  return render_drift_stream(a, edges, n, rng);
}

}  // namespace edgedrift::data
