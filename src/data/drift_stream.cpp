#include "edgedrift/data/drift_stream.hpp"

#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::data {

Dataset make_sudden_drift(const ConceptGenerator& a, const ConceptGenerator& b,
                          std::size_t n, std::size_t drift_at,
                          util::Rng& rng) {
  EDGEDRIFT_ASSERT(a.dim() == b.dim(), "concept dim mismatch");
  EDGEDRIFT_ASSERT(drift_at <= n, "drift point beyond stream length");
  Dataset out;
  out.x.resize_zero(n, a.dim());
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ConceptGenerator& src = i < drift_at ? a : b;
    out.labels[i] = src.sample(rng, out.x.row(i));
  }
  return out;
}

Dataset make_gradual_drift(const ConceptGenerator& a,
                           const ConceptGenerator& b, std::size_t n,
                           std::size_t start, std::size_t end,
                           util::Rng& rng) {
  EDGEDRIFT_ASSERT(a.dim() == b.dim(), "concept dim mismatch");
  EDGEDRIFT_ASSERT(start <= end && end <= n, "invalid transition range");
  Dataset out;
  out.x.resize_zero(n, a.dim());
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double p_new = 0.0;
    if (i >= end) {
      p_new = 1.0;
    } else if (i >= start) {
      p_new = static_cast<double>(i - start) /
              static_cast<double>(end - start);
    }
    const ConceptGenerator& src = rng.bernoulli(p_new) ? b : a;
    out.labels[i] = src.sample(rng, out.x.row(i));
  }
  return out;
}

Dataset make_incremental_drift(const GaussianConcept& a,
                               const GaussianConcept& b, std::size_t n,
                               std::size_t start, std::size_t end,
                               util::Rng& rng) {
  EDGEDRIFT_ASSERT(start <= end && end <= n, "invalid transition range");
  Dataset out;
  out.x.resize_zero(n, a.dim());
  out.labels.resize(n);
  // Quantize the interpolation so we do not rebuild the concept per sample.
  constexpr std::size_t kSteps = 64;
  for (std::size_t step = 0; step <= kSteps; ++step) {
    const double t = static_cast<double>(step) / kSteps;
    // Samples whose position maps to this interpolation step.
    const auto lo = static_cast<std::size_t>(
        step == 0 ? 0
                  : start + (end - start) * (step * 2 - 1) / (2 * kSteps));
    const auto hi = static_cast<std::size_t>(
        step == kSteps ? n
                       : start + (end - start) * (step * 2 + 1) / (2 * kSteps));
    if (lo >= hi) continue;
    const GaussianConcept mixed = GaussianConcept::interpolate(a, b, t);
    for (std::size_t i = lo; i < hi && i < n; ++i) {
      out.labels[i] = mixed.sample(rng, out.x.row(i));
    }
  }
  return out;
}

Dataset make_reoccurring_drift(const ConceptGenerator& a,
                               const ConceptGenerator& b, std::size_t n,
                               std::size_t start, std::size_t end,
                               util::Rng& rng) {
  EDGEDRIFT_ASSERT(a.dim() == b.dim(), "concept dim mismatch");
  EDGEDRIFT_ASSERT(start <= end && end <= n, "invalid reoccurrence range");
  Dataset out;
  out.x.resize_zero(n, a.dim());
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ConceptGenerator& src = (i >= start && i < end) ? b : a;
    out.labels[i] = src.sample(rng, out.x.row(i));
  }
  return out;
}

}  // namespace edgedrift::data
