#include "edgedrift/data/stream.hpp"

#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::data {

void Dataset::append(const Dataset& other) {
  if (other.size() == 0) return;
  if (size() == 0) {
    *this = other;
    return;
  }
  EDGEDRIFT_ASSERT(dim() == other.dim(), "dimension mismatch in append");
  linalg::Matrix merged(size() + other.size(), dim());
  for (std::size_t r = 0; r < size(); ++r) merged.set_row(r, x.row(r));
  for (std::size_t r = 0; r < other.size(); ++r) {
    merged.set_row(size() + r, other.x.row(r));
  }
  x = std::move(merged);
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
}

void Dataset::push_back(std::span<const double> row, int label) {
  if (size() == 0 && x.cols() == 0) {
    x.resize_zero(0, row.size());
  }
  EDGEDRIFT_ASSERT(row.size() == dim(), "row dimension mismatch");
  linalg::Matrix grown(size() + 1, dim());
  for (std::size_t r = 0; r < size(); ++r) grown.set_row(r, x.row(r));
  grown.set_row(size(), row);
  x = std::move(grown);
  labels.push_back(label);
}

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  EDGEDRIFT_ASSERT(begin <= end && end <= size(), "slice out of range");
  Dataset out;
  out.x.resize_zero(end - begin, dim());
  out.labels.reserve(end - begin);
  for (std::size_t r = begin; r < end; ++r) {
    out.x.set_row(r - begin, x.row(r));
    out.labels.push_back(labels[r]);
  }
  return out;
}

Dataset draw(const ConceptGenerator& source, std::size_t n, util::Rng& rng) {
  Dataset out;
  out.x.resize_zero(n, source.dim());
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.labels[i] = source.sample(rng, out.x.row(i));
  }
  return out;
}

}  // namespace edgedrift::data
