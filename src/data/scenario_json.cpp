// Hand-rolled JSON reader/writer for ScenarioSpec — the library takes no
// external dependencies, and the dialect is small: one object of scalar
// fields plus the nested "traffic" object. The parser accepts general
// JSON scalars/objects, rejects unknown keys (a typo must not silently
// become a default), and reports positions in its error strings.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "edgedrift/data/scenario.hpp"

namespace edgedrift::data {
namespace {

/// Cursor over the JSON text with one-token-lookahead helpers.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool peek_is(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) return fail("unterminated escape");
        const char esc = text[pos++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default:
            return fail("unsupported escape");
        }
      }
      out->push_back(c);
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;  // Closing quote.
    return true;
  }

  bool parse_number(double* out) {
    skip_ws();
    const char* begin = text.data() + pos;
    char* end = nullptr;
    *out = std::strtod(begin, &end);
    if (end == begin) return fail("expected a number");
    pos += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool parse_bool(bool* out) {
    skip_ws();
    if (text.substr(pos, 4) == "true") {
      *out = true;
      pos += 4;
      return true;
    }
    if (text.substr(pos, 5) == "false") {
      *out = false;
      pos += 5;
      return true;
    }
    return fail("expected true or false");
  }
};

/// Field dispatcher shared by the top-level and traffic objects: each
/// returns false for an unknown key so the caller can report it.
bool apply_traffic_field(Cursor& c, TrafficSpec& t, const std::string& key,
                         bool* ok) {
  *ok = false;
  double num = 0.0;
  std::string str;
  if (key == "pattern") {
    if (!c.parse_string(&str)) return true;
    ArrivalPattern p;
    if (!arrival_pattern_from_name(str, &p)) {
      c.fail("unknown traffic pattern \"" + str + "\"");
      return true;
    }
    t.pattern = p;
  } else if (key == "mean_batch") {
    if (!c.parse_number(&num)) return true;
    t.mean_batch = num;
  } else if (key == "streams") {
    if (!c.parse_number(&num)) return true;
    t.streams = static_cast<std::size_t>(num);
  } else if (key == "churn") {
    if (!c.parse_number(&num)) return true;
    t.churn = num;
  } else if (key == "burst_batch") {
    if (!c.parse_number(&num)) return true;
    t.burst_batch = num;
  } else if (key == "idle_batch") {
    if (!c.parse_number(&num)) return true;
    t.idle_batch = num;
  } else if (key == "pareto_alpha") {
    if (!c.parse_number(&num)) return true;
    t.pareto_alpha = num;
  } else if (key == "mean_period") {
    if (!c.parse_number(&num)) return true;
    t.mean_period = num;
  } else {
    c.fail("unknown traffic key \"" + key + "\"");
    return true;
  }
  *ok = true;
  return true;
}

bool parse_traffic_object(Cursor& c, TrafficSpec& t) {
  if (!c.expect('{')) return false;
  if (c.peek_is('}')) {
    ++c.pos;
    return true;
  }
  for (;;) {
    std::string key;
    if (!c.parse_string(&key)) return false;
    if (!c.expect(':')) return false;
    bool ok = false;
    apply_traffic_field(c, t, key, &ok);
    if (!ok) return false;
    if (c.peek_is(',')) {
      ++c.pos;
      continue;
    }
    return c.expect('}');
  }
}

bool apply_spec_field(Cursor& c, ScenarioSpec& s, const std::string& key,
                      bool* ok) {
  *ok = false;
  double num = 0.0;
  std::string str;
  bool flag = false;
  if (key == "name") {
    if (!c.parse_string(&s.name)) return true;
  } else if (key == "num_features") {
    if (!c.parse_number(&num)) return true;
    s.num_features = static_cast<std::size_t>(num);
  } else if (key == "num_labels") {
    if (!c.parse_number(&num)) return true;
    s.num_labels = static_cast<std::size_t>(num);
  } else if (key == "class_separation") {
    if (!c.parse_number(&s.class_separation)) return true;
  } else if (key == "stddev") {
    if (!c.parse_number(&s.stddev)) return true;
  } else if (key == "train_size") {
    if (!c.parse_number(&num)) return true;
    s.train_size = static_cast<std::size_t>(num);
  } else if (key == "n_instances") {
    if (!c.parse_number(&num)) return true;
    s.n_instances = static_cast<std::size_t>(num);
  } else if (key == "burn_in") {
    if (!c.parse_number(&num)) return true;
    s.burn_in = static_cast<std::size_t>(num);
  } else if (key == "type") {
    if (!c.parse_string(&str)) return true;
    if (str == "abrupt") {
      s.shape = DriftShape::kAbrupt;
    } else if (str == "gradual") {
      s.shape = DriftShape::kGradual;
    } else if (str == "recurrent") {
      s.shape = DriftShape::kRecurrent;
    } else {
      c.fail("unknown drift type \"" + str + "\"");
      return true;
    }
  } else if (key == "transition") {
    if (!c.parse_string(&str)) return true;
    if (str == "linear") {
      s.curve = MixCurve::kLinear;
    } else if (str == "sigmoid") {
      s.curve = MixCurve::kSigmoid;
    } else {
      c.fail("unknown transition \"" + str + "\"");
      return true;
    }
  } else if (key == "drift_width") {
    if (!c.parse_number(&num)) return true;
    s.drift_width = static_cast<std::size_t>(num);
  } else if (key == "num_drift_points") {
    if (!c.parse_number(&num)) return true;
    s.num_drift_points = static_cast<std::size_t>(num);
  } else if (key == "drift_priors") {
    if (!c.parse_bool(&flag)) return true;
    s.drift_priors = flag;
  } else if (key == "drift_conditional") {
    if (!c.parse_bool(&flag)) return true;
    s.drift_conditional = flag;
  } else if (key == "drift_magnitude_prior") {
    if (!c.parse_number(&s.drift_magnitude_prior)) return true;
  } else if (key == "drift_magnitude_conditional") {
    if (!c.parse_number(&s.drift_magnitude_conditional)) return true;
  } else if (key == "noise_level") {
    if (!c.parse_number(&s.noise_level)) return true;
  } else if (key == "divergence_window") {
    if (!c.parse_number(&num)) return true;
    s.divergence_window = static_cast<std::size_t>(num);
  } else if (key == "seed") {
    if (!c.parse_number(&num)) return true;
    s.seed = static_cast<std::uint64_t>(num);
  } else if (key == "traffic") {
    if (!parse_traffic_object(c, s.traffic)) return true;
  } else {
    c.fail("unknown key \"" + key + "\"");
    return true;
  }
  *ok = true;
  return true;
}

std::string escaped(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* shape_name(DriftShape s) {
  switch (s) {
    case DriftShape::kAbrupt:
      return "abrupt";
    case DriftShape::kGradual:
      return "gradual";
    case DriftShape::kRecurrent:
      return "recurrent";
  }
  return "?";
}

}  // namespace

std::optional<ScenarioSpec> parse_scenario_json(std::string_view text,
                                                std::string* error) {
  Cursor c{text, 0, {}};
  ScenarioSpec spec;
  bool parsed = false;
  if (c.expect('{')) {
    if (c.peek_is('}')) {
      ++c.pos;
      parsed = true;
    } else {
      for (;;) {
        std::string key;
        if (!c.parse_string(&key)) break;
        if (!c.expect(':')) break;
        bool ok = false;
        apply_spec_field(c, spec, key, &ok);
        if (!ok) break;
        if (c.peek_is(',')) {
          ++c.pos;
          continue;
        }
        parsed = c.expect('}');
        break;
      }
    }
  }
  if (parsed) {
    c.skip_ws();
    if (c.pos != c.text.size()) {
      parsed = false;
      c.fail("trailing characters after the scenario object");
    }
  }
  if (!parsed) {
    if (error != nullptr) *error = c.error;
    return std::nullopt;
  }
  return spec;
}

std::optional<ScenarioSpec> load_scenario_file(const std::string& path,
                                               std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    if (n == 0) break;
    text.append(buf, n);
  }
  std::fclose(f);
  auto spec = parse_scenario_json(text, error);
  if (!spec && error != nullptr) *error = path + ": " + *error;
  return spec;
}

std::string scenario_to_json(const ScenarioSpec& s) {
  std::string out = "{\n";
  out += "  \"name\": \"" + escaped(s.name) + "\",\n";
  out += "  \"num_features\": " + std::to_string(s.num_features) + ",\n";
  out += "  \"num_labels\": " + std::to_string(s.num_labels) + ",\n";
  out += "  \"class_separation\": " + fmt_double(s.class_separation) + ",\n";
  out += "  \"stddev\": " + fmt_double(s.stddev) + ",\n";
  out += "  \"train_size\": " + std::to_string(s.train_size) + ",\n";
  out += "  \"n_instances\": " + std::to_string(s.n_instances) + ",\n";
  out += "  \"burn_in\": " + std::to_string(s.burn_in) + ",\n";
  out += std::string("  \"type\": \"") + shape_name(s.shape) + "\",\n";
  out += std::string("  \"transition\": \"") +
         (s.curve == MixCurve::kLinear ? "linear" : "sigmoid") + "\",\n";
  out += "  \"drift_width\": " + std::to_string(s.drift_width) + ",\n";
  out += "  \"num_drift_points\": " + std::to_string(s.num_drift_points) +
         ",\n";
  out += std::string("  \"drift_priors\": ") +
         (s.drift_priors ? "true" : "false") + ",\n";
  out += std::string("  \"drift_conditional\": ") +
         (s.drift_conditional ? "true" : "false") + ",\n";
  out += "  \"drift_magnitude_prior\": " +
         fmt_double(s.drift_magnitude_prior) + ",\n";
  out += "  \"drift_magnitude_conditional\": " +
         fmt_double(s.drift_magnitude_conditional) + ",\n";
  out += "  \"noise_level\": " + fmt_double(s.noise_level) + ",\n";
  out += "  \"divergence_window\": " + std::to_string(s.divergence_window) +
         ",\n";
  out += "  \"seed\": " + std::to_string(s.seed) + ",\n";
  out += "  \"traffic\": {\n";
  out += std::string("    \"pattern\": \"") +
         arrival_pattern_name(s.traffic.pattern) + "\",\n";
  out += "    \"mean_batch\": " + fmt_double(s.traffic.mean_batch) + ",\n";
  out += "    \"streams\": " + std::to_string(s.traffic.streams) + ",\n";
  out += "    \"churn\": " + fmt_double(s.traffic.churn) + ",\n";
  out += "    \"burst_batch\": " + fmt_double(s.traffic.burst_batch) + ",\n";
  out += "    \"idle_batch\": " + fmt_double(s.traffic.idle_batch) + ",\n";
  out += "    \"pareto_alpha\": " + fmt_double(s.traffic.pareto_alpha) +
         ",\n";
  out += "    \"mean_period\": " + fmt_double(s.traffic.mean_period) + "\n";
  out += "  }\n";
  out += "}\n";
  return out;
}

}  // namespace edgedrift::data
