#include "edgedrift/data/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace edgedrift::data {

std::optional<Dataset> load_csv(const std::string& path,
                                const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "load_csv: cannot open %s\n", path.c_str());
    return std::nullopt;
  }

  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::string line;
  std::size_t line_no = 0;
  bool skipped_header = !options.has_header;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    std::vector<double> fields;
    std::stringstream ss(line);
    std::string cell;
    bool parse_error = false;
    while (std::getline(ss, cell, options.delimiter)) {
      try {
        fields.push_back(std::stod(cell));
      } catch (...) {
        parse_error = true;
        break;
      }
    }
    if (parse_error || fields.empty()) {
      std::fprintf(stderr, "load_csv: parse error at %s:%zu\n", path.c_str(),
                   line_no);
      return std::nullopt;
    }

    int label = 0;
    if (options.label_column != -1) {
      const long long raw = options.label_column >= 0
                                ? options.label_column
                                : static_cast<long long>(fields.size()) +
                                      options.label_column + 1;
      if (raw < 0 || raw >= static_cast<long long>(fields.size())) {
        std::fprintf(stderr, "load_csv: label column out of range at %s:%zu\n",
                     path.c_str(), line_no);
        return std::nullopt;
      }
      label = static_cast<int>(fields[static_cast<std::size_t>(raw)]);
      fields.erase(fields.begin() + static_cast<std::ptrdiff_t>(raw));
    }
    if (!rows.empty() && fields.size() != rows.front().size()) {
      std::fprintf(stderr, "load_csv: ragged row at %s:%zu\n", path.c_str(),
                   line_no);
      return std::nullopt;
    }
    rows.push_back(std::move(fields));
    labels.push_back(label);
  }

  Dataset out;
  if (rows.empty()) return out;
  out.x.resize_zero(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out.x.set_row(r, rows[r]);
  }
  out.labels = std::move(labels);
  return out;
}

bool save_csv(const std::string& path, const Dataset& dataset,
              char delimiter) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "save_csv: cannot open %s\n", path.c_str());
    return false;
  }
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    const auto row = dataset.x.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << delimiter;
    }
    out << dataset.labels[r] << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace edgedrift::data
