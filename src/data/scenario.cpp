#include "edgedrift/data/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::data {
namespace {

/// Mixing probability of a gradual edge at relative position t in [0, 1].
double mix_probability(MixCurve curve, double t) {
  switch (curve) {
    case MixCurve::kLinear:
      return t;
    case MixCurve::kSigmoid:
      return 1.0 / (1.0 + std::exp(-12.0 * (t - 0.5)));
  }
  return t;
}

/// Per-dimension mean shift achieving a per-class Hellinger distance of
/// `magnitude` between two equal-stddev diagonal Gaussians:
///   H^2 = 1 - exp(-||dmu||^2 / (8 sigma^2))
/// inverted for ||dmu|| and spread evenly across `dims` dimensions.
double calibrated_shift_per_dim(double magnitude, double stddev,
                                std::size_t dims) {
  if (magnitude <= 0.0) return 0.0;
  EDGEDRIFT_ASSERT(magnitude < 1.0,
                   "drift_magnitude_prior must be < 1 (Hellinger target)");
  const double norm_sq =
      -8.0 * stddev * stddev * std::log(1.0 - magnitude * magnitude);
  return std::sqrt(norm_sq / static_cast<double>(dims));
}

/// One segment of the compiled concept schedule: the sampling distribution
/// plus the conditional-drift label remap applied to its draws.
struct SegmentConcept {
  GaussianConcept gauss;
  double remap = 0.0;  ///< P(label -> (label+1) % L) on each draw.
};

/// Concept index sampled in segment `s` of the schedule.
std::size_t concept_of_segment(const ScenarioSpec& spec, std::size_t s) {
  return spec.shape == DriftShape::kRecurrent ? s % 2 : s;
}

/// Builds the Gaussian of concept `index`: concept 0 is the base layout,
/// each successive concept shifts every class mean by the calibrated
/// vector, alternating direction so a long multi-drift walk stays bounded.
GaussianConcept build_concept(const ScenarioSpec& spec, std::size_t index) {
  EDGEDRIFT_ASSERT(spec.num_features > 0 && spec.num_labels > 0,
                   "scenario needs features and labels");
  const double shift_per_dim =
      spec.drift_priors
          ? calibrated_shift_per_dim(spec.drift_magnitude_prior, spec.stddev,
                                     spec.num_features)
          : 0.0;
  // Net displacement after `index` alternating-direction edges: +1, 0,
  // +1, 0, ... times the calibrated shift.
  double net = 0.0;
  for (std::size_t k = 1; k <= index; ++k) net += (k % 2 == 1) ? 1.0 : -1.0;

  std::vector<GaussianClass> classes(spec.num_labels);
  for (std::size_t c = 0; c < spec.num_labels; ++c) {
    classes[c].mean.assign(spec.num_features, 0.0);
    // Class anchor: separation along dimension c % d, scaled up when
    // several labels share a dimension so clusters stay disjoint.
    const std::size_t anchor = c % spec.num_features;
    classes[c].mean[anchor] =
        spec.class_separation *
        (1.0 + static_cast<double>(c / spec.num_features));
    for (std::size_t j = 0; j < spec.num_features; ++j) {
      classes[c].mean[j] += net * shift_per_dim;
    }
    classes[c].stddev.assign(spec.num_features, spec.stddev);
    classes[c].weight = 1.0;
  }
  return GaussianConcept(std::move(classes));
}

/// Drift-edge schedule: num_drift_points edges spaced evenly across
/// [burn_in, n_instances), each with the spec's transition width clamped
/// to its segment.
struct Edge {
  std::size_t start;
  std::size_t end;
  std::size_t to_segment;
};

std::vector<Edge> build_edges(const ScenarioSpec& spec) {
  EDGEDRIFT_ASSERT(spec.burn_in <= spec.n_instances,
                   "burn_in beyond stream length");
  std::vector<Edge> edges;
  if (spec.num_drift_points == 0) return edges;
  const std::size_t span = spec.n_instances - spec.burn_in;
  EDGEDRIFT_ASSERT(span >= spec.num_drift_points,
                   "not enough samples after burn_in for the drift points");
  const std::size_t gap = span / spec.num_drift_points;
  const std::size_t width =
      spec.shape == DriftShape::kGradual ? spec.drift_width : 0;
  for (std::size_t k = 0; k < spec.num_drift_points; ++k) {
    Edge e;
    e.start = spec.burn_in + k * gap;
    e.end = std::min(e.start + width, spec.n_instances);
    if (k + 1 < spec.num_drift_points) {
      const std::size_t next = spec.burn_in + (k + 1) * gap;
      e.end = std::min(e.end, next);
    }
    e.to_segment = k + 1;
    edges.push_back(e);
  }
  return edges;
}

/// Histogram Hellinger distance between two equal-length windows of one
/// feature, binned over the reference window's range.
double feature_hellinger(std::span<const double> ref,
                         std::span<const double> cur) {
  constexpr std::size_t kBins = 16;
  double lo = ref[0], hi = ref[0];
  for (const double v : ref) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) hi = lo + 1.0;
  // One overflow bin on each side catches mass that drifted out of the
  // reference range — without them a large shift would look identical to
  // a moderate one.
  double p[kBins + 2] = {0.0};
  double q[kBins + 2] = {0.0};
  const double scale = static_cast<double>(kBins) / (hi - lo);
  auto bin_of = [&](double v) -> std::size_t {
    if (v < lo) return 0;
    if (v >= hi) return kBins + 1;
    return 1 + static_cast<std::size_t>((v - lo) * scale);
  };
  for (const double v : ref) p[bin_of(v)] += 1.0;
  for (const double v : cur) q[bin_of(v)] += 1.0;
  double bc = 0.0;
  for (std::size_t b = 0; b < kBins + 2; ++b) {
    bc += std::sqrt(p[b] / static_cast<double>(ref.size()) * q[b] /
                    static_cast<double>(cur.size()));
  }
  return std::sqrt(std::max(0.0, 1.0 - bc));
}

/// Empirical 1-D Wasserstein-1: mean absolute difference of the sorted
/// samples (equal window sizes).
double feature_wasserstein(std::vector<double>& ref_sorted,
                           std::vector<double>& cur_scratch,
                           std::span<const double> cur) {
  cur_scratch.assign(cur.begin(), cur.end());
  std::sort(cur_scratch.begin(), cur_scratch.end());
  double acc = 0.0;
  for (std::size_t i = 0; i < ref_sorted.size(); ++i) {
    acc += std::abs(ref_sorted[i] - cur_scratch[i]);
  }
  return acc / static_cast<double>(ref_sorted.size());
}

DivergenceTrace build_divergence(const Dataset& stream, std::size_t window) {
  DivergenceTrace trace;
  trace.window = window;
  if (window == 0 || stream.size() < 2 * window) return trace;
  const std::size_t d = stream.dim();
  const std::size_t windows = stream.size() / window;

  // Per-feature sorted reference window (rows [0, window)).
  std::vector<std::vector<double>> ref_sorted(d);
  std::vector<std::vector<double>> ref_raw(d);
  for (std::size_t j = 0; j < d; ++j) {
    ref_sorted[j].resize(window);
    for (std::size_t i = 0; i < window; ++i) ref_sorted[j][i] = stream.x(i, j);
    ref_raw[j] = ref_sorted[j];
    std::sort(ref_sorted[j].begin(), ref_sorted[j].end());
  }

  trace.wasserstein.resize_zero(windows, d);
  std::vector<double> cur(window);
  std::vector<double> scratch;
  for (std::size_t w = 0; w < windows; ++w) {
    const std::size_t begin = w * window;
    double h_acc = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t i = 0; i < window; ++i) {
        cur[i] = stream.x(begin + i, j);
      }
      h_acc += feature_hellinger(ref_raw[j], cur);
      trace.wasserstein(w, j) =
          feature_wasserstein(ref_sorted[j], scratch, cur);
    }
    trace.index.push_back(begin + window);
    trace.hellinger.push_back(h_acc / static_cast<double>(d));
    double w_acc = 0.0;
    for (std::size_t j = 0; j < d; ++j) w_acc += trace.wasserstein(w, j);
    trace.wasserstein_mean.push_back(w_acc / static_cast<double>(d));
  }
  return trace;
}

}  // namespace

GaussianConcept scenario_concept(const ScenarioSpec& spec, std::size_t index) {
  return build_concept(spec, concept_of_segment(spec, index));
}

double gaussian_hellinger(const GaussianConcept& a, const GaussianConcept& b) {
  EDGEDRIFT_ASSERT(a.num_labels() == b.num_labels() && a.dim() == b.dim(),
                   "hellinger shape mismatch");
  // Mixture Hellinger under the disjoint-components approximation (how
  // scenario concepts are laid out): weight-averaged per-class squared
  // Hellinger, with the per-class term exact for diagonal Gaussians.
  double total_weight = 0.0;
  double h_sq = 0.0;
  for (std::size_t c = 0; c < a.num_labels(); ++c) {
    const GaussianClass& ca = a.cls(c);
    const GaussianClass& cb = b.cls(c);
    double log_bc = 0.0;
    for (std::size_t j = 0; j < a.dim(); ++j) {
      const double va = ca.stddev[j] * ca.stddev[j];
      const double vb = cb.stddev[j] * cb.stddev[j];
      const double dm = ca.mean[j] - cb.mean[j];
      log_bc += 0.5 * std::log(2.0 * ca.stddev[j] * cb.stddev[j] / (va + vb));
      log_bc -= dm * dm / (4.0 * (va + vb));
    }
    h_sq += ca.weight * (1.0 - std::exp(log_bc));
    total_weight += ca.weight;
  }
  return std::sqrt(std::max(0.0, h_sq / total_weight));
}

Dataset render_drift_stream(const ConceptGenerator& initial,
                            std::span<const MixEdge> edges, std::size_t n,
                            util::Rng& rng, bool bernoulli_every_row) {
  Dataset out;
  if (n == 0) return out;
  out.x.resize_zero(n, initial.dim());
  out.labels.resize(n);
  const ConceptGenerator* current = &initial;
  std::size_t edge = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (edge < edges.size() && i >= edges[edge].end) {
      EDGEDRIFT_ASSERT(edges[edge].to->dim() == initial.dim(),
                       "concept dim mismatch");
      current = edges[edge].to;
      ++edge;
    }
    const ConceptGenerator* src = current;
    if (edge < edges.size() && i >= edges[edge].start) {
      // Inside a transition: draw from the target with probability mix(t).
      const MixEdge& e = edges[edge];
      const double t = static_cast<double>(i - e.start) /
                       static_cast<double>(e.end - e.start);
      src = rng.bernoulli(mix_probability(e.curve, t)) ? e.to : current;
    } else if (bernoulli_every_row) {
      // Legacy make_gradual_drift drew one bernoulli on every row, pure
      // segments included (p clamped to 0 before the transition, 1 after).
      // Kept behind this flag so the folded composer reproduces its
      // streams bit-for-bit.
      const double p = edge < edges.size() ? 0.0 : 1.0;
      if (rng.bernoulli(p) && !edges.empty()) src = edges.back().to;
    }
    out.labels[i] = src->sample(rng, out.x.row(i));
  }
  return out;
}

Dataset render_incremental_stream(const GaussianConcept& a,
                                  const GaussianConcept& b, std::size_t n,
                                  std::size_t start, std::size_t end,
                                  util::Rng& rng) {
  EDGEDRIFT_ASSERT(start <= end && end <= n, "invalid transition range");
  Dataset out;
  out.x.resize_zero(n, a.dim());
  out.labels.resize(n);
  // Quantize the interpolation so we do not rebuild the concept per sample.
  constexpr std::size_t kSteps = 64;
  for (std::size_t step = 0; step <= kSteps; ++step) {
    const double t = static_cast<double>(step) / kSteps;
    // Samples whose position maps to this interpolation step.
    const auto lo = static_cast<std::size_t>(
        step == 0 ? 0
                  : start + (end - start) * (step * 2 - 1) / (2 * kSteps));
    const auto hi = static_cast<std::size_t>(
        step == kSteps ? n
                       : start + (end - start) * (step * 2 + 1) / (2 * kSteps));
    if (lo >= hi) continue;
    const GaussianConcept mixed = GaussianConcept::interpolate(a, b, t);
    for (std::size_t i = lo; i < hi && i < n; ++i) {
      out.labels[i] = mixed.sample(rng, out.x.row(i));
    }
  }
  return out;
}

CompiledScenario compile_scenario(const ScenarioSpec& spec) {
  EDGEDRIFT_ASSERT(spec.num_labels >= 2, "scenario needs >= 2 labels");
  EDGEDRIFT_ASSERT(spec.noise_level >= 0.0 && spec.noise_level < 1.0,
                   "noise_level must be in [0, 1)");
  EDGEDRIFT_ASSERT(spec.drift_magnitude_conditional >= 0.0 &&
                       spec.drift_magnitude_conditional <= 1.0,
                   "conditional magnitude must be in [0, 1]");

  CompiledScenario out;
  out.spec = spec;

  const std::vector<Edge> edges = build_edges(spec);
  const std::size_t num_segments = edges.size() + 1;

  // Segment concepts. Conditional drift applies its label remap to every
  // post-drift segment; a recurrent return to segment-concept 0 restores
  // the original conditional as well.
  std::vector<SegmentConcept> segments;
  segments.reserve(num_segments);
  for (std::size_t s = 0; s < num_segments; ++s) {
    const std::size_t cidx = concept_of_segment(spec, s);
    SegmentConcept seg{build_concept(spec, cidx), 0.0};
    if (spec.drift_conditional && cidx > 0) {
      seg.remap = spec.drift_magnitude_conditional;
    }
    segments.push_back(std::move(seg));
  }

  // One Rng, fixed draw order: train first, then the stream row by row
  // (per row: optional mix bernoulli, one sample, optional remap
  // bernoulli, optional noise bernoulli + index). This ordering is the
  // bit-identical-regeneration contract the golden transcript pins.
  util::Rng rng(spec.seed);
  out.train = draw(segments.front().gauss, spec.train_size, rng);

  out.stream.x.resize_zero(spec.n_instances, spec.num_features);
  out.stream.labels.resize(spec.n_instances);
  std::size_t edge = 0;
  std::size_t current = 0;  // Active segment.
  for (std::size_t i = 0; i < spec.n_instances; ++i) {
    while (edge < edges.size() && i >= edges[edge].end) {
      current = edges[edge].to_segment;
      ++edge;
    }
    std::size_t src = current;
    if (edge < edges.size() && i >= edges[edge].start) {
      // Inside a gradual transition (an abrupt edge has start == end and
      // is consumed by the while loop above before this test can hold).
      const Edge& e = edges[edge];
      const double t = static_cast<double>(i - e.start) /
                       static_cast<double>(e.end - e.start);
      src = rng.bernoulli(mix_probability(spec.curve, t)) ? e.to_segment
                                                          : current;
    }
    const SegmentConcept& seg = segments[src];
    int label = seg.gauss.sample(rng, out.stream.x.row(i));
    if (seg.remap > 0.0 && rng.bernoulli(seg.remap)) {
      label = static_cast<int>((static_cast<std::size_t>(label) + 1) %
                               spec.num_labels);
    }
    if (spec.noise_level > 0.0 && rng.bernoulli(spec.noise_level)) {
      // Uniform over the other labels.
      const std::size_t shift = 1 + rng.uniform_index(spec.num_labels - 1);
      label = static_cast<int>((static_cast<std::size_t>(label) + shift) %
                               spec.num_labels);
    }
    out.stream.labels[i] = label;
  }

  // Ground truth. An abrupt edge lands exactly at `start`; a gradual
  // edge's pure post-concept begins at `end`.
  for (const Edge& e : edges) {
    DriftAnnotation a;
    a.start = e.start;
    a.end = e.end;
    a.shape = spec.shape;
    a.from_concept = concept_of_segment(spec, e.to_segment - 1);
    a.to_concept = concept_of_segment(spec, e.to_segment);
    a.prior = spec.drift_priors && spec.drift_magnitude_prior > 0.0;
    a.conditional =
        spec.drift_conditional && spec.drift_magnitude_conditional > 0.0;
    out.annotations.push_back(a);
  }

  if (!edges.empty() && spec.drift_priors) {
    out.calibrated_hellinger = gaussian_hellinger(
        segments[0].gauss, build_concept(spec, 1));
  }

  out.divergence = build_divergence(out.stream, spec.divergence_window);
  return out;
}

namespace {

constexpr std::string_view kPresetNames[] = {
    "abrupt",      "gradual",     "recurrent",
    "boundary",    "label-noise", "bursty-traffic",
};

}  // namespace

std::span<const std::string_view> scenario_preset_names() {
  return kPresetNames;
}

std::optional<ScenarioSpec> scenario_preset(std::string_view name) {
  ScenarioSpec s;
  s.name = std::string(name);
  if (name == "abrupt") {
    // One clean calibrated jump — the baseline every detector must catch.
    s.shape = DriftShape::kAbrupt;
    s.drift_magnitude_prior = 0.9;
    s.seed = 101;
  } else if (name == "gradual") {
    // Sigmoid-mixed transition: both concepts coexist for 600 samples.
    s.shape = DriftShape::kGradual;
    s.curve = MixCurve::kSigmoid;
    s.drift_width = 600;
    s.n_instances = 5000;
    s.drift_magnitude_prior = 0.92;
    s.seed = 102;
  } else if (name == "recurrent") {
    // Four alternations back to the trained concept — the scenario where
    // a reconstruction that forgets concept 0 pays repeatedly.
    s.shape = DriftShape::kRecurrent;
    s.num_drift_points = 4;
    s.n_instances = 6000;
    s.seed = 103;
  } else if (name == "boundary") {
    // Pure conditional (P(Y|X)) drift: the feature distribution never
    // moves, 80% of post-drift labels are remapped. Invisible to purely
    // unsupervised detectors; the supervised error-rate family must catch
    // it — exactly the contrast the matrix is meant to expose.
    s.drift_priors = false;
    s.drift_conditional = true;
    s.drift_magnitude_prior = 0.0;
    s.drift_magnitude_conditional = 0.8;
    s.seed = 104;
  } else if (name == "label-noise") {
    // The abrupt jump with 10% label noise on the stream: detectors that
    // lean on the supervised mistake signal must hold their false-alarm
    // rate while the noise floor is up.
    s.drift_magnitude_prior = 0.8;
    s.noise_level = 0.1;
    s.seed = 105;
  } else if (name == "bursty-traffic") {
    // The abrupt jump replayed through the serving layer under
    // heavy-tailed on/off arrivals across 8 managed streams with churn —
    // the preset that exercises PipelineManager::submit_batch instead of
    // the single-pipeline path.
    s.n_instances = 6000;
    s.traffic.pattern = ArrivalPattern::kBursty;
    s.traffic.streams = 8;
    s.traffic.churn = 0.02;
    s.traffic.burst_batch = 32.0;
    s.traffic.idle_batch = 1.0;
    s.traffic.mean_period = 64.0;
    s.seed = 106;
  } else {
    return std::nullopt;
  }
  return s;
}

}  // namespace edgedrift::data
