#include "edgedrift/data/gaussian_concept.hpp"

#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::data {

GaussianConcept::GaussianConcept(std::vector<GaussianClass> classes)
    : classes_(std::move(classes)) {
  EDGEDRIFT_ASSERT(!classes_.empty(), "need at least one class");
  const std::size_t d = classes_.front().mean.size();
  EDGEDRIFT_ASSERT(d > 0, "dimension must be positive");
  double total = 0.0;
  for (auto& c : classes_) {
    EDGEDRIFT_ASSERT(c.mean.size() == d, "class dimension mismatch");
    EDGEDRIFT_ASSERT(c.stddev.size() == d || c.stddev.size() == 1,
                     "stddev must be per-dimension or scalar");
    EDGEDRIFT_ASSERT(c.weight > 0.0, "class weight must be positive");
    if (c.stddev.size() == 1) c.stddev.assign(d, c.stddev.front());
    total += c.weight;
    cumulative_weights_.push_back(total);
  }
}

int GaussianConcept::sample(util::Rng& rng, std::span<double> x) const {
  EDGEDRIFT_ASSERT(x.size() == dim(), "sample buffer size mismatch");
  const double pick = rng.uniform() * cumulative_weights_.back();
  std::size_t label = 0;
  while (label + 1 < classes_.size() &&
         pick > cumulative_weights_[label]) {
    ++label;
  }
  const GaussianClass& c = classes_[label];
  for (std::size_t j = 0; j < x.size(); ++j) {
    x[j] = rng.gaussian(c.mean[j], c.stddev[j]);
  }
  return static_cast<int>(label);
}

GaussianConcept GaussianConcept::interpolate(const GaussianConcept& a,
                                             const GaussianConcept& b,
                                             double t) {
  EDGEDRIFT_ASSERT(a.num_labels() == b.num_labels() && a.dim() == b.dim(),
                   "interpolate shape mismatch");
  EDGEDRIFT_ASSERT(t >= 0.0 && t <= 1.0, "t must be in [0, 1]");
  std::vector<GaussianClass> classes;
  classes.reserve(a.num_labels());
  for (std::size_t c = 0; c < a.num_labels(); ++c) {
    GaussianClass mixed;
    const auto& ca = a.classes_[c];
    const auto& cb = b.classes_[c];
    mixed.mean.resize(a.dim());
    mixed.stddev.resize(a.dim());
    for (std::size_t j = 0; j < a.dim(); ++j) {
      mixed.mean[j] = (1.0 - t) * ca.mean[j] + t * cb.mean[j];
      mixed.stddev[j] = (1.0 - t) * ca.stddev[j] + t * cb.stddev[j];
    }
    mixed.weight = (1.0 - t) * ca.weight + t * cb.weight;
    classes.push_back(std::move(mixed));
  }
  return GaussianConcept(std::move(classes));
}

}  // namespace edgedrift::data
