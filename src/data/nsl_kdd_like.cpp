#include "edgedrift/data/nsl_kdd_like.hpp"

#include <cmath>

#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::data {
namespace {

constexpr std::size_t kDim = NslKddLike::kDim;

GaussianConcept build_pre(const NslKddLikeConfig& config) {
  util::Rng rng(config.seed);
  // Normal traffic: anchored feature profile in [0, 1].
  GaussianClass normal;
  normal.mean.resize(kDim);
  for (auto& v : normal.mean) v = rng.uniform(0.1, 0.9);
  normal.stddev = {config.noise};
  normal.weight = 1.0;

  // Attack traffic: displaced along a random unit direction by
  // class_separation.
  GaussianClass attack;
  attack.mean.resize(kDim);
  std::vector<double> direction(kDim);
  for (auto& v : direction) v = rng.gaussian();
  const double norm = linalg::norm2(direction);
  for (std::size_t j = 0; j < kDim; ++j) {
    attack.mean[j] =
        normal.mean[j] + config.class_separation * direction[j] / norm;
  }
  attack.stddev = {config.noise};
  attack.weight = 1.0;

  return GaussianConcept({std::move(normal), std::move(attack)});
}

GaussianConcept build_post(const NslKddLikeConfig& config,
                           const GaussianConcept& pre) {
  // Deterministic drift geometry derived from a separate seed stream.
  util::Rng rng(config.seed ^ 0x5eed5eedULL);
  std::vector<double> off_manifold(kDim);
  for (auto& v : off_manifold) v = rng.gaussian();
  double norm = linalg::norm2(off_manifold);
  for (auto& v : off_manifold) v *= config.manifold_shift / norm;

  const auto& normal_pre = pre.cls(0);
  const auto& attack_pre = pre.cls(1);

  // Old separation direction (unit) and a fresh direction orthogonalized
  // against it; the post separation keeps `attack_direction_overlap` cosine
  // with the old one.
  std::vector<double> old_dir(kDim), fresh(kDim);
  for (std::size_t j = 0; j < kDim; ++j) {
    old_dir[j] = attack_pre.mean[j] - normal_pre.mean[j];
  }
  norm = linalg::norm2(old_dir);
  for (auto& v : old_dir) v /= norm;
  for (auto& v : fresh) v = rng.gaussian();
  const double proj = linalg::dot(fresh, old_dir);
  for (std::size_t j = 0; j < kDim; ++j) fresh[j] -= proj * old_dir[j];
  norm = linalg::norm2(fresh);
  for (auto& v : fresh) v /= norm;

  const double cos_mix = config.attack_direction_overlap;
  const double sin_mix = std::sqrt(std::max(0.0, 1.0 - cos_mix * cos_mix));

  GaussianClass normal;
  normal.mean.resize(kDim);
  GaussianClass attack;
  attack.mean.resize(kDim);
  for (std::size_t j = 0; j < kDim; ++j) {
    // Both classes drift off the trained manifold; the attack class also
    // rotates to a new separation direction (same magnitude, so the post
    // concept stays learnable with the same hyper-parameters).
    normal.mean[j] = normal_pre.mean[j] + off_manifold[j];
    attack.mean[j] = normal.mean[j] +
                     config.class_separation *
                         (cos_mix * old_dir[j] + sin_mix * fresh[j]);
  }
  normal.stddev = {config.post_noise};
  attack.stddev = {config.post_noise};
  normal.weight = 1.0;
  attack.weight = 1.0;
  return GaussianConcept({std::move(normal), std::move(attack)});
}

}  // namespace

NslKddLike::NslKddLike(NslKddLikeConfig config)
    : config_(config),
      pre_(build_pre(config_)),
      post_(build_post(config_, pre_)) {}

Dataset NslKddLike::training(util::Rng& rng) const {
  return draw(pre_, config_.train_size, rng);
}

Dataset NslKddLike::test_stream(util::Rng& rng) const {
  return make_sudden_drift(pre_, post_, config_.test_size,
                           config_.drift_point, rng);
}

}  // namespace edgedrift::data
