#include "edgedrift/data/cooling_fan_like.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::data {
namespace {

// Rotation fundamental of the simulated fan (Hz == bin index + 1).
constexpr std::size_t kFundamental = 50;
// Blade count; blade-pass frequency = kBlades * fundamental.
constexpr std::size_t kBlades = 7;

// Adds a spectral peak centered at `bin` with triangular spread into the
// two neighbouring bins.
void add_peak(std::span<double> spectrum, std::size_t bin, double amplitude) {
  if (bin >= spectrum.size()) return;
  spectrum[bin] += amplitude;
  if (bin > 0) spectrum[bin - 1] += 0.45 * amplitude;
  if (bin + 1 < spectrum.size()) spectrum[bin + 1] += 0.45 * amplitude;
}

}  // namespace

FanSpectrumConcept::FanSpectrumConcept(FanCondition condition,
                                       FanEnvironment environment, int label)
    : condition_(condition), environment_(environment), label_(label) {}

int FanSpectrumConcept::sample(util::Rng& rng, std::span<double> x) const {
  EDGEDRIFT_ASSERT(x.size() == kBins, "spectrum buffer size mismatch");

  // Environment-dependent broadband noise floor.
  const double floor_sigma =
      environment_ == FanEnvironment::kSilent ? 0.02 : 0.08;
  for (auto& v : x) v = std::abs(rng.gaussian(0.0, floor_sigma));

  if (environment_ == FanEnvironment::kNoisy) {
    // Ventilation hum: low-frequency peaks around 25-35 Hz.
    for (std::size_t hum = 24; hum <= 34; hum += 5) {
      add_peak(x, hum, 0.25 * rng.uniform(0.8, 1.2));
    }
  }

  // Per-sample multiplicative jitter of the whole harmonic series (speed
  // wobble of the physical fan).
  const double jitter = rng.uniform(0.92, 1.08);

  // Harmonic series of the rotation frequency.
  const double unbalance_gain =
      condition_ == FanCondition::kChipped ? 2.2 : 1.0;
  for (std::size_t k = 1; k * kFundamental <= kBins; ++k) {
    double amplitude = jitter / static_cast<double>(k);
    if (k == 1) amplitude *= unbalance_gain;  // Chipped blade: 1x unbalance.
    add_peak(x, k * kFundamental - 1, amplitude * rng.uniform(0.9, 1.1));
  }

  // Blade-pass frequency and damage signatures.
  const std::size_t bpf = kBlades * kFundamental;  // 350 Hz.
  switch (condition_) {
    case FanCondition::kNormal:
      add_peak(x, bpf - 1, 0.5 * jitter);
      break;
    case FanCondition::kHoles:
      // Holes raise blade-pass energy, grow sidebands at bpf +- f0, and add
      // turbulence broadband from air rushing through the perforations.
      add_peak(x, bpf - 1, 1.8 * jitter);
      add_peak(x, bpf - 1 - kFundamental, 0.8 * jitter);
      add_peak(x, bpf - 1 + kFundamental, 0.8 * jitter);
      for (auto& v : x) v += std::abs(rng.gaussian(0.0, 0.02));
      break;
    case FanCondition::kChipped:
      // Chipped edge: sub-harmonic at f0/2 plus raised broadband energy.
      add_peak(x, kFundamental / 2 - 1, 0.9 * jitter);
      add_peak(x, bpf - 1, 0.7 * jitter);
      for (auto& v : x) v += std::abs(rng.gaussian(0.0, 0.03));
      break;
  }
  return label_;
}

CoolingFanLike::CoolingFanLike(CoolingFanLikeConfig config)
    : config_(config),
      normal_(FanCondition::kNormal, config.environment),
      holes_(FanCondition::kHoles, config.environment),
      chipped_(FanCondition::kChipped, config.environment) {
  EDGEDRIFT_ASSERT(config_.drift_point <= config_.stream_size,
                   "drift point beyond stream");
  EDGEDRIFT_ASSERT(config_.reoccur_end >= config_.drift_point,
                   "reoccurrence must end after the drift point");
}

Dataset CoolingFanLike::training(util::Rng& rng) const {
  return draw(normal_, config_.train_size, rng);
}

Dataset CoolingFanLike::sudden_stream(util::Rng& rng) const {
  return make_sudden_drift(normal_, holes_, config_.stream_size,
                           config_.drift_point, rng);
}

Dataset CoolingFanLike::gradual_stream(util::Rng& rng) const {
  return make_gradual_drift(normal_, chipped_, config_.stream_size,
                            config_.drift_point, config_.gradual_end, rng);
}

Dataset CoolingFanLike::reoccurring_stream(util::Rng& rng) const {
  return make_reoccurring_drift(normal_, chipped_, config_.stream_size,
                                config_.drift_point, config_.reoccur_end,
                                rng);
}

}  // namespace edgedrift::data
