#include "edgedrift/eval/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/data/traffic.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::eval {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The cell's pipeline configuration: the template with the scenario's
/// geometry and the swept detector kind stamped in.
core::PipelineConfig cell_config(const data::CompiledScenario& scenario,
                                 drift::DetectorKind kind,
                                 const SweepCellConfig& config) {
  core::PipelineConfig cfg = config.pipeline;
  cfg.input_dim = scenario.train.dim();
  cfg.num_labels = scenario.spec.num_labels;
  cfg.detector.kind = kind;
  return cfg;
}

/// Single-pipeline replay: the stream row by row through process().
void replay_pipeline(const data::CompiledScenario& scenario,
                     const core::PipelineConfig& cfg, SweepCell& cell,
                     std::vector<std::uint8_t>& correct) {
  core::Pipeline pipeline(cfg);
  pipeline.fit(scenario.train.x, scenario.train.labels);
  const data::Dataset& stream = scenario.stream;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const int label = stream.labels[i];
    const core::PipelineStep step = pipeline.process(stream.x.row(i), label);
    correct[i] =
        static_cast<int>(step.prediction.label) == label ? 1 : 0;
    if (step.drift_detected) cell.detections.push_back(i);
  }
  cell.runtime_seconds = seconds_since(t0);
}

/// Serving-layer replay: the TrafficShaper carves the stream into shaped
/// submit_batch ticks spread over the spec's managed streams; every
/// submitted row remembers its global index so drained steps map back
/// onto the scenario's ground-truth timeline.
void replay_manager(const data::CompiledScenario& scenario,
                    const core::PipelineConfig& cfg,
                    const SweepCellConfig& config, SweepCell& cell,
                    std::vector<std::uint8_t>& correct) {
  const data::TrafficSpec& traffic = scenario.spec.traffic;
  core::ManagerOptions opts;
  opts.shards = config.manager_shards;
  core::PipelineManager manager(cfg, traffic.streams, opts);
  for (std::size_t s = 0; s < traffic.streams; ++s) {
    manager.fit(s, scenario.train.x, scenario.train.labels);
  }

  const data::Dataset& stream = scenario.stream;
  const std::size_t n = stream.size();
  const std::size_t d = stream.dim();
  // Shaper seed decorrelated from the scenario seed: arrival shape must
  // not mirror the sample noise.
  data::TrafficShaper shaper(traffic, scenario.spec.seed * 2654435761u + 1);
  std::vector<std::vector<std::size_t>> sent(traffic.streams);
  linalg::Matrix batch;

  const auto t0 = Clock::now();
  std::size_t pos = 0;
  while (pos < n) {
    const std::size_t rows = std::min(shaper.next_batch(), n - pos);
    const std::size_t id = shaper.next_stream();
    batch.resize_zero(rows, d);
    for (std::size_t r = 0; r < rows; ++r) {
      const auto src = stream.x.row(pos + r);
      std::copy(src.begin(), src.end(), batch.row(r).begin());
    }
    const std::span<const int> labels{stream.labels.data() + pos, rows};
    core::SubmitStatus status = core::SubmitStatus::kOk;
    const std::size_t accepted = manager.submit_batch(id, batch, labels,
                                                      &status);
    EDGEDRIFT_ASSERT(accepted == rows && status == core::SubmitStatus::kOk,
                     "sweep replay submit was refused");
    for (std::size_t r = 0; r < rows; ++r) sent[id].push_back(pos + r);
    pos += rows;
  }
  manager.drain();
  cell.runtime_seconds = seconds_since(t0);

  for (std::size_t s = 0; s < traffic.streams; ++s) {
    const std::vector<core::PipelineStep> steps = manager.take_steps(s);
    EDGEDRIFT_ASSERT(steps.size() == sent[s].size(),
                     "drained steps do not match submitted rows");
    for (std::size_t k = 0; k < steps.size(); ++k) {
      const std::size_t gi = sent[s][k];
      correct[gi] = static_cast<int>(steps[k].prediction.label) ==
                            stream.labels[gi]
                        ? 1
                        : 0;
      if (steps[k].drift_detected) cell.detections.push_back(gi);
    }
  }
  std::sort(cell.detections.begin(), cell.detections.end());
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

core::PipelineConfig default_sweep_pipeline() {
  core::PipelineConfig cfg;
  // Mirror the paper experiment configs (eval/paper_configs.cpp): fresh
  // per-window recent centroids and a tight anomaly gate keep pre-drift
  // windows rare without dulling the post-drift response.
  cfg.detector_initial_count = 0;
  cfg.theta_error_z = 4.0;
  return cfg;
}

SweepCell run_sweep_cell(const data::CompiledScenario& scenario,
                         drift::DetectorKind kind,
                         const SweepCellConfig& config) {
  SweepCell cell;
  cell.scenario = scenario.spec.name;
  cell.kind = kind;
  cell.streams = scenario.spec.traffic.streams;
  cell.via_manager = cell.streams > 1;
  cell.calibrated_hellinger = scenario.calibrated_hellinger;

  const core::PipelineConfig cfg = cell_config(scenario, kind, config);
  std::vector<std::uint8_t> correct(scenario.stream.size(), 0);
  if (cell.via_manager) {
    replay_manager(scenario, cfg, config, cell, correct);
  } else {
    replay_pipeline(scenario, cfg, cell, correct);
  }
  if (cell.runtime_seconds > 0.0) {
    cell.throughput_rows_per_s =
        static_cast<double>(scenario.stream.size()) / cell.runtime_seconds;
  }
  cell.metrics = score_scenario(cell.detections, scenario.annotations,
                                scenario.stream.size(), correct,
                                config.metrics);
  return cell;
}

SweepResult run_sweep(std::span<const data::ScenarioSpec> specs,
                      std::span<const drift::DetectorKind> kinds,
                      const SweepCellConfig& config) {
  SweepResult out;
  for (const data::ScenarioSpec& spec : specs) {
    const data::CompiledScenario compiled = data::compile_scenario(spec);
    for (const drift::DetectorKind kind : kinds) {
      out.cells.push_back(run_sweep_cell(compiled, kind, config));
    }
  }
  return out;
}

std::string sweep_json(const SweepResult& result) {
  std::string out = "{\n  \"schema\": \"edgedrift-eval-v1\",\n  \"cells\": [";
  bool first = true;
  for (const SweepCell& c : result.cells) {
    const ScenarioMetrics& m = c.metrics;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\n";
    out += "      \"scenario\": \"" + c.scenario + "\",\n";
    out += "      \"detector\": \"" +
           std::string(drift::kind_name(c.kind)) + "\",\n";
    out += std::string("      \"via_manager\": ") +
           (c.via_manager ? "true" : "false") + ",\n";
    out += "      \"streams\": " + std::to_string(c.streams) + ",\n";
    out += "      \"calibrated_hellinger\": " +
           fmt_double(c.calibrated_hellinger) + ",\n";
    out += "      \"stream_length\": " +
           std::to_string(m.stream_length) + ",\n";
    out += "      \"drift_points\": " + std::to_string(m.drift_points) +
           ",\n";
    out += "      \"detected\": " + std::to_string(m.detected) + ",\n";
    out += "      \"missed\": " + std::to_string(m.missed) + ",\n";
    out += "      \"delays\": [";
    for (std::size_t k = 0; k < m.delays.size(); ++k) {
      if (k > 0) out += ", ";
      out += std::to_string(m.delays[k]);
    }
    out += "],\n";
    out += "      \"mean_delay\": " + fmt_double(m.mean_delay) + ",\n";
    out += "      \"extra_detections\": " +
           std::to_string(m.extra_detections) + ",\n";
    out += "      \"false_alarms\": " + std::to_string(m.false_alarms) +
           ",\n";
    out += "      \"false_alarm_rate_per_1k\": " +
           fmt_double(m.false_alarm_rate_per_1k) + ",\n";
    out += "      \"recovery_accuracy\": " +
           fmt_double(m.recovery_accuracy) + ",\n";
    out += "      \"overall_accuracy\": " +
           fmt_double(m.overall_accuracy) + ",\n";
    out += "      \"throughput_rows_per_s\": " +
           fmt_double(c.throughput_rows_per_s) + "\n";
    out += "    }";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace edgedrift::eval
