#include "edgedrift/eval/paper_configs.hpp"

#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"

namespace edgedrift::eval {

ExperimentConfig nsl_kdd_paper_config(std::size_t window) {
  ExperimentConfig config;
  config.pipeline.num_labels = 2;
  config.pipeline.input_dim = data::NslKddLike::kDim;
  config.pipeline.hidden_dim = 22;
  config.pipeline.window_size = window;
  config.pipeline.detector_initial_count = 0;
  // A tight anomaly gate keeps pre-drift windows rare, so the recent
  // centroids stay responsive when the drift finally arrives.
  config.pipeline.theta_error_z = 4.0;
  config.pipeline.reconstruction.n_search = 20;
  config.pipeline.reconstruction.n_update = 200;
  config.pipeline.reconstruction.n_total = 1000;
  config.quanttree.num_bins = 32;
  config.quanttree.batch_size = 480;
  // ~47 batches in the stream: alpha = 0.001 keeps the expected number of
  // false alarms at ~0.05 while the drifted batch still exceeds the
  // threshold by orders of magnitude.
  config.quanttree.alpha = 0.001;
  config.quanttree.monte_carlo_trials = 8000;
  config.spll.batch_size = 480;
  config.spll.num_clusters = 2;
  config.onlad_forgetting = 0.97;
  return config;
}

ExperimentConfig cooling_fan_paper_config(std::size_t window) {
  ExperimentConfig config;
  config.pipeline.num_labels = 1;
  config.pipeline.input_dim = data::CoolingFanLike::kDim;
  config.pipeline.hidden_dim = 22;
  config.pipeline.window_size = window;
  config.pipeline.detector_initial_count = 0;
  config.pipeline.reconstruction.n_search = 5;
  config.pipeline.reconstruction.n_update = 30;
  config.pipeline.reconstruction.n_total = 120;
  config.quanttree.num_bins = 16;
  config.quanttree.batch_size = 235;
  config.spll.batch_size = 235;
  config.spll.num_clusters = 1;
  config.onlad_forgetting = 0.99;
  return config;
}

}  // namespace edgedrift::eval
