#include "edgedrift/eval/memory_audit.hpp"

#include "edgedrift/util/table.hpp"

namespace edgedrift::eval {

void MemoryAudit::add(std::string component, std::size_t bytes) {
  entries_.push_back(Entry{std::move(component), bytes});
}

std::size_t MemoryAudit::total_bytes() const {
  std::size_t total = 0;
  for (const auto& e : entries_) total += e.bytes;
  return total;
}

std::string MemoryAudit::table() const {
  util::Table table({"Component", "Memory"});
  for (const auto& e : entries_) {
    table.add_row({e.component, util::fmt_kb(e.bytes)});
  }
  table.add_row({"TOTAL", util::fmt_kb(total_bytes())});
  return table.str();
}

}  // namespace edgedrift::eval
