#include "edgedrift/eval/metrics.hpp"

#include <algorithm>
#include <numeric>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::eval {

double StreamingAccuracy::overall() const {
  return range(0, correct_.size());
}

double StreamingAccuracy::range(std::size_t begin, std::size_t end) const {
  EDGEDRIFT_ASSERT(begin <= end && end <= correct_.size(),
                   "range out of bounds");
  if (begin == end) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (correct_[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(end - begin);
}

std::vector<double> StreamingAccuracy::windowed(std::size_t window) const {
  EDGEDRIFT_ASSERT(window > 0, "window must be positive");
  std::vector<double> series;
  for (std::size_t begin = 0; begin + window <= correct_.size();
       begin += window) {
    series.push_back(range(begin, begin + window));
  }
  return series;
}

std::optional<std::size_t> DetectionLog::delay(std::size_t drift_at) const {
  for (const std::size_t d : detections_) {
    if (d >= drift_at) return d - drift_at;
  }
  return std::nullopt;
}

std::size_t DetectionLog::false_alarms(std::size_t drift_at) const {
  return static_cast<std::size_t>(
      std::count_if(detections_.begin(), detections_.end(),
                    [drift_at](std::size_t d) { return d < drift_at; }));
}

PrequentialAccuracy::PrequentialAccuracy(double fading_factor)
    : fading_factor_(fading_factor) {
  EDGEDRIFT_ASSERT(fading_factor > 0.0 && fading_factor <= 1.0,
                   "fading factor must be in (0, 1]");
}

double PrequentialAccuracy::record(bool correct) {
  weighted_correct_ =
      (correct ? 1.0 : 0.0) + fading_factor_ * weighted_correct_;
  weighted_count_ = 1.0 + fading_factor_ * weighted_count_;
  ++samples_;
  return value();
}

double PrequentialAccuracy::value() const {
  return weighted_count_ > 0.0 ? weighted_correct_ / weighted_count_ : 0.0;
}

void PrequentialAccuracy::reset() {
  weighted_correct_ = 0.0;
  weighted_count_ = 0.0;
  samples_ = 0;
}

double best_mapped_accuracy(const std::vector<int>& predicted,
                            const std::vector<int>& truth,
                            std::size_t num_labels) {
  EDGEDRIFT_ASSERT(predicted.size() == truth.size(), "length mismatch");
  EDGEDRIFT_ASSERT(num_labels > 0 && num_labels <= 8,
                   "exhaustive mapping supports up to 8 labels");
  if (predicted.empty()) return 0.0;

  // Confusion counts.
  std::vector<std::size_t> confusion(num_labels * num_labels, 0);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const auto p = static_cast<std::size_t>(predicted[i]);
    const auto t = static_cast<std::size_t>(truth[i]);
    EDGEDRIFT_ASSERT(p < num_labels && t < num_labels, "label out of range");
    ++confusion[p * num_labels + t];
  }

  // Exhaustive search over bijections (num_labels <= 8 keeps this tiny).
  std::vector<std::size_t> perm(num_labels);
  std::iota(perm.begin(), perm.end(), 0);
  std::size_t best = 0;
  do {
    std::size_t hits = 0;
    for (std::size_t p = 0; p < num_labels; ++p) {
      hits += confusion[p * num_labels + perm[p]];
    }
    best = std::max(best, hits);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return static_cast<double>(best) / static_cast<double>(predicted.size());
}

}  // namespace edgedrift::eval
