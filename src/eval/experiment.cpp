#include "edgedrift/eval/experiment.hpp"

#include <limits>
#include <vector>

#include "edgedrift/cluster/matching.hpp"
#include "edgedrift/drift/multi_window.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/stopwatch.hpp"

namespace edgedrift::eval {
namespace {

/// Running per-predicted-label centroids, used to seed the reconstruction of
/// the batch-detector combos exactly the way the proposed pipeline seeds its
/// own (from the recent test centroids).
struct RecentCentroids {
  linalg::Matrix centroids;
  std::vector<std::size_t> counts;

  RecentCentroids(std::size_t labels, std::size_t dim)
      : centroids(labels, dim), counts(labels, 0) {}

  void seed(const linalg::Matrix& initial) {
    centroids = initial;
    std::fill(counts.begin(), counts.end(), 1);
  }

  void update(std::size_t label, std::span<const double> x) {
    linalg::running_mean_update(centroids.row(label), x, counts[label]);
    ++counts[label];
  }
};

/// Per-label mean of a labeled dataset.
linalg::Matrix label_means(const data::Dataset& dataset,
                           std::size_t num_labels) {
  linalg::Matrix means(num_labels, dataset.dim());
  std::vector<std::size_t> counts(num_labels, 0);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto label = static_cast<std::size_t>(dataset.labels[i]);
    linalg::axpy(1.0, dataset.x.row(i), means.row(label));
    ++counts[label];
  }
  for (std::size_t c = 0; c < num_labels; ++c) {
    if (counts[c] == 0) continue;
    const double inv = 1.0 / static_cast<double>(counts[c]);
    for (auto& v : means.row(c)) v *= inv;
  }
  return means;
}

/// Optimal alignment of rebuilt coordinates to reference centroids;
/// permutes both the coordinate store and the model instances.
void align_after_reconstruction(drift::Reconstructor& recon,
                                model::MultiInstanceModel& model,
                                const linalg::Matrix& reference) {
  auto& coords = recon.coords_mutable();
  const std::size_t c = coords.num_clusters();
  const std::vector<std::size_t> perm =
      cluster::match_rows(reference, coords.centroids());
  bool identity = true;
  for (std::size_t i = 0; i < c; ++i) identity &= perm[i] == i;
  if (!identity) {
    coords.apply_permutation(perm);
    model.apply_permutation(perm);
  }
}

ExperimentResult run_proposed(const data::Dataset& train,
                              const data::Dataset& test,
                              const ExperimentConfig& config) {
  ExperimentResult result;
  result.method = Method::kProposed;

  core::PipelineConfig pipeline_config = config.pipeline;
  pipeline_config.input_dim = train.dim();
  core::Pipeline pipeline(pipeline_config);
  pipeline.fit(train.x, train.labels);

  util::Stopwatch clock;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const core::PipelineStep step = pipeline.process(test.x.row(i));
    result.accuracy.record(static_cast<int>(step.prediction.label) ==
                           test.labels[i]);
    if (step.drift_detected) result.detections.record(i);
  }
  result.runtime_seconds = clock.elapsed_seconds();
  result.detector_memory_bytes = pipeline.detector().memory_bytes() +
                                 pipeline.reconstructor().memory_bytes();
  result.model_memory_bytes = pipeline.model().memory_bytes();
  return result;
}

ExperimentResult run_model_only(Method method, const data::Dataset& train,
                                const data::Dataset& test,
                                const ExperimentConfig& config) {
  ExperimentResult result;
  result.method = method;
  const bool passive = method == Method::kOnlad;

  util::Rng rng(config.seed);
  auto projection = oselm::make_projection(
      train.dim(), config.pipeline.hidden_dim, config.pipeline.activation,
      rng, config.pipeline.weight_scale);
  model::MultiInstanceModel model(
      config.pipeline.num_labels, std::move(projection),
      config.pipeline.reg_lambda,
      passive ? config.onlad_forgetting : 1.0);
  model.init_train(train.x, train.labels);

  util::Stopwatch clock;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const model::Prediction pred =
        passive ? model.train_closest(test.x.row(i))
                : model.predict(test.x.row(i));
    result.accuracy.record(static_cast<int>(pred.label) == test.labels[i]);
  }
  result.runtime_seconds = clock.elapsed_seconds();
  result.detector_memory_bytes = 0;
  result.model_memory_bytes = model.memory_bytes();
  return result;
}

ExperimentResult run_batch_detector(Method method, const data::Dataset& train,
                                    const data::Dataset& test,
                                    const ExperimentConfig& config) {
  ExperimentResult result;
  result.method = method;

  util::Rng rng(config.seed);
  auto projection = oselm::make_projection(
      train.dim(), config.pipeline.hidden_dim, config.pipeline.activation,
      rng, config.pipeline.weight_scale);
  model::MultiInstanceModel model(config.pipeline.num_labels,
                                  std::move(projection),
                                  config.pipeline.reg_lambda);
  model.init_train(train.x, train.labels);

  std::unique_ptr<drift::Detector> detector;
  std::size_t batch_size = 0;
  if (method == Method::kQuantTree) {
    auto qt = std::make_unique<drift::QuantTree>(config.quanttree);
    qt->fit(train.x);
    batch_size = config.quanttree.batch_size;
    detector = std::move(qt);
  } else {
    auto spll = std::make_unique<drift::Spll>(config.spll);
    spll->fit(train.x);
    batch_size = config.spll.batch_size;
    detector = std::move(spll);
  }

  drift::Reconstructor recon(config.pipeline.reconstruction,
                             config.pipeline.num_labels, train.dim());
  linalg::Matrix trained_means =
      label_means(train, config.pipeline.num_labels);
  RecentCentroids recent(config.pipeline.num_labels, train.dim());
  recent.seed(trained_means);

  // After a reconstruction the batch detector's reference is stale; collect
  // a fresh reference window before re-arming detection. The window must be
  // as large as the original training reference — a reference of only one
  // batch makes the histogram/mixture fit so noisy that the detector
  // re-fires on its own calibration error.
  const std::size_t refit_rows = std::max(batch_size, train.size());
  linalg::Matrix refit_buffer(refit_rows, train.dim());
  std::size_t refit_fill = 0;
  bool collecting_refit = false;

  util::Stopwatch clock;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto x = test.x.row(i);
    const model::Prediction pred = model.predict(x);
    result.accuracy.record(static_cast<int>(pred.label) == test.labels[i]);
    recent.update(pred.label, x);

    if (recon.active()) {
      if (!recon.step(x, model)) {
        align_after_reconstruction(recon, model, trained_means);
        // The rebuilt coordinates are the new per-label anchor for any
        // later reconstruction's alignment.
        trained_means = recon.coords().centroids();
        collecting_refit = true;
        refit_fill = 0;
      }
      continue;
    }
    if (collecting_refit) {
      refit_buffer.set_row(refit_fill++, x);
      if (refit_fill == refit_rows) {
        detector->rebuild_reference(refit_buffer);
        collecting_refit = false;
      }
      continue;
    }

    drift::Observation obs;
    obs.x = x;
    obs.predicted_label = static_cast<int>(pred.label);
    obs.anomaly_score = pred.score;
    const drift::Detection detection = detector->observe(obs);
    if (detection.drift) {
      result.detections.record(i);
      recon.begin(model, recent.centroids);
    }
  }
  result.runtime_seconds = clock.elapsed_seconds();
  result.detector_memory_bytes =
      detector->memory_bytes() + recon.memory_bytes() +
      refit_buffer.memory_bytes() + recent.centroids.memory_bytes();
  result.model_memory_bytes = model.memory_bytes();
  return result;
}

ExperimentResult run_multi_window(const data::Dataset& train,
                                  const data::Dataset& test,
                                  const ExperimentConfig& config) {
  ExperimentResult result;
  result.method = Method::kMultiWindow;

  util::Rng rng(config.seed);
  auto projection = oselm::make_projection(
      train.dim(), config.pipeline.hidden_dim, config.pipeline.activation,
      rng, config.pipeline.weight_scale);
  model::MultiInstanceModel model(config.pipeline.num_labels,
                                  std::move(projection),
                                  config.pipeline.reg_lambda);
  model.init_train(train.x, train.labels);

  // theta_error auto-calibration, as core::Pipeline::fit does.
  double theta_error = config.pipeline.theta_error;
  if (theta_error <= 0.0) {
    std::vector<double> scores(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) {
      scores[i] = model.score_of(
          train.x.row(i), static_cast<std::size_t>(train.labels[i]));
    }
    theta_error = linalg::mean(scores) +
                  config.pipeline.theta_error_z *
                      linalg::stddev_population(scores);
  }

  drift::CentroidDetectorConfig base;
  base.num_labels = config.pipeline.num_labels;
  base.dim = train.dim();
  base.theta_error = theta_error;
  base.z = config.pipeline.z;
  base.ewma_decay = config.pipeline.ewma_decay;
  base.initial_count = config.pipeline.detector_initial_count;
  drift::MultiWindowDetector detector(base, config.ensemble_windows);
  detector.calibrate(train.x, train.labels);

  drift::Reconstructor recon(config.pipeline.reconstruction,
                             config.pipeline.num_labels, train.dim());
  linalg::Matrix trained_means =
      label_means(train, config.pipeline.num_labels);
  RecentCentroids recent(config.pipeline.num_labels, train.dim());
  recent.seed(trained_means);

  util::Stopwatch clock;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto x = test.x.row(i);
    const model::Prediction pred = model.predict(x);
    result.accuracy.record(static_cast<int>(pred.label) == test.labels[i]);
    recent.update(pred.label, x);

    if (recon.active()) {
      if (!recon.step(x, model)) {
        align_after_reconstruction(recon, model, trained_means);
        trained_means = recon.coords().centroids();
        const double suggested =
            recon.suggested_theta_drift(config.pipeline.z);
        for (std::size_t m = 0; m < detector.members(); ++m) {
          detector.member_mutable(m).rearm(recon.coords().centroids(),
                                           recon.coords().counts(),
                                           suggested);
        }
        detector.clear_votes();
      }
      continue;
    }

    drift::Observation obs;
    obs.x = x;
    obs.predicted_label = static_cast<int>(pred.label);
    obs.anomaly_score = pred.score;
    if (detector.observe(obs).drift) {
      result.detections.record(i);
      recon.begin(model, recent.centroids);
    }
  }
  result.runtime_seconds = clock.elapsed_seconds();
  result.detector_memory_bytes =
      detector.memory_bytes() + recon.memory_bytes();
  result.model_memory_bytes = model.memory_bytes();
  return result;
}

}  // namespace

std::string method_name(Method method) {
  switch (method) {
    case Method::kProposed:
      return "Proposed method";
    case Method::kBaseline:
      return "Baseline (no concept drift detection)";
    case Method::kQuantTree:
      return "Quant Tree";
    case Method::kSpll:
      return "SPLL";
    case Method::kOnlad:
      return "ONLAD";
    case Method::kMultiWindow:
      return "Multi-window ensemble";
  }
  return "unknown";
}

ExperimentResult run_experiment(Method method, const data::Dataset& train,
                                const data::Dataset& test,
                                const ExperimentConfig& config) {
  EDGEDRIFT_ASSERT(train.dim() == test.dim(), "train/test dim mismatch");
  switch (method) {
    case Method::kProposed:
      return run_proposed(train, test, config);
    case Method::kBaseline:
    case Method::kOnlad:
      return run_model_only(method, train, test, config);
    case Method::kQuantTree:
    case Method::kSpll:
      return run_batch_detector(method, train, test, config);
    case Method::kMultiWindow:
      return run_multi_window(train, test, config);
  }
  EDGEDRIFT_ASSERT(false, "unreachable");
  return {};
}

}  // namespace edgedrift::eval
