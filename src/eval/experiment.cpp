#include "edgedrift/eval/experiment.hpp"

#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/stopwatch.hpp"

namespace edgedrift::eval {
namespace {

/// Every detector-based method is the same program: configure the pipeline
/// with the method's drift::DetectorSpec and stream. The facade supplies
/// the recovery loop (reconstruction, re-alignment, detector re-arming,
/// reference refill for the batch detectors) that the per-method runners
/// used to hand-roll.
core::PipelineConfig method_pipeline_config(Method method,
                                            const data::Dataset& train,
                                            const ExperimentConfig& config) {
  core::PipelineConfig pc = config.pipeline;
  pc.input_dim = train.dim();
  switch (method) {
    case Method::kProposed:
      pc.detector.kind = drift::DetectorKind::kCentroid;
      break;
    case Method::kQuantTree:
      pc.detector.kind = drift::DetectorKind::kQuantTree;
      pc.detector.quanttree = config.quanttree;
      pc.seed = config.seed;  // Matches the historical model seeding.
      break;
    case Method::kSpll:
      pc.detector.kind = drift::DetectorKind::kSpll;
      pc.detector.spll = config.spll;
      pc.seed = config.seed;
      break;
    case Method::kMultiWindow:
      pc.detector.kind = drift::DetectorKind::kMultiWindow;
      pc.detector.windows = config.ensemble_windows;
      pc.seed = config.seed;
      break;
    case Method::kBaseline:
    case Method::kOnlad:
      EDGEDRIFT_ASSERT(false, "model-only methods have no detector");
      break;
  }
  return pc;
}

ExperimentResult run_pipeline_method(Method method, const data::Dataset& train,
                                     const data::Dataset& test,
                                     const ExperimentConfig& config) {
  ExperimentResult result;
  result.method = method;

  core::Pipeline pipeline(method_pipeline_config(method, train, config));
  pipeline.fit(train.x, train.labels);

  util::Stopwatch clock;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const core::PipelineStep step = pipeline.process(test.x.row(i));
    result.accuracy.record(static_cast<int>(step.prediction.label) ==
                           test.labels[i]);
    if (step.drift_detected) result.detections.record(i);
  }
  result.runtime_seconds = clock.elapsed_seconds();
  result.detector_memory_bytes = pipeline.detector_memory_bytes();
  result.model_memory_bytes = pipeline.model().memory_bytes();
  return result;
}

ExperimentResult run_model_only(Method method, const data::Dataset& train,
                                const data::Dataset& test,
                                const ExperimentConfig& config) {
  ExperimentResult result;
  result.method = method;
  const bool passive = method == Method::kOnlad;

  util::Rng rng(config.seed);
  auto projection = oselm::make_projection(
      train.dim(), config.pipeline.hidden_dim, config.pipeline.activation,
      rng, config.pipeline.weight_scale);
  model::MultiInstanceModel model(
      config.pipeline.num_labels, std::move(projection),
      config.pipeline.reg_lambda,
      passive ? config.onlad_forgetting : 1.0);
  model.init_train(train.x, train.labels);

  util::Stopwatch clock;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const model::Prediction pred =
        passive ? model.train_closest(test.x.row(i))
                : model.predict(test.x.row(i));
    result.accuracy.record(static_cast<int>(pred.label) == test.labels[i]);
  }
  result.runtime_seconds = clock.elapsed_seconds();
  result.detector_memory_bytes = 0;
  result.model_memory_bytes = model.memory_bytes();
  return result;
}

}  // namespace

std::string method_name(Method method) {
  switch (method) {
    case Method::kProposed:
      return "Proposed method";
    case Method::kBaseline:
      return "Baseline (no concept drift detection)";
    case Method::kQuantTree:
      return "Quant Tree";
    case Method::kSpll:
      return "SPLL";
    case Method::kOnlad:
      return "ONLAD";
    case Method::kMultiWindow:
      return "Multi-window ensemble";
  }
  return "unknown";
}

ExperimentResult run_experiment(Method method, const data::Dataset& train,
                                const data::Dataset& test,
                                const ExperimentConfig& config) {
  EDGEDRIFT_ASSERT(train.dim() == test.dim(), "train/test dim mismatch");
  switch (method) {
    case Method::kBaseline:
    case Method::kOnlad:
      return run_model_only(method, train, test, config);
    case Method::kProposed:
    case Method::kQuantTree:
    case Method::kSpll:
    case Method::kMultiWindow:
      return run_pipeline_method(method, train, test, config);
  }
  EDGEDRIFT_ASSERT(false, "unreachable");
  return {};
}

}  // namespace edgedrift::eval
