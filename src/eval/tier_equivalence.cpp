#include "edgedrift/eval/tier_equivalence.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

namespace edgedrift::eval {
namespace {

/// One streaming run's decision trace. `margins` (reference run only) is
/// the relative score gap between the winning and runner-up instance just
/// before each sample was processed — the confidence of the decision.
struct Trace {
  double theta_error = 0.0;
  std::vector<int> labels;
  std::vector<double> margins;
  std::vector<std::size_t> drifts;
  std::size_t recoveries = 0;
};

Trace run_trace(const core::PipelineConfig& base,
                linalg::NumericsTier tier, const data::Dataset& train,
                const data::Dataset& test, bool record_margins,
                std::size_t burst) {
  core::PipelineConfig config = base;
  config.numerics = tier;
  core::Pipeline pipeline(config);
  pipeline.fit(train.x, train.labels);
  if (burst == 0) burst = 1;

  Trace t;
  t.theta_error = pipeline.theta_error();
  t.labels.reserve(test.size());
  std::vector<double> scores(config.num_labels);
  if (record_margins) t.margins.reserve(test.size());
  std::vector<core::PipelineStep> steps;
  for (std::size_t at = 0; at < test.size(); at += burst) {
    const std::size_t take = std::min(burst, test.size() - at);
    if (record_margins) {
      // Margins are consumed only inside the shared-trajectory window,
      // where the model is frozen — scoring the whole burst before
      // processing it equals scoring each row just before its own step.
      for (std::size_t i = at; i < at + take; ++i) {
        pipeline.model().scores(test.x.row(i), scores);
        const double best = *std::min_element(scores.begin(), scores.end());
        double second = std::numeric_limits<double>::infinity();
        for (const double s : scores) {
          if (s > best && s < second) second = s;
        }
        if (!std::isfinite(second)) second = best;  // All scores tied.
        t.margins.push_back((second - best) / std::max(best, 1e-12));
      }
    }
    steps.clear();
    pipeline.process_batch_range(test.x, at, at + take, test.labels, steps);
    for (std::size_t i = 0; i < take; ++i) {
      t.labels.push_back(steps[i].prediction.label);
      if (steps[i].drift_detected) t.drifts.push_back(at + i);
      t.recoveries += steps[i].reconstruction_finished;
    }
  }
  return t;
}

}  // namespace

TierEquivalenceReport check_tier_equivalence(
    linalg::NumericsTier tier, const data::Dataset& train,
    const data::Dataset& test, const TierEquivalenceConfig& config) {
  const Trace reference =
      run_trace(config.pipeline, linalg::NumericsTier::kExactF64, train,
                test, /*record_margins=*/true, config.burst);
  const Trace candidate = run_trace(config.pipeline, tier, train, test,
                                    /*record_margins=*/false, config.burst);

  TierEquivalenceReport report;
  report.tier = tier;
  report.samples = test.size();
  report.reference_drifts = reference.drifts.size();
  report.tier_drifts = candidate.drifts.size();
  report.reference_recoveries = reference.recoveries;
  report.tier_recoveries = candidate.recoveries;

  const double theta_scale = std::abs(reference.theta_error);
  report.theta_rel_diff =
      theta_scale > 0.0
          ? std::abs(candidate.theta_error - reference.theta_error) /
                theta_scale
          : std::abs(candidate.theta_error - reference.theta_error);

  // Labels are compared only while the two runs share a state trajectory:
  // up to the first detection of either run (see the header's contract).
  std::size_t compare_end = test.size();
  if (!reference.drifts.empty()) {
    compare_end = std::min(compare_end, reference.drifts.front());
  }
  if (!candidate.drifts.empty()) {
    compare_end = std::min(compare_end, candidate.drifts.front());
  }
  report.compared_samples = compare_end;
  for (std::size_t i = 0; i < compare_end; ++i) {
    if (candidate.labels[i] == reference.labels[i]) continue;
    ++report.label_disagreements;
    report.material_disagreements +=
        reference.margins[i] > config.decision_margin_floor;
  }
  if (reference.drifts.size() == candidate.drifts.size()) {
    for (std::size_t i = 0; i < reference.drifts.size(); ++i) {
      const auto a = static_cast<long long>(candidate.drifts[i]);
      const auto b = static_cast<long long>(reference.drifts[i]);
      const auto shift = static_cast<std::size_t>(std::llabs(a - b));
      if (shift > report.max_detection_shift) {
        report.max_detection_shift = shift;
      }
    }
  }

  report.equivalent = true;
  const auto fail = [&report](std::string why) {
    report.equivalent = false;
    if (!report.failure.empty()) report.failure += "; ";
    report.failure += std::move(why);
  };
  if (report.tier_drifts != report.reference_drifts) {
    fail("drift count " + std::to_string(report.tier_drifts) + " != f64's " +
         std::to_string(report.reference_drifts));
  } else if (report.max_detection_shift > config.detection_slack) {
    fail("a detection shifted " +
         std::to_string(report.max_detection_shift) +
         " samples (slack " + std::to_string(config.detection_slack) + ")");
  }
  if (report.tier_recoveries != report.reference_recoveries) {
    fail("recovery count " + std::to_string(report.tier_recoveries) +
         " != f64's " + std::to_string(report.reference_recoveries));
  }
  if (report.theta_rel_diff > config.theta_rel_tol) {
    fail("theta_error drifted " + std::to_string(report.theta_rel_diff) +
         " relative (tol " + std::to_string(config.theta_rel_tol) + ")");
  }
  const double disagreement =
      report.compared_samples == 0
          ? 0.0
          : static_cast<double>(report.material_disagreements) /
                static_cast<double>(report.compared_samples);
  if (disagreement > config.max_label_disagreement) {
    fail(std::to_string(report.material_disagreements) +
         " material label disagreements in " +
         std::to_string(report.compared_samples) +
         " compared samples exceed the allowed fraction");
  }
  return report;
}

}  // namespace edgedrift::eval
