#include "edgedrift/eval/scenario_metrics.hpp"

#include <algorithm>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::eval {

ScenarioMetrics score_scenario(
    std::span<const std::size_t> detections,
    std::span<const data::DriftAnnotation> annotations,
    std::size_t stream_length, std::span<const std::uint8_t> correct,
    const ScenarioMetricsConfig& config) {
  EDGEDRIFT_ASSERT(correct.empty() || correct.size() == stream_length,
                   "correctness span must cover the stream");

  ScenarioMetrics m;
  m.stream_length = stream_length;
  m.drift_points = annotations.size();
  m.delays.assign(annotations.size(), -1);

  // Detection windows: [start, min(edge end + horizon, next start, n)).
  // Clipping at the next edge keeps windows disjoint, so every detection
  // has exactly one classification.
  struct Window {
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Window> windows(annotations.size());
  for (std::size_t k = 0; k < annotations.size(); ++k) {
    const std::size_t begin = annotations[k].start;
    std::size_t end =
        std::max(begin, annotations[k].end) + config.detection_horizon;
    if (k + 1 < annotations.size()) {
      end = std::min(end, annotations[k + 1].start);
    }
    end = std::min(end, stream_length);
    EDGEDRIFT_ASSERT(k == 0 || begin >= windows[k - 1].end,
                     "annotations must be sorted by start");
    windows[k] = {begin, std::max(begin, end)};
    m.watched_samples += windows[k].end - windows[k].begin;
  }

  std::vector<std::size_t> sorted(detections.begin(), detections.end());
  std::sort(sorted.begin(), sorted.end());

  std::size_t w = 0;
  double delay_acc = 0.0;
  for (const std::size_t d : sorted) {
    EDGEDRIFT_ASSERT(d < stream_length, "detection beyond the stream");
    while (w < windows.size() && d >= windows[w].end) ++w;
    if (w < windows.size() && d >= windows[w].begin) {
      if (m.delays[w] < 0) {
        m.delays[w] = static_cast<long>(d - windows[w].begin);
        delay_acc += static_cast<double>(m.delays[w]);
        ++m.detected;
      } else {
        ++m.extra_detections;
      }
    } else {
      ++m.false_alarms;
    }
  }
  m.missed = m.drift_points - m.detected;
  if (m.detected > 0) {
    m.mean_delay = delay_acc / static_cast<double>(m.detected);
  }
  const std::size_t outside = stream_length - m.watched_samples;
  if (outside > 0) {
    m.false_alarm_rate_per_1k =
        1000.0 * static_cast<double>(m.false_alarms) /
        static_cast<double>(outside);
  }

  if (!correct.empty()) {
    std::size_t total_correct = 0;
    for (const std::uint8_t c : correct) total_correct += c != 0 ? 1 : 0;
    m.overall_accuracy = stream_length == 0
                             ? 0.0
                             : static_cast<double>(total_correct) /
                                   static_cast<double>(stream_length);

    // Recovery accuracy: the trailing recovery_window samples of each
    // post-drift segment — after the pure post-edge concept began (edge
    // end) and before the next edge starts.
    std::size_t rec_correct = 0;
    for (std::size_t k = 0; k < annotations.size(); ++k) {
      const std::size_t seg_end = k + 1 < annotations.size()
                                      ? annotations[k + 1].start
                                      : stream_length;
      const std::size_t seg_begin = std::min(annotations[k].end, seg_end);
      const std::size_t tail = seg_end - seg_begin;
      const std::size_t begin =
          seg_end - std::min(tail, config.recovery_window);
      for (std::size_t i = begin; i < seg_end; ++i) {
        ++m.recovery_samples;
        rec_correct += correct[i] != 0 ? 1 : 0;
      }
    }
    if (m.recovery_samples > 0) {
      m.recovery_accuracy = static_cast<double>(rec_correct) /
                            static_cast<double>(m.recovery_samples);
    }
  }
  return m;
}

}  // namespace edgedrift::eval
