// int8 quantization kernels (see quant.hpp for the scheme and the error
// model). The integer accumulations run on the simd.hpp i8 lanes (AVX2
// maddubs / NEON widening-mla / portable scalar): they are exact in int32,
// so lane width and the two-row pairing below cannot change the result —
// every backend produces the bit-identical accumulator the scalar loop
// would.
#include "edgedrift/linalg/quant.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/linalg/simd.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::linalg {
namespace {

constexpr float kQMax = 127.0f;

std::int8_t encode(double v, float inv_scale) {
  // round-half-away-from-zero, clamped to the symmetric code domain. lround
  // (not nearbyint) so the grid does not depend on the ambient FP rounding
  // mode.
  const long code = std::lround(v * static_cast<double>(inv_scale));
  return static_cast<std::int8_t>(std::clamp(code, -127L, 127L));
}

/// Per-column max|src| over rows [all] and columns [col_begin, col_end),
/// written to maxabs[0 .. col_end-col_begin). Row-major sweep.
void column_maxabs(const Matrix& src, std::size_t col_begin,
                   std::size_t col_end, float* maxabs) {
  const std::size_t width = col_end - col_begin;
  std::fill(maxabs, maxabs + width, 0.0f);
  for (std::size_t r = 0; r < src.rows(); ++r) {
    const double* row = src.data() + r * src.cols() + col_begin;
    for (std::size_t j = 0; j < width; ++j) {
      const float mag = static_cast<float>(std::abs(row[j]));
      if (mag > maxabs[j]) maxabs[j] = mag;
    }
  }
}

void quantize_columns(const Matrix& src, QuantizedMatrix& out,
                      std::size_t col_begin, std::size_t col_end) {
  const std::size_t width = col_end - col_begin;
  // Scales first (one pass), then codes (second pass). Scratch-free: the
  // scales array itself holds the maxabs values until they are divided.
  float* scales = out.scales.data() + col_begin;
  column_maxabs(src, col_begin, col_end, scales);
  for (std::size_t j = 0; j < width; ++j) scales[j] /= kQMax;
  for (std::size_t r = 0; r < src.rows(); ++r) {
    const double* srow = src.data() + r * src.cols() + col_begin;
    std::int8_t* qrow = out.q.data() + r * out.q.cols() + col_begin;
    for (std::size_t j = 0; j < width; ++j) {
      qrow[j] = scales[j] == 0.0f ? std::int8_t{0}
                                  : encode(srow[j], 1.0f / scales[j]);
    }
  }
}

}  // namespace

void quantize(const Matrix& src, QuantizedMatrix& out) {
  out.q.resize_discard(src.rows(), src.cols());
  if (out.scales.size() < src.cols()) out.scales.resize(src.cols());
  quantize_columns(src, out, 0, src.cols());
}

void quantize_block(const Matrix& src, QuantizedMatrix& out,
                    std::size_t col_begin, std::size_t width) {
  EDGEDRIFT_ASSERT(out.q.rows() == src.rows() && out.q.cols() == src.cols(),
                   "quantize_block shape mismatch");
  EDGEDRIFT_ASSERT(col_begin + width <= src.cols(),
                   "quantize_block column range out of bounds");
  quantize_columns(src, out, col_begin, col_begin + width);
}

float quantize_vector(std::span<const double> x, std::span<std::int8_t> q) {
  EDGEDRIFT_DASSERT(x.size() == q.size(), "quantize_vector size mismatch");
  double maxabs = 0.0;
  for (const double v : x) maxabs = std::max(maxabs, std::abs(v));
  if (maxabs == 0.0) {
    std::fill(q.begin(), q.end(), std::int8_t{0});
    return 0.0f;
  }
  const float scale = static_cast<float>(maxabs) / kQMax;
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < x.size(); ++i) q[i] = encode(x[i], inv);
  return scale;
}

float quantize_vector(std::span<const float> x, std::span<std::int8_t> q) {
  EDGEDRIFT_DASSERT(x.size() == q.size(), "quantize_vector size mismatch");
  float maxabs = 0.0f;
  for (const float v : x) maxabs = std::max(maxabs, std::abs(v));
  if (maxabs == 0.0f) {
    std::fill(q.begin(), q.end(), std::int8_t{0});
    return 0.0f;
  }
  const float scale = maxabs / kQMax;
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < x.size(); ++i) {
    q[i] = encode(static_cast<double>(x[i]), inv);
  }
  return scale;
}

void i8_matvec_transposed_dequant(const QuantizedMatrix& a,
                                  std::span<const std::int8_t> q_x,
                                  float x_scale, std::span<std::int32_t> acc,
                                  std::span<float> y) {
  EDGEDRIFT_ASSERT(a.rows() == q_x.size(), "i8 matvec_t input size mismatch");
  EDGEDRIFT_ASSERT(a.cols() == y.size(), "i8 matvec_t output size mismatch");
  EDGEDRIFT_ASSERT(acc.size() >= a.cols(), "i8 matvec_t scratch too small");
  const std::size_t n = a.cols();
  std::int32_t* EDGEDRIFT_RESTRICT ap = acc.data();
  std::fill(ap, ap + n, 0);
#if defined(EDGEDRIFT_HAVE_I8_VNNI)
  if (simd::i8_vnni_available()) {
    // Quad dispatch for the VNNI lane: gather the next four nonzero rows,
    // feed them through vpdpbusd (exact int32 — same accumulator the pair
    // path produces), then flush any sub-quad remainder through the
    // maddubs kernels. All three paths are bit-identical.
    std::int32_t xs[4];
    const std::int8_t* rows[4];
    std::size_t k = 0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      if (q_x[i] == 0) continue;
      xs[k] = q_x[i];
      rows[k] = a.q.data() + i * n;
      if (++k == 4) {
        simd::i8_scaled_accumulate4_vnni(xs, rows, ap, n);
        k = 0;
      }
    }
    if (k >= 2) {
      simd::i8_scaled_accumulate2(static_cast<std::int8_t>(xs[0]), rows[0],
                                  static_cast<std::int8_t>(xs[1]), rows[1],
                                  ap, n);
      if (k == 3) {
        simd::i8_scaled_accumulate(static_cast<std::int8_t>(xs[2]), rows[2],
                                   ap, n);
      }
    } else if (k == 1) {
      simd::i8_scaled_accumulate(static_cast<std::int8_t>(xs[0]), rows[0],
                                 ap, n);
    }
    const float* EDGEDRIFT_RESTRICT vsp = a.scales.data();
    for (std::size_t j = 0; j < n; ++j) {
      y[j] = static_cast<float>(ap[j]) * x_scale * vsp[j];
    }
    return;
  }
#endif
  // Row-pair dispatch: zero codes contribute nothing and are skipped; the
  // surviving rows go through the fused two-row kernel (one pass over the
  // accumulators per pair) with a single-row call for the odd tail.
  std::size_t i = 0;
  while (i < a.rows()) {
    if (q_x[i] == 0) {
      ++i;
      continue;
    }
    std::size_t i2 = i + 1;
    while (i2 < a.rows() && q_x[i2] == 0) ++i2;
    if (i2 < a.rows()) {
      simd::i8_scaled_accumulate2(q_x[i], a.q.data() + i * n, q_x[i2],
                                  a.q.data() + i2 * n, ap, n);
      i = i2 + 1;
    } else {
      simd::i8_scaled_accumulate(q_x[i], a.q.data() + i * n, ap, n);
      i = i2;
    }
  }
  const float* EDGEDRIFT_RESTRICT sp = a.scales.data();
  for (std::size_t j = 0; j < n; ++j) {
    y[j] = static_cast<float>(ap[j]) * x_scale * sp[j];
  }
}

void i8_gemm_dequant(ConstMatrixViewT<float> a, const QuantizedMatrix& b,
                     MatrixF32& c, std::span<std::int8_t> q_row,
                     std::span<std::int32_t> acc) {
  EDGEDRIFT_ASSERT(a.cols() == b.rows(), "i8 gemm shape mismatch");
  EDGEDRIFT_ASSERT(q_row.size() >= a.cols(), "i8 gemm row scratch too small");
  c.resize_discard(a.rows(), b.cols());
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  std::span<std::int8_t> qr = q_row.subspan(0, k_dim);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float row_scale = quantize_vector(a.row(r), qr);
    std::span<float> crow{c.data() + r * n, n};
    if (row_scale == 0.0f) {
      std::fill(crow.begin(), crow.end(), 0.0f);
      continue;
    }
    i8_matvec_transposed_dequant(b, qr, row_scale, acc, crow);
  }
}

}  // namespace edgedrift::linalg
