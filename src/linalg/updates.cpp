#include "edgedrift/linalg/updates.hpp"

#include <cmath>
#include <vector>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/solve.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::linalg {

bool sherman_morrison_update(Matrix& p, std::span<const double> u,
                             std::span<const double> v) {
  const std::size_t n = p.rows();
  EDGEDRIFT_ASSERT(p.cols() == n, "P must be square");
  EDGEDRIFT_ASSERT(u.size() == n && v.size() == n,
                   "sherman_morrison size mismatch");
  std::vector<double> pu(n), vtp(n);
  matvec(p, u, pu);
  matvec_transposed(p, v, vtp);
  const double denom = 1.0 + dot(v, pu);
  if (std::abs(denom) < 1e-13) return false;
  const double scale = -1.0 / denom;
  ger(p, scale, pu, vtp);
  return true;
}

bool oselm_p_update(Matrix& p, std::span<const double> h, double alpha,
                    std::span<double> ph_scratch) {
  const std::size_t n = p.rows();
  EDGEDRIFT_ASSERT(p.cols() == n, "P must be square");
  EDGEDRIFT_ASSERT(h.size() == n && ph_scratch.size() == n,
                   "oselm_p_update size mismatch");
  EDGEDRIFT_ASSERT(alpha > 0.0 && alpha <= 1.0,
                   "forgetting factor must be in (0, 1]");
  // ph = P h (P is symmetric, so P h == P^T h and one matvec suffices).
  matvec(p, h, ph_scratch);
  const double hph = dot(h, ph_scratch);
  const double denom = alpha + hph;
  if (!(denom > 0.0) || !std::isfinite(denom)) return false;
  // P <- (P - ph ph^T / denom) / alpha, fused into one pass.
  const double inv_alpha = 1.0 / alpha;
  const double scale = inv_alpha / denom;
  for (std::size_t i = 0; i < n; ++i) {
    const double phi = ph_scratch[i];
    double* prow = p.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      prow[j] = inv_alpha * prow[j] - scale * phi * ph_scratch[j];
    }
  }
  return true;
}

bool woodbury_update(Matrix& p, const Matrix& u, const Matrix& v) {
  const std::size_t n = p.rows();
  const std::size_t k = u.cols();
  EDGEDRIFT_ASSERT(p.cols() == n, "P must be square");
  EDGEDRIFT_ASSERT(u.rows() == n && v.rows() == n && v.cols() == k,
                   "woodbury shape mismatch");
  // PU: n x k, core = I + V^T P U: k x k.
  Matrix pu = matmul(p, u);
  Matrix core = matmul_at_b(v, pu);
  for (std::size_t i = 0; i < k; ++i) core(i, i) += 1.0;
  auto f = lu_factor(core);
  if (!f) return false;
  // P -= PU * core^-1 * (V^T P) = PU * core^-1 * (P^T V)^T.
  Matrix vtp = matmul_at_b(v, p);              // k x n
  Matrix core_inv_vtp = lu_solve_matrix(*f, vtp);  // k x n
  Matrix delta = matmul(pu, core_inv_vtp);     // n x n
  p -= delta;
  return true;
}

}  // namespace edgedrift::linalg
