#include "edgedrift/linalg/updates.hpp"

#include <cmath>
#include <vector>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/simd.hpp"
#include "edgedrift/linalg/solve.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::linalg {

bool sherman_morrison_update(Matrix& p, std::span<const double> u,
                             std::span<const double> v,
                             std::span<double> pu_scratch,
                             std::span<double> vtp_scratch) {
  const std::size_t n = p.rows();
  EDGEDRIFT_ASSERT(p.cols() == n, "P must be square");
  EDGEDRIFT_ASSERT(u.size() == n && v.size() == n,
                   "sherman_morrison size mismatch");
  EDGEDRIFT_ASSERT(pu_scratch.size() == n && vtp_scratch.size() == n,
                   "sherman_morrison scratch size mismatch");
  matvec(p, u, pu_scratch);
  matvec_transposed(p, v, vtp_scratch);
  const double denom = 1.0 + dot(v, pu_scratch);
  if (std::abs(denom) < 1e-13) return false;
  const double scale = -1.0 / denom;
  ger(p, scale, pu_scratch, vtp_scratch);
  return true;
}

bool sherman_morrison_update(Matrix& p, std::span<const double> u,
                             std::span<const double> v) {
  std::vector<double> pu(p.rows()), vtp(p.rows());
  return sherman_morrison_update(p, u, v, pu, vtp);
}

bool oselm_p_update(Matrix& p, std::span<const double> h, double alpha,
                    std::span<double> ph_scratch) {
  const std::size_t n = p.rows();
  EDGEDRIFT_ASSERT(p.cols() == n, "P must be square");
  EDGEDRIFT_ASSERT(h.size() == n && ph_scratch.size() == n,
                   "oselm_p_update size mismatch");
  EDGEDRIFT_ASSERT(alpha > 0.0 && alpha <= 1.0,
                   "forgetting factor must be in (0, 1]");
  // ph = P h (P is symmetric, so P h == P^T h and one matvec suffices).
  matvec(p, h, ph_scratch);
  const double hph = dot(h, ph_scratch);
  const double denom = alpha + hph;
  if (!(denom > 0.0) || !std::isfinite(denom)) return false;
  // P <- (P - ph ph^T / denom) / alpha, fused into one vectorized pass:
  // prow[j] = inv_alpha * prow[j] + (-scale * phi) * ph[j].
  const double inv_alpha = 1.0 / alpha;
  const double scale = inv_alpha / denom;
  const double* EDGEDRIFT_RESTRICT ph = ph_scratch.data();
  const simd::VDouble va = simd::vbroadcast(inv_alpha);
  for (std::size_t i = 0; i < n; ++i) {
    const double neg_scale_phi = -scale * ph[i];
    double* EDGEDRIFT_RESTRICT prow = p.data() + i * n;
    const simd::VDouble vp = simd::vbroadcast(neg_scale_phi);
    std::size_t j = 0;
    for (; j + simd::kLanes <= n; j += simd::kLanes) {
      simd::vstore(prow + j,
                   simd::vfmadd(vp, simd::vload(ph + j),
                                simd::vmul(va, simd::vload(prow + j))));
    }
    for (; j < n; ++j) {
      prow[j] = simd::madd(neg_scale_phi, ph[j], inv_alpha * prow[j]);
    }
  }
  return true;
}

namespace {

/// In-place LU with partial pivoting on the k x k Woodbury core — the same
/// pivot selection and elimination arithmetic as solve.cpp's lu_factor, but
/// factoring the workspace matrix itself and recording pivots into the
/// workspace array, so repeated block updates stay heap-free.
bool factor_core_in_place(Matrix& a, std::vector<std::size_t>& piv) {
  const std::size_t n = a.rows();
  if (piv.size() < n) piv.resize(n);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-13) return false;
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
      std::swap(piv[k], piv[pivot]);
    }
    const double inv_diag = 1.0 / a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a(i, k) * inv_diag;
      a(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= factor * a(k, j);
    }
  }
  return true;
}

/// Solves (LU) X = B for every column of B into X (k x m each), using the
/// factorization and pivots produced by factor_core_in_place. Same forward/
/// backward substitution chain as solve.cpp's lu_solve, column-major over B.
void solve_core_in_place(const Matrix& lu, std::span<const std::size_t> piv,
                         const Matrix& b, Matrix& x) {
  const std::size_t n = lu.rows();
  x.resize_discard(n, b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b(piv[i], c);
      for (std::size_t j = 0; j < i; ++j) acc -= lu(i, j) * x(j, c);
      x(i, c) = acc;
    }
    for (std::size_t ii = n; ii-- > 0;) {
      double acc = x(ii, c);
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu(ii, j) * x(j, c);
      x(ii, c) = acc / lu(ii, ii);
    }
  }
}

}  // namespace

bool woodbury_update(Matrix& p, const Matrix& u, const Matrix& v,
                     WoodburyWorkspace& ws) {
  const std::size_t n = p.rows();
  const std::size_t k = u.cols();
  EDGEDRIFT_ASSERT(p.cols() == n, "P must be square");
  EDGEDRIFT_ASSERT(u.rows() == n && v.rows() == n && v.cols() == k,
                   "woodbury shape mismatch");
  // PU: n x k, core = I + V^T P U: k x k.
  matmul_into(p, u, ws.pu);
  matmul_at_b_into(v, ws.pu, ws.core);
  for (std::size_t i = 0; i < k; ++i) ws.core(i, i) += 1.0;
  // Factor the tiny core in place (allocation-free; same arithmetic as the
  // general lu_factor) — the chunked training path runs this per bucket
  // inside the steady-state allocation contract.
  if (!factor_core_in_place(ws.core, ws.piv)) return false;
  // P -= PU * core^-1 * (V^T P) = PU * core^-1 * (P^T V)^T.
  matmul_at_b_into(v, p, ws.vtp);                              // k x n
  solve_core_in_place(ws.core, ws.piv, ws.vtp, ws.core_inv_vtp);
  matmul_into(ws.pu, ws.core_inv_vtp, ws.delta);               // n x n
  p -= ws.delta;
  return true;
}

bool woodbury_update(Matrix& p, const Matrix& u, const Matrix& v) {
  WoodburyWorkspace ws;
  return woodbury_update(p, u, v, ws);
}

bool woodbury_update_sym(Matrix& p, const Matrix& h, WoodburyWorkspace& ws) {
  const std::size_t n = p.rows();
  const std::size_t k = h.rows();
  EDGEDRIFT_ASSERT(p.cols() == n, "P must be square");
  EDGEDRIFT_ASSERT(h.cols() == n, "woodbury_sym shape mismatch");
  // W = H P: one symmetric matvec per chunk row (P h_r == (h_r^T P)^T, the
  // same trick oselm_p_update uses). At k in the single digits this beats
  // the GEMM path, whose per-call B-packing dominates edge-sized shapes.
  ws.w.resize_discard(k, n);
  for (std::size_t r = 0; r < k; ++r) matvec(p, h.row(r), ws.w.row(r));
  // core = I + H W^T: every entry a contiguous row-dot, symmetric since P
  // is — fill the upper triangle and mirror.
  ws.core.resize_discard(k, k);
  for (std::size_t r = 0; r < k; ++r) {
    ws.core(r, r) = 1.0 + dot(h.row(r), ws.w.row(r));
    for (std::size_t s = r + 1; s < k; ++s) {
      const double c = dot(h.row(r), ws.w.row(s));
      ws.core(r, s) = c;
      ws.core(s, r) = c;
    }
  }
  if (!factor_core_in_place(ws.core, ws.piv)) return false;
  // M = core^-1 W, then P -= W^T M as k fused rank-1 passes. Because both P
  // and the core are symmetric, M^T = P H^T core^-1 = P_new H^T — exported
  // to the caller through ws.m so the OS-ELM beta update never forms
  // P_new H^T itself.
  solve_core_in_place(ws.core, ws.piv, ws.w, ws.m);
  for (std::size_t r = 0; r < k; ++r) {
    ger(p, -1.0, ws.w.row(r), ws.m.row(r));
  }
  return true;
}

}  // namespace edgedrift::linalg
