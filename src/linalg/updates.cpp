#include "edgedrift/linalg/updates.hpp"

#include <cmath>
#include <vector>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/simd.hpp"
#include "edgedrift/linalg/solve.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::linalg {

bool sherman_morrison_update(Matrix& p, std::span<const double> u,
                             std::span<const double> v,
                             std::span<double> pu_scratch,
                             std::span<double> vtp_scratch) {
  const std::size_t n = p.rows();
  EDGEDRIFT_ASSERT(p.cols() == n, "P must be square");
  EDGEDRIFT_ASSERT(u.size() == n && v.size() == n,
                   "sherman_morrison size mismatch");
  EDGEDRIFT_ASSERT(pu_scratch.size() == n && vtp_scratch.size() == n,
                   "sherman_morrison scratch size mismatch");
  matvec(p, u, pu_scratch);
  matvec_transposed(p, v, vtp_scratch);
  const double denom = 1.0 + dot(v, pu_scratch);
  if (std::abs(denom) < 1e-13) return false;
  const double scale = -1.0 / denom;
  ger(p, scale, pu_scratch, vtp_scratch);
  return true;
}

bool sherman_morrison_update(Matrix& p, std::span<const double> u,
                             std::span<const double> v) {
  std::vector<double> pu(p.rows()), vtp(p.rows());
  return sherman_morrison_update(p, u, v, pu, vtp);
}

bool oselm_p_update(Matrix& p, std::span<const double> h, double alpha,
                    std::span<double> ph_scratch) {
  const std::size_t n = p.rows();
  EDGEDRIFT_ASSERT(p.cols() == n, "P must be square");
  EDGEDRIFT_ASSERT(h.size() == n && ph_scratch.size() == n,
                   "oselm_p_update size mismatch");
  EDGEDRIFT_ASSERT(alpha > 0.0 && alpha <= 1.0,
                   "forgetting factor must be in (0, 1]");
  // ph = P h (P is symmetric, so P h == P^T h and one matvec suffices).
  matvec(p, h, ph_scratch);
  const double hph = dot(h, ph_scratch);
  const double denom = alpha + hph;
  if (!(denom > 0.0) || !std::isfinite(denom)) return false;
  // P <- (P - ph ph^T / denom) / alpha, fused into one vectorized pass:
  // prow[j] = inv_alpha * prow[j] + (-scale * phi) * ph[j].
  const double inv_alpha = 1.0 / alpha;
  const double scale = inv_alpha / denom;
  const double* EDGEDRIFT_RESTRICT ph = ph_scratch.data();
  const simd::VDouble va = simd::vbroadcast(inv_alpha);
  for (std::size_t i = 0; i < n; ++i) {
    const double neg_scale_phi = -scale * ph[i];
    double* EDGEDRIFT_RESTRICT prow = p.data() + i * n;
    const simd::VDouble vp = simd::vbroadcast(neg_scale_phi);
    std::size_t j = 0;
    for (; j + simd::kLanes <= n; j += simd::kLanes) {
      simd::vstore(prow + j,
                   simd::vfmadd(vp, simd::vload(ph + j),
                                simd::vmul(va, simd::vload(prow + j))));
    }
    for (; j < n; ++j) {
      prow[j] = simd::madd(neg_scale_phi, ph[j], inv_alpha * prow[j]);
    }
  }
  return true;
}

bool woodbury_update(Matrix& p, const Matrix& u, const Matrix& v,
                     WoodburyWorkspace& ws) {
  const std::size_t n = p.rows();
  const std::size_t k = u.cols();
  EDGEDRIFT_ASSERT(p.cols() == n, "P must be square");
  EDGEDRIFT_ASSERT(u.rows() == n && v.rows() == n && v.cols() == k,
                   "woodbury shape mismatch");
  // PU: n x k, core = I + V^T P U: k x k.
  matmul_into(p, u, ws.pu);
  matmul_at_b_into(v, ws.pu, ws.core);
  for (std::size_t i = 0; i < k; ++i) ws.core(i, i) += 1.0;
  auto f = lu_factor(ws.core);
  if (!f) return false;
  // P -= PU * core^-1 * (V^T P) = PU * core^-1 * (P^T V)^T.
  matmul_at_b_into(v, p, ws.vtp);                   // k x n
  ws.core_inv_vtp = lu_solve_matrix(*f, ws.vtp);    // k x n
  matmul_into(ws.pu, ws.core_inv_vtp, ws.delta);    // n x n
  p -= ws.delta;
  return true;
}

bool woodbury_update(Matrix& p, const Matrix& u, const Matrix& v) {
  WoodburyWorkspace ws;
  return woodbury_update(p, u, v, ws);
}

}  // namespace edgedrift::linalg
