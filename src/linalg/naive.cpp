#include "edgedrift/linalg/naive.hpp"

#include <algorithm>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::linalg::naive {
namespace {

// The pre-SIMD tile edge: three tiles of doubles in a 32 kB L1.
constexpr std::size_t kBlock = 64;

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  EDGEDRIFT_ASSERT(a.cols() == b.rows(), "matmul shape mismatch");
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  Matrix c(a.rows(), n);
  for (std::size_t i0 = 0; i0 < a.rows(); i0 += kBlock) {
    const std::size_t i1 = std::min(a.rows(), i0 + kBlock);
    for (std::size_t k0 = 0; k0 < k_dim; k0 += kBlock) {
      const std::size_t k1 = std::min(k_dim, k0 + kBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        const double* arow = a.data() + i * k_dim;
        double* crow = c.data() + i * n;
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = arow[k];
          if (aik == 0.0) continue;
          const double* brow = b.data() + k * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  EDGEDRIFT_ASSERT(a.rows() == b.rows(), "matmul_at_b shape mismatch");
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  Matrix c(m, n);
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.data() + k * m;
    const double* brow = b.data() + k * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  EDGEDRIFT_ASSERT(a.cols() == b.cols(), "matmul_a_bt shape mismatch");
  const std::size_t k_dim = a.cols();
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.data() + i * k_dim;
    double* crow = c.data() + i * b.rows();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.data() + j * k_dim;
      double acc = 0.0;
      for (std::size_t k = 0; k < k_dim; ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
  return c;
}

void matvec(const Matrix& a, std::span<const double> x, std::span<double> y) {
  EDGEDRIFT_ASSERT(a.cols() == x.size(), "matvec input size mismatch");
  EDGEDRIFT_ASSERT(a.rows() == y.size(), "matvec output size mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.data() + i * a.cols();
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += arow[j] * x[j];
    y[i] = acc;
  }
}

void matvec_transposed(const Matrix& a, std::span<const double> x,
                       std::span<double> y) {
  EDGEDRIFT_ASSERT(a.rows() == x.size(), "matvec_t input size mismatch");
  EDGEDRIFT_ASSERT(a.cols() == y.size(), "matvec_t output size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* arow = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * arow[j];
  }
}

void ger(Matrix& a, double alpha, std::span<const double> u,
         std::span<const double> v) {
  EDGEDRIFT_ASSERT(a.rows() == u.size() && a.cols() == v.size(),
                   "ger shape mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double scale = alpha * u[i];
    if (scale == 0.0) continue;
    double* arow = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) arow[j] += scale * v[j];
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  EDGEDRIFT_ASSERT(a.size() == b.size(), "dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace edgedrift::linalg::naive
