// Vectorized matrix kernels over the simd.hpp backend layer.
//
// The GEMM is a register-blocked microkernel: B is packed once per call
// into k-major panels of NR columns (NR = two SIMD vectors), and each
// MR x NR output tile is held in registers across the whole k loop —
// MR*2 accumulator vectors, two B loads and one A broadcast per k step,
// every update a fused multiply-add on the SIMD backends.
//
// Bit-identity contract (docs/ARCHITECTURE.md): each C element is a single
// ascending-k madd chain seeded from the existing C value. That makes the
// microkernel round exactly like matvec_transposed()'s per-element chain,
// which is what keeps Pipeline::process_batch() bit-identical to
// process() within a build. Scalar row/column tails use simd::madd(), the
// scalar op with the same rounding as the vector lanes.
#include "edgedrift/linalg/gemm.hpp"

#include <algorithm>
#include <vector>

#include "edgedrift/linalg/simd.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/thread_pool.hpp"

namespace edgedrift::linalg {
namespace {

using simd::VDouble;

constexpr std::size_t kMr = 4;                  // Register-tile rows.
constexpr std::size_t kNr = 2 * simd::kLanes;   // Register-tile columns.

/// Grow-only packing scratch. One per thread: concurrent GEMMs (distinct
/// PipelineManager streams) each pack into their own buffer, and the pool
/// workers of one parallel GEMM only read the caller's packed panels.
std::vector<double>& pack_buffer() {
  thread_local std::vector<double> buf;
  return buf;
}

/// Packs the column panels of B (k x n) into `packed`: first the full-width
/// kNr panels (packed[p*(k*kNr) + kk*kNr + lane] = B[kk][p*kNr + lane]),
/// then — when the n % kNr tail still holds a whole vector — one narrow
/// kLanes-wide panel in the same k-major layout. Only the final n % kLanes
/// columns run through the strided scalar path.
const double* pack_b_into(const Matrix& b, std::vector<double>& buf) {
  const std::size_t k_dim = b.rows();
  const std::size_t n = b.cols();
  const std::size_t panels = n / kNr;
  const bool narrow = (n - panels * kNr) >= simd::kLanes;
  const std::size_t need =
      panels * k_dim * kNr + (narrow ? k_dim * simd::kLanes : 0);
  if (buf.size() < need) buf.resize(need);
  double* EDGEDRIFT_RESTRICT out = buf.data();
  for (std::size_t p = 0; p < panels; ++p) {
    const double* EDGEDRIFT_RESTRICT src = b.data() + p * kNr;
    for (std::size_t kk = 0; kk < k_dim; ++kk) {
      const double* EDGEDRIFT_RESTRICT row = src + kk * n;
      for (std::size_t lane = 0; lane < kNr; ++lane) *out++ = row[lane];
    }
  }
  if (narrow) {
    const double* EDGEDRIFT_RESTRICT src = b.data() + panels * kNr;
    for (std::size_t kk = 0; kk < k_dim; ++kk) {
      const double* EDGEDRIFT_RESTRICT row = src + kk * n;
      for (std::size_t lane = 0; lane < simd::kLanes; ++lane) *out++ = row[lane];
    }
  }
  return buf.data();
}

/// Per-call packing into the thread-local scratch.
const double* pack_b(const Matrix& b) {
  return pack_b_into(b, pack_buffer());
}

/// C[0:MR_, 0:kNr] = A[0:MR_, 0:k] * panel. Accumulators live in registers
/// for the whole k loop; per element this is one ascending-k madd chain
/// seeded at zero — identical to accumulating into a pre-zeroed C, without
/// the memset traffic of zeroing the output first.
template <std::size_t MR_>
void micro_kernel(std::size_t k_dim, const double* EDGEDRIFT_RESTRICT a,
                  std::size_t lda, const double* EDGEDRIFT_RESTRICT panel,
                  double* EDGEDRIFT_RESTRICT c, std::size_t ldc) {
  VDouble acc[MR_][2];
  for (std::size_t r = 0; r < MR_; ++r) {
    acc[r][0] = simd::vzero();
    acc[r][1] = simd::vzero();
  }
  for (std::size_t kk = 0; kk < k_dim; ++kk) {
    const VDouble b0 = simd::vload(panel);
    const VDouble b1 = simd::vload(panel + simd::kLanes);
    panel += kNr;
    for (std::size_t r = 0; r < MR_; ++r) {
      const VDouble ar = simd::vbroadcast(a[r * lda + kk]);
      acc[r][0] = simd::vfmadd(ar, b0, acc[r][0]);
      acc[r][1] = simd::vfmadd(ar, b1, acc[r][1]);
    }
  }
  for (std::size_t r = 0; r < MR_; ++r) {
    simd::vstore(c + r * ldc, acc[r][0]);
    simd::vstore(c + r * ldc + simd::kLanes, acc[r][1]);
  }
}

/// C[0:MR_, 0:kLanes] = A[0:MR_, 0:k] * narrow panel (one vector wide).
/// Same ascending-k per-element madd chain as micro_kernel, half the tile
/// width — covers the kNr-remainder columns that would otherwise fall to
/// the strided scalar tail.
template <std::size_t MR_>
void micro_kernel_narrow(std::size_t k_dim, const double* EDGEDRIFT_RESTRICT a,
                         std::size_t lda,
                         const double* EDGEDRIFT_RESTRICT panel,
                         double* EDGEDRIFT_RESTRICT c, std::size_t ldc) {
  VDouble acc[MR_];
  for (std::size_t r = 0; r < MR_; ++r) acc[r] = simd::vzero();
  for (std::size_t kk = 0; kk < k_dim; ++kk) {
    const VDouble b0 = simd::vload(panel);
    panel += simd::kLanes;
    for (std::size_t r = 0; r < MR_; ++r) {
      acc[r] = simd::vfmadd(simd::vbroadcast(a[r * lda + kk]), b0, acc[r]);
    }
  }
  for (std::size_t r = 0; r < MR_; ++r) simd::vstore(c + r * ldc, acc[r]);
}

/// C[row_lo:row_hi) = A * B with B pre-packed by pack_b(). Every element of
/// the range is fully overwritten (kernels seed their accumulators at
/// zero), so C needs no pre-zeroing. The packed panels cover the first
/// (n / kNr) * kNr columns plus one kLanes-wide narrow panel when the
/// remainder holds a whole vector; only the final n % kLanes columns use
/// the original B, with the same per-element madd chain.
void matmul_rows(ConstMatrixView a, const Matrix& b, Matrix& c,
                 std::size_t row_lo, std::size_t row_hi,
                 const double* packed) {
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  const std::size_t panels = n / kNr;
  const bool narrow = (n - panels * kNr) >= simd::kLanes;
  const double* narrow_panel = packed + panels * k_dim * kNr;
  const std::size_t tail_j = panels * kNr + (narrow ? simd::kLanes : 0);
  for (std::size_t i = row_lo; i < row_hi; i += kMr) {
    const std::size_t mr = std::min(kMr, row_hi - i);
    const double* arow = a.data() + i * k_dim;
    double* crow = c.data() + i * n;
    for (std::size_t p = 0; p < panels; ++p) {
      const double* panel = packed + p * k_dim * kNr;
      double* ctile = crow + p * kNr;
      switch (mr) {
        case 4:
          micro_kernel<4>(k_dim, arow, k_dim, panel, ctile, n);
          break;
        case 3:
          micro_kernel<3>(k_dim, arow, k_dim, panel, ctile, n);
          break;
        case 2:
          micro_kernel<2>(k_dim, arow, k_dim, panel, ctile, n);
          break;
        default:
          micro_kernel<1>(k_dim, arow, k_dim, panel, ctile, n);
          break;
      }
    }
    if (narrow) {
      double* ctile = crow + panels * kNr;
      switch (mr) {
        case 4:
          micro_kernel_narrow<4>(k_dim, arow, k_dim, narrow_panel, ctile, n);
          break;
        case 3:
          micro_kernel_narrow<3>(k_dim, arow, k_dim, narrow_panel, ctile, n);
          break;
        case 2:
          micro_kernel_narrow<2>(k_dim, arow, k_dim, narrow_panel, ctile, n);
          break;
        default:
          micro_kernel_narrow<1>(k_dim, arow, k_dim, narrow_panel, ctile, n);
          break;
      }
    }
    for (std::size_t r = 0; r < mr; ++r) {
      const double* EDGEDRIFT_RESTRICT ar = arow + r * k_dim;
      double* EDGEDRIFT_RESTRICT cr = crow + r * n;
      for (std::size_t j = tail_j; j < n; ++j) {
        double acc = 0.0;
        const double* EDGEDRIFT_RESTRICT bcol = b.data() + j;
        for (std::size_t kk = 0; kk < k_dim; ++kk) {
          acc = simd::madd(ar[kk], bcol[kk * n], acc);
        }
        cr[j] = acc;
      }
    }
  }
}

}  // namespace

Matrix matmul(ConstMatrixView a, const Matrix& b) {
  EDGEDRIFT_ASSERT(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix c;
  c.resize_discard(a.rows(), b.cols());
  matmul_rows(a, b, c, 0, a.rows(), pack_b(b));
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_at_b_into(a, b, c);
  return c;
}

void matmul_at_b_into(const Matrix& a, const Matrix& b, Matrix& c) {
  EDGEDRIFT_ASSERT(a.rows() == b.rows(), "matmul_at_b shape mismatch");
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  const std::size_t k_dim = a.rows();
  c.resize_zero(m, n);
  // Outer-product accumulation: contiguous on both inputs and the output,
  // one scaled_accumulate per (k, i) so every C element is a madd chain.
  for (std::size_t k = 0; k < k_dim; ++k) {
    const double* arow = a.data() + k * m;
    const double* brow = b.data() + k * n;
    for (std::size_t i = 0; i < m; ++i) {
      simd::scaled_accumulate(arow[i], brow, c.data() + i * n, n);
    }
  }
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  EDGEDRIFT_ASSERT(a.cols() == b.cols(), "matmul_a_bt shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  const std::size_t k_dim = a.cols();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.data() + i * k_dim;
    double* crow = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      crow[j] = simd::dot_product(arow, b.data() + j * k_dim, k_dim);
    }
  }
  return c;
}

Matrix matmul_parallel(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_parallel_into(a, b, c);
  return c;
}

void matmul_into(ConstMatrixView a, const Matrix& b, Matrix& c) {
  EDGEDRIFT_ASSERT(a.cols() == b.rows(), "matmul shape mismatch");
  c.resize_discard(a.rows(), b.cols());
  matmul_rows(a, b, c, 0, a.rows(), pack_b(b));
}

void matmul_parallel_into(ConstMatrixView a, const Matrix& b, Matrix& c) {
  EDGEDRIFT_ASSERT(a.cols() == b.rows(), "matmul shape mismatch");
  c.resize_discard(a.rows(), b.cols());
  // B is packed once by the caller; workers only read the panels. Below
  // ~1M multiply-adds the pool dispatch costs more than it saves.
  const double* packed = pack_b(b);
  const std::size_t flops = a.rows() * a.cols() * b.cols();
  if (flops < (1u << 20)) {
    matmul_rows(a, b, c, 0, a.rows(), packed);
    return;
  }
  util::ThreadPool::global().parallel_for(
      0, a.rows(),
      [&](std::size_t lo, std::size_t hi) {
        matmul_rows(a, b, c, lo, hi, packed);
      },
      /*min_chunk=*/16);
}

void pack_gemm_b(const Matrix& b, PackedGemmB& out) {
  pack_b_into(b, out.panels);
  out.rows = b.rows();
  out.cols = b.cols();
}

void matmul_packed_parallel_into(ConstMatrixView a, const Matrix& b,
                                 const PackedGemmB& packed, Matrix& c) {
  EDGEDRIFT_ASSERT(a.cols() == b.rows(), "matmul shape mismatch");
  EDGEDRIFT_ASSERT(packed.rows == b.rows() && packed.cols == b.cols(),
                   "packed panels do not match B");
  c.resize_discard(a.rows(), b.cols());
  const double* pp = packed.panels.data();
  const std::size_t flops = a.rows() * a.cols() * b.cols();
  if (flops < (1u << 20)) {
    matmul_rows(a, b, c, 0, a.rows(), pp);
    return;
  }
  util::ThreadPool::global().parallel_for(
      0, a.rows(),
      [&](std::size_t lo, std::size_t hi) {
        matmul_rows(a, b, c, lo, hi, pp);
      },
      /*min_chunk=*/16);
}

void matvec(const Matrix& a, std::span<const double> x, std::span<double> y) {
  EDGEDRIFT_ASSERT(a.cols() == x.size(), "matvec input size mismatch");
  EDGEDRIFT_ASSERT(a.rows() == y.size(), "matvec output size mismatch");
  const std::size_t n = a.cols();
  const double* EDGEDRIFT_RESTRICT xp = x.data();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = simd::dot_product(a.data() + i * n, xp, n);
  }
}

void matvec_transposed(const Matrix& a, std::span<const double> x,
                       std::span<double> y) {
  EDGEDRIFT_ASSERT(a.rows() == x.size(), "matvec_t input size mismatch");
  EDGEDRIFT_ASSERT(a.cols() == y.size(), "matvec_t output size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  const std::size_t n = a.cols();
  double* EDGEDRIFT_RESTRICT yp = y.data();
  // Per element of y this is an ascending-i madd chain — the scalar twin of
  // the GEMM microkernel's accumulation, which keeps hidden()/predict()
  // bit-identical to hidden_batch()/score_batch() rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    simd::scaled_accumulate(x[i], a.data() + i * n, yp, n);
  }
}

void matvec_transposed(const MatrixF32& a, std::span<const float> x,
                       std::span<float> y) {
  EDGEDRIFT_ASSERT(a.rows() == x.size(), "matvec_t input size mismatch");
  EDGEDRIFT_ASSERT(a.cols() == y.size(), "matvec_t output size mismatch");
  const std::size_t n = a.cols();
  float* EDGEDRIFT_RESTRICT yp = y.data();
  if (a.rows() == 0) {
    std::fill(y.begin(), y.end(), 0.0f);
    return;
  }
  // Row 0 seeds the chain through scaled_copy — no pre-zeroing pass.
  simd::scaled_copy(x[0], a.data(), yp, n);
  for (std::size_t i = 1; i < a.rows(); ++i) {
    simd::scaled_accumulate(x[i], a.data() + i * n, yp, n);
  }
}

namespace {

/// C[row_lo:row_hi) = A * B, f32. Each output row is a matvec_transposed of
/// B against A's row: scaled_copy seeds at k=0, ascending-k
/// scaled_accumulate links after — one maddf chain per element, no output
/// pre-zeroing, B read straight from cache.
void matmul_rows_f32(ConstMatrixViewT<float> a, const MatrixF32& b,
                     MatrixF32& c, std::size_t row_lo, std::size_t row_hi) {
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = row_lo; i < row_hi; ++i) {
    const float* EDGEDRIFT_RESTRICT arow = a.data() + i * k_dim;
    float* EDGEDRIFT_RESTRICT crow = c.data() + i * n;
    if (k_dim == 0) {
      std::fill(crow, crow + n, 0.0f);
      continue;
    }
    simd::scaled_copy(arow[0], b.data(), crow, n);
    for (std::size_t kk = 1; kk < k_dim; ++kk) {
      simd::scaled_accumulate(arow[kk], b.data() + kk * n, crow, n);
    }
  }
}

}  // namespace

void matmul_into(ConstMatrixViewT<float> a, const MatrixF32& b, MatrixF32& c) {
  EDGEDRIFT_ASSERT(a.cols() == b.rows(), "matmul shape mismatch");
  c.resize_discard(a.rows(), b.cols());
  matmul_rows_f32(a, b, c, 0, a.rows());
}

void matmul_parallel_into(ConstMatrixViewT<float> a, const MatrixF32& b,
                          MatrixF32& c) {
  EDGEDRIFT_ASSERT(a.cols() == b.rows(), "matmul shape mismatch");
  c.resize_discard(a.rows(), b.cols());
  const std::size_t flops = a.rows() * a.cols() * b.cols();
  if (flops < (1u << 20)) {
    matmul_rows_f32(a, b, c, 0, a.rows());
    return;
  }
  util::ThreadPool::global().parallel_for(
      0, a.rows(),
      [&](std::size_t lo, std::size_t hi) { matmul_rows_f32(a, b, c, lo, hi); },
      /*min_chunk=*/16);
}

void ger(Matrix& a, double alpha, std::span<const double> u,
         std::span<const double> v) {
  EDGEDRIFT_ASSERT(a.rows() == u.size() && a.cols() == v.size(),
                   "ger shape mismatch");
  const std::size_t n = a.cols();
  const double* EDGEDRIFT_RESTRICT vp = v.data();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    simd::scaled_accumulate(alpha * u[i], vp, a.data() + i * n, n);
  }
}

void ger_block(Matrix& a, std::size_t col_begin, double alpha,
               std::span<const double> u, std::span<const double> v) {
  EDGEDRIFT_ASSERT(a.rows() == u.size(), "ger_block row mismatch");
  EDGEDRIFT_ASSERT(col_begin + v.size() <= a.cols(),
                   "ger_block column block out of range");
  const std::size_t n = a.cols();
  const std::size_t bn = v.size();
  const double* EDGEDRIFT_RESTRICT vp = v.data();
  // Same per-row scaled_accumulate as ger(), applied to the strided block:
  // each block element receives exactly the madd a dense ger would apply.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    simd::scaled_accumulate(alpha * u[i], vp, a.data() + i * n + col_begin,
                            bn);
  }
}

}  // namespace edgedrift::linalg
