#include "edgedrift/linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  EDGEDRIFT_DASSERT(a.size() == b.size(), "dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm1(std::span<const double> a) {
  double acc = 0.0;
  for (double v : a) acc += std::abs(v);
  return acc;
}

double l2_distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_l2_distance(a, b));
}

double squared_l2_distance(std::span<const double> a,
                           std::span<const double> b) {
  EDGEDRIFT_DASSERT(a.size() == b.size(), "distance size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double l1_distance(std::span<const double> a, std::span<const double> b) {
  EDGEDRIFT_DASSERT(a.size() == b.size(), "distance size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  EDGEDRIFT_DASSERT(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void copy(std::span<const double> src, std::span<double> dst) {
  EDGEDRIFT_DASSERT(src.size() == dst.size(), "copy size mismatch");
  std::copy(src.begin(), src.end(), dst.begin());
}

void fill(std::span<double> v, double value) {
  std::fill(v.begin(), v.end(), value);
}

void running_mean_update(std::span<double> mean, std::span<const double> x,
                         std::size_t count) {
  EDGEDRIFT_DASSERT(mean.size() == x.size(), "running mean size mismatch");
  const double n = static_cast<double>(count);
  const double inv = 1.0 / (n + 1.0);
  for (std::size_t i = 0; i < mean.size(); ++i) {
    mean[i] = (mean[i] * n + x[i]) * inv;
  }
}

void ewma_update(std::span<double> mean, std::span<const double> x,
                 double decay) {
  EDGEDRIFT_DASSERT(mean.size() == x.size(), "ewma size mismatch");
  EDGEDRIFT_DASSERT(decay >= 0.0 && decay <= 1.0, "decay must be in [0,1]");
  for (std::size_t i = 0; i < mean.size(); ++i) {
    mean[i] = decay * mean[i] + (1.0 - decay) * x[i];
  }
}

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double stddev_population(std::span<const double> v) {
  if (v.empty()) return 0.0;
  const double mu = mean(v);
  double acc = 0.0;
  for (double x : v) {
    const double d = x - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(v.size()));
}

}  // namespace edgedrift::linalg
