// Vectorized span kernels over the simd.hpp backend. The per-sample
// detector primitives (distances, running means) are the hottest scalar
// loops in the system, so they run on the same lane layer as the GEMM.
//
// Reductions (dot, distances, mean) use multiple accumulators and are
// tolerance-comparable — not bit-identical — to a naive ascending loop.
// Elementwise updates (axpy, running means) are exact per element, so their
// vectorization is rounding-neutral.
#include "edgedrift/linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/linalg/simd.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  EDGEDRIFT_DASSERT(a.size() == b.size(), "dot size mismatch");
  return simd::dot_product(a.data(), b.data(), a.size());
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm1(std::span<const double> a) {
  using simd::VDouble;
  const double* EDGEDRIFT_RESTRICT p = a.data();
  const std::size_t n = a.size();
  VDouble acc = simd::vzero();
  std::size_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    acc = simd::vadd(acc, simd::vabs(simd::vload(p + i)));
  }
  double total = simd::vreduce_add(acc);
  for (; i < n; ++i) total += std::abs(p[i]);
  return total;
}

double l2_distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_l2_distance(a, b));
}

double squared_l2_distance(std::span<const double> a,
                           std::span<const double> b) {
  EDGEDRIFT_DASSERT(a.size() == b.size(), "distance size mismatch");
  using simd::VDouble;
  const double* EDGEDRIFT_RESTRICT pa = a.data();
  const double* EDGEDRIFT_RESTRICT pb = b.data();
  const std::size_t n = a.size();
  VDouble acc0 = simd::vzero();
  VDouble acc1 = simd::vzero();
  std::size_t i = 0;
  for (; i + 2 * simd::kLanes <= n; i += 2 * simd::kLanes) {
    const VDouble d0 = simd::vsub(simd::vload(pa + i), simd::vload(pb + i));
    const VDouble d1 = simd::vsub(simd::vload(pa + i + simd::kLanes),
                                  simd::vload(pb + i + simd::kLanes));
    acc0 = simd::vfmadd(d0, d0, acc0);
    acc1 = simd::vfmadd(d1, d1, acc1);
  }
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const VDouble d = simd::vsub(simd::vload(pa + i), simd::vload(pb + i));
    acc0 = simd::vfmadd(d, d, acc0);
  }
  double acc = simd::vreduce_add(simd::vadd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = pa[i] - pb[i];
    acc = simd::madd(d, d, acc);
  }
  return acc;
}

float squared_l2_distance(std::span<const float> a, std::span<const float> b) {
  EDGEDRIFT_DASSERT(a.size() == b.size(), "distance size mismatch");
  using simd::VFloat;
  const float* EDGEDRIFT_RESTRICT pa = a.data();
  const float* EDGEDRIFT_RESTRICT pb = b.data();
  const std::size_t n = a.size();
  VFloat acc0 = simd::vzero_f();
  VFloat acc1 = simd::vzero_f();
  std::size_t i = 0;
  for (; i + 2 * simd::kLanesF32 <= n; i += 2 * simd::kLanesF32) {
    const VFloat d0 = simd::vsub(simd::vload(pa + i), simd::vload(pb + i));
    const VFloat d1 = simd::vsub(simd::vload(pa + i + simd::kLanesF32),
                                 simd::vload(pb + i + simd::kLanesF32));
    acc0 = simd::vfmadd(d0, d0, acc0);
    acc1 = simd::vfmadd(d1, d1, acc1);
  }
  for (; i + simd::kLanesF32 <= n; i += simd::kLanesF32) {
    const VFloat d = simd::vsub(simd::vload(pa + i), simd::vload(pb + i));
    acc0 = simd::vfmadd(d, d, acc0);
  }
  float acc = simd::vreduce_add(simd::vadd(acc0, acc1));
  for (; i < n; ++i) {
    const float d = pa[i] - pb[i];
    acc = simd::maddf(d, d, acc);
  }
  return acc;
}

void narrow(std::span<const double> src, std::span<float> dst) {
  EDGEDRIFT_DASSERT(src.size() == dst.size(), "narrow size mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<float>(src[i]);
  }
}

double l1_distance(std::span<const double> a, std::span<const double> b) {
  EDGEDRIFT_DASSERT(a.size() == b.size(), "distance size mismatch");
  using simd::VDouble;
  const double* EDGEDRIFT_RESTRICT pa = a.data();
  const double* EDGEDRIFT_RESTRICT pb = b.data();
  const std::size_t n = a.size();
  VDouble acc0 = simd::vzero();
  VDouble acc1 = simd::vzero();
  std::size_t i = 0;
  for (; i + 2 * simd::kLanes <= n; i += 2 * simd::kLanes) {
    acc0 = simd::vadd(
        acc0, simd::vabs(simd::vsub(simd::vload(pa + i), simd::vload(pb + i))));
    acc1 = simd::vadd(
        acc1, simd::vabs(simd::vsub(simd::vload(pa + i + simd::kLanes),
                                    simd::vload(pb + i + simd::kLanes))));
  }
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    acc0 = simd::vadd(
        acc0, simd::vabs(simd::vsub(simd::vload(pa + i), simd::vload(pb + i))));
  }
  double total = simd::vreduce_add(simd::vadd(acc0, acc1));
  for (; i < n; ++i) total += std::abs(pa[i] - pb[i]);
  return total;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  EDGEDRIFT_DASSERT(x.size() == y.size(), "axpy size mismatch");
  simd::scaled_accumulate(alpha, x.data(), y.data(), x.size());
}

void copy(std::span<const double> src, std::span<double> dst) {
  EDGEDRIFT_DASSERT(src.size() == dst.size(), "copy size mismatch");
  std::copy(src.begin(), src.end(), dst.begin());
}

void fill(std::span<double> v, double value) {
  std::fill(v.begin(), v.end(), value);
}

void running_mean_update(std::span<double> mean, std::span<const double> x,
                         std::size_t count) {
  EDGEDRIFT_DASSERT(mean.size() == x.size(), "running mean size mismatch");
  const double n = static_cast<double>(count);
  const double inv = 1.0 / (n + 1.0);
  double* EDGEDRIFT_RESTRICT m = mean.data();
  const double* EDGEDRIFT_RESTRICT xs = x.data();
  for (std::size_t i = 0; i < mean.size(); ++i) {
    m[i] = (m[i] * n + xs[i]) * inv;
  }
}

void ewma_update(std::span<double> mean, std::span<const double> x,
                 double decay) {
  EDGEDRIFT_DASSERT(mean.size() == x.size(), "ewma size mismatch");
  EDGEDRIFT_DASSERT(decay >= 0.0 && decay <= 1.0, "decay must be in [0,1]");
  const double w = 1.0 - decay;
  double* EDGEDRIFT_RESTRICT m = mean.data();
  const double* EDGEDRIFT_RESTRICT xs = x.data();
  for (std::size_t i = 0; i < mean.size(); ++i) {
    m[i] = decay * m[i] + w * xs[i];
  }
}

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double stddev_population(std::span<const double> v) {
  if (v.empty()) return 0.0;
  const double mu = mean(v);
  double acc = 0.0;
  for (double x : v) {
    const double d = x - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(v.size()));
}

}  // namespace edgedrift::linalg
