#include "edgedrift/linalg/matrix.hpp"

#include "edgedrift/util/rng.hpp"

namespace edgedrift::linalg {

// The rng-dependent factories live here so matrix.hpp does not pull in the
// Rng header; everything else is inline in the header since the
// templatization. The static_cast matters only for the int8 instantiation
// (test fixtures drawing small integer payloads); double/float narrow as
// usual.
template <typename T>
MatrixT<T> MatrixT<T>::random_uniform(std::size_t rows, std::size_t cols,
                                      util::Rng& rng, double lo, double hi) {
  MatrixT out(rows, cols);
  for (auto& v : out.data_) v = static_cast<T>(rng.uniform(lo, hi));
  return out;
}

template <typename T>
MatrixT<T> MatrixT<T>::random_gaussian(std::size_t rows, std::size_t cols,
                                       util::Rng& rng, double stddev) {
  MatrixT out(rows, cols);
  for (auto& v : out.data_) v = static_cast<T>(rng.gaussian(0.0, stddev));
  return out;
}

// The three tier scalars of the numerics contract (linalg/numerics.hpp).
template class MatrixT<double>;
template class MatrixT<float>;
template class MatrixT<std::int8_t>;

}  // namespace edgedrift::linalg
