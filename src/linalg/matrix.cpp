#include "edgedrift/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/util/rng.hpp"

namespace edgedrift::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    EDGEDRIFT_ASSERT(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::resize_zero(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  const std::size_t n = rows * cols;
  // Grow-only: once a workspace matrix has reached its high-water capacity,
  // repeat batches of any size up to it must not touch the heap (the batch
  // scoring loop relies on this; pinned by tests/test_allocation_free.cpp).
  // vector::resize never reallocates when n <= capacity; assign() makes no
  // such guarantee, so it is only used on genuine growth.
  if (n <= data_.capacity()) {
    data_.resize(n);
    std::fill(data_.begin(), data_.end(), 0.0);
  } else {
    data_.assign(n, 0.0);
  }
}

void Matrix::resize_discard(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // Same grow-only guarantee as resize_zero; newly exposed elements keep
  // whatever value the storage held (zero only on genuine growth, where
  // vector::resize value-initializes the tail).
  data_.resize(rows * cols);
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::set_row(std::size_t r, std::span<const double> src) {
  EDGEDRIFT_ASSERT(r < rows_, "row index out of range");
  EDGEDRIFT_ASSERT(src.size() == cols_, "row length mismatch");
  std::copy(src.begin(), src.end(), data_.begin() + r * cols_);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

Matrix Matrix::slice_rows(std::size_t begin, std::size_t end) const {
  EDGEDRIFT_ASSERT(begin <= end && end <= rows_, "slice_rows out of range");
  Matrix out(end - begin, cols_);
  std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
            out.data_.begin());
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  EDGEDRIFT_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                   "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  EDGEDRIFT_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                   "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  EDGEDRIFT_ASSERT(a.rows_ == b.rows_ && a.cols_ == b.cols_,
                   "shape mismatch in max_abs_diff");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst, std::abs(a.data_[i] - b.data_[i]));
  }
  return worst;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols,
                              util::Rng& rng, double lo, double hi) {
  Matrix out(rows, cols);
  for (auto& v : out.data_) v = rng.uniform(lo, hi);
  return out;
}

Matrix Matrix::random_gaussian(std::size_t rows, std::size_t cols,
                               util::Rng& rng, double stddev) {
  Matrix out(rows, cols);
  for (auto& v : out.data_) v = rng.gaussian(0.0, stddev);
  return out;
}

}  // namespace edgedrift::linalg
