#include "edgedrift/linalg/solve.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::linalg {

std::optional<LuFactorization> lu_factor(const Matrix& a) {
  EDGEDRIFT_ASSERT(a.rows() == a.cols(), "LU needs a square matrix");
  const std::size_t n = a.rows();
  LuFactorization f{a, std::vector<std::size_t>(n), 1};
  for (std::size_t i = 0; i < n; ++i) f.piv[i] = i;

  Matrix& lu = f.lu;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |value| in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-13) return std::nullopt;
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(pivot, j));
      std::swap(f.piv[k], f.piv[pivot]);
      f.sign = -f.sign;
    }
    const double inv_diag = 1.0 / lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu(i, k) * inv_diag;
      lu(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= factor * lu(k, j);
    }
  }
  return f;
}

void lu_solve(const LuFactorization& f, std::span<const double> b,
              std::span<double> x) {
  const std::size_t n = f.lu.rows();
  EDGEDRIFT_ASSERT(b.size() == n && x.size() == n, "lu_solve size mismatch");
  // Forward substitution with the permuted right-hand side.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[f.piv[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= f.lu(i, j) * x[j];
    x[i] = acc;
  }
  // Backward substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= f.lu(ii, j) * x[j];
    x[ii] = acc / f.lu(ii, ii);
  }
}

Matrix lu_solve_matrix(const LuFactorization& f, const Matrix& b) {
  const std::size_t n = f.lu.rows();
  EDGEDRIFT_ASSERT(b.rows() == n, "lu_solve_matrix shape mismatch");
  Matrix x(n, b.cols());
  std::vector<double> col(n), sol(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    lu_solve(f, col, sol);
    for (std::size_t r = 0; r < n; ++r) x(r, c) = sol[r];
  }
  return x;
}

std::optional<Matrix> inverse(const Matrix& a) {
  auto f = lu_factor(a);
  if (!f) return std::nullopt;
  return lu_solve_matrix(*f, Matrix::identity(a.rows()));
}

std::optional<Matrix> cholesky(const Matrix& a) {
  EDGEDRIFT_ASSERT(a.rows() == a.cols(), "Cholesky needs a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        if (acc <= 0.0) return std::nullopt;
        l(i, j) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  return l;
}

void cholesky_solve(const Matrix& l, std::span<const double> b,
                    std::span<double> x) {
  const std::size_t n = l.rows();
  EDGEDRIFT_ASSERT(b.size() == n && x.size() == n,
                   "cholesky_solve size mismatch");
  // L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l(i, j) * x[j];
    x[i] = acc / l(i, i);
  }
  // L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l(j, ii) * x[j];
    x[ii] = acc / l(ii, ii);
  }
}

std::optional<Matrix> spd_inverse(const Matrix& a) {
  auto l = cholesky(a);
  if (!l) return std::nullopt;
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0), col(n);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    cholesky_solve(*l, e, col);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
    e[c] = 0.0;
  }
  return inv;
}

Matrix regularized_gram_inverse(const Matrix& a, double lambda) {
  EDGEDRIFT_ASSERT(lambda > 0.0, "regularization must be positive");
  Matrix gram = matmul_at_b(a, a);
  for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  auto inv = spd_inverse(gram);
  EDGEDRIFT_ASSERT(inv.has_value(),
                   "regularized Gram matrix must be positive definite");
  return std::move(*inv);
}

Matrix regularized_pinv(const Matrix& a, double lambda) {
  // (A^T A + lambda I)^-1 A^T.
  return matmul_a_bt(regularized_gram_inverse(a, lambda), a);
}

Matrix ridge_least_squares(const Matrix& a, const Matrix& b, double lambda) {
  EDGEDRIFT_ASSERT(a.rows() == b.rows(), "ridge shape mismatch");
  return matmul(regularized_gram_inverse(a, lambda), matmul_at_b(a, b));
}

}  // namespace edgedrift::linalg
