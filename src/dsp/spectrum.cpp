#include "edgedrift/dsp/spectrum.hpp"

#include <cmath>
#include <vector>

#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::dsp {
namespace {

constexpr double kTwoPi = 6.28318530717958647692;
constexpr double kFundamentalHz = 50.0;  // Matches FanSpectrumConcept.
constexpr double kBladePassHz = 350.0;   // 7 blades x 50 Hz.

}  // namespace

SpectrumExtractor::SpectrumExtractor(std::size_t frame_size, Window window)
    : frame_size_(frame_size), window_(window) {
  EDGEDRIFT_ASSERT(is_power_of_two(frame_size_) && frame_size_ >= 8,
                   "frame size must be a power of two >= 8");
}

void SpectrumExtractor::extract(std::span<const double> frame,
                                std::span<double> out) const {
  EDGEDRIFT_ASSERT(frame.size() == frame_size_, "frame size mismatch");
  EDGEDRIFT_ASSERT(out.size() == output_dim(), "output size mismatch");
  std::vector<double> windowed(frame.begin(), frame.end());
  apply_window(window_, windowed);
  const std::vector<double> magnitudes = magnitude_spectrum(windowed);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = magnitudes[i];
}

std::vector<double> SpectrumExtractor::extract(
    std::span<const double> frame) const {
  std::vector<double> out(output_dim());
  extract(frame, out);
  return out;
}

FanWaveform::FanWaveform(data::FanCondition condition,
                         data::FanEnvironment environment)
    : condition_(condition), environment_(environment) {}

void FanWaveform::synthesize(util::Rng& rng, std::span<double> frame) {
  const double noise_sigma =
      environment_ == data::FanEnvironment::kSilent ? 0.3 : 1.2;
  // Per-frame speed wobble, as in the spectral generator.
  const double jitter = rng.uniform(0.97, 1.03);
  const double f0 = kFundamentalHz * jitter;

  // Damage-dependent component amplitudes (mirroring FanSpectrumConcept).
  const double fundamental_gain =
      condition_ == data::FanCondition::kChipped ? 2.2 : 1.0;
  double bpf_amp = 0.5;
  double sideband_amp = 0.0;
  double subharmonic_amp = 0.0;
  double extra_noise = 0.0;
  switch (condition_) {
    case data::FanCondition::kNormal:
      break;
    case data::FanCondition::kHoles:
      bpf_amp = 1.8;
      sideband_amp = 0.8;
      extra_noise = 0.4;
      break;
    case data::FanCondition::kChipped:
      bpf_amp = 0.7;
      subharmonic_amp = 0.9;
      extra_noise = 0.5;
      break;
  }

  const double dt = 1.0 / kSampleRate;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const double revolutions = phase_ + f0 * dt * static_cast<double>(i);
    double x = 0.0;
    // Harmonic series of the rotation frequency, 1/k amplitudes.
    for (int k = 1; k * kFundamentalHz < kSampleRate / 2.0; ++k) {
      double amplitude = 1.0 / static_cast<double>(k);
      if (k == 1) amplitude *= fundamental_gain;
      x += amplitude * std::sin(kTwoPi * k * revolutions);
    }
    // Blade-pass component and damage signatures.
    const double bp_ratio = kBladePassHz / kFundamentalHz;
    x += bpf_amp * std::sin(kTwoPi * bp_ratio * revolutions + 0.7);
    if (sideband_amp > 0.0) {
      x += sideband_amp * std::sin(kTwoPi * (bp_ratio - 1.0) * revolutions);
      x += sideband_amp * std::sin(kTwoPi * (bp_ratio + 1.0) * revolutions);
    }
    if (subharmonic_amp > 0.0) {
      x += subharmonic_amp * std::sin(kTwoPi * 0.5 * revolutions + 0.3);
    }
    x += rng.gaussian(0.0, noise_sigma + extra_noise);
    frame[i] = x;
  }
  phase_ += f0 * dt * static_cast<double>(frame.size());
  phase_ -= std::floor(phase_);  // Keep the phase accumulator bounded.
}

}  // namespace edgedrift::dsp
