#include "edgedrift/dsp/fft.hpp"

#include <cmath>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::dsp {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

void fft(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  EDGEDRIFT_ASSERT(is_power_of_two(n), "FFT length must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterfly passes.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / double(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void ifft(std::span<std::complex<double>> data) {
  fft(data, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v *= inv_n;
}

std::vector<std::complex<double>> fft_real(std::span<const double> signal) {
  std::vector<std::complex<double>> data(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    data[i] = std::complex<double>(signal[i], 0.0);
  }
  fft(data);
  return data;
}

std::vector<double> magnitude_spectrum(std::span<const double> signal) {
  EDGEDRIFT_ASSERT(signal.size() >= 4, "frame too short");
  const auto spectrum = fft_real(signal);
  const std::size_t half = signal.size() / 2;
  std::vector<double> magnitudes(half - 1);
  const double scale = 2.0 / static_cast<double>(signal.size());
  for (std::size_t k = 1; k < half; ++k) {
    magnitudes[k - 1] = std::abs(spectrum[k]) * scale;
  }
  return magnitudes;
}

void apply_window(Window window, std::span<double> frame) {
  const std::size_t n = frame.size();
  if (n == 0) return;
  switch (window) {
    case Window::kRectangular:
      break;
    case Window::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        frame[i] *= 0.5 - 0.5 * std::cos(2.0 * kPi * double(i) / double(n));
      }
      break;
    case Window::kHamming:
      for (std::size_t i = 0; i < n; ++i) {
        frame[i] *=
            0.54 - 0.46 * std::cos(2.0 * kPi * double(i) / double(n));
      }
      break;
  }
}

}  // namespace edgedrift::dsp
