#include "edgedrift/obs/snapshot.hpp"

#include <cinttypes>
#include <cstdio>

#include "edgedrift/linalg/simd.hpp"
#include "edgedrift/util/table.hpp"

namespace edgedrift::obs {
namespace {

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

/// "12.3 us"-style rendering of a nanosecond figure.
std::string fmt_ns(double ns) {
  char buf[32];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  }
  return buf;
}

const char* action_name(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::kNone:
      return "detect-only";
    case RecoveryAction::kReconstruct:
      return "reconstruct";
    case RecoveryAction::kRecalibrate:
      return "recalibrate";
  }
  return "?";
}

void append_histogram_row(util::Table& table, std::size_t stream,
                          const char* stage, const HistogramSnapshot& h) {
  const std::uint64_t n = h.count();
  if (n == 0) return;
  table.add_row({std::to_string(stream), stage, fmt_u64(n),
                 fmt_ns(h.mean_ns()),
                 fmt_ns(static_cast<double>(h.quantile_upper_ns(0.5))),
                 fmt_ns(static_cast<double>(h.quantile_upper_ns(0.99))),
                 fmt_ns(static_cast<double>(h.max_ns))});
}

void append_histogram_json(std::string& out, const char* name,
                           const HistogramSnapshot& h, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "        \"%s\": {\"count\": %" PRIu64
                ", \"mean_ns\": %.1f, \"p50_ns\": %" PRIu64
                ", \"p99_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64 "}%s\n",
                name, h.count(), h.mean_ns(), h.quantile_upper_ns(0.5),
                h.quantile_upper_ns(0.99), h.max_ns, last ? "" : ",");
  out += buf;
}

}  // namespace

CounterSnapshot Snapshot::totals() const {
  CounterSnapshot total;
  for (const StreamSnapshot& s : streams) total += s.counters;
  return total;
}

std::string Snapshot::to_text() const {
  std::string out;

  util::Table counters({"Stream", "in", "out", "rejected", "windows",
                        "drifts", "retrains", "chunk-upd", "chunk-rows",
                        "requant-saved", "ring-hw"});
  for (const StreamSnapshot& s : streams) {
    const CounterSnapshot& c = s.counters;
    counters.add_row({std::to_string(s.stream_id), fmt_u64(c.samples_in),
                      fmt_u64(c.samples_out), fmt_u64(c.rejected),
                      fmt_u64(c.windows_opened), fmt_u64(c.drifts),
                      fmt_u64(c.retrains), fmt_u64(c.chunk_trains),
                      fmt_u64(c.chunk_train_rows), fmt_u64(c.requants_saved),
                      fmt_u64(c.ring_high_water)});
  }
  if (streams.size() > 1) {
    const CounterSnapshot c = totals();
    counters.add_row({"total", fmt_u64(c.samples_in),
                      fmt_u64(c.samples_out), fmt_u64(c.rejected),
                      fmt_u64(c.windows_opened), fmt_u64(c.drifts),
                      fmt_u64(c.retrains), fmt_u64(c.chunk_trains),
                      fmt_u64(c.chunk_train_rows), fmt_u64(c.requants_saved),
                      fmt_u64(c.ring_high_water)});
  }
  out += "counters:\n" + counters.str() + "\n";

  util::Table latency({"Stream", "Stage", "count", "mean", "p50<=",
                       "p99<=", "max"});
  for (const StreamSnapshot& s : streams) {
    append_histogram_row(latency, s.stream_id, "submit->drain",
                         s.submit_to_drain);
    append_histogram_row(latency, s.stream_id, "score", s.score);
    append_histogram_row(latency, s.stream_id, "detect", s.detect);
    append_histogram_row(latency, s.stream_id, "reconstruct",
                         s.reconstruct);
  }
  if (latency.rows() > 0) {
    out += "latency (log2 buckets; per-sample stages time every Nth "
           "sample):\n" +
           latency.str() + "\n";
  }

  if (!shards.empty()) {
    util::Table shard_table({"Shard", "hot", "cold", "hot-bytes",
                             "cold-bytes", "evictions", "restores",
                             "evict-p99<=", "restore-p99<=", "parks",
                             "pinned"});
    for (const ShardSnapshot& sh : shards) {
      shard_table.add_row(
          {std::to_string(sh.shard_id), fmt_u64(sh.hot_streams),
           fmt_u64(sh.cold_streams), fmt_u64(sh.hot_bytes),
           fmt_u64(sh.cold_bytes), fmt_u64(sh.evictions),
           fmt_u64(sh.restores),
           fmt_ns(static_cast<double>(sh.evict_ns.quantile_upper_ns(0.99))),
           fmt_ns(static_cast<double>(
               sh.restore_ns.quantile_upper_ns(0.99))),
           fmt_u64(sh.worker_parks), sh.pinned ? "yes" : "no"});
    }
    out += "shards:\n" + shard_table.str() + "\n";

    util::Table coalesce_table({"Shard", "gemms", "rows", "streams",
                                "rows/gemm", "fallbacks"});
    bool any_coalescing = false;
    for (const ShardSnapshot& sh : shards) {
      if (sh.coalesced_gemms > 0 || sh.coalesce_fallbacks > 0) {
        any_coalescing = true;
      }
      coalesce_table.add_row(
          {std::to_string(sh.shard_id), fmt_u64(sh.coalesced_gemms),
           fmt_u64(sh.coalesced_rows), fmt_u64(sh.coalesced_streams),
           util::fmt(sh.rows_per_gemm(), 1),
           fmt_u64(sh.coalesce_fallbacks)});
    }
    if (any_coalescing) {
      out += "coalesced drains (shared-projection mega-batches):\n" +
             coalesce_table.str() + "\n";
    }
  }

  util::Table journal({"Stream", "sample", "statistic", "theta", "window",
                       "action", "recovery"});
  for (const StreamSnapshot& s : streams) {
    for (const DriftEvent& e : s.journal) {
      journal.add_row(
          {std::to_string(s.stream_id), fmt_u64(e.sample_index),
           util::fmt(e.statistic, 4), util::fmt(e.theta_drift, 4),
           std::to_string(e.window_span), action_name(e.action),
           e.completed ? fmt_u64(e.recovery_samples) + " samples"
                       : std::string("running")});
    }
  }
  if (journal.rows() > 0) {
    out += "drift journal (most recent events):\n" + journal.str();
  } else {
    out += "drift journal: empty\n";
  }
  return out;
}

std::string Snapshot::to_json(std::string_view source) const {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"edgedrift-obs-v1\",\n";
  out += "  \"binary\": \"" + std::string(source) + "\",\n";
  out += "  \"simd\": \"" + std::string(linalg::simd::kLevelName) + "\",\n";
  out += "  \"streams\": [\n";
  char buf[768];
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const StreamSnapshot& s = streams[i];
    const CounterSnapshot& c = s.counters;
    std::snprintf(buf, sizeof(buf),
                  "    {\"id\": %zu,\n"
                  "      \"counters\": {\"samples_in\": %" PRIu64
                  ", \"samples_out\": %" PRIu64 ", \"rejected\": %" PRIu64
                  ", \"windows_opened\": %" PRIu64 ", \"drifts\": %" PRIu64
                  ", \"retrains\": %" PRIu64 ", \"chunk_trains\": %" PRIu64
                  ", \"chunk_train_rows\": %" PRIu64
                  ", \"requants_saved\": %" PRIu64
                  ", \"ring_high_water\": %" PRIu64 "},\n",
                  s.stream_id, c.samples_in, c.samples_out, c.rejected,
                  c.windows_opened, c.drifts, c.retrains, c.chunk_trains,
                  c.chunk_train_rows, c.requants_saved,
                  c.ring_high_water);
    out += buf;
    out += "      \"latency\": {\n";
    append_histogram_json(out, "submit_to_drain", s.submit_to_drain, false);
    append_histogram_json(out, "score", s.score, false);
    append_histogram_json(out, "detect", s.detect, false);
    append_histogram_json(out, "reconstruct", s.reconstruct, true);
    out += "      },\n";
    std::snprintf(buf, sizeof(buf),
                  "      \"drift_events_total\": %" PRIu64
                  ",\n      \"drift_events\": [",
                  s.drift_events_total);
    out += buf;
    for (std::size_t e = 0; e < s.journal.size(); ++e) {
      const DriftEvent& ev = s.journal[e];
      std::snprintf(buf, sizeof(buf),
                    "\n        {\"sample\": %" PRIu64
                    ", \"statistic\": %.6g, \"theta_drift\": %.6g, "
                    "\"window\": %u, \"action\": \"%s\", "
                    "\"completed\": %s, \"recovery_samples\": %" PRIu64
                    "}%s",
                    ev.sample_index, ev.statistic, ev.theta_drift,
                    ev.window_span, action_name(ev.action),
                    ev.completed ? "true" : "false", ev.recovery_samples,
                    e + 1 < s.journal.size() ? "," : "");
      out += buf;
    }
    out += s.journal.empty() ? "]\n" : "\n      ]\n";
    out += i + 1 < streams.size() ? "    },\n" : "    }\n";
  }
  out += shards.empty() ? "  ]\n" : "  ],\n";
  if (!shards.empty()) {
    out += "  \"shards\": [\n";
    for (std::size_t i = 0; i < shards.size(); ++i) {
      const ShardSnapshot& sh = shards[i];
      std::snprintf(buf, sizeof(buf),
                    "    {\"id\": %zu, \"pinned\": %s,\n"
                    "      \"hot_streams\": %" PRIu64
                    ", \"cold_streams\": %" PRIu64
                    ", \"hot_bytes\": %" PRIu64 ", \"cold_bytes\": %" PRIu64
                    ",\n"
                    "      \"evictions\": %" PRIu64 ", \"restores\": %" PRIu64
                    ", \"restore_failures\": %" PRIu64
                    ", \"evict_skipped\": %" PRIu64
                    ", \"worker_parks\": %" PRIu64 ",\n"
                    "      \"coalesced_gemms\": %" PRIu64
                    ", \"coalesced_rows\": %" PRIu64
                    ", \"coalesced_streams\": %" PRIu64
                    ", \"coalesce_fallbacks\": %" PRIu64 ",\n"
                    "      \"latency\": {\n",
                    sh.shard_id, sh.pinned ? "true" : "false",
                    sh.hot_streams, sh.cold_streams, sh.hot_bytes,
                    sh.cold_bytes, sh.evictions, sh.restores,
                    sh.restore_failures, sh.evict_skipped, sh.worker_parks,
                    sh.coalesced_gemms, sh.coalesced_rows,
                    sh.coalesced_streams, sh.coalesce_fallbacks);
      out += buf;
      append_histogram_json(out, "evict", sh.evict_ns, false);
      append_histogram_json(out, "restore", sh.restore_ns, true);
      out += "      }\n";
      out += i + 1 < shards.size() ? "    },\n" : "    }\n";
    }
    out += "  ]\n";
  }
  out += "}\n";
  return out;
}

bool Snapshot::write_json(const std::string& path,
                          std::string_view source) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json(source);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace edgedrift::obs
