#include "edgedrift/io/checkpoint.hpp"

#include <cmath>
#include <fstream>

#include "edgedrift/io/binary.hpp"

namespace edgedrift::io {
namespace {

constexpr const char* kSection = "edgedrift.pipeline";

void write_config(Writer& w, const core::PipelineConfig& config) {
  w.write_u64(config.num_labels);
  w.write_u64(config.input_dim);
  w.write_u64(config.hidden_dim);
  w.write_u32(static_cast<std::uint32_t>(config.activation));
  w.write_f64(config.weight_scale);
  w.write_f64(config.reg_lambda);
  w.write_f64(config.theta_error);
  w.write_f64(config.theta_error_z);
  w.write_f64(config.z);
  w.write_u64(config.window_size);
  w.write_f64(config.ewma_decay);
  w.write_u64(static_cast<std::uint64_t>(config.detector_initial_count));
  w.write_u64(config.reconstruction.n_search);
  w.write_u64(config.reconstruction.n_update);
  w.write_u64(config.reconstruction.n_total);
  w.write_u64(config.seed);
  w.write_u32(static_cast<std::uint32_t>(config.numerics));  // Format v2.
}

bool read_config(Reader& r, core::PipelineConfig& config) {
  std::uint64_t u64 = 0;
  std::uint32_t u32 = 0;
  if (!r.read_u64(u64)) return false;
  config.num_labels = u64;
  if (!r.read_u64(u64)) return false;
  config.input_dim = u64;
  if (!r.read_u64(u64)) return false;
  config.hidden_dim = u64;
  if (!r.read_u32(u32) || u32 > 3) return false;
  config.activation = static_cast<oselm::Activation>(u32);
  if (!r.read_f64(config.weight_scale)) return false;
  if (!r.read_f64(config.reg_lambda)) return false;
  if (!r.read_f64(config.theta_error)) return false;
  if (!r.read_f64(config.theta_error_z)) return false;
  if (!r.read_f64(config.z)) return false;
  if (!r.read_u64(u64)) return false;
  config.window_size = u64;
  if (!r.read_f64(config.ewma_decay)) return false;
  if (!r.read_u64(u64)) return false;
  config.detector_initial_count = static_cast<long>(u64);
  if (!r.read_u64(u64)) return false;
  config.reconstruction.n_search = u64;
  if (!r.read_u64(u64)) return false;
  config.reconstruction.n_update = u64;
  if (!r.read_u64(u64)) return false;
  config.reconstruction.n_total = u64;
  if (!r.read_u64(u64)) return false;
  config.seed = u64;
  if (!r.read_u32(u32) ||
      u32 > static_cast<std::uint32_t>(linalg::NumericsTier::kQuantI8)) {
    return false;
  }
  config.numerics = static_cast<linalg::NumericsTier>(u32);
  return true;
}

// A checkpoint's config bytes may be corrupted; every field must be proven
// sane BEFORE core::Pipeline's constructor allocates from it or trips an
// assertion on it.
bool config_is_sane(const core::PipelineConfig& config) {
  constexpr std::size_t kMaxLabels = 1u << 12;
  constexpr std::size_t kMaxDim = 1u << 20;
  constexpr std::size_t kMaxHidden = 1u << 16;
  constexpr std::size_t kMaxCount = 1u << 30;
  if (config.num_labels == 0 || config.num_labels > kMaxLabels) return false;
  if (config.input_dim == 0 || config.input_dim > kMaxDim) return false;
  if (config.hidden_dim == 0 || config.hidden_dim > kMaxHidden) return false;
  if (config.window_size == 0 || config.window_size > kMaxCount) {
    return false;
  }
  if (!(config.reg_lambda > 0.0) || !std::isfinite(config.reg_lambda)) {
    return false;
  }
  if (!std::isfinite(config.weight_scale) || !std::isfinite(config.z) ||
      !std::isfinite(config.theta_error) ||
      !std::isfinite(config.theta_error_z)) {
    return false;
  }
  if (!(config.ewma_decay >= 0.0) || config.ewma_decay >= 1.0) return false;
  const auto& recon = config.reconstruction;
  if (recon.n_total == 0 || recon.n_total > kMaxCount) return false;
  if (recon.n_search > recon.n_update || recon.n_update > recon.n_total ||
      recon.n_update > recon.n_total / 2) {
    return false;
  }
  return true;
}

}  // namespace

bool save_pipeline(std::ostream& out, const core::Pipeline& pipeline) {
  if (!pipeline.fitted()) return false;
  // The checkpoint format stores centroid-detector calibration; pipelines
  // configured with another detector kind have no serializable detector
  // state in this format.
  const drift::CentroidDetector* detector = pipeline.centroid_detector();
  if (detector == nullptr) return false;
  Writer w(out);
  w.write_header(kSection);
  write_config(w, pipeline.config());
  w.write_f64(pipeline.theta_error());

  // Shared projection weights (for integrity verification at load time),
  // followed by the projection fingerprint — the digest the serving layer
  // keys coalescing groups on. Persisting it lets load verify that the
  // rebuilt projection hashes to the same identity the save-side stream
  // grouped under, so a restored stream rejoins exactly its old group.
  const auto& projection = *pipeline.model().projection();
  w.write_matrix(projection.alpha());
  w.write_doubles(projection.bias());
  w.write_u64(projection.fingerprint());

  // Per-instance trained state.
  const auto& model = pipeline.model();
  w.write_u64(model.num_labels());
  for (std::size_t c = 0; c < model.num_labels(); ++c) {
    const auto& net = model.instance(c).net();
    w.write_matrix(net.beta());
    w.write_matrix(net.p());
    w.write_u64(net.samples_seen());
  }

  // Detector calibration.
  w.write_matrix(detector->trained_centroids());
  w.write_matrix(detector->recent_centroids());
  w.write_sizes(detector->counts());
  w.write_sizes(detector->calibrated_counts());
  w.write_f64(detector->theta_drift());
  w.write_checksum();
  return w.ok();
}

std::optional<core::Pipeline> load_pipeline(
    std::istream& in, std::optional<linalg::NumericsTier> expect_tier,
    std::string* error, const core::PipelineConfig* runtime) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  Reader r(in);
  if (!r.read_header(kSection)) {
    return fail("bad checkpoint header (wrong magic, section, or format "
                "version; v1 blobs predate the numerics-tier field and must "
                "be re-saved)");
  }

  core::PipelineConfig config;
  double theta_error = 0.0;
  if (!read_config(r, config) || !r.read_f64(theta_error)) {
    return fail("truncated or corrupt checkpoint config block");
  }
  if (!config_is_sane(config) || !std::isfinite(theta_error)) {
    return fail("checkpoint config failed sanity bounds");
  }
  if (expect_tier && *expect_tier != config.numerics) {
    return fail(std::string("checkpoint numerics tier is '") +
                linalg::tier_name(config.numerics) + "' but this restore "
                "site expects '" + linalg::tier_name(*expect_tier) +
                "' — tiers are part of the drift-decision contract and "
                "cannot be swapped on restore");
  }
  if (runtime != nullptr) {
    if (runtime->num_labels != config.num_labels ||
        runtime->input_dim != config.input_dim ||
        runtime->hidden_dim != config.hidden_dim) {
      return fail("runtime config shape (num_labels/input_dim/hidden_dim) "
                  "does not match the checkpoint");
    }
    if (runtime->detector.kind != drift::DetectorKind::kCentroid) {
      return fail("runtime detector spec is not the centroid family — this "
                  "checkpoint format only restores centroid detector state");
    }
  }
  // Construct with the persisted effective gate so the rebuilt detector
  // carries it from the start.
  core::PipelineConfig effective = config;
  effective.theta_error = theta_error;
  if (runtime != nullptr) {
    // Runtime-only fields the checkpoint deliberately does not persist:
    // they describe the serving process, not the trained state.
    effective.detector = runtime->detector;
    effective.recovery = runtime->recovery;
    effective.reconstruction = runtime->reconstruction;
    effective.obs = runtime->obs;
    effective.max_batch_rows = runtime->max_batch_rows;
    effective.train_chunk = runtime->train_chunk;
  }
  core::Pipeline pipeline(effective);

  // Verify projection integrity (same seed => identical weights).
  linalg::Matrix alpha;
  std::vector<double> bias;
  if (!r.read_matrix(alpha) || !r.read_doubles(bias)) {
    return fail("truncated projection block");
  }
  const auto& projection = *pipeline.model().projection();
  if (alpha.rows() != projection.alpha().rows() ||
      alpha.cols() != projection.alpha().cols() ||
      linalg::Matrix::max_abs_diff(alpha, projection.alpha()) != 0.0) {
    return fail("projection weights diverge from the persisted seed");
  }
  std::uint64_t fingerprint = 0;
  if (!r.read_u64(fingerprint)) {
    return fail("truncated projection fingerprint");
  }
  if (fingerprint != projection.fingerprint()) {
    return fail("projection fingerprint mismatch — the restored stream "
                "would not rejoin its save-side coalescing group");
  }

  // Instance states.
  std::uint64_t labels = 0;
  if (!r.read_u64(labels) || labels != config.num_labels) {
    return std::nullopt;
  }
  for (std::size_t c = 0; c < labels; ++c) {
    linalg::Matrix beta, p;
    std::uint64_t seen = 0;
    if (!r.read_matrix(beta) || !r.read_matrix(p) || !r.read_u64(seen)) {
      return std::nullopt;
    }
    if (beta.rows() != config.hidden_dim ||
        beta.cols() != config.input_dim || p.rows() != config.hidden_dim ||
        p.cols() != config.hidden_dim) {
      return std::nullopt;
    }
    pipeline.model_mutable().instance_mutable(c).restore_state(
        std::move(beta), std::move(p), seen);
  }
  // Out-of-band beta mutation: rebuild the fused scorer's packed mirror.
  pipeline.model_mutable().repack_ensemble();

  // Detector state.
  linalg::Matrix trained, recent;
  std::vector<std::size_t> counts, calibrated_counts;
  double theta_drift = 0.0;
  if (!r.read_matrix(trained) || !r.read_matrix(recent) ||
      !r.read_sizes(counts) || !r.read_sizes(calibrated_counts) ||
      !r.read_f64(theta_drift)) {
    return std::nullopt;
  }
  if (trained.rows() != config.num_labels ||
      trained.cols() != config.input_dim ||
      recent.rows() != config.num_labels ||
      recent.cols() != config.input_dim ||
      counts.size() != config.num_labels ||
      calibrated_counts.size() != config.num_labels) {
    return std::nullopt;
  }
  if (!r.verify_checksum()) return fail("checkpoint checksum mismatch");
  // The restored config carries the default (centroid) detector spec, so
  // the rebuilt pipeline always has a centroid detector to restore into.
  pipeline.centroid_detector_mutable()->restore(trained, recent, counts,
                                                calibrated_counts,
                                                theta_drift);
  pipeline.finish_restore(theta_error);
  if (!r.ok()) return std::nullopt;
  return pipeline;
}

bool save_pipeline_file(const std::string& path,
                        const core::Pipeline& pipeline) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return save_pipeline(out, pipeline);
}

std::optional<core::Pipeline> load_pipeline_file(
    const std::string& path, std::optional<linalg::NumericsTier> expect_tier,
    std::string* error, const core::PipelineConfig* runtime) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return load_pipeline(in, expect_tier, error, runtime);
}

}  // namespace edgedrift::io
