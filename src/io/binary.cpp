#include "edgedrift/io/binary.hpp"

#include <limits>

namespace edgedrift::io {
namespace {

// Guards length-prefixed reads against absurd sizes from corrupt files.
constexpr std::uint64_t kMaxBlockElements = 1ull << 32;

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

void Writer::put(const void* src, std::size_t bytes) {
  hash_ = fnv1a(hash_, src, bytes);
  out_.write(static_cast<const char*>(src),
             static_cast<std::streamsize>(bytes));
}

void Writer::write_u32(std::uint32_t value) { put(&value, sizeof(value)); }

void Writer::write_u64(std::uint64_t value) { put(&value, sizeof(value)); }

void Writer::write_f64(double value) { put(&value, sizeof(value)); }

void Writer::write_string(const std::string& value) {
  write_u64(value.size());
  put(value.data(), value.size());
}

void Writer::write_doubles(std::span<const double> values) {
  write_u64(values.size());
  put(values.data(), values.size() * sizeof(double));
}

void Writer::write_sizes(std::span<const std::size_t> values) {
  write_u64(values.size());
  for (const std::size_t v : values) write_u64(v);
}

void Writer::write_matrix(const linalg::Matrix& m) {
  write_u64(m.rows());
  write_u64(m.cols());
  put(m.data(), m.size() * sizeof(double));
}

void Writer::write_header(const std::string& section) {
  write_u32(kMagic);
  write_u32(kFormatVersion);
  write_string(section);
}

void Writer::write_checksum() {
  // Written raw (not folded into the hash itself).
  const std::uint64_t checksum = hash_;
  out_.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
}

std::size_t Reader::remaining_bytes() {
  const auto current = in_.tellg();
  if (current < 0) return static_cast<std::size_t>(-1);  // Non-seekable.
  in_.seekg(0, std::ios::end);
  const auto end = in_.tellg();
  in_.seekg(current);
  if (end < current) return 0;
  return static_cast<std::size_t>(end - current);
}

bool Reader::take(void* dst, std::size_t bytes) {
  if (!ok_) return false;
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
  ok_ = static_cast<bool>(in_);
  if (ok_) hash_ = fnv1a(hash_, dst, bytes);
  return ok_;
}

bool Reader::read_u32(std::uint32_t& value) {
  return take(&value, sizeof(value));
}

bool Reader::read_u64(std::uint64_t& value) {
  return take(&value, sizeof(value));
}

bool Reader::read_f64(double& value) { return take(&value, sizeof(value)); }

bool Reader::read_string(std::string& value) {
  std::uint64_t size = 0;
  if (!read_u64(size) || size > kMaxBlockElements ||
      size > remaining_bytes()) {
    return ok_ = false;
  }
  value.resize(size);
  return take(value.data(), size);
}

bool Reader::read_doubles(std::vector<double>& values) {
  std::uint64_t size = 0;
  if (!read_u64(size) || size > kMaxBlockElements ||
      size * sizeof(double) > remaining_bytes()) {
    return ok_ = false;
  }
  values.resize(size);
  return take(values.data(), size * sizeof(double));
}

bool Reader::read_sizes(std::vector<std::size_t>& values) {
  std::uint64_t size = 0;
  if (!read_u64(size) || size > kMaxBlockElements ||
      size * sizeof(std::uint64_t) > remaining_bytes()) {
    return ok_ = false;
  }
  values.resize(size);
  for (auto& v : values) {
    std::uint64_t raw = 0;
    if (!read_u64(raw)) return false;
    v = static_cast<std::size_t>(raw);
  }
  return true;
}

bool Reader::read_matrix(linalg::Matrix& m) {
  std::uint64_t rows = 0, cols = 0;
  if (!read_u64(rows) || !read_u64(cols)) return false;
  if (rows > kMaxBlockElements || cols > kMaxBlockElements ||
      (cols != 0 && rows > kMaxBlockElements / cols) ||
      rows * cols * sizeof(double) > remaining_bytes()) {
    return ok_ = false;
  }
  m.resize_zero(rows, cols);
  return take(m.data(), m.size() * sizeof(double));
}

bool Reader::read_header(const std::string& expected_section) {
  std::uint32_t magic = 0, version = 0;
  std::string section;
  if (!read_u32(magic) || !read_u32(version) || !read_string(section)) {
    return false;
  }
  if (magic != kMagic || version != kFormatVersion ||
      section != expected_section) {
    ok_ = false;
  }
  return ok_;
}

bool Reader::verify_checksum() {
  const std::uint64_t computed = hash_;  // Before consuming the trailer.
  std::uint64_t stored = 0;
  in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in_) return ok_ = false;
  if (stored != computed) ok_ = false;
  return ok_;
}

}  // namespace edgedrift::io
