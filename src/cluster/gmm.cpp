#include "edgedrift/cluster/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edgedrift/cluster/kmeans.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::cluster {
namespace {

constexpr double kLog2Pi = 1.8378770664093454835;

}  // namespace

DiagonalGmm DiagonalGmm::from_clusters(const linalg::Matrix& x,
                                       std::span<const int> assignments,
                                       std::size_t k, double min_variance) {
  EDGEDRIFT_ASSERT(x.rows() == assignments.size(), "assignment arity");
  EDGEDRIFT_ASSERT(k > 0, "need at least one component");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  DiagonalGmm gmm;
  gmm.means_.resize_zero(k, d);
  gmm.variances_.resize_zero(k, d);
  gmm.weights_.assign(k, 0.0);

  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = assignments[i];
    EDGEDRIFT_ASSERT(c >= 0 && static_cast<std::size_t>(c) < k,
                     "assignment out of range");
    ++counts[c];
    auto mean = gmm.means_.row(c);
    auto row = x.row(i);
    for (std::size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    const double inv = 1.0 / static_cast<double>(counts[c]);
    auto mean = gmm.means_.row(c);
    for (std::size_t j = 0; j < d; ++j) mean[j] *= inv;
  }

  // Pooled within-cluster variance, shared across components (SPLL's
  // homoscedastic assumption keeps the statistic chi-square-like).
  std::vector<double> pooled(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto mean = gmm.means_.row(assignments[i]);
    auto row = x.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - mean[j];
      pooled[j] += delta * delta;
    }
  }
  const double inv_n = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    pooled[j] = std::max(pooled[j] * inv_n, min_variance);
  }
  for (std::size_t c = 0; c < k; ++c) {
    auto var = gmm.variances_.row(c);
    for (std::size_t j = 0; j < d; ++j) var[j] = pooled[j];
    gmm.weights_[c] =
        n > 0 ? static_cast<double>(counts[c]) / static_cast<double>(n) : 0.0;
  }
  return gmm;
}

DiagonalGmm DiagonalGmm::fit_em(const linalg::Matrix& x, std::size_t k,
                                util::Rng& rng, std::size_t max_iterations,
                                double min_variance) {
  EDGEDRIFT_ASSERT(x.rows() >= k, "need at least k samples");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  // Initialize from a k-means hard clustering.
  const KMeansResult km = kmeans(x, k, rng);
  DiagonalGmm gmm = from_clusters(x, km.assignments, k, min_variance);
  // Give EM per-component variances to refine (start from the pooled ones).

  linalg::Matrix resp(n, k);
  double previous_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // E-step: responsibilities via log-sum-exp.
    double total_ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      auto row = x.row(i);
      double max_log = -std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        double log_p = std::log(std::max(gmm.weights_[c], 1e-300));
        const auto mean = gmm.means_.row(c);
        const auto var = gmm.variances_.row(c);
        for (std::size_t j = 0; j < d; ++j) {
          const double delta = row[j] - mean[j];
          log_p -= 0.5 * (kLog2Pi + std::log(var[j]) + delta * delta / var[j]);
        }
        resp(i, c) = log_p;
        max_log = std::max(max_log, log_p);
      }
      double sum = 0.0;
      for (std::size_t c = 0; c < k; ++c) {
        resp(i, c) = std::exp(resp(i, c) - max_log);
        sum += resp(i, c);
      }
      total_ll += max_log + std::log(sum);
      const double inv_sum = 1.0 / sum;
      for (std::size_t c = 0; c < k; ++c) resp(i, c) *= inv_sum;
    }

    // M-step.
    for (std::size_t c = 0; c < k; ++c) {
      double nk = 0.0;
      for (std::size_t i = 0; i < n; ++i) nk += resp(i, c);
      nk = std::max(nk, 1e-10);
      auto mean = gmm.means_.row(c);
      std::fill(mean.begin(), mean.end(), 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double r = resp(i, c);
        auto row = x.row(i);
        for (std::size_t j = 0; j < d; ++j) mean[j] += r * row[j];
      }
      for (std::size_t j = 0; j < d; ++j) mean[j] /= nk;
      auto var = gmm.variances_.row(c);
      std::fill(var.begin(), var.end(), 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double r = resp(i, c);
        auto row = x.row(i);
        for (std::size_t j = 0; j < d; ++j) {
          const double delta = row[j] - mean[j];
          var[j] += r * delta * delta;
        }
      }
      for (std::size_t j = 0; j < d; ++j) {
        var[j] = std::max(var[j] / nk, min_variance);
      }
      gmm.weights_[c] = nk / static_cast<double>(n);
    }

    if (std::abs(total_ll - previous_ll) <
        1e-8 * (1.0 + std::abs(total_ll))) {
      break;
    }
    previous_ll = total_ll;
  }
  return gmm;
}

double DiagonalGmm::log_density(std::span<const double> x) const {
  EDGEDRIFT_ASSERT(components() > 0, "GMM has no components");
  EDGEDRIFT_ASSERT(x.size() == dim(), "dim mismatch");
  double max_log = -std::numeric_limits<double>::infinity();
  std::vector<double> logs(components());
  for (std::size_t c = 0; c < components(); ++c) {
    double log_p = std::log(std::max(weights_[c], 1e-300));
    const auto mean = means_.row(c);
    const auto var = variances_.row(c);
    for (std::size_t j = 0; j < dim(); ++j) {
      const double delta = x[j] - mean[j];
      log_p -= 0.5 * (kLog2Pi + std::log(var[j]) + delta * delta / var[j]);
    }
    logs[c] = log_p;
    max_log = std::max(max_log, log_p);
  }
  double sum = 0.0;
  for (double l : logs) sum += std::exp(l - max_log);
  return max_log + std::log(sum);
}

double DiagonalGmm::min_mahalanobis_sq(std::span<const double> x) const {
  EDGEDRIFT_ASSERT(components() > 0, "GMM has no components");
  EDGEDRIFT_ASSERT(x.size() == dim(), "dim mismatch");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < components(); ++c) {
    const auto mean = means_.row(c);
    const auto var = variances_.row(c);
    double acc = 0.0;
    for (std::size_t j = 0; j < dim(); ++j) {
      const double delta = x[j] - mean[j];
      acc += delta * delta / var[j];
    }
    best = std::min(best, acc);
  }
  return best;
}

double DiagonalGmm::mean_log_density(const linalg::Matrix& x) const {
  if (x.rows() == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) acc += log_density(x.row(i));
  return acc / static_cast<double>(x.rows());
}

std::size_t DiagonalGmm::memory_bytes() const {
  return means_.memory_bytes() + variances_.memory_bytes() +
         weights_.capacity() * sizeof(double);
}

}  // namespace edgedrift::cluster
