#include "edgedrift/cluster/matching.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::cluster {

std::vector<std::size_t> match_rows(const linalg::Matrix& reference,
                                    const linalg::Matrix& candidates) {
  const std::size_t n = reference.rows();
  EDGEDRIFT_ASSERT(candidates.rows() == n, "row-count mismatch");
  EDGEDRIFT_ASSERT(candidates.cols() == reference.cols(), "dim mismatch");

  // Pairwise cost matrix.
  std::vector<double> cost(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cost[i * n + j] = linalg::squared_l2_distance(reference.row(i),
                                                    candidates.row(j));
    }
  }

  std::vector<std::size_t> best(n);
  std::iota(best.begin(), best.end(), 0);
  if (n <= 8) {
    // Exhaustive search over all bijections (8! = 40320 at most).
    std::vector<std::size_t> perm = best;
    double best_cost = std::numeric_limits<double>::infinity();
    do {
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) total += cost[i * n + perm[i]];
      if (total < best_cost) {
        best_cost = total;
        best = perm;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    return best;
  }

  // Greedy fallback: repeatedly take the globally cheapest unassigned pair.
  std::vector<bool> ref_used(n, false), cand_used(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    double cheapest = std::numeric_limits<double>::infinity();
    std::size_t ri = 0, cj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (ref_used[i]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (cand_used[j]) continue;
        if (cost[i * n + j] < cheapest) {
          cheapest = cost[i * n + j];
          ri = i;
          cj = j;
        }
      }
    }
    ref_used[ri] = true;
    cand_used[cj] = true;
    best[ri] = cj;
  }
  return best;
}

}  // namespace edgedrift::cluster
