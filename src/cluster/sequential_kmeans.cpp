#include "edgedrift/cluster/sequential_kmeans.hpp"

#include <limits>

#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::cluster {

SequentialKMeans::SequentialKMeans(std::size_t num_clusters, std::size_t dim)
    : centroids_(num_clusters, dim), counts_(num_clusters, 0) {
  EDGEDRIFT_ASSERT(num_clusters > 0 && dim > 0,
                   "clusters and dim must be positive");
}

void SequentialKMeans::set_centroids(const linalg::Matrix& centroids,
                                     std::span<const std::size_t> counts) {
  EDGEDRIFT_ASSERT(centroids.rows() == num_clusters() &&
                       centroids.cols() == dim(),
                   "centroid shape mismatch");
  EDGEDRIFT_ASSERT(counts.size() == num_clusters(), "count arity mismatch");
  centroids_ = centroids;
  counts_.assign(counts.begin(), counts.end());
}

std::size_t SequentialKMeans::nearest(std::span<const double> x) const {
  EDGEDRIFT_ASSERT(x.size() == dim(), "sample dim mismatch");
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < num_clusters(); ++c) {
    const double d = linalg::squared_l2_distance(x, centroids_.row(c));
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

std::size_t SequentialKMeans::update(std::span<const double> x) {
  const std::size_t c = nearest(x);
  update_cluster(c, x);
  return c;
}

void SequentialKMeans::update_cluster(std::size_t cluster,
                                      std::span<const double> x) {
  EDGEDRIFT_ASSERT(cluster < num_clusters(), "cluster out of range");
  EDGEDRIFT_ASSERT(x.size() == dim(), "sample dim mismatch");
  linalg::running_mean_update(centroids_.row(cluster), x, counts_[cluster]);
  ++counts_[cluster];
}

int SequentialKMeans::spread_init(std::span<const double> x) {
  EDGEDRIFT_ASSERT(x.size() == dim(), "sample dim mismatch");
  // Current objective (Algorithm 3 line 3).
  double best = pairwise_l1_spread();
  int chosen = -1;
  // Try substituting x for each coordinate; keep the best improvement.
  std::vector<double> saved(dim());
  for (std::size_t c = 0; c < num_clusters(); ++c) {
    auto row = centroids_.row(c);
    linalg::copy(row, saved);
    linalg::copy(x, row);
    const double candidate = pairwise_l1_spread();
    linalg::copy(saved, row);
    if (candidate > best) {
      best = candidate;
      chosen = static_cast<int>(c);
    }
  }
  if (chosen >= 0) {
    linalg::copy(x, centroids_.row(static_cast<std::size_t>(chosen)));
  }
  return chosen;
}

double SequentialKMeans::pairwise_l1_spread() const {
  double total = 0.0;
  for (std::size_t a = 0; a < num_clusters(); ++a) {
    for (std::size_t b = a + 1; b < num_clusters(); ++b) {
      total += linalg::l1_distance(centroids_.row(a), centroids_.row(b));
    }
  }
  return total;
}

void SequentialKMeans::apply_permutation(std::span<const std::size_t> perm) {
  EDGEDRIFT_ASSERT(perm.size() == num_clusters(), "permutation arity");
  linalg::Matrix reordered(num_clusters(), dim());
  std::vector<std::size_t> counts(num_clusters());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EDGEDRIFT_ASSERT(perm[i] < num_clusters(), "permutation index range");
    reordered.set_row(i, centroids_.row(perm[i]));
    counts[i] = counts_[perm[i]];
  }
  centroids_ = std::move(reordered);
  counts_ = std::move(counts);
}

void SequentialKMeans::reset() {
  centroids_.fill(0.0);
  std::fill(counts_.begin(), counts_.end(), 0);
}

void SequentialKMeans::set_counts(std::size_t value) {
  std::fill(counts_.begin(), counts_.end(), value);
}

std::size_t SequentialKMeans::memory_bytes() const {
  return centroids_.memory_bytes() + counts_.capacity() * sizeof(std::size_t);
}

}  // namespace edgedrift::cluster
