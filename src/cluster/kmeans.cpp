#include "edgedrift/cluster/kmeans.hpp"

#include <algorithm>
#include <limits>

#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::cluster {

linalg::Matrix kmeans_plus_plus_seed(const linalg::Matrix& x, std::size_t k,
                                     util::Rng& rng) {
  EDGEDRIFT_ASSERT(k > 0 && k <= x.rows(), "k must be in [1, rows]");
  const std::size_t n = x.rows();
  linalg::Matrix centroids(k, x.cols());

  std::vector<double> min_sq_dist(n, std::numeric_limits<double>::infinity());
  std::size_t first = rng.uniform_index(n);
  centroids.set_row(0, x.row(first));

  for (std::size_t c = 1; c < k; ++c) {
    // Refresh distances against the centroid added last round.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d =
          linalg::squared_l2_distance(x.row(i), centroids.row(c - 1));
      min_sq_dist[i] = std::min(min_sq_dist[i], d);
      total += min_sq_dist[i];
    }
    std::size_t chosen = 0;
    if (total <= 0.0) {
      // All points coincide with chosen centroids; fall back to uniform.
      chosen = rng.uniform_index(n);
    } else {
      double target = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= min_sq_dist[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    centroids.set_row(c, x.row(chosen));
  }
  return centroids;
}

std::vector<int> assign_to_nearest(const linalg::Matrix& x,
                                   const linalg::Matrix& centroids) {
  std::vector<int> assignments(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    assignments[i] = static_cast<int>(nearest_centroid(x.row(i), centroids));
  }
  return assignments;
}

std::size_t nearest_centroid(std::span<const double> x,
                             const linalg::Matrix& centroids) {
  EDGEDRIFT_ASSERT(centroids.rows() > 0, "no centroids");
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const double d = linalg::squared_l2_distance(x, centroids.row(c));
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

KMeansResult kmeans(const linalg::Matrix& x, std::size_t k, util::Rng& rng,
                    const KMeansOptions& options) {
  EDGEDRIFT_ASSERT(x.rows() >= k, "need at least k samples");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  KMeansResult result;
  if (options.plus_plus_init) {
    result.centroids = kmeans_plus_plus_seed(x, k, rng);
  } else {
    result.centroids.resize_zero(k, d);
    for (std::size_t c = 0; c < k; ++c) {
      result.centroids.set_row(c, x.row(rng.uniform_index(n)));
    }
  }
  result.assignments.assign(n, -1);
  result.counts.assign(k, 0);

  linalg::Matrix sums(k, d);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    bool changed = false;

    sums.fill(0.0);
    std::fill(result.counts.begin(), result.counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const int c = static_cast<int>(nearest_centroid(x.row(i),
                                                      result.centroids));
      if (c != result.assignments[i]) {
        result.assignments[i] = c;
        changed = true;
      }
      linalg::axpy(1.0, x.row(i), sums.row(c));
      ++result.counts[c];
    }

    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (result.counts[c] == 0) {
        // Re-seed an empty cluster with the point farthest from its centroid.
        std::size_t farthest = 0;
        double worst = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double dist = linalg::squared_l2_distance(
              x.row(i), result.centroids.row(result.assignments[i]));
          if (dist > worst) {
            worst = dist;
            farthest = i;
          }
        }
        result.centroids.set_row(c, x.row(farthest));
        changed = true;
        continue;
      }
      const double inv = 1.0 / static_cast<double>(result.counts[c]);
      auto centroid = result.centroids.row(c);
      auto sum = sums.row(c);
      for (std::size_t j = 0; j < d; ++j) {
        const double next = sum[j] * inv;
        const double delta = next - centroid[j];
        movement += delta * delta;
        centroid[j] = next;
      }
    }

    if (!changed) {
      result.converged = true;
      break;
    }
    if (movement < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Final assignment + inertia against the final centroids.
  result.inertia = 0.0;
  std::fill(result.counts.begin(), result.counts.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = nearest_centroid(x.row(i), result.centroids);
    result.assignments[i] = static_cast<int>(c);
    ++result.counts[c];
    result.inertia +=
        linalg::squared_l2_distance(x.row(i), result.centroids.row(c));
  }
  return result;
}

}  // namespace edgedrift::cluster
