#include "edgedrift/oselm/activation.hpp"

#include <cmath>

namespace edgedrift::oselm {

void apply_activation(Activation act, std::span<double> values) {
  switch (act) {
    case Activation::kSigmoid:
      for (auto& v : values) v = 1.0 / (1.0 + std::exp(-v));
      break;
    case Activation::kTanh:
      for (auto& v : values) v = std::tanh(v);
      break;
    case Activation::kRelu:
      for (auto& v : values) v = v > 0.0 ? v : 0.0;
      break;
    case Activation::kIdentity:
      break;
  }
}

std::string_view activation_name(Activation act) {
  switch (act) {
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
    case Activation::kRelu:
      return "relu";
    case Activation::kIdentity:
      return "identity";
  }
  return "unknown";
}

}  // namespace edgedrift::oselm
