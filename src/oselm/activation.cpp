#include "edgedrift/oselm/activation.hpp"

#include <cmath>
#include <cstddef>

#include "edgedrift/linalg/simd.hpp"

namespace edgedrift::oselm {

void apply_activation(Activation act, std::span<double> values) {
  namespace simd = linalg::simd;
  double* EDGEDRIFT_RESTRICT v = values.data();
  const std::size_t n = values.size();
  switch (act) {
    case Activation::kSigmoid:
      // exp() stays scalar libm: vectorizing it would change rounding, and
      // the projection output must be identical across the batch and
      // per-sample paths.
      for (std::size_t i = 0; i < n; ++i) v[i] = 1.0 / (1.0 + std::exp(-v[i]));
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < n; ++i) v[i] = std::tanh(v[i]);
      break;
    case Activation::kRelu: {
      // max(v, 0) is exact in every backend, so the vector path is safe
      // under the bit-identity contract.
      const simd::VDouble zero = simd::vzero();
      std::size_t i = 0;
      for (; i + simd::kLanes <= n; i += simd::kLanes) {
        simd::vstore(v + i, simd::vmax(simd::vload(v + i), zero));
      }
      for (; i < n; ++i) v[i] = v[i] > 0.0 ? v[i] : 0.0;
      break;
    }
    case Activation::kIdentity:
      break;
  }
}

std::string_view activation_name(Activation act) {
  switch (act) {
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
    case Activation::kRelu:
      return "relu";
    case Activation::kIdentity:
      return "identity";
  }
  return "unknown";
}

}  // namespace edgedrift::oselm
