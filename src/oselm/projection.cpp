#include "edgedrift/oselm/projection.hpp"

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::oselm {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Projection::Projection(std::size_t input_dim, std::size_t hidden_dim,
                       Activation act, util::Rng& rng, double scale)
    : alpha_(linalg::Matrix::random_uniform(input_dim, hidden_dim, rng, -scale,
                                            scale)),
      bias_(hidden_dim),
      act_(act) {
  EDGEDRIFT_ASSERT(input_dim > 0 && hidden_dim > 0,
                   "projection dims must be positive");
  for (auto& b : bias_) b = rng.uniform(-scale, scale);
  fingerprint_ = compute_fingerprint();
}

Projection::Projection(linalg::Matrix alpha, std::vector<double> bias,
                       Activation act)
    : alpha_(std::move(alpha)), bias_(std::move(bias)), act_(act) {
  EDGEDRIFT_ASSERT(alpha_.rows() > 0 && alpha_.cols() > 0,
                   "projection dims must be positive");
  EDGEDRIFT_ASSERT(bias_.size() == alpha_.cols(),
                   "bias length must match hidden dim");
  fingerprint_ = compute_fingerprint();
}

std::uint64_t Projection::compute_fingerprint() const {
  // Doubles hash by byte pattern, which is exactly the contract needed:
  // equal fingerprints must imply bit-identical hidden() output, and the
  // projection weights are immutable after construction.
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  const std::uint64_t shape[3] = {alpha_.rows(), alpha_.cols(),
                                  static_cast<std::uint64_t>(act_)};
  h = fnv1a(h, shape, sizeof(shape));
  h = fnv1a(h, alpha_.data(), alpha_.size() * sizeof(double));
  h = fnv1a(h, bias_.data(), bias_.size() * sizeof(double));
  return h;
}

void Projection::hidden(std::span<const double> x,
                        std::span<double> hidden) const {
  EDGEDRIFT_ASSERT(x.size() == input_dim(), "projection input size mismatch");
  EDGEDRIFT_ASSERT(hidden.size() == hidden_dim(),
                   "projection output size mismatch");
  // hidden = A^T x + b  (A is [d, h], x is a row sample).
  linalg::matvec_transposed(alpha_, x, hidden);
  for (std::size_t j = 0; j < hidden.size(); ++j) hidden[j] += bias_[j];
  apply_activation(act_, hidden);
}

linalg::Matrix Projection::hidden_batch(const linalg::Matrix& x) const {
  linalg::Matrix h;
  hidden_batch_into(x, h);
  return h;
}

void Projection::hidden_batch_into(linalg::ConstMatrixView x,
                                   linalg::Matrix& h) const {
  EDGEDRIFT_ASSERT(x.cols() == input_dim(), "projection batch size mismatch");
  linalg::matmul_parallel_into(x, alpha_, h);
  for (std::size_t r = 0; r < h.rows(); ++r) {
    auto row = h.row(r);
    for (std::size_t j = 0; j < row.size(); ++j) row[j] += bias_[j];
    apply_activation(act_, row);
  }
}

void Projection::hidden_batch_into(
    linalg::ConstMatrixView x, linalg::Matrix& h,
    const linalg::PackedGemmB& packed_alpha) const {
  EDGEDRIFT_ASSERT(x.cols() == input_dim(), "projection batch size mismatch");
  linalg::matmul_packed_parallel_into(x, alpha_, packed_alpha, h);
  for (std::size_t r = 0; r < h.rows(); ++r) {
    auto row = h.row(r);
    for (std::size_t j = 0; j < row.size(); ++j) row[j] += bias_[j];
    apply_activation(act_, row);
  }
}

void Projection::pack_alpha(linalg::PackedGemmB& out) const {
  linalg::pack_gemm_b(alpha_, out);
}

std::size_t Projection::memory_bytes() const {
  return alpha_.memory_bytes() + bias_.capacity() * sizeof(double);
}

ProjectionPtr make_projection(std::size_t input_dim, std::size_t hidden_dim,
                              Activation act, util::Rng& rng, double scale) {
  return std::make_shared<const Projection>(input_dim, hidden_dim, act, rng,
                                            scale);
}

}  // namespace edgedrift::oselm
