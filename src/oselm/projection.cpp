#include "edgedrift/oselm/projection.hpp"

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::oselm {

Projection::Projection(std::size_t input_dim, std::size_t hidden_dim,
                       Activation act, util::Rng& rng, double scale)
    : alpha_(linalg::Matrix::random_uniform(input_dim, hidden_dim, rng, -scale,
                                            scale)),
      bias_(hidden_dim),
      act_(act) {
  EDGEDRIFT_ASSERT(input_dim > 0 && hidden_dim > 0,
                   "projection dims must be positive");
  for (auto& b : bias_) b = rng.uniform(-scale, scale);
}

Projection::Projection(linalg::Matrix alpha, std::vector<double> bias,
                       Activation act)
    : alpha_(std::move(alpha)), bias_(std::move(bias)), act_(act) {
  EDGEDRIFT_ASSERT(alpha_.rows() > 0 && alpha_.cols() > 0,
                   "projection dims must be positive");
  EDGEDRIFT_ASSERT(bias_.size() == alpha_.cols(),
                   "bias length must match hidden dim");
}

void Projection::hidden(std::span<const double> x,
                        std::span<double> hidden) const {
  EDGEDRIFT_ASSERT(x.size() == input_dim(), "projection input size mismatch");
  EDGEDRIFT_ASSERT(hidden.size() == hidden_dim(),
                   "projection output size mismatch");
  // hidden = A^T x + b  (A is [d, h], x is a row sample).
  linalg::matvec_transposed(alpha_, x, hidden);
  for (std::size_t j = 0; j < hidden.size(); ++j) hidden[j] += bias_[j];
  apply_activation(act_, hidden);
}

linalg::Matrix Projection::hidden_batch(const linalg::Matrix& x) const {
  linalg::Matrix h;
  hidden_batch_into(x, h);
  return h;
}

void Projection::hidden_batch_into(linalg::ConstMatrixView x,
                                   linalg::Matrix& h) const {
  EDGEDRIFT_ASSERT(x.cols() == input_dim(), "projection batch size mismatch");
  linalg::matmul_parallel_into(x, alpha_, h);
  for (std::size_t r = 0; r < h.rows(); ++r) {
    auto row = h.row(r);
    for (std::size_t j = 0; j < row.size(); ++j) row[j] += bias_[j];
    apply_activation(act_, row);
  }
}

std::size_t Projection::memory_bytes() const {
  return alpha_.memory_bytes() + bias_.capacity() * sizeof(double);
}

ProjectionPtr make_projection(std::size_t input_dim, std::size_t hidden_dim,
                              Activation act, util::Rng& rng, double scale) {
  return std::make_shared<const Projection>(input_dim, hidden_dim, act, rng,
                                            scale);
}

}  // namespace edgedrift::oselm
