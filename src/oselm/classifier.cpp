#include "edgedrift/oselm/classifier.hpp"

#include <algorithm>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::oselm {
namespace {

OsElmConfig classifier_config(std::size_t num_labels, double reg_lambda,
                              double forgetting_factor) {
  EDGEDRIFT_ASSERT(num_labels >= 2, "classifier needs at least two labels");
  OsElmConfig config;
  config.output_dim = num_labels;
  config.reg_lambda = reg_lambda;
  config.forgetting_factor = forgetting_factor;
  return config;
}

}  // namespace

Classifier::Classifier(ProjectionPtr projection, std::size_t num_labels,
                       double reg_lambda, double forgetting_factor)
    : net_(std::move(projection),
           classifier_config(num_labels, reg_lambda, forgetting_factor)),
      onehot_scratch_(num_labels),
      out_scratch_(num_labels) {}

void Classifier::init_train(const linalg::Matrix& x,
                            std::span<const int> labels) {
  EDGEDRIFT_ASSERT(x.rows() == labels.size(), "X/label row mismatch");
  // One-hot targets in {-1, +1}: the symmetric coding conditions the ridge
  // solution better than {0, 1}.
  linalg::Matrix t(x.rows(), num_labels(), -1.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int l = labels[i];
    EDGEDRIFT_ASSERT(l >= 0 && static_cast<std::size_t>(l) < num_labels(),
                     "label out of range");
    t(i, static_cast<std::size_t>(l)) = 1.0;
  }
  net_.init_train(x, t);
}

void Classifier::train(std::span<const double> x, std::size_t label) {
  EDGEDRIFT_ASSERT(label < num_labels(), "label out of range");
  std::fill(onehot_scratch_.begin(), onehot_scratch_.end(), -1.0);
  onehot_scratch_[label] = 1.0;
  net_.train(x, onehot_scratch_);
}

std::size_t Classifier::predict(std::span<const double> x) const {
  net_.predict(x, out_scratch_);
  return static_cast<std::size_t>(
      std::max_element(out_scratch_.begin(), out_scratch_.end()) -
      out_scratch_.begin());
}

double Classifier::margin(std::span<const double> x) const {
  net_.predict(x, out_scratch_);
  double best = out_scratch_[0];
  double second = -1e300;
  for (std::size_t i = 1; i < out_scratch_.size(); ++i) {
    if (out_scratch_[i] > best) {
      second = best;
      best = out_scratch_[i];
    } else if (out_scratch_[i] > second) {
      second = out_scratch_[i];
    }
  }
  return best - second;
}

}  // namespace edgedrift::oselm
