#include "edgedrift/oselm/autoencoder.hpp"

#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::oselm {
namespace {

OsElmConfig autoencoder_config(const ProjectionPtr& projection,
                               double reg_lambda, double forgetting_factor) {
  EDGEDRIFT_ASSERT(projection != nullptr, "projection must not be null");
  OsElmConfig config;
  config.output_dim = projection->input_dim();
  config.reg_lambda = reg_lambda;
  config.forgetting_factor = forgetting_factor;
  return config;
}

}  // namespace

Autoencoder::Autoencoder(ProjectionPtr projection, double reg_lambda,
                         double forgetting_factor)
    : net_(projection,
           autoencoder_config(projection, reg_lambda, forgetting_factor)) {}

void Autoencoder::init_train(const linalg::Matrix& x) {
  net_.init_train(x, x);
}

double Autoencoder::score(std::span<const double> x,
                          linalg::KernelWorkspace& ws) const {
  const std::span<double> recon = ws.recon(x.size());
  net_.predict(x, recon, ws);
  // squared_l2_distance is the one MSE kernel shared with the batch scorer,
  // which keeps score() bit-identical to score_batch() rows within a build.
  return linalg::squared_l2_distance(x, recon) /
         static_cast<double>(x.size());
}

double Autoencoder::score_from_hidden(std::span<const double> h,
                                      std::span<const double> x,
                                      std::span<double> recon) const {
  EDGEDRIFT_ASSERT(recon.size() == x.size(), "recon scratch size mismatch");
  net_.predict_from_hidden(h, recon);
  return linalg::squared_l2_distance(x, recon) /
         static_cast<double>(x.size());
}

double Autoencoder::score(std::span<const double> x) const {
  // Reconstruction scratch on the stack (heap fallback for wide inputs) so
  // concurrent score() calls on a frozen model never share state.
  constexpr std::size_t kStackDim = 256;
  double stack_buf[kStackDim];
  std::vector<double> heap_buf;
  std::span<double> recon;
  if (x.size() <= kStackDim) {
    recon = std::span<double>(stack_buf, x.size());
  } else {
    heap_buf.resize(x.size());
    recon = heap_buf;
  }
  net_.predict(x, recon);
  return linalg::squared_l2_distance(x, recon) /
         static_cast<double>(x.size());
}

}  // namespace edgedrift::oselm
