#include "edgedrift/oselm/oselm.hpp"

#include <algorithm>
#include <cmath>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/simd.hpp"
#include "edgedrift/linalg/solve.hpp"
#include "edgedrift/linalg/updates.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::oselm {

OsElm::OsElm(ProjectionPtr projection, OsElmConfig config)
    : projection_(std::move(projection)), config_(config) {
  EDGEDRIFT_ASSERT(projection_ != nullptr, "projection must not be null");
  EDGEDRIFT_ASSERT(config_.output_dim > 0, "output_dim must be positive");
  EDGEDRIFT_ASSERT(config_.reg_lambda > 0.0, "reg_lambda must be positive");
  EDGEDRIFT_ASSERT(
      config_.forgetting_factor > 0.0 && config_.forgetting_factor <= 1.0,
      "forgetting factor must be in (0, 1]");
  const std::size_t h = projection_->hidden_dim();
  beta_.resize_zero(h, config_.output_dim);
  p_.resize_zero(h, h);
  h_scratch_.resize(h);
  ph_scratch_.resize(h);
  err_scratch_.resize(config_.output_dim);
}

void OsElm::init_train(const linalg::Matrix& x, const linalg::Matrix& t) {
  EDGEDRIFT_ASSERT(x.rows() == t.rows(), "X/T row mismatch");
  EDGEDRIFT_ASSERT(x.cols() == input_dim(), "X feature dim mismatch");
  EDGEDRIFT_ASSERT(t.cols() == output_dim(), "T target dim mismatch");
  const linalg::Matrix h = projection_->hidden_batch(x);
  p_ = linalg::regularized_gram_inverse(h, config_.reg_lambda);
  beta_ = linalg::matmul(p_, linalg::matmul_at_b(h, t));
  initialized_ = true;
  samples_seen_ = x.rows();
  ++beta_version_;
}

void OsElm::init_sequential() {
  beta_.fill(0.0);
  p_.fill(0.0);
  const double prior = 1.0 / config_.reg_lambda;
  for (std::size_t i = 0; i < p_.rows(); ++i) p_(i, i) = prior;
  initialized_ = true;
  samples_seen_ = 0;
  ++beta_version_;
}

void OsElm::train(std::span<const double> x, std::span<const double> t) {
  EDGEDRIFT_ASSERT(initialized_, "train() before initialization");
  EDGEDRIFT_ASSERT(x.size() == input_dim(), "x size mismatch");
  EDGEDRIFT_ASSERT(t.size() == output_dim(), "t size mismatch");
  hidden(x, h_scratch_);
  train_on_hidden(t);
}

void OsElm::train_from_hidden(std::span<const double> h,
                              std::span<const double> t) {
  EDGEDRIFT_ASSERT(initialized_, "train_from_hidden() before initialization");
  EDGEDRIFT_ASSERT(h.size() == hidden_dim(), "h size mismatch");
  EDGEDRIFT_ASSERT(t.size() == output_dim(), "t size mismatch");
  std::copy(h.begin(), h.end(), h_scratch_.begin());
  train_on_hidden(t);
}

void OsElm::train_on_hidden(std::span<const double> t) {
  // Covariance-resetting safeguard: with a forgetting factor, P grows like
  // alpha^-t in unexcited directions and eventually overflows (a known RLS
  // failure mode). When the trace explodes or the rank-1 step reports a
  // loss of positive definiteness, restart P from the prior while keeping
  // the learned beta — the standard RLS remedy.
  if (config_.forgetting_factor < 1.0) {
    double trace = 0.0;
    for (std::size_t i = 0; i < hidden_dim(); ++i) trace += p_(i, i);
    if (!std::isfinite(trace) ||
        trace > 1e9 * static_cast<double>(hidden_dim())) {
      reset_p_to_prior();
    }
  }
  // P <- forgetting-aware Sherman–Morrison step.
  if (!linalg::oselm_p_update(p_, h_scratch_, config_.forgetting_factor,
                              ph_scratch_)) {
    reset_p_to_prior();
    const bool ok = linalg::oselm_p_update(
        p_, h_scratch_, config_.forgetting_factor, ph_scratch_);
    EDGEDRIFT_ASSERT(ok, "P update failed even from the prior");
  }
  // err = t - beta^T h (prediction error with the pre-update beta). The
  // beta^T h reconstruction is the same kernel the fused ensemble scorer
  // uses, so training reuses a vectorized path instead of a strided
  // column-wise scalar loop.
  linalg::matvec_transposed(beta_, h_scratch_, err_scratch_);
  for (std::size_t o = 0; o < output_dim(); ++o) {
    err_scratch_[o] = t[o] - err_scratch_[o];
  }
  // beta <- beta + (P_new h) err^T.
  linalg::matvec(p_, h_scratch_, ph_scratch_);
  linalg::ger(beta_, 1.0, ph_scratch_, err_scratch_);
  ++beta_version_;
  ++samples_seen_;
}

void OsElm::train_batch(const linalg::Matrix& x, const linalg::Matrix& t) {
  EDGEDRIFT_ASSERT(initialized_, "train_batch() before initialization");
  EDGEDRIFT_ASSERT(x.rows() == t.rows(), "X/T row mismatch");
  EDGEDRIFT_ASSERT(x.cols() == input_dim(), "X feature dim mismatch");
  if (x.rows() == 0) return;
  const linalg::Matrix h = projection_->hidden_batch(x);
  train_batch_from_hidden(h, t);
}

void OsElm::train_batch_from_hidden(const linalg::Matrix& h,
                                    const linalg::Matrix& t) {
  EDGEDRIFT_ASSERT(initialized_,
                   "train_batch_from_hidden() before initialization");
  EDGEDRIFT_ASSERT(h.rows() == t.rows(), "H/T row mismatch");
  EDGEDRIFT_ASSERT(h.cols() == hidden_dim(), "H hidden dim mismatch");
  EDGEDRIFT_ASSERT(t.cols() == output_dim(), "T target dim mismatch");
  EDGEDRIFT_ASSERT(config_.forgetting_factor == 1.0,
                   "block update requires forgetting_factor == 1");
  const std::size_t k = h.rows();
  if (k == 0) return;
  // resid = T - H beta with the PRE-update beta, one row at a time through
  // the same matvec_transposed kernel the per-sample path uses (beta^T h_r).
  // Must run before the P update below.
  batch_resid_.resize_discard(k, output_dim());
  for (std::size_t r = 0; r < k; ++r) {
    const std::span<double> resid = batch_resid_.row(r);
    linalg::matvec_transposed(beta_, h.row(r), resid);
    const double* EDGEDRIFT_RESTRICT tr = t.data() + r * output_dim();
    for (std::size_t o = 0; o < output_dim(); ++o) {
      resid[o] = tr[o] - resid[o];
    }
  }
  // P <- (P^-1 + H^T H)^-1 via the symmetric Woodbury kernel, which takes H
  // in the row-major layout the drain hands over (no transpose staging) and
  // leaves M = (P_new H^T)^T in the workspace.
  const bool ok = linalg::woodbury_update_sym(p_, h, woodbury_ws_);
  EDGEDRIFT_ASSERT(ok, "Woodbury core singular in block training");
  // beta <- beta + P_new H^T resid = beta + M^T resid, applied as k fused
  // rank-1 passes — the n^2 d GEMM the naive form needs is already folded
  // into the Woodbury solve via the P_new H^T = P H^T core^-1 identity.
  for (std::size_t r = 0; r < k; ++r) {
    linalg::ger(beta_, 1.0, woodbury_ws_.m.row(r), batch_resid_.row(r));
  }
  samples_seen_ += k;
  ++beta_version_;
}

void OsElm::reserve_batch(std::size_t max_rows) {
  if (max_rows == 0) return;
  woodbury_ws_.reserve(hidden_dim(), max_rows);
  batch_resid_.resize_zero(max_rows, output_dim());
}

void OsElm::predict(std::span<const double> x, std::span<double> y,
                    linalg::KernelWorkspace& ws) const {
  EDGEDRIFT_ASSERT(initialized_, "predict() before initialization");
  EDGEDRIFT_ASSERT(x.size() == input_dim(), "x size mismatch");
  EDGEDRIFT_ASSERT(y.size() == output_dim(), "y size mismatch");
  const std::span<double> h = ws.hidden(hidden_dim());
  hidden(x, h);
  linalg::matvec_transposed(beta_, h, y);
}

void OsElm::predict(std::span<const double> x, std::span<double> y) const {
  EDGEDRIFT_ASSERT(initialized_, "predict() before initialization");
  EDGEDRIFT_ASSERT(x.size() == input_dim(), "x size mismatch");
  EDGEDRIFT_ASSERT(y.size() == output_dim(), "y size mismatch");
  // The hidden activation lives on the stack (heap only for unusually wide
  // hidden layers) so concurrent predict() calls on a frozen model never
  // share scratch.
  constexpr std::size_t kStackHidden = 256;
  double stack_buf[kStackHidden];
  std::vector<double> heap_buf;
  std::span<double> h;
  if (hidden_dim() <= kStackHidden) {
    h = std::span<double>(stack_buf, hidden_dim());
  } else {
    heap_buf.resize(hidden_dim());
    h = heap_buf;
  }
  hidden(x, h);
  linalg::matvec_transposed(beta_, h, y);
}

void OsElm::predict_from_hidden(std::span<const double> h,
                                std::span<double> y) const {
  EDGEDRIFT_ASSERT(initialized_, "predict_from_hidden() before initialization");
  EDGEDRIFT_ASSERT(h.size() == hidden_dim(), "h size mismatch");
  EDGEDRIFT_ASSERT(y.size() == output_dim(), "y size mismatch");
  linalg::matvec_transposed(beta_, h, y);
}

linalg::Matrix OsElm::predict_batch(const linalg::Matrix& x) const {
  EDGEDRIFT_ASSERT(initialized_, "predict_batch() before initialization");
  return linalg::matmul_parallel(projection_->hidden_batch(x), beta_);
}

void OsElm::reset() { init_sequential(); }

void OsElm::restore_state(linalg::Matrix beta, linalg::Matrix p,
                          std::size_t samples_seen) {
  EDGEDRIFT_ASSERT(beta.rows() == hidden_dim() && beta.cols() == output_dim(),
                   "restored beta shape mismatch");
  EDGEDRIFT_ASSERT(p.rows() == hidden_dim() && p.cols() == hidden_dim(),
                   "restored P shape mismatch");
  beta_ = std::move(beta);
  p_ = std::move(p);
  samples_seen_ = samples_seen;
  initialized_ = true;
  ++beta_version_;
}

void OsElm::reset_p_to_prior() {
  p_.fill(0.0);
  const double prior = 1.0 / config_.reg_lambda;
  for (std::size_t i = 0; i < p_.rows(); ++i) p_(i, i) = prior;
}

std::size_t OsElm::memory_bytes(bool include_projection) const {
  std::size_t bytes = beta_.memory_bytes() + p_.memory_bytes() +
                      (h_scratch_.capacity() + ph_scratch_.capacity() +
                       err_scratch_.capacity()) *
                          sizeof(double);
  bytes += woodbury_ws_.pu.memory_bytes() + woodbury_ws_.core.memory_bytes() +
           woodbury_ws_.vtp.memory_bytes() +
           woodbury_ws_.core_inv_vtp.memory_bytes() +
           woodbury_ws_.delta.memory_bytes() + woodbury_ws_.w.memory_bytes() +
           woodbury_ws_.m.memory_bytes() +
           woodbury_ws_.piv.capacity() * sizeof(std::size_t);
  bytes += batch_resid_.memory_bytes();
  if (include_projection) bytes += projection_->memory_bytes();
  return bytes;
}

}  // namespace edgedrift::oselm
