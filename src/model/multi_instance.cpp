#include "edgedrift/model/multi_instance.hpp"

#include <algorithm>
#include <limits>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/simd.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"
#include "edgedrift/util/thread_pool.hpp"

namespace edgedrift::model {

MultiInstanceModel::MultiInstanceModel(std::size_t num_labels,
                                       oselm::ProjectionPtr projection,
                                       double reg_lambda,
                                       double forgetting_factor)
    : projection_(std::move(projection)) {
  EDGEDRIFT_ASSERT(num_labels > 0, "need at least one label");
  EDGEDRIFT_ASSERT(projection_ != nullptr, "projection must not be null");
  instances_.reserve(num_labels);
  for (std::size_t i = 0; i < num_labels; ++i) {
    instances_.emplace_back(projection_, reg_lambda, forgetting_factor);
  }
  packed_beta_.resize_zero(projection_->hidden_dim(),
                           num_labels * projection_->input_dim());
  packed_versions_.assign(num_labels, 0);
  replica_versions_.assign(num_labels, 0);
}

void MultiInstanceModel::set_numerics_tier(linalg::NumericsTier tier) {
  tier_ = tier;
  if (tier_ == linalg::NumericsTier::kExactF64) return;
  // Size the active tier's replica (grow-only storage), then derive every
  // block from the f64 master so the replica is valid before the first
  // tiered score.
  if (tier_ == linalg::NumericsTier::kFastF32) {
    packed_beta_f32_.resize_discard(packed_beta_.rows(), packed_beta_.cols());
  } else {
    packed_beta_q_.q.resize_discard(packed_beta_.rows(), packed_beta_.cols());
    if (packed_beta_q_.scales.size() < packed_beta_.cols()) {
      packed_beta_q_.scales.resize(packed_beta_.cols());
    }
  }
  for (std::size_t c = 0; c < num_labels(); ++c) refresh_replica_block(c);
}

void MultiInstanceModel::refresh_replica_block(std::size_t c) {
  const std::size_t n = input_dim();
  const std::size_t stride = packed_beta_.cols();
  if (tier_ == linalg::NumericsTier::kFastF32) {
    for (std::size_t i = 0; i < hidden_dim(); ++i) {
      const double* EDGEDRIFT_RESTRICT src =
          packed_beta_.data() + i * stride + c * n;
      float* EDGEDRIFT_RESTRICT dst =
          packed_beta_f32_.data() + i * stride + c * n;
      for (std::size_t j = 0; j < n; ++j) dst[j] = static_cast<float>(src[j]);
    }
  } else {
    // Fresh per-column scales for the block: a rank-1 train step can move
    // a column's max|w|, and a stale scale would silently saturate.
    linalg::quantize_block(packed_beta_, packed_beta_q_, c * n, n);
  }
  replica_versions_[c] = packed_versions_[c];
  ++quantization_epoch_;
}

bool MultiInstanceModel::replicas_in_sync() const {
  if (tier_ == linalg::NumericsTier::kExactF64) return true;
  for (std::size_t c = 0; c < num_labels(); ++c) {
    if (replica_versions_[c] != packed_versions_[c]) return false;
  }
  return true;
}

void MultiInstanceModel::init_train(const linalg::Matrix& x,
                                    std::span<const int> labels) {
  EDGEDRIFT_ASSERT(x.rows() == labels.size(), "X/label row mismatch");
  // One counting pass over the labels, then one bucketed gather pass over
  // the rows — O(N + C) bookkeeping instead of rescanning all N labels for
  // each of the C instances.
  std::vector<std::size_t> counts(num_labels(), 0);
  for (const int l : labels) {
    EDGEDRIFT_ASSERT(l >= 0 && static_cast<std::size_t>(l) < num_labels(),
                     "label out of range");
    ++counts[static_cast<std::size_t>(l)];
  }
  std::vector<linalg::Matrix> blocks(num_labels());
  for (std::size_t label = 0; label < num_labels(); ++label) {
    EDGEDRIFT_ASSERT(counts[label] > 0, "every label needs initial samples");
    blocks[label].resize_zero(counts[label], x.cols());
  }
  std::vector<std::size_t> cursor(num_labels(), 0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const std::size_t label = static_cast<std::size_t>(labels[r]);
    blocks[label].set_row(cursor[label]++, x.row(r));
  }
  // The per-instance solves are independent — instance state is disjoint,
  // the shared projection is only read, and repack_block() writes disjoint
  // column blocks of the mirror — so fan them over the pool. Each solve's
  // result is a pure function of its block; the fan-out changes which
  // thread runs a solve, never its operand order, so the trained state is
  // bit-identical to the sequential loop. Nested parallel_for inside the
  // solves runs inline on the workers (ThreadPool::in_worker).
  util::ThreadPool::global().parallel_for(
      0, num_labels(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t label = lo; label < hi; ++label) {
          instances_[label].init_train(blocks[label]);
          repack_block(label);
        }
      },
      /*min_chunk=*/1);
  if (tier_ != linalg::NumericsTier::kExactF64) {
    for (std::size_t c = 0; c < num_labels(); ++c) refresh_replica_block(c);
  }
}

void MultiInstanceModel::init_sequential() {
  for (auto& inst : instances_) inst.init_sequential();
  repack_ensemble();
}

void MultiInstanceModel::scores_from_hidden(std::span<const double> h,
                                            std::span<const double> x,
                                            std::span<double> out,
                                            linalg::KernelWorkspace& ws) const {
  EDGEDRIFT_DASSERT(packed_in_sync(), "packed ensemble beta out of sync");
  EDGEDRIFT_DASSERT(replicas_in_sync(), "tier replica missed a beta update");
  const std::size_t n = input_dim();
  const std::size_t total = num_labels() * n;
  switch (tier_) {
    case linalg::NumericsTier::kExactF64: {
      const std::span<double> recon = ws.recon(total);
      // One matvec against the packed [L x C*n] beta reconstructs all C
      // instances: element c*n+j is the same ascending-i madd chain the
      // per-instance matvec_transposed produces for instance c's element j
      // (scaled_accumulate is element-wise, so the strided block rounds
      // exactly like the dense per-instance run).
      linalg::matvec_transposed(packed_beta_, h, recon);
      for (std::size_t c = 0; c < num_labels(); ++c) {
        // Same squared_l2_distance kernel as the per-instance score() — one
        // shared MSE reduction keeps the fused path bit-identical.
        out[c] = linalg::squared_l2_distance(x, recon.subspan(c * n, n)) /
                 static_cast<double>(n);
      }
      return;
    }
    case linalg::NumericsTier::kFastF32: {
      const std::span<float> hf = ws.hidden_f32(hidden_dim());
      const std::span<float> xf = ws.input_f32(n);
      const std::span<float> rf = ws.recon_f32(total);
      linalg::narrow(h, hf);
      linalg::narrow(x, xf);
      linalg::matvec_transposed(packed_beta_f32_, hf, rf);
      for (std::size_t c = 0; c < num_labels(); ++c) {
        out[c] = static_cast<double>(
                     linalg::squared_l2_distance(xf, rf.subspan(c * n, n))) /
                 static_cast<double>(n);
      }
      return;
    }
    case linalg::NumericsTier::kQuantI8: {
      const std::span<float> xf = ws.input_f32(n);
      const std::span<float> rf = ws.recon_f32(total);
      const std::span<std::int8_t> qh = ws.hidden_i8(hidden_dim());
      const std::span<std::int32_t> acc = ws.accum_i32(total);
      linalg::narrow(x, xf);
      // Dynamic per-vector quantization of the hidden activation; the
      // integer matvec is exact, so the tier's error is just the two grids.
      const float h_scale = linalg::quantize_vector(h, qh);
      linalg::i8_matvec_transposed_dequant(packed_beta_q_, qh, h_scale, acc,
                                           rf);
      for (std::size_t c = 0; c < num_labels(); ++c) {
        out[c] = static_cast<double>(
                     linalg::squared_l2_distance(xf, rf.subspan(c * n, n))) /
                 static_cast<double>(n);
      }
      return;
    }
  }
}

void MultiInstanceModel::scores(std::span<const double> x,
                                std::span<double> out,
                                linalg::KernelWorkspace& ws) const {
  EDGEDRIFT_ASSERT(out.size() == num_labels(), "score buffer size mismatch");
  EDGEDRIFT_ASSERT(instances_.front().initialized(),
                   "scores() before initialization");
  const std::span<double> h = ws.hidden(hidden_dim());
  projection_->hidden(x, h);
  scores_from_hidden(h, x, out, ws);
}

void MultiInstanceModel::scores(std::span<const double> x,
                                std::span<double> out) const {
  EDGEDRIFT_ASSERT(out.size() == num_labels(), "score buffer size mismatch");
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    out[i] = instances_[i].score(x);
  }
}

namespace {

Prediction argmin_score(std::span<const double> s) {
  Prediction best{0, std::numeric_limits<double>::infinity()};
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] < best.score) {
      best.label = i;
      best.score = s[i];
    }
  }
  return best;
}

}  // namespace

Prediction MultiInstanceModel::predict(std::span<const double> x,
                                       linalg::KernelWorkspace& ws) const {
  const std::span<double> s = ws.scores(num_labels());
  scores(x, s, ws);
  return argmin_score(s);
}

Prediction MultiInstanceModel::predict_from_hidden(
    std::span<const double> x, std::span<const double> h,
    linalg::KernelWorkspace& ws) const {
  EDGEDRIFT_DASSERT(h.size() == hidden_dim(),
                    "predict_from_hidden hidden size mismatch");
  EDGEDRIFT_ASSERT(instances_.front().initialized(),
                   "predict_from_hidden() before initialization");
  const std::span<double> s = ws.scores(num_labels());
  scores_from_hidden(h, x, s, ws);
  return argmin_score(s);
}

Prediction MultiInstanceModel::predict(std::span<const double> x) const {
  // Scores on the stack (heap fallback for very wide label sets) so
  // concurrent predict() calls on a frozen model never share scratch.
  constexpr std::size_t kStackLabels = 64;
  double stack_buf[kStackLabels];
  std::vector<double> heap_buf;
  std::span<double> s;
  if (num_labels() <= kStackLabels) {
    s = std::span<double>(stack_buf, num_labels());
  } else {
    heap_buf.resize(num_labels());
    s = heap_buf;
  }
  scores(x, s);
  return argmin_score(s);
}

void MultiInstanceModel::score_batch(linalg::ConstMatrixView x,
                                     BatchWorkspace& ws) const {
  EDGEDRIFT_ASSERT(x.cols() == input_dim(), "batch feature dim mismatch");
  for (const auto& inst : instances_) {
    EDGEDRIFT_ASSERT(inst.initialized(), "score_batch() before initialization");
  }
  projection_->hidden_batch_into(x, ws.hidden);
  score_batch_core(x, ws.hidden, ws);
}

void MultiInstanceModel::score_batch_from_hidden(linalg::ConstMatrixView x,
                                                 linalg::ConstMatrixView h,
                                                 BatchWorkspace& ws) const {
  EDGEDRIFT_ASSERT(x.cols() == input_dim(), "batch feature dim mismatch");
  EDGEDRIFT_ASSERT(h.rows() == x.rows() && h.cols() == hidden_dim(),
                   "hidden block shape mismatch");
  for (const auto& inst : instances_) {
    EDGEDRIFT_ASSERT(inst.initialized(), "score_batch() before initialization");
  }
  score_batch_core(x, h, ws);
}

void MultiInstanceModel::score_batch_core(linalg::ConstMatrixView x,
                                          linalg::ConstMatrixView h,
                                          BatchWorkspace& ws) const {
  EDGEDRIFT_DASSERT(packed_in_sync(), "packed ensemble beta out of sync");
  EDGEDRIFT_DASSERT(replicas_in_sync(), "tier replica missed a beta update");
  ws.scores.resize_discard(x.rows(), num_labels());  // Fully written below.
  const std::size_t n = x.cols();
  const std::size_t packed_n = packed_beta_.cols();

  if (tier_ == linalg::NumericsTier::kExactF64) {
    // R = H * packed_beta, one fused [rows x C*n] GEMM: row r, columns
    // [c*n, (c+1)*n) are bit-identical to instance c's scalar reconstruction
    // of row r (same ascending-k accumulation order in both kernels).
    linalg::matmul_parallel_into(h, packed_beta_, ws.recon);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const std::span<const double> xr{x.data() + r * n, n};
      const double* recon_row = ws.recon.data() + r * packed_n;
      for (std::size_t label = 0; label < num_labels(); ++label) {
        // Same squared_l2_distance kernel as the scalar score() — one shared
        // MSE reduction, so batch and scalar scores agree bit-for-bit.
        const std::span<const double> rr{recon_row + label * n, n};
        ws.scores(r, label) =
            linalg::squared_l2_distance(xr, rr) / static_cast<double>(n);
      }
    }
    return;
  }

  // Approximate tiers: narrow the activations and inputs once per chunk,
  // reconstruct against the tier's replica, reduce the MSE in f32. The
  // projection stays f64 (it is shared with training), so the tier boundary
  // is exactly the packed-beta product plus the reduction.
  ws.hidden_f32.resize_discard(x.rows(), hidden_dim());
  ws.input_f32.resize_discard(x.rows(), n);
  linalg::narrow({h.data(), h.rows() * h.cols()}, ws.hidden_f32.flat());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    linalg::narrow(x.row(r), ws.input_f32.row(r));
  }
  if (tier_ == linalg::NumericsTier::kFastF32) {
    linalg::matmul_parallel_into(ws.hidden_f32, packed_beta_f32_,
                                 ws.recon_f32);
  } else {
    if (ws.q_row.size() < hidden_dim()) ws.q_row.resize(hidden_dim());
    if (ws.accum.size() < packed_n) ws.accum.resize(packed_n);
    linalg::i8_gemm_dequant(ws.hidden_f32, packed_beta_q_, ws.recon_f32,
                            ws.q_row, ws.accum);
  }
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const std::span<const float> xr{ws.input_f32.data() + r * n, n};
    const float* recon_row = ws.recon_f32.data() + r * packed_n;
    for (std::size_t label = 0; label < num_labels(); ++label) {
      const std::span<const float> rr{recon_row + label * n, n};
      ws.scores(r, label) =
          static_cast<double>(linalg::squared_l2_distance(xr, rr)) /
          static_cast<double>(n);
    }
  }
}

void MultiInstanceModel::predict_batch(linalg::ConstMatrixView x,
                                       BatchWorkspace& ws,
                                       std::span<Prediction> out) const {
  EDGEDRIFT_ASSERT(out.size() == x.rows(), "prediction buffer size mismatch");
  score_batch(x, ws);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = argmin_score(ws.scores.row(r));
  }
}

void MultiInstanceModel::predict_batch_from_hidden(
    linalg::ConstMatrixView x, linalg::ConstMatrixView h, BatchWorkspace& ws,
    std::span<Prediction> out) const {
  EDGEDRIFT_ASSERT(out.size() == x.rows(), "prediction buffer size mismatch");
  score_batch_from_hidden(x, h, ws);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = argmin_score(ws.scores.row(r));
  }
}

double MultiInstanceModel::score_of(std::span<const double> x,
                                    std::size_t label,
                                    linalg::KernelWorkspace& ws) const {
  EDGEDRIFT_ASSERT(label < num_labels(), "label out of range");
  return instances_[label].score(x, ws);
}

double MultiInstanceModel::score_of(std::span<const double> x,
                                    std::size_t label) const {
  EDGEDRIFT_ASSERT(label < num_labels(), "label out of range");
  return instances_[label].score(x);
}

Prediction MultiInstanceModel::train_closest(std::span<const double> x,
                                             linalg::KernelWorkspace& ws) {
  EDGEDRIFT_ASSERT(instances_.front().initialized(),
                   "train_closest() before initialization");
  // Project once; the hidden vector feeds both the fused scorer and the
  // winning instance's training step (whose err = t - beta^T h would
  // otherwise recompute the same projection).
  const std::span<double> h = ws.hidden(hidden_dim());
  projection_->hidden(x, h);
  const std::span<double> s = ws.scores(num_labels());
  scores_from_hidden(h, x, s, ws);
  const Prediction pred = argmin_score(s);
  instances_[pred.label].train_from_hidden(h, x);
  sync_block_after_train(pred.label);
  return pred;
}

Prediction MultiInstanceModel::train_closest(std::span<const double> x) {
  const Prediction pred = predict(x);
  instances_[pred.label].train(x);
  sync_block_after_train(pred.label);
  return pred;
}

void MultiInstanceModel::train_label(std::span<const double> x,
                                     std::size_t label) {
  EDGEDRIFT_ASSERT(label < num_labels(), "label out of range");
  instances_[label].train(x);
  sync_block_after_train(label);
}

ChunkTrainStats MultiInstanceModel::train_buckets_from_hidden(
    linalg::ConstMatrixView x, linalg::ConstMatrixView h,
    std::span<const std::size_t> labels, BatchWorkspace& ws) {
  EDGEDRIFT_ASSERT(instances_.front().initialized(),
                   "train_buckets_from_hidden() before initialization");
  EDGEDRIFT_ASSERT(x.cols() == input_dim(), "chunk feature dim mismatch");
  EDGEDRIFT_ASSERT(h.rows() == x.rows() && h.cols() == hidden_dim(),
                   "chunk hidden shape mismatch");
  EDGEDRIFT_ASSERT(labels.size() == x.rows(), "chunk label count mismatch");
  ChunkTrainStats stats;
  const std::size_t rows = x.rows();
  if (rows == 0) return stats;
  if (ws.bucket_counts.size() < num_labels()) {
    ws.bucket_counts.resize(num_labels());
  }
  std::fill(ws.bucket_counts.begin(), ws.bucket_counts.begin() + num_labels(),
            std::size_t{0});
  for (const std::size_t l : labels) {
    EDGEDRIFT_ASSERT(l < num_labels(), "chunk label out of range");
    ++ws.bucket_counts[l];
  }
  const std::size_t n = input_dim();
  for (std::size_t c = 0; c < num_labels(); ++c) {
    const std::size_t m = ws.bucket_counts[c];
    if (m == 0) continue;
    // Gather the bucket's rows in stream order; the rank-k update absorbs
    // them all at once (order within the bucket only matters for the exact-
    // arithmetic equivalence argument, not the block algebra itself).
    ws.bucket_h.resize_discard(m, hidden_dim());
    ws.bucket_t.resize_discard(m, n);
    std::size_t cursor = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      if (labels[r] != c) continue;
      ws.bucket_h.set_row(cursor, h.row(r));
      ws.bucket_t.set_row(cursor, x.row(r));
      ++cursor;
    }
    instances_[c].train_batch_from_hidden(ws.bucket_h, ws.bucket_t);
    // The block step invalidates the rank-1 replay factors, so the packed
    // mirror takes a full block copy — and the tier replica one refresh per
    // BUCKET instead of one per sample, the i8 training-cost amortization.
    repack_block(c);
    if (tier_ != linalg::NumericsTier::kExactF64) {
      refresh_replica_block(c);
      ++stats.replica_refreshes;
    }
    stats.rows += m;
    ++stats.buckets;
  }
  return stats;
}

void MultiInstanceModel::reserve_chunk_train(std::size_t chunk,
                                             BatchWorkspace& ws) {
  if (chunk == 0) return;
  for (auto& inst : instances_) inst.reserve_batch(chunk);
  ws.reserve_chunk_train(chunk, input_dim(), hidden_dim(), num_labels());
}

void MultiInstanceModel::reset() {
  for (auto& inst : instances_) inst.reset();
  repack_ensemble();
}

void MultiInstanceModel::apply_permutation(
    std::span<const std::size_t> perm) {
  EDGEDRIFT_ASSERT(perm.size() == num_labels(), "permutation arity mismatch");
  std::vector<oselm::Autoencoder> reordered;
  reordered.reserve(instances_.size());
  for (const std::size_t src : perm) {
    EDGEDRIFT_ASSERT(src < instances_.size(), "permutation index range");
    reordered.push_back(std::move(instances_[src]));
  }
  instances_ = std::move(reordered);
  repack_ensemble();
}

const oselm::Autoencoder& MultiInstanceModel::instance(
    std::size_t label) const {
  EDGEDRIFT_ASSERT(label < num_labels(), "label out of range");
  return instances_[label];
}

oselm::Autoencoder& MultiInstanceModel::instance_mutable(std::size_t label) {
  EDGEDRIFT_ASSERT(label < num_labels(), "label out of range");
  return instances_[label];
}

void MultiInstanceModel::repack_block(std::size_t c) {
  const oselm::OsElm& net = instances_[c].net();
  const linalg::Matrix& beta = net.beta();
  const std::size_t n = input_dim();
  const std::size_t stride = packed_beta_.cols();
  for (std::size_t i = 0; i < hidden_dim(); ++i) {
    const double* src = beta.data() + i * n;
    std::copy(src, src + n, packed_beta_.data() + i * stride + c * n);
  }
  packed_versions_[c] = net.beta_version();
  // Replica refresh is the CALLER's duty after repack_block: init_train
  // fans repack_block over the pool, and refresh_replica_block bumps the
  // shared quantization epoch, which must stay single-threaded.
}

void MultiInstanceModel::sync_block_after_train(std::size_t c) {
  const oselm::OsElm& net = instances_[c].net();
  EDGEDRIFT_DASSERT(net.beta_version() == packed_versions_[c] + 1,
                    "packed block missed a beta update");
  // Replay beta += ph (x) err into the owning column block: ger_block runs
  // the identical element-wise scaled_accumulate the dense ger applied to
  // the instance's beta, so the mirror stays bit-equal without a copy.
  linalg::ger_block(packed_beta_, c * input_dim(), 1.0, net.last_update_ph(),
                    net.last_update_err());
  packed_versions_[c] = net.beta_version();
  // Approximate tiers re-derive the whole block from the mutated master:
  // a rank-1 step can move a column's max|w|, so the i8 scales must be
  // recomputed, and replaying the update in f32 would drift from the master
  // over many steps. Full re-narrow/re-quantize keeps the replica's error a
  // pure function of the current master.
  if (tier_ != linalg::NumericsTier::kExactF64) refresh_replica_block(c);
}

void MultiInstanceModel::repack_ensemble() {
  for (std::size_t c = 0; c < num_labels(); ++c) {
    repack_block(c);
    if (tier_ != linalg::NumericsTier::kExactF64) refresh_replica_block(c);
  }
}

bool MultiInstanceModel::packed_in_sync() const {
  for (std::size_t c = 0; c < num_labels(); ++c) {
    if (packed_versions_[c] != instances_[c].net().beta_version()) {
      return false;
    }
  }
  return true;
}

std::size_t MultiInstanceModel::memory_bytes() const {
  // num_labels() doubles account for the per-sample score scratch predict()
  // keeps on the stack — still part of the device working set. The packed
  // ensemble mirror is deliberately excluded: the device profile stores
  // each beta exactly once (see the header comment).
  std::size_t bytes = projection_->memory_bytes() +
                      num_labels() * sizeof(double);
  for (const auto& inst : instances_) {
    bytes += inst.memory_bytes(/*include_projection=*/false);
  }
  return bytes;
}

}  // namespace edgedrift::model
