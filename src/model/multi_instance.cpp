#include "edgedrift/model/multi_instance.hpp"

#include <limits>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::model {

MultiInstanceModel::MultiInstanceModel(std::size_t num_labels,
                                       oselm::ProjectionPtr projection,
                                       double reg_lambda,
                                       double forgetting_factor)
    : projection_(std::move(projection)) {
  EDGEDRIFT_ASSERT(num_labels > 0, "need at least one label");
  EDGEDRIFT_ASSERT(projection_ != nullptr, "projection must not be null");
  instances_.reserve(num_labels);
  for (std::size_t i = 0; i < num_labels; ++i) {
    instances_.emplace_back(projection_, reg_lambda, forgetting_factor);
  }
}

void MultiInstanceModel::init_train(const linalg::Matrix& x,
                                    std::span<const int> labels) {
  EDGEDRIFT_ASSERT(x.rows() == labels.size(), "X/label row mismatch");
  for (std::size_t label = 0; label < instances_.size(); ++label) {
    // Gather the rows of this label into a contiguous block.
    std::size_t count = 0;
    for (const int l : labels) {
      EDGEDRIFT_ASSERT(l >= 0 && static_cast<std::size_t>(l) < num_labels(),
                       "label out of range");
      if (static_cast<std::size_t>(l) == label) ++count;
    }
    EDGEDRIFT_ASSERT(count > 0, "every label needs initial samples");
    linalg::Matrix block(count, x.cols());
    std::size_t row = 0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      if (static_cast<std::size_t>(labels[r]) == label) {
        block.set_row(row++, x.row(r));
      }
    }
    instances_[label].init_train(block);
  }
}

void MultiInstanceModel::init_sequential() {
  for (auto& inst : instances_) inst.init_sequential();
}

void MultiInstanceModel::scores(std::span<const double> x,
                                std::span<double> out,
                                linalg::KernelWorkspace& ws) const {
  EDGEDRIFT_ASSERT(out.size() == num_labels(), "score buffer size mismatch");
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    out[i] = instances_[i].score(x, ws);
  }
}

void MultiInstanceModel::scores(std::span<const double> x,
                                std::span<double> out) const {
  EDGEDRIFT_ASSERT(out.size() == num_labels(), "score buffer size mismatch");
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    out[i] = instances_[i].score(x);
  }
}

namespace {

Prediction argmin_score(std::span<const double> s) {
  Prediction best{0, std::numeric_limits<double>::infinity()};
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] < best.score) {
      best.label = i;
      best.score = s[i];
    }
  }
  return best;
}

}  // namespace

Prediction MultiInstanceModel::predict(std::span<const double> x,
                                       linalg::KernelWorkspace& ws) const {
  const std::span<double> s = ws.scores(num_labels());
  scores(x, s, ws);
  return argmin_score(s);
}

Prediction MultiInstanceModel::predict(std::span<const double> x) const {
  // Scores on the stack (heap fallback for very wide label sets) so
  // concurrent predict() calls on a frozen model never share scratch.
  constexpr std::size_t kStackLabels = 64;
  double stack_buf[kStackLabels];
  std::vector<double> heap_buf;
  std::span<double> s;
  if (num_labels() <= kStackLabels) {
    s = std::span<double>(stack_buf, num_labels());
  } else {
    heap_buf.resize(num_labels());
    s = heap_buf;
  }
  scores(x, s);
  return argmin_score(s);
}

void MultiInstanceModel::score_batch(const linalg::Matrix& x,
                                     BatchWorkspace& ws) const {
  EDGEDRIFT_ASSERT(x.cols() == input_dim(), "batch feature dim mismatch");
  projection_->hidden_batch_into(x, ws.hidden);
  ws.scores.resize_zero(x.rows(), num_labels());
  for (std::size_t label = 0; label < num_labels(); ++label) {
    const oselm::OsElm& net = instances_[label].net();
    EDGEDRIFT_ASSERT(net.initialized(), "score_batch() before initialization");
    // R = H * beta: each row is bit-identical to the scalar reconstruction
    // (same ascending-k accumulation order in both kernels).
    linalg::matmul_parallel_into(ws.hidden, net.beta(), ws.recon);
    // Same squared_l2_distance kernel as the scalar score() — one shared
    // MSE reduction, so batch and scalar scores agree bit-for-bit.
    const std::size_t n = x.cols();
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const std::span<const double> xr{x.data() + r * n, n};
      const std::span<const double> rr{ws.recon.data() + r * n, n};
      ws.scores(r, label) =
          linalg::squared_l2_distance(xr, rr) / static_cast<double>(n);
    }
  }
}

void MultiInstanceModel::predict_batch(const linalg::Matrix& x,
                                       BatchWorkspace& ws,
                                       std::span<Prediction> out) const {
  EDGEDRIFT_ASSERT(out.size() == x.rows(), "prediction buffer size mismatch");
  score_batch(x, ws);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    Prediction best{0, std::numeric_limits<double>::infinity()};
    for (std::size_t l = 0; l < num_labels(); ++l) {
      const double s = ws.scores(r, l);
      if (s < best.score) {
        best.label = l;
        best.score = s;
      }
    }
    out[r] = best;
  }
}

double MultiInstanceModel::score_of(std::span<const double> x,
                                    std::size_t label,
                                    linalg::KernelWorkspace& ws) const {
  EDGEDRIFT_ASSERT(label < num_labels(), "label out of range");
  return instances_[label].score(x, ws);
}

double MultiInstanceModel::score_of(std::span<const double> x,
                                    std::size_t label) const {
  EDGEDRIFT_ASSERT(label < num_labels(), "label out of range");
  return instances_[label].score(x);
}

Prediction MultiInstanceModel::train_closest(std::span<const double> x,
                                             linalg::KernelWorkspace& ws) {
  const Prediction pred = predict(x, ws);
  instances_[pred.label].train(x);
  return pred;
}

Prediction MultiInstanceModel::train_closest(std::span<const double> x) {
  const Prediction pred = predict(x);
  instances_[pred.label].train(x);
  return pred;
}

void MultiInstanceModel::train_label(std::span<const double> x,
                                     std::size_t label) {
  EDGEDRIFT_ASSERT(label < num_labels(), "label out of range");
  instances_[label].train(x);
}

void MultiInstanceModel::reset() {
  for (auto& inst : instances_) inst.reset();
}

void MultiInstanceModel::apply_permutation(
    std::span<const std::size_t> perm) {
  EDGEDRIFT_ASSERT(perm.size() == num_labels(), "permutation arity mismatch");
  std::vector<oselm::Autoencoder> reordered;
  reordered.reserve(instances_.size());
  for (const std::size_t src : perm) {
    EDGEDRIFT_ASSERT(src < instances_.size(), "permutation index range");
    reordered.push_back(std::move(instances_[src]));
  }
  instances_ = std::move(reordered);
}

const oselm::Autoencoder& MultiInstanceModel::instance(
    std::size_t label) const {
  EDGEDRIFT_ASSERT(label < num_labels(), "label out of range");
  return instances_[label];
}

oselm::Autoencoder& MultiInstanceModel::instance_mutable(std::size_t label) {
  EDGEDRIFT_ASSERT(label < num_labels(), "label out of range");
  return instances_[label];
}

std::size_t MultiInstanceModel::memory_bytes() const {
  // num_labels() doubles account for the per-sample score scratch predict()
  // keeps on the stack — still part of the device working set.
  std::size_t bytes = projection_->memory_bytes() +
                      num_labels() * sizeof(double);
  for (const auto& inst : instances_) {
    bytes += inst.memory_bytes(/*include_projection=*/false);
  }
  return bytes;
}

}  // namespace edgedrift::model
