// Streaming engine throughput: single-sample process(), block-wise
// process_batch() (GEMM scoring through the batch kernels), and
// PipelineManager fanning N independent streams over the thread pool.
//
// There is no paper reference for this table — it quantifies the batched
// hot path and the multi-stream layer added on top of the reproduction:
// process_batch() is bit-identical to process() (tested), so any speedup
// is free, and manager throughput should scale with streams until the
// pool saturates.
// Pass `--json <path>` to also write an edgedrift-bench-v1 record file
// (see bench_json.hpp); ns_per_op is per processed sample.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/stopwatch.hpp"
#include "edgedrift/util/table.hpp"
#include "edgedrift/util/thread_pool.hpp"

using namespace edgedrift;

namespace {

double samples_per_second(std::size_t samples, double seconds) {
  return seconds > 0.0 ? static_cast<double>(samples) / seconds : 0.0;
}

bench::KernelRecord make_record(const std::string& name, std::size_t samples,
                                double seconds) {
  bench::KernelRecord rec;
  rec.name = name;
  rec.samples_per_second = samples_per_second(samples, seconds);
  rec.ns_per_op = samples > 0
                      ? seconds * 1e9 / static_cast<double>(samples)
                      : 0.0;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::extract_json_path(argc, argv);
  std::vector<bench::KernelRecord> records;
  std::printf("=== Streaming engine throughput (NSL-KDD-like) ===\n\n");

  data::NslKddLike generator;
  util::Rng rng(2023);
  const data::Dataset train = generator.training(rng);
  const data::Dataset stream = generator.test_stream(rng);
  core::PipelineConfig config = bench::nsl_kdd_config().pipeline;
  config.input_dim = train.dim();

  util::Table table({"Mode", "Samples", "Time (ms)", "ksamples/s"});

  // Single-sample loop.
  double single_seconds = 0.0;
  {
    core::Pipeline pipeline(config);
    pipeline.fit(train.x, train.labels);
    util::Stopwatch clock;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      pipeline.process(stream.x.row(i));
    }
    single_seconds = clock.elapsed_seconds();
    table.add_row({"process() per sample", std::to_string(stream.size()),
                   util::fmt(single_seconds * 1e3, 1),
                   util::fmt(samples_per_second(stream.size(),
                                                single_seconds) / 1e3, 1)});
    records.push_back(
        make_record("process", stream.size(), single_seconds));
  }

  // Block-wise batched loop (whole stream handed over in blocks; the
  // pipeline chunks internally at config.max_batch_rows).
  for (const std::size_t block : {64UL, 256UL, 1024UL}) {
    core::Pipeline pipeline(config);
    pipeline.fit(train.x, train.labels);
    util::Stopwatch clock;
    std::size_t produced = 0;
    for (std::size_t start = 0; start < stream.size(); start += block) {
      const std::size_t rows = std::min(block, stream.size() - start);
      linalg::Matrix chunk(rows, stream.dim());
      for (std::size_t r = 0; r < rows; ++r) {
        const auto src = stream.x.row(start + r);
        std::copy(src.begin(), src.end(), chunk.row(r).begin());
      }
      produced += pipeline.process_batch(chunk).size();
    }
    const double seconds = clock.elapsed_seconds();
    table.add_row({"process_batch(block=" + std::to_string(block) + ")",
                   std::to_string(produced), util::fmt(seconds * 1e3, 1),
                   util::fmt(samples_per_second(produced, seconds) / 1e3,
                             1)});
    records.push_back(make_record(
        "process_batch/block=" + std::to_string(block), produced, seconds));
  }

  // Multi-stream manager: N copies of the stream, one pipeline each.
  for (const std::size_t streams : {2UL, 4UL, 8UL}) {
    core::PipelineManager manager(config, streams);
    for (std::size_t s = 0; s < streams; ++s) {
      manager.fit(s, train.x, train.labels);
    }
    util::Stopwatch clock;
    for (std::size_t s = 0; s < streams; ++s) {
      manager.submit_batch(s, stream.x);
    }
    manager.drain();
    const double seconds = clock.elapsed_seconds();
    const std::size_t total = manager.totals().samples;
    table.add_row({"manager(" + std::to_string(streams) + " streams)",
                   std::to_string(total), util::fmt(seconds * 1e3, 1),
                   util::fmt(samples_per_second(total, seconds) / 1e3, 1)});
    records.push_back(make_record(
        "manager/streams=" + std::to_string(streams), total, seconds));
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("pool workers: %zu\n", util::ThreadPool::global().size());
  if (!json_path.empty() &&
      !bench::write_kernel_json(json_path, "bench_batch_throughput",
                                records)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
