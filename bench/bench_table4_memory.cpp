// Table 4 reproduction: detector memory utilization on the cooling-fan
// configuration (511 features; QuantTree B=235 K=16; SPLL B=235; proposed
// method = two centroid sets + counters).
//
// Paper reference values (kB): Quant Tree 619, SPLL 1933, Proposed 69.
// The paper measured process-level memory on a Raspberry Pi 4 with float32
// data; this bench instead byte-audits the exact algorithm state each
// detector holds (double precision), which is the quantity the comparison
// is about. Absolute numbers differ by the element width and runtime
// overheads; the ordering and the orders of magnitude are the claim.
#include <cstdio>

#include "bench_common.hpp"
#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/drift/centroid_detector.hpp"
#include "edgedrift/drift/quanttree.hpp"
#include "edgedrift/drift/spll.hpp"
#include "edgedrift/eval/memory_audit.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

int main() {
  std::printf("=== Table 4: detector memory utilization (cooling-fan "
              "config) ===\n\n");

  data::CoolingFanLike generator;
  util::Rng rng(2023);
  const data::Dataset train = generator.training(rng);
  const auto config = bench::cooling_fan_config();

  drift::QuantTree quanttree(config.quanttree);
  quanttree.fit(train.x);

  drift::Spll spll(config.spll);
  spll.fit(train.x);

  drift::CentroidDetectorConfig centroid_config;
  centroid_config.num_labels = 1;
  centroid_config.dim = data::CoolingFanLike::kDim;
  centroid_config.window_size = 50;
  centroid_config.theta_error = 0.1;
  drift::CentroidDetector proposed(centroid_config);
  proposed.calibrate(train.x, train.labels);

  util::Table table({"Detector", "Memory (kB)", "Paper (kB)"});
  table.add_row({"Quant Tree", util::fmt(quanttree.memory_bytes() / 1024.0, 1),
                 "619"});
  table.add_row(
      {"SPLL", util::fmt(spll.memory_bytes() / 1024.0, 1), "1933"});
  table.add_row({"Proposed method",
                 util::fmt(proposed.memory_bytes() / 1024.0, 1), "69"});
  std::printf("%s\n", table.str().c_str());

  const double saving_spll =
      100.0 * (1.0 - static_cast<double>(proposed.memory_bytes()) /
                         static_cast<double>(spll.memory_bytes()));
  const double saving_qt =
      100.0 * (1.0 - static_cast<double>(proposed.memory_bytes()) /
                         static_cast<double>(quanttree.memory_bytes()));
  std::printf("Memory saving of the proposed method: %.1f%% vs SPLL "
              "(paper: 96.4%%), %.1f%% vs Quant Tree (paper: 88.9%%)\n\n",
              saving_spll, saving_qt);

  // Where the bytes go.
  eval::MemoryAudit audit;
  audit.add("QuantTree: B x D batch buffer",
            config.quanttree.batch_size * data::CoolingFanLike::kDim *
                sizeof(double));
  audit.add("SPLL: retained reference window",
            train.size() * data::CoolingFanLike::kDim * sizeof(double));
  audit.add("SPLL: B x D batch buffer",
            config.spll.batch_size * data::CoolingFanLike::kDim *
                sizeof(double));
  audit.add("Proposed: trained + recent centroids",
            2 * 1 * data::CoolingFanLike::kDim * sizeof(double));
  std::printf("--- breakdown of the dominant terms ---\n%s\n",
              audit.table().c_str());

  std::printf("Raspberry Pi Pico check: only the proposed detector fits the "
              "264 kB SRAM\n");
  std::printf("  quanttree %s, spll %s, proposed %s\n",
              quanttree.memory_bytes() < 264 * 1024 ? "FITS" : "does NOT fit",
              spll.memory_bytes() < 264 * 1024 ? "FITS" : "does NOT fit",
              proposed.memory_bytes() < 264 * 1024 ? "FITS" : "does NOT fit");
  return 0;
}
