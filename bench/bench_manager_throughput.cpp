// Serving-layer throughput: PipelineManager ring-buffer ingestion with the
// chunked process_batch() drain against the retained sample-wise baseline
// (DrainMode::kSample plus a per-row submit loop — the manager's pre-ring
// serving path, with its per-sample heap copy and lock rounds).
//
// Both modes run inside the same binary over the same fitted pipelines and
// the same stationary pre-drift stream (drain cost is the object of
// measurement, so no recovery may intervene), interleaved rep by rep with
// the best-of throughput reported per mode — the noise-mitigation protocol
// for single-core containers. Steps are bit-identical across modes
// (tests/test_ingestion.cpp), so the speedup is free.
//
// Three configurations span the regime: NSL-KDD-like (d=38, C=2), where
// the per-sample matvec path is already near memory-bound and the batch
// win comes mostly from amortized bookkeeping; the NSL-KDD full
// attack-label split (d=38, C=23), where one fused GEMM replaces 23
// per-instance reconstructions and the batch advantage is largest; and
// the cooling-fan spectra (d=511, C=1), the wide-input single-instance
// extreme.
//
// The batched drain's advantage is a property of the SIMD backends: the
// fused GEMM amortizes its packing/blocking overhead through wide FMA
// lanes, so on the portable scalar backend the per-sample matvec path can
// win instead. Compare builds before reading the speedup column.
//
// Pass `--json <path>` to write an edgedrift-bench-v1 record file
// (see bench_json.hpp); ns_per_op is per processed sample, aggregate
// across streams. BENCH_manager.json in the repo root is a committed
// example from the native build.
//
// The nsl-kdd 8-stream section also runs an obs-overhead ablation: the
// same batched drain with the observability layer's runtime gate on vs
// off, interleaved. The two records (drain=batch/obs=on|off) feed
// tools/check_obs_overhead.py, which perf-smoke CI uses to pin the obs
// recording cost under its budget. Pass `--stats-json <path>` to also
// dump the obs=on manager's edgedrift-obs-v1 snapshot.
//
// The nsl-kdd section also carries the coalescing ablation: a seeded
// projection group of 16/64 resident streams drained at 1-8 pending
// rows/stream with the cross-stream planner on vs off
// (DrainOptions::coalesce). The resident=64 records feed
// tools/check_coalesce_gain.py, which perf-smoke CI uses to gate the
// mega-batch drain's advantage at high density.
//
// The nsl-kdd-c23 section additionally sweeps the serving shards (1/2/4/8
// core-pinned workers × hot=all|half) — those records feed
// tools/check_shard_scaling.py, which gates drain-scaling efficiency
// normalized by the runner's core count — and a final stream-density
// section seeds 100k streams cold from one template and measures
// end-to-end restore+drain+evict throughput over a rotating touched
// subset under a 64-stream hot budget.
#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/data/stream.hpp"
#include "edgedrift/linalg/numerics.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/stopwatch.hpp"
#include "edgedrift/util/table.hpp"
#include "edgedrift/util/thread_pool.hpp"

using namespace edgedrift;

namespace {

constexpr std::size_t kReps = 5;

struct ModeRun {
  std::string label;
  core::ManagerOptions options;
  bool batch_submit = true;
  std::unique_ptr<core::PipelineManager> manager;
  double best_samples_per_second = 0.0;
};

double run_rep(core::PipelineManager& manager, const linalg::Matrix& stream,
               bool batch_submit) {
  util::Stopwatch clock;
  for (std::size_t s = 0; s < manager.num_streams(); ++s) {
    if (batch_submit) {
      manager.submit_batch(s, stream);
    } else {
      // The pre-ring submit_batch() was exactly this per-row loop; the
      // baseline keeps its per-sample ingestion cost too.
      for (std::size_t r = 0; r < stream.rows(); ++r) {
        manager.submit(s, stream.row(r));
      }
    }
  }
  manager.drain();
  const double seconds = clock.elapsed_seconds();
  return seconds > 0.0 ? static_cast<double>(manager.num_streams() *
                                             stream.rows()) /
                             seconds
                       : 0.0;
}

bench::KernelRecord make_record(const std::string& name, double sps,
                                const char* precision = "f64") {
  bench::KernelRecord rec;
  rec.name = name;
  rec.precision = precision;
  rec.samples_per_second = sps;
  rec.ns_per_op = sps > 0.0 ? 1e9 / sps : 0.0;
  return rec;
}

/// Coalescing ablation: `resident` streams seeded from one fitted template
/// (so the whole population is one projection group) each carrying `burst`
/// pending rows per drain cycle — the high-density regime the drain planner
/// targets, where the per-stream path runs one tiny projection GEMM per
/// stream. kManual dispatch so every drain() is exactly one planning pass
/// over all resident streams; coalesce on vs off interleaved rep by rep,
/// best-of. `tier` runs the whole comparison under a numerics override
/// (records carry it in `precision`).
void run_coalesce_ablation(const core::PipelineConfig& config,
                           const data::Dataset& train,
                           const linalg::Matrix& stream,
                           std::size_t resident, std::size_t burst,
                           std::optional<linalg::NumericsTier> tier,
                           const char* precision, util::Table& table,
                           std::vector<bench::KernelRecord>& records) {
  constexpr std::size_t kSamplesPerRep = 8192;
  constexpr std::size_t kBlockRotation = 32;
  const std::size_t rounds =
      std::max<std::size_t>(1, kSamplesPerRep / (resident * burst));

  // Rotating pre-built submit blocks: no per-submit Matrix construction on
  // the measured path, modest variety so the windows don't degenerate.
  std::vector<linalg::Matrix> blocks;
  for (std::size_t b = 0; b < kBlockRotation; ++b) {
    linalg::Matrix block(burst, stream.cols());
    for (std::size_t r = 0; r < burst; ++r) {
      block.set_row(r, stream.row((b * burst + r) % stream.rows()));
    }
    blocks.push_back(std::move(block));
  }

  std::vector<ModeRun> modes(2);
  modes[0].label = "coalesce=on";
  modes[1].label = "coalesce=off";
  for (std::size_t m = 0; m < modes.size(); ++m) {
    core::ManagerOptions options;
    options.dispatch = core::DispatchMode::kManual;
    options.queue_capacity = std::max<std::size_t>(64, burst);
    options.drain_opts.coalesce = m == 0;
    options.numerics = tier;
    modes[m].options = options;
    modes[m].manager =
        std::make_unique<core::PipelineManager>(config, 1, options);
    modes[m].manager->fit(0, train.x, train.labels);
    modes[m].manager->seed_cold_from(0, resident - 1);
    // Warm every seeded stream hot once so the measured reps never pay the
    // first-touch restore.
    for (std::size_t s = 0; s < resident; ++s) {
      modes[m].manager->submit_batch(s, blocks[0]);
    }
    modes[m].manager->drain();
    for (std::size_t s = 0; s < resident; ++s) {
      modes[m].manager->take_steps(s);
    }
  }

  // More reps than the stream-count sweeps, and median instead of best-of:
  // the on/off ratio feeds a CI gate (tools/check_coalesce_gain.py), and a
  // best-of ratio is biased by whichever mode draws the luckier outlier —
  // the interleaved medians estimate the typical cost of each mode.
  constexpr std::size_t kCoalesceReps = 9;
  std::array<std::vector<double>, 2> rep_sps;
  for (std::size_t rep = 0; rep < kCoalesceReps; ++rep) {
    for (std::size_t m = 0; m < modes.size(); ++m) {
      util::Stopwatch clock;
      for (std::size_t round = 0; round < rounds; ++round) {
        const linalg::Matrix& block = blocks[round % kBlockRotation];
        for (std::size_t s = 0; s < resident; ++s) {
          modes[m].manager->submit_batch(s, block);
        }
        modes[m].manager->drain();
      }
      const double seconds = clock.elapsed_seconds();
      const double sps =
          seconds > 0.0
              ? static_cast<double>(resident * burst * rounds) / seconds
              : 0.0;
      rep_sps[m].push_back(sps);
      for (std::size_t s = 0; s < resident; ++s) {
        modes[m].manager->take_steps(s);
      }
    }
  }
  for (std::size_t m = 0; m < modes.size(); ++m) {
    auto& reps = rep_sps[m];
    auto mid = reps.begin() + reps.size() / 2;
    std::nth_element(reps.begin(), mid, reps.end());
    modes[m].best_samples_per_second = *mid;
  }

  const std::string prefix = "nsl-kdd/coalesce/resident=" +
                             std::to_string(resident) +
                             "/burst=" + std::to_string(burst);
  const double off = modes[1].best_samples_per_second;
  for (const ModeRun& m : modes) {
    const double sps = m.best_samples_per_second;
    table.add_row({"nsl-kdd",
                   std::to_string(resident) + std::string("/") + precision,
                   "burst=" + std::to_string(burst) + "/" + m.label,
                   util::fmt(sps > 0.0 ? 1e9 / sps : 0.0, 0),
                   util::fmt(sps / 1e3, 1),
                   util::fmt(off > 0.0 ? sps / off : 0.0, 2)});
    records.push_back(
        make_record(prefix + "/" + m.label, sps, precision));
  }
  const obs::Snapshot snap = modes[0].manager->stats();
  const obs::ShardSnapshot& sh = snap.shards[0];
  std::printf(
      "coalesce resident=%zu burst=%zu (%s): %llu mega-batch GEMMs, "
      "%.1f rows/GEMM, %llu fallback streams\n",
      resident, burst, precision,
      static_cast<unsigned long long>(sh.coalesced_gemms), sh.rows_per_gemm(),
      static_cast<unsigned long long>(sh.coalesce_fallbacks));
}

/// Training-side ablation: `resident` streams seeded from one template are
/// driven into a never-ending kResetRecalibrate recovery (n_total is set
/// beyond the horizon), so every drained sample is a recovery training
/// sample — the workload the chunked rank-k path
/// (PipelineConfig::train_chunk) exists for. One manager per chunk size in
/// {1,4,8} over identical drifted submissions, interleaved rep by rep,
/// median-of-9 (the chunk=8/chunk=1 i8 ratio feeds a CI gate,
/// tools/check_train_gain.py, and a best-of ratio is outlier-biased).
void run_train_ablation(const core::PipelineConfig& base,
                        const data::Dataset& train,
                        const linalg::Matrix& drifted, std::size_t resident,
                        std::size_t burst,
                        std::optional<linalg::NumericsTier> tier,
                        const char* precision, util::Table& table,
                        std::vector<bench::KernelRecord>& records) {
  constexpr std::size_t kSamplesPerRep = 4096;
  constexpr std::size_t kBlockRotation = 32;
  const std::size_t rounds =
      std::max<std::size_t>(1, kSamplesPerRep / (resident * burst));

  core::PipelineConfig config = base;
  config.recovery = core::RecoveryPolicy::kResetRecalibrate;
  // Recovery must span the whole measurement: the retraining never ends.
  config.reconstruction.n_total = std::size_t{1} << 30;

  std::vector<linalg::Matrix> blocks;
  for (std::size_t b = 0; b < kBlockRotation; ++b) {
    linalg::Matrix block(burst, drifted.cols());
    for (std::size_t r = 0; r < burst; ++r) {
      block.set_row(r, drifted.row((b * burst + r) % drifted.rows()));
    }
    blocks.push_back(std::move(block));
  }

  const std::array<std::size_t, 3> chunks = {1, 4, 8};
  std::vector<ModeRun> modes(chunks.size());
  for (std::size_t m = 0; m < modes.size(); ++m) {
    modes[m].label = "chunk=" + std::to_string(chunks[m]);
    core::ManagerOptions options;
    options.dispatch = core::DispatchMode::kManual;
    options.queue_capacity = std::max<std::size_t>(64, burst);
    options.drain_opts.train_chunk = chunks[m];
    options.numerics = tier;
    modes[m].options = options;
    modes[m].manager =
        std::make_unique<core::PipelineManager>(config, 1, options);
    modes[m].manager->fit(0, train.x, train.labels);
    modes[m].manager->seed_cold_from(0, resident - 1);
    // Warm-up doubles as the drift trigger: drive the drifted stream until
    // every resident stream has entered its (endless) recovery.
    bool all_recovering = false;
    for (std::size_t round = 0; round < 400 && !all_recovering; ++round) {
      for (std::size_t s = 0; s < resident; ++s) {
        modes[m].manager->submit_batch(s, blocks[round % kBlockRotation]);
      }
      modes[m].manager->drain();
      all_recovering = true;
      for (std::size_t s = 0; s < resident; ++s) {
        modes[m].manager->take_steps(s);
        all_recovering =
            all_recovering && modes[m].manager->stream(s).recovering();
      }
    }
    if (!all_recovering) {
      std::fprintf(stderr,
                   "train ablation (%s, %s): warm-up never drifted every "
                   "stream — rows are not pure training\n",
                   precision, modes[m].label.c_str());
    }
  }

  constexpr std::size_t kTrainReps = 9;
  std::array<std::vector<double>, 3> rep_sps;
  for (std::size_t rep = 0; rep < kTrainReps; ++rep) {
    for (std::size_t m = 0; m < modes.size(); ++m) {
      util::Stopwatch clock;
      for (std::size_t round = 0; round < rounds; ++round) {
        const linalg::Matrix& block = blocks[round % kBlockRotation];
        for (std::size_t s = 0; s < resident; ++s) {
          modes[m].manager->submit_batch(s, block);
        }
        modes[m].manager->drain();
      }
      const double seconds = clock.elapsed_seconds();
      rep_sps[m].push_back(
          seconds > 0.0
              ? static_cast<double>(resident * burst * rounds) / seconds
              : 0.0);
      for (std::size_t s = 0; s < resident; ++s) {
        modes[m].manager->take_steps(s);
      }
    }
  }
  for (std::size_t m = 0; m < modes.size(); ++m) {
    auto& reps = rep_sps[m];
    auto mid = reps.begin() + reps.size() / 2;
    std::nth_element(reps.begin(), mid, reps.end());
    modes[m].best_samples_per_second = *mid;
  }

  const std::string prefix = "nsl-kdd/train/resident=" +
                             std::to_string(resident) +
                             "/burst=" + std::to_string(burst);
  const double per_sample = modes[0].best_samples_per_second;
  for (const ModeRun& m : modes) {
    const double sps = m.best_samples_per_second;
    table.add_row({"nsl-kdd",
                   std::to_string(resident) + std::string("/") + precision,
                   "train/burst=" + std::to_string(burst) + "/" + m.label,
                   util::fmt(sps > 0.0 ? 1e9 / sps : 0.0, 0),
                   util::fmt(sps / 1e3, 1),
                   util::fmt(per_sample > 0.0 ? sps / per_sample : 0.0, 2)});
    records.push_back(make_record(prefix + "/" + m.label, sps, precision));
  }
  const obs::CounterSnapshot totals = modes.back().manager->stats().totals();
  std::printf(
      "train ablation (%s) chunk=8: %llu block updates over %llu rows, "
      "%llu requantizations saved\n",
      precision, static_cast<unsigned long long>(totals.chunk_trains),
      static_cast<unsigned long long>(totals.chunk_train_rows),
      static_cast<unsigned long long>(totals.requants_saved));
}

/// Interleaved best-of comparison of the sample-wise baseline vs the
/// batched drain at one stream count. Returns {baseline, batch} samples/s
/// and appends table rows + JSON records under `prefix`.
std::pair<double, double> run_modes(const std::string& prefix,
                                    const core::PipelineConfig& config,
                                    const data::Dataset& train,
                                    const linalg::Matrix& stream,
                                    std::size_t streams, util::Table& table,
                                    std::vector<bench::KernelRecord>& records) {
  // The ring holds the whole stream so ingestion never backpressures: the
  // measured quantity is the serving path, identical producers either way.
  core::ManagerOptions base;
  base.queue_capacity = stream.rows();

  // Recovery must not intervene (its sequential retraining would swamp the
  // drain cost in both modes), so detections — if the detector fires on a
  // noisy stationary window — only reset the detector.
  core::PipelineConfig frozen_config = config;
  frozen_config.recovery = core::RecoveryPolicy::kDetectOnly;

  std::vector<ModeRun> modes(2);
  modes[0].label = "sample";
  modes[0].options = base;
  modes[0].options.drain = core::DrainMode::kSample;
  modes[0].batch_submit = false;
  modes[1].label = "batch";
  modes[1].options = base;
  for (ModeRun& m : modes) {
    m.manager = std::make_unique<core::PipelineManager>(frozen_config, streams,
                                                        m.options);
    for (std::size_t s = 0; s < streams; ++s) {
      m.manager->fit(s, train.x, train.labels);
    }
  }

  for (std::size_t rep = 0; rep < kReps; ++rep) {
    for (ModeRun& m : modes) {
      const double sps = run_rep(*m.manager, stream, m.batch_submit);
      m.best_samples_per_second = std::max(m.best_samples_per_second, sps);
      for (std::size_t s = 0; s < streams; ++s) m.manager->take_steps(s);
    }
  }

  const double baseline = modes[0].best_samples_per_second;
  for (const ModeRun& m : modes) {
    const double sps = m.best_samples_per_second;
    table.add_row({prefix, std::to_string(streams), m.label,
                   util::fmt(sps > 0.0 ? 1e9 / sps : 0.0, 0),
                   util::fmt(sps / 1e3, 1),
                   util::fmt(baseline > 0.0 ? sps / baseline : 0.0, 2)});
    records.push_back(make_record(prefix + "/streams=" +
                                      std::to_string(streams) +
                                      "/drain=" + m.label,
                                  sps));
  }
  // Telemetry dies with the managers at the end of this scope — print the
  // batch run's serving counters for stream 0 while they are alive.
  const core::StreamTelemetry& t = modes[1].manager->telemetry(0);
  std::printf(
      "%s @%zu streams (batch): high-water %zu, %zu bursts, "
      "busy drain-rate %.0f ksamples/s\n",
      prefix.c_str(), streams, t.queue_high_water.load(), t.drain_bursts,
      t.samples_per_second() / 1e3);
  return {baseline, modes[1].best_samples_per_second};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::extract_json_path(argc, argv);
  const std::string stats_json_path =
      bench::extract_path_flag(argc, argv, "--stats-json");
  std::vector<bench::KernelRecord> records;
  std::printf("=== Serving-layer throughput (stationary streams) ===\n");
  std::printf("pool workers: %zu, reps: %zu (interleaved, best-of)\n\n",
              util::ThreadPool::global().size(), kReps);

  util::Table table({"Config", "Streams", "Drain", "best ns/sample",
                     "ksamples/s", "speedup"});

  // NSL-KDD-like (d=38, C=2): training block plus a stationary pre-drift
  // stream — a second draw of the training concept, so the drain never
  // leaves the frozen batch path and every rep sees identical state.
  {
    data::NslKddLikeConfig stream_config;
    stream_config.train_size = 6000;
    util::Rng train_rng(2023);
    util::Rng stream_rng(2024);
    const data::Dataset train = data::NslKddLike().training(train_rng);
    const data::Dataset stationary =
        data::NslKddLike(stream_config).training(stream_rng);
    core::PipelineConfig config = bench::nsl_kdd_config().pipeline;
    config.input_dim = train.dim();

    for (const std::size_t streams : {1UL, 8UL}) {
      run_modes("nsl-kdd", config, train, stationary.x, streams, table,
                records);
    }

    // Drain chunk ablation at 8 streams, batch mode only. Same
    // recovery-free protocol as run_modes.
    config.recovery = core::RecoveryPolicy::kDetectOnly;
    for (const std::size_t chunk : {32UL, 512UL}) {
      core::ManagerOptions options;
      options.queue_capacity = stationary.x.rows();
      options.drain_batch_max = chunk;
      core::PipelineManager manager(config, 8, options);
      for (std::size_t s = 0; s < 8; ++s) {
        manager.fit(s, train.x, train.labels);
      }
      double best = 0.0;
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        best = std::max(best, run_rep(manager, stationary.x, true));
        for (std::size_t s = 0; s < 8; ++s) manager.take_steps(s);
      }
      table.add_row({"nsl-kdd", "8", "batch/chunk=" + std::to_string(chunk),
                     util::fmt(best > 0.0 ? 1e9 / best : 0.0, 0),
                     util::fmt(best / 1e3, 1), "-"});
      records.push_back(
          make_record("nsl-kdd/streams=8/drain=batch/chunk=" +
                          std::to_string(chunk),
                      best));
    }

    // Obs-overhead ablation at 8 streams, batch drain: identical protocol
    // with the observability layer's runtime gate on vs off.
    {
      core::ManagerOptions options;
      options.queue_capacity = stationary.x.rows();
      core::PipelineConfig off_config = config;
      off_config.obs.enabled = false;
      std::vector<ModeRun> modes(2);
      modes[0].label = "obs=on";
      modes[1].label = "obs=off";
      for (std::size_t m = 0; m < modes.size(); ++m) {
        modes[m].options = options;
        modes[m].manager = std::make_unique<core::PipelineManager>(
            m == 0 ? config : off_config, 8, options);
        for (std::size_t s = 0; s < 8; ++s) {
          modes[m].manager->fit(s, train.x, train.labels);
        }
      }
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        for (ModeRun& m : modes) {
          const double sps = run_rep(*m.manager, stationary.x, true);
          m.best_samples_per_second =
              std::max(m.best_samples_per_second, sps);
          for (std::size_t s = 0; s < 8; ++s) m.manager->take_steps(s);
        }
      }
      for (const ModeRun& m : modes) {
        const double sps = m.best_samples_per_second;
        table.add_row({"nsl-kdd", "8", "batch/" + m.label,
                       util::fmt(sps > 0.0 ? 1e9 / sps : 0.0, 0),
                       util::fmt(sps / 1e3, 1), "-"});
        records.push_back(
            make_record("nsl-kdd/streams=8/drain=batch/" + m.label, sps));
      }
      if (!stats_json_path.empty()) {
        if (modes[0].manager->stats().write_json(stats_json_path,
                                                 "bench_manager_throughput")) {
          std::printf("obs snapshot written to %s\n",
                      stats_json_path.c_str());
        } else {
          std::fprintf(stderr, "cannot write %s\n", stats_json_path.c_str());
        }
      }
    }

    // Coalescing ablation: resident-streams sweep at 1-8 pending
    // samples/stream — the high-density drain regime. Every resident
    // population is one seeded projection group; coalesce=off is the
    // per-stream drain over identical submissions. The 64-resident rows
    // feed tools/check_coalesce_gain.py (perf-smoke gates coalesced >=
    // 1.3x per-stream there); the i8 rows show the gain carries to the
    // density tier.
    {
      core::PipelineConfig frozen = config;
      frozen.recovery = core::RecoveryPolicy::kDetectOnly;
      for (const std::size_t resident : {16UL, 64UL}) {
        for (const std::size_t burst : {1UL, 4UL, 8UL}) {
          run_coalesce_ablation(frozen, train, stationary.x, resident, burst,
                                std::nullopt, "f64", table, records);
        }
      }
      for (const std::size_t burst : {1UL, 8UL}) {
        run_coalesce_ablation(frozen, train, stationary.x, 64, burst,
                              linalg::NumericsTier::kQuantI8, "i8", table,
                              records);
      }
    }

    // Training-side ablation: the same template population held in an
    // endless recovery, so the drain is pure self-label retraining. Chunk
    // {1,4,8} at f64 and i8; the i8 rows feed tools/check_train_gain.py
    // (perf-smoke gates chunk=8 >= 1.4x chunk=1 there — the requant
    // amortization is the dominant term in that tier).
    {
      linalg::Matrix drifted = stationary.x;
      for (std::size_t i = 0; i < drifted.rows(); ++i) {
        for (std::size_t j = 0; j < drifted.cols(); j += 2) {
          drifted(i, j) += 0.9;
        }
      }
      run_train_ablation(config, train, drifted, 16, 8, std::nullopt, "f64",
                         table, records);
      run_train_ablation(config, train, drifted, 16, 8,
                         linalg::NumericsTier::kQuantI8, "i8", table,
                         records);
    }
  }

  // NSL-KDD full attack-label split (d=38, C=23 — the label-rich regime
  // bench_fused_scoring tracks): with 23 OS-ELM instances behind one packed
  // beta, the fused GEMM drain amortizes what the per-sample path pays per
  // instance, so the batch advantage is largest here.
  {
    util::Rng mean_rng(77);
    std::vector<data::GaussianClass> classes(23);
    for (auto& cls : classes) {
      cls.mean.resize(data::NslKddLike::kDim);
      for (auto& m : cls.mean) m = mean_rng.uniform(-2.0, 2.0);
      cls.stddev = {0.4};
      cls.weight = 1.0;
    }
    const data::GaussianConcept source(classes);
    util::Rng train_rng(2027);
    util::Rng stream_rng(2028);
    const data::Dataset train = data::draw(source, 2300, train_rng);
    const data::Dataset stationary = data::draw(source, 6000, stream_rng);
    core::PipelineConfig config = bench::nsl_kdd_config().pipeline;
    config.input_dim = train.dim();
    config.num_labels = classes.size();

    run_modes("nsl-kdd-c23", config, train, stationary.x, 8, table, records);

    // Shard sweep at 8 streams, batch drain: 1/2/4/8 core-pinned shards,
    // each at two hot ratios — hot=all (no eviction, pure drain scaling)
    // and hot=half (the per-shard budget halved, so every rep pays
    // evict/restore churn on top of the drain). All eight managers run
    // interleaved rep by rep, best-of. The drain work is per-stream
    // independent, so the hot=all speedup should track min(shards, cores);
    // perf-smoke normalizes exactly that way (tools/check_shard_scaling.py)
    // and this host's core count is printed with the records.
    {
      core::PipelineConfig frozen = config;
      frozen.recovery = core::RecoveryPolicy::kDetectOnly;
      constexpr std::size_t kStreams = 8;
      std::vector<ModeRun> sweep;
      for (const std::size_t shards : {1UL, 2UL, 4UL, 8UL}) {
        for (const bool limit_hot : {false, true}) {
          ModeRun m;
          m.label = "shards=" + std::to_string(shards) +
                    (limit_hot ? "/hot=half" : "/hot=all");
          m.options.queue_capacity = stationary.x.rows();
          m.options.shards = shards;
          m.options.pin_cores = true;
          if (limit_hot) {
            // Half the per-shard stream load, at least one resident.
            m.options.hot_stream_budget =
                std::max<std::size_t>(1, kStreams / (2 * shards));
          }
          m.manager = std::make_unique<core::PipelineManager>(
              frozen, kStreams, m.options);
          for (std::size_t s = 0; s < kStreams; ++s) {
            m.manager->fit(s, train.x, train.labels);
          }
          sweep.push_back(std::move(m));
        }
      }
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        for (ModeRun& m : sweep) {
          const double sps = run_rep(*m.manager, stationary.x, true);
          m.best_samples_per_second =
              std::max(m.best_samples_per_second, sps);
          for (std::size_t s = 0; s < kStreams; ++s) m.manager->take_steps(s);
        }
      }
      const double one_shard = sweep[0].best_samples_per_second;
      for (const ModeRun& m : sweep) {
        const double sps = m.best_samples_per_second;
        table.add_row({"nsl-kdd-c23", "8", "batch/" + m.label,
                       util::fmt(sps > 0.0 ? 1e9 / sps : 0.0, 0),
                       util::fmt(sps / 1e3, 1),
                       util::fmt(one_shard > 0.0 ? sps / one_shard : 0.0,
                                 2)});
        records.push_back(make_record(
            "nsl-kdd-c23/streams=8/drain=batch/" + m.label, sps));
      }
      const obs::Snapshot snap = sweep.back().manager->stats();
      std::uint64_t evictions = 0;
      std::uint64_t restores = 0;
      bool pinned = true;
      for (const obs::ShardSnapshot& sh : snap.shards) {
        evictions += sh.evictions;
        restores += sh.restores;
        pinned = pinned && sh.pinned;
      }
      std::printf(
          "shard sweep: %u cores, shards=8/hot=half saw %llu evictions / "
          "%llu restores, workers pinned: %s\n",
          std::thread::hardware_concurrency(),
          static_cast<unsigned long long>(evictions),
          static_cast<unsigned long long>(restores),
          pinned ? "yes" : "no");
    }
  }

  // Stream-density run: registered-stream scale is bounded by cold-store
  // bytes, not resident models. One fitted template seeds 100k streams
  // cold (seed_cold_from: one checkpoint blob shared by the whole
  // population); a rotating subset is then touched with short blocks, so
  // every touch pays a restore and the budget keeps evicting behind it.
  // Reported throughput is end-to-end: restore + ingest + drain + evict.
  {
    constexpr std::size_t kRegistered = 100000;
    constexpr std::size_t kTouched = 512;
    constexpr std::size_t kBlock = 32;
    constexpr std::size_t kPasses = 2;

    data::NslKddLikeConfig stream_config;
    stream_config.train_size = 6000;
    util::Rng train_rng(2033);
    util::Rng stream_rng(2034);
    const data::Dataset train = data::NslKddLike().training(train_rng);
    const data::Dataset stationary =
        data::NslKddLike(stream_config).training(stream_rng);
    core::PipelineConfig config = bench::nsl_kdd_config().pipeline;
    config.input_dim = train.dim();
    config.recovery = core::RecoveryPolicy::kDetectOnly;

    core::ManagerOptions options;
    options.queue_capacity = kBlock;
    options.shards = 4;
    options.hot_stream_budget = 16;  // 64 hot across 4 shards.
    core::PipelineManager manager(config, 1, options);
    manager.fit(0, train.x, train.labels);
    const std::size_t first = manager.seed_cold_from(0, kRegistered - 1);

    linalg::Matrix block(kBlock, train.dim());
    for (std::size_t r = 0; r < kBlock; ++r) {
      block.set_row(r, stationary.x.row(r));
    }
    const std::size_t stride = (kRegistered - 1) / kTouched;
    util::Stopwatch clock;
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
      for (std::size_t t = 0; t < kTouched; ++t) {
        manager.submit_batch(first + t * stride, block);
      }
      manager.drain();
    }
    const double seconds = clock.elapsed_seconds();
    const double sps =
        seconds > 0.0
            ? static_cast<double>(kTouched * kBlock * kPasses) / seconds
            : 0.0;
    table.add_row({"nsl-kdd", "100k", "density/hot=64",
                   util::fmt(sps > 0.0 ? 1e9 / sps : 0.0, 0),
                   util::fmt(sps / 1e3, 1), "-"});
    records.push_back(make_record(
        "nsl-kdd/density/registered=100k/hot=64/touched=512", sps));
    std::printf(
        "density: %zu registered, %zu resident / %zu cold after %zu "
        "touched-stream passes\n",
        manager.num_streams(), manager.hot_streams(),
        manager.cold_streams(), kPasses);
  }

  // Cooling-fan spectra (d=511, C=1): the wide-input regime where the
  // fused GEMM drain dominates the per-sample matvec path on compute.
  {
    data::CoolingFanLikeConfig stream_config;
    stream_config.train_size = 3000;
    util::Rng train_rng(2025);
    util::Rng stream_rng(2026);
    const data::Dataset train =
        data::CoolingFanLike().training(train_rng);
    const data::Dataset stationary =
        data::CoolingFanLike(stream_config).training(stream_rng);
    core::PipelineConfig config = bench::cooling_fan_config().pipeline;
    config.input_dim = train.dim();

    run_modes("fan", config, train, stationary.x, 8, table, records);
  }

  std::printf("\n%s\n", table.str().c_str());
  if (!json_path.empty() &&
      !bench::write_kernel_json(json_path, "bench_manager_throughput",
                                records)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
