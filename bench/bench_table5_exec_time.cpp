// Table 5 reproduction: execution time of the four feature-based methods
// over the 700-sample cooling-fan stream.
//
// Paper reference values on Raspberry Pi 4 (seconds): Quant Tree 1.52,
// SPLL 9.28, Baseline 1.05, Proposed 1.50. Absolute times on a desktop CPU
// are far smaller; the claim is the ordering (SPLL slowest by a wide
// margin, proposed ~ QuantTree, baseline cheapest) and the ratios.
#include <cstdio>

#include "bench_common.hpp"
#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/eval/experiment.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

int main() {
  std::printf("=== Table 5: execution time for 700 samples (cooling fan) "
              "===\n\n");

  data::CoolingFanLike generator;
  util::Rng rng(2023);
  const data::Dataset train = generator.training(rng);
  util::Rng stream_rng(99);
  const data::Dataset stream = generator.sudden_stream(stream_rng);
  const auto config = bench::cooling_fan_config();

  struct Row {
    eval::Method method;
    const char* label;
    const char* paper;
  };
  const Row rows[] = {
      {eval::Method::kQuantTree, "Quant Tree", "1.52"},
      {eval::Method::kSpll, "SPLL", "9.28"},
      {eval::Method::kBaseline, "Baseline (no detection)", "1.05"},
      {eval::Method::kProposed, "Proposed method", "1.50"},
  };

  util::Table table({"Method", "Time (ms)", "Relative to baseline",
                     "Paper time on Pi 4 (s)"});
  double baseline_seconds = 0.0;
  double measured[4] = {0, 0, 0, 0};
  // Run baseline first to normalize, then everything in table order.
  for (int repeat = 0; repeat < 2; ++repeat) {
    // First pass warms caches; second pass is reported.
    for (int r = 0; r < 4; ++r) {
      const auto result =
          eval::run_experiment(rows[r].method, train, stream, config);
      measured[r] = result.runtime_seconds;
      if (rows[r].method == eval::Method::kBaseline) {
        baseline_seconds = result.runtime_seconds;
      }
    }
  }
  for (int r = 0; r < 4; ++r) {
    table.add_row({rows[r].label, util::fmt(measured[r] * 1e3, 1),
                   util::fmt(measured[r] / baseline_seconds, 2) + "x",
                   rows[r].paper});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Expected shape: SPLL slowest (k-means + bootstrap at fit and "
              "refit); proposed\nand QuantTree within a small factor of the "
              "baseline.\n");
  return 0;
}
