// Fused-vs-per-instance ensemble scoring: the PR-3 hot-path comparison.
//
// The multi-instance model scores a sample against all C autoencoder
// instances. The per-instance path projects the sample into hidden space
// once PER INSTANCE (C projections + C reconstructions); the fused path
// projects once and reconstructs every instance with a single matvec
// against the packed [L x C*n] ensemble beta — (1 + C) GEMV-equivalents
// instead of 2C, an expected 2C/(1+C) speedup that grows with C.
//
// Geometry is the paper's fan-anomaly configuration (d = 38, L = 22)
// swept across ensemble widths C in {2, 3, 5, 23}. The *F32 / *I8 variants
// run the same hot paths under the fp32 and int8 scoring tiers
// (linalg/numerics.hpp); StreamDensity rows report the scoring-replica
// bytes a gateway must hold per stream at each tier. `--json <path>` emits
// the edgedrift-bench-v1 schema (committed example: BENCH_model.json).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "edgedrift/linalg/workspace.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using namespace edgedrift;
using linalg::Matrix;

constexpr std::size_t kDim = 38;
constexpr std::size_t kHidden = 22;
constexpr std::size_t kProbeRows = 256;

struct BenchSetup {
  model::MultiInstanceModel model;
  Matrix probes;
};

BenchSetup make_setup(std::size_t num_labels,
                      linalg::NumericsTier tier =
                          linalg::NumericsTier::kExactF64) {
  util::Rng rng(42);
  auto projection =
      oselm::make_projection(kDim, kHidden, oselm::Activation::kSigmoid, rng);
  model::MultiInstanceModel model(num_labels, std::move(projection), 1e-2);
  Matrix train(num_labels * 60, kDim);
  std::vector<int> labels(train.rows());
  for (std::size_t i = 0; i < train.rows(); ++i) {
    labels[i] = static_cast<int>(i % num_labels);
    for (std::size_t j = 0; j < kDim; ++j) {
      const double center =
          0.2 + 0.6 * static_cast<double>((labels[i] + j) % num_labels);
      train(i, j) = rng.gaussian(center, 0.2);
    }
  }
  model.init_train(train, labels);
  model.set_numerics_tier(tier);
  Matrix probes(kProbeRows, kDim);
  for (std::size_t i = 0; i < kProbeRows; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) {
      probes(i, j) = rng.gaussian(0.5, 0.4);
    }
  }
  return BenchSetup{std::move(model), std::move(probes)};
}

/// Fused ensemble scoring: one shared hidden projection + one packed
/// matvec reconstructs all C instances.
void BM_ScoresFused(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  BenchSetup setup = make_setup(c);
  linalg::KernelWorkspace ws;
  std::vector<double> out(c);
  std::size_t i = 0;
  for (auto _ : state) {
    setup.model.scores(setup.probes.row(i), out, ws);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % kProbeRows;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScoresFused)->Arg(2)->Arg(3)->Arg(5)->Arg(23);

/// Fused scoring under the fp32 tier: same shared projection, packed
/// matvec against the narrowed f32 beta replica (half the bandwidth,
/// twice the SIMD lanes of the f64 row above).
void BM_ScoresFusedF32(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  BenchSetup setup = make_setup(c, linalg::NumericsTier::kFastF32);
  linalg::KernelWorkspace ws;
  std::vector<double> out(c);
  std::size_t i = 0;
  for (auto _ : state) {
    setup.model.scores(setup.probes.row(i), out, ws);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % kProbeRows;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScoresFusedF32)->Arg(2)->Arg(3)->Arg(5)->Arg(23);

/// Fused scoring under the int8 tier: per-sample hidden quantization +
/// int8 dot products dequantized through per-column scales.
void BM_ScoresFusedI8(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  BenchSetup setup = make_setup(c, linalg::NumericsTier::kQuantI8);
  linalg::KernelWorkspace ws;
  std::vector<double> out(c);
  std::size_t i = 0;
  for (auto _ : state) {
    setup.model.scores(setup.probes.row(i), out, ws);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % kProbeRows;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScoresFusedI8)->Arg(2)->Arg(3)->Arg(5)->Arg(23);

/// The retained reference path: each instance projects and reconstructs
/// independently (score_of recomputes the hidden activation per label,
/// exactly what the pre-fusion scores() did).
void BM_ScoresPerInstance(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  BenchSetup setup = make_setup(c);
  linalg::KernelWorkspace ws;
  std::vector<double> out(c);
  std::size_t i = 0;
  for (auto _ : state) {
    for (std::size_t label = 0; label < c; ++label) {
      out[label] = setup.model.score_of(setup.probes.row(i), label, ws);
    }
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % kProbeRows;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScoresPerInstance)->Arg(2)->Arg(3)->Arg(5)->Arg(23);

/// Fused predict-then-train: the hidden vector is shared between the
/// ensemble scorer and the winning instance's Sherman–Morrison step.
void BM_TrainClosestFused(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  BenchSetup setup = make_setup(c);
  linalg::KernelWorkspace ws;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.model.train_closest(setup.probes.row(i), ws));
    i = (i + 1) % kProbeRows;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainClosestFused)->Arg(2)->Arg(5)->Arg(23);

/// Fused batch scoring: one [rows x C*n] GEMM for the whole ensemble.
void BM_ScoreBatchFused(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  BenchSetup setup = make_setup(c);
  model::BatchWorkspace ws;
  ws.reserve(kProbeRows, kDim, kHidden, c);
  for (auto _ : state) {
    setup.model.score_batch(setup.probes, ws);
    benchmark::DoNotOptimize(ws.scores.data());
  }
  state.SetItemsProcessed(state.iterations() * kProbeRows);
}
BENCHMARK(BM_ScoreBatchFused)->Arg(2)->Arg(5)->Arg(23);

/// Batch scoring under the fp32 tier: hidden block narrowed once per
/// chunk, then an f32 GEMM against the f32 beta replica.
void BM_ScoreBatchFusedF32(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  BenchSetup setup = make_setup(c, linalg::NumericsTier::kFastF32);
  model::BatchWorkspace ws;
  ws.reserve(kProbeRows, kDim, kHidden, c, linalg::NumericsTier::kFastF32);
  for (auto _ : state) {
    setup.model.score_batch(setup.probes, ws);
    benchmark::DoNotOptimize(ws.scores.data());
  }
  state.SetItemsProcessed(state.iterations() * kProbeRows);
}
BENCHMARK(BM_ScoreBatchFusedF32)->Arg(2)->Arg(5)->Arg(23);

/// Batch scoring under the int8 tier: per-row hidden quantization + int8
/// GEMM with per-column scale dequantization.
void BM_ScoreBatchFusedI8(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  BenchSetup setup = make_setup(c, linalg::NumericsTier::kQuantI8);
  model::BatchWorkspace ws;
  ws.reserve(kProbeRows, kDim, kHidden, c, linalg::NumericsTier::kQuantI8);
  for (auto _ : state) {
    setup.model.score_batch(setup.probes, ws);
    benchmark::DoNotOptimize(ws.scores.data());
  }
  state.SetItemsProcessed(state.iterations() * kProbeRows);
}
BENCHMARK(BM_ScoreBatchFusedI8)->Arg(2)->Arg(5)->Arg(23);

class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      edgedrift::bench::KernelRecord rec;
      rec.name = run.benchmark_name();
      if (rec.name.find("F32") != std::string::npos) {
        rec.precision = "f32";
      } else if (rec.name.find("I8") != std::string::npos) {
        rec.precision = "i8";
      }
      rec.ns_per_op = run.GetAdjustedRealTime();  // Default unit: ns.
      const auto items = run.counters.find("items_per_second");
      rec.samples_per_second = items != run.counters.end()
                                   ? static_cast<double>(items->second)
                                   : (rec.ns_per_op > 0.0
                                          ? 1e9 / rec.ns_per_op
                                          : 0.0);
      records.push_back(std::move(rec));
    }
  }

  std::vector<edgedrift::bench::KernelRecord> records;
};

/// Scoring-replica footprint per stream at each tier: the bytes of beta a
/// gateway must keep resident per stream to score it. f64 carries the
/// packed [L x C*n] master; f32 the narrowed replica; i8 the code matrix
/// plus one float scale per packed column. (The f64 master also stays
/// resident in the f32/i8 tiers for training, but scoring-only consumers —
/// the replicated-stream case the density metric is about — ship only the
/// replica.)
void append_stream_density_rows(
    std::vector<edgedrift::bench::KernelRecord>& records) {
  for (const std::size_t c : {std::size_t{2}, std::size_t{5},
                              std::size_t{23}}) {
    const std::size_t packed_cols = c * kDim;
    const double f64_bytes =
        static_cast<double>(kHidden * packed_cols * sizeof(double));
    const double f32_bytes =
        static_cast<double>(kHidden * packed_cols * sizeof(float));
    const double i8_bytes = static_cast<double>(
        kHidden * packed_cols * sizeof(std::int8_t) +
        packed_cols * sizeof(float));
    const char* precisions[] = {"f64", "f32", "i8"};
    const double bytes[] = {f64_bytes, f32_bytes, i8_bytes};
    for (int t = 0; t < 3; ++t) {
      edgedrift::bench::KernelRecord rec;
      rec.name = "StreamDensity/" + std::to_string(c);
      rec.precision = precisions[t];
      rec.bytes_per_stream = bytes[t];
      records.push_back(std::move(rec));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = edgedrift::bench::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  append_stream_density_rows(reporter.records);
  if (!json_path.empty() &&
      !edgedrift::bench::write_kernel_json(json_path, "bench_fused_scoring",
                                           reporter.records)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
