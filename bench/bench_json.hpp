// Machine-readable benchmark output (the `--json <path>` reporter).
//
// Both perf binaries (bench_microkernels, bench_batch_throughput) emit the
// same "edgedrift-bench-v1" schema so CI can diff runs across commits:
//   {
//     "schema": "edgedrift-bench-v1",
//     "binary": "...",                // which harness produced the file
//     "simd": "avx2-fma|neon|portable",
//     "build_flags": "...",           // compiler flags baked in by CMake
//     "git_sha": "...",               // commit baked in by CMake
//     "results": [ {"name", "precision", "ns_per_op",
//                   "samples_per_second", "gflops", "bytes_per_stream"} ]
//   }
// gflops is 0 when a record has no meaningful flop count (e.g. whole-
// pipeline samples/s rows). "precision" names the NumericsTier the row ran
// under ("f64" unless a harness overrides it); "bytes_per_stream" is 0
// except on stream-density rows, where it is the scoring-replica footprint
// per stream. A committed example lives at BENCH_kernels.json.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "edgedrift/linalg/simd.hpp"

// Stamped by bench/CMakeLists.txt; fall back to "unknown" when absent so
// the header stays usable outside the CMake build.
#ifndef EDGEDRIFT_GIT_SHA
#define EDGEDRIFT_GIT_SHA "unknown"
#endif
#ifndef EDGEDRIFT_BUILD_FLAGS
#define EDGEDRIFT_BUILD_FLAGS "unknown"
#endif

namespace edgedrift::bench {

/// One benchmark result row of the v1 schema.
struct KernelRecord {
  std::string name;
  std::string precision = "f64";  ///< NumericsTier the row ran under.
  double ns_per_op = 0.0;
  double samples_per_second = 0.0;
  double gflops = 0.0;
  double bytes_per_stream = 0.0;  ///< Non-zero on stream-density rows only.
};

/// Pulls `<flag> <path>` out of argv (removing both tokens). Returns an
/// empty string when the flag is absent.
inline std::string extract_path_flag(int& argc, char** argv,
                                     const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) {
      std::string path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return path;
    }
  }
  return {};
}

/// Pulls `--json <path>` out of argv (removing both tokens). Returns an
/// empty string when the flag is absent.
inline std::string extract_json_path(int& argc, char** argv) {
  return extract_path_flag(argc, argv, "--json");
}

/// Writes the v1 schema. Returns false when the file cannot be opened.
inline bool write_kernel_json(const std::string& path,
                              const std::string& binary,
                              const std::vector<KernelRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"edgedrift-bench-v1\",\n");
  std::fprintf(f, "  \"binary\": \"%s\",\n", binary.c_str());
  std::fprintf(f, "  \"simd\": \"%s\",\n", linalg::simd::kLevelName);
  std::fprintf(f, "  \"build_flags\": \"%s\",\n", EDGEDRIFT_BUILD_FLAGS);
  std::fprintf(f, "  \"git_sha\": \"%s\",\n", EDGEDRIFT_GIT_SHA);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const KernelRecord& r = records[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"precision\": \"%s\", "
                 "\"ns_per_op\": %.3f, \"samples_per_second\": %.1f, "
                 "\"gflops\": %.3f, \"bytes_per_stream\": %.0f}%s\n",
                 r.name.c_str(), r.precision.c_str(), r.ns_per_op,
                 r.samples_per_second, r.gflops, r.bytes_per_stream,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace edgedrift::bench
