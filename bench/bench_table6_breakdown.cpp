// Table 6 reproduction: per-sample execution-time breakdown of the proposed
// method's six stages, on the cooling-fan configuration (511 features,
// hidden dim 22) the paper ran on the Raspberry Pi Pico.
//
// Paper reference values on a 133 MHz Cortex-M0+ (ms/sample):
//   label prediction 148.87, distance computation 10.58,
//   retraining w/o label prediction 25.42, retraining w/ prediction 166.65,
//   coordinates initialization 25.59, coordinates update 6.05.
// Absolute numbers on a desktop CPU are ~1e4x smaller; the claim is the
// ordering: prediction-bearing stages dominate, the detector's distance
// computation costs a fraction of a prediction, and the coordinate update
// is the cheapest stage.
#include <benchmark/benchmark.h>

#include <vector>

#include "edgedrift/cluster/sequential_kmeans.hpp"
#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/drift/centroid_detector.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using namespace edgedrift;

constexpr std::size_t kDim = data::CoolingFanLike::kDim;  // 511.
constexpr std::size_t kHidden = 22;
// The paper's Pico demo runs the fan model; it uses one instance per label
// with C = 2 so both prediction and retraining exercise the argmin loop.
constexpr std::size_t kLabels = 2;

struct Fixture {
  util::Rng rng{5};
  oselm::ProjectionPtr projection = oselm::make_projection(
      kDim, kHidden, oselm::Activation::kSigmoid, rng);
  model::MultiInstanceModel model{kLabels, projection, 1e-2};
  cluster::SequentialKMeans coords{kLabels, kDim};
  drift::CentroidDetector detector{[] {
    drift::CentroidDetectorConfig config;
    config.num_labels = kLabels;
    config.dim = kDim;
    config.window_size = 1u << 30;  // Keep the window open forever.
    config.theta_error = 0.0;       // Gate always open.
    config.theta_drift = 1e18;      // Never fire.
    return config;
  }()};
  std::vector<double> sample = std::vector<double>(kDim);

  Fixture() {
    // Train on synthetic fan spectra so the model state is realistic.
    data::CoolingFanLikeConfig config;
    config.train_size = 120;
    data::CoolingFanLike generator(config);
    util::Rng data_rng(7);
    data::Dataset train = generator.training(data_rng);
    // Split the single-condition data into two pseudo-labels so every
    // instance is initialized.
    for (std::size_t i = 0; i < train.size(); ++i) {
      train.labels[i] = static_cast<int>(i % kLabels);
    }
    model.init_train(train.x, train.labels);
    detector.calibrate(train.x, train.labels);
    coords.set_centroids(detector.trained_centroids(),
                         std::vector<std::size_t>(kLabels, 1));
    FanSample();
  }

  void FanSample() {
    data::FanSpectrumConcept holes(data::FanCondition::kHoles,
                                   data::FanEnvironment::kSilent);
    holes.sample(rng, sample);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// Algorithm 1 line 6: argmin over per-label autoencoder scores.
void BM_LabelPrediction(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.predict(f.sample));
  }
}
BENCHMARK(BM_LabelPrediction)->Name("label prediction");

// Algorithm 1 lines 12-14: centroid update + summed L1 distance.
void BM_DistanceComputation(benchmark::State& state) {
  auto& f = fixture();
  drift::Observation obs;
  obs.x = f.sample;
  obs.predicted_label = 0;
  obs.anomaly_score = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.detector.observe(obs));
  }
}
BENCHMARK(BM_DistanceComputation)->Name("distance computation");

// Algorithm 2 lines 8-9: nearest-coordinate label + one OS-ELM step.
void BM_RetrainNoPrediction(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    const std::size_t label = f.coords.nearest(f.sample);
    f.model.train_label(f.sample, label);
  }
}
BENCHMARK(BM_RetrainNoPrediction)
    ->Name("model retraining without label prediction");

// Algorithm 2 lines 11-12: model prediction + one OS-ELM step.
void BM_RetrainWithPrediction(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    const auto pred = f.model.predict(f.sample);
    f.model.train_label(f.sample, pred.label);
  }
}
BENCHMARK(BM_RetrainWithPrediction)
    ->Name("model retraining with label prediction");

// Algorithm 3: spread-maximizing coordinate substitution.
void BM_InitCoord(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.coords.spread_init(f.sample));
  }
}
BENCHMARK(BM_InitCoord)->Name("label coordinates initialization");

// Algorithm 4: nearest-coordinate running-mean update.
void BM_UpdateCoord(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.coords.update(f.sample));
  }
}
BENCHMARK(BM_UpdateCoord)->Name("label coordinates update");

}  // namespace

BENCHMARK_MAIN();
