// Table 3 reproduction: detection delay of the proposed method for window
// sizes {10, 50, 150} on the cooling-fan streams with sudden, gradual and
// reoccurring drifts (drift at sample 120 in all three).
//
// Paper reference values:
//                 Sudden  Gradual  Reoccurring
//   W = 10          53      161       22
//   W = 50          60      157       62
//   W = 150        160      257        -
// ("-" = the transient new concept was not detected — desirable when the
// reoccurring burst should be ignored.)
#include <cstdio>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

namespace {

std::optional<std::size_t> first_detection(core::Pipeline& pipeline,
                                           const data::Dataset& stream,
                                           std::size_t drift_at) {
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto step = pipeline.process(stream.x.row(i));
    if (step.drift_detected && i >= drift_at) return i - drift_at;
  }
  return std::nullopt;
}

std::string fmt_delay(const std::optional<std::size_t>& delay) {
  return delay.has_value() ? std::to_string(*delay) : "-";
}

}  // namespace

int main() {
  std::printf("=== Table 3: window size vs detection delay (cooling fan) "
              "===\n\n");

  data::CoolingFanLike generator;
  util::Rng rng(2023);
  const data::Dataset train = generator.training(rng);
  const std::size_t drift_at = generator.config().drift_point;

  util::Table table({"Window size", "Sudden", "Gradual", "Reoccurring",
                     "Paper (S/G/R)"});
  const char* paper_rows[] = {"53 / 161 / 22", "60 / 157 / 62",
                              "160 / 257 / -"};

  const std::size_t windows[] = {10, 50, 150};
  for (std::size_t wi = 0; wi < 3; ++wi) {
    const std::size_t w = windows[wi];
    const auto config = bench::cooling_fan_config(w);

    std::optional<std::size_t> delays[3];
    int stream_index = 0;
    for (const auto* kind : {"sudden", "gradual", "reoccurring"}) {
      util::Rng stream_rng(99 + stream_index);
      data::Dataset stream;
      if (std::string(kind) == "sudden") {
        stream = generator.sudden_stream(stream_rng);
      } else if (std::string(kind) == "gradual") {
        stream = generator.gradual_stream(stream_rng);
      } else {
        stream = generator.reoccurring_stream(stream_rng);
      }
      core::Pipeline pipeline(config.pipeline);
      pipeline.fit(train.x, train.labels);
      delays[stream_index] = first_detection(pipeline, stream, drift_at);
      ++stream_index;
    }

    table.add_row({"W = " + std::to_string(w), fmt_delay(delays[0]),
                   fmt_delay(delays[1]), fmt_delay(delays[2]),
                   paper_rows[wi]});
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Expected shape: delay grows with W for the sudden drift; the\n"
              "gradual drift needs a window larger than its short-term\n"
              "mixing to avoid oscillation; the largest window ignores the\n"
              "transient reoccurring burst entirely.\n");
  return 0;
}
