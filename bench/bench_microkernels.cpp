// Microkernel benchmarks for the numeric substrate: GEMM variants, the
// OS-ELM sequential step vs the Woodbury block step, detector primitives.
// These are engineering benches (not a paper table); they justify the
// kernel choices DESIGN.md documents: rank-1 updates keep the per-sample
// cost at O(h^2) and batch paths amortize through the blocked GEMM.
#include <benchmark/benchmark.h>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/solve.hpp"
#include "edgedrift/linalg/updates.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/mcu/static_pipeline.hpp"
#include "edgedrift/oselm/oselm.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using namespace edgedrift;
using linalg::Matrix;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const Matrix a = Matrix::random_gaussian(n, n, rng);
  const Matrix b = Matrix::random_gaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(128)->Arg(256);

void BM_MatmulAtB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const Matrix a = Matrix::random_gaussian(n, n, rng);
  const Matrix b = Matrix::random_gaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::matmul_at_b(a, b));
  }
}
BENCHMARK(BM_MatmulAtB)->Arg(128);

void BM_CholeskySpdInverse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  Matrix a = Matrix::random_gaussian(n, n, rng);
  Matrix spd = linalg::matmul_at_b(a, a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::spd_inverse(spd));
  }
}
BENCHMARK(BM_CholeskySpdInverse)->Arg(22)->Arg(64);

// The paper's fast path: one rank-1 OS-ELM step (h = 22, d = 511).
void BM_OsElmSequentialStep(benchmark::State& state) {
  util::Rng rng(4);
  auto proj = oselm::make_projection(511, 22, oselm::Activation::kSigmoid,
                                     rng);
  oselm::OsElmConfig config;
  config.output_dim = 511;
  oselm::OsElm net(proj, config);
  net.init_sequential();
  std::vector<double> x(511);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    net.train(x, x);
  }
}
BENCHMARK(BM_OsElmSequentialStep)->Name("oselm rank-1 train (511-22-511)");

// The equivalent batch path: Woodbury block of 32 samples.
void BM_OsElmBlockStep(benchmark::State& state) {
  util::Rng rng(5);
  auto proj = oselm::make_projection(511, 22, oselm::Activation::kSigmoid,
                                     rng);
  oselm::OsElmConfig config;
  config.output_dim = 511;
  oselm::OsElm net(proj, config);
  net.init_sequential();
  const Matrix x = Matrix::random_uniform(32, 511, rng, 0.0, 1.0);
  for (auto _ : state) {
    net.train_batch(x, x);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_OsElmBlockStep)->Name("oselm woodbury train, 32-batch");

void BM_OsElmPredict(benchmark::State& state) {
  util::Rng rng(6);
  auto proj = oselm::make_projection(511, 22, oselm::Activation::kSigmoid,
                                     rng);
  oselm::OsElmConfig config;
  config.output_dim = 511;
  oselm::OsElm net(proj, config);
  net.init_sequential();
  std::vector<double> x(511), y(511);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    net.predict(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_OsElmPredict)->Name("oselm predict (511-22-511)");

void BM_L1Distance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<double> a(n), b(n);
  for (auto& v : a) v = rng.gaussian();
  for (auto& v : b) v = rng.gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::l1_distance(a, b));
  }
}
BENCHMARK(BM_L1Distance)->Arg(38)->Arg(511);

void BM_RunningMeanUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(8);
  std::vector<double> mean(n), x(n);
  for (auto& v : x) v = rng.gaussian();
  std::size_t count = 1;
  for (auto _ : state) {
    linalg::running_mean_update(mean, x, count++);
    benchmark::DoNotOptimize(mean.data());
  }
}
BENCHMARK(BM_RunningMeanUpdate)->Arg(38)->Arg(511);

// Double-precision Pipeline vs the float32 MCU profile on the same fitted
// state. On a desktop FPU doubles are native, so the float32 path is about
// equal wall-clock here; its wins are memory (half the state, the Table 4
// quantity) and the software-float arithmetic of FPU-less MCUs like the
// Pico's Cortex-M0+, where every float64 op is roughly 2x a float32 op.
struct DeviceFixture {
  core::Pipeline reference;
  mcu::StaticPipeline<38, 22, 2> device;
  std::vector<double> sample_d = std::vector<double>(38);
  std::vector<float> sample_f = std::vector<float>(38);

  DeviceFixture() : reference(make_config()) {
    util::Rng rng(9);
    Matrix train(400, 38);
    std::vector<int> labels(400);
    for (std::size_t i = 0; i < 400; ++i) {
      labels[i] = static_cast<int>(i % 2);
      for (std::size_t j = 0; j < 38; ++j) {
        train(i, j) = rng.gaussian(labels[i] == 0 ? 0.2 : 1.2, 0.2);
      }
    }
    reference.fit(train, labels);
    device.load(reference);
    for (std::size_t j = 0; j < 38; ++j) {
      sample_d[j] = rng.gaussian(0.2, 0.2);
      sample_f[j] = static_cast<float>(sample_d[j]);
    }
  }

  static core::PipelineConfig make_config() {
    core::PipelineConfig config;
    config.num_labels = 2;
    config.input_dim = 38;
    config.hidden_dim = 22;
    return config;
  }
};

DeviceFixture& device_fixture() {
  static DeviceFixture f;
  return f;
}

void BM_PipelineProcessDouble(benchmark::State& state) {
  auto& f = device_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.reference.process(f.sample_d));
  }
}
BENCHMARK(BM_PipelineProcessDouble)
    ->Name("pipeline process/sample (double, host)");

void BM_PipelineProcessFloat32(benchmark::State& state) {
  auto& f = device_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.device.process(f.sample_f));
  }
}
BENCHMARK(BM_PipelineProcessFloat32)
    ->Name("pipeline process/sample (float32, MCU profile)");

}  // namespace

BENCHMARK_MAIN();
