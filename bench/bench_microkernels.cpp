// Microkernel benchmarks for the numeric substrate: GEMM variants, the
// OS-ELM sequential step vs the Woodbury block step, detector primitives.
// These are engineering benches (not a paper table); they justify the
// kernel choices DESIGN.md documents: rank-1 updates keep the per-sample
// cost at O(h^2) and batch paths amortize through the blocked GEMM.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/naive.hpp"
#include "edgedrift/linalg/solve.hpp"
#include "edgedrift/linalg/updates.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/mcu/static_pipeline.hpp"
#include "edgedrift/oselm/oselm.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using namespace edgedrift;
using linalg::Matrix;

/// 2*m*n*k GEMM flops as a rate counter; the JSON reporter turns it into
/// the gflops column.
void set_flops(benchmark::State& state, std::size_t flops_per_iter) {
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(flops_per_iter) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const Matrix a = Matrix::random_gaussian(n, n, rng);
  const Matrix b = Matrix::random_gaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  set_flops(state, 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(128)->Arg(256);

// The pre-SIMD scalar GEMM, kept in-tree (linalg/naive.hpp) so the
// optimized-vs-scalar ratio is reproducible from one binary.
void BM_MatmulNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const Matrix a = Matrix::random_gaussian(n, n, rng);
  const Matrix b = Matrix::random_gaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::naive::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  set_flops(state, 2 * n * n * n);
}
BENCHMARK(BM_MatmulNaive)->Arg(32)->Arg(128)->Arg(256);

// Paper-scale projection GEMM: a 256-sample batch through d=128 inputs and
// h=128 hidden units (hidden_batch's H = X * A shape).
void BM_MatmulBatchProjection(benchmark::State& state) {
  util::Rng rng(1);
  const Matrix x = Matrix::random_gaussian(256, 128, rng);
  const Matrix a = Matrix::random_gaussian(128, 128, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::matmul(x, a));
  }
  set_flops(state, 2 * 256 * 128 * 128);
}
BENCHMARK(BM_MatmulBatchProjection)->Name("matmul 256x128x128");

void BM_MatmulBatchProjectionNaive(benchmark::State& state) {
  util::Rng rng(1);
  const Matrix x = Matrix::random_gaussian(256, 128, rng);
  const Matrix a = Matrix::random_gaussian(128, 128, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::naive::matmul(x, a));
  }
  set_flops(state, 2 * 256 * 128 * 128);
}
BENCHMARK(BM_MatmulBatchProjectionNaive)->Name("matmul 256x128x128 naive");

// Paper-scale matvec: the per-sample projection (rows = hidden, cols =
// input dim) and its transposed twin (beta^T h).
void BM_Matvec(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  util::Rng rng(10);
  const Matrix a = Matrix::random_gaussian(m, n, rng);
  std::vector<double> x(n), y(m);
  for (auto& v : x) v = rng.gaussian();
  for (auto _ : state) {
    linalg::matvec(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  set_flops(state, 2 * m * n);
}
BENCHMARK(BM_Matvec)->Args({64, 128})->Args({128, 128});

void BM_MatvecNaive(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  util::Rng rng(10);
  const Matrix a = Matrix::random_gaussian(m, n, rng);
  std::vector<double> x(n), y(m);
  for (auto& v : x) v = rng.gaussian();
  for (auto _ : state) {
    linalg::naive::matvec(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  set_flops(state, 2 * m * n);
}
BENCHMARK(BM_MatvecNaive)->Args({64, 128})->Args({128, 128});

void BM_MatvecTransposed(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  util::Rng rng(11);
  const Matrix a = Matrix::random_gaussian(m, n, rng);
  std::vector<double> x(m), y(n);
  for (auto& v : x) v = rng.gaussian();
  for (auto _ : state) {
    linalg::matvec_transposed(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  set_flops(state, 2 * m * n);
}
BENCHMARK(BM_MatvecTransposed)->Args({64, 128})->Args({128, 128});

void BM_MatvecTransposedNaive(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  util::Rng rng(11);
  const Matrix a = Matrix::random_gaussian(m, n, rng);
  std::vector<double> x(m), y(n);
  for (auto& v : x) v = rng.gaussian();
  for (auto _ : state) {
    linalg::naive::matvec_transposed(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  set_flops(state, 2 * m * n);
}
BENCHMARK(BM_MatvecTransposedNaive)->Args({64, 128})->Args({128, 128});

void BM_MatmulAtB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const Matrix a = Matrix::random_gaussian(n, n, rng);
  const Matrix b = Matrix::random_gaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::matmul_at_b(a, b));
  }
}
BENCHMARK(BM_MatmulAtB)->Arg(128);

void BM_CholeskySpdInverse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  Matrix a = Matrix::random_gaussian(n, n, rng);
  Matrix spd = linalg::matmul_at_b(a, a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::spd_inverse(spd));
  }
}
BENCHMARK(BM_CholeskySpdInverse)->Arg(22)->Arg(64);

// The paper's fast path: one rank-1 OS-ELM step (h = 22, d = 511).
void BM_OsElmSequentialStep(benchmark::State& state) {
  util::Rng rng(4);
  auto proj = oselm::make_projection(511, 22, oselm::Activation::kSigmoid,
                                     rng);
  oselm::OsElmConfig config;
  config.output_dim = 511;
  oselm::OsElm net(proj, config);
  net.init_sequential();
  std::vector<double> x(511);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    net.train(x, x);
  }
}
BENCHMARK(BM_OsElmSequentialStep)->Name("oselm rank-1 train (511-22-511)");

// The equivalent batch path: Woodbury block of 32 samples.
void BM_OsElmBlockStep(benchmark::State& state) {
  util::Rng rng(5);
  auto proj = oselm::make_projection(511, 22, oselm::Activation::kSigmoid,
                                     rng);
  oselm::OsElmConfig config;
  config.output_dim = 511;
  oselm::OsElm net(proj, config);
  net.init_sequential();
  const Matrix x = Matrix::random_uniform(32, 511, rng, 0.0, 1.0);
  for (auto _ : state) {
    net.train_batch(x, x);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_OsElmBlockStep)->Name("oselm woodbury train, 32-batch");

void BM_OsElmPredict(benchmark::State& state) {
  util::Rng rng(6);
  auto proj = oselm::make_projection(511, 22, oselm::Activation::kSigmoid,
                                     rng);
  oselm::OsElmConfig config;
  config.output_dim = 511;
  oselm::OsElm net(proj, config);
  net.init_sequential();
  std::vector<double> x(511), y(511);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    net.predict(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_OsElmPredict)->Name("oselm predict (511-22-511)");

void BM_L1Distance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<double> a(n), b(n);
  for (auto& v : a) v = rng.gaussian();
  for (auto& v : b) v = rng.gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::l1_distance(a, b));
  }
}
BENCHMARK(BM_L1Distance)->Arg(38)->Arg(511);

void BM_RunningMeanUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(8);
  std::vector<double> mean(n), x(n);
  for (auto& v : x) v = rng.gaussian();
  std::size_t count = 1;
  for (auto _ : state) {
    linalg::running_mean_update(mean, x, count++);
    benchmark::DoNotOptimize(mean.data());
  }
}
BENCHMARK(BM_RunningMeanUpdate)->Arg(38)->Arg(511);

// Double-precision Pipeline vs the float32 MCU profile on the same fitted
// state. On a desktop FPU doubles are native, so the float32 path is about
// equal wall-clock here; its wins are memory (half the state, the Table 4
// quantity) and the software-float arithmetic of FPU-less MCUs like the
// Pico's Cortex-M0+, where every float64 op is roughly 2x a float32 op.
struct DeviceFixture {
  core::Pipeline reference;
  mcu::StaticPipeline<38, 22, 2> device;
  std::vector<double> sample_d = std::vector<double>(38);
  std::vector<float> sample_f = std::vector<float>(38);

  DeviceFixture() : reference(make_config()) {
    util::Rng rng(9);
    Matrix train(400, 38);
    std::vector<int> labels(400);
    for (std::size_t i = 0; i < 400; ++i) {
      labels[i] = static_cast<int>(i % 2);
      for (std::size_t j = 0; j < 38; ++j) {
        train(i, j) = rng.gaussian(labels[i] == 0 ? 0.2 : 1.2, 0.2);
      }
    }
    reference.fit(train, labels);
    device.load(reference);
    for (std::size_t j = 0; j < 38; ++j) {
      sample_d[j] = rng.gaussian(0.2, 0.2);
      sample_f[j] = static_cast<float>(sample_d[j]);
    }
  }

  static core::PipelineConfig make_config() {
    core::PipelineConfig config;
    config.num_labels = 2;
    config.input_dim = 38;
    config.hidden_dim = 22;
    return config;
  }
};

DeviceFixture& device_fixture() {
  static DeviceFixture f;
  return f;
}

void BM_PipelineProcessDouble(benchmark::State& state) {
  auto& f = device_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.reference.process(f.sample_d));
  }
}
BENCHMARK(BM_PipelineProcessDouble)
    ->Name("pipeline process/sample (double, host)");

void BM_PipelineProcessFloat32(benchmark::State& state) {
  auto& f = device_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.device.process(f.sample_f));
  }
}
BENCHMARK(BM_PipelineProcessFloat32)
    ->Name("pipeline process/sample (float32, MCU profile)");

/// Console output as usual, plus a record per run for the --json reporter.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      edgedrift::bench::KernelRecord rec;
      rec.name = run.benchmark_name();
      rec.ns_per_op = run.GetAdjustedRealTime();  // Default unit: ns.
      const auto items = run.counters.find("items_per_second");
      rec.samples_per_second = items != run.counters.end()
                                   ? static_cast<double>(items->second)
                                   : (rec.ns_per_op > 0.0
                                          ? 1e9 / rec.ns_per_op
                                          : 0.0);
      const auto flops = run.counters.find("flops");
      if (flops != run.counters.end()) {
        rec.gflops = static_cast<double>(flops->second) / 1e9;
      }
      records.push_back(std::move(rec));
    }
  }

  std::vector<edgedrift::bench::KernelRecord> records;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = edgedrift::bench::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() &&
      !edgedrift::bench::write_kernel_json(json_path, "bench_microkernels",
                                           reporter.records)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
