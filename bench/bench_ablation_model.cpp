// Ablation bench: the paper's discriminative-model choice.
//
// Section 3.1 builds the discriminative model as one autoencoder per label
// with argmin reconstruction error, instead of the classic supervised
// OS-ELM classifier (one net, one-hot targets, argmax). This bench
// quantifies the trade on the NSL-KDD-like stream:
//   * static accuracy before/after the drift,
//   * whether the model yields the anomaly-score signal the proposed
//     detector's theta_error gate needs (the classifier's margin is the
//     closest analogue — and a much weaker drift signal),
//   * memory.
#include <cstdio>
#include <vector>

#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/oselm/classifier.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

int main() {
  std::printf("=== Ablation: autoencoder bank (paper) vs supervised "
              "classifier ===\n\n");

  data::NslKddLikeConfig data_config;
  data_config.train_size = 2000;
  data_config.test_size = 8000;
  data_config.drift_point = 4000;
  data::NslKddLike generator(data_config);
  util::Rng rng(23);
  const data::Dataset train = generator.training(rng);
  const data::Dataset test = generator.test_stream(rng);
  const std::size_t drift_at = data_config.drift_point;

  util::Rng model_rng(1);
  auto projection = oselm::make_projection(
      train.dim(), 22, oselm::Activation::kSigmoid, model_rng);

  model::MultiInstanceModel bank(2, projection, 1e-2);
  bank.init_train(train.x, train.labels);

  oselm::Classifier classifier(projection, 2, 1e-2);
  classifier.init_train(train.x, train.labels);

  // Accuracy and drift-signal statistics, pre and post drift.
  std::size_t bank_pre = 0, bank_post = 0, clf_pre = 0, clf_post = 0;
  std::vector<double> bank_scores_pre, bank_scores_post;
  std::vector<double> clf_margin_pre, clf_margin_post;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto x = test.x.row(i);
    const auto pred = bank.predict(x);
    const auto clf_label = classifier.predict(x);
    const bool pre = i < drift_at;
    if (static_cast<int>(pred.label) == test.labels[i]) {
      (pre ? bank_pre : bank_post) += 1;
    }
    if (static_cast<int>(clf_label) == test.labels[i]) {
      (pre ? clf_pre : clf_post) += 1;
    }
    (pre ? bank_scores_pre : bank_scores_post).push_back(pred.score);
    (pre ? clf_margin_pre : clf_margin_post)
        .push_back(classifier.margin(x));
  }

  const double n_pre = static_cast<double>(drift_at);
  const double n_post = static_cast<double>(test.size() - drift_at);
  util::Table table({"Model", "Acc pre (%)", "Acc post (%)",
                     "Drift signal pre", "Drift signal post",
                     "Signal ratio", "Memory (kB)"});
  const double bank_sig_pre = linalg::mean(bank_scores_pre);
  const double bank_sig_post = linalg::mean(bank_scores_post);
  table.add_row(
      {"autoencoder bank (paper)", util::fmt(100.0 * bank_pre / n_pre, 1),
       util::fmt(100.0 * bank_post / n_post, 1),
       util::fmt(bank_sig_pre, 4), util::fmt(bank_sig_post, 4),
       util::fmt(bank_sig_post / bank_sig_pre, 1) + "x",
       util::fmt(bank.memory_bytes() / 1024.0, 1)});
  // For the classifier the drift signal is the (negated) margin: margins
  // shrink off-distribution. Report the margin itself.
  const double clf_sig_pre = linalg::mean(clf_margin_pre);
  const double clf_sig_post = linalg::mean(clf_margin_post);
  table.add_row(
      {"supervised classifier", util::fmt(100.0 * clf_pre / n_pre, 1),
       util::fmt(100.0 * clf_post / n_post, 1),
       util::fmt(clf_sig_pre, 4), util::fmt(clf_sig_post, 4),
       util::fmt(clf_sig_post / clf_sig_pre, 1) + "x",
       util::fmt(classifier.memory_bytes() / 1024.0, 1)});
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Drift signal = mean reconstruction error (bank) / mean decision\n"
      "margin (classifier). The bank's score rises sharply off the trained\n"
      "manifold — that multiplicative jump is what opens the theta_error\n"
      "windows of Algorithm 1. A margin shrinks toward zero instead, a far\n"
      "weaker and bounded signal, and the classifier cannot be retrained\n"
      "from clustered pseudo-labels as naturally as per-label autoencoders.\n"
      "That, plus unsupervised operation, is why the paper picks the bank.\n");
  return 0;
}
