// Figure 4 + Table 2 reproduction: accuracy over time and final accuracy /
// detection delay of the five methods on the NSL-KDD-like stream
// (2522 train / 22701 test, drift at sample 8333).
//
// Paper reference values (Table 2):
//   Quant Tree 96.8% / 296, SPLL 96.3% / 296, Baseline 83.5% / -,
//   ONLAD 65.7% / -, Proposed W=100 96.0% / 843, W=250 95.5% / 993,
//   W=1000 92.5% / 1263.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/eval/experiment.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

namespace {

std::string delay_str(const eval::DetectionLog& log, std::size_t drift_at) {
  const auto delay = log.delay(drift_at);
  if (!delay.has_value()) return "-";
  return std::to_string(*delay);
}

void print_accuracy_series(const char* name,
                           const eval::StreamingAccuracy& accuracy,
                           std::size_t window) {
  std::printf("%s:", name);
  for (const double a : accuracy.windowed(window)) {
    std::printf(" %.3f", a);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 4 / Table 2: NSL-KDD-like stream ===\n\n");

  data::NslKddLike generator;
  util::Rng rng(2023);
  const data::Dataset train = generator.training(rng);
  const data::Dataset test = generator.test_stream(rng);
  const std::size_t drift_at = generator.config().drift_point;
  std::printf("train=%zu test=%zu drift@%zu dim=%zu\n\n", train.size(),
              test.size(), drift_at, test.dim());

  util::Table table({"Method", "Accuracy (%)", "Delay", "Paper acc (%)",
                     "Paper delay"});

  struct PaperRow {
    const char* accuracy;
    const char* delay;
  };

  // The five methods of Section 4.2 plus the proposed window sweep.
  const auto run = [&](eval::Method method, std::size_t window,
                       const PaperRow& paper, const char* label) {
    const auto config = bench::nsl_kdd_config(window);
    const auto result = eval::run_experiment(method, train, test, config);
    table.add_row({label, util::fmt(result.accuracy.overall() * 100.0, 1),
                   delay_str(result.detections, drift_at), paper.accuracy,
                   paper.delay});
    return result;
  };

  const auto qt = run(eval::Method::kQuantTree, 100, {"96.8", "296"},
                      "Quant Tree");
  const auto spll = run(eval::Method::kSpll, 100, {"96.3", "296"}, "SPLL");
  const auto baseline = run(eval::Method::kBaseline, 100, {"83.5", "-"},
                            "Baseline (no detection)");
  const auto onlad = run(eval::Method::kOnlad, 100, {"65.7", "-"}, "ONLAD");
  const auto w100 = run(eval::Method::kProposed, 100, {"96.0", "843"},
                        "Proposed (W=100)");
  const auto w250 = run(eval::Method::kProposed, 250, {"95.5", "993"},
                        "Proposed (W=250)");
  const auto w1000 = run(eval::Method::kProposed, 1000, {"92.5", "1263"},
                         "Proposed (W=1000)");

  std::printf("--- Table 2 ---\n%s\n", table.str().c_str());

  std::printf("--- Figure 4: windowed accuracy (500-sample windows; drift "
              "after window %zu) ---\n",
              drift_at / 500);
  print_accuracy_series("quanttree ", qt.accuracy, 500);
  print_accuracy_series("spll      ", spll.accuracy, 500);
  print_accuracy_series("baseline  ", baseline.accuracy, 500);
  print_accuracy_series("onlad     ", onlad.accuracy, 500);
  print_accuracy_series("proposed  ", w100.accuracy, 500);
  (void)w250;
  (void)w1000;
  return 0;
}
