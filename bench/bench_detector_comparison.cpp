// Extension bench: every detector in the library against all four drift
// types of Figure 1 (sudden, gradual, incremental, reoccurring) on a
// common 16-dimensional stream. The paper evaluates three types on the fan
// data with the proposed detector only; this bench generalizes that
// analysis across the zoo — which detector family handles which drift
// shape, at what state cost.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/drift/adwin.hpp"
#include "edgedrift/drift/centroid_detector.hpp"
#include "edgedrift/drift/ddm.hpp"
#include "edgedrift/drift/eddm.hpp"
#include "edgedrift/drift/kswin.hpp"
#include "edgedrift/drift/page_hinkley.hpp"
#include "edgedrift/drift/quanttree.hpp"
#include "edgedrift/drift/spll.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

namespace {

constexpr std::size_t kDim = 16;
constexpr std::size_t kDriftAt = 1000;
constexpr std::size_t kDriftEnd = 2000;  // For gradual/incremental/reoccur.
constexpr std::size_t kStream = 3000;

data::GaussianConcept make_concept(double offset) {
  data::GaussianClass a;
  a.mean.assign(kDim, 0.2 + offset);
  a.stddev = {0.15};
  data::GaussianClass b;
  b.mean.assign(kDim, 1.0 + offset);
  b.stddev = {0.15};
  return data::GaussianConcept({a, b});
}

struct Outcome {
  std::optional<std::size_t> delay;
  std::size_t false_alarms = 0;
};

std::string fmt_outcome(const Outcome& o) {
  std::string s = o.delay ? std::to_string(*o.delay) : std::string("-");
  if (o.false_alarms > 0) {
    s += " (+" + std::to_string(o.false_alarms) + " fa)";
  }
  return s;
}

}  // namespace

int main() {
  std::printf("=== Detector comparison across drift types (extension) "
              "===\n\n");
  std::printf("stream: %zu samples, 2 classes in %zu dims; drift begins at "
              "%zu\n(gradual/incremental transition ends, and the "
              "reoccurring burst ends, at %zu)\n\n",
              kStream, kDim, kDriftAt, kDriftEnd);

  const auto before = make_concept(0.0);
  const auto after = make_concept(0.8);

  // Shared discriminative model, trained once.
  util::Rng rng(31);
  const data::Dataset train = data::draw(before, 800, rng);
  auto projection =
      oselm::make_projection(kDim, 8, oselm::Activation::kSigmoid, rng);
  model::MultiInstanceModel model(2, projection, 1e-2);
  model.init_train(train.x, train.labels);

  // The four streams.
  struct Stream {
    const char* name;
    data::Dataset data;
  };
  util::Rng stream_rng(32);
  std::vector<Stream> streams;
  streams.push_back({"sudden", data::make_sudden_drift(before, after,
                                                       kStream, kDriftAt,
                                                       stream_rng)});
  streams.push_back({"gradual",
                     data::make_gradual_drift(before, after, kStream,
                                              kDriftAt, kDriftEnd,
                                              stream_rng)});
  streams.push_back({"incremental",
                     data::make_incremental_drift(before, after, kStream,
                                                  kDriftAt, kDriftEnd,
                                                  stream_rng)});
  streams.push_back({"reoccurring",
                     data::make_reoccurring_drift(before, after, kStream,
                                                  kDriftAt, kDriftEnd,
                                                  stream_rng)});

  // Detector factories (fresh instance per stream).
  struct Factory {
    const char* label;
    std::unique_ptr<drift::Detector> (*make)(const data::Dataset&);
  };
  const Factory factories[] = {
      {"proposed (W=50)",
       [](const data::Dataset& t) -> std::unique_ptr<drift::Detector> {
         drift::CentroidDetectorConfig config;
         config.num_labels = 2;
         config.dim = kDim;
         config.window_size = 50;
         config.theta_error = 0.0;
         config.initial_count = 0;
         auto det = std::make_unique<drift::CentroidDetector>(config);
         det->calibrate(t.x, t.labels);
         return det;
       }},
      {"quanttree (B=200)",
       [](const data::Dataset& t) -> std::unique_ptr<drift::Detector> {
         drift::QuantTreeConfig config;
         config.num_bins = 16;
         config.batch_size = 200;
         config.alpha = 0.005;
         auto det = std::make_unique<drift::QuantTree>(config);
         det->fit(t.x);
         return det;
       }},
      {"spll (B=200)",
       [](const data::Dataset& t) -> std::unique_ptr<drift::Detector> {
         drift::SpllConfig config;
         config.num_clusters = 2;
         config.batch_size = 200;
         auto det = std::make_unique<drift::Spll>(config);
         det->fit(t.x);
         return det;
       }},
      {"ddm",
       [](const data::Dataset&) -> std::unique_ptr<drift::Detector> {
         return std::make_unique<drift::Ddm>();
       }},
      {"eddm",
       [](const data::Dataset&) -> std::unique_ptr<drift::Detector> {
         return std::make_unique<drift::Eddm>();
       }},
      {"adwin",
       [](const data::Dataset&) -> std::unique_ptr<drift::Detector> {
         return std::make_unique<drift::Adwin>();
       }},
      {"page-hinkley",
       [](const data::Dataset&) -> std::unique_ptr<drift::Detector> {
         drift::PageHinkleyConfig config;
         config.lambda = 10.0;
         return std::make_unique<drift::PageHinkley>(config);
       }},
      {"kswin",
       [](const data::Dataset&) -> std::unique_ptr<drift::Detector> {
         return std::make_unique<drift::Kswin>();
       }},
  };

  util::Table table({"Detector", "Sudden", "Gradual", "Incremental",
                     "Reoccurring", "State (kB)"});
  for (const auto& factory : factories) {
    std::vector<std::string> row{factory.label};
    std::size_t state_bytes = 0;
    for (const auto& stream : streams) {
      auto detector = factory.make(train);
      Outcome outcome;
      for (std::size_t i = 0; i < stream.data.size(); ++i) {
        const auto x = stream.data.x.row(i);
        const auto pred = model.predict(x);
        drift::Observation obs;
        obs.x = x;
        obs.predicted_label = static_cast<int>(pred.label);
        obs.anomaly_score = pred.score;
        obs.error = static_cast<int>(pred.label) != stream.data.labels[i];
        if (detector->observe(obs).drift) {
          if (i < kDriftAt) {
            ++outcome.false_alarms;
          } else if (!outcome.delay) {
            outcome.delay = i - kDriftAt;
          }
        }
      }
      row.push_back(fmt_outcome(outcome));
      state_bytes = detector->memory_bytes();
    }
    row.push_back(util::fmt(state_bytes / 1024.0, 1));
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading guide: batch detectors excel on sudden drifts but pay B x D\n"
      "memory; error-rate detectors need ground-truth labels; the proposed\n"
      "method trades delay for O(C*D) state. Gradual and incremental drifts\n"
      "stretch every detector's delay; reoccurring bursts are only 'seen'\n"
      "by detectors whose window is shorter than the burst.\n");
  return 0;
}
