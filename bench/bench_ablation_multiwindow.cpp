// Ablation bench: the paper's future-work extension — an ensemble of
// centroid detectors with different window sizes — against its individual
// members, across the three cooling-fan drift types. A small window reacts
// fast to sudden drifts; a large window ignores transients; the ensemble
// (majority vote) aims at both.
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/drift/multi_window.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

namespace {

struct StreamOutcome {
  std::optional<std::size_t> delay;
  std::size_t alarms_outside = 0;  ///< Detections before the drift point.
};

StreamOutcome feed(drift::Detector& detector,
                   const model::MultiInstanceModel& model,
                   const data::Dataset& stream, std::size_t drift_at) {
  StreamOutcome outcome;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto pred = model.predict(stream.x.row(i));
    drift::Observation obs;
    obs.x = stream.x.row(i);
    obs.predicted_label = static_cast<int>(pred.label);
    obs.anomaly_score = pred.score;
    if (detector.observe(obs).drift) {
      if (i < drift_at) {
        ++outcome.alarms_outside;
      } else if (!outcome.delay.has_value()) {
        outcome.delay = i - drift_at;
      }
    }
  }
  return outcome;
}

std::string fmt_delay(const std::optional<std::size_t>& d) {
  return d.has_value() ? std::to_string(*d) : "-";
}

}  // namespace

int main() {
  std::printf("=== Ablation: multi-window ensemble (paper future work) "
              "===\n\n");

  data::CoolingFanLike generator;
  util::Rng rng(17);
  const data::Dataset train = generator.training(rng);
  const std::size_t drift_at = generator.config().drift_point;

  // A trained model shared by every detector variant.
  const auto base = bench::cooling_fan_config();
  util::Rng model_rng(base.seed);
  auto projection = oselm::make_projection(
      train.dim(), base.pipeline.hidden_dim, base.pipeline.activation,
      model_rng);
  model::MultiInstanceModel model(1, projection, base.pipeline.reg_lambda);
  model.init_train(train.x, train.labels);

  drift::CentroidDetectorConfig detector_base;
  detector_base.num_labels = 1;
  detector_base.dim = train.dim();
  detector_base.theta_error = 0.0;  // Calibrated below via the model scores.
  detector_base.initial_count = 0;
  {
    // theta_error from training scores (mean + 3 sigma).
    std::vector<double> scores(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) {
      scores[i] = model.instance(0).score(train.x.row(i));
    }
    double mu = 0.0;
    for (const double s : scores) mu += s;
    mu /= scores.size();
    double var = 0.0;
    for (const double s : scores) var += (s - mu) * (s - mu);
    detector_base.theta_error =
        mu + 3.0 * std::sqrt(var / scores.size());
  }

  const std::vector<std::size_t> window_sizes{10, 50, 150};

  util::Table table({"Detector", "Sudden delay", "Gradual delay",
                     "Reoccurring (want: ignore)", "False alarms"});

  const auto evaluate = [&](drift::Detector& det,
                            const std::string& label) {
    std::string cells[3];
    std::size_t alarms = 0;
    int idx = 0;
    for (const auto* kind : {"sudden", "gradual", "reoccurring"}) {
      util::Rng stream_rng(200 + idx);
      data::Dataset stream;
      if (std::string(kind) == "sudden") {
        stream = generator.sudden_stream(stream_rng);
      } else if (std::string(kind) == "gradual") {
        stream = generator.gradual_stream(stream_rng);
      } else {
        stream = generator.reoccurring_stream(stream_rng);
      }
      det.reset();
      const auto outcome = feed(det, model, stream, drift_at);
      cells[idx] = fmt_delay(outcome.delay);
      alarms += outcome.alarms_outside;
      ++idx;
    }
    table.add_row(
        {label, cells[0], cells[1], cells[2], std::to_string(alarms)});
  };

  // Individual members.
  for (const std::size_t w : window_sizes) {
    auto config = detector_base;
    config.window_size = w;
    drift::CentroidDetector det(config);
    det.calibrate(train.x, train.labels);
    evaluate(det, "single W=" + std::to_string(w));
  }

  // Ensembles under each vote policy.
  for (const auto policy : {drift::VotePolicy::kAny,
                            drift::VotePolicy::kMajority,
                            drift::VotePolicy::kAll}) {
    drift::MultiWindowDetector ensemble(detector_base, window_sizes, policy);
    ensemble.calibrate(train.x, train.labels);
    const char* name = policy == drift::VotePolicy::kAny
                           ? "ensemble {10,50,150} any"
                           : policy == drift::VotePolicy::kMajority
                                 ? "ensemble {10,50,150} majority"
                                 : "ensemble {10,50,150} all";
    evaluate(ensemble, name);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: 'any' inherits the smallest window's speed but also its\n"
      "sensitivity to the reoccurring transient; 'all' inherits the largest\n"
      "window's robustness but its latency; 'majority' sits between.\n");
  return 0;
}
