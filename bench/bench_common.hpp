// Shared configuration for the reproduction benches — thin aliases over the
// canonical paper configurations in the library.
#pragma once

#include "edgedrift/eval/paper_configs.hpp"

namespace edgedrift::bench {

inline eval::ExperimentConfig nsl_kdd_config(std::size_t window = 100) {
  return eval::nsl_kdd_paper_config(window);
}

inline eval::ExperimentConfig cooling_fan_config(std::size_t window = 50) {
  return eval::cooling_fan_paper_config(window);
}

}  // namespace edgedrift::bench
