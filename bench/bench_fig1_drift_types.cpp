// Figure 1 reproduction: the four canonical concept-drift shapes (sudden,
// gradual, incremental, reoccurring). Emits, for each type, the windowed
// mean of the stream's first feature over time — the quantity the paper's
// sketch plots as "data distribution" vs "time".
#include <cstdio>
#include <vector>

#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

namespace {

data::GaussianConcept concept_at(double center) {
  data::GaussianClass c;
  c.mean = {center};
  c.stddev = {0.3};
  return data::GaussianConcept({c});
}

std::vector<double> windowed_mean(const data::Dataset& d,
                                  std::size_t window) {
  std::vector<double> series;
  for (std::size_t begin = 0; begin + window <= d.size(); begin += window) {
    double acc = 0.0;
    for (std::size_t i = begin; i < begin + window; ++i) acc += d.x(i, 0);
    series.push_back(acc / static_cast<double>(window));
  }
  return series;
}

std::string sparkline(const std::vector<double>& series, double lo,
                      double hi) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::string out;
  for (const double v : series) {
    const double t = (v - lo) / (hi - lo);
    const int level = std::min(7, std::max(0, static_cast<int>(t * 8.0)));
    out += kLevels[level];
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Figure 1: concept drift types ===\n");
  std::printf("(windowed mean of feature 0; low level = old concept, "
              "high level = new concept)\n\n");

  util::Rng rng(7);
  const auto old_concept = concept_at(0.0);
  const auto new_concept = concept_at(4.0);
  const std::size_t n = 2000;
  const std::size_t window = 40;

  const data::Dataset sudden =
      data::make_sudden_drift(old_concept, new_concept, n, n / 2, rng);
  const data::Dataset gradual = data::make_gradual_drift(
      old_concept, new_concept, n, n / 4, 3 * n / 4, rng);
  const data::Dataset incremental = data::make_incremental_drift(
      old_concept, new_concept, n, n / 4, 3 * n / 4, rng);
  const data::Dataset reoccurring = data::make_reoccurring_drift(
      old_concept, new_concept, n, 2 * n / 5, 3 * n / 5, rng);

  struct Row {
    const char* name;
    const data::Dataset* stream;
  };
  const Row rows[] = {{"sudden", &sudden},
                      {"gradual", &gradual},
                      {"incremental", &incremental},
                      {"reoccurring", &reoccurring}};

  for (const auto& row : rows) {
    const auto series = windowed_mean(*row.stream, window);
    std::printf("%-12s |%s|\n", row.name,
                sparkline(series, -0.5, 4.5).c_str());
  }

  std::printf("\nSeries values (one column per %zu-sample window):\n",
              window);
  for (const auto& row : rows) {
    std::printf("%s:", row.name);
    for (const double v : windowed_mean(*row.stream, window)) {
      std::printf(" %.2f", v);
    }
    std::printf("\n");
  }
  return 0;
}
