// Statistical-rigor bench: the Table 2 quantities re-measured across
// independent stream seeds, reported as mean +- std. A reproduction that
// only matches the paper on one lucky seed proves little; this bench shows
// the shape claims hold distributionally.
#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/eval/experiment.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

namespace {

struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
};

Stats stats_of(const std::vector<double>& values) {
  Stats s;
  if (values.empty()) return s;
  for (const double v : values) s.mean += v;
  s.mean /= static_cast<double>(values.size());
  for (const double v : values) {
    s.stddev += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(s.stddev / static_cast<double>(values.size()));
  return s;
}

std::string pm(const Stats& s, int digits = 1) {
  return util::fmt(s.mean, digits) + " +- " + util::fmt(s.stddev, digits);
}

}  // namespace

int main() {
  constexpr int kSeeds = 5;
  std::printf("=== Seed stability: Table 2 quantities across %d stream "
              "seeds ===\n\n",
              kSeeds);

  // Shorter stream than the headline bench keeps the 5-seed sweep quick
  // while preserving the geometry (drift at the same relative position).
  data::NslKddLikeConfig data_config;
  data_config.train_size = 2000;
  data_config.test_size = 10000;
  data_config.drift_point = 3670;

  const eval::Method methods[] = {
      eval::Method::kQuantTree, eval::Method::kSpll, eval::Method::kBaseline,
      eval::Method::kProposed, eval::Method::kMultiWindow};

  util::Table table({"Method", "Accuracy (%) mean +- std",
                     "Delay mean +- std", "Detected", "False alarms"});
  for (const auto method : methods) {
    std::vector<double> accuracies;
    std::vector<double> delays;
    int detected = 0;
    int false_alarms = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      data::NslKddLike generator(data_config);
      util::Rng rng(1000 + seed);
      const data::Dataset train = generator.training(rng);
      const data::Dataset test = generator.test_stream(rng);
      auto config = bench::nsl_kdd_config(100);
      config.seed = static_cast<std::uint64_t>(seed) + 1;

      const auto result =
          eval::run_experiment(method, train, test, config);
      accuracies.push_back(result.accuracy.overall() * 100.0);
      const auto delay = result.detections.delay(data_config.drift_point);
      if (delay) {
        ++detected;
        delays.push_back(static_cast<double>(*delay));
      }
      false_alarms += static_cast<int>(
          result.detections.false_alarms(data_config.drift_point));
    }
    table.add_row({eval::method_name(method), pm(stats_of(accuracies)),
                   delays.empty() ? "-" : pm(stats_of(delays), 0),
                   std::to_string(detected) + "/" + std::to_string(kSeeds),
                   std::to_string(false_alarms)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Shape claims to verify distributionally: batch detectors detect at\n"
      "the first batch boundary on every seed (delay std 0); the proposed\n"
      "method detects on every seed, later and with seed-dependent delay\n"
      "(the paper's 843-sample figure sits inside our band); no method\n"
      "false-alarms. Per-seed drift severity varies, so accuracy means\n"
      "carry visible std — exactly why single-seed accuracy comparisons\n"
      "need this table behind them.\n");
  return 0;
}
