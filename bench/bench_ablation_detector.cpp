// Ablation bench: design choices of the proposed detector that DESIGN.md
// calls out, measured on the NSL-KDD-like stream.
//
//   A. theta_error gating on vs off — the gate exists to keep the recent
//      centroids fresh; without it, every sample feeds the running means
//      and the detector reacts sluggishly.
//   B. Equation 1's z parameter — trades detection delay against false
//      alarms.
//   C. Running-mean vs EWMA recent centroids — Section 3.2's "higher
//      weight to a newer sample" variant.
#include <cstdio>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/table.hpp"

using namespace edgedrift;

namespace {

struct RunResult {
  std::optional<std::size_t> delay;
  std::size_t false_alarms = 0;
  double accuracy = 0.0;
};

RunResult run(const core::PipelineConfig& config, const data::Dataset& train,
              const data::Dataset& test, std::size_t drift_at) {
  core::Pipeline pipeline(config);
  pipeline.fit(train.x, train.labels);
  RunResult result;
  std::size_t hits = 0;
  bool detected = false;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto step = pipeline.process(test.x.row(i));
    if (static_cast<int>(step.prediction.label) == test.labels[i]) ++hits;
    if (step.drift_detected) {
      if (i < drift_at) {
        ++result.false_alarms;
      } else if (!detected) {
        result.delay = i - drift_at;
        detected = true;
      }
    }
  }
  result.accuracy = static_cast<double>(hits) / test.size();
  return result;
}

std::string fmt_delay(const std::optional<std::size_t>& d) {
  return d.has_value() ? std::to_string(*d) : "-";
}

}  // namespace

int main() {
  std::printf("=== Ablations: proposed-detector design choices "
              "(NSL-KDD-like) ===\n\n");

  // Smaller stream than the headline bench keeps the sweep fast while
  // preserving the drift geometry.
  data::NslKddLikeConfig data_config;
  data_config.train_size = 1500;
  data_config.test_size = 9000;
  data_config.drift_point = 3000;
  data::NslKddLike generator(data_config);
  util::Rng rng(11);
  const data::Dataset train = generator.training(rng);
  const data::Dataset test = generator.test_stream(rng);
  const std::size_t drift_at = data_config.drift_point;
  const auto base = bench::nsl_kdd_config(100).pipeline;

  // --- A: theta_error gating -------------------------------------------
  {
    util::Table table(
        {"Gate", "Delay", "False alarms", "Overall accuracy (%)"});
    auto gated = base;
    const auto r_gated = run(gated, train, test, drift_at);
    auto ungated = base;
    ungated.theta_error = 1e-12;  // Effectively always open.
    const auto r_ungated = run(ungated, train, test, drift_at);
    table.add_row({"theta_error gate (auto)", fmt_delay(r_gated.delay),
                   std::to_string(r_gated.false_alarms),
                   util::fmt(r_gated.accuracy * 100.0, 1)});
    table.add_row({"gate disabled (always open)",
                   fmt_delay(r_ungated.delay),
                   std::to_string(r_ungated.false_alarms),
                   util::fmt(r_ungated.accuracy * 100.0, 1)});
    std::printf("--- A: anomaly-score gating ---\n%s\n", table.str().c_str());
  }

  // --- B: Equation 1 z sweep -------------------------------------------
  {
    util::Table table({"z", "Delay", "False alarms", "Accuracy (%)"});
    for (const double z : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      auto config = base;
      config.z = z;
      const auto r = run(config, train, test, drift_at);
      table.add_row({util::fmt(z, 2), fmt_delay(r.delay),
                     std::to_string(r.false_alarms),
                     util::fmt(r.accuracy * 100.0, 1)});
    }
    std::printf("--- B: Equation 1 threshold tuning (z) ---\n%s\n",
                table.str().c_str());
    std::printf("(paper Section 5.1: manual threshold tuning can shorten "
                "the detection delay)\n\n");
  }

  // --- C: running mean vs EWMA recent centroids -------------------------
  {
    util::Table table(
        {"Recent-centroid update", "Delay", "False alarms", "Accuracy (%)"});
    const auto r_mean = run(base, train, test, drift_at);
    table.add_row({"running mean (paper)", fmt_delay(r_mean.delay),
                   std::to_string(r_mean.false_alarms),
                   util::fmt(r_mean.accuracy * 100.0, 1)});
    for (const double decay : {0.9, 0.98, 0.995}) {
      auto config = base;
      config.ewma_decay = decay;
      const auto r = run(config, train, test, drift_at);
      table.add_row({"EWMA decay " + util::fmt(decay, 3),
                     fmt_delay(r.delay), std::to_string(r.false_alarms),
                     util::fmt(r.accuracy * 100.0, 1)});
    }
    std::printf("--- C: recency weighting of the test centroids ---\n%s\n",
                table.str().c_str());
  }
  return 0;
}
