#!/usr/bin/env python3
"""Gate the scenario-sweep matrix on the paper's headline detector.

Reads an edgedrift-eval-v1 JSON file produced by

    example_edgedrift_cli sweep ... --json <file>

and checks the (abrupt, centroid) cell — the paper's own detector on the
cleanest drift preset — for sane detection behaviour:

  * the cell exists and its schema version matches,
  * every annotated drift point was detected (detected == drift_points),
  * the mean detection delay is under --max-delay samples (default 600;
    the committed EVAL_scenarios.json baseline sits at 399),
  * the false-alarm rate stays under --max-fa-per-1k (default 1.0).

The bound is deliberately loose — it catches a detector or generator
regression that makes the centroid miss or limp after an unmistakable
calibrated Hellinger-0.9 shift, without flaking on ordinary noise: the
scenario compiler is seeded, so the cell is deterministic.

Exit code 0 when sane, 1 on a violated bound or a missing cell.
"""
import argparse
import json
import sys

SCHEMA = "edgedrift-eval-v1"
SCENARIO = "abrupt"
DETECTOR = "centroid"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("eval_json", help="sweep --json output")
    parser.add_argument("--max-delay", type=float, default=600.0,
                        help="mean-delay bound in samples (default 600)")
    parser.add_argument("--max-fa-per-1k", type=float, default=1.0,
                        help="false-alarm-rate bound (default 1.0)")
    args = parser.parse_args()

    with open(args.eval_json) as f:
        doc = json.load(f)

    if doc.get("schema") != SCHEMA:
        print(f"FAIL: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
        return 1

    cell = None
    for c in doc.get("cells", []):
        if c.get("scenario") == SCENARIO and c.get("detector") == DETECTOR:
            cell = c
            break
    if cell is None:
        print(f"FAIL: no ({SCENARIO}, {DETECTOR}) cell in {args.eval_json}")
        return 1

    failures = []
    if cell["detected"] != cell["drift_points"]:
        failures.append(
            f"detected {cell['detected']}/{cell['drift_points']} drift points"
        )
    if cell["detected"] > 0 and cell["mean_delay"] > args.max_delay:
        failures.append(
            f"mean delay {cell['mean_delay']:.0f} > bound {args.max_delay:.0f}"
        )
    if cell["false_alarm_rate_per_1k"] > args.max_fa_per_1k:
        failures.append(
            f"FA rate {cell['false_alarm_rate_per_1k']:.2f}/1k > bound "
            f"{args.max_fa_per_1k:.2f}"
        )

    tag = f"({SCENARIO}, {DETECTOR})"
    if failures:
        for msg in failures:
            print(f"FAIL {tag}: {msg}")
        return 1
    print(
        f"OK {tag}: detected {cell['detected']}/{cell['drift_points']}, "
        f"mean delay {cell['mean_delay']:.0f} <= {args.max_delay:.0f}, "
        f"FA/1k {cell['false_alarm_rate_per_1k']:.2f} <= "
        f"{args.max_fa_per_1k:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
