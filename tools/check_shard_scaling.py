#!/usr/bin/env python3
"""Gate the sharded serving layer's drain-scaling efficiency.

Reads an edgedrift-bench-v1 JSON file produced by bench_manager_throughput
and checks the shard-sweep rows

    nsl-kdd-c23/streams=8/drain=batch/shards=<N>/hot=all

for near-linear drain scaling. Because per-stream drains are independent,
the ideal speedup of N shards over 1 is min(N, cores) — bounded by the
machine, not the shard count — so the gate is core-count-normalized:

    efficiency(N) = (sps[N] / sps[1]) / min(N, cores)

must be >= --threshold (default 0.7) at N = 4. The normalization keeps the
check meaningful on constrained runners: on a single-core container the
ideal speedup is 1.0x and the gate degenerates to "sharding must not cost
more than 30%", while on a 4+-core runner it demands a real >= 2.8x.

The hot=half sibling rows (eviction churn in the loop) are reported for
context but not gated — eviction cost has its own latency histograms in
the obs snapshot.

Exit code 0 when efficient, 1 when below threshold or records are missing.
"""
import argparse
import json
import os
import re
import sys

ROW_RE = re.compile(
    r"^nsl-kdd-c23/streams=8/drain=batch/shards=(\d+)/hot=(all|half)$"
)
GATED_SHARDS = 4


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="bench_manager_throughput --json output")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.7,
        help="min core-normalized efficiency at 4 shards (default 0.7)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=0,
        help="override detected core count (default: os.cpu_count())",
    )
    args = parser.parse_args()

    with open(args.bench_json) as f:
        data = json.load(f)
    if data.get("schema") != "edgedrift-bench-v1":
        print(f"unexpected schema: {data.get('schema')!r}", file=sys.stderr)
        return 1

    sweep = {}
    for row in data.get("results", []):
        m = ROW_RE.match(row.get("name", ""))
        if m:
            sweep[(int(m.group(1)), m.group(2))] = row["samples_per_second"]

    needed = [(1, "all"), (GATED_SHARDS, "all")]
    missing = [k for k in needed if k not in sweep]
    if missing:
        print(f"missing shard-sweep records: {missing}", file=sys.stderr)
        return 1

    cores = args.cores if args.cores > 0 else (os.cpu_count() or 1)
    base = sweep[(1, "all")]
    if base <= 0.0:
        print(f"1-shard throughput is {base}; cannot compare", file=sys.stderr)
        return 1

    ok = True
    for (shards, hot), sps in sorted(sweep.items()):
        speedup = sps / base
        ideal = min(shards, cores)
        eff = speedup / ideal
        gated = shards == GATED_SHARDS and hot == "all"
        verdict = ""
        if gated:
            if eff < args.threshold:
                ok = False
                verdict = f"  <-- FAIL (< {args.threshold:.2f})"
            else:
                verdict = f"  (gate: >= {args.threshold:.2f}, ok)"
        print(
            f"shards={shards} hot={hot}: {sps / 1e3:8.1f} ksamples/s, "
            f"speedup {speedup:.2f}x, efficiency {eff:.2f} "
            f"(ideal {ideal}x on {cores} cores){verdict}"
        )

    if not ok:
        print("shard drain scaling below efficiency threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
