#!/usr/bin/env python3
"""Gate the cross-stream coalesced drain's high-density advantage.

Reads an edgedrift-bench-v1 JSON file produced by bench_manager_throughput
and checks the coalescing-ablation rows

    nsl-kdd/coalesce/resident=<R>/burst=<B>/coalesce=<on|off>

at the planner's target regime: 64 resident streams in one seeded
projection group, each draining 1-row bursts — where the per-stream path
runs one tiny projection GEMM per stream and the planner folds all 64 into
one mega-batch. The gated ratio

    gain = sps[resident=64, burst=1, on] / sps[resident=64, burst=1, off]

must be >= --threshold (default 1.3) on the f64 rows. Both sides are
interleaved medians from the same binary over identical submissions, so
the ratio is a paired comparison, not two independent runs.

The remaining rows (16-resident, larger bursts, the i8 density tier) are
reported for context but not gated: at 16 residents or 8-row bursts the
per-stream GEMMs are already wide enough that coalescing is a small win,
and the i8 rows ride the same planner as f64 — gating one regime is
enough to catch a planner regression.

Exit code 0 when the gain holds, 1 when below threshold or records are
missing.
"""
import argparse
import json
import re
import sys

ROW_RE = re.compile(
    r"^nsl-kdd/coalesce/resident=(\d+)/burst=(\d+)/coalesce=(on|off)$"
)
GATED = (64, 1, "f64")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="bench_manager_throughput --json output")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.3,
        help="min coalesced/per-stream gain at 64 residents, burst=1 "
        "(default 1.3)",
    )
    args = parser.parse_args()

    with open(args.bench_json) as f:
        data = json.load(f)
    if data.get("schema") != "edgedrift-bench-v1":
        print(f"unexpected schema: {data.get('schema')!r}", file=sys.stderr)
        return 1

    sweep = {}
    for row in data.get("results", []):
        m = ROW_RE.match(row.get("name", ""))
        if m:
            key = (int(m.group(1)), int(m.group(2)),
                   row.get("precision", "f64"), m.group(3))
            sweep[key] = row["samples_per_second"]

    resident, burst, precision = GATED
    needed = [(resident, burst, precision, "on"),
              (resident, burst, precision, "off")]
    missing = [k for k in needed if k not in sweep]
    if missing:
        print(f"missing coalesce-ablation records: {missing}", file=sys.stderr)
        return 1

    ok = True
    pairs = sorted({k[:3] for k in sweep})
    for r, b, prec in pairs:
        on = sweep.get((r, b, prec, "on"))
        off = sweep.get((r, b, prec, "off"))
        if on is None or off is None or off <= 0.0:
            continue
        gain = on / off
        gated = (r, b, prec) == GATED
        verdict = ""
        if gated:
            if gain < args.threshold:
                ok = False
                verdict = f"  <-- FAIL (< {args.threshold:.2f}x)"
            else:
                verdict = f"  (gate: >= {args.threshold:.2f}x, ok)"
        print(
            f"resident={r} burst={b} {prec}: on {on / 1e3:8.1f} ksamples/s, "
            f"off {off / 1e3:8.1f} ksamples/s, gain {gain:.2f}x{verdict}"
        )

    if not ok:
        print("coalesced drain gain below threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
