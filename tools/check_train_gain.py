#!/usr/bin/env python3
"""Gate the chunked rank-k training path's throughput advantage.

Reads an edgedrift-bench-v1 JSON file produced by bench_manager_throughput
and checks the training-side ablation rows

    nsl-kdd/train/resident=<R>/burst=<B>/chunk=<K>

— a resident population held in an endless kResetRecalibrate recovery, so
every drained sample is a self-label training sample. The gated ratio

    gain = sps[chunk=8, i8] / sps[chunk=1, i8]

must be >= --threshold (default 1.4) on the i8 rows: in that tier the
per-sample path requantizes the winner's replica block after every sample,
while the chunked path buckets each chunk per winner, absorbs every bucket
with one Woodbury block update and requantizes once per bucket — the
amortization the gate pins. Both sides are interleaved medians from the
same binary over identical submissions, so the ratio is a paired
comparison, not two independent runs.

The f64 rows and the chunk=4 points are reported for context but not
gated: at f64 there is no replica to amortize, so the chunked win is the
smaller block-update/batch-scoring term only.

Exit code 0 when the gain holds, 1 when below threshold or records are
missing.
"""
import argparse
import json
import re
import sys

ROW_RE = re.compile(r"^nsl-kdd/train/resident=(\d+)/burst=(\d+)/chunk=(\d+)$")
GATED_PRECISION = "i8"
GATED_CHUNKS = (1, 8)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="bench_manager_throughput --json output")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.4,
        help="min chunk=8/chunk=1 training-throughput gain on the i8 rows "
        "(default 1.4)",
    )
    args = parser.parse_args()

    with open(args.bench_json) as f:
        data = json.load(f)
    if data.get("schema") != "edgedrift-bench-v1":
        print(f"unexpected schema: {data.get('schema')!r}", file=sys.stderr)
        return 1

    sweep = {}
    for row in data.get("results", []):
        m = ROW_RE.match(row.get("name", ""))
        if m:
            key = (int(m.group(1)), int(m.group(2)),
                   row.get("precision", "f64"), int(m.group(3)))
            sweep[key] = row["samples_per_second"]

    geometries = sorted({k[:2] for k in sweep})
    gated_keys = [
        (r, b, GATED_PRECISION, chunk)
        for (r, b) in geometries
        for chunk in GATED_CHUNKS
    ]
    if not geometries:
        print("no train-ablation records found", file=sys.stderr)
        return 1
    missing = [k for k in gated_keys if k not in sweep]
    if missing:
        print(f"missing train-ablation records: {missing}", file=sys.stderr)
        return 1

    ok = True
    combos = sorted({k[:3] for k in sweep})
    for r, b, prec in combos:
        base = sweep.get((r, b, prec, 1))
        if base is None or base <= 0.0:
            continue
        for chunk in sorted({k[3] for k in sweep if k[:3] == (r, b, prec)}):
            if chunk == 1:
                continue
            sps = sweep[(r, b, prec, chunk)]
            gain = sps / base
            gated = prec == GATED_PRECISION and chunk == 8
            verdict = ""
            if gated:
                if gain < args.threshold:
                    ok = False
                    verdict = f"  <-- FAIL (< {args.threshold:.2f}x)"
                else:
                    verdict = f"  (gate: >= {args.threshold:.2f}x, ok)"
            print(
                f"resident={r} burst={b} {prec}: chunk={chunk} "
                f"{sps / 1e3:8.1f} ksamples/s vs chunk=1 "
                f"{base / 1e3:8.1f} ksamples/s, gain {gain:.2f}x{verdict}"
            )

    if not ok:
        print("chunked training gain below threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
