#!/usr/bin/env python3
"""Pin the observability layer's serving-path cost under a budget.

Reads an edgedrift-bench-v1 JSON file produced by bench_manager_throughput
and compares the interleaved obs-overhead ablation pair:

    nsl-kdd/streams=8/drain=batch/obs=on
    nsl-kdd/streams=8/drain=batch/obs=off

The obs=on throughput must stay within --budget (default 3%) of obs=off.
Comparing the two in-binary, interleaved runs makes the check stable on
shared CI runners: both sides see the same machine, thermal state and
build, so the ratio isolates exactly the recording cost.

Exit code 0 when within budget, 1 when exceeded or records are missing.
"""
import argparse
import json
import sys

ON_NAME = "nsl-kdd/streams=8/drain=batch/obs=on"
OFF_NAME = "nsl-kdd/streams=8/drain=batch/obs=off"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="bench_manager_throughput --json output")
    parser.add_argument(
        "--budget",
        type=float,
        default=0.03,
        help="max allowed relative throughput loss with obs on (default 0.03)",
    )
    args = parser.parse_args()

    with open(args.bench_json) as f:
        data = json.load(f)
    if data.get("schema") != "edgedrift-bench-v1":
        print(f"unexpected schema: {data.get('schema')!r}", file=sys.stderr)
        return 1

    by_name = {r["name"]: r for r in data.get("results", [])}
    missing = [n for n in (ON_NAME, OFF_NAME) if n not in by_name]
    if missing:
        print(f"missing ablation records: {missing}", file=sys.stderr)
        return 1

    on = by_name[ON_NAME]["samples_per_second"]
    off = by_name[OFF_NAME]["samples_per_second"]
    if off <= 0.0:
        print(f"obs=off throughput is {off}; cannot compare", file=sys.stderr)
        return 1

    loss = 1.0 - on / off
    print(
        f"obs=off: {off / 1e3:.1f} ksamples/s, obs=on: {on / 1e3:.1f} "
        f"ksamples/s, loss: {loss * 100.0:+.2f}% (budget {args.budget * 100.0:.1f}%)"
    )
    if loss > args.budget:
        print("observability overhead exceeds budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
