// The tiered numerics contract (linalg/numerics.hpp): quantization grid
// properties, replica re-quantization discipline under Sherman–Morrison
// training, and the checkpoint's tier field.
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "edgedrift/io/checkpoint.hpp"
#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/linalg/numerics.hpp"
#include "edgedrift/linalg/quant.hpp"
#include "edgedrift/linalg/workspace.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using namespace edgedrift;
using linalg::Matrix;
using linalg::NumericsTier;

TEST(NumericsTiers, TierNamesRoundTrip) {
  EXPECT_STREQ(linalg::tier_name(NumericsTier::kExactF64), "f64");
  EXPECT_STREQ(linalg::tier_name(NumericsTier::kFastF32), "f32");
  EXPECT_STREQ(linalg::tier_name(NumericsTier::kQuantI8), "i8");
  for (const NumericsTier tier :
       {NumericsTier::kExactF64, NumericsTier::kFastF32,
        NumericsTier::kQuantI8}) {
    const auto parsed = linalg::tier_from_name(linalg::tier_name(tier));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, tier);
  }
  EXPECT_FALSE(linalg::tier_from_name("f16").has_value());
  EXPECT_EQ(linalg::tier_element_bytes(NumericsTier::kExactF64), 8u);
  EXPECT_EQ(linalg::tier_element_bytes(NumericsTier::kFastF32), 4u);
  EXPECT_EQ(linalg::tier_element_bytes(NumericsTier::kQuantI8), 1u);
}

TEST(NumericsTiers, QuantizeComputesPerColumnScales) {
  Matrix m(3, 2);
  m(0, 0) = 1.0;  m(0, 1) = -0.5;
  m(1, 0) = -2.0; m(1, 1) = 0.25;
  m(2, 0) = 0.5;  m(2, 1) = 0.125;
  linalg::QuantizedMatrix q;
  linalg::quantize(m, q);
  ASSERT_EQ(q.rows(), 3u);
  ASSERT_EQ(q.cols(), 2u);
  EXPECT_FLOAT_EQ(q.scales[0], 2.0f / 127.0f);
  EXPECT_FLOAT_EQ(q.scales[1], 0.5f / 127.0f);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(q.dequant(r, c), m(r, c), q.scales[c] / 2.0f + 1e-9);
    }
  }
}

TEST(NumericsTiers, QuantizeSaturatesSymmetrically) {
  // The column extremes land exactly on +/-127; -128 is never produced,
  // and an asymmetric column keeps its scale from the larger magnitude.
  Matrix m(2, 2);
  m(0, 0) = 3.0;  m(0, 1) = -5.0;
  m(1, 0) = -3.0; m(1, 1) = 3.0;
  linalg::QuantizedMatrix q;
  linalg::quantize(m, q);
  EXPECT_EQ(q.q(0, 0), 127);
  EXPECT_EQ(q.q(1, 0), -127);
  EXPECT_EQ(q.q(0, 1), -127);
  EXPECT_FLOAT_EQ(q.scales[1], 5.0f / 127.0f);
  for (std::size_t r = 0; r < q.rows(); ++r) {
    for (std::size_t c = 0; c < q.cols(); ++c) {
      EXPECT_GE(q.q(r, c), -127);
      EXPECT_LE(q.q(r, c), 127);
    }
  }
}

TEST(NumericsTiers, ZeroColumnQuantizesToZero) {
  Matrix m(4, 2);
  m.fill(0.0);
  for (std::size_t r = 0; r < 4; ++r) m(r, 1) = 1.0 + static_cast<double>(r);
  linalg::QuantizedMatrix q;
  linalg::quantize(m, q);
  EXPECT_EQ(q.scales[0], 0.0f);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(q.q(r, 0), 0);
    EXPECT_NEAR(q.dequant(r, 1), m(r, 1), q.scales[1] / 2.0f + 1e-9);
  }
}

TEST(NumericsTiers, RandomRoundTripHonorsHalfScaleBound) {
  util::Rng rng(7);
  Matrix m = Matrix::random_gaussian(64, 48, rng, 2.0);
  linalg::QuantizedMatrix q;
  linalg::quantize(m, q);
  for (std::size_t c = 0; c < m.cols(); ++c) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      EXPECT_LE(std::abs(q.dequant(r, c) - m(r, c)),
                q.scales[c] / 2.0f + 1e-6f)
          << "(" << r << ", " << c << ")";
    }
  }
}

TEST(NumericsTiers, QuantizeBlockMatchesFullQuantize) {
  util::Rng rng(11);
  Matrix m = Matrix::random_uniform(16, 24, rng, -3.0, 3.0);
  linalg::QuantizedMatrix full, blocked;
  linalg::quantize(m, full);
  linalg::quantize(m, blocked);
  // Perturb one column block of the master, refresh only that block.
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 8; c < 16; ++c) m(r, c) *= 1.5;
  }
  linalg::quantize_block(m, blocked, 8, 8);
  linalg::quantize(m, full);
  for (std::size_t c = 0; c < m.cols(); ++c) {
    EXPECT_FLOAT_EQ(blocked.scales[c], full.scales[c]) << "col " << c;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      EXPECT_EQ(blocked.q(r, c), full.q(r, c)) << "(" << r << ", " << c << ")";
    }
  }
}

TEST(NumericsTiers, QuantizeVectorRoundTrip) {
  const std::vector<double> x{0.5, -1.25, 0.0, 2.0, -2.0};
  std::vector<std::int8_t> q(x.size());
  const float scale = linalg::quantize_vector(std::span<const double>(x),
                                              std::span<std::int8_t>(q));
  EXPECT_FLOAT_EQ(scale, 2.0f / 127.0f);
  EXPECT_EQ(q[3], 127);
  EXPECT_EQ(q[4], -127);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(static_cast<float>(q[i]) * scale, x[i], scale / 2.0f + 1e-9);
  }
}

TEST(NumericsTiers, MatrixStorageIsAligned) {
  Matrix a(5, 7);
  linalg::MatrixF32 b(3, 9);
  linalg::MatrixI8 c(2, 130);
  EXPECT_TRUE(linalg::is_matrix_aligned(a.data()));
  EXPECT_TRUE(linalg::is_matrix_aligned(b.data()));
  EXPECT_TRUE(linalg::is_matrix_aligned(c.data()));
}

/// A trained two-instance model for the replica-discipline tests.
model::MultiInstanceModel make_model(std::size_t num_labels,
                                     std::size_t dim, std::size_t hidden) {
  util::Rng rng(42);
  auto projection =
      oselm::make_projection(dim, hidden, oselm::Activation::kSigmoid, rng);
  model::MultiInstanceModel model(num_labels, std::move(projection), 1e-2);
  Matrix train(num_labels * 40, dim);
  std::vector<int> labels(train.rows());
  for (std::size_t i = 0; i < train.rows(); ++i) {
    labels[i] = static_cast<int>(i % num_labels);
    for (std::size_t j = 0; j < dim; ++j) {
      train(i, j) = rng.gaussian(0.3 + 0.4 * labels[i], 0.2);
    }
  }
  model.init_train(train, labels);
  return model;
}

TEST(NumericsTiers, EpochAdvancesOnTierEntryAndTraining) {
  model::MultiInstanceModel model = make_model(3, 12, 8);
  EXPECT_EQ(model.numerics_tier(), NumericsTier::kExactF64);
  const std::uint64_t before = model.quantization_epoch();

  model.set_numerics_tier(NumericsTier::kQuantI8);
  // Entering a replica tier refreshes every instance block.
  const std::uint64_t after_entry = model.quantization_epoch();
  EXPECT_GE(after_entry, before + 3);

  linalg::KernelWorkspace ws;
  util::Rng rng(5);
  std::vector<double> x(12);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  model.train_closest(std::span<const double>(x), ws);
  // Each Sherman–Morrison step mutates one instance's master beta, so its
  // replica block must be re-derived immediately (eager discipline).
  EXPECT_GT(model.quantization_epoch(), after_entry);
}

TEST(NumericsTiers, ReplicaStaysFreshAcrossSmSteps) {
  model::MultiInstanceModel model = make_model(2, 10, 6);
  model.set_numerics_tier(NumericsTier::kQuantI8);
  linalg::KernelWorkspace ws;
  util::Rng rng(9);
  std::vector<double> x(10);
  std::vector<double> i8_scores(2), f64_scores(2);
  for (int step = 0; step < 50; ++step) {
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    model.train_closest(std::span<const double>(x), ws);

    // The i8 scores must track the exact tier through every re-quantized
    // update: same argmin instance and a small relative score error.
    model.scores(std::span<const double>(x), i8_scores, ws);
    model.set_numerics_tier(NumericsTier::kExactF64);
    model.scores(std::span<const double>(x), f64_scores, ws);
    model.set_numerics_tier(NumericsTier::kQuantI8);
    for (std::size_t c = 0; c < 2; ++c) {
      const double scale = std::max(std::abs(f64_scores[c]), 1e-6);
      EXPECT_LT(std::abs(i8_scores[c] - f64_scores[c]) / scale, 0.15)
          << "step " << step << " instance " << c;
    }
  }
}

TEST(NumericsTiers, CheckpointRecordsAndEnforcesTier) {
  core::PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = 8;
  config.hidden_dim = 6;
  config.window_size = 20;
  config.numerics = NumericsTier::kFastF32;
  util::Rng rng(3);
  Matrix train(60, 8);
  std::vector<int> labels(train.rows());
  for (std::size_t i = 0; i < train.rows(); ++i) {
    labels[i] = static_cast<int>(i % 2);
    for (std::size_t j = 0; j < 8; ++j) {
      train(i, j) = rng.gaussian(0.3 + 0.4 * labels[i], 0.2);
    }
  }
  core::Pipeline pipeline(config);
  pipeline.fit(train, labels);

  std::stringstream blob;
  ASSERT_TRUE(io::save_pipeline(blob, pipeline));

  // Round trip: the tier is part of the restored config.
  auto restored = io::load_pipeline(blob);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->config().numerics, NumericsTier::kFastF32);
  EXPECT_EQ(restored->model().numerics_tier(), NumericsTier::kFastF32);

  // Matching expectation passes; a mismatched restore site is rejected
  // with a reason.
  blob.clear();
  blob.seekg(0);
  EXPECT_TRUE(
      io::load_pipeline(blob, NumericsTier::kFastF32).has_value());
  blob.clear();
  blob.seekg(0);
  std::string error;
  EXPECT_FALSE(
      io::load_pipeline(blob, NumericsTier::kQuantI8, &error).has_value());
  EXPECT_NE(error.find("tier"), std::string::npos) << error;
}

}  // namespace
