// The chunked rank-k training path (PipelineConfig::train_chunk): a batched
// drain consumes recovery training samples in chunks, bucketing each chunk's
// rows by winning instance, absorbing every bucket with one Woodbury block
// update (OsElm::train_batch_from_hidden) and requantizing the bucket's
// f32/i8 replica block once instead of once per sample.
//
// Contracts under test:
//  - linalg seam: woodbury_update at k = 1 computes the same matrix as
//    sherman_morrison_update to 1e-12 relative tolerance over random
//    shapes (the contract documented in linalg/updates.hpp).
//  - OsElm: one rank-k block step matches k sequential rank-1 steps on
//    beta and P to tight numerical tolerance.
//  - MultiInstanceModel: train_buckets_from_hidden matches the sequential
//    winner loop with the same fixed labels, keeps the packed mirror in
//    sync, and refreshes the i8 replica once per bucket (the requant
//    amortization, visible in ChunkTrainStats and quantization_epoch()).
//  - End to end: a manager draining with train_chunk in {2,4,8} is
//    drift-decision-equivalent to the per-sample drain at every numerics
//    tier, and the tier-equivalence harness holds under chunked bursts.
//  - submit_batch racing shard-worker chunked drains loses no samples
//    (run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/eval/paper_configs.hpp"
#include "edgedrift/eval/tier_equivalence.hpp"
#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/numerics.hpp"
#include "edgedrift/linalg/updates.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/oselm/autoencoder.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::core::DispatchMode;
using edgedrift::core::ManagerOptions;
using edgedrift::core::PipelineConfig;
using edgedrift::core::PipelineManager;
using edgedrift::core::PipelineStep;
using edgedrift::core::SubmitStatus;
using edgedrift::data::Dataset;
using edgedrift::data::GaussianClass;
using edgedrift::data::GaussianConcept;
using edgedrift::linalg::Matrix;
using edgedrift::linalg::NumericsTier;
using edgedrift::util::Rng;

// ---------------------------------------------------------------------------
// Linalg seam: Woodbury at k = 1 vs Sherman–Morrison.

/// A generic well-conditioned inverse: start from the RLS prior I/lambda and
/// absorb a few random rank-1 updates so P has no special structure left.
Matrix random_inverse(std::size_t n, Rng& rng) {
  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) p(i, i) = 1.0 / 0.05;
  std::vector<double> u(n);
  for (int step = 0; step < 6; ++step) {
    for (std::size_t i = 0; i < n; ++i) u[i] = rng.gaussian(0.0, 1.0);
    edgedrift::linalg::sherman_morrison_update(p, u, u);
  }
  return p;
}

double max_abs(const Matrix& m) {
  double v = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      v = std::max(v, std::abs(m(i, j)));
    }
  }
  return v;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double v = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      v = std::max(v, std::abs(a(i, j) - b(i, j)));
    }
  }
  return v;
}

// The rank-1 seam contract of linalg/updates.hpp: with k = 1 the Woodbury
// identity degenerates to Sherman–Morrison, and the two kernels — one fused
// ger, one tiny LU solve — agree to 1e-12 relative over random shapes.
TEST(ChunkedTrain, WoodburyRankOneMatchesShermanMorrison) {
  Rng rng(123);
  for (const std::size_t n : {2u, 3u, 7u, 16u, 33u, 64u}) {
    SCOPED_TRACE("n = " + std::to_string(n));
    for (int trial = 0; trial < 8; ++trial) {
      Matrix p_sm = random_inverse(n, rng);
      Matrix p_wb = p_sm;
      std::vector<double> u(n);
      std::vector<double> v(n);
      Matrix u_col(n, 1);
      Matrix v_col(n, 1);
      for (std::size_t i = 0; i < n; ++i) {
        u[i] = rng.gaussian(0.0, 1.0);
        v[i] = rng.gaussian(0.0, 1.0);
        u_col(i, 0) = u[i];
        v_col(i, 0) = v[i];
      }
      ASSERT_TRUE(edgedrift::linalg::sherman_morrison_update(p_sm, u, v));
      ASSERT_TRUE(edgedrift::linalg::woodbury_update(p_wb, u_col, v_col));
      const double scale = std::max(max_abs(p_sm), 1e-300);
      EXPECT_LE(max_abs_diff(p_sm, p_wb) / scale, 1e-12);
    }
  }
}

// The symmetric training kernel: woodbury_update_sym(P, H) equals the
// general woodbury_update(P, H^T, H^T) on symmetric P, and its exported
// factor ws.m is (P_new H^T)^T — the identity the OS-ELM beta update leans
// on to skip forming P_new H^T itself. At k = 1 this chains through the
// general kernel's pinned Sherman–Morrison degeneration above.
TEST(ChunkedTrain, WoodburySymMatchesGeneralAndExportsBetaFactor) {
  Rng rng(321);
  for (const std::size_t n : {3u, 7u, 22u, 40u}) {
    for (const std::size_t k : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("n = " + std::to_string(n) + ", k = " + std::to_string(k));
      // random_inverse returns (A^T A + I)^-1-style matrices: symmetric, as
      // the covariance-inverse contract requires.
      Matrix p_gen = random_inverse(n, rng);
      Matrix p_sym = p_gen;
      Matrix h(k, n);
      Matrix ht(n, k);
      for (std::size_t r = 0; r < k; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
          h(r, i) = rng.gaussian(0.0, 1.0);
          ht(i, r) = h(r, i);
        }
      }
      edgedrift::linalg::WoodburyWorkspace ws;
      ASSERT_TRUE(edgedrift::linalg::woodbury_update(p_gen, ht, ht));
      ASSERT_TRUE(edgedrift::linalg::woodbury_update_sym(p_sym, h, ws));
      const double p_scale = std::max(max_abs(p_gen), 1e-300);
      EXPECT_LE(max_abs_diff(p_gen, p_sym) / p_scale, 1e-12);
      // ws.m row r must equal P_new h_r.
      for (std::size_t r = 0; r < k; ++r) {
        std::vector<double> pnh(n);
        edgedrift::linalg::matvec(p_sym, h.row(r), pnh);
        double err = 0.0;
        double scale = 1e-300;
        for (std::size_t i = 0; i < n; ++i) {
          err = std::max(err, std::abs(pnh[i] - ws.m(r, i)));
          scale = std::max(scale, std::abs(pnh[i]));
        }
        EXPECT_LE(err / scale, 1e-10);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// OsElm / MultiInstanceModel: block updates vs sequential rank-1 loops.

Matrix gaussian_rows(std::size_t rows, std::size_t dim, double mean,
                     double stddev, Rng& rng) {
  Matrix m(rows, dim);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      m(i, j) = rng.gaussian(mean, stddev);
    }
  }
  return m;
}

// One rank-k train_batch_from_hidden equals k sequential train_from_hidden
// steps: exactly in exact arithmetic, to tight fp tolerance here.
TEST(ChunkedTrain, BlockUpdateMatchesSequentialOnBetaAndP) {
  constexpr std::size_t kDim = 10;
  constexpr std::size_t kHidden = 14;
  Rng rng(31);
  auto projection = edgedrift::oselm::make_projection(
      kDim, kHidden, edgedrift::oselm::Activation::kSigmoid, rng);
  edgedrift::oselm::Autoencoder sequential(projection);
  edgedrift::oselm::Autoencoder blocked(projection);
  const Matrix init = gaussian_rows(60, kDim, 0.4, 0.3, rng);
  sequential.init_train(init);
  blocked.init_train(init);

  for (const std::size_t k : {2u, 4u, 8u}) {
    SCOPED_TRACE("chunk = " + std::to_string(k));
    const Matrix chunk = gaussian_rows(k, kDim, 0.4, 0.3, rng);
    Matrix h;
    projection->hidden_batch_into(chunk, h);
    for (std::size_t r = 0; r < k; ++r) {
      sequential.train_from_hidden(h.row(r), chunk.row(r));
    }
    blocked.train_batch_from_hidden(h, chunk);

    const double beta_scale = std::max(max_abs(sequential.net().beta()), 1.0);
    EXPECT_LE(max_abs_diff(sequential.net().beta(), blocked.net().beta()) /
                  beta_scale,
              1e-9);
    const double p_scale = std::max(max_abs(sequential.net().p()), 1.0);
    EXPECT_LE(max_abs_diff(sequential.net().p(), blocked.net().p()) / p_scale,
              1e-9);
    EXPECT_EQ(blocked.samples_seen(), sequential.samples_seen());
  }
}

// Winner bucketing: train_buckets_from_hidden with fixed per-row winners
// matches the sequential winner loop instance for instance, counts one
// bucket per distinct winner, and leaves the packed mirror exactly in sync
// with every instance beta.
TEST(ChunkedTrain, BucketedTrainingMatchesSequentialWinnerLoop) {
  constexpr std::size_t kDim = 8;
  constexpr std::size_t kHidden = 12;
  constexpr std::size_t kLabels = 3;
  constexpr std::size_t kChunk = 8;
  Rng rng(47);
  auto projection = edgedrift::oselm::make_projection(
      kDim, kHidden, edgedrift::oselm::Activation::kSigmoid, rng);
  edgedrift::model::MultiInstanceModel sequential(kLabels, projection);
  edgedrift::model::MultiInstanceModel bucketed(kLabels, projection);
  Matrix init(kLabels * 40, kDim);
  std::vector<int> init_labels(init.rows());
  for (std::size_t i = 0; i < init.rows(); ++i) {
    init_labels[i] = static_cast<int>(i % kLabels);
    for (std::size_t j = 0; j < kDim; ++j) {
      init(i, j) = rng.gaussian(0.4 * static_cast<double>(init_labels[i]), 0.2);
    }
  }
  sequential.init_train(init, init_labels);
  bucketed.init_train(init, init_labels);

  // Uneven winners, only two of three instances hit: the empty bucket must
  // not issue an update.
  const std::vector<std::size_t> winners = {0, 2, 0, 0, 2, 0, 2, 0};
  const Matrix chunk = gaussian_rows(kChunk, kDim, 0.4, 0.3, rng);
  Matrix h;
  projection->hidden_batch_into(chunk, h);

  for (std::size_t r = 0; r < kChunk; ++r) {
    sequential.train_label(chunk.row(r), winners[r]);
  }
  edgedrift::model::BatchWorkspace ws;
  bucketed.reserve_chunk_train(kChunk, ws);
  const edgedrift::model::ChunkTrainStats stats =
      bucketed.train_buckets_from_hidden(chunk, h, winners, ws);

  EXPECT_EQ(stats.rows, kChunk);
  EXPECT_EQ(stats.buckets, 2u);
  EXPECT_EQ(stats.replica_refreshes, 0u) << "f64 tier has no replica";

  for (std::size_t c = 0; c < kLabels; ++c) {
    SCOPED_TRACE("instance " + std::to_string(c));
    const Matrix& want = sequential.instance(c).net().beta();
    const Matrix& got = bucketed.instance(c).net().beta();
    const double scale = std::max(max_abs(want), 1.0);
    EXPECT_LE(max_abs_diff(want, got) / scale, 1e-9);
    // The packed mirror must hold exactly the blocked model's betas — the
    // block path repacks, never replays a rank-1 ger.
    for (std::size_t i = 0; i < kHidden; ++i) {
      for (std::size_t j = 0; j < kDim; ++j) {
        EXPECT_EQ(bucketed.packed_beta()(i, c * kDim + j), got(i, j));
      }
    }
  }
}

// The requant amortization itself: in the i8 tier a chunk refreshes each
// winning bucket's replica block exactly once, not once per row, and the
// quantization epoch advances by the bucket count.
TEST(ChunkedTrain, ChunkRefreshesReplicaOncePerBucket) {
  constexpr std::size_t kDim = 8;
  constexpr std::size_t kHidden = 12;
  constexpr std::size_t kLabels = 3;
  constexpr std::size_t kChunk = 8;
  Rng rng(53);
  auto projection = edgedrift::oselm::make_projection(
      kDim, kHidden, edgedrift::oselm::Activation::kSigmoid, rng);
  edgedrift::model::MultiInstanceModel model(kLabels, projection);
  Matrix init(kLabels * 40, kDim);
  std::vector<int> init_labels(init.rows());
  for (std::size_t i = 0; i < init.rows(); ++i) {
    init_labels[i] = static_cast<int>(i % kLabels);
    for (std::size_t j = 0; j < kDim; ++j) {
      init(i, j) = rng.gaussian(0.4 * static_cast<double>(init_labels[i]), 0.2);
    }
  }
  model.init_train(init, init_labels);
  model.set_numerics_tier(NumericsTier::kQuantI8);
  const std::uint64_t epoch_before = model.quantization_epoch();

  const std::vector<std::size_t> winners = {1, 1, 0, 1, 1, 0, 1, 1};
  const Matrix chunk = gaussian_rows(kChunk, kDim, 0.4, 0.3, rng);
  Matrix h;
  projection->hidden_batch_into(chunk, h);
  edgedrift::model::BatchWorkspace ws;
  model.reserve_chunk_train(kChunk, ws);
  const edgedrift::model::ChunkTrainStats stats =
      model.train_buckets_from_hidden(chunk, h, winners, ws);

  EXPECT_EQ(stats.rows, kChunk);
  EXPECT_EQ(stats.buckets, 2u);
  EXPECT_EQ(stats.replica_refreshes, 2u)
      << "one requantization per bucket, not per row";
  EXPECT_EQ(model.quantization_epoch(), epoch_before + 2);
}

// ---------------------------------------------------------------------------
// End to end through the serving layer: the drifting multi-stream scenario
// of tests/test_coalesced_drain.cpp, drained with chunked training on.

GaussianConcept pre_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  a.stddev = {0.15};
  GaussianClass b;
  b.mean.assign(8, 1.2);
  b.stddev = {0.15};
  return GaussianConcept({a, b});
}

GaussianConcept post_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  for (std::size_t j = 0; j < 8; j += 2) a.mean[j] += 0.9;
  a.stddev = {0.2};
  GaussianClass b;
  b.mean.assign(8, 0.55);
  for (std::size_t j = 0; j < 8; j += 2) b.mean[j] += 0.9;
  b.stddev = {0.2};
  return GaussianConcept({a, b});
}

PipelineConfig make_config() {
  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = 8;
  config.hidden_dim = 12;
  config.window_size = 40;
  config.detector_initial_count = 0;
  config.reconstruction.n_search = 20;
  config.reconstruction.n_update = 100;
  config.reconstruction.n_total = 400;
  config.seed = 7;
  return config;
}

Dataset make_train() {
  Rng rng(77);
  return edgedrift::data::draw(pre_concept(), 600, rng);
}

std::vector<Dataset> make_tests(std::size_t n, std::size_t samples) {
  std::vector<Dataset> tests;
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(900 + i);
    tests.push_back(edgedrift::data::make_sudden_drift(
        pre_concept(), post_concept(), samples, samples / 2, rng));
  }
  return tests;
}

void seed_group(PipelineManager& manager, std::size_t n_streams,
                const Dataset& train) {
  manager.fit(0, train.x, train.labels);
  manager.seed_cold_from(0, n_streams - 1);
}

std::vector<std::vector<PipelineStep>> run_rounds(
    PipelineManager& manager, const std::vector<Dataset>& tests,
    std::size_t burst) {
  const std::size_t n = tests.size();
  const std::size_t samples = tests[0].size();
  for (std::size_t at = 0; at < samples; at += burst) {
    const std::size_t take = std::min(burst, samples - at);
    for (std::size_t s = 0; s < n; ++s) {
      Matrix rows(take, tests[s].x.cols());
      for (std::size_t r = 0; r < take; ++r) {
        rows.set_row(r, tests[s].x.row(at + r));
      }
      SubmitStatus status = SubmitStatus::kOk;
      EXPECT_EQ(manager.submit_batch(s, rows, {}, &status), take);
      EXPECT_EQ(status, SubmitStatus::kOk);
    }
    manager.drain();
  }
  std::vector<std::vector<PipelineStep>> steps(n);
  for (std::size_t s = 0; s < n; ++s) steps[s] = manager.take_steps(s);
  return steps;
}

ManagerOptions manual_options(std::size_t train_chunk) {
  ManagerOptions options;
  options.dispatch = DispatchMode::kManual;
  options.drain_opts.train_chunk = train_chunk;
  return options;
}

/// Drift positions and predicted labels of a step sequence.
struct DecisionTrace {
  std::vector<std::size_t> drift_positions;
  std::vector<int> labels;
};

DecisionTrace trace_of(const std::vector<PipelineStep>& steps) {
  DecisionTrace t;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    t.labels.push_back(steps[i].prediction.label);
    if (steps[i].drift_detected) t.drift_positions.push_back(i);
  }
  return t;
}

void expect_decision_equivalent(
    const std::vector<std::vector<PipelineStep>>& got,
    const std::vector<std::vector<PipelineStep>>& want) {
  for (std::size_t s = 0; s < want.size(); ++s) {
    SCOPED_TRACE("stream " + std::to_string(s));
    const DecisionTrace a = trace_of(got[s]);
    const DecisionTrace b = trace_of(want[s]);
    ASSERT_GE(b.drift_positions.size(), 1u)
        << "scenario must actually drift or the comparison is vacuous";
    ASSERT_EQ(a.drift_positions.size(), b.drift_positions.size());
    for (std::size_t d = 0; d < b.drift_positions.size(); ++d) {
      const std::size_t x = a.drift_positions[d];
      const std::size_t y = b.drift_positions[d];
      EXPECT_LE(x > y ? x - y : y - x, 25u) << "drift event " << d;
    }
    ASSERT_EQ(a.labels.size(), b.labels.size());
    std::size_t disagreements = 0;
    for (std::size_t i = 0; i < b.labels.size(); ++i) {
      if (a.labels[i] != b.labels[i]) ++disagreements;
    }
    EXPECT_LE(disagreements, b.labels.size() / 200)
        << "label agreement below 99.5%";
  }
}

// Chunked drains at chunk in {2,4,8} keep the per-sample drain's drift
// decisions at `tier`: same drift events within a small detection shift,
// near-total label agreement. The per-sample reference is run once and
// reused across chunk sizes; obs counters prove the chunked runs actually
// took the rank-k path and the reference never did.
void check_chunk_decision_equivalence(NumericsTier tier) {
  constexpr std::size_t kStreams = 6;
  const Dataset train = make_train();
  const auto tests = make_tests(kStreams, 480);

  ManagerOptions off = manual_options(0);  // keep the default train_chunk=1
  off.numerics = tier;
  PipelineManager reference(make_config(), 1, off);
  seed_group(reference, kStreams, train);
  const auto want = run_rounds(reference, tests, 8);
  EXPECT_EQ(reference.stats().totals().chunk_trains, 0u)
      << "per-sample reference must never chunk";

  for (const std::size_t chunk : {2u, 4u, 8u}) {
    SCOPED_TRACE("train_chunk = " + std::to_string(chunk));
    ManagerOptions on = manual_options(chunk);
    on.numerics = tier;
    PipelineManager chunked(make_config(), 1, on);
    seed_group(chunked, kStreams, train);
    const auto got = run_rounds(chunked, tests, 8);
    expect_decision_equivalent(got, want);

    const edgedrift::obs::CounterSnapshot totals =
        chunked.stats().totals();
    EXPECT_GT(totals.chunk_trains, 0u) << "chunked run must issue block updates";
    EXPECT_GT(totals.chunk_train_rows, totals.chunk_trains)
        << "some buckets must be real multi-row blocks";
    if (tier == NumericsTier::kExactF64) {
      EXPECT_EQ(totals.requants_saved, 0u) << "f64 has no replica to refresh";
    } else {
      EXPECT_GT(totals.requants_saved, 0u)
          << "amortized requantization must actually trigger";
    }
  }
}

TEST(ChunkedTrain, DecisionEquivalentAtF64) {
  check_chunk_decision_equivalence(NumericsTier::kExactF64);
}

TEST(ChunkedTrain, DecisionEquivalentAtF32) {
  check_chunk_decision_equivalence(NumericsTier::kFastF32);
}

TEST(ChunkedTrain, DecisionEquivalentAtI8) {
  check_chunk_decision_equivalence(NumericsTier::kQuantI8);
}

// Recovering streams stay coalesce-eligible when chunking is on: the whole
// run drains through shared-projection mega-batches and the planner keeps
// forming groups across the drift and the recovery window.
TEST(ChunkedTrain, RecoveringStreamsStayInCoalescedGroups) {
  constexpr std::size_t kStreams = 6;
  const Dataset train = make_train();
  const auto tests = make_tests(kStreams, 480);

  ManagerOptions on = manual_options(8);
  on.drain_opts.coalesce = true;
  PipelineManager manager(make_config(), 1, on);
  seed_group(manager, kStreams, train);
  const auto got = run_rounds(manager, tests, 8);

  const edgedrift::obs::Snapshot snap = manager.stats();
  ASSERT_EQ(snap.shards.size(), 1u);
  EXPECT_GT(snap.shards[0].coalesced_gemms, 0u);
  const edgedrift::obs::CounterSnapshot totals = snap.totals();
  EXPECT_GT(totals.chunk_trains, 0u)
      << "recovery training must have run through the chunked path";
  std::size_t drifts = 0;
  for (const auto& steps : got) {
    for (const PipelineStep& step : steps) drifts += step.drift_detected;
  }
  EXPECT_GE(drifts, kStreams) << "scenario must drift on every stream";
}

// ---------------------------------------------------------------------------
// Tier-equivalence harness under chunked bursts: the golden-replay scenario
// replayed in 8-row bursts with train_chunk in {2,4,8} must keep the
// reduced tiers decision-equivalent to the (equally chunked) f64 reference.

struct Scenario {
  Dataset train;
  Dataset test;
  edgedrift::eval::TierEquivalenceConfig config;
};

Scenario make_scenario() {
  edgedrift::data::NslKddLikeConfig stream;
  stream.train_size = 1600;
  stream.test_size = 2500;
  stream.drift_point = 1200;
  stream.seed = 42;
  const edgedrift::data::NslKddLike generator(stream);
  Rng rng(stream.seed);
  Scenario s{generator.training(rng), generator.test_stream(rng), {}};
  s.config.pipeline = edgedrift::eval::nsl_kdd_paper_config(100).pipeline;
  s.config.pipeline.input_dim = s.train.dim();
  s.config.burst = 8;
  return s;
}

TEST(ChunkedTrain, TierHarnessHoldsAtI8AcrossChunkSizes) {
  Scenario s = make_scenario();
  for (const std::size_t chunk : {2u, 4u, 8u}) {
    SCOPED_TRACE("train_chunk = " + std::to_string(chunk));
    s.config.pipeline.train_chunk = chunk;
    const auto report = edgedrift::eval::check_tier_equivalence(
        NumericsTier::kQuantI8, s.train, s.test, s.config);
    EXPECT_TRUE(report.equivalent) << report.failure;
    EXPECT_GE(report.reference_drifts, 1u);
  }
}

TEST(ChunkedTrain, TierHarnessHoldsAtF32WithChunking) {
  Scenario s = make_scenario();
  s.config.pipeline.train_chunk = 8;
  s.config.theta_rel_tol = 1e-4;  // f32 narrowing barely moves the gate.
  const auto report = edgedrift::eval::check_tier_equivalence(
      NumericsTier::kFastF32, s.train, s.test, s.config);
  EXPECT_TRUE(report.equivalent) << report.failure;
  EXPECT_GE(report.reference_drifts, 1u);
}

// ---------------------------------------------------------------------------
// The race surface: concurrent submit_batch producers against shard workers
// running chunked drains across a drift + recovery, with a tight hot budget
// keeping eviction in the mix. Run under TSan in CI; the invariant checked
// here is only that no sample is lost or duplicated.
TEST(ChunkedTrain, SubmitBatchRacesChunkedShardDrains) {
  constexpr std::size_t kStreams = 6;
  constexpr std::size_t kBatches = 40;
  constexpr std::size_t kBurst = 8;
  const Dataset train = make_train();
  const auto tests = make_tests(kStreams, kBatches * kBurst);

  ManagerOptions options;  // kShard dispatch, coalescing on by default.
  options.shards = 2;
  options.queue_capacity = 64;
  options.hot_stream_budget = 2;
  options.drain_opts.train_chunk = 8;
  PipelineManager manager(make_config(), 1, options);
  seed_group(manager, kStreams, train);

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < 2; ++t) {
    producers.emplace_back([&, t] {
      Matrix rows(kBurst, tests[0].x.cols());
      for (std::size_t b = 0; b < kBatches; ++b) {
        for (std::size_t s = t; s < kStreams; s += 2) {
          for (std::size_t r = 0; r < kBurst; ++r) {
            rows.set_row(r, tests[s].x.row(b * kBurst + r));
          }
          ASSERT_EQ(manager.submit_batch(s, rows), kBurst);
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  manager.drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    EXPECT_EQ(manager.stats(s).samples, kBatches * kBurst)
        << "stream " << s;
  }
  EXPECT_EQ(manager.totals().samples, kStreams * kBatches * kBurst);
}

}  // namespace
