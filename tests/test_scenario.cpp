// Scenario compiler properties: Hellinger calibration against the closed
// form, recurrent return to the trained concept, bit-identical seeded
// regeneration, conditional-drift/label-noise semantics, JSON round-trips,
// and the TrafficShaper's arrival processes.
#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "edgedrift/data/scenario.hpp"
#include "edgedrift/data/traffic.hpp"

namespace {

using namespace edgedrift;
using data::ScenarioSpec;

/// A small, fast spec the compiler tests share.
ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "unit";
  spec.num_features = 6;
  spec.num_labels = 2;
  spec.train_size = 200;
  spec.n_instances = 2000;
  spec.burn_in = 1000;
  spec.divergence_window = 200;
  spec.seed = 31;
  return spec;
}

/// The scenario geometry puts class c's anchor along dimension c; with the
/// default separation/stddev the nearest anchor recovers the sampled class
/// essentially always, which lets tests observe label remaps and noise.
int nearest_anchor_label(const data::Dataset& d, std::size_t i) {
  return d.x(i, 1) > d.x(i, 0) ? 1 : 0;
}

// ---------------------------------------------------------- calibration

TEST(ScenarioCompiler, HellingerCalibrationMatchesSpecMagnitude) {
  for (const double magnitude : {0.3, 0.5, 0.7, 0.9, 0.97}) {
    ScenarioSpec spec = small_spec();
    spec.drift_magnitude_prior = magnitude;
    const double h = data::gaussian_hellinger(
        data::scenario_concept(spec, 0), data::scenario_concept(spec, 1));
    // The calibration inverts the closed form exactly; only floating-point
    // round-off separates the achieved distance from the target.
    EXPECT_NEAR(h, magnitude, 1e-9) << "magnitude " << magnitude;
  }
}

TEST(ScenarioCompiler, CompiledScenarioReportsCalibratedHellinger) {
  ScenarioSpec spec = small_spec();
  spec.drift_magnitude_prior = 0.8;
  const data::CompiledScenario c = data::compile_scenario(spec);
  EXPECT_NEAR(c.calibrated_hellinger, 0.8, 1e-9);
}

TEST(ScenarioCompiler, NoPriorDriftMeansZeroCalibration) {
  ScenarioSpec spec = small_spec();
  spec.drift_priors = false;
  spec.drift_conditional = true;
  spec.drift_magnitude_conditional = 0.5;
  const data::CompiledScenario c = data::compile_scenario(spec);
  EXPECT_EQ(c.calibrated_hellinger, 0.0);
  // P(X) must not move: concepts 0 and 1 coincide.
  EXPECT_NEAR(data::gaussian_hellinger(data::scenario_concept(spec, 0),
                                       data::scenario_concept(spec, 1)),
              0.0, 1e-12);
}

TEST(ScenarioCompiler, EmpiricalDivergenceRisesAfterDrift) {
  ScenarioSpec spec = small_spec();
  spec.drift_magnitude_prior = 0.8;
  const data::CompiledScenario c = data::compile_scenario(spec);
  const data::DivergenceTrace& trace = c.divergence;
  ASSERT_EQ(trace.window, spec.divergence_window);
  ASSERT_EQ(trace.index.size(), spec.n_instances / spec.divergence_window);

  double pre_h = 0.0, post_h = 0.0, pre_w = 0.0, post_w = 0.0;
  std::size_t pre_n = 0, post_n = 0;
  for (std::size_t w = 0; w < trace.index.size(); ++w) {
    if (trace.index[w] <= spec.burn_in) {
      pre_h += trace.hellinger[w];
      pre_w += trace.wasserstein_mean[w];
      ++pre_n;
    } else if (trace.index[w] > spec.burn_in + trace.window) {
      post_h += trace.hellinger[w];
      post_w += trace.wasserstein_mean[w];
      ++post_n;
    }
  }
  ASSERT_GT(pre_n, 0u);
  ASSERT_GT(post_n, 0u);
  EXPECT_GT(post_h / static_cast<double>(post_n),
            2.0 * pre_h / static_cast<double>(pre_n));
  EXPECT_GT(post_w / static_cast<double>(post_n),
            2.0 * pre_w / static_cast<double>(pre_n));
}

// ------------------------------------------------------------ recurrence

TEST(ScenarioCompiler, RecurrentConceptScheduleAlternates) {
  ScenarioSpec spec = small_spec();
  spec.shape = data::DriftShape::kRecurrent;
  spec.num_drift_points = 2;
  const data::GaussianConcept c0 = data::scenario_concept(spec, 0);
  const data::GaussianConcept c2 = data::scenario_concept(spec, 2);
  for (std::size_t c = 0; c < spec.num_labels; ++c) {
    for (std::size_t j = 0; j < spec.num_features; ++j) {
      EXPECT_EQ(c0.cls(c).mean[j], c2.cls(c).mean[j]);
    }
  }
}

TEST(ScenarioCompiler, RecurrentStreamReturnsToConceptZeroStatistics) {
  ScenarioSpec spec = small_spec();
  spec.shape = data::DriftShape::kRecurrent;
  spec.num_drift_points = 2;
  spec.n_instances = 3000;
  spec.burn_in = 1000;  // Edges at 1000 and 2000: concepts 0 / 1 / 0.
  const data::CompiledScenario c = data::compile_scenario(spec);

  auto mean_over = [&](std::size_t begin, std::size_t end, std::size_t j) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += c.stream.x(i, j);
    return acc / static_cast<double>(end - begin);
  };
  for (std::size_t j = 0; j < spec.num_features; ++j) {
    const double first = mean_over(0, 1000, j);
    const double middle = mean_over(1000, 2000, j);
    const double last = mean_over(2000, 3000, j);
    EXPECT_NEAR(first, last, 0.12) << "dim " << j;
    // And the middle segment genuinely moved away.
    EXPECT_GT(std::abs(middle - first), 0.2) << "dim " << j;
  }
}

// ------------------------------------------------------------ determinism

TEST(ScenarioCompiler, SeededRegenerationIsBitIdentical) {
  ScenarioSpec spec = small_spec();
  spec.noise_level = 0.05;
  spec.drift_conditional = true;
  spec.drift_magnitude_conditional = 0.3;
  const data::CompiledScenario a = data::compile_scenario(spec);
  const data::CompiledScenario b = data::compile_scenario(spec);

  ASSERT_EQ(a.train.size(), b.train.size());
  ASSERT_EQ(a.stream.size(), b.stream.size());
  EXPECT_EQ(a.train.labels, b.train.labels);
  EXPECT_EQ(a.stream.labels, b.stream.labels);
  for (std::size_t i = 0; i < a.stream.size(); ++i) {
    for (std::size_t j = 0; j < a.stream.dim(); ++j) {
      ASSERT_EQ(a.stream.x(i, j), b.stream.x(i, j)) << i << "," << j;
    }
  }
  ASSERT_EQ(a.divergence.hellinger.size(), b.divergence.hellinger.size());
  for (std::size_t w = 0; w < a.divergence.hellinger.size(); ++w) {
    ASSERT_EQ(a.divergence.hellinger[w], b.divergence.hellinger[w]);
    ASSERT_EQ(a.divergence.wasserstein_mean[w],
              b.divergence.wasserstein_mean[w]);
  }
}

TEST(ScenarioCompiler, DifferentSeedsProduceDifferentStreams) {
  ScenarioSpec spec = small_spec();
  const data::CompiledScenario a = data::compile_scenario(spec);
  spec.seed += 1;
  const data::CompiledScenario b = data::compile_scenario(spec);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.stream.size() && !any_diff; ++i) {
    any_diff = a.stream.x(i, 0) != b.stream.x(i, 0);
  }
  EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------------ annotations

TEST(ScenarioCompiler, AnnotationsFollowTheSchedule) {
  ScenarioSpec spec = small_spec();
  spec.n_instances = 4000;
  spec.burn_in = 1000;
  spec.num_drift_points = 3;
  const data::CompiledScenario c = data::compile_scenario(spec);
  ASSERT_EQ(c.annotations.size(), 3u);
  EXPECT_EQ(c.annotations[0].start, 1000u);
  EXPECT_EQ(c.annotations[1].start, 2000u);
  EXPECT_EQ(c.annotations[2].start, 3000u);
  for (const data::DriftAnnotation& a : c.annotations) {
    EXPECT_EQ(a.end, a.start);  // Abrupt edges have no width.
    EXPECT_TRUE(a.prior);
    EXPECT_FALSE(a.conditional);
  }
  EXPECT_EQ(c.annotations[0].from_concept, 0u);
  EXPECT_EQ(c.annotations[0].to_concept, 1u);
  EXPECT_EQ(c.annotations[2].to_concept, 3u);
}

TEST(ScenarioCompiler, GradualAnnotationCarriesTheWidth) {
  ScenarioSpec spec = small_spec();
  spec.shape = data::DriftShape::kGradual;
  spec.drift_width = 300;
  const data::CompiledScenario c = data::compile_scenario(spec);
  ASSERT_EQ(c.annotations.size(), 1u);
  EXPECT_EQ(c.annotations[0].start, spec.burn_in);
  EXPECT_EQ(c.annotations[0].end, spec.burn_in + 300);
  EXPECT_EQ(c.annotations[0].shape, data::DriftShape::kGradual);
}

// ------------------------------------- conditional drift and label noise

TEST(ScenarioCompiler, ConditionalDriftRemapsLabelsNotFeatures) {
  ScenarioSpec spec = small_spec();
  spec.drift_priors = false;
  spec.drift_conditional = true;
  spec.drift_magnitude_prior = 0.0;
  spec.drift_magnitude_conditional = 0.8;
  const data::CompiledScenario c = data::compile_scenario(spec);

  auto remap_rate = [&](std::size_t begin, std::size_t end) {
    std::size_t remapped = 0;
    for (std::size_t i = begin; i < end; ++i) {
      remapped += c.stream.labels[i] != nearest_anchor_label(c.stream, i);
    }
    return static_cast<double>(remapped) / static_cast<double>(end - begin);
  };
  EXPECT_LT(remap_rate(0, spec.burn_in), 0.02);
  EXPECT_NEAR(remap_rate(spec.burn_in, spec.n_instances), 0.8, 0.05);

  // P(X) unchanged: per-feature means match across the drift point.
  for (std::size_t j = 0; j < spec.num_features; ++j) {
    double pre = 0.0, post = 0.0;
    for (std::size_t i = 0; i < spec.burn_in; ++i) pre += c.stream.x(i, j);
    for (std::size_t i = spec.burn_in; i < spec.n_instances; ++i) {
      post += c.stream.x(i, j);
    }
    pre /= static_cast<double>(spec.burn_in);
    post /= static_cast<double>(spec.n_instances - spec.burn_in);
    EXPECT_NEAR(pre, post, 0.15) << "dim " << j;
  }
}

TEST(ScenarioCompiler, LabelNoiseFlipsTheExpectedFraction) {
  ScenarioSpec spec = small_spec();
  spec.num_drift_points = 0;  // Pure concept 0 + noise.
  spec.noise_level = 0.1;
  const data::CompiledScenario c = data::compile_scenario(spec);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < spec.n_instances; ++i) {
    flipped += c.stream.labels[i] != nearest_anchor_label(c.stream, i);
  }
  EXPECT_NEAR(static_cast<double>(flipped) /
                  static_cast<double>(spec.n_instances),
              0.1, 0.03);
  // The training set stays clean.
  std::size_t train_flipped = 0;
  for (std::size_t i = 0; i < c.train.size(); ++i) {
    train_flipped += c.train.labels[i] != nearest_anchor_label(c.train, i);
  }
  EXPECT_LE(train_flipped, c.train.size() / 50);
}

// -------------------------------------------------------------- JSON I/O

void expect_specs_equal(const ScenarioSpec& a, const ScenarioSpec& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.num_features, b.num_features);
  EXPECT_EQ(a.num_labels, b.num_labels);
  EXPECT_EQ(a.class_separation, b.class_separation);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.train_size, b.train_size);
  EXPECT_EQ(a.n_instances, b.n_instances);
  EXPECT_EQ(a.burn_in, b.burn_in);
  EXPECT_EQ(a.shape, b.shape);
  EXPECT_EQ(a.curve, b.curve);
  EXPECT_EQ(a.drift_width, b.drift_width);
  EXPECT_EQ(a.num_drift_points, b.num_drift_points);
  EXPECT_EQ(a.drift_priors, b.drift_priors);
  EXPECT_EQ(a.drift_conditional, b.drift_conditional);
  EXPECT_EQ(a.drift_magnitude_prior, b.drift_magnitude_prior);
  EXPECT_EQ(a.drift_magnitude_conditional, b.drift_magnitude_conditional);
  EXPECT_EQ(a.noise_level, b.noise_level);
  EXPECT_EQ(a.divergence_window, b.divergence_window);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.traffic.pattern, b.traffic.pattern);
  EXPECT_EQ(a.traffic.mean_batch, b.traffic.mean_batch);
  EXPECT_EQ(a.traffic.streams, b.traffic.streams);
  EXPECT_EQ(a.traffic.churn, b.traffic.churn);
  EXPECT_EQ(a.traffic.burst_batch, b.traffic.burst_batch);
  EXPECT_EQ(a.traffic.idle_batch, b.traffic.idle_batch);
  EXPECT_EQ(a.traffic.pareto_alpha, b.traffic.pareto_alpha);
  EXPECT_EQ(a.traffic.mean_period, b.traffic.mean_period);
}

TEST(ScenarioCompiler, JsonRoundTripsEveryPreset) {
  for (const std::string_view name : data::scenario_preset_names()) {
    const auto preset = data::scenario_preset(name);
    ASSERT_TRUE(preset.has_value()) << name;
    std::string error;
    const auto parsed =
        data::parse_scenario_json(data::scenario_to_json(*preset), &error);
    ASSERT_TRUE(parsed.has_value()) << name << ": " << error;
    expect_specs_equal(*preset, *parsed);
  }
}

TEST(ScenarioCompiler, JsonRejectsUnknownKeys) {
  std::string error;
  EXPECT_FALSE(data::parse_scenario_json(R"({"n_instnaces": 100})", &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(data::parse_scenario_json(
      R"({"traffic": {"patern": "bursty"}})", &error));
  EXPECT_NE(error.find("unknown traffic key"), std::string::npos) << error;
}

TEST(ScenarioCompiler, JsonRejectsBadEnumsAndTrailingJunk) {
  std::string error;
  EXPECT_FALSE(data::parse_scenario_json(R"({"type": "sideways"})", &error));
  EXPECT_NE(error.find("unknown drift type"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(
      data::parse_scenario_json(R"({"seed": 1} trailing)", &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(data::parse_scenario_json("not json", &error));
  EXPECT_FALSE(error.empty());
}

TEST(ScenarioCompiler, JsonPartialObjectKeepsDefaults) {
  std::string error;
  const auto spec = data::parse_scenario_json(
      R"({"name": "mini", "n_instances": 1234, "type": "gradual"})", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->name, "mini");
  EXPECT_EQ(spec->n_instances, 1234u);
  EXPECT_EQ(spec->shape, data::DriftShape::kGradual);
  EXPECT_EQ(spec->num_features, ScenarioSpec{}.num_features);
  EXPECT_EQ(spec->seed, ScenarioSpec{}.seed);
}

TEST(ScenarioCompiler, PresetNamesAllResolve) {
  EXPECT_GE(data::scenario_preset_names().size(), 6u);
  for (const std::string_view name : data::scenario_preset_names()) {
    const auto spec = data::scenario_preset(name);
    ASSERT_TRUE(spec.has_value()) << name;
    EXPECT_EQ(spec->name, name);
  }
  EXPECT_FALSE(data::scenario_preset("no-such-preset").has_value());
  // The serving-layer preset routes through the manager.
  EXPECT_GT(data::scenario_preset("bursty-traffic")->traffic.streams, 1u);
}

// --------------------------------------------------------------- traffic

TEST(Traffic, ShaperIsDeterministic) {
  data::TrafficSpec spec;
  spec.pattern = data::ArrivalPattern::kBursty;
  spec.streams = 4;
  spec.churn = 0.1;
  data::TrafficShaper a(spec, 9);
  data::TrafficShaper b(spec, 9);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(a.next_batch(), b.next_batch());
    ASSERT_EQ(a.next_stream(), b.next_stream());
  }
}

TEST(Traffic, UniformPatternIsConstant) {
  data::TrafficSpec spec;
  spec.mean_batch = 4.0;
  data::TrafficShaper shaper(spec, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(shaper.next_batch(), 4u);
}

TEST(Traffic, PoissonBatchesMatchTheMean) {
  data::TrafficSpec spec;
  spec.pattern = data::ArrivalPattern::kPoisson;
  spec.mean_batch = 8.0;
  data::TrafficShaper shaper(spec, 2);
  double acc = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const std::size_t b = shaper.next_batch();
    ASSERT_GE(b, 1u);
    acc += static_cast<double>(b);
  }
  EXPECT_NEAR(acc / kDraws, 8.0, 0.4);
}

TEST(Traffic, BurstyAlternatesLoadLevels) {
  data::TrafficSpec spec;
  spec.pattern = data::ArrivalPattern::kBursty;
  spec.burst_batch = 32.0;
  spec.idle_batch = 1.0;
  spec.mean_period = 32.0;
  data::TrafficShaper shaper(spec, 3);
  std::size_t heavy = 0, light = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t b = shaper.next_batch();
    ASSERT_GE(b, 1u);
    if (b >= 16) {
      ++heavy;
    } else if (b <= 4) {
      ++light;
    }
  }
  // Both regimes must be well represented — the on/off switching works.
  EXPECT_GT(heavy, 2000u);
  EXPECT_GT(light, 2000u);
}

TEST(Traffic, RoundRobinWithoutChurn) {
  data::TrafficSpec spec;
  spec.streams = 3;
  data::TrafficShaper shaper(spec, 4);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(shaper.next_stream(), static_cast<std::size_t>(i % 3));
  }
}

TEST(Traffic, ChurnStillCoversAllStreams) {
  data::TrafficSpec spec;
  spec.streams = 8;
  spec.churn = 0.3;
  data::TrafficShaper shaper(spec, 5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 4000; ++i) {
    const std::size_t id = shaper.next_stream();
    ASSERT_LT(id, 8u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 8u);
}

}  // namespace
