// Tests for the supervised OS-ELM classifier (one-hot targets, argmax
// prediction).
#include <gtest/gtest.h>

#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/data/stream.hpp"
#include "edgedrift/oselm/classifier.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::data::Dataset;
using edgedrift::data::GaussianClass;
using edgedrift::data::GaussianConcept;
using edgedrift::oselm::Activation;
using edgedrift::oselm::Classifier;
using edgedrift::oselm::make_projection;
using edgedrift::util::Rng;

GaussianConcept three_class_concept() {
  GaussianClass a;
  a.mean = {0.0, 0.0, 0.0, 0.0};
  a.stddev = {0.25};
  GaussianClass b;
  b.mean = {2.0, 0.0, 2.0, 0.0};
  b.stddev = {0.25};
  GaussianClass c;
  c.mean = {0.0, 2.0, 0.0, 2.0};
  c.stddev = {0.25};
  return GaussianConcept({a, b, c});
}

double accuracy(const Classifier& clf, const Dataset& d) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (static_cast<int>(clf.predict(d.x.row(i))) == d.labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(d.size());
}

TEST(Classifier, LearnsThreeClassesBatch) {
  Rng rng(1);
  const auto concept3 = three_class_concept();
  const Dataset train = edgedrift::data::draw(concept3, 600, rng);
  const Dataset test = edgedrift::data::draw(concept3, 300, rng);

  auto proj = make_projection(4, 20, Activation::kSigmoid, rng);
  Classifier clf(proj, 3);
  clf.init_train(train.x, train.labels);
  EXPECT_GT(accuracy(clf, test), 0.97);
}

TEST(Classifier, PureSequentialTrainingConverges) {
  Rng rng(2);
  const auto concept3 = three_class_concept();
  const Dataset train = edgedrift::data::draw(concept3, 1200, rng);
  const Dataset test = edgedrift::data::draw(concept3, 300, rng);

  auto proj = make_projection(4, 20, Activation::kSigmoid, rng);
  Classifier clf(proj, 3);
  clf.init_sequential();
  for (std::size_t i = 0; i < train.size(); ++i) {
    clf.train(train.x.row(i), static_cast<std::size_t>(train.labels[i]));
  }
  EXPECT_GT(accuracy(clf, test), 0.95);
}

TEST(Classifier, SequentialMatchesBatchAccuracy) {
  Rng rng(3);
  const auto concept3 = three_class_concept();
  const Dataset train = edgedrift::data::draw(concept3, 800, rng);
  const Dataset test = edgedrift::data::draw(concept3, 400, rng);

  auto proj = make_projection(4, 20, Activation::kSigmoid, rng);
  Classifier batch(proj, 3);
  batch.init_train(train.x, train.labels);

  Classifier sequential(proj, 3);
  const Dataset head = train.slice(0, 400);
  sequential.init_train(head.x, head.labels);
  for (std::size_t i = 400; i < train.size(); ++i) {
    sequential.train(train.x.row(i),
                     static_cast<std::size_t>(train.labels[i]));
  }
  // Same OS-ELM equivalence as the regressor: predictions must agree.
  for (std::size_t i = 0; i < test.size(); ++i) {
    EXPECT_EQ(sequential.predict(test.x.row(i)),
              batch.predict(test.x.row(i)));
  }
}

TEST(Classifier, MarginIsNonNegativeAndLargerOffBoundary) {
  Rng rng(4);
  const auto concept3 = three_class_concept();
  const Dataset train = edgedrift::data::draw(concept3, 600, rng);
  auto proj = make_projection(4, 20, Activation::kSigmoid, rng);
  Classifier clf(proj, 3);
  clf.init_train(train.x, train.labels);

  const std::vector<double> center{0.0, 0.0, 0.0, 0.0};   // Class-0 anchor.
  const std::vector<double> boundary{1.0, 0.0, 1.0, 0.0}; // Between 0 and 1.
  EXPECT_GE(clf.margin(center), 0.0);
  EXPECT_GT(clf.margin(center), clf.margin(boundary));
}

TEST(Classifier, DecisionValuesMatchPrediction) {
  Rng rng(5);
  const auto concept3 = three_class_concept();
  const Dataset train = edgedrift::data::draw(concept3, 600, rng);
  auto proj = make_projection(4, 20, Activation::kSigmoid, rng);
  Classifier clf(proj, 3);
  clf.init_train(train.x, train.labels);

  std::vector<double> values(3);
  for (std::size_t i = 0; i < 50; ++i) {
    clf.decision_values(train.x.row(i), values);
    const auto argmax = static_cast<std::size_t>(
        std::max_element(values.begin(), values.end()) - values.begin());
    EXPECT_EQ(clf.predict(train.x.row(i)), argmax);
  }
}

TEST(Classifier, ForgettingVariantAdaptsToLabelFlip) {
  Rng rng(6);
  GaussianClass a;
  a.mean = {0.0, 0.0};
  a.stddev = {0.15};
  GaussianClass b;
  b.mean = {2.0, 2.0};
  b.stddev = {0.15};
  GaussianConcept concept2({a, b});

  auto proj = make_projection(2, 12, Activation::kSigmoid, rng);
  Classifier forgetting(proj, 2, 1e-2, 0.95);
  forgetting.init_sequential();

  // Phase 1: normal labels, many samples.
  Dataset phase1 = edgedrift::data::draw(concept2, 800, rng);
  for (std::size_t i = 0; i < phase1.size(); ++i) {
    forgetting.train(phase1.x.row(i),
                     static_cast<std::size_t>(phase1.labels[i]));
  }
  // Phase 2: labels flip (concept drift in the label function).
  Dataset phase2 = edgedrift::data::draw(concept2, 150, rng);
  for (std::size_t i = 0; i < phase2.size(); ++i) {
    forgetting.train(phase2.x.row(i),
                     static_cast<std::size_t>(1 - phase2.labels[i]));
  }
  // The forgetting classifier must now follow the flipped labeling.
  Dataset probe = edgedrift::data::draw(concept2, 200, rng);
  std::size_t flipped_hits = 0;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    if (static_cast<int>(forgetting.predict(probe.x.row(i))) ==
        1 - probe.labels[i]) {
      ++flipped_hits;
    }
  }
  EXPECT_GT(static_cast<double>(flipped_hits) / probe.size(), 0.9);
}

TEST(Classifier, RejectsSingleLabel) {
  Rng rng(7);
  auto proj = make_projection(4, 8, Activation::kSigmoid, rng);
  EXPECT_DEATH(Classifier(proj, 1), "at least two labels");
}

}  // namespace
