// Unit and property tests for the linear-algebra substrate: matrix basics,
// GEMM kernels, factorizations, and the incremental inverse updates that
// OS-ELM's sequential training rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/linalg/solve.hpp"
#include "edgedrift/linalg/updates.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::linalg::Matrix;
using edgedrift::util::Rng;
namespace linalg = edgedrift::linalg;

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix a = Matrix::random_gaussian(n, n, rng);
  Matrix spd = linalg::matmul_at_b(a, a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  return spd;
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(1);
  const Matrix m = Matrix::random_gaussian(4, 7, rng);
  const Matrix mtt = m.transposed().transposed();
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(m, mtt), 0.0);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, IdentityActsAsNeutral) {
  Rng rng(2);
  const Matrix m = Matrix::random_gaussian(5, 5, rng);
  const Matrix i = Matrix::identity(5);
  EXPECT_LT(Matrix::max_abs_diff(linalg::matmul(m, i), m), 1e-12);
  EXPECT_LT(Matrix::max_abs_diff(linalg::matmul(i, m), m), 1e-12);
}

TEST(Matrix, SetRowAndRowView) {
  Matrix m(2, 3);
  const std::vector<double> row{7, 8, 9};
  m.set_row(1, row);
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
  auto view = m.row(1);
  view[2] = 11.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 11.0);
}

TEST(Gemm, MatchesManualSmallCase) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{7, 8}, {9, 10}, {11, 12}};
  const Matrix c = linalg::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Gemm, AtBMatchesExplicitTranspose) {
  Rng rng(3);
  const Matrix a = Matrix::random_gaussian(17, 5, rng);
  const Matrix b = Matrix::random_gaussian(17, 9, rng);
  const Matrix expected = linalg::matmul(a.transposed(), b);
  EXPECT_LT(Matrix::max_abs_diff(linalg::matmul_at_b(a, b), expected), 1e-10);
}

TEST(Gemm, ABtMatchesExplicitTranspose) {
  Rng rng(4);
  const Matrix a = Matrix::random_gaussian(6, 11, rng);
  const Matrix b = Matrix::random_gaussian(8, 11, rng);
  const Matrix expected = linalg::matmul(a, b.transposed());
  EXPECT_LT(Matrix::max_abs_diff(linalg::matmul_a_bt(a, b), expected), 1e-10);
}

TEST(Gemm, ParallelMatchesSerial) {
  Rng rng(5);
  const Matrix a = Matrix::random_gaussian(150, 90, rng);
  const Matrix b = Matrix::random_gaussian(90, 120, rng);
  EXPECT_LT(Matrix::max_abs_diff(linalg::matmul_parallel(a, b),
                                 linalg::matmul(a, b)),
            1e-10);
}

TEST(Gemm, MatvecAndTransposedMatvec) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  std::vector<double> x{1, 1};
  std::vector<double> y(3);
  linalg::matvec(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 11.0);

  std::vector<double> z{1, 0, 1};
  std::vector<double> w(2);
  linalg::matvec_transposed(a, z, w);
  EXPECT_DOUBLE_EQ(w[0], 6.0);
  EXPECT_DOUBLE_EQ(w[1], 8.0);
}

TEST(Gemm, GerRankOneUpdate) {
  Matrix a(2, 2);
  std::vector<double> u{1, 2};
  std::vector<double> v{3, 4};
  linalg::ger(a, 0.5, u, v);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
}

TEST(Solve, LuSolveRecoversKnownSolution) {
  Matrix a{{4, 3}, {6, 3}};
  std::vector<double> x_true{1, 2};
  std::vector<double> b(2);
  linalg::matvec(a, x_true, b);
  const auto f = linalg::lu_factor(a);
  ASSERT_TRUE(f.has_value());
  std::vector<double> x(2);
  linalg::lu_solve(*f, b, x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, LuDetectsSingularMatrix) {
  Matrix singular{{1, 2}, {2, 4}};
  EXPECT_FALSE(linalg::lu_factor(singular).has_value());
}

TEST(Solve, InverseTimesOriginalIsIdentity) {
  Rng rng(6);
  const Matrix a = random_spd(8, rng);
  const auto inv = linalg::inverse(a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_LT(Matrix::max_abs_diff(linalg::matmul(a, *inv),
                                 Matrix::identity(8)),
            1e-9);
}

TEST(Solve, CholeskyReconstructsSpdMatrix) {
  Rng rng(7);
  const Matrix a = random_spd(6, rng);
  const auto l = linalg::cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_LT(Matrix::max_abs_diff(linalg::matmul_a_bt(*l, *l), a), 1e-9);
}

TEST(Solve, CholeskyRejectsIndefiniteMatrix) {
  Matrix indefinite{{1, 2}, {2, 1}};  // Eigenvalues 3 and -1.
  EXPECT_FALSE(linalg::cholesky(indefinite).has_value());
}

TEST(Solve, SpdInverseMatchesLuInverse) {
  Rng rng(8);
  const Matrix a = random_spd(7, rng);
  const auto spd_inv = linalg::spd_inverse(a);
  const auto lu_inv = linalg::inverse(a);
  ASSERT_TRUE(spd_inv.has_value());
  ASSERT_TRUE(lu_inv.has_value());
  EXPECT_LT(Matrix::max_abs_diff(*spd_inv, *lu_inv), 1e-8);
}

TEST(Solve, RegularizedPinvSolvesLeastSquares) {
  // Overdetermined consistent system: pinv must recover the solution as
  // lambda -> 0.
  Rng rng(9);
  const Matrix a = Matrix::random_gaussian(20, 4, rng);
  const Matrix x_true = Matrix::random_gaussian(4, 2, rng);
  const Matrix b = linalg::matmul(a, x_true);
  const Matrix x = linalg::matmul(linalg::regularized_pinv(a, 1e-10), b);
  EXPECT_LT(Matrix::max_abs_diff(x, x_true), 1e-5);
}

TEST(Solve, RidgeLeastSquaresMatchesPinvPath) {
  Rng rng(10);
  const Matrix a = Matrix::random_gaussian(15, 5, rng);
  const Matrix b = Matrix::random_gaussian(15, 3, rng);
  const double lambda = 0.1;
  const Matrix via_pinv =
      linalg::matmul(linalg::regularized_pinv(a, lambda), b);
  const Matrix direct = linalg::ridge_least_squares(a, b, lambda);
  EXPECT_LT(Matrix::max_abs_diff(via_pinv, direct), 1e-9);
}

TEST(Updates, ShermanMorrisonMatchesDirectInverse) {
  Rng rng(11);
  const Matrix a = random_spd(6, rng);
  Matrix p = *linalg::inverse(a);
  std::vector<double> u(6), v(6);
  for (auto& e : u) e = rng.gaussian();
  for (auto& e : v) e = rng.gaussian();

  ASSERT_TRUE(linalg::sherman_morrison_update(p, u, v));

  Matrix updated = a;
  linalg::ger(updated, 1.0, u, v);
  const auto direct = linalg::inverse(updated);
  ASSERT_TRUE(direct.has_value());
  EXPECT_LT(Matrix::max_abs_diff(p, *direct), 1e-8);
}

TEST(Updates, ShermanMorrisonRefusesSingularUpdate) {
  // A - a a^T / (a^T a) * (a^T a) makes denominator zero when v^T P u = -1.
  Matrix p = Matrix::identity(2);
  std::vector<double> u{1.0, 0.0};
  std::vector<double> v{-1.0, 0.0};  // 1 + v^T P u = 0.
  Matrix before = p;
  EXPECT_FALSE(linalg::sherman_morrison_update(p, u, v));
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(p, before), 0.0);
}

TEST(Updates, OselmPUpdateMatchesGramAccumulation) {
  // P_k = (H_k^T H_k + lambda I)^-1 must hold after sequential updates.
  Rng rng(12);
  const std::size_t h_dim = 5;
  const double lambda = 0.5;
  Matrix p(h_dim, h_dim);
  for (std::size_t i = 0; i < h_dim; ++i) p(i, i) = 1.0 / lambda;

  Matrix gram(h_dim, h_dim);
  for (std::size_t i = 0; i < h_dim; ++i) gram(i, i) = lambda;

  std::vector<double> scratch(h_dim);
  for (int step = 0; step < 40; ++step) {
    std::vector<double> h(h_dim);
    for (auto& e : h) e = rng.gaussian();
    linalg::oselm_p_update(p, h, 1.0, scratch);
    linalg::ger(gram, 1.0, h, h);
  }
  const auto direct = linalg::inverse(gram);
  ASSERT_TRUE(direct.has_value());
  EXPECT_LT(Matrix::max_abs_diff(p, *direct), 1e-7);
}

TEST(Updates, OselmPUpdateWithForgettingDiscountsGram) {
  // With forgetting alpha: P_k^-1 = alpha * P_{k-1}^-1 + h h^T.
  Rng rng(13);
  const std::size_t h_dim = 4;
  const double alpha = 0.9;
  Matrix p = Matrix::identity(h_dim);
  Matrix inv_p = Matrix::identity(h_dim);  // Tracks P^-1 directly.

  std::vector<double> scratch(h_dim);
  for (int step = 0; step < 25; ++step) {
    std::vector<double> h(h_dim);
    for (auto& e : h) e = rng.gaussian();
    linalg::oselm_p_update(p, h, alpha, scratch);
    inv_p *= alpha;
    linalg::ger(inv_p, 1.0, h, h);
  }
  const auto direct = linalg::inverse(inv_p);
  ASSERT_TRUE(direct.has_value());
  EXPECT_LT(Matrix::max_abs_diff(p, *direct), 1e-7);
}

TEST(Updates, WoodburyMatchesDirectInverse) {
  Rng rng(14);
  const std::size_t n = 7;
  const std::size_t k = 3;
  const Matrix a = random_spd(n, rng);
  Matrix p = *linalg::inverse(a);
  const Matrix u = Matrix::random_gaussian(n, k, rng, 0.4);
  const Matrix v = Matrix::random_gaussian(n, k, rng, 0.4);

  ASSERT_TRUE(linalg::woodbury_update(p, u, v));

  const Matrix updated = a + linalg::matmul_a_bt(u, v);
  const auto direct = linalg::inverse(updated);
  ASSERT_TRUE(direct.has_value());
  EXPECT_LT(Matrix::max_abs_diff(p, *direct), 1e-7);
}

TEST(VectorOps, DistancesAndNorms) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{4, 6, 3};
  EXPECT_DOUBLE_EQ(linalg::l1_distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(linalg::squared_l2_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(linalg::l2_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(linalg::norm1(a), 6.0);
  EXPECT_DOUBLE_EQ(linalg::norm2(std::vector<double>{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(linalg::dot(a, b), 25.0);
}

TEST(VectorOps, RunningMeanUpdateSequence) {
  std::vector<double> mean{0.0};
  const std::vector<double> samples{2.0, 4.0, 6.0};
  for (std::size_t i = 0; i < samples.size(); ++i) {
    std::vector<double> x{samples[i]};
    linalg::running_mean_update(mean, x, i);
  }
  EXPECT_DOUBLE_EQ(mean[0], 4.0);
}

TEST(VectorOps, EwmaUpdateConvergesToConstant) {
  std::vector<double> mean{0.0};
  const std::vector<double> x{10.0};
  for (int i = 0; i < 200; ++i) linalg::ewma_update(mean, x, 0.9);
  EXPECT_NEAR(mean[0], 10.0, 1e-6);
}

TEST(VectorOps, MeanAndStddev) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(linalg::mean(v), 5.0);
  EXPECT_DOUBLE_EQ(linalg::stddev_population(v), 2.0);
}

TEST(VectorOps, EmptyInputsAreSafe) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(linalg::mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(linalg::stddev_population(empty), 0.0);
}

}  // namespace
