// Serving-layer ingestion semantics (core::PipelineManager ring buffers):
// per-stream FIFO and step-for-step equality against a sequential Pipeline
// reference under chunked drain, ring-wrap tails, backpressure kBlock vs
// kReject, manual dispatch (submit-then-poll), multi-producer submission
// into distinct streams, telemetry accounting, and the typed SubmitStatus
// errors on malformed requests (unknown id, partial label span, bad width).
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::core::BackpressurePolicy;
using edgedrift::core::DispatchMode;
using edgedrift::core::DrainMode;
using edgedrift::core::ManagerOptions;
using edgedrift::core::Pipeline;
using edgedrift::core::PipelineConfig;
using edgedrift::core::PipelineManager;
using edgedrift::core::PipelineStep;
using edgedrift::core::StreamTelemetry;
using edgedrift::core::SubmitStatus;
using edgedrift::data::Dataset;
using edgedrift::data::GaussianClass;
using edgedrift::data::GaussianConcept;
using edgedrift::util::Rng;

GaussianConcept pre_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  a.stddev = {0.15};
  GaussianClass b;
  b.mean.assign(8, 1.2);
  b.stddev = {0.15};
  return GaussianConcept({a, b});
}

GaussianConcept post_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  for (std::size_t j = 0; j < 8; j += 2) a.mean[j] += 0.9;
  a.stddev = {0.2};
  GaussianClass b;
  b.mean.assign(8, 0.55);
  for (std::size_t j = 0; j < 8; j += 2) b.mean[j] += 0.9;
  b.stddev = {0.2};
  return GaussianConcept({a, b});
}

PipelineConfig make_config() {
  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = 8;
  config.hidden_dim = 12;
  config.window_size = 40;
  config.detector_initial_count = 0;
  config.reconstruction.n_search = 20;
  config.reconstruction.n_update = 100;
  config.reconstruction.n_total = 400;
  config.seed = 7;
  return config;
}

struct StreamData {
  Dataset train;
  Dataset test;
};

std::vector<StreamData> make_streams(std::size_t n, std::size_t samples = 1500) {
  std::vector<StreamData> streams;
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(100 + i);
    StreamData s;
    s.train = edgedrift::data::draw(pre_concept(), 600, rng);
    s.test = edgedrift::data::make_sudden_drift(pre_concept(), post_concept(),
                                                samples, samples / 2, rng);
    streams.push_back(std::move(s));
  }
  return streams;
}

std::vector<PipelineStep> sequential_reference(const PipelineConfig& config,
                                               const StreamData& data) {
  Pipeline reference(config);
  reference.fit(data.train.x, data.train.labels);
  std::vector<PipelineStep> steps;
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    steps.push_back(reference.process(data.test.x.row(i)));
  }
  return steps;
}

void expect_steps_equal(const std::vector<PipelineStep>& actual,
                        const std::vector<PipelineStep>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    EXPECT_EQ(actual[i].prediction.label, expected[i].prediction.label);
    EXPECT_EQ(actual[i].prediction.score, expected[i].prediction.score);
    EXPECT_EQ(actual[i].drift_detected, expected[i].drift_detected);
    EXPECT_EQ(actual[i].reconstructing, expected[i].reconstructing);
    EXPECT_EQ(actual[i].reconstruction_finished,
              expected[i].reconstruction_finished);
  }
}

// A tiny, odd ring capacity with a drain chunk that never divides it: every
// few bursts the drain hits the ring-wrap boundary, so the wrap-tail path
// (contiguous [pos, capacity) segment, then the wrapped remainder from slot
// 0) is exercised constantly. The steps must still be bit-identical to the
// sequential reference.
TEST(Ingestion, ChunkedDrainWithRingWrapsMatchesSequential) {
  const auto data = make_streams(1);
  ManagerOptions options;
  options.queue_capacity = 7;
  options.drain_batch_max = 3;
  options.backpressure = BackpressurePolicy::kBlock;

  PipelineManager manager(make_config(), 1, options);
  manager.fit(0, data[0].train.x, data[0].train.labels);
  const auto expected = sequential_reference(manager.stream(0).config(),
                                             data[0]);

  for (std::size_t i = 0; i < data[0].test.size(); ++i) {
    EXPECT_TRUE(manager.submit(0, data[0].test.x.row(i)));
  }
  manager.drain();
  expect_steps_equal(manager.take_steps(0), expected);

  const StreamTelemetry& t = manager.telemetry(0);
  EXPECT_EQ(t.submitted, data[0].test.size());
  EXPECT_EQ(t.processed, data[0].test.size());
  EXPECT_EQ(t.rejected, 0u);
  EXPECT_LE(t.queue_high_water, options.queue_capacity);
}

// submit_batch publishes whole blocks under one reservation; the steps must
// match both the per-sample submit path and the sequential reference, even
// when the block is far larger than the ring.
TEST(Ingestion, SubmitBatchBlocksUntilDrainedAndMatchesSequential) {
  const auto data = make_streams(1);
  ManagerOptions options;
  options.queue_capacity = 32;
  options.drain_batch_max = 16;
  options.backpressure = BackpressurePolicy::kBlock;

  PipelineManager manager(make_config(), 1, options);
  manager.fit(0, data[0].train.x, data[0].train.labels);
  const auto expected = sequential_reference(manager.stream(0).config(),
                                             data[0]);

  const std::size_t accepted =
      manager.submit_batch(0, data[0].test.x, data[0].test.labels);
  EXPECT_EQ(accepted, data[0].test.size());
  manager.drain();
  expect_steps_equal(manager.take_steps(0), expected);
  // The block dwarfs the 32-slot ring, so the producer must have waited at
  // least once for the consumer to free slots.
  EXPECT_GE(manager.telemetry(0).blocked, 1u);
}

// kReject must drop loudly-counted samples instead of blocking: with no
// consumer (manual dispatch, never polled), exactly queue_capacity samples
// fit and the rest are rejected.
TEST(Ingestion, RejectPolicyCountsDropsInsteadOfBlocking) {
  const auto data = make_streams(1);
  ManagerOptions options;
  options.queue_capacity = 16;
  options.backpressure = BackpressurePolicy::kReject;
  options.dispatch = DispatchMode::kManual;

  PipelineManager manager(make_config(), 1, options);
  manager.fit(0, data[0].train.x, data[0].train.labels);

  std::size_t accepted = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    if (manager.submit(0, data[0].test.x.row(i))) ++accepted;
  }
  EXPECT_EQ(accepted, options.queue_capacity);
  EXPECT_EQ(manager.telemetry(0).rejected, 50 - options.queue_capacity);

  // Batch submit on the full ring rejects every row.
  EXPECT_EQ(manager.submit_batch(0, data[0].test.x), 0u);
  EXPECT_EQ(manager.telemetry(0).rejected,
            50 - options.queue_capacity + data[0].test.size());

  // Draining frees the ring; the accepted samples come out in FIFO order.
  manager.drain();
  EXPECT_EQ(manager.telemetry(0).processed, accepted);
  EXPECT_EQ(manager.take_steps(0).size(), accepted);
  EXPECT_TRUE(manager.submit(0, data[0].test.x.row(0)));
}

// Manual dispatch: submit only enqueues; poll() drains on the calling
// thread. The single-threaded submit -> poll -> take_steps loop must match
// the sequential reference exactly.
TEST(Ingestion, ManualDispatchPollMatchesSequential) {
  const auto data = make_streams(1, 800);
  ManagerOptions options;
  options.queue_capacity = 32;
  options.drain_batch_max = 16;
  options.dispatch = DispatchMode::kManual;

  PipelineManager manager(make_config(), 1, options);
  manager.fit(0, data[0].train.x, data[0].train.labels);
  const auto expected = sequential_reference(manager.stream(0).config(),
                                             data[0]);

  std::vector<PipelineStep> steps;
  steps.reserve(data[0].test.size());
  std::size_t i = 0;
  while (i < data[0].test.size()) {
    const std::size_t burst = std::min<std::size_t>(48, data[0].test.size() - i);
    for (std::size_t r = 0; r < burst; ++r) {
      // 48 > the 32-slot capacity with kBlock: the submitting thread
      // drains inline instead of deadlocking (there is no other consumer).
      EXPECT_TRUE(manager.submit(0, data[0].test.x.row(i + r)));
    }
    manager.poll(0);
    manager.take_steps(0, steps);
    i += burst;
  }
  manager.drain();
  manager.take_steps(0, steps);
  expect_steps_equal(steps, expected);
  EXPECT_EQ(manager.telemetry(0).processed, data[0].test.size());
}

// The retained sample-wise drain baseline must produce the identical step
// stream — it is the same pipeline at a different drain granularity.
TEST(Ingestion, SampleDrainModeMatchesBatchDrainMode) {
  const auto data = make_streams(1, 800);
  ManagerOptions batch_options;
  batch_options.drain = DrainMode::kBatch;
  ManagerOptions sample_options;
  sample_options.drain = DrainMode::kSample;

  std::vector<std::vector<PipelineStep>> steps;
  for (const ManagerOptions& options : {batch_options, sample_options}) {
    PipelineManager manager(make_config(), 1, options);
    manager.fit(0, data[0].train.x, data[0].train.labels);
    manager.submit_batch(0, data[0].test.x);
    manager.drain();
    steps.push_back(manager.take_steps(0));
  }
  expect_steps_equal(steps[1], steps[0]);
}

// Several producer threads, each feeding its own stream through batch
// submits against a small ring: per-stream FIFO and bit-identity must hold
// for every stream.
TEST(Ingestion, MultiProducerDistinctStreamsStayIndependent) {
  constexpr std::size_t kStreams = 4;
  const auto data = make_streams(kStreams, 900);
  ManagerOptions options;
  options.queue_capacity = 48;
  options.drain_batch_max = 16;

  PipelineManager manager(make_config(), kStreams, options);
  std::vector<std::vector<PipelineStep>> expected(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    manager.fit(s, data[s].train.x, data[s].train.labels);
    expected[s] =
        sequential_reference(manager.stream(s).config(), data[s]);
  }

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kStreams; ++s) {
    producers.emplace_back([&, s] {
      // Mix batch and single-sample submits from the same producer.
      const std::size_t half = data[s].test.size() / 2;
      for (std::size_t i = 0; i < half; ++i) {
        manager.submit(s, data[s].test.x.row(i));
      }
      edgedrift::linalg::Matrix rest(data[s].test.size() - half, 8);
      for (std::size_t i = half; i < data[s].test.size(); ++i) {
        rest.set_row(i - half, data[s].test.x.row(i));
      }
      manager.submit_batch(s, rest);
    });
  }
  for (auto& t : producers) t.join();
  manager.drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    SCOPED_TRACE("stream " + std::to_string(s));
    expect_steps_equal(manager.take_steps(s), expected[s]);
    EXPECT_EQ(manager.telemetry(s).processed, data[s].test.size());
    EXPECT_EQ(manager.telemetry(s).rejected, 0u);
  }
}

// Telemetry invariants after a drained run: the burst histogram accounts
// for every burst, processed == submitted, and the busy clock ran.
TEST(Ingestion, TelemetryAccountsForEveryBurst) {
  const auto data = make_streams(1, 800);
  ManagerOptions options;
  options.queue_capacity = 64;
  options.drain_batch_max = 32;

  PipelineManager manager(make_config(), 1, options);
  manager.fit(0, data[0].train.x, data[0].train.labels);
  manager.submit_batch(0, data[0].test.x);
  manager.drain();

  const StreamTelemetry& t = manager.telemetry(0);
  EXPECT_EQ(t.submitted, data[0].test.size());
  EXPECT_EQ(t.processed, data[0].test.size());
  EXPECT_GE(t.drain_bursts, 1u);
  EXPECT_GE(t.queue_high_water, 1u);
  EXPECT_LE(t.queue_high_water, options.queue_capacity);
  EXPECT_GT(t.busy_ns, 0u);
  EXPECT_GT(t.samples_per_second(), 0.0);
  const std::size_t hist_total =
      std::accumulate(t.drain_burst_hist.begin(), t.drain_burst_hist.end(),
                      std::size_t{0});
  EXPECT_EQ(hist_total, t.drain_bursts);
  // No burst can exceed drain_batch_max = 32 -> buckets above 2^5 stay 0.
  for (std::size_t b = 6; b < t.drain_burst_hist.size(); ++b) {
    EXPECT_EQ(t.drain_burst_hist[b], 0u) << "bucket " << b;
  }
}

// The GEMM batch path must actually serve the drain: after a batched run
// the pipeline's batch telemetry shows pre-scored chunks.
TEST(Ingestion, BatchDrainRoutesThroughProcessBatch) {
  const auto data = make_streams(1, 800);
  PipelineManager manager(make_config(), 1);
  manager.fit(0, data[0].train.x, data[0].train.labels);
  manager.submit_batch(0, data[0].test.x);
  manager.drain();
  EXPECT_GE(manager.stats(0).batch_chunks, 1u);
  EXPECT_GE(manager.stats(0).batch_rows, 1u);
  EXPECT_LE(manager.stats(0).batch_rows, manager.stats(0).samples);
  EXPECT_EQ(manager.totals().batch_rows, manager.stats(0).batch_rows);
}

// Malformed submissions must fail with a typed status instead of asserting:
// a serving layer fed by untrusted ids cannot crash the process on a bad
// request. A partial true_labels span in particular would silently pair
// rows with the wrong labels and corrupt the supervised error stream.
TEST(Ingestion, SubmitReturnsTypedErrorsInsteadOfAsserting) {
  const auto data = make_streams(1, 100);
  PipelineManager manager(make_config(), 1);
  manager.fit(0, data[0].train.x, data[0].train.labels);

  SubmitStatus status = SubmitStatus::kOk;

  // Unknown stream id: both entry points refuse and name the cause.
  EXPECT_FALSE(manager.submit(99, data[0].test.x.row(0), -1, &status));
  EXPECT_EQ(status, SubmitStatus::kUnknownStream);
  EXPECT_EQ(manager.submit_batch(99, data[0].test.x, {}, &status), 0u);
  EXPECT_EQ(status, SubmitStatus::kUnknownStream);

  // Partial / excess label spans: all-or-nothing.
  std::vector<int> partial(data[0].test.size() - 1, 0);
  EXPECT_EQ(manager.submit_batch(0, data[0].test.x, partial, &status), 0u);
  EXPECT_EQ(status, SubmitStatus::kBadLabelSpan);
  std::vector<int> excess(data[0].test.size() + 1, 0);
  EXPECT_EQ(manager.submit_batch(0, data[0].test.x, excess, &status), 0u);
  EXPECT_EQ(status, SubmitStatus::kBadLabelSpan);

  // Row width that does not match the configured input_dim.
  const std::vector<double> narrow(4, 0.0);
  EXPECT_FALSE(manager.submit(0, narrow, -1, &status));
  EXPECT_EQ(status, SubmitStatus::kDimensionMismatch);
  edgedrift::linalg::Matrix wide(2, 16);
  EXPECT_EQ(manager.submit_batch(0, wide, {}, &status), 0u);
  EXPECT_EQ(status, SubmitStatus::kDimensionMismatch);

  // None of the failures disturbed the stream: a good submit still lands.
  EXPECT_TRUE(manager.submit(0, data[0].test.x.row(0), -1, &status));
  EXPECT_EQ(status, SubmitStatus::kOk);
  manager.drain();
  EXPECT_EQ(manager.telemetry(0).processed, 1u);
}

}  // namespace
