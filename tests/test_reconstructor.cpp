// Tests for the streaming model reconstruction (Algorithms 2-4).
#include <gtest/gtest.h>

#include "edgedrift/drift/reconstructor.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::drift::Reconstructor;
using edgedrift::drift::ReconstructorConfig;
using edgedrift::drift::ReconstructionPhase;
using edgedrift::linalg::Matrix;
using edgedrift::model::MultiInstanceModel;
using edgedrift::oselm::Activation;
using edgedrift::oselm::make_projection;
using edgedrift::util::Rng;

ReconstructorConfig small_config() {
  ReconstructorConfig config;
  config.n_search = 10;
  config.n_update = 60;
  config.n_total = 200;
  return config;
}

MultiInstanceModel make_model(Rng& rng, std::size_t dim = 4) {
  auto proj = make_projection(dim, 10, Activation::kSigmoid, rng);
  return MultiInstanceModel(2, proj, 1e-2);
}

// Stream alternating between two new-concept clusters at (5,...) and
// (9,...).
std::vector<double> cluster_sample(Rng& rng, int which, std::size_t dim) {
  std::vector<double> x(dim);
  const double anchor = which == 0 ? 5.0 : 9.0;
  for (auto& v : x) v = rng.gaussian(anchor, 0.15);
  return x;
}

TEST(Reconstructor, PhaseScheduleFollowsAlgorithmTwo) {
  Rng rng(1);
  auto model = make_model(rng);
  Reconstructor recon(small_config(), 2, 4);
  recon.begin(model, Matrix(2, 4));

  // Counts after increment: 1..9 -> search, 10..59 -> update,
  // 60..99 -> train-nearest, 100..199 -> train-predict, 200 -> done.
  std::vector<ReconstructionPhase> seen;
  for (int i = 1; i < 200; ++i) {
    const bool running = recon.step(cluster_sample(rng, i % 2, 4), model);
    ASSERT_TRUE(running) << "ended early at " << i;
    seen.push_back(recon.phase());
  }
  EXPECT_EQ(seen[0], ReconstructionPhase::kSearchCoords);
  EXPECT_EQ(seen[8], ReconstructionPhase::kSearchCoords);
  EXPECT_EQ(seen[9], ReconstructionPhase::kUpdateCoords);
  EXPECT_EQ(seen[58], ReconstructionPhase::kUpdateCoords);
  EXPECT_EQ(seen[59], ReconstructionPhase::kTrainNearest);
  EXPECT_EQ(seen[98], ReconstructionPhase::kTrainNearest);
  EXPECT_EQ(seen[99], ReconstructionPhase::kTrainPredict);
  EXPECT_EQ(seen[197], ReconstructionPhase::kTrainPredict);

  // The 200th step completes the reconstruction.
  EXPECT_FALSE(recon.step(cluster_sample(rng, 0, 4), model));
  EXPECT_FALSE(recon.active());
}

TEST(Reconstructor, CoordinatesConvergeToNewClusters) {
  Rng rng(2);
  auto model = make_model(rng);
  Reconstructor recon(small_config(), 2, 4);
  // Seeds sit between the new clusters, as the recent test centroids would
  // after a detected drift (Algorithm 3 assumes coordinates near the data:
  // it maximizes pairwise spread, so a far-away seed would never be
  // displaced).
  recon.begin(model, Matrix(2, 4, 6.0));

  int i = 0;
  while (recon.step(cluster_sample(rng, i++ % 2, 4), model)) {
  }

  // The two coordinates must sit near (5,..) and (9,..) in some order.
  const auto& coords = recon.coords();
  const double c00 = coords.centroid(0)[0];
  const double c10 = coords.centroid(1)[0];
  const double lo = std::min(c00, c10);
  const double hi = std::max(c00, c10);
  EXPECT_NEAR(lo, 5.0, 0.5);
  EXPECT_NEAR(hi, 9.0, 0.5);
}

TEST(Reconstructor, ModelLearnsNewConceptDuringReconstruction) {
  Rng rng(3);
  auto model = make_model(rng);
  Reconstructor recon(small_config(), 2, 4);
  recon.begin(model, Matrix(2, 4, 6.0));

  int i = 0;
  while (recon.step(cluster_sample(rng, i++ % 2, 4), model)) {
  }

  // After reconstruction the model must separate the two new clusters.
  int agree = 0;
  const int trials = 100;
  std::vector<int> label_of_cluster(2, -1);
  // Determine the cluster -> label mapping by majority, then check
  // consistency.
  for (int c = 0; c < 2; ++c) {
    int votes[2] = {0, 0};
    for (int t = 0; t < trials; ++t) {
      const auto pred = model.predict(cluster_sample(rng, c, 4));
      ++votes[pred.label];
    }
    label_of_cluster[c] = votes[1] > votes[0] ? 1 : 0;
    agree += std::max(votes[0], votes[1]);
  }
  // Distinct labels for distinct clusters, high self-consistency.
  EXPECT_NE(label_of_cluster[0], label_of_cluster[1]);
  EXPECT_GT(agree, 2 * trials * 9 / 10);
}

TEST(Reconstructor, SuggestedThetaDriftIsPositive) {
  Rng rng(4);
  auto model = make_model(rng);
  Reconstructor recon(small_config(), 2, 4);
  recon.begin(model, Matrix(2, 4));
  int i = 0;
  while (recon.step(cluster_sample(rng, i++ % 2, 4), model)) {
  }
  EXPECT_GT(recon.suggested_theta_drift(1.0), 0.0);
  // z = 2 threshold must not be below the z = 1 threshold.
  EXPECT_GE(recon.suggested_theta_drift(2.0),
            recon.suggested_theta_drift(1.0));
}

TEST(Reconstructor, BeginResetsModelAndState) {
  Rng rng(5);
  auto model = make_model(rng);
  Matrix train(40, 4);
  std::vector<int> labels(40);
  for (std::size_t r = 0; r < 40; ++r) {
    labels[r] = static_cast<int>(r % 2);
    for (std::size_t j = 0; j < 4; ++j) {
      train(r, j) = rng.gaussian(labels[r] == 0 ? 0.0 : 3.0, 0.2);
    }
  }
  model.init_train(train, labels);
  EXPECT_GT(model.instance(0).samples_seen(), 0u);

  Reconstructor recon(small_config(), 2, 4);
  recon.begin(model, Matrix(2, 4));
  EXPECT_TRUE(recon.active());
  EXPECT_EQ(recon.count(), 0u);
  EXPECT_EQ(model.instance(0).samples_seen(), 0u);
  EXPECT_EQ(model.instance(1).samples_seen(), 0u);
}

TEST(Reconstructor, SecondReconstructionAfterCompletion) {
  Rng rng(6);
  auto model = make_model(rng);
  Reconstructor recon(small_config(), 2, 4);

  for (int round = 0; round < 2; ++round) {
    recon.begin(model, recon.coords().centroids());
    int i = 0;
    while (recon.step(cluster_sample(rng, i++ % 2, 4), model)) {
    }
    EXPECT_FALSE(recon.active());
  }
}

TEST(Reconstructor, SingleLabelReconstruction) {
  // C = 1 (the cooling-fan configuration): Init_Coord degenerates to a
  // no-op and everything still works.
  Rng rng(7);
  auto proj = make_projection(4, 8, Activation::kSigmoid, rng);
  MultiInstanceModel model(1, proj, 1e-2);
  Reconstructor recon(small_config(), 1, 4);
  recon.begin(model, Matrix(1, 4));

  int i = 0;
  while (recon.step(cluster_sample(rng, 0, 4), model)) {
    ++i;
  }
  EXPECT_EQ(i + 1, 200);
  EXPECT_NEAR(recon.coords().centroid(0)[0], 5.0, 0.6);
  // The single instance now reconstructs the new concept.
  EXPECT_LT(model.instance(0).score(cluster_sample(rng, 0, 4)), 0.5);
}

TEST(Reconstructor, MemoryIsSmallAndConstant) {
  Rng rng(8);
  auto model = make_model(rng);
  Reconstructor recon(small_config(), 2, 4);
  recon.begin(model, Matrix(2, 4));
  const std::size_t before = recon.memory_bytes();
  for (int i = 0; i < 50; ++i) {
    recon.step(cluster_sample(rng, i % 2, 4), model);
  }
  EXPECT_EQ(recon.memory_bytes(), before);
  // Two 4-dim coordinates: well under a kilobyte of state.
  EXPECT_LT(before, 1024u);
}

}  // namespace
