// Integration tests of the five-method experiment runner on a scaled-down
// NSL-KDD-like stream. These assert the *shape* of the paper's Table 2:
// active methods beat the static baseline after a drift, batch detectors
// detect within one batch, the proposed method detects later but with far
// less memory.
#include <gtest/gtest.h>

#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/eval/experiment.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::data::Dataset;
using edgedrift::data::NslKddLike;
using edgedrift::data::NslKddLikeConfig;
using edgedrift::eval::ExperimentConfig;
using edgedrift::eval::ExperimentResult;
using edgedrift::eval::Method;
using edgedrift::util::Rng;

// Scaled-down stream so the whole suite stays fast: 4000 test samples,
// drift at 1500.
struct Fixture {
  Dataset train;
  Dataset test;
  std::size_t drift_at = 1500;
  ExperimentConfig config;
};

Fixture make_fixture() {
  Fixture f;
  NslKddLikeConfig data_config;
  data_config.train_size = 800;
  data_config.test_size = 4000;
  data_config.drift_point = f.drift_at;
  NslKddLike generator(data_config);
  Rng rng(21);
  f.train = generator.training(rng);
  f.test = generator.test_stream(rng);

  f.config.pipeline.num_labels = 2;
  f.config.pipeline.input_dim = NslKddLike::kDim;
  f.config.pipeline.hidden_dim = 22;
  f.config.pipeline.window_size = 100;
  f.config.pipeline.detector_initial_count = 0;
  f.config.pipeline.reconstruction.n_search = 20;
  f.config.pipeline.reconstruction.n_update = 120;
  f.config.pipeline.reconstruction.n_total = 500;
  f.config.quanttree.num_bins = 32;
  f.config.quanttree.batch_size = 200;
  f.config.spll.batch_size = 200;
  f.config.spll.num_clusters = 2;
  f.config.onlad_forgetting = 0.97;
  return f;
}

const Fixture& fixture() {
  static const Fixture f = make_fixture();
  return f;
}

ExperimentResult run(Method method) {
  const Fixture& f = fixture();
  return edgedrift::eval::run_experiment(method, f.train, f.test, f.config);
}

TEST(Experiment, BaselineDegradesAfterDrift) {
  const auto result = run(Method::kBaseline);
  const auto& f = fixture();
  const double pre = result.accuracy.range(0, f.drift_at);
  const double post = result.accuracy.range(f.drift_at, f.test.size());
  EXPECT_GT(pre, 0.95);
  EXPECT_LT(post, 0.85);
  EXPECT_EQ(result.detections.count(), 0u);
}

TEST(Experiment, ProposedDetectsAndOutperformsBaseline) {
  const auto proposed = run(Method::kProposed);
  const auto baseline = run(Method::kBaseline);
  const auto& f = fixture();

  const auto delay = proposed.detections.delay(f.drift_at);
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(proposed.detections.false_alarms(f.drift_at), 0u);
  EXPECT_GT(proposed.accuracy.overall(), baseline.accuracy.overall());
  // Post-recovery tail is where the win comes from.
  const double tail_proposed =
      proposed.accuracy.range(f.test.size() * 3 / 4, f.test.size());
  const double tail_baseline =
      baseline.accuracy.range(f.test.size() * 3 / 4, f.test.size());
  EXPECT_GT(tail_proposed, tail_baseline + 0.05);
}

TEST(Experiment, QuantTreeDetectsWithinOneBatchOfDrift) {
  const auto result = run(Method::kQuantTree);
  const auto& f = fixture();
  const auto delay = result.detections.delay(f.drift_at);
  ASSERT_TRUE(delay.has_value());
  // A batch detector fires at the first full batch after the drift: delay
  // strictly below 2 * batch size.
  EXPECT_LT(*delay, 2u * 200u);
}

TEST(Experiment, SpllDetectsWithinOneBatchOfDrift) {
  const auto result = run(Method::kSpll);
  const auto& f = fixture();
  const auto delay = result.detections.delay(f.drift_at);
  ASSERT_TRUE(delay.has_value());
  EXPECT_LT(*delay, 2u * 200u);
}

TEST(Experiment, ProposedDetectsLaterThanBatchMethods) {
  // Table 2 shape: the fully sequential method pays a detection-delay price.
  const auto proposed = run(Method::kProposed);
  const auto quanttree = run(Method::kQuantTree);
  const auto& f = fixture();
  const auto d_prop = proposed.detections.delay(f.drift_at);
  const auto d_qt = quanttree.detections.delay(f.drift_at);
  ASSERT_TRUE(d_prop.has_value());
  ASSERT_TRUE(d_qt.has_value());
  EXPECT_GE(*d_prop, *d_qt);
}

TEST(Experiment, ProposedUsesFarLessDetectorMemory) {
  // Table 4 shape: proposed << QuantTree < SPLL.
  const auto proposed = run(Method::kProposed);
  const auto quanttree = run(Method::kQuantTree);
  const auto spll = run(Method::kSpll);
  EXPECT_LT(proposed.detector_memory_bytes,
            quanttree.detector_memory_bytes / 2);
  EXPECT_LT(quanttree.detector_memory_bytes, spll.detector_memory_bytes);
}

TEST(Experiment, ActiveMethodsRecoverAccuracy) {
  const auto& f = fixture();
  for (const Method m :
       {Method::kProposed, Method::kQuantTree, Method::kSpll}) {
    const auto result = run(m);
    const double tail =
        result.accuracy.range(f.test.size() * 3 / 4, f.test.size());
    EXPECT_GT(tail, 0.8) << edgedrift::eval::method_name(m);
  }
}

TEST(Experiment, OnladRunsAndReportsPassiveBehaviour) {
  const auto result = run(Method::kOnlad);
  EXPECT_EQ(result.detections.count(), 0u);
  EXPECT_EQ(result.detector_memory_bytes, 0u);
  EXPECT_GT(result.accuracy.samples(), 0u);
}

TEST(Experiment, MethodNamesMatchPaperRows) {
  EXPECT_EQ(edgedrift::eval::method_name(Method::kQuantTree), "Quant Tree");
  EXPECT_EQ(edgedrift::eval::method_name(Method::kSpll), "SPLL");
  EXPECT_EQ(edgedrift::eval::method_name(Method::kProposed),
            "Proposed method");
}

TEST(Experiment, RuntimeIsMeasured) {
  const auto result = run(Method::kBaseline);
  EXPECT_GT(result.runtime_seconds, 0.0);
}

TEST(Experiment, MultiWindowEnsembleDetectsAndRecovers) {
  const auto& f = fixture();
  auto config = f.config;
  config.ensemble_windows = {50, 100, 200};
  const auto result = edgedrift::eval::run_experiment(
      Method::kMultiWindow, f.train, f.test, config);
  const auto delay = result.detections.delay(f.drift_at);
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(result.detections.false_alarms(f.drift_at), 0u);
  // Recovery after reconstruction, as for the single-window method.
  const double tail =
      result.accuracy.range(f.test.size() * 3 / 4, f.test.size());
  EXPECT_GT(tail, 0.85);
  // Ensemble state stays tiny (3 members x O(C*D)).
  EXPECT_LT(result.detector_memory_bytes, 64u * 1024u);
}

}  // namespace
