// Integration tests of the experiment runner on the cooling-fan
// configuration — the C = 1 (single normal pattern) path of the paper's
// second evaluation, covering all three drift schedules.
#include <gtest/gtest.h>

#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/eval/experiment.hpp"
#include "edgedrift/eval/paper_configs.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::data::CoolingFanLike;
using edgedrift::data::Dataset;
using edgedrift::eval::ExperimentConfig;
using edgedrift::eval::Method;
using edgedrift::util::Rng;

struct Fixture {
  Dataset train;
  Dataset sudden;
  Dataset gradual;
  Dataset reoccurring;
  std::size_t drift_at;
  ExperimentConfig config;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    CoolingFanLike generator;
    Rng rng(41);
    fx.train = generator.training(rng);
    Rng stream_rng(42);
    fx.sudden = generator.sudden_stream(stream_rng);
    fx.gradual = generator.gradual_stream(stream_rng);
    fx.reoccurring = generator.reoccurring_stream(stream_rng);
    fx.drift_at = generator.config().drift_point;
    fx.config = edgedrift::eval::cooling_fan_paper_config(50);
    return fx;
  }();
  return f;
}

TEST(ExperimentFan, ProposedDetectsSuddenDamage) {
  const auto& f = fixture();
  const auto result = edgedrift::eval::run_experiment(
      Method::kProposed, f.train, f.sudden, f.config);
  const auto delay = result.detections.delay(f.drift_at);
  ASSERT_TRUE(delay.has_value());
  EXPECT_LT(*delay, 250u);
  EXPECT_EQ(result.detections.false_alarms(f.drift_at), 0u);
}

TEST(ExperimentFan, QuantTreeDetectsSuddenDamage) {
  const auto& f = fixture();
  const auto result = edgedrift::eval::run_experiment(
      Method::kQuantTree, f.train, f.sudden, f.config);
  const auto delay = result.detections.delay(f.drift_at);
  ASSERT_TRUE(delay.has_value());
  // One QuantTree batch is 235 samples; detection comes at a batch close.
  EXPECT_LT(*delay, 2u * 235u);
}

TEST(ExperimentFan, SpllDetectsSuddenDamage) {
  const auto& f = fixture();
  const auto result = edgedrift::eval::run_experiment(
      Method::kSpll, f.train, f.sudden, f.config);
  ASSERT_TRUE(result.detections.delay(f.drift_at).has_value());
}

TEST(ExperimentFan, BaselineAndOnladRunSingleLabel) {
  const auto& f = fixture();
  // C = 1: "accuracy" is trivially the fraction labeled 0; the point is
  // the code path runs and memory is accounted.
  const auto baseline = edgedrift::eval::run_experiment(
      Method::kBaseline, f.train, f.sudden, f.config);
  const auto onlad = edgedrift::eval::run_experiment(
      Method::kOnlad, f.train, f.sudden, f.config);
  EXPECT_EQ(baseline.accuracy.samples(), f.sudden.size());
  EXPECT_EQ(onlad.accuracy.samples(), f.sudden.size());
  EXPECT_GT(baseline.model_memory_bytes, 0u);
}

TEST(ExperimentFan, ProposedHandlesGradualDrift) {
  const auto& f = fixture();
  const auto result = edgedrift::eval::run_experiment(
      Method::kProposed, f.train, f.gradual, f.config);
  const auto delay = result.detections.delay(f.drift_at);
  ASSERT_TRUE(delay.has_value());
  // Gradual mixing stretches the delay beyond the sudden case.
  const auto sudden = edgedrift::eval::run_experiment(
      Method::kProposed, f.train, f.sudden, f.config);
  EXPECT_GT(*delay, *sudden.detections.delay(f.drift_at));
}

TEST(ExperimentFan, DetectorMemoryOrderingHolds) {
  const auto& f = fixture();
  const auto proposed = edgedrift::eval::run_experiment(
      Method::kProposed, f.train, f.sudden, f.config);
  const auto quanttree = edgedrift::eval::run_experiment(
      Method::kQuantTree, f.train, f.sudden, f.config);
  const auto spll = edgedrift::eval::run_experiment(
      Method::kSpll, f.train, f.sudden, f.config);
  // Table 4's ordering on the exact fan configuration.
  EXPECT_LT(proposed.detector_memory_bytes,
            quanttree.detector_memory_bytes / 10);
  EXPECT_LT(quanttree.detector_memory_bytes, spll.detector_memory_bytes);
}

}  // namespace
