// Golden-replay regression: a seeded NSL-KDD-like run end to end against a
// committed transcript (tests/golden/nslkdd_replay.golden).
//
// The golden file pins, in hexfloat text, everything the pipeline decides:
// the calibrated theta_error gate, every predicted label, every drift index,
// every window-close statistic, and every 8th anomaly score. On the
// portable SIMD backend the comparison is exact (hexfloat round-trips are
// bit-faithful), so any silent change to the numerics, the detector
// schedule, or the recovery sequencing fails loudly. Native builds
// (AVX2/FMA, NEON) legitimately reassociate the arithmetic, so there the
// check degrades to tolerances: the gate within 1e-6 relative, label
// disagreement under 1%, drift count equal with indices within one window.
//
// Regenerate after an intentional numerics change with
//   EDGEDRIFT_REGEN_GOLDEN=1 ./edgedrift_tests \
//       --gtest_filter='GoldenReplay.*'
// from a portable-SIMD build, and commit the diff.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/eval/paper_configs.hpp"
#include "edgedrift/linalg/simd.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using namespace edgedrift;

constexpr std::size_t kScoreStride = 8;  // Every 8th anomaly score is pinned.

std::string golden_path() {
  return std::string(EDGEDRIFT_TEST_DIR) + "/golden/nslkdd_replay.golden";
}

/// The reduced replay configuration: same generator, same paper pipeline,
/// small enough to keep the transcript a few kilobytes and the test fast.
data::NslKddLikeConfig replay_stream_config() {
  data::NslKddLikeConfig config;
  config.train_size = 1600;
  config.test_size = 2500;
  config.drift_point = 1200;
  config.seed = 42;
  return config;
}

struct Transcript {
  double theta_error = 0.0;
  std::string labels;                     // One digit per sample.
  std::vector<std::size_t> drifts;        // Sample indices of detections.
  std::vector<std::size_t> stat_index;    // Window-close sample indices.
  std::vector<double> stat_value;         // Matching statistics.
  std::vector<double> scores;             // Every kScoreStride-th score.
};

Transcript run_replay() {
  const data::NslKddLike generator(replay_stream_config());
  util::Rng rng(generator.config().seed);
  const data::Dataset train = generator.training(rng);
  const data::Dataset test = generator.test_stream(rng);

  core::PipelineConfig config = eval::nsl_kdd_paper_config(100).pipeline;
  config.input_dim = train.dim();
  core::Pipeline pipeline(config);
  pipeline.fit(train.x, train.labels);

  Transcript t;
  t.theta_error = pipeline.theta_error();
  t.labels.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    const core::PipelineStep step =
        pipeline.process(test.x.row(i), test.labels[i]);
    t.labels.push_back(
        static_cast<char>('0' + (step.prediction.label % 10)));
    if (step.drift_detected) t.drifts.push_back(i);
    if (step.statistic_valid) {
      t.stat_index.push_back(i);
      t.stat_value.push_back(step.statistic);
    }
    if (i % kScoreStride == 0) t.scores.push_back(step.prediction.score);
  }
  return t;
}

std::string hex(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string render(const Transcript& t) {
  const data::NslKddLikeConfig sc = replay_stream_config();
  std::string out;
  out += "edgedrift-golden-v1\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "config dim=%zu labels=%zu window=100 train=%zu test=%zu "
                "drift=%zu seed=%" PRIu64 " stride=%zu\n",
                data::NslKddLike::kDim, data::NslKddLike::kNumLabels,
                sc.train_size, sc.test_size, sc.drift_point, sc.seed,
                kScoreStride);
  out += buf;
  out += "theta_error " + hex(t.theta_error) + "\n";
  out += "labels " + t.labels + "\n";
  out += "drifts";
  for (const std::size_t d : t.drifts) out += " " + std::to_string(d);
  out += "\n";
  for (std::size_t i = 0; i < t.stat_index.size(); ++i) {
    out += "stat " + std::to_string(t.stat_index[i]) + " " +
           hex(t.stat_value[i]) + "\n";
  }
  for (std::size_t i = 0; i < t.scores.size(); ++i) {
    out += "score " + std::to_string(i * kScoreStride) + " " +
           hex(t.scores[i]) + "\n";
  }
  return out;
}

bool parse(const std::string& text, Transcript& t, std::string& error) {
  std::size_t pos = 0;
  bool saw_magic = false;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    if (!saw_magic) {
      if (line != "edgedrift-golden-v1") {
        error = "bad magic line: " + line;
        return false;
      }
      saw_magic = true;
    } else if (line.rfind("config ", 0) == 0) {
      // Informational; the test regenerates its own config.
    } else if (line.rfind("theta_error ", 0) == 0) {
      t.theta_error = std::strtod(line.c_str() + 12, nullptr);
    } else if (line.rfind("labels ", 0) == 0) {
      t.labels = line.substr(7);
    } else if (line.rfind("drifts", 0) == 0) {
      const char* p = line.c_str() + 6;
      char* next = nullptr;
      for (;;) {
        const unsigned long long v = std::strtoull(p, &next, 10);
        if (next == p) break;
        t.drifts.push_back(static_cast<std::size_t>(v));
        p = next;
      }
    } else if (line.rfind("stat ", 0) == 0) {
      char* next = nullptr;
      t.stat_index.push_back(
          static_cast<std::size_t>(std::strtoull(line.c_str() + 5, &next, 10)));
      t.stat_value.push_back(std::strtod(next, nullptr));
    } else if (line.rfind("score ", 0) == 0) {
      char* next = nullptr;
      std::strtoull(line.c_str() + 6, &next, 10);
      t.scores.push_back(std::strtod(next, nullptr));
    } else {
      error = "unrecognized line: " + line;
      return false;
    }
  }
  if (!saw_magic) {
    error = "empty golden file";
    return false;
  }
  return true;
}

bool is_portable_build() {
  return std::strcmp(linalg::simd::kLevelName, "portable") == 0;
}

TEST(GoldenReplay, MatchesCommittedTranscript) {
  const std::string path = golden_path();
  const Transcript actual = run_replay();

  if (std::getenv("EDGEDRIFT_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(is_portable_build())
        << "regenerate the golden file from a portable-SIMD build "
           "(-DEDGEDRIFT_SIMD=PORTABLE or the default container build)";
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    const std::string text = render(actual);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "golden file regenerated at " << path;
  }

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr)
      << "missing golden file " << path
      << " — regenerate with EDGEDRIFT_REGEN_GOLDEN=1 and commit it";
  std::string text;
  char buf[4096];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    if (n == 0) break;
    text.append(buf, n);
  }
  std::fclose(f);

  Transcript golden;
  std::string error;
  ASSERT_TRUE(parse(text, golden, error)) << error;

  if (is_portable_build()) {
    // Hexfloat round-trips exactly: the replay must be bit-identical.
    EXPECT_EQ(render(actual), text)
        << "portable-build replay diverged from the committed transcript; "
           "if the numerics change is intentional, regenerate with "
           "EDGEDRIFT_REGEN_GOLDEN=1";
    return;
  }

  // Native backends reassociate float arithmetic; hold the decisions to
  // tolerances instead of bits.
  EXPECT_NEAR(actual.theta_error, golden.theta_error,
              1e-6 * std::abs(golden.theta_error));
  ASSERT_EQ(actual.labels.size(), golden.labels.size());
  std::size_t label_mismatch = 0;
  for (std::size_t i = 0; i < actual.labels.size(); ++i) {
    label_mismatch += actual.labels[i] != golden.labels[i];
  }
  EXPECT_LE(label_mismatch, actual.labels.size() / 100)
      << "more than 1% of predicted labels diverged from the golden run";
  ASSERT_EQ(actual.drifts.size(), golden.drifts.size())
      << "drift count diverged from the golden run";
  for (std::size_t i = 0; i < actual.drifts.size(); ++i) {
    const auto a = static_cast<long long>(actual.drifts[i]);
    const auto g = static_cast<long long>(golden.drifts[i]);
    EXPECT_LE(std::llabs(a - g), 100)
        << "drift " << i << " moved more than one window";
  }
}

}  // namespace
