// Pins the fused ensemble scorer to the retained per-instance reference
// path, bit for bit. The model keeps every instance's beta twice — the
// per-instance matrices (reference) and a packed [L x C*n] column-blocked
// mirror the fused kernels run against — and the whole design rests on the
// two never diverging by even one ulp within a build:
//
//   - scores(x, out, ws)    fused: shared hidden + one packed matvec
//   - scores(x, out)        reference: per-instance walk (kept for this test)
//   - score_batch()         fused: one [rows x C*n] GEMM
//
// The sweep covers ensemble widths C in {2, 3, 5, 23} and tail-heavy
// dimensions (deliberately not multiples of the GEMM register tile), after
// every mutation path: init_train, init_sequential, N Sherman–Morrison
// training steps, and apply_permutation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/linalg/workspace.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::linalg::KernelWorkspace;
using edgedrift::linalg::Matrix;
using edgedrift::model::BatchWorkspace;
using edgedrift::model::MultiInstanceModel;
using edgedrift::model::Prediction;
using edgedrift::oselm::Activation;
using edgedrift::oselm::make_projection;
using edgedrift::util::Rng;

struct LabeledData {
  Matrix x;
  std::vector<int> labels;
};

/// `per_class` Gaussian samples around a distinct anchor per label.
LabeledData make_clusters(Rng& rng, std::size_t num_labels,
                          std::size_t per_class, std::size_t dim) {
  LabeledData data;
  data.x.resize_zero(num_labels * per_class, dim);
  data.labels.resize(num_labels * per_class);
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    const std::size_t label = i % num_labels;
    data.labels[i] = static_cast<int>(label);
    for (std::size_t j = 0; j < dim; ++j) {
      const double center =
          0.2 + 0.7 * static_cast<double>((label + j) % num_labels);
      data.x(i, j) = rng.gaussian(center, 0.2);
    }
  }
  return data;
}

MultiInstanceModel make_model(std::size_t num_labels, std::size_t dim,
                              std::size_t hidden, std::uint64_t seed) {
  Rng rng(seed);
  auto proj = make_projection(dim, hidden, Activation::kSigmoid, rng);
  return MultiInstanceModel(num_labels, proj, 1e-2);
}

/// EXPECT bit-exact agreement of the fused and per-instance score paths on
/// every row of `probes`.
void expect_fused_matches_reference(const MultiInstanceModel& model,
                                    const Matrix& probes) {
  KernelWorkspace ws;
  std::vector<double> fused(model.num_labels());
  std::vector<double> reference(model.num_labels());
  for (std::size_t r = 0; r < probes.rows(); ++r) {
    model.scores(probes.row(r), fused, ws);
    model.scores(probes.row(r), reference);
    for (std::size_t c = 0; c < model.num_labels(); ++c) {
      EXPECT_EQ(fused[c], reference[c])
          << "row " << r << " label " << c << " diverged";
    }
  }
}

/// EXPECT the packed mirror to hold exactly the per-instance betas.
void expect_packed_mirrors_instances(const MultiInstanceModel& model) {
  const Matrix& packed = model.packed_beta();
  const std::size_t n = model.input_dim();
  ASSERT_EQ(packed.rows(), model.hidden_dim());
  ASSERT_EQ(packed.cols(), model.num_labels() * n);
  for (std::size_t c = 0; c < model.num_labels(); ++c) {
    const Matrix& beta = model.instance(c).net().beta();
    for (std::size_t i = 0; i < packed.rows(); ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(packed(i, c * n + j), beta(i, j))
            << "block " << c << " element (" << i << ", " << j << ")";
      }
    }
  }
}

// Tail-heavy geometry: 37 and 23 are coprime to every SIMD tile width, so
// both the packed-panel and the scalar-tail GEMM paths are exercised.
constexpr std::size_t kDim = 37;
constexpr std::size_t kHidden = 23;

class FusedScoringSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FusedScoringSweep, BitIdenticalAfterInitTrain) {
  const std::size_t num_labels = GetParam();
  Rng rng(17);
  auto data = make_clusters(rng, num_labels, 40, kDim);
  auto model = make_model(num_labels, kDim, kHidden, 101);
  model.init_train(data.x, data.labels);

  auto probes = make_clusters(rng, num_labels, 6, kDim);
  expect_fused_matches_reference(model, probes.x);
  expect_packed_mirrors_instances(model);
}

TEST_P(FusedScoringSweep, BitIdenticalAfterSequentialUpdates) {
  const std::size_t num_labels = GetParam();
  Rng rng(19);
  auto model = make_model(num_labels, kDim, kHidden, 103);
  model.init_sequential();
  expect_packed_mirrors_instances(model);

  // N Sherman–Morrison steps through both fused (train_closest with a
  // workspace) and explicit-label training.
  auto stream = make_clusters(rng, num_labels, 30, kDim);
  KernelWorkspace ws;
  for (std::size_t i = 0; i < stream.x.rows(); ++i) {
    if (i % 3 == 0) {
      model.train_label(stream.x.row(i),
                        static_cast<std::size_t>(stream.labels[i]));
    } else {
      model.train_closest(stream.x.row(i), ws);
    }
  }

  auto probes = make_clusters(rng, num_labels, 6, kDim);
  expect_fused_matches_reference(model, probes.x);
  expect_packed_mirrors_instances(model);
}

TEST_P(FusedScoringSweep, BitIdenticalAfterPermutation) {
  const std::size_t num_labels = GetParam();
  Rng rng(23);
  auto data = make_clusters(rng, num_labels, 40, kDim);
  auto model = make_model(num_labels, kDim, kHidden, 107);
  model.init_train(data.x, data.labels);

  // Rotate the instances by one position.
  std::vector<std::size_t> perm(num_labels);
  std::iota(perm.begin(), perm.end(), 0);
  std::rotate(perm.begin(), perm.begin() + 1, perm.end());
  model.apply_permutation(perm);

  auto probes = make_clusters(rng, num_labels, 6, kDim);
  expect_fused_matches_reference(model, probes.x);
  expect_packed_mirrors_instances(model);
}

TEST_P(FusedScoringSweep, BatchScoresBitIdenticalToScalar) {
  const std::size_t num_labels = GetParam();
  Rng rng(29);
  auto data = make_clusters(rng, num_labels, 40, kDim);
  auto model = make_model(num_labels, kDim, kHidden, 109);
  model.init_train(data.x, data.labels);

  auto probes = make_clusters(rng, num_labels, 9, kDim);
  BatchWorkspace ws;
  model.score_batch(probes.x, ws);
  for (std::size_t r = 0; r < probes.x.rows(); ++r) {
    for (std::size_t c = 0; c < num_labels; ++c) {
      EXPECT_EQ(ws.scores(r, c), model.instance(c).score(probes.x.row(r)))
          << "row " << r << " label " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EnsembleWidths, FusedScoringSweep,
                         ::testing::Values<std::size_t>(2, 3, 5, 23));

// The fused predict-then-train step must walk the exact same trajectory as
// the reference path (per-instance predict, then train the winner): same
// predictions, same betas, for the whole stream.
TEST(FusedScoring, TrainClosestMatchesReferenceTrajectory) {
  constexpr std::size_t kLabels = 5;
  Rng rng(31);
  auto fused_model = make_model(kLabels, kDim, kHidden, 113);
  auto reference_model = make_model(kLabels, kDim, kHidden, 113);
  auto data = make_clusters(rng, kLabels, 40, kDim);
  fused_model.init_train(data.x, data.labels);
  reference_model.init_train(data.x, data.labels);

  auto stream = make_clusters(rng, kLabels, 25, kDim);
  KernelWorkspace ws;
  for (std::size_t i = 0; i < stream.x.rows(); ++i) {
    const Prediction fused = fused_model.train_closest(stream.x.row(i), ws);
    // Reference: per-instance scoring, then an explicit train of the winner
    // (recomputes the hidden projection instead of sharing it).
    const Prediction ref = reference_model.predict(stream.x.row(i));
    reference_model.train_label(stream.x.row(i), ref.label);
    ASSERT_EQ(fused.label, ref.label) << "step " << i;
    ASSERT_EQ(fused.score, ref.score) << "step " << i;
  }
  for (std::size_t c = 0; c < kLabels; ++c) {
    EXPECT_EQ(Matrix::max_abs_diff(fused_model.instance(c).net().beta(),
                                   reference_model.instance(c).net().beta()),
              0.0)
        << "instance " << c << " beta diverged";
  }
}

// Reset must clear the packed mirror along with the instances.
TEST(FusedScoring, ResetKeepsMirrorInSync) {
  constexpr std::size_t kLabels = 3;
  Rng rng(37);
  auto data = make_clusters(rng, kLabels, 40, kDim);
  auto model = make_model(kLabels, kDim, kHidden, 127);
  model.init_train(data.x, data.labels);
  model.reset();
  expect_packed_mirrors_instances(model);

  auto stream = make_clusters(rng, kLabels, 10, kDim);
  KernelWorkspace ws;
  for (std::size_t i = 0; i < stream.x.rows(); ++i) {
    model.train_closest(stream.x.row(i), ws);
  }
  expect_fused_matches_reference(model, stream.x);
  expect_packed_mirrors_instances(model);
}

}  // namespace
