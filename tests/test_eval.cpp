// Tests for the evaluation harness: streaming accuracy, detection logs,
// label-mapped accuracy, memory audit.
#include <gtest/gtest.h>

#include "edgedrift/eval/memory_audit.hpp"
#include "edgedrift/eval/metrics.hpp"

namespace {

using edgedrift::eval::best_mapped_accuracy;
using edgedrift::eval::DetectionLog;
using edgedrift::eval::MemoryAudit;
using edgedrift::eval::StreamingAccuracy;

TEST(StreamingAccuracy, OverallFraction) {
  StreamingAccuracy acc;
  acc.record(true);
  acc.record(false);
  acc.record(true);
  acc.record(true);
  EXPECT_DOUBLE_EQ(acc.overall(), 0.75);
  EXPECT_EQ(acc.samples(), 4u);
}

TEST(StreamingAccuracy, RangeSlices) {
  StreamingAccuracy acc;
  for (int i = 0; i < 10; ++i) acc.record(i < 5);
  EXPECT_DOUBLE_EQ(acc.range(0, 5), 1.0);
  EXPECT_DOUBLE_EQ(acc.range(5, 10), 0.0);
  EXPECT_DOUBLE_EQ(acc.range(3, 7), 0.5);
  EXPECT_DOUBLE_EQ(acc.range(4, 4), 0.0);  // Empty range.
}

TEST(StreamingAccuracy, WindowedSeriesDropsPartialTail) {
  StreamingAccuracy acc;
  for (int i = 0; i < 25; ++i) acc.record(i % 2 == 0);
  const auto series = acc.windowed(10);
  ASSERT_EQ(series.size(), 2u);  // 25 / 10 = 2 full windows.
  EXPECT_DOUBLE_EQ(series[0], 0.5);
  EXPECT_DOUBLE_EQ(series[1], 0.5);
}

TEST(StreamingAccuracy, ClearResets) {
  StreamingAccuracy acc;
  acc.record(true);
  acc.clear();
  EXPECT_EQ(acc.samples(), 0u);
}

TEST(DetectionLog, DelayIsFirstDetectionAtOrAfterDrift) {
  DetectionLog log;
  log.record(100);
  log.record(350);
  log.record(500);
  EXPECT_EQ(log.delay(300).value(), 50u);
  EXPECT_EQ(log.delay(350).value(), 0u);
  EXPECT_EQ(log.delay(501).has_value(), false);
}

TEST(DetectionLog, FalseAlarmsAreStrictlyBeforeDrift) {
  DetectionLog log;
  log.record(100);
  log.record(200);
  log.record(400);
  EXPECT_EQ(log.false_alarms(300), 2u);
  EXPECT_EQ(log.false_alarms(100), 0u);
  EXPECT_EQ(log.false_alarms(1000), 3u);
}

TEST(DetectionLog, EmptyLog) {
  DetectionLog log;
  EXPECT_FALSE(log.delay(0).has_value());
  EXPECT_EQ(log.false_alarms(100), 0u);
  EXPECT_EQ(log.count(), 0u);
}

TEST(BestMappedAccuracy, IdentityMappingWhenLabelsAgree) {
  const std::vector<int> pred{0, 1, 0, 1};
  const std::vector<int> truth{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(best_mapped_accuracy(pred, truth, 2), 1.0);
}

TEST(BestMappedAccuracy, RecoversFlippedLabels) {
  const std::vector<int> pred{1, 0, 1, 0};
  const std::vector<int> truth{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(best_mapped_accuracy(pred, truth, 2), 1.0);
}

TEST(BestMappedAccuracy, PartialAgreement) {
  // Best bijection can fix the swap but not the noise.
  const std::vector<int> pred{1, 0, 1, 1};
  const std::vector<int> truth{0, 1, 0, 1};
  // Swapped mapping: matches at positions 0,1,2 -> 3/4.
  EXPECT_DOUBLE_EQ(best_mapped_accuracy(pred, truth, 2), 0.75);
}

TEST(BestMappedAccuracy, ThreeClassPermutation) {
  const std::vector<int> pred{2, 0, 1, 2, 0, 1};
  const std::vector<int> truth{0, 1, 2, 0, 1, 2};
  EXPECT_DOUBLE_EQ(best_mapped_accuracy(pred, truth, 3), 1.0);
}

TEST(BestMappedAccuracy, EmptyInput) {
  EXPECT_DOUBLE_EQ(best_mapped_accuracy({}, {}, 2), 0.0);
}

TEST(MemoryAudit, TotalsAndTable) {
  MemoryAudit audit;
  audit.add("a", 1024);
  audit.add("b", 2048);
  EXPECT_EQ(audit.total_bytes(), 3072u);
  const std::string table = audit.table();
  EXPECT_NE(table.find("a"), std::string::npos);
  EXPECT_NE(table.find("1.0 kB"), std::string::npos);
  EXPECT_NE(table.find("3.0 kB"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  EXPECT_EQ(audit.entries().size(), 2u);
}

TEST(MemoryAudit, EmptyAuditHasZeroTotal) {
  MemoryAudit audit;
  EXPECT_EQ(audit.total_bytes(), 0u);
  EXPECT_NE(audit.table().find("TOTAL"), std::string::npos);
}

TEST(PrequentialAccuracy, NoFadingEqualsRunningMean) {
  edgedrift::eval::PrequentialAccuracy preq(1.0);
  preq.record(true);
  preq.record(false);
  preq.record(true);
  preq.record(true);
  EXPECT_DOUBLE_EQ(preq.value(), 0.75);
  EXPECT_EQ(preq.samples(), 4u);
}

TEST(PrequentialAccuracy, FadingEmphasizesRecentOutcomes) {
  edgedrift::eval::PrequentialAccuracy fading(0.9);
  edgedrift::eval::PrequentialAccuracy flat(1.0);
  // 100 correct, then 20 wrong: the faded estimate must react much harder.
  for (int i = 0; i < 100; ++i) {
    fading.record(true);
    flat.record(true);
  }
  for (int i = 0; i < 20; ++i) {
    fading.record(false);
    flat.record(false);
  }
  EXPECT_LT(fading.value(), 0.25);
  EXPECT_GT(flat.value(), 0.8);
}

TEST(PrequentialAccuracy, RecordReturnsCurrentValue) {
  edgedrift::eval::PrequentialAccuracy preq(0.99);
  EXPECT_DOUBLE_EQ(preq.record(true), 1.0);
  EXPECT_LT(preq.record(false), 1.0);
}

TEST(PrequentialAccuracy, ResetClears) {
  edgedrift::eval::PrequentialAccuracy preq(0.99);
  preq.record(true);
  preq.reset();
  EXPECT_EQ(preq.samples(), 0u);
  EXPECT_DOUBLE_EQ(preq.value(), 0.0);
}

}  // namespace
