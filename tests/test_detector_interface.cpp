// Conformance tests over every drift::DetectorKind: the factory round-trip,
// the Detector interface contract, each kind driving core::Pipeline's
// detect-and-retrain loop via DetectorSpec alone, and the bit-identity of
// process_batch() with sample-by-sample process().
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/drift/detector_factory.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::core::Pipeline;
using edgedrift::core::PipelineConfig;
using edgedrift::core::PipelineStep;
using edgedrift::core::RecoveryPolicy;
using edgedrift::data::Dataset;
using edgedrift::data::GaussianClass;
using edgedrift::data::GaussianConcept;
using edgedrift::util::Rng;
namespace drift = edgedrift::drift;
namespace linalg = edgedrift::linalg;

GaussianConcept pre_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  a.stddev = {0.15};
  GaussianClass b;
  b.mean.assign(8, 1.2);
  b.stddev = {0.15};
  return GaussianConcept({a, b});
}

GaussianConcept post_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  for (std::size_t j = 0; j < 8; j += 2) a.mean[j] += 0.9;
  a.stddev = {0.2};
  GaussianClass b;
  b.mean.assign(8, 0.55);
  for (std::size_t j = 0; j < 8; j += 2) b.mean[j] += 0.9;
  b.stddev = {0.2};
  return GaussianConcept({a, b});
}

struct Scenario {
  Dataset train;
  Dataset test;
  std::size_t drift_at;
};

Scenario make_scenario(Rng& rng, std::size_t pre = 1200,
                       std::size_t post = 1600) {
  Scenario s;
  s.train = edgedrift::data::draw(pre_concept(), 600, rng);
  s.test = edgedrift::data::make_sudden_drift(pre_concept(), post_concept(),
                                              pre + post, pre, rng);
  s.drift_at = pre;
  return s;
}

/// A spec per kind with tunables that make each detector responsive on the
/// short synthetic stream (mirrors examples/detector_zoo.cpp).
drift::DetectorSpec spec_for(drift::DetectorKind kind) {
  drift::DetectorSpec spec;
  spec.kind = kind;
  spec.quanttree.num_bins = 16;
  spec.quanttree.batch_size = 240;
  spec.quanttree.alpha = 0.001;
  spec.spll.num_clusters = 2;
  spec.spll.batch_size = 240;
  spec.page_hinkley.lambda = 10.0;
  spec.page_hinkley.use_anomaly_score = true;
  spec.windows = {20, 40, 80};
  return spec;
}

PipelineConfig make_config(drift::DetectorKind kind) {
  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = 8;
  config.hidden_dim = 12;
  config.window_size = 40;
  config.detector_initial_count = 0;
  config.reconstruction.n_search = 20;
  config.reconstruction.n_update = 100;
  config.reconstruction.n_total = 400;
  config.seed = 7;
  config.detector = spec_for(kind);
  return config;
}

class DetectorKindTest
    : public ::testing::TestWithParam<drift::DetectorKind> {};

std::string kind_param_name(
    const ::testing::TestParamInfo<drift::DetectorKind>& info) {
  return std::string(drift::kind_name(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DetectorKindTest,
                         ::testing::ValuesIn(drift::kAllDetectorKinds),
                         kind_param_name);

TEST_P(DetectorKindTest, KindNameRoundTrips) {
  const drift::DetectorKind kind = GetParam();
  const std::string_view name = drift::kind_name(kind);
  EXPECT_FALSE(name.empty());
  const auto back = drift::kind_from_name(name);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, kind);
}

TEST_P(DetectorKindTest, FactoryHonoursInterfaceContract) {
  drift::CentroidDetectorConfig base;
  base.num_labels = 2;
  base.dim = 8;
  base.window_size = 40;
  base.theta_error = 0.5;
  base.initial_count = 0;
  const auto detector = drift::make_detector(spec_for(GetParam()), base);
  ASSERT_NE(detector, nullptr);
  EXPECT_FALSE(detector->name().empty());

  Rng rng(11);
  const Dataset train = edgedrift::data::draw(pre_concept(), 300, rng);
  detector->set_anomaly_gate(0.5);
  detector->calibrate(train.x, train.labels);
  EXPECT_GT(detector->memory_bytes(), 0u);
  if (detector->needs_reference_data()) {
    EXPECT_GT(detector->reference_rows(), 0u);
  }

  // Feeding pre-concept samples after calibration must not fire.
  const Dataset quiet = edgedrift::data::draw(pre_concept(), 60, rng);
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    drift::Observation obs;
    obs.x = quiet.x.row(i);
    obs.predicted_label = quiet.labels[i];
    obs.anomaly_score = 0.01;
    obs.error = false;
    const drift::Detection det = detector->observe(obs);
    EXPECT_FALSE(det.drift) << "false alarm at sample " << i;
  }
  detector->reset();  // Must leave the detector usable.
  drift::Observation obs;
  obs.x = quiet.x.row(0);
  obs.predicted_label = quiet.labels[0];
  detector->observe(obs);
}

TEST_P(DetectorKindTest, DrivesPipelineAndFiresAfterDrift) {
  Rng rng(3);
  auto scenario = make_scenario(rng);
  PipelineConfig config = make_config(GetParam());
  config.recovery = RecoveryPolicy::kDetectOnly;
  Pipeline pipeline(config);
  pipeline.fit(scenario.train.x, scenario.train.labels);
  EXPECT_EQ(pipeline.detector().name().empty(), false);

  std::ptrdiff_t first_after = -1;
  for (std::size_t i = 0; i < scenario.test.size(); ++i) {
    const PipelineStep step =
        pipeline.process(scenario.test.x.row(i), scenario.test.labels[i]);
    if (step.drift_detected && i >= scenario.drift_at && first_after < 0) {
      first_after = static_cast<std::ptrdiff_t>(i);
    }
  }
  EXPECT_EQ(pipeline.stats().samples, scenario.test.size());
  EXPECT_GE(pipeline.stats().drifts, 1u);
  EXPECT_GE(first_after, 0) << "never fired after the drift";
  // Detect-only never consumes samples into a recovery.
  EXPECT_EQ(pipeline.stats().recovery_samples, 0u);
  EXPECT_EQ(pipeline.stats().recoveries, 0u);
}

// The load-bearing contract of the batched hot path: process_batch() must be
// sample-for-sample bit-identical to process(), including across the drift,
// the recovery that follows it, and (for batch detectors) the reference
// refill. Runs every detector kind so frozen-chunk boundaries are exercised
// against every recovery entry point.
TEST_P(DetectorKindTest, ProcessBatchBitIdenticalToProcess) {
  Rng rng(3);
  auto scenario = make_scenario(rng);
  PipelineConfig config = make_config(GetParam());
  config.max_batch_rows = 64;  // Force internal chunking.

  Pipeline sequential(config);
  sequential.fit(scenario.train.x, scenario.train.labels);
  Pipeline batched(config);
  batched.fit(scenario.train.x, scenario.train.labels);

  std::vector<PipelineStep> expected;
  expected.reserve(scenario.test.size());
  for (std::size_t i = 0; i < scenario.test.size(); ++i) {
    expected.push_back(
        sequential.process(scenario.test.x.row(i), scenario.test.labels[i]));
  }

  // Feed the same stream in odd-sized blocks (larger than max_batch_rows to
  // exercise the internal chunk loop, and a ragged tail).
  const std::size_t block_rows = 150;
  std::vector<PipelineStep> actual;
  actual.reserve(scenario.test.size());
  for (std::size_t start = 0; start < scenario.test.size();
       start += block_rows) {
    const std::size_t rows =
        std::min(block_rows, scenario.test.size() - start);
    linalg::Matrix block(rows, scenario.test.dim());
    for (std::size_t r = 0; r < rows; ++r) {
      const auto src = scenario.test.x.row(start + r);
      std::copy(src.begin(), src.end(), block.row(r).begin());
    }
    const std::span<const int> labels(scenario.test.labels.data() + start,
                                      rows);
    const auto steps = batched.process_batch(block, labels);
    actual.insert(actual.end(), steps.begin(), steps.end());
  }

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    const PipelineStep& e = expected[i];
    const PipelineStep& a = actual[i];
    EXPECT_EQ(a.prediction.label, e.prediction.label);
    EXPECT_EQ(a.prediction.score, e.prediction.score);  // Bit-exact.
    EXPECT_EQ(a.drift_detected, e.drift_detected);
    EXPECT_EQ(a.reconstructing, e.reconstructing);
    EXPECT_EQ(a.reconstruction_finished, e.reconstruction_finished);
    EXPECT_EQ(a.collecting_reference, e.collecting_reference);
    EXPECT_EQ(a.statistic, e.statistic);
    EXPECT_EQ(a.statistic_valid, e.statistic_valid);
  }
  EXPECT_EQ(batched.stats().samples, sequential.stats().samples);
  EXPECT_EQ(batched.stats().drifts, sequential.stats().drifts);
  EXPECT_EQ(batched.stats().recoveries, sequential.stats().recoveries);
  EXPECT_EQ(batched.stats().recovery_samples,
            sequential.stats().recovery_samples);
}

// Every recovery policy must run to completion for every detector kind and
// leave the pipeline streaming again.
TEST_P(DetectorKindTest, RecoveryPoliciesCompleteAndResumeStreaming) {
  for (const RecoveryPolicy policy :
       {RecoveryPolicy::kReconstruct, RecoveryPolicy::kResetRecalibrate}) {
    Rng rng(3);
    auto scenario = make_scenario(rng);
    PipelineConfig config = make_config(GetParam());
    config.recovery = policy;
    Pipeline pipeline(config);
    pipeline.fit(scenario.train.x, scenario.train.labels);

    for (std::size_t i = 0; i < scenario.test.size(); ++i) {
      pipeline.process(scenario.test.x.row(i), scenario.test.labels[i]);
    }
    EXPECT_GE(pipeline.stats().drifts, 1u);
    EXPECT_GE(pipeline.stats().recoveries, 1u);
    EXPECT_GT(pipeline.stats().recovery_samples, 0u);
    // A late re-detection may leave one more recovery in flight at stream
    // end; only then may recovering() still be true.
    if (pipeline.recovering()) {
      EXPECT_GT(pipeline.stats().drifts, pipeline.stats().recoveries);
    }
  }
}

}  // namespace
