// Tests for the proposed centroid-displacement detector (Algorithm 1) and
// the Equation 1 threshold calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "edgedrift/drift/centroid_detector.hpp"
#include "edgedrift/drift/threshold.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::drift::CentroidDetector;
using edgedrift::drift::CentroidDetectorConfig;
using edgedrift::drift::Detection;
using edgedrift::drift::Observation;
using edgedrift::linalg::Matrix;
using edgedrift::util::Rng;

// Two-class 4-D training blob around distinct anchors.
struct Calibration {
  Matrix x;
  std::vector<int> labels;
};

Calibration make_training(Rng& rng, std::size_t per_class = 200) {
  Calibration cal;
  cal.x.resize_zero(2 * per_class, 4);
  cal.labels.resize(2 * per_class);
  for (std::size_t i = 0; i < 2 * per_class; ++i) {
    const int label = i < per_class ? 0 : 1;
    cal.labels[i] = label;
    const double anchor = label == 0 ? 0.0 : 3.0;
    for (std::size_t j = 0; j < 4; ++j) {
      cal.x(i, j) = rng.gaussian(anchor, 0.2);
    }
  }
  return cal;
}

CentroidDetectorConfig base_config() {
  CentroidDetectorConfig config;
  config.num_labels = 2;
  config.dim = 4;
  config.window_size = 20;
  config.theta_error = 0.5;  // Gate for anomaly scores in tests.
  config.z = 1.0;
  config.initial_count = 0;  // Responsive recent centroids for unit tests.
  return config;
}

Observation obs_of(std::span<const double> x, int label, double score) {
  Observation obs;
  obs.x = x;
  obs.predicted_label = label;
  obs.anomaly_score = score;
  return obs;
}

TEST(Threshold, EquationOneMatchesHandComputation) {
  // distances = {1, 2, 3}: mu = 2, sigma = sqrt(2/3).
  const std::vector<double> d{1.0, 2.0, 3.0};
  const double expected = 2.0 + std::sqrt(2.0 / 3.0);
  EXPECT_NEAR(edgedrift::drift::drift_threshold_from_distances(d, 1.0),
              expected, 1e-12);
  // z scales the sigma term.
  EXPECT_NEAR(edgedrift::drift::drift_threshold_from_distances(d, 2.0),
              2.0 + 2.0 * std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(Threshold, CalibrateFromLabeledData) {
  Matrix x{{0.0, 0.0}, {2.0, 0.0}, {10.0, 0.0}, {12.0, 0.0}};
  std::vector<int> labels{0, 0, 1, 1};
  Matrix centroids{{1.0, 0.0}, {11.0, 0.0}};
  // All four samples are L1-distance 1 from their centroid: mu=1, sigma=0.
  const double theta = edgedrift::drift::calibrate_drift_threshold(
      x, labels, centroids, 1.0);
  EXPECT_NEAR(theta, 1.0, 1e-12);
}

TEST(CentroidDetector, CalibrationComputesClassMeans) {
  Rng rng(1);
  auto cal = make_training(rng);
  CentroidDetector det(base_config());
  det.calibrate(cal.x, cal.labels);

  EXPECT_NEAR(det.trained_centroids()(0, 0), 0.0, 0.05);
  EXPECT_NEAR(det.trained_centroids()(1, 0), 3.0, 0.05);
  EXPECT_GT(det.theta_drift(), 0.0);
}

TEST(CentroidDetector, NoWindowOpensBelowErrorGate) {
  Rng rng(2);
  auto cal = make_training(rng);
  CentroidDetector det(base_config());
  det.calibrate(cal.x, cal.labels);

  std::vector<double> x(4, 0.0);
  for (int i = 0; i < 100; ++i) {
    const Detection d = det.observe(obs_of(x, 0, /*score=*/0.01));
    EXPECT_FALSE(d.drift);
    EXPECT_FALSE(det.window_open());
  }
}

TEST(CentroidDetector, StationaryStreamDoesNotFire) {
  // Even with the gate forced open (score above theta_error), on-concept
  // samples keep the recent centroids near the trained ones.
  Rng rng(3);
  auto cal = make_training(rng);
  CentroidDetector det(base_config());
  det.calibrate(cal.x, cal.labels);

  std::vector<double> x(4);
  int drifts = 0;
  for (int i = 0; i < 400; ++i) {
    const int label = i % 2;
    for (auto& v : x) v = rng.gaussian(label == 0 ? 0.0 : 3.0, 0.2);
    const Detection d = det.observe(obs_of(x, label, /*score=*/1.0));
    drifts += d.drift ? 1 : 0;
  }
  EXPECT_EQ(drifts, 0);
}

TEST(CentroidDetector, DetectsSuddenShiftWithinFewWindows) {
  Rng rng(4);
  auto cal = make_training(rng);
  CentroidDetector det(base_config());
  det.calibrate(cal.x, cal.labels);

  // Post-drift: both classes move by +2 in every dimension.
  std::vector<double> x(4);
  int first_detection = -1;
  for (int i = 0; i < 400; ++i) {
    const int label = i % 2;
    for (auto& v : x) v = rng.gaussian((label == 0 ? 0.0 : 3.0) + 2.0, 0.2);
    const Detection d = det.observe(obs_of(x, label, /*score=*/1.0));
    if (d.drift) {
      first_detection = i;
      break;
    }
  }
  ASSERT_GE(first_detection, 0) << "drift never detected";
  EXPECT_LT(first_detection, 200);
}

TEST(CentroidDetector, WindowClosesAndRearmsWithoutDrift) {
  Rng rng(5);
  auto cal = make_training(rng);
  auto config = base_config();
  config.window_size = 10;
  CentroidDetector det(config);
  det.calibrate(cal.x, cal.labels);

  std::vector<double> x(4);
  // One anomalous on-concept window: opens, closes, no drift.
  for (int i = 0; i < 10; ++i) {
    for (auto& v : x) v = rng.gaussian(0.0, 0.2);
    det.observe(obs_of(x, 0, 1.0));
  }
  EXPECT_FALSE(det.window_open());
  // A fresh anomalous sample must re-open the window.
  for (auto& v : x) v = rng.gaussian(0.0, 0.2);
  det.observe(obs_of(x, 0, 1.0));
  EXPECT_TRUE(det.window_open());
}

TEST(CentroidDetector, StatisticEmittedExactlyAtWindowClose) {
  Rng rng(6);
  auto cal = make_training(rng);
  auto config = base_config();
  config.window_size = 5;
  CentroidDetector det(config);
  det.calibrate(cal.x, cal.labels);

  std::vector<double> x(4, 0.0);
  for (int i = 0; i < 4; ++i) {
    const Detection d = det.observe(obs_of(x, 0, 1.0));
    EXPECT_FALSE(d.statistic_valid);
  }
  const Detection d = det.observe(obs_of(x, 0, 1.0));
  EXPECT_TRUE(d.statistic_valid);
}

TEST(CentroidDetector, ResetRestoresRecentToTrained) {
  Rng rng(7);
  auto cal = make_training(rng);
  CentroidDetector det(base_config());
  det.calibrate(cal.x, cal.labels);

  std::vector<double> x(4, 9.0);
  for (int i = 0; i < 10; ++i) det.observe(obs_of(x, 0, 1.0));
  EXPECT_GT(det.last_distance(), 0.0);
  det.reset();
  EXPECT_FALSE(det.window_open());
  EXPECT_DOUBLE_EQ(
      Matrix::max_abs_diff(det.recent_centroids(), det.trained_centroids()),
      0.0);
}

TEST(CentroidDetector, ManualThetaDriftOverridesEquationOne) {
  Rng rng(8);
  auto cal = make_training(rng);
  auto config = base_config();
  config.theta_drift = 123.0;
  CentroidDetector det(config);
  det.calibrate(cal.x, cal.labels);
  EXPECT_DOUBLE_EQ(det.theta_drift(), 123.0);
}

TEST(CentroidDetector, RearmInstallsNewReference) {
  Rng rng(9);
  auto cal = make_training(rng);
  CentroidDetector det(base_config());
  det.calibrate(cal.x, cal.labels);

  Matrix new_centroids{{5.0, 5.0, 5.0, 5.0}, {8.0, 8.0, 8.0, 8.0}};
  const std::vector<std::size_t> counts{10, 10};
  det.rearm(new_centroids, counts, 0.7);
  EXPECT_DOUBLE_EQ(det.theta_drift(), 0.7);
  EXPECT_DOUBLE_EQ(det.trained_centroids()(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(
      Matrix::max_abs_diff(det.recent_centroids(), det.trained_centroids()),
      0.0);
}

TEST(CentroidDetector, EwmaVariantAlsoDetects) {
  Rng rng(10);
  auto cal = make_training(rng);
  auto config = base_config();
  config.ewma_decay = 0.9;
  CentroidDetector det(config);
  det.calibrate(cal.x, cal.labels);

  std::vector<double> x(4);
  int first = -1;
  for (int i = 0; i < 400; ++i) {
    const int label = i % 2;
    for (auto& v : x) v = rng.gaussian((label == 0 ? 0.0 : 3.0) + 2.0, 0.2);
    if (det.observe(obs_of(x, label, 1.0)).drift) {
      first = i;
      break;
    }
  }
  EXPECT_GE(first, 0);
}

TEST(CentroidDetector, LargerWindowDetectsLater) {
  // Property from the paper's Table 3 (sudden drift): a larger window size
  // cannot detect earlier than its own window length allows.
  Rng rng(11);
  auto cal = make_training(rng);

  auto detect_at = [&](std::size_t window) -> int {
    auto config = base_config();
    config.window_size = window;
    CentroidDetector det(config);
    det.calibrate(cal.x, cal.labels);
    Rng stream_rng(99);
    std::vector<double> x(4);
    for (int i = 0; i < 2000; ++i) {
      const int label = i % 2;
      for (auto& v : x) {
        v = stream_rng.gaussian((label == 0 ? 0.0 : 3.0) + 2.0, 0.2);
      }
      if (det.observe(obs_of(x, label, 1.0)).drift) return i;
    }
    return -1;
  };

  const int small = detect_at(10);
  const int large = detect_at(100);
  ASSERT_GE(small, 0);
  ASSERT_GE(large, 0);
  EXPECT_LE(small, large);
  EXPECT_GE(large, 99);  // Cannot close a 100-window before 100 samples.
}

TEST(CentroidDetector, MemoryIsConstantInStreamLength) {
  Rng rng(12);
  auto cal = make_training(rng);
  CentroidDetector det(base_config());
  det.calibrate(cal.x, cal.labels);
  const std::size_t before = det.memory_bytes();

  std::vector<double> x(4);
  for (int i = 0; i < 5000; ++i) {
    for (auto& v : x) v = rng.gaussian(0.0, 0.2);
    det.observe(obs_of(x, i % 2, 1.0));
  }
  EXPECT_EQ(det.memory_bytes(), before);
}

TEST(CentroidDetector, NameIsStable) {
  CentroidDetector det(base_config());
  EXPECT_EQ(det.name(), "proposed");
}

TEST(CentroidDetector, LocalizesDriftedDimensions) {
  Rng rng(13);
  auto cal = make_training(rng);
  CentroidDetector det(base_config());
  det.calibrate(cal.x, cal.labels);

  // Drift only in dimensions 1 and 3: shift samples there by +2.
  std::vector<double> x(4);
  for (int i = 0; i < 200; ++i) {
    const int label = i % 2;
    const double anchor = label == 0 ? 0.0 : 3.0;
    x[0] = rng.gaussian(anchor, 0.2);
    x[1] = rng.gaussian(anchor + 2.0, 0.2);
    x[2] = rng.gaussian(anchor, 0.2);
    x[3] = rng.gaussian(anchor + 2.0, 0.2);
    det.observe(obs_of(x, label, 1.0));
  }
  const auto top = det.top_drifted_dimensions(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_TRUE((top[0] == 1 && top[1] == 3) || (top[0] == 3 && top[1] == 1))
      << "got dims " << top[0] << ", " << top[1];

  // Per-label displacements are positive for both labels.
  std::vector<double> per_label(2);
  det.per_label_distances(per_label);
  EXPECT_GT(per_label[0], 1.0);
  EXPECT_GT(per_label[1], 1.0);
}

TEST(CentroidDetector, TopDriftedDimensionsClampsK) {
  CentroidDetector det(base_config());
  Rng rng(14);
  auto cal = make_training(rng);
  det.calibrate(cal.x, cal.labels);
  EXPECT_EQ(det.top_drifted_dimensions(100).size(), 4u);  // dim = 4.
}

}  // namespace
