// Tests for the DSP front end: FFT correctness (against a naive DFT and
// analytic cases), windows, the spectrum extractor, and the end-to-end
// waveform -> spectrum -> drift-pipeline path.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/stream.hpp"
#include "edgedrift/dsp/fft.hpp"
#include "edgedrift/dsp/spectrum.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::dsp::FanWaveform;
using edgedrift::dsp::SpectrumExtractor;
using edgedrift::dsp::Window;
using edgedrift::util::Rng;

constexpr double kTwoPi = 6.28318530717958647692;

std::vector<std::complex<double>> naive_dft(
    const std::vector<double>& signal) {
  const std::size_t n = signal.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -kTwoPi * double(k) * double(t) / double(n);
      acc += signal[t] * std::complex<double>(std::cos(angle),
                                              std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(Fft, MatchesNaiveDftOnRandomSignal) {
  Rng rng(1);
  std::vector<double> signal(64);
  for (auto& v : signal) v = rng.gaussian();
  const auto expected = naive_dft(signal);
  const auto actual = edgedrift::dsp::fft_real(signal);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t k = 0; k < actual.size(); ++k) {
    EXPECT_NEAR(actual[k].real(), expected[k].real(), 1e-9);
    EXPECT_NEAR(actual[k].imag(), expected[k].imag(), 1e-9);
  }
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<double> impulse(32, 0.0);
  impulse[0] = 1.0;
  const auto spectrum = edgedrift::dsp::fft_real(impulse);
  for (const auto& v : spectrum) {
    EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
  }
}

TEST(Fft, PureSinePeaksAtItsBin) {
  const std::size_t n = 256;
  const std::size_t bin = 17;
  std::vector<double> signal(n);
  for (std::size_t t = 0; t < n; ++t) {
    signal[t] = std::sin(kTwoPi * double(bin) * double(t) / double(n));
  }
  const auto magnitudes = edgedrift::dsp::magnitude_spectrum(signal);
  // magnitude_spectrum index k-1 corresponds to bin k; amplitude 1 sine
  // maps to ~1.0 after the 2/N scaling.
  EXPECT_NEAR(magnitudes[bin - 1], 1.0, 1e-9);
  for (std::size_t k = 1; k < n / 2; ++k) {
    if (k == bin) continue;
    EXPECT_LT(magnitudes[k - 1], 1e-9);
  }
}

TEST(Fft, RoundTripThroughInverse) {
  Rng rng(2);
  std::vector<std::complex<double>> data(128);
  std::vector<std::complex<double>> original(128);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.gaussian(), rng.gaussian()};
    original[i] = data[i];
  }
  edgedrift::dsp::fft(data);
  edgedrift::dsp::ifft(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  Rng rng(3);
  std::vector<double> signal(64);
  for (auto& v : signal) v = rng.gaussian();
  double time_energy = 0.0;
  for (const double v : signal) time_energy += v * v;
  const auto spectrum = edgedrift::dsp::fft_real(signal);
  double freq_energy = 0.0;
  for (const auto& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / double(signal.size()), time_energy, 1e-9);
}

TEST(Windows, HannEndpointsAreZeroAndMidIsOne) {
  std::vector<double> frame(128, 1.0);
  edgedrift::dsp::apply_window(Window::kHann, frame);
  EXPECT_NEAR(frame[0], 0.0, 1e-12);
  EXPECT_NEAR(frame[64], 1.0, 1e-3);
}

TEST(Windows, RectangularIsIdentity) {
  std::vector<double> frame{1.0, -2.0, 3.0};
  edgedrift::dsp::apply_window(Window::kRectangular, frame);
  EXPECT_DOUBLE_EQ(frame[1], -2.0);
}

TEST(SpectrumExtractor, OutputDimMatchesFanConvention) {
  SpectrumExtractor extractor(1024);
  EXPECT_EQ(extractor.output_dim(), 511u);  // 1..511 Hz at 1 Hz bins.
}

TEST(SpectrumExtractor, LocatesSinePeak) {
  SpectrumExtractor extractor(1024, Window::kHann);
  std::vector<double> frame(1024);
  for (std::size_t t = 0; t < frame.size(); ++t) {
    frame[t] = std::sin(kTwoPi * 50.0 * double(t) / 1024.0);
  }
  const auto spectrum = extractor.extract(frame);
  // Bin index 49 corresponds to 50 Hz. It must dominate everything away
  // from the peak's window-spread shoulders.
  std::size_t best = 0;
  for (std::size_t i = 1; i < spectrum.size(); ++i) {
    if (spectrum[i] > spectrum[best]) best = i;
  }
  EXPECT_EQ(best, 49u);
  EXPECT_GT(spectrum[49], 20.0 * spectrum[200]);
}

TEST(FanWaveformDsp, NormalSpectrumHasHarmonicStructure) {
  Rng rng(4);
  FanWaveform fan(edgedrift::data::FanCondition::kNormal,
                  edgedrift::data::FanEnvironment::kSilent);
  SpectrumExtractor extractor;
  std::vector<double> frame(1024);
  std::vector<double> mean_spectrum(511, 0.0);
  for (int rep = 0; rep < 10; ++rep) {
    fan.synthesize(rng, frame);
    const auto s = extractor.extract(frame);
    for (std::size_t i = 0; i < s.size(); ++i) mean_spectrum[i] += s[i];
  }
  // Fundamental (bin 49) towers above a quiet bin; second harmonic
  // present. Speed jitter spreads peaks a little, so compare windows.
  auto peak_near = [&](std::size_t center) {
    double best = 0.0;
    for (std::size_t i = center - 3; i <= center + 3; ++i) {
      best = std::max(best, mean_spectrum[i]);
    }
    return best;
  };
  EXPECT_GT(peak_near(49), 5.0 * mean_spectrum[160]);
  EXPECT_GT(peak_near(99), 2.0 * mean_spectrum[160]);
}

TEST(FanWaveformDsp, DamageChangesExtractedSpectrum) {
  Rng rng(5);
  SpectrumExtractor extractor;
  std::vector<double> frame(1024);

  auto mean_spectrum = [&](edgedrift::data::FanCondition condition) {
    FanWaveform fan(condition, edgedrift::data::FanEnvironment::kSilent);
    std::vector<double> acc(511, 0.0);
    for (int rep = 0; rep < 12; ++rep) {
      fan.synthesize(rng, frame);
      const auto s = extractor.extract(frame);
      for (std::size_t i = 0; i < s.size(); ++i) acc[i] += s[i];
    }
    return acc;
  };

  const auto normal = mean_spectrum(edgedrift::data::FanCondition::kNormal);
  const auto holes = mean_spectrum(edgedrift::data::FanCondition::kHoles);
  const auto chipped =
      mean_spectrum(edgedrift::data::FanCondition::kChipped);

  auto peak_near = [](const std::vector<double>& s, std::size_t center) {
    double best = 0.0;
    for (std::size_t i = center - 3; i <= center + 3; ++i) {
      best = std::max(best, s[i]);
    }
    return best;
  };
  // Holes: blade-pass (349) and sidebands (299/399) grow.
  EXPECT_GT(peak_near(holes, 349), 1.8 * peak_near(normal, 349));
  EXPECT_GT(peak_near(holes, 299), 1.5 * peak_near(normal, 299));
  // Chipped: fundamental (49) and the 25 Hz sub-harmonic (24) grow.
  EXPECT_GT(peak_near(chipped, 49), 1.5 * peak_near(normal, 49));
  EXPECT_GT(peak_near(chipped, 24), 2.0 * peak_near(normal, 24));
}

TEST(FanWaveformDsp, EndToEndDriftDetectionFromRawWaveforms) {
  // The full sensor-to-decision path: raw accelerometer frames -> spectrum
  // extractor -> proposed pipeline; a blade-damage event must be detected.
  Rng rng(6);
  SpectrumExtractor extractor;
  FanWaveform healthy(edgedrift::data::FanCondition::kNormal,
                      edgedrift::data::FanEnvironment::kSilent);
  FanWaveform damaged(edgedrift::data::FanCondition::kHoles,
                      edgedrift::data::FanEnvironment::kSilent);
  std::vector<double> frame(1024);

  // Train on 150 healthy spectra.
  edgedrift::data::Dataset train;
  train.x.resize_zero(150, 511);
  train.labels.assign(150, 0);
  for (std::size_t i = 0; i < 150; ++i) {
    healthy.synthesize(rng, frame);
    extractor.extract(frame, train.x.row(i));
  }

  edgedrift::core::PipelineConfig config;
  config.num_labels = 1;
  config.input_dim = 511;
  config.hidden_dim = 22;
  config.window_size = 20;
  config.detector_initial_count = 0;
  config.reconstruction = {5, 20, 80};
  edgedrift::core::Pipeline pipeline(config);
  pipeline.fit(train.x, train.labels);

  std::vector<double> spectrum(511);
  // 100 healthy frames: no alarm.
  for (int i = 0; i < 100; ++i) {
    healthy.synthesize(rng, frame);
    extractor.extract(frame, spectrum);
    ASSERT_FALSE(pipeline.process(spectrum).drift_detected)
        << "false alarm on healthy frame " << i;
  }
  // Damage begins: must be detected within 200 frames.
  int detected_at = -1;
  for (int i = 0; i < 200; ++i) {
    damaged.synthesize(rng, frame);
    extractor.extract(frame, spectrum);
    if (pipeline.process(spectrum).drift_detected) {
      detected_at = i;
      break;
    }
  }
  EXPECT_GE(detected_at, 0);
}

}  // namespace
