// Tests for the extension detectors beyond the paper's baseline set:
// EDDM (error-distance) and KSWIN (sliding-window Kolmogorov–Smirnov).
#include <gtest/gtest.h>

#include "edgedrift/drift/eddm.hpp"
#include "edgedrift/drift/kswin.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::drift::Detection;
using edgedrift::drift::Eddm;
using edgedrift::drift::EddmConfig;
using edgedrift::drift::Kswin;
using edgedrift::drift::KswinConfig;
using edgedrift::drift::Observation;
using edgedrift::util::Rng;

Observation error_obs(bool error) {
  Observation obs;
  obs.error = error;
  return obs;
}

Observation score_obs(double score) {
  Observation obs;
  obs.anomaly_score = score;
  return obs;
}

// ----------------------------------------------------------------------EDDM

TEST(Eddm, LowFalsePositiveRateOnStableErrorGaps) {
  // EDDM is known to be false-positive prone on stationary streams (the
  // early high-water mark of p' + 2s' biases the ratio down as estimates
  // tighten); the realistic contract is a LOW rate with reset-on-drift,
  // not zero.
  Rng rng(1);
  Eddm eddm;
  int drifts = 0;
  for (int i = 0; i < 20000; ++i) {
    if (eddm.observe(error_obs(rng.bernoulli(0.05))).drift) {
      ++drifts;
      eddm.reset();  // As a retraining caller would.
    }
  }
  // ~33 warm-up segments of >= 30 errors each; EDDM's documented FP rate
  // with beta_d = 0.90 on geometric gaps is roughly one in four segments.
  EXPECT_LE(drifts, 12);
}

TEST(Eddm, FiresWhenErrorsBunchUp) {
  Rng rng(2);
  Eddm eddm;
  // Long stable phase with sparse errors.
  for (int i = 0; i < 10000; ++i) {
    eddm.observe(error_obs(rng.bernoulli(0.02)));
  }
  // Errors become 25x denser: gaps collapse.
  int detected_at = -1;
  for (int i = 0; i < 4000; ++i) {
    if (eddm.observe(error_obs(rng.bernoulli(0.5))).drift) {
      detected_at = i;
      break;
    }
  }
  ASSERT_GE(detected_at, 0);
  EXPECT_LT(detected_at, 600);
}

TEST(Eddm, WarningZoneExistsBetweenThresholds) {
  // With a wide gap between the warning and drift ratios, ratios inside
  // the band must produce warnings without drifts.
  Rng rng(3);
  EddmConfig config;
  config.warning_ratio = 0.999;  // Nearly any tightening warns.
  config.drift_ratio = 0.05;     // Essentially never drifts.
  Eddm eddm(config);
  for (int i = 0; i < 10000; ++i) {
    eddm.observe(error_obs(rng.bernoulli(0.02)));
  }
  bool warned = false;
  bool drifted = false;
  for (int i = 0; i < 4000; ++i) {
    const Detection d = eddm.observe(error_obs(rng.bernoulli(0.4)));
    warned |= d.warning;
    drifted |= d.drift;
  }
  EXPECT_TRUE(warned);
  EXPECT_FALSE(drifted);
}

TEST(Eddm, ResetClearsHistory) {
  Rng rng(4);
  Eddm eddm;
  for (int i = 0; i < 1000; ++i) {
    eddm.observe(error_obs(rng.bernoulli(0.1)));
  }
  eddm.reset();
  EXPECT_EQ(eddm.errors(), 0u);
  EXPECT_DOUBLE_EQ(eddm.mean_gap(), 0.0);
}

TEST(Eddm, MemoryIsConstant) {
  Eddm eddm;
  EXPECT_EQ(eddm.memory_bytes(), sizeof(Eddm));
}

// ---------------------------------------------------------------------KSWIN

TEST(Kswin, QuietOnStationaryScores) {
  Rng rng(5);
  Kswin kswin;
  int drifts = 0;
  for (int i = 0; i < 5000; ++i) {
    drifts += kswin.insert(rng.gaussian(1.0, 0.1)) ? 1 : 0;
  }
  // alpha = 0.005 over ~4900 tests: a handful of false positives are
  // statistically expected; demand a low rate, not zero.
  EXPECT_LE(drifts, 50);
}

TEST(Kswin, DetectsDistributionShiftQuickly) {
  Rng rng(6);
  Kswin kswin;
  for (int i = 0; i < 2000; ++i) kswin.insert(rng.gaussian(1.0, 0.1));
  int detected_at = -1;
  for (int i = 0; i < 500; ++i) {
    if (kswin.insert(rng.gaussian(2.0, 0.1))) {
      detected_at = i;
      break;
    }
  }
  ASSERT_GE(detected_at, 0);
  EXPECT_LT(detected_at, 60);
}

TEST(Kswin, WindowStaysBounded) {
  Rng rng(7);
  KswinConfig config;
  config.window_size = 80;
  config.stat_size = 20;
  Kswin kswin(config);
  for (int i = 0; i < 1000; ++i) kswin.insert(rng.gaussian());
  EXPECT_LE(kswin.window_fill(), 80u);
  EXPECT_LE(kswin.memory_bytes(), 80 * sizeof(double) + sizeof(Kswin));
}

TEST(Kswin, DriftDropsOldRegime) {
  Rng rng(8);
  KswinConfig config;
  config.window_size = 80;
  config.stat_size = 20;
  Kswin kswin(config);
  for (int i = 0; i < 200; ++i) kswin.insert(rng.gaussian(0.0, 0.1));
  bool fired = false;
  for (int i = 0; i < 200 && !fired; ++i) {
    fired = kswin.insert(rng.gaussian(3.0, 0.1));
  }
  ASSERT_TRUE(fired);
  // After the cut only the recent slice remains.
  EXPECT_EQ(kswin.window_fill(), config.stat_size);
}

TEST(Kswin, ObserveRoutesAnomalyScores) {
  Rng rng(9);
  Kswin kswin;
  bool fired = false;
  for (int i = 0; i < 2000; ++i) {
    kswin.observe(score_obs(rng.gaussian(0.5, 0.05)));
  }
  for (int i = 0; i < 300 && !fired; ++i) {
    fired = kswin.observe(score_obs(rng.gaussian(1.5, 0.05))).drift;
  }
  EXPECT_TRUE(fired);
}

TEST(Kswin, ResetEmptiesWindow) {
  Rng rng(10);
  Kswin kswin;
  for (int i = 0; i < 500; ++i) kswin.insert(rng.gaussian());
  kswin.reset();
  EXPECT_EQ(kswin.window_fill(), 0u);
  EXPECT_DOUBLE_EQ(kswin.last_ks_statistic(), 0.0);
}

}  // namespace
