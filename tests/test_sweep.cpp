// The sweep harness end to end on small compiled scenarios: single-pipeline
// cells, the PipelineManager replay path, determinism of the scored events,
// the scenario-major grid ordering and the versioned JSON rendering.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "edgedrift/data/scenario.hpp"
#include "edgedrift/eval/sweep.hpp"

namespace {

using namespace edgedrift;

/// A scenario small enough for sub-second cells but with an unmistakable
/// abrupt edge (magnitude 0.9 at burn_in = 800).
data::ScenarioSpec small_spec() {
  data::ScenarioSpec spec;
  spec.name = "sweep-small";
  spec.num_features = 6;
  spec.num_labels = 2;
  spec.train_size = 300;
  spec.n_instances = 2000;
  spec.burn_in = 800;
  spec.drift_magnitude_prior = 0.9;
  spec.divergence_window = 200;
  spec.seed = 41;
  return spec;
}

TEST(ScenarioSweep, SinglePipelineCellScoresTheScenario) {
  const data::CompiledScenario scenario = data::compile_scenario(small_spec());
  const eval::SweepCell cell =
      eval::run_sweep_cell(scenario, drift::DetectorKind::kCentroid);

  EXPECT_EQ(cell.scenario, "sweep-small");
  EXPECT_EQ(cell.kind, drift::DetectorKind::kCentroid);
  EXPECT_FALSE(cell.via_manager);
  EXPECT_EQ(cell.streams, 1u);
  EXPECT_DOUBLE_EQ(cell.calibrated_hellinger, 0.9);
  EXPECT_EQ(cell.metrics.stream_length, scenario.stream.size());
  EXPECT_EQ(cell.metrics.drift_points, scenario.annotations.size());
  EXPECT_TRUE(std::is_sorted(cell.detections.begin(), cell.detections.end()));
  EXPECT_GT(cell.throughput_rows_per_s, 0.0);
  // The event counts are consistent with the detection list.
  EXPECT_EQ(cell.metrics.detected + cell.metrics.extra_detections +
                cell.metrics.false_alarms,
            cell.detections.size());
}

TEST(ScenarioSweep, CentroidCatchesTheAbruptEdge) {
  const data::CompiledScenario scenario = data::compile_scenario(small_spec());
  const eval::SweepCell cell =
      eval::run_sweep_cell(scenario, drift::DetectorKind::kCentroid);
  ASSERT_EQ(cell.metrics.drift_points, 1u);
  EXPECT_EQ(cell.metrics.detected, 1u);
  EXPECT_GE(cell.metrics.delays[0], 0);
}

TEST(ScenarioSweep, ManagerReplayCoversEveryRowAndIsDeterministic) {
  data::ScenarioSpec spec = small_spec();
  spec.name = "sweep-managed";
  spec.traffic.pattern = data::ArrivalPattern::kPoisson;
  spec.traffic.streams = 4;
  spec.traffic.mean_batch = 8;
  const data::CompiledScenario scenario = data::compile_scenario(spec);

  const eval::SweepCell a =
      eval::run_sweep_cell(scenario, drift::DetectorKind::kDdm);
  EXPECT_TRUE(a.via_manager);
  EXPECT_EQ(a.streams, 4u);
  EXPECT_EQ(a.metrics.stream_length, scenario.stream.size());
  EXPECT_TRUE(std::is_sorted(a.detections.begin(), a.detections.end()));

  // Identical events and scores on a rerun; only the wall clock may move.
  const eval::SweepCell b =
      eval::run_sweep_cell(scenario, drift::DetectorKind::kDdm);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.metrics.detected, b.metrics.detected);
  EXPECT_EQ(a.metrics.delays, b.metrics.delays);
  EXPECT_EQ(a.metrics.false_alarms, b.metrics.false_alarms);
  EXPECT_DOUBLE_EQ(a.metrics.overall_accuracy, b.metrics.overall_accuracy);
}

TEST(ScenarioSweep, GridIsScenarioMajor) {
  data::ScenarioSpec first = small_spec();
  first.name = "grid-a";
  data::ScenarioSpec second = small_spec();
  second.name = "grid-b";
  second.seed = 42;
  const std::vector<data::ScenarioSpec> specs = {first, second};
  const std::vector<drift::DetectorKind> kinds = {
      drift::DetectorKind::kCentroid, drift::DetectorKind::kPageHinkley};

  const eval::SweepResult result = eval::run_sweep(specs, kinds);
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.cells[0].scenario, "grid-a");
  EXPECT_EQ(result.cells[0].kind, drift::DetectorKind::kCentroid);
  EXPECT_EQ(result.cells[1].scenario, "grid-a");
  EXPECT_EQ(result.cells[1].kind, drift::DetectorKind::kPageHinkley);
  EXPECT_EQ(result.cells[2].scenario, "grid-b");
  EXPECT_EQ(result.cells[3].scenario, "grid-b");
}

TEST(ScenarioSweep, JsonCarriesTheSchemaAndEveryCell) {
  const std::vector<data::ScenarioSpec> specs = {small_spec()};
  const std::vector<drift::DetectorKind> kinds = {
      drift::DetectorKind::kCentroid, drift::DetectorKind::kAdwin};
  const eval::SweepResult result = eval::run_sweep(specs, kinds);
  const std::string json = eval::sweep_json(result);

  EXPECT_NE(json.find("\"schema\": \"edgedrift-eval-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"sweep-small\""), std::string::npos);
  EXPECT_NE(json.find("\"detector\": \"centroid\""), std::string::npos);
  EXPECT_NE(json.find("\"detector\": \"adwin\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_delay\""), std::string::npos);
  EXPECT_NE(json.find("\"false_alarm_rate_per_1k\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery_accuracy\""), std::string::npos);
  EXPECT_NE(json.find("\"throughput_rows_per_s\""), std::string::npos);
}

}  // namespace
