// Tests for the clustering substrate: batch k-means / k-means++,
// sequential k-means (Algorithms 3-4 building blocks), and the diagonal GMM
// behind SPLL.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "edgedrift/cluster/gmm.hpp"
#include "edgedrift/cluster/kmeans.hpp"
#include "edgedrift/cluster/sequential_kmeans.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::cluster::DiagonalGmm;
using edgedrift::cluster::KMeansResult;
using edgedrift::cluster::SequentialKMeans;
using edgedrift::linalg::Matrix;
using edgedrift::util::Rng;

// Three well-separated blobs in 2-D.
Matrix three_blobs(Rng& rng, std::size_t per_blob = 50) {
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  Matrix x(3 * per_blob, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      x(b * per_blob + i, 0) = rng.gaussian(centers[b][0], 0.4);
      x(b * per_blob + i, 1) = rng.gaussian(centers[b][1], 0.4);
    }
  }
  return x;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  Rng rng(1);
  const Matrix x = three_blobs(rng);
  const KMeansResult result = edgedrift::cluster::kmeans(x, 3, rng);

  EXPECT_TRUE(result.converged);
  // Every blob's 50 points must share one cluster id.
  for (std::size_t b = 0; b < 3; ++b) {
    const int first = result.assignments[b * 50];
    for (std::size_t i = 1; i < 50; ++i) {
      EXPECT_EQ(result.assignments[b * 50 + i], first);
    }
  }
  // And the three blobs use three distinct ids.
  std::set<int> ids(result.assignments.begin(), result.assignments.end());
  EXPECT_EQ(ids.size(), 3u);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(2);
  const Matrix x = three_blobs(rng);
  const double inertia1 = edgedrift::cluster::kmeans(x, 1, rng).inertia;
  const double inertia3 = edgedrift::cluster::kmeans(x, 3, rng).inertia;
  EXPECT_LT(inertia3, inertia1 * 0.1);
}

TEST(KMeans, CountsSumToSampleCount) {
  Rng rng(3);
  const Matrix x = three_blobs(rng, 33);
  const KMeansResult result = edgedrift::cluster::kmeans(x, 3, rng);
  std::size_t total = 0;
  for (const auto c : result.counts) total += c;
  EXPECT_EQ(total, x.rows());
}

TEST(KMeans, PlusPlusSeedsAreDataPoints) {
  Rng rng(4);
  const Matrix x = three_blobs(rng, 20);
  const Matrix seeds = edgedrift::cluster::kmeans_plus_plus_seed(x, 3, rng);
  for (std::size_t s = 0; s < seeds.rows(); ++s) {
    bool found = false;
    for (std::size_t r = 0; r < x.rows() && !found; ++r) {
      found = edgedrift::linalg::squared_l2_distance(seeds.row(s),
                                                     x.row(r)) == 0.0;
    }
    EXPECT_TRUE(found) << "seed " << s << " is not a data point";
  }
}

TEST(KMeans, PlusPlusSpreadsSeedsAcrossBlobs) {
  Rng rng(5);
  const Matrix x = three_blobs(rng);
  // With well-separated blobs, k-means++ should almost always pick seeds
  // from three different blobs; verify across repeats.
  int good = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix seeds = edgedrift::cluster::kmeans_plus_plus_seed(x, 3, rng);
    std::set<int> blobs;
    for (std::size_t s = 0; s < 3; ++s) {
      const double x0 = seeds(s, 0);
      const double x1 = seeds(s, 1);
      if (x0 > 5.0) {
        blobs.insert(1);
      } else if (x1 > 5.0) {
        blobs.insert(2);
      } else {
        blobs.insert(0);
      }
    }
    if (blobs.size() == 3) ++good;
  }
  EXPECT_GE(good, 18);
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  Rng rng(6);
  Matrix x(40, 3);
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.uniform(0.0, 1.0);
  }
  const KMeansResult result = edgedrift::cluster::kmeans(x, 1, rng);
  for (std::size_t j = 0; j < 3; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < 40; ++i) mean += x(i, j);
    mean /= 40.0;
    EXPECT_NEAR(result.centroids(0, j), mean, 1e-9);
  }
}

TEST(KMeans, AssignToNearestAgainstKnownCentroids) {
  Matrix centroids{{0.0, 0.0}, {10.0, 10.0}};
  Matrix x{{1.0, 1.0}, {9.0, 9.5}, {-1.0, 0.5}};
  const auto assign = edgedrift::cluster::assign_to_nearest(x, centroids);
  EXPECT_EQ(assign[0], 0);
  EXPECT_EQ(assign[1], 1);
  EXPECT_EQ(assign[2], 0);
}

TEST(SequentialKMeans, UpdateMovesCentroidTowardSamples) {
  SequentialKMeans skm(2, 2);
  Matrix init{{0.0, 0.0}, {10.0, 10.0}};
  std::vector<std::size_t> counts{1, 1};
  skm.set_centroids(init, counts);

  // Stream points around (1, 1): cluster 0 should drift there.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x{rng.gaussian(1.0, 0.1), rng.gaussian(1.0, 0.1)};
    EXPECT_EQ(skm.update(x), 0u);
  }
  EXPECT_NEAR(skm.centroid(0)[0], 1.0, 0.1);
  EXPECT_NEAR(skm.centroid(0)[1], 1.0, 0.1);
  // Cluster 1 untouched.
  EXPECT_DOUBLE_EQ(skm.centroid(1)[0], 10.0);
  EXPECT_EQ(skm.count(1), 1u);
}

TEST(SequentialKMeans, RunningMeanIsExactMean) {
  SequentialKMeans skm(1, 1);
  const std::vector<double> values{3.0, 5.0, 7.0, 9.0};
  for (const double v : values) {
    std::vector<double> x{v};
    skm.update(x);
  }
  EXPECT_DOUBLE_EQ(skm.centroid(0)[0], 6.0);
  EXPECT_EQ(skm.count(0), 4u);
}

TEST(SequentialKMeans, SpreadInitMaximizesPairwiseDistance) {
  SequentialKMeans skm(3, 1);
  // All coords start at 0; feeding spread-out points must place them.
  std::vector<double> a{0.0}, b{10.0}, c{-10.0}, mid{1.0};
  skm.spread_init(a);
  skm.spread_init(b);
  skm.spread_init(c);
  const double spread = skm.pairwise_l1_spread();
  EXPECT_DOUBLE_EQ(spread, 40.0);  // |0-10| + |0+10| + |10+10| = 40.

  // A midpoint sample cannot improve the spread, so it must be rejected.
  EXPECT_EQ(skm.spread_init(mid), -1);
  EXPECT_DOUBLE_EQ(skm.pairwise_l1_spread(), 40.0);
}

TEST(SequentialKMeans, SpreadInitReplacesWorstCoordinate) {
  SequentialKMeans skm(2, 1);
  std::vector<double> a{1.0}, b{2.0}, far{100.0};
  skm.spread_init(a);   // coords ~ {1, 0}
  skm.spread_init(b);   // improves to {1, 2} or similar
  skm.spread_init(far); // must replace the coordinate nearer the other one
  EXPECT_GE(skm.pairwise_l1_spread(), 98.0);
}

TEST(SequentialKMeans, PermutationReordersClusters) {
  SequentialKMeans skm(2, 2);
  Matrix init{{1.0, 2.0}, {3.0, 4.0}};
  std::vector<std::size_t> counts{5, 9};
  skm.set_centroids(init, counts);
  const std::vector<std::size_t> perm{1, 0};
  skm.apply_permutation(perm);
  EXPECT_DOUBLE_EQ(skm.centroid(0)[0], 3.0);
  EXPECT_DOUBLE_EQ(skm.centroid(1)[1], 2.0);
  EXPECT_EQ(skm.count(0), 9u);
  EXPECT_EQ(skm.count(1), 5u);
}

TEST(SequentialKMeans, MemoryIsConstantInSampleCount) {
  SequentialKMeans skm(2, 8);
  const std::size_t before = skm.memory_bytes();
  Rng rng(8);
  std::vector<double> x(8);
  for (int i = 0; i < 1000; ++i) {
    for (auto& v : x) v = rng.gaussian();
    skm.update(x);
  }
  EXPECT_EQ(skm.memory_bytes(), before);
}

TEST(Gmm, FromClustersMatchesClusterStatistics) {
  Rng rng(9);
  const Matrix x = three_blobs(rng, 60);
  const auto km = edgedrift::cluster::kmeans(x, 3, rng);
  const DiagonalGmm gmm =
      DiagonalGmm::from_clusters(x, km.assignments, 3);

  EXPECT_EQ(gmm.components(), 3u);
  // Weights sum to one.
  double weight_sum = 0.0;
  for (std::size_t c = 0; c < 3; ++c) weight_sum += gmm.weight(c);
  EXPECT_NEAR(weight_sum, 1.0, 1e-12);
  // Means agree with the k-means centroids.
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(gmm.mean(c)[0], km.centroids(c, 0), 1e-9);
    EXPECT_NEAR(gmm.mean(c)[1], km.centroids(c, 1), 1e-9);
  }
}

TEST(Gmm, MahalanobisSmallInsideClusterLargeOutside) {
  Rng rng(10);
  const Matrix x = three_blobs(rng, 60);
  const auto km = edgedrift::cluster::kmeans(x, 3, rng);
  const DiagonalGmm gmm = DiagonalGmm::from_clusters(x, km.assignments, 3);

  // A point at a blob center: tiny distance.
  EXPECT_LT(gmm.min_mahalanobis_sq(std::vector<double>{0.0, 0.0}), 2.0);
  // A point far from every blob: huge distance.
  EXPECT_GT(gmm.min_mahalanobis_sq(std::vector<double>{30.0, 30.0}), 100.0);
}

TEST(Gmm, LogDensityHigherOnData) {
  Rng rng(11);
  const Matrix x = three_blobs(rng, 60);
  const auto km = edgedrift::cluster::kmeans(x, 3, rng);
  const DiagonalGmm gmm = DiagonalGmm::from_clusters(x, km.assignments, 3);
  const double on = gmm.log_density(std::vector<double>{0.0, 0.0});
  const double off = gmm.log_density(std::vector<double>{25.0, 25.0});
  EXPECT_GT(on, off + 50.0);
}

TEST(Gmm, EmImprovesOverInitOnOverlappingData) {
  Rng rng(12);
  // Two overlapping blobs with different spreads.
  Matrix x(200, 2);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.gaussian(0.0, 0.5);
    x(i, 1) = rng.gaussian(0.0, 0.5);
    x(100 + i, 0) = rng.gaussian(3.0, 1.5);
    x(100 + i, 1) = rng.gaussian(3.0, 1.5);
  }
  const DiagonalGmm gmm = DiagonalGmm::fit_em(x, 2, rng);
  EXPECT_EQ(gmm.components(), 2u);
  // Mean log density on the training data should be reasonable (finite,
  // better than a single wide Gaussian fit far away).
  const double mld = gmm.mean_log_density(x);
  EXPECT_TRUE(std::isfinite(mld));
  EXPECT_GT(mld, -6.0);
}

TEST(Gmm, MeanLogDensityDropsUnderShift) {
  Rng rng(13);
  const Matrix x = three_blobs(rng, 60);
  const auto km = edgedrift::cluster::kmeans(x, 3, rng);
  const DiagonalGmm gmm = DiagonalGmm::from_clusters(x, km.assignments, 3);

  Matrix shifted = x;
  for (std::size_t i = 0; i < shifted.rows(); ++i) {
    shifted(i, 0) += 5.0;
  }
  EXPECT_LT(gmm.mean_log_density(shifted), gmm.mean_log_density(x) - 10.0);
}

}  // namespace
