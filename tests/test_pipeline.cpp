// Integration tests of the full proposed system (core::Pipeline):
// fit -> stream -> detect -> reconstruct -> recover.
#include <gtest/gtest.h>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/core/version.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/eval/metrics.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::core::Pipeline;
using edgedrift::core::PipelineConfig;
using edgedrift::core::PipelineStep;
using edgedrift::data::Dataset;
using edgedrift::data::GaussianClass;
using edgedrift::data::GaussianConcept;
using edgedrift::util::Rng;

// Two 8-D classes; the post concept shifts both off-manifold and pulls
// class 1 toward class 0's old anchor (the NSL-KDD-like failure mode).
GaussianConcept pre_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  a.stddev = {0.15};
  GaussianClass b;
  b.mean.assign(8, 1.2);
  b.stddev = {0.15};
  return GaussianConcept({a, b});
}

GaussianConcept post_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  for (std::size_t j = 0; j < 8; j += 2) a.mean[j] += 0.9;
  a.stddev = {0.2};
  GaussianClass b;
  b.mean.assign(8, 0.2 + 0.35);  // Pulled toward old class 0.
  for (std::size_t j = 0; j < 8; j += 2) b.mean[j] += 0.9;
  b.stddev = {0.2};
  return GaussianConcept({a, b});
}

PipelineConfig make_config() {
  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = 8;
  config.hidden_dim = 12;
  config.window_size = 40;
  config.detector_initial_count = 0;
  config.reconstruction.n_search = 20;
  config.reconstruction.n_update = 100;
  config.reconstruction.n_total = 400;
  config.seed = 7;
  return config;
}

struct Scenario {
  Dataset train;
  Dataset test;
  std::size_t drift_at;
};

Scenario make_scenario(Rng& rng, std::size_t pre = 1200, std::size_t post = 1600) {
  Scenario s;
  s.train = edgedrift::data::draw(pre_concept(), 600, rng);
  s.test = edgedrift::data::make_sudden_drift(pre_concept(), post_concept(),
                                              pre + post, pre, rng);
  s.drift_at = pre;
  return s;
}

TEST(Pipeline, FitCalibratesThresholds) {
  Rng rng(1);
  auto scenario = make_scenario(rng);
  Pipeline pipeline(make_config());
  pipeline.fit(scenario.train.x, scenario.train.labels);
  EXPECT_TRUE(pipeline.fitted());
  EXPECT_GT(pipeline.theta_error(), 0.0);
  EXPECT_GT(pipeline.centroid_detector()->theta_drift(), 0.0);
}

TEST(Pipeline, AccurateAndQuietBeforeDrift) {
  Rng rng(2);
  auto scenario = make_scenario(rng);
  Pipeline pipeline(make_config());
  pipeline.fit(scenario.train.x, scenario.train.labels);

  std::size_t hits = 0;
  int drifts = 0;
  for (std::size_t i = 0; i < scenario.drift_at; ++i) {
    const PipelineStep step = pipeline.process(scenario.test.x.row(i));
    if (static_cast<int>(step.prediction.label) == scenario.test.labels[i]) {
      ++hits;
    }
    drifts += step.drift_detected ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(hits) / scenario.drift_at, 0.95);
  EXPECT_EQ(drifts, 0);
}

TEST(Pipeline, DetectsDriftAndRecoversAccuracy) {
  Rng rng(3);
  auto scenario = make_scenario(rng);
  Pipeline pipeline(make_config());
  pipeline.fit(scenario.train.x, scenario.train.labels);

  edgedrift::eval::StreamingAccuracy accuracy;
  edgedrift::eval::DetectionLog detections;
  bool saw_reconstruction = false;
  for (std::size_t i = 0; i < scenario.test.size(); ++i) {
    const PipelineStep step = pipeline.process(scenario.test.x.row(i));
    accuracy.record(static_cast<int>(step.prediction.label) ==
                    scenario.test.labels[i]);
    if (step.drift_detected) detections.record(i);
    saw_reconstruction |= step.reconstruction_finished;
  }

  const auto delay = detections.delay(scenario.drift_at);
  ASSERT_TRUE(delay.has_value()) << "drift never detected";
  EXPECT_TRUE(saw_reconstruction);
  EXPECT_EQ(detections.false_alarms(scenario.drift_at), 0u);

  // Accuracy in the final quarter (after reconstruction) must recover to
  // near the pre-drift level.
  const double tail = accuracy.range(scenario.test.size() * 3 / 4,
                                     scenario.test.size());
  EXPECT_GT(tail, 0.85);
}

TEST(Pipeline, BaselineWithoutRetrainingStaysDegraded) {
  // Sanity companion to the recovery test: a static model on the same
  // stream must do much worse after the drift.
  Rng rng(3);  // Same seed: same scenario as the recovery test.
  auto scenario = make_scenario(rng);
  Pipeline pipeline(make_config());
  pipeline.fit(scenario.train.x, scenario.train.labels);

  std::size_t tail_hits = 0;
  const std::size_t tail_start = scenario.test.size() * 3 / 4;
  for (std::size_t i = tail_start; i < scenario.test.size(); ++i) {
    // Query the model directly — no detector, no retraining.
    const auto pred = pipeline.model().predict(scenario.test.x.row(i));
    if (static_cast<int>(pred.label) == scenario.test.labels[i]) ++tail_hits;
  }
  const double tail_accuracy =
      static_cast<double>(tail_hits) /
      static_cast<double>(scenario.test.size() - tail_start);
  EXPECT_LT(tail_accuracy, 0.85);
}

TEST(Pipeline, StageTimerCollectsBreakdown) {
  Rng rng(4);
  auto scenario = make_scenario(rng, 400, 1000);
  Pipeline pipeline(make_config());
  pipeline.fit(scenario.train.x, scenario.train.labels);

  edgedrift::util::StageTimer timer;
  pipeline.set_stage_timer(&timer);
  for (std::size_t i = 0; i < scenario.test.size(); ++i) {
    pipeline.process(scenario.test.x.row(i));
  }
  // Prediction and distance stages ran for (almost) every non-recon sample.
  EXPECT_GT(timer.count(Pipeline::kStagePredict), 100u);
  EXPECT_GT(timer.count(Pipeline::kStageDistance), 100u);
  // If a drift fired, the reconstruction stages also ran.
  if (timer.count(Pipeline::kStageInitCoord) > 0) {
    EXPECT_GT(timer.count(Pipeline::kStageRetrainPredict), 0u);
  }
}

TEST(Pipeline, MemoryFitsRaspberryPiPicoBudget) {
  // The headline deployment claim: model + detector + reconstruction state
  // for the NSL-KDD configuration (38-22-38, C=2) fits 264 kB.
  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = 38;
  config.hidden_dim = 22;
  Pipeline pipeline(config);
  EXPECT_LT(pipeline.memory_bytes(), 264u * 1024u);
}

TEST(Pipeline, ReconstructionConsumesConfiguredSamples) {
  Rng rng(5);
  auto scenario = make_scenario(rng);
  auto config = make_config();
  Pipeline pipeline(config);
  pipeline.fit(scenario.train.x, scenario.train.labels);

  std::ptrdiff_t recon_started = -1;
  std::ptrdiff_t recon_finished = -1;
  for (std::size_t i = 0; i < scenario.test.size(); ++i) {
    const PipelineStep step = pipeline.process(scenario.test.x.row(i));
    if (step.drift_detected && recon_started < 0) {
      recon_started = static_cast<std::ptrdiff_t>(i);
    }
    if (step.reconstruction_finished && recon_finished < 0) {
      recon_finished = static_cast<std::ptrdiff_t>(i);
    }
  }
  ASSERT_GE(recon_started, 0);
  ASSERT_GE(recon_finished, 0);
  EXPECT_EQ(recon_finished - recon_started,
            static_cast<std::ptrdiff_t>(config.reconstruction.n_total));
}

TEST(Pipeline, VersionConstantsExposed) {
  EXPECT_EQ(edgedrift::kVersionMajor, 1);
  EXPECT_STREQ(edgedrift::kVersionString, "1.0.0");
}

}  // namespace
