// LRU eviction / cold-restore semantics of the sharded serving layer
// (core::PipelineManager with hot_stream_budget / evict() / seed_cold_from):
// the evict->restore round trip must be bit-identical at kExactF64 and
// drift-decision-equivalent at kFastF32/kQuantI8, the hot set must track
// LRU order under the budget, stats must carry across residency cycles, a
// corrupted spill file must surface kRestoreFailed instead of crashing, and
// eviction must stay data-race-free against concurrent submits and stats()
// (this file runs under TSan and ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/linalg/numerics.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::core::DispatchMode;
using edgedrift::core::ManagerOptions;
using edgedrift::core::Pipeline;
using edgedrift::core::PipelineConfig;
using edgedrift::core::PipelineManager;
using edgedrift::core::PipelineStep;
using edgedrift::core::SubmitStatus;
using edgedrift::data::Dataset;
using edgedrift::data::GaussianClass;
using edgedrift::data::GaussianConcept;
using edgedrift::linalg::NumericsTier;
using edgedrift::util::Rng;

GaussianConcept pre_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  a.stddev = {0.15};
  GaussianClass b;
  b.mean.assign(8, 1.2);
  b.stddev = {0.15};
  return GaussianConcept({a, b});
}

GaussianConcept post_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  for (std::size_t j = 0; j < 8; j += 2) a.mean[j] += 0.9;
  a.stddev = {0.2};
  GaussianClass b;
  b.mean.assign(8, 0.55);
  for (std::size_t j = 0; j < 8; j += 2) b.mean[j] += 0.9;
  b.stddev = {0.2};
  return GaussianConcept({a, b});
}

PipelineConfig make_config() {
  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = 8;
  config.hidden_dim = 12;
  config.window_size = 40;
  config.detector_initial_count = 0;
  config.reconstruction.n_search = 20;
  config.reconstruction.n_update = 100;
  config.reconstruction.n_total = 400;
  config.seed = 7;
  return config;
}

struct StreamData {
  Dataset train;
  Dataset test;
};

StreamData make_drift_stream(std::size_t seed, std::size_t samples = 1500) {
  Rng rng(seed);
  StreamData s;
  s.train = edgedrift::data::draw(pre_concept(), 600, rng);
  s.test = edgedrift::data::make_sudden_drift(pre_concept(), post_concept(),
                                              samples, samples / 2, rng);
  return s;
}

void expect_steps_equal(const std::vector<PipelineStep>& actual,
                        const std::vector<PipelineStep>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    EXPECT_EQ(actual[i].prediction.label, expected[i].prediction.label);
    EXPECT_EQ(actual[i].prediction.score, expected[i].prediction.score);
    EXPECT_EQ(actual[i].drift_detected, expected[i].drift_detected);
    EXPECT_EQ(actual[i].reconstructing, expected[i].reconstructing);
    EXPECT_EQ(actual[i].reconstruction_finished,
              expected[i].reconstruction_finished);
  }
}

/// Runs `data` through a one-stream manager with evictions forced at each
/// index in `evict_at` (sorted), returning the full step sequence. Every
/// forced eviction must succeed, and the stream must come back
/// transparently on the next submit.
std::vector<PipelineStep> run_with_evictions(
    const PipelineConfig& config, const ManagerOptions& options,
    const StreamData& data, const std::vector<std::size_t>& evict_at) {
  PipelineManager manager(config, 1, options);
  manager.fit(0, data.train.x, data.train.labels);
  std::size_t next_evict = 0;
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    if (next_evict < evict_at.size() && i == evict_at[next_evict]) {
      manager.drain();
      EXPECT_TRUE(manager.evict(0)) << "eviction refused at sample " << i;
      EXPECT_FALSE(manager.resident(0));
      ++next_evict;
    }
    SubmitStatus status = SubmitStatus::kOk;
    EXPECT_TRUE(manager.submit(0, data.test.x.row(i), -1, &status));
    EXPECT_EQ(status, SubmitStatus::kOk);
  }
  manager.drain();
  EXPECT_TRUE(manager.resident(0));
  return manager.take_steps(0);
}

// The f64 contract: interrupting a stream with evict -> cold store ->
// restore cycles must not perturb a single bit of any step. The reference
// is a plain sequential Pipeline fed the same samples.
TEST(Eviction, EvictRestoreRoundTripIsBitIdenticalAtF64) {
  const StreamData data = make_drift_stream(100);
  const PipelineConfig config = make_config();

  Pipeline reference(config);
  reference.fit(data.train.x, data.train.labels);
  std::vector<PipelineStep> expected;
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    expected.push_back(reference.process(data.test.x.row(i)));
  }

  // Evictions straddle the quiet phase, the drift point, and the
  // post-recovery regime.
  const std::vector<std::size_t> evict_at = {120, 700, 1300};
  const auto actual =
      run_with_evictions(config, ManagerOptions{}, data, evict_at);
  expect_steps_equal(actual, expected);
}

/// Drift positions and predicted labels of a step sequence.
struct DecisionTrace {
  std::vector<std::size_t> drift_positions;
  std::vector<int> labels;
};

DecisionTrace trace_of(const std::vector<PipelineStep>& steps) {
  DecisionTrace t;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    t.labels.push_back(steps[i].prediction.label);
    if (steps[i].drift_detected) t.drift_positions.push_back(i);
  }
  return t;
}

/// The reduced-precision contract: same drift events (within a small
/// detection shift), near-total label agreement. The restored replica is
/// requantized from the persisted f64 masters, so it may differ at the last
/// bit from the incrementally-refreshed live replica — decisions, not bits,
/// are what the tier guarantees (linalg/numerics.hpp).
void check_decision_equivalent_under_eviction(NumericsTier tier) {
  const StreamData data = make_drift_stream(200);
  ManagerOptions options;
  options.numerics = tier;

  PipelineManager uninterrupted(make_config(), 1, options);
  uninterrupted.fit(0, data.train.x, data.train.labels);
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    uninterrupted.submit(0, data.test.x.row(i));
  }
  uninterrupted.drain();
  const DecisionTrace ref = trace_of(uninterrupted.take_steps(0));
  ASSERT_GE(ref.drift_positions.size(), 1u)
      << "scenario must actually drift or the comparison is vacuous";

  const std::vector<std::size_t> evict_at = {120, 700, 1300};
  const DecisionTrace evicted = trace_of(
      run_with_evictions(make_config(), options, data, evict_at));

  ASSERT_EQ(evicted.drift_positions.size(), ref.drift_positions.size());
  for (std::size_t d = 0; d < ref.drift_positions.size(); ++d) {
    const std::size_t a = ref.drift_positions[d];
    const std::size_t b = evicted.drift_positions[d];
    EXPECT_LE(a > b ? a - b : b - a, 25u) << "drift event " << d;
  }
  ASSERT_EQ(evicted.labels.size(), ref.labels.size());
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < ref.labels.size(); ++i) {
    if (ref.labels[i] != evicted.labels[i]) ++disagreements;
  }
  EXPECT_LE(disagreements, ref.labels.size() / 200)
      << "label agreement below 99.5%";
}

TEST(Eviction, EvictRestoreKeepsDriftDecisionsAtF32) {
  check_decision_equivalent_under_eviction(NumericsTier::kFastF32);
}

TEST(Eviction, EvictRestoreKeepsDriftDecisionsAtI8) {
  check_decision_equivalent_under_eviction(NumericsTier::kQuantI8);
}

// Pipeline counters must accumulate across residency cycles: stats(id)
// reports carried + live, totals() sums hot and cold streams alike.
TEST(Eviction, StatsCarryAcrossEvictRestoreCycles) {
  const StreamData data = make_drift_stream(300, 600);
  PipelineManager manager(make_config(), 1);
  manager.fit(0, data.train.x, data.train.labels);

  for (std::size_t i = 0; i < 200; ++i) {
    manager.submit(0, data.test.x.row(i));
  }
  manager.drain();
  ASSERT_TRUE(manager.evict(0));
  EXPECT_EQ(manager.stats(0).samples, 200u);  // Carried while cold.
  EXPECT_EQ(manager.totals().samples, 200u);

  for (std::size_t i = 200; i < 600; ++i) {
    manager.submit(0, data.test.x.row(i));
  }
  manager.drain();
  EXPECT_EQ(manager.stats(0).samples, 600u);  // Carried + live.
  EXPECT_EQ(manager.totals().samples, 600u);

  const edgedrift::obs::Snapshot snap = manager.stats();
  ASSERT_EQ(snap.streams.size(), 1u);
  ASSERT_EQ(snap.shards.size(), 1u);
  EXPECT_EQ(snap.shards[0].evictions, 1u);
  EXPECT_EQ(snap.shards[0].restores, 1u);
  EXPECT_EQ(snap.shards[0].hot_streams, 1u);
  EXPECT_EQ(snap.shards[0].cold_streams, 0u);
  // The eviction/restore latency histograms must record exactly one sample
  // per transition, with a sane (non-zero, bounded) magnitude — the
  // restore-latency surface the density benchmarks gate on.
  EXPECT_EQ(snap.shards[0].evict_ns.count(), 1u);
  ASSERT_EQ(snap.shards[0].restore_ns.count(), 1u);
  EXPECT_GT(snap.shards[0].restore_ns.max_ns, 0u);
  EXPECT_LT(snap.shards[0].restore_ns.mean_ns(), 1e9);  // < 1 s each.
}

// With a hot budget under manual dispatch the resident set must be exactly
// the budget's worth of most-recently-drained streams — the LRU property,
// checked against a model of the expected recency order at every step.
TEST(Eviction, HotSetTracksLruOrderUnderBudget) {
  constexpr std::size_t kStreams = 5;
  constexpr std::size_t kBudget = 2;
  const StreamData data = make_drift_stream(400, 300);

  ManagerOptions options;
  options.dispatch = DispatchMode::kManual;
  options.hot_stream_budget = kBudget;

  PipelineManager manager(make_config(), kStreams, options);
  for (std::size_t s = 0; s < kStreams; ++s) {
    manager.fit(s, data.train.x, data.train.labels);
  }

  // A deterministic pseudo-random stream schedule; the model below tracks
  // most-recently-used order by hand.
  Rng rng(9);
  std::vector<std::size_t> recency;  // Front = most recent.
  std::size_t row = 0;
  for (std::size_t step = 0; step < 200; ++step) {
    const std::size_t s =
        static_cast<std::size_t>(rng.uniform() * kStreams) % kStreams;
    ASSERT_TRUE(manager.submit(s, data.test.x.row(row)));
    row = (row + 1) % data.test.size();
    manager.poll(s);

    auto it = std::find(recency.begin(), recency.end(), s);
    if (it != recency.end()) recency.erase(it);
    recency.insert(recency.begin(), s);

    EXPECT_LE(manager.hot_streams(), kBudget);
    for (std::size_t r = 0; r < recency.size(); ++r) {
      SCOPED_TRACE("step " + std::to_string(step) + " recency rank " +
                   std::to_string(r));
      EXPECT_EQ(manager.resident(recency[r]), r < kBudget);
    }
  }
  EXPECT_EQ(manager.hot_streams() + manager.cold_streams(), kStreams);
}

// evict() refuses streams that are not evictable: unknown ids, already-cold
// streams, and unfitted pipelines (nothing serializable yet).
TEST(Eviction, EvictRefusesIneligibleStreams) {
  const StreamData data = make_drift_stream(500, 200);
  PipelineManager manager(make_config(), 2);
  manager.fit(0, data.train.x, data.train.labels);
  // Stream 1 stays unfitted.

  EXPECT_FALSE(manager.evict(99));  // Unknown id.
  EXPECT_FALSE(manager.evict(1));   // Unfitted — nothing to serialize.
  EXPECT_TRUE(manager.resident(1));

  ASSERT_TRUE(manager.evict(0));
  EXPECT_FALSE(manager.evict(0));  // Already cold.
  EXPECT_FALSE(manager.resident(0));
}

// Cold blobs spill to disk when a spill dir is configured; a truncated
// spill file must surface SubmitStatus::kRestoreFailed on the next submit
// instead of crashing, and the stream must stay addressable (cold).
TEST(Eviction, CorruptSpillFileReportsRestoreFailed) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "edgedrift-eviction-spill";
  fs::create_directories(dir);

  const StreamData data = make_drift_stream(600, 200);
  ManagerOptions options;
  options.cold_spill_dir = dir.string();

  PipelineManager manager(make_config(), 1, options);
  manager.fit(0, data.train.x, data.train.labels);
  for (std::size_t i = 0; i < 50; ++i) manager.submit(0, data.test.x.row(i));
  manager.drain();
  ASSERT_TRUE(manager.evict(0));

  const fs::path blob = dir / "edgedrift-stream-0.ckpt";
  ASSERT_TRUE(fs::exists(blob)) << "eviction must have spilled to disk";
  ASSERT_GT(fs::file_size(blob), 64u);
  fs::resize_file(blob, fs::file_size(blob) / 2);  // Truncate: corrupt.

  SubmitStatus status = SubmitStatus::kOk;
  EXPECT_FALSE(manager.submit(0, data.test.x.row(50), -1, &status));
  EXPECT_EQ(status, SubmitStatus::kRestoreFailed);
  EXPECT_FALSE(manager.resident(0));

  const edgedrift::obs::Snapshot snap = manager.stats();
  ASSERT_EQ(snap.shards.size(), 1u);
  EXPECT_GE(snap.shards[0].restore_failures, 1u);
  fs::remove_all(dir);
}

// seed_cold_from registers a large population cold from one serialized
// template; any seeded id becomes an independent resident pipeline on its
// first submit.
TEST(Eviction, SeedColdFromRegistersPopulationCold) {
  const StreamData data = make_drift_stream(700, 200);
  ManagerOptions options;
  options.hot_stream_budget = 4;
  PipelineManager manager(make_config(), 1, options);
  manager.fit(0, data.train.x, data.train.labels);

  const std::size_t first = manager.seed_cold_from(0, 500);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(manager.num_streams(), 501u);
  EXPECT_EQ(manager.hot_streams(), 1u);
  EXPECT_EQ(manager.cold_streams(), 500u);

  // Touch a handful of seeded streams: each restores from the template and
  // processes on its own.
  for (std::size_t id : {first, first + 123, first + 499}) {
    SubmitStatus status = SubmitStatus::kOk;
    ASSERT_TRUE(manager.submit(id, data.test.x.row(0), -1, &status));
    EXPECT_EQ(status, SubmitStatus::kOk);
  }
  manager.drain();
  for (std::size_t id : {first, first + 123, first + 499}) {
    EXPECT_EQ(manager.stats(id).samples, 1u);
  }
  // The budget kept the hot set bounded despite the restores.
  EXPECT_LE(manager.hot_streams(), options.hot_stream_budget);
  EXPECT_EQ(manager.hot_streams() + manager.cold_streams(), 501u);
}

// The race surface of the eviction layer: concurrent producers, a stats()
// poller, and an evictor hammering the same small hot budget. Run under
// TSan in CI; the invariant checked here is only that no sample is lost.
TEST(Eviction, EvictionRacesSubmitAndStats) {
  constexpr std::size_t kStreams = 6;
  constexpr std::size_t kPerStream = 300;
  const StreamData data = make_drift_stream(800, 400);

  ManagerOptions options;
  options.shards = 2;
  options.hot_stream_budget = 1;
  options.queue_capacity = 32;

  PipelineManager manager(make_config(), kStreams, options);
  for (std::size_t s = 0; s < kStreams; ++s) {
    manager.fit(s, data.train.x, data.train.labels);
  }

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      const edgedrift::obs::Snapshot snap = manager.stats();
      ASSERT_EQ(snap.shards.size(), 2u);
      (void)manager.hot_streams();
    }
  });
  std::thread evictor([&] {
    std::size_t id = 0;
    while (!stop.load()) {
      (void)manager.evict(id);
      id = (id + 1) % kStreams;
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < 2; ++t) {
    producers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerStream; ++i) {
        for (std::size_t s = t; s < kStreams; s += 2) {
          ASSERT_TRUE(manager.submit(s, data.test.x.row(i % 400)));
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  stop.store(true);
  poller.join();
  evictor.join();
  manager.drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    EXPECT_EQ(manager.stats(s).samples, kPerStream) << "stream " << s;
  }
  EXPECT_EQ(manager.totals().samples, kStreams * kPerStream);
}

}  // namespace
