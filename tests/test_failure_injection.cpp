// Failure-injection tests: the library's contract violations must fail
// loudly (EDGEDRIFT_ASSERT aborts) instead of corrupting numerics, and the
// I/O paths must reject malformed inputs instead of crashing.
#include <gtest/gtest.h>

#include <fstream>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/csv.hpp"
#include "edgedrift/drift/centroid_detector.hpp"
#include "edgedrift/drift/quanttree.hpp"
#include "edgedrift/drift/spll.hpp"
#include "edgedrift/linalg/solve.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/oselm/oselm.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::linalg::Matrix;
using edgedrift::util::Rng;

// NOTE: EDGEDRIFT_ASSERT is active in release builds, so death tests work
// regardless of NDEBUG.
using DeathTest = ::testing::Test;

TEST(FailureInjection, OsElmPredictBeforeInitAborts) {
  Rng rng(1);
  auto proj = edgedrift::oselm::make_projection(
      4, 3, edgedrift::oselm::Activation::kSigmoid, rng);
  edgedrift::oselm::OsElmConfig config;
  config.output_dim = 2;
  edgedrift::oselm::OsElm net(proj, config);
  std::vector<double> x(4), y(2);
  EXPECT_DEATH(net.predict(x, y), "predict\\(\\) before initialization");
}

TEST(FailureInjection, OsElmDimensionMismatchAborts) {
  Rng rng(2);
  auto proj = edgedrift::oselm::make_projection(
      4, 3, edgedrift::oselm::Activation::kSigmoid, rng);
  edgedrift::oselm::OsElmConfig config;
  config.output_dim = 2;
  edgedrift::oselm::OsElm net(proj, config);
  net.init_sequential();
  std::vector<double> wrong_x(5), t(2);
  EXPECT_DEATH(net.train(wrong_x, t), "x size mismatch");
}

TEST(FailureInjection, OsElmRejectsInvalidForgettingFactor) {
  Rng rng(3);
  auto proj = edgedrift::oselm::make_projection(
      4, 3, edgedrift::oselm::Activation::kSigmoid, rng);
  edgedrift::oselm::OsElmConfig config;
  config.output_dim = 2;
  config.forgetting_factor = 1.5;
  EXPECT_DEATH(edgedrift::oselm::OsElm(proj, config),
               "forgetting factor");
}

TEST(FailureInjection, ModelInitTrainRequiresEveryLabel) {
  Rng rng(4);
  auto proj = edgedrift::oselm::make_projection(
      4, 3, edgedrift::oselm::Activation::kSigmoid, rng);
  edgedrift::model::MultiInstanceModel model(2, proj);
  Matrix x(10, 4);
  std::vector<int> labels(10, 0);  // Label 1 never appears.
  EXPECT_DEATH(model.init_train(x, labels),
               "every label needs initial samples");
}

TEST(FailureInjection, ModelRejectsOutOfRangeLabel) {
  Rng rng(5);
  auto proj = edgedrift::oselm::make_projection(
      4, 3, edgedrift::oselm::Activation::kSigmoid, rng);
  edgedrift::model::MultiInstanceModel model(2, proj);
  model.init_sequential();
  std::vector<double> x(4);
  EXPECT_DEATH(model.train_label(x, 7), "label out of range");
}

TEST(FailureInjection, DetectorObserveBeforeCalibrateAborts) {
  edgedrift::drift::CentroidDetectorConfig config;
  config.num_labels = 2;
  config.dim = 3;
  edgedrift::drift::CentroidDetector detector(config);
  std::vector<double> x(3);
  edgedrift::drift::Observation obs;
  obs.x = x;
  obs.predicted_label = 0;
  EXPECT_DEATH(detector.observe(obs), "observe\\(\\) before calibrate");
}

TEST(FailureInjection, QuantTreeNeedsEnoughReference) {
  edgedrift::drift::QuantTreeConfig config;
  config.num_bins = 16;
  edgedrift::drift::QuantTree qt(config);
  Matrix tiny(4, 3);  // Fewer rows than bins.
  EXPECT_DEATH(qt.fit(tiny), "at least K samples");
}

TEST(FailureInjection, QuantTreeSurvivesConstantReference) {
  // Degenerate (all-identical) reference data: the tree must still build
  // and streaming must not crash (everything lands in few bins).
  edgedrift::drift::QuantTreeConfig config;
  config.num_bins = 8;
  config.batch_size = 16;
  edgedrift::drift::QuantTree qt(config);
  Matrix constant(100, 3, /*fill=*/1.0);
  qt.fit(constant);
  edgedrift::drift::Observation obs;
  std::vector<double> x(3, 1.0);
  obs.x = x;
  for (int i = 0; i < 64; ++i) {
    qt.observe(obs);  // Must not crash; detection value is unspecified.
  }
  SUCCEED();
}

TEST(FailureInjection, SpllSurvivesTinyReference) {
  edgedrift::drift::SpllConfig config;
  config.num_clusters = 2;
  config.batch_size = 8;
  config.bootstrap_trials = 50;
  edgedrift::drift::Spll spll(config);
  Rng rng(6);
  const Matrix reference = Matrix::random_gaussian(10, 3, rng);
  spll.fit(reference);  // 10 samples, 2 clusters: must still calibrate.
  EXPECT_TRUE(spll.fitted());
}

TEST(FailureInjection, PipelineProcessBeforeFitAborts) {
  edgedrift::core::PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = 4;
  config.hidden_dim = 3;
  edgedrift::core::Pipeline pipeline(config);
  std::vector<double> x(4);
  EXPECT_DEATH(pipeline.process(x), "process\\(\\) before fit");
}

TEST(FailureInjection, LuFactorRejectsNonSquare) {
  Matrix rect(3, 4);
  EXPECT_DEATH(edgedrift::linalg::lu_factor(rect), "square");
}

TEST(FailureInjection, CsvRejectsMalformedNumbers) {
  const std::string path = "/tmp/edgedrift_bad.csv";
  {
    std::ofstream out(path);
    out << "1.0,2.0\n1.0,not_a_number\n";
  }
  EXPECT_FALSE(edgedrift::data::load_csv(path).has_value());
  std::remove(path.c_str());
}

TEST(FailureInjection, CsvRejectsRaggedRows) {
  const std::string path = "/tmp/edgedrift_ragged.csv";
  {
    std::ofstream out(path);
    out << "1.0,2.0\n3.0,4.0,5.0\n";
  }
  EXPECT_FALSE(edgedrift::data::load_csv(path).has_value());
  std::remove(path.c_str());
}

TEST(FailureInjection, CsvRejectsLabelColumnOutOfRange) {
  const std::string path = "/tmp/edgedrift_labelcol.csv";
  {
    std::ofstream out(path);
    out << "1.0,2.0\n";
  }
  edgedrift::data::CsvOptions options;
  options.label_column = 5;
  EXPECT_FALSE(edgedrift::data::load_csv(path, options).has_value());
  std::remove(path.c_str());
}

TEST(FailureInjection, EmptyCsvYieldsEmptyDataset) {
  const std::string path = "/tmp/edgedrift_empty.csv";
  { std::ofstream out(path); }
  const auto loaded = edgedrift::data::load_csv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
