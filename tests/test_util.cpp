// Unit tests for edgedrift::util — RNG determinism and statistics, stage
// timer accounting, table formatting, thread pool behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "edgedrift/util/rng.hpp"
#include "edgedrift/util/stage_timer.hpp"
#include "edgedrift/util/stopwatch.hpp"
#include "edgedrift/util/table.hpp"
#include "edgedrift/util/thread_pool.hpp"

namespace {

using edgedrift::util::Rng;
using edgedrift::util::StageTimer;
using edgedrift::util::Table;
using edgedrift::util::ThreadPool;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaleAndShift) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(19);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(StageTimer, AccumulatesNamedStages) {
  StageTimer timer;
  timer.add("a", 0.5);
  timer.add("a", 0.25);
  timer.add("b", 1.0);
  EXPECT_DOUBLE_EQ(timer.seconds("a"), 0.75);
  EXPECT_DOUBLE_EQ(timer.seconds("b"), 1.0);
  EXPECT_EQ(timer.count("a"), 2u);
  EXPECT_DOUBLE_EQ(timer.mean_ms("a"), 375.0);
}

TEST(StageTimer, UnknownStageReadsZero) {
  StageTimer timer;
  EXPECT_DOUBLE_EQ(timer.seconds("missing"), 0.0);
  EXPECT_EQ(timer.count("missing"), 0u);
  EXPECT_DOUBLE_EQ(timer.mean_ms("missing"), 0.0);
}

TEST(StageTimer, ScopeMeasuresElapsedTime) {
  StageTimer timer;
  {
    StageTimer::Scope scope(timer, "sleep");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(timer.seconds("sleep"), 0.004);
  EXPECT_EQ(timer.count("sleep"), 1u);
}

TEST(StageTimer, StagesPreserveFirstUseOrder) {
  StageTimer timer;
  timer.add("z", 1.0);
  timer.add("a", 1.0);
  timer.add("z", 1.0);
  const auto stages = timer.stages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0], "z");
  EXPECT_EQ(stages[1], "a");
}

TEST(StageTimer, ResetClearsEverything) {
  StageTimer timer;
  timer.add("a", 1.0);
  timer.reset();
  EXPECT_TRUE(timer.stages().empty());
  EXPECT_DOUBLE_EQ(timer.seconds("a"), 0.0);
}

TEST(Table, RendersAlignedColumnsWithHeaderRule) {
  Table t({"Method", "Acc"});
  t.add_row({"Quant Tree", "96.8"});
  t.add_row({"x", "1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Quant Tree"), std::string::npos);
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  // All lines have equal width.
  std::size_t first_newline = s.find('\n');
  const std::string first_line = s.substr(0, first_newline);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_line.size());
    pos = next + 1;
  }
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(edgedrift::util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(edgedrift::util::fmt(2.0, 0), "2");
  EXPECT_EQ(edgedrift::util::fmt_kb(2048, 1), "2.0 kB");
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, ParallelForCoversWholeRange) {
  ThreadPool pool(3);
  std::vector<int> hits(10000, 0);
  pool.parallel_for(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i] += 1;
      },
      /*min_chunk=*/64);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int v) { return v == 1; }));
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  edgedrift::util::Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(w.elapsed_ms(), 9.0);
  w.restart();
  EXPECT_LT(w.elapsed_ms(), 9.0);
}

}  // namespace
