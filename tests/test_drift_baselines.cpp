// Tests for the baseline detectors: QuantTree, SPLL, DDM, ADWIN,
// Page–Hinkley, and the multi-window ensemble extension.
#include <gtest/gtest.h>

#include <cmath>

#include "edgedrift/drift/adwin.hpp"
#include "edgedrift/drift/ddm.hpp"
#include "edgedrift/drift/multi_window.hpp"
#include "edgedrift/drift/page_hinkley.hpp"
#include "edgedrift/drift/quanttree.hpp"
#include "edgedrift/drift/spll.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::drift::Adwin;
using edgedrift::drift::AdwinConfig;
using edgedrift::drift::Ddm;
using edgedrift::drift::Detection;
using edgedrift::drift::Observation;
using edgedrift::drift::PageHinkley;
using edgedrift::drift::PageHinkleyConfig;
using edgedrift::drift::QuantTree;
using edgedrift::drift::QuantTreeConfig;
using edgedrift::drift::Spll;
using edgedrift::drift::SpllConfig;
using edgedrift::linalg::Matrix;
using edgedrift::util::Rng;

Matrix gaussian_blob(Rng& rng, std::size_t n, std::size_t d, double mean,
                     double sigma = 0.5) {
  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.gaussian(mean, sigma);
  }
  return x;
}

Observation feature_obs(std::span<const double> x) {
  Observation obs;
  obs.x = x;
  return obs;
}

// ----------------------------------------------------------------- QuantTree

QuantTreeConfig qt_config(std::size_t bins = 8, std::size_t batch = 64) {
  QuantTreeConfig config;
  config.num_bins = bins;
  config.batch_size = batch;
  config.alpha = 0.01;
  config.monte_carlo_trials = 2000;
  return config;
}

TEST(QuantTree, BinsArePopulatedUniformlyOnReference) {
  Rng rng(1);
  const Matrix reference = gaussian_blob(rng, 800, 5, 0.0);
  QuantTree qt(qt_config(8));
  qt.fit(reference);

  std::vector<std::size_t> counts(8, 0);
  for (std::size_t i = 0; i < reference.rows(); ++i) {
    ++counts[qt.bin_of(reference.row(i))];
  }
  for (const auto c : counts) {
    // Expected 100 per bin; accept a generous tolerance (ties move points).
    EXPECT_GT(c, 40u);
    EXPECT_LT(c, 200u);
  }
}

TEST(QuantTree, StatisticSmallOnSameDistribution) {
  Rng rng(2);
  QuantTree qt(qt_config());
  qt.fit(gaussian_blob(rng, 800, 4, 0.0));
  const Matrix same = gaussian_blob(rng, 64, 4, 0.0);
  EXPECT_LT(qt.statistic(same), qt.threshold() * 1.5);
}

TEST(QuantTree, StatisticLargeOnShiftedDistribution) {
  Rng rng(3);
  QuantTree qt(qt_config());
  qt.fit(gaussian_blob(rng, 800, 4, 0.0));
  const Matrix shifted = gaussian_blob(rng, 64, 4, 2.0);
  EXPECT_GT(qt.statistic(shifted), qt.threshold());
}

TEST(QuantTree, ObserveFiresOnlyAtBatchBoundaries) {
  Rng rng(4);
  QuantTree qt(qt_config(8, 32));
  qt.fit(gaussian_blob(rng, 400, 3, 0.0));

  const Matrix stream = gaussian_blob(rng, 31, 3, 0.0);
  for (std::size_t i = 0; i < 31; ++i) {
    const Detection d = qt.observe(feature_obs(stream.row(i)));
    EXPECT_FALSE(d.statistic_valid);
  }
  const Matrix last = gaussian_blob(rng, 1, 3, 0.0);
  const Detection d = qt.observe(feature_obs(last.row(0)));
  EXPECT_TRUE(d.statistic_valid);
}

TEST(QuantTree, DetectsDriftInStreamingMode) {
  Rng rng(5);
  QuantTree qt(qt_config(8, 64));
  qt.fit(gaussian_blob(rng, 800, 4, 0.0));

  // Two clean batches, then shifted batches.
  int detect_batch = -1;
  for (int batch = 0; batch < 6; ++batch) {
    const double mean = batch < 2 ? 0.0 : 2.0;
    const Matrix b = gaussian_blob(rng, 64, 4, mean);
    for (std::size_t i = 0; i < 64; ++i) {
      const Detection d = qt.observe(feature_obs(b.row(i)));
      if (d.drift && detect_batch < 0) detect_batch = batch;
    }
  }
  EXPECT_GE(detect_batch, 2);
  EXPECT_LE(detect_batch, 3);
}

TEST(QuantTree, FalsePositiveRateNearAlpha) {
  Rng rng(6);
  QuantTree qt(qt_config(8, 64));
  qt.fit(gaussian_blob(rng, 2000, 3, 0.0));

  int fires = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const Matrix b = gaussian_blob(rng, 64, 3, 0.0);
    if (qt.statistic(b) > qt.threshold()) ++fires;
  }
  // alpha = 0.01; allow up to ~5% (finite-reference effects inflate it).
  EXPECT_LT(fires, trials / 20 + 3);
}

TEST(QuantTree, MemoryDominatedByBatchBuffer) {
  Rng rng(7);
  QuantTreeConfig small = qt_config(8, 32);
  QuantTreeConfig large = qt_config(8, 512);
  QuantTree a(small), b(large);
  const Matrix reference = gaussian_blob(rng, 800, 10, 0.0);
  a.fit(reference);
  b.fit(reference);
  EXPECT_GT(b.memory_bytes(), a.memory_bytes() * 8);
}

TEST(QuantTree, RebuildReferenceAdaptsToNewConcept) {
  Rng rng(8);
  QuantTree qt(qt_config(8, 64));
  qt.fit(gaussian_blob(rng, 800, 4, 0.0));
  const Matrix new_concept = gaussian_blob(rng, 800, 4, 3.0);
  qt.rebuild_reference(new_concept);
  // After refit, the new concept is in-distribution.
  const Matrix batch = gaussian_blob(rng, 64, 4, 3.0);
  EXPECT_LT(qt.statistic(batch), qt.threshold() * 1.5);
}

// ---------------------------------------------------------------------- SPLL

SpllConfig spll_config(std::size_t clusters = 2, std::size_t batch = 64) {
  SpllConfig config;
  config.num_clusters = clusters;
  config.batch_size = batch;
  config.bootstrap_trials = 200;
  return config;
}

TEST(Spll, StatisticSmallOnSameDistribution) {
  Rng rng(9);
  Spll spll(spll_config());
  spll.fit(gaussian_blob(rng, 600, 4, 0.0));
  const Matrix same = gaussian_blob(rng, 64, 4, 0.0);
  EXPECT_LT(spll.statistic(same), spll.threshold() * 1.2);
}

TEST(Spll, StatisticLargeOnShiftedDistribution) {
  Rng rng(10);
  Spll spll(spll_config());
  spll.fit(gaussian_blob(rng, 600, 4, 0.0));
  const Matrix shifted = gaussian_blob(rng, 64, 4, 1.5);
  EXPECT_GT(spll.statistic(shifted), spll.threshold());
}

TEST(Spll, StatisticGrowsMonotonicallyWithShift) {
  Rng rng(11);
  Spll spll(spll_config());
  spll.fit(gaussian_blob(rng, 600, 4, 0.0));
  double previous = 0.0;
  for (const double shift : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const Matrix b = gaussian_blob(rng, 128, 4, shift);
    const double stat = spll.statistic(b);
    EXPECT_GE(stat, previous * 0.9);  // Allow sampling noise.
    previous = stat;
  }
}

TEST(Spll, DetectsDriftInStreamingMode) {
  Rng rng(12);
  Spll spll(spll_config(2, 64));
  spll.fit(gaussian_blob(rng, 600, 4, 0.0));

  int detect_batch = -1;
  for (int batch = 0; batch < 6; ++batch) {
    const double mean = batch < 2 ? 0.0 : 1.5;
    const Matrix b = gaussian_blob(rng, 64, 4, mean);
    for (std::size_t i = 0; i < 64; ++i) {
      if (spll.observe(feature_obs(b.row(i))).drift && detect_batch < 0) {
        detect_batch = batch;
      }
    }
  }
  EXPECT_EQ(detect_batch, 2);
}

TEST(Spll, MemoryIncludesReferenceWindow) {
  Rng rng(13);
  Spll spll(spll_config(2, 64));
  const Matrix reference = gaussian_blob(rng, 600, 8, 0.0);
  spll.fit(reference);
  // Must retain at least the reference window + batch buffer.
  EXPECT_GE(spll.memory_bytes(),
            reference.memory_bytes() + 64 * 8 * sizeof(double));
}

TEST(Spll, TwoClusterReferenceIsHandled) {
  Rng rng(14);
  Matrix two_blob(400, 3);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      two_blob(i, j) = rng.gaussian(0.0, 0.3);
      two_blob(200 + i, j) = rng.gaussian(5.0, 0.3);
    }
  }
  Spll spll(spll_config(2, 64));
  spll.fit(two_blob);
  // Batches from either blob are in-distribution.
  Matrix blob_a = gaussian_blob(rng, 64, 3, 0.0, 0.3);
  Matrix blob_b = gaussian_blob(rng, 64, 3, 5.0, 0.3);
  EXPECT_LT(spll.statistic(blob_a), spll.threshold() * 1.3);
  EXPECT_LT(spll.statistic(blob_b), spll.threshold() * 1.3);
  // A batch between the blobs is out-of-distribution.
  Matrix between = gaussian_blob(rng, 64, 3, 2.5, 0.3);
  EXPECT_GT(spll.statistic(between), spll.threshold());
}

// ----------------------------------------------------------------------- DDM

Observation error_obs(bool error) {
  Observation obs;
  obs.error = error;
  return obs;
}

TEST(Ddm, QuietOnConstantErrorRate) {
  Rng rng(15);
  Ddm ddm;
  int drifts = 0;
  for (int i = 0; i < 2000; ++i) {
    const Detection d = ddm.observe(error_obs(rng.bernoulli(0.1)));
    drifts += d.drift ? 1 : 0;
  }
  EXPECT_EQ(drifts, 0);
}

TEST(Ddm, FiresWhenErrorRateJumps) {
  Rng rng(16);
  Ddm ddm;
  bool warned = false;
  int detected_at = -1;
  for (int i = 0; i < 4000; ++i) {
    const double p = i < 2000 ? 0.05 : 0.5;
    const Detection d = ddm.observe(error_obs(rng.bernoulli(p)));
    warned |= d.warning;
    if (d.drift) {
      detected_at = i;
      break;
    }
  }
  ASSERT_GE(detected_at, 2000);
  EXPECT_LT(detected_at, 2400);
  EXPECT_TRUE(warned);
}

TEST(Ddm, ResetClearsState) {
  Rng rng(17);
  Ddm ddm;
  for (int i = 0; i < 100; ++i) ddm.observe(error_obs(rng.bernoulli(0.2)));
  ddm.reset();
  EXPECT_EQ(ddm.samples(), 0u);
  // Laplace-smoothed rate returns to the (1)/(2) prior after reset.
  EXPECT_DOUBLE_EQ(ddm.error_rate(), 0.5);
}

// --------------------------------------------------------------------- ADWIN

TEST(Adwin, WindowGrowsOnStationaryStream) {
  Rng rng(18);
  Adwin adwin;
  for (int i = 0; i < 1000; ++i) adwin.insert(rng.bernoulli(0.3) ? 1.0 : 0.0);
  EXPECT_EQ(adwin.window_length(), 1000u);
  EXPECT_NEAR(adwin.mean(), 0.3, 0.06);
}

TEST(Adwin, ShrinksWindowAndFiresOnMeanShift) {
  Rng rng(19);
  Adwin adwin;
  bool fired = false;
  for (int i = 0; i < 1000; ++i) adwin.insert(rng.bernoulli(0.1) ? 1.0 : 0.0);
  for (int i = 0; i < 1000 && !fired; ++i) {
    fired = adwin.insert(rng.bernoulli(0.7) ? 1.0 : 0.0);
  }
  EXPECT_TRUE(fired);
  // The old low-mean data must have been dropped.
  EXPECT_LT(adwin.window_length(), 1500u);
  EXPECT_GT(adwin.mean(), 0.29);
}

TEST(Adwin, MemoryIsLogarithmicInWindow) {
  Rng rng(20);
  Adwin adwin;
  for (int i = 0; i < 20000; ++i) adwin.insert(rng.uniform());
  // 20000 samples compressed into exponential buckets: far below raw size.
  EXPECT_LT(adwin.memory_bytes(), 20000 * sizeof(double) / 10);
}

TEST(Adwin, ObserveRoutesErrorSignal) {
  Rng rng(21);
  Adwin adwin;
  bool fired = false;
  for (int i = 0; i < 800; ++i) {
    fired |= adwin.observe(error_obs(false)).drift;
  }
  EXPECT_FALSE(fired);
  for (int i = 0; i < 800 && !fired; ++i) {
    fired |= adwin.observe(error_obs(true)).drift;
  }
  EXPECT_TRUE(fired);
}

// -------------------------------------------------------------- Page-Hinkley

TEST(PageHinkley, QuietOnStationaryScores) {
  Rng rng(22);
  PageHinkleyConfig config;
  config.lambda = 20.0;
  PageHinkley ph(config);
  int fires = 0;
  for (int i = 0; i < 5000; ++i) {
    fires += ph.insert(rng.gaussian(1.0, 0.2)) ? 1 : 0;
  }
  EXPECT_EQ(fires, 0);
}

TEST(PageHinkley, FiresOnLevelShift) {
  Rng rng(23);
  PageHinkleyConfig config;
  config.lambda = 20.0;
  PageHinkley ph(config);
  for (int i = 0; i < 2000; ++i) ph.insert(rng.gaussian(1.0, 0.2));
  int detected_at = -1;
  for (int i = 0; i < 2000; ++i) {
    if (ph.insert(rng.gaussian(2.0, 0.2))) {
      detected_at = i;
      break;
    }
  }
  ASSERT_GE(detected_at, 0);
  EXPECT_LT(detected_at, 100);
}

// --------------------------------------------------------------- MultiWindow

TEST(MultiWindow, MembersHaveRequestedWindowSizes) {
  edgedrift::drift::CentroidDetectorConfig base;
  base.num_labels = 2;
  base.dim = 4;
  base.theta_error = 0.5;
  base.initial_count = 0;
  const std::vector<std::size_t> windows{10, 50, 150};
  edgedrift::drift::MultiWindowDetector ensemble(base, windows);
  ASSERT_EQ(ensemble.members(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ensemble.member(i).config().window_size, windows[i]);
  }
}

TEST(MultiWindow, MajorityVoteFiresOnRealDrift) {
  Rng rng(24);
  edgedrift::drift::CentroidDetectorConfig base;
  base.num_labels = 1;
  base.dim = 4;
  base.theta_error = 0.5;
  base.initial_count = 0;
  const std::vector<std::size_t> windows{10, 20, 40};
  edgedrift::drift::MultiWindowDetector ensemble(base, windows);

  Matrix train(200, 4);
  std::vector<int> labels(200, 0);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < 4; ++j) train(i, j) = rng.gaussian(0.0, 0.2);
  }
  ensemble.calibrate(train, labels);

  std::vector<double> x(4);
  int fired_at = -1;
  for (int i = 0; i < 600; ++i) {
    for (auto& v : x) v = rng.gaussian(2.0, 0.2);
    Observation obs;
    obs.x = x;
    obs.predicted_label = 0;
    obs.anomaly_score = 1.0;
    if (ensemble.observe(obs).drift) {
      fired_at = i;
      break;
    }
  }
  ASSERT_GE(fired_at, 0);
  // Majority of {10,20,40} windows: needs at least 2 windows to close.
  EXPECT_GE(fired_at, 19);
}

TEST(MultiWindow, QuietOnStationaryStream) {
  Rng rng(25);
  edgedrift::drift::CentroidDetectorConfig base;
  base.num_labels = 1;
  base.dim = 4;
  base.theta_error = 0.5;
  base.initial_count = 0;
  const std::vector<std::size_t> windows{10, 20};
  edgedrift::drift::MultiWindowDetector ensemble(base, windows);

  Matrix train(200, 4);
  std::vector<int> labels(200, 0);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < 4; ++j) train(i, j) = rng.gaussian(0.0, 0.2);
  }
  ensemble.calibrate(train, labels);

  std::vector<double> x(4);
  int drifts = 0;
  for (int i = 0; i < 600; ++i) {
    for (auto& v : x) v = rng.gaussian(0.0, 0.2);
    Observation obs;
    obs.x = x;
    obs.predicted_label = 0;
    obs.anomaly_score = 1.0;
    drifts += ensemble.observe(obs).drift ? 1 : 0;
  }
  EXPECT_EQ(drifts, 0);
}

}  // namespace
