// Drift-decision equivalence across numerics tiers: the fp32 and int8
// scoring tiers must reproduce the f64 reference run's decisions on the
// golden-replay scenario (eval/tier_equivalence.hpp). The f64 tier itself
// is pinned bit-for-bit by test_golden_replay.cpp; here it doubles as the
// self-equivalence sanity row (every diff must be exactly zero).
#include <gtest/gtest.h>

#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/eval/paper_configs.hpp"
#include "edgedrift/eval/tier_equivalence.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using namespace edgedrift;
using linalg::NumericsTier;

/// The golden-replay scenario (test_golden_replay.cpp): same generator,
/// same paper pipeline, one injected drift at sample 1200.
struct Scenario {
  data::Dataset train;
  data::Dataset test;
  eval::TierEquivalenceConfig config;
};

Scenario make_scenario() {
  data::NslKddLikeConfig stream;
  stream.train_size = 1600;
  stream.test_size = 2500;
  stream.drift_point = 1200;
  stream.seed = 42;
  const data::NslKddLike generator(stream);
  util::Rng rng(stream.seed);
  Scenario s{generator.training(rng), generator.test_stream(rng), {}};
  s.config.pipeline = eval::nsl_kdd_paper_config(100).pipeline;
  s.config.pipeline.input_dim = s.train.dim();
  return s;
}

TEST(TierEquivalence, F64SelfEquivalenceIsExact) {
  const Scenario s = make_scenario();
  const auto report = eval::check_tier_equivalence(
      NumericsTier::kExactF64, s.train, s.test, s.config);
  EXPECT_TRUE(report.equivalent) << report.failure;
  EXPECT_EQ(report.label_disagreements, 0u);
  EXPECT_EQ(report.material_disagreements, 0u);
  EXPECT_GT(report.compared_samples, 0u);
  EXPECT_EQ(report.max_detection_shift, 0u);
  EXPECT_EQ(report.theta_rel_diff, 0.0);
  EXPECT_EQ(report.tier_drifts, report.reference_drifts);
  // The scenario injects one drift; a run that never detects would make
  // the whole comparison vacuous.
  EXPECT_GE(report.reference_drifts, 1u);
}

TEST(TierEquivalence, F32MatchesF64Decisions) {
  const Scenario s = make_scenario();
  eval::TierEquivalenceConfig config = s.config;
  // Narrowing to f32 perturbs scores by ~1e-7 relative; hold the gate far
  // tighter than the i8 default.
  config.theta_rel_tol = 1e-4;
  const auto report = eval::check_tier_equivalence(
      NumericsTier::kFastF32, s.train, s.test, config);
  EXPECT_TRUE(report.equivalent) << report.failure;
  EXPECT_GE(report.reference_drifts, 1u);
}

TEST(TierEquivalence, I8MatchesF64Decisions) {
  const Scenario s = make_scenario();
  const auto report = eval::check_tier_equivalence(
      NumericsTier::kQuantI8, s.train, s.test, s.config);
  EXPECT_TRUE(report.equivalent) << report.failure;
  EXPECT_GE(report.reference_drifts, 1u);
}

}  // namespace
