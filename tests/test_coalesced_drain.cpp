// The cross-stream drain planner (core/manager_coalesce.cpp): streams that
// share a projection group — equal alpha/bias fingerprint, dims, activation
// and numerics tier, i.e. every stream seeded from one template — drain
// through one shared mega-batch projection GEMM with per-stream scatter.
//
// Contracts under test:
//  - kExactF64: the coalesced drain is BIT-identical to the per-stream
//    drain (coalesce=false), including across mid-batch drift, recovery
//    handoff, and evict/restore churn interleaved with group formation.
//  - kFastF32 / kQuantI8: decision-equivalent (same drift events within a
//    small detection shift, near-total label agreement).
//  - Streams with mismatched fingerprints (independent projections) fall
//    back to the per-stream path and are counted in ShardObs.
//  - submit_batch racing shard-worker coalesced drains loses no samples
//    (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/linalg/numerics.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::core::DispatchMode;
using edgedrift::core::ManagerOptions;
using edgedrift::core::PipelineConfig;
using edgedrift::core::PipelineManager;
using edgedrift::core::PipelineStep;
using edgedrift::core::SubmitStatus;
using edgedrift::data::Dataset;
using edgedrift::data::GaussianClass;
using edgedrift::data::GaussianConcept;
using edgedrift::linalg::Matrix;
using edgedrift::linalg::NumericsTier;
using edgedrift::util::Rng;

GaussianConcept pre_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  a.stddev = {0.15};
  GaussianClass b;
  b.mean.assign(8, 1.2);
  b.stddev = {0.15};
  return GaussianConcept({a, b});
}

GaussianConcept post_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  for (std::size_t j = 0; j < 8; j += 2) a.mean[j] += 0.9;
  a.stddev = {0.2};
  GaussianClass b;
  b.mean.assign(8, 0.55);
  for (std::size_t j = 0; j < 8; j += 2) b.mean[j] += 0.9;
  b.stddev = {0.2};
  return GaussianConcept({a, b});
}

PipelineConfig make_config() {
  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = 8;
  config.hidden_dim = 12;
  config.window_size = 40;
  config.detector_initial_count = 0;
  config.reconstruction.n_search = 20;
  config.reconstruction.n_update = 100;
  config.reconstruction.n_total = 400;
  config.seed = 7;
  return config;
}

Dataset make_train() {
  Rng rng(77);
  return edgedrift::data::draw(pre_concept(), 600, rng);
}

/// Per-stream drifting test data: every stream sees its own draw of the
/// same sudden-drift scenario, so drift + recovery land mid-run for all.
std::vector<Dataset> make_tests(std::size_t n, std::size_t samples) {
  std::vector<Dataset> tests;
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(900 + i);
    tests.push_back(edgedrift::data::make_sudden_drift(
        pre_concept(), post_concept(), samples, samples / 2, rng));
  }
  return tests;
}

/// Turns a one-stream manager into a shared projection group: stream 0 is
/// fitted, streams 1..n-1 are seeded cold from it and become independent
/// residents on first submit.
void seed_group(PipelineManager& manager, std::size_t n_streams,
                const Dataset& train) {
  manager.fit(0, train.x, train.labels);
  manager.seed_cold_from(0, n_streams - 1);
}

/// Drives `manager` through the per-stream datasets in interleaved rounds
/// of `burst` rows per stream, draining once per round so every round's
/// pending rows are visible to one planning pass together. Returns each
/// stream's full step sequence.
std::vector<std::vector<PipelineStep>> run_rounds(
    PipelineManager& manager, const std::vector<Dataset>& tests,
    std::size_t burst) {
  const std::size_t n = tests.size();
  const std::size_t samples = tests[0].size();
  for (std::size_t at = 0; at < samples; at += burst) {
    const std::size_t take = std::min(burst, samples - at);
    for (std::size_t s = 0; s < n; ++s) {
      Matrix rows(take, tests[s].x.cols());
      for (std::size_t r = 0; r < take; ++r) {
        rows.set_row(r, tests[s].x.row(at + r));
      }
      SubmitStatus status = SubmitStatus::kOk;
      EXPECT_EQ(manager.submit_batch(s, rows, {}, &status), take);
      EXPECT_EQ(status, SubmitStatus::kOk);
    }
    manager.drain();
  }
  std::vector<std::vector<PipelineStep>> steps(n);
  for (std::size_t s = 0; s < n; ++s) steps[s] = manager.take_steps(s);
  return steps;
}

void expect_steps_bit_identical(const std::vector<PipelineStep>& actual,
                                const std::vector<PipelineStep>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    EXPECT_EQ(actual[i].prediction.label, expected[i].prediction.label);
    EXPECT_EQ(actual[i].prediction.score, expected[i].prediction.score);
    EXPECT_EQ(actual[i].drift_detected, expected[i].drift_detected);
    EXPECT_EQ(actual[i].reconstructing, expected[i].reconstructing);
    EXPECT_EQ(actual[i].reconstruction_finished,
              expected[i].reconstruction_finished);
  }
}

ManagerOptions manual_options(bool coalesce) {
  ManagerOptions options;
  options.dispatch = DispatchMode::kManual;
  options.drain_opts.coalesce = coalesce;
  return options;
}

// The tentpole contract at full precision: a seeded projection group
// drained through shared mega-batch GEMMs produces every step bit-for-bit
// equal to the per-stream drain — across the drift point and the recovery
// (reconstruction) handoff that puts streams in and out of eligibility
// mid-run.
TEST(CoalescedDrain, SharedGroupIsBitIdenticalAtF64) {
  constexpr std::size_t kStreams = 8;
  const Dataset train = make_train();
  const auto tests = make_tests(kStreams, 480);

  PipelineManager coalesced(make_config(), 1, manual_options(true));
  seed_group(coalesced, kStreams, train);
  const auto got = run_rounds(coalesced, tests, 4);

  PipelineManager reference(make_config(), 1, manual_options(false));
  seed_group(reference, kStreams, train);
  const auto want = run_rounds(reference, tests, 4);

  std::size_t drifts = 0;
  for (std::size_t s = 0; s < kStreams; ++s) {
    SCOPED_TRACE("stream " + std::to_string(s));
    expect_steps_bit_identical(got[s], want[s]);
    for (const PipelineStep& step : want[s]) drifts += step.drift_detected;
  }
  ASSERT_GE(drifts, kStreams) << "scenario must drift on every stream";

  // The runs must differ in HOW they drained: the coalesced manager did
  // real multi-stream GEMMs, the reference did none.
  const edgedrift::obs::Snapshot snap = coalesced.stats();
  ASSERT_EQ(snap.shards.size(), 1u);
  EXPECT_GT(snap.shards[0].coalesced_gemms, 0u);
  EXPECT_GE(snap.shards[0].coalesced_streams,
            2 * snap.shards[0].coalesced_gemms);
  const edgedrift::obs::Snapshot ref_snap = reference.stats();
  EXPECT_EQ(ref_snap.shards[0].coalesced_gemms, 0u);
}

/// Drift positions and predicted labels of a step sequence.
struct DecisionTrace {
  std::vector<std::size_t> drift_positions;
  std::vector<int> labels;
};

DecisionTrace trace_of(const std::vector<PipelineStep>& steps) {
  DecisionTrace t;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    t.labels.push_back(steps[i].prediction.label);
    if (steps[i].drift_detected) t.drift_positions.push_back(i);
  }
  return t;
}

// The approximate tiers promise decisions, not bits (linalg/numerics.hpp):
// same drift events within a small detection shift, near-total label
// agreement between the coalesced and per-stream drains.
void check_tier_decision_equivalent(NumericsTier tier) {
  constexpr std::size_t kStreams = 6;
  const Dataset train = make_train();
  const auto tests = make_tests(kStreams, 480);

  ManagerOptions on = manual_options(true);
  on.numerics = tier;
  PipelineManager coalesced(make_config(), 1, on);
  seed_group(coalesced, kStreams, train);
  const auto got = run_rounds(coalesced, tests, 4);

  ManagerOptions off = manual_options(false);
  off.numerics = tier;
  PipelineManager reference(make_config(), 1, off);
  seed_group(reference, kStreams, train);
  const auto want = run_rounds(reference, tests, 4);

  const edgedrift::obs::Snapshot snap = coalesced.stats();
  EXPECT_GT(snap.shards[0].coalesced_gemms, 0u);

  for (std::size_t s = 0; s < kStreams; ++s) {
    SCOPED_TRACE("stream " + std::to_string(s));
    const DecisionTrace a = trace_of(got[s]);
    const DecisionTrace b = trace_of(want[s]);
    ASSERT_GE(b.drift_positions.size(), 1u)
        << "scenario must actually drift or the comparison is vacuous";
    ASSERT_EQ(a.drift_positions.size(), b.drift_positions.size());
    for (std::size_t d = 0; d < b.drift_positions.size(); ++d) {
      const std::size_t x = a.drift_positions[d];
      const std::size_t y = b.drift_positions[d];
      EXPECT_LE(x > y ? x - y : y - x, 25u) << "drift event " << d;
    }
    ASSERT_EQ(a.labels.size(), b.labels.size());
    std::size_t disagreements = 0;
    for (std::size_t i = 0; i < b.labels.size(); ++i) {
      if (a.labels[i] != b.labels[i]) ++disagreements;
    }
    EXPECT_LE(disagreements, b.labels.size() / 200)
        << "label agreement below 99.5%";
  }
}

TEST(CoalescedDrain, TierDecisionEquivalentAtF32) {
  check_tier_decision_equivalent(NumericsTier::kFastF32);
}

TEST(CoalescedDrain, TierDecisionEquivalentAtI8) {
  check_tier_decision_equivalent(NumericsTier::kQuantI8);
}

// Constructor-built streams use seed+i, so their projections — and
// fingerprints — all differ: the planner must fall back per-stream for
// every one of them, count the fallbacks, and still match the
// non-coalescing drain bit-for-bit.
TEST(CoalescedDrain, FingerprintMismatchFallsBackPerStream) {
  constexpr std::size_t kStreams = 3;
  const Dataset train = make_train();
  const auto tests = make_tests(kStreams, 240);

  PipelineManager coalesced(make_config(), kStreams, manual_options(true));
  PipelineManager reference(make_config(), kStreams, manual_options(false));
  for (std::size_t s = 0; s < kStreams; ++s) {
    coalesced.fit(s, train.x, train.labels);
    reference.fit(s, train.x, train.labels);
  }
  const auto got = run_rounds(coalesced, tests, 4);
  const auto want = run_rounds(reference, tests, 4);
  for (std::size_t s = 0; s < kStreams; ++s) {
    SCOPED_TRACE("stream " + std::to_string(s));
    expect_steps_bit_identical(got[s], want[s]);
  }

  const edgedrift::obs::Snapshot snap = coalesced.stats();
  ASSERT_EQ(snap.shards.size(), 1u);
  EXPECT_EQ(snap.shards[0].coalesced_gemms, 0u);
  // Every planning pass saw kStreams distinct single-stream groups.
  EXPECT_GE(snap.shards[0].coalesce_fallbacks, kStreams);
}

// Eviction churn interleaved with coalescing: a tight hot budget forces
// evict/restore cycles between drain rounds while groups keep forming from
// whatever is resident. The evict->restore round trip is bit-identical at
// f64 and group membership only ever covers scheduled (hence unevictable)
// streams, so the steps must STILL match the non-coalescing run exactly.
TEST(CoalescedDrain, EvictRestoreChurnKeepsBitIdentityAtF64) {
  constexpr std::size_t kStreams = 6;
  const Dataset train = make_train();
  const auto tests = make_tests(kStreams, 240);

  ManagerOptions on = manual_options(true);
  on.hot_stream_budget = 3;
  PipelineManager coalesced(make_config(), 1, on);
  seed_group(coalesced, kStreams, train);
  const auto got = run_rounds(coalesced, tests, 4);

  ManagerOptions off = manual_options(false);
  off.hot_stream_budget = 3;
  PipelineManager reference(make_config(), 1, off);
  seed_group(reference, kStreams, train);
  const auto want = run_rounds(reference, tests, 4);

  for (std::size_t s = 0; s < kStreams; ++s) {
    SCOPED_TRACE("stream " + std::to_string(s));
    expect_steps_bit_identical(got[s], want[s]);
  }

  const edgedrift::obs::Snapshot snap = coalesced.stats();
  ASSERT_EQ(snap.shards.size(), 1u);
  EXPECT_GT(snap.shards[0].coalesced_gemms, 0u);
  EXPECT_GT(snap.shards[0].evictions, 0u) << "budget must actually churn";
  EXPECT_GT(snap.shards[0].restores, 0u);
}

// The race surface of the planner: concurrent submit_batch producers
// against shard workers running coalesced drains (kShard dispatch), with a
// hot budget keeping eviction in the mix. Run under TSan in CI; the
// invariant checked here is only that no sample is lost or duplicated.
TEST(CoalescedDrain, SubmitBatchRacesCoalescedShardDrains) {
  constexpr std::size_t kStreams = 6;
  constexpr std::size_t kBatches = 40;
  constexpr std::size_t kBurst = 8;
  const Dataset train = make_train();
  const auto tests = make_tests(kStreams, kBatches * kBurst);

  ManagerOptions options;  // kShard dispatch, coalescing on by default.
  options.shards = 2;
  options.queue_capacity = 64;
  options.hot_stream_budget = 2;
  PipelineManager manager(make_config(), 1, options);
  seed_group(manager, kStreams, train);

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < 2; ++t) {
    producers.emplace_back([&, t] {
      Matrix rows(kBurst, tests[0].x.cols());
      for (std::size_t b = 0; b < kBatches; ++b) {
        for (std::size_t s = t; s < kStreams; s += 2) {
          for (std::size_t r = 0; r < kBurst; ++r) {
            rows.set_row(r, tests[s].x.row(b * kBurst + r));
          }
          ASSERT_EQ(manager.submit_batch(s, rows), kBurst);
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  manager.drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    EXPECT_EQ(manager.stats(s).samples, kBatches * kBurst)
        << "stream " << s;
  }
  EXPECT_EQ(manager.totals().samples, kStreams * kBatches * kBurst);
}

}  // namespace
