// Endurance tests: the pipeline must survive *sequences* of drifts —
// detect, reconstruct, re-arm, and detect again — and long stationary
// periods without drifting state. The paper evaluates single-drift
// streams; a deployable system sees many.
#include <gtest/gtest.h>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::core::Pipeline;
using edgedrift::core::PipelineConfig;
using edgedrift::data::Dataset;
using edgedrift::data::GaussianClass;
using edgedrift::data::GaussianConcept;
using edgedrift::util::Rng;

constexpr std::size_t kDim = 10;

// A family of concepts: both class anchors shift by `epoch`-dependent
// offsets that keep classes separable and each class nearest its own
// previous position (so label identities survive alignment).
GaussianConcept concept_for_epoch(int epoch) {
  GaussianClass a;
  a.mean.assign(kDim, 0.2);
  a.stddev = {0.1};
  GaussianClass b;
  b.mean.assign(kDim, 1.4);
  b.stddev = {0.1};
  for (std::size_t j = 0; j < kDim; ++j) {
    // Epoch-specific displacement: alternating dims drift back and forth.
    const double wiggle = 0.45 * epoch * (j % 2 == 0 ? 1.0 : -1.0);
    a.mean[j] += wiggle;
    b.mean[j] += wiggle;
  }
  return GaussianConcept({a, b});
}

PipelineConfig endurance_config() {
  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = kDim;
  config.hidden_dim = 6;
  config.window_size = 40;
  config.detector_initial_count = 0;
  config.theta_error_z = 4.0;
  config.reconstruction = {10, 60, 300};
  config.seed = 3;
  return config;
}

TEST(Endurance, SurvivesFourConsecutiveDrifts) {
  Rng rng(1);
  const auto concept0 = concept_for_epoch(0);
  const Dataset train = edgedrift::data::draw(concept0, 500, rng);

  Pipeline pipeline(endurance_config());
  pipeline.fit(train.x, train.labels);

  const std::size_t epoch_len = 1500;
  int detections = 0;
  int reconstructions = 0;
  std::size_t correct_tail = 0, tail_total = 0;

  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto current = concept_for_epoch(epoch);
    const Dataset stream = edgedrift::data::draw(current, epoch_len, rng);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const auto step = pipeline.process(stream.x.row(i));
      detections += step.drift_detected ? 1 : 0;
      reconstructions += step.reconstruction_finished ? 1 : 0;
      // Accuracy over the last third of each epoch (post-recovery).
      if (i >= 2 * epoch_len / 3) {
        ++tail_total;
        correct_tail += static_cast<int>(step.prediction.label) ==
                                stream.labels[i]
                            ? 1
                            : 0;
      }
    }
  }
  // Epochs 1-3 each begin with a drift the pipeline must catch.
  EXPECT_EQ(detections, 3);
  EXPECT_EQ(reconstructions, 3);
  // And each epoch's tail must be accurately classified again.
  EXPECT_GT(static_cast<double>(correct_tail) / tail_total, 0.9);
}

TEST(Endurance, LongStationaryStreamStaysQuietAndAccurate) {
  Rng rng(2);
  const auto concept0 = concept_for_epoch(0);
  const Dataset train = edgedrift::data::draw(concept0, 500, rng);

  Pipeline pipeline(endurance_config());
  pipeline.fit(train.x, train.labels);

  const Dataset stream = edgedrift::data::draw(concept0, 20000, rng);
  std::size_t correct = 0;
  int detections = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto step = pipeline.process(stream.x.row(i));
    correct +=
        static_cast<int>(step.prediction.label) == stream.labels[i] ? 1 : 0;
    detections += step.drift_detected ? 1 : 0;
  }
  EXPECT_EQ(detections, 0);
  EXPECT_GT(static_cast<double>(correct) / stream.size(), 0.99);
  // Memory must not creep over a long run.
  EXPECT_LT(pipeline.memory_bytes(), 64u * 1024u);
}

TEST(Endurance, BackToBackDriftDuringRecoveryIsAbsorbed) {
  // A second distribution change arriving while reconstruction is still
  // running must not crash or wedge the state machine; the system ends up
  // trained on whatever the stream currently is.
  Rng rng(3);
  const auto concept0 = concept_for_epoch(0);
  const auto concept1 = concept_for_epoch(1);
  const auto concept2 = concept_for_epoch(2);
  const Dataset train = edgedrift::data::draw(concept0, 500, rng);

  Pipeline pipeline(endurance_config());
  pipeline.fit(train.x, train.labels);

  // Warm-up on concept 0, then concept 1 just long enough to trigger
  // detection and start reconstruction, then concept 2 mid-reconstruction.
  Dataset stream = edgedrift::data::draw(concept0, 500, rng);
  stream.append(edgedrift::data::draw(concept1, 700, rng));
  stream.append(edgedrift::data::draw(concept2, 2500, rng));

  std::size_t tail_correct = 0, tail_total = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto step = pipeline.process(stream.x.row(i));
    if (i >= stream.size() - 500) {
      ++tail_total;
      tail_correct +=
          static_cast<int>(step.prediction.label) == stream.labels[i] ? 1
                                                                      : 0;
    }
  }
  // After everything settles the model must classify concept 2 well
  // (possibly after a second detect+reconstruct round).
  EXPECT_GT(static_cast<double>(tail_correct) / tail_total, 0.85);
}

}  // namespace
