// The observability layer's contracts, pinned:
//
//  - LatencyHistogram properties: log2 bucket bounds contain every value,
//    counts and sums are conserved, and merge(a, b) is exactly recording
//    every value into one histogram.
//  - DriftJournal: fixed-capacity wraparound keeps the most recent events
//    oldest-first, completion updates the last-begun record, and the
//    lifetime counter survives overwrites.
//  - Bit-identity: a pipeline with obs recording enabled produces the
//    exact same prediction/drift trajectory as its obs-disabled twin on
//    the label-rich C=23 configuration — instrumentation observes, never
//    participates.
//  - Concurrency: PipelineManager::stats() snapshots stay coherent while
//    producers and pool drain tasks are live across >= 4 streams (the CI
//    TSan job runs this file; see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/data/stream.hpp"
#include "edgedrift/obs/drift_journal.hpp"
#include "edgedrift/obs/latency_histogram.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using namespace edgedrift;
using obs::DriftEvent;
using obs::DriftJournal;
using obs::HistogramSnapshot;
using obs::LatencyHistogram;
using obs::RecoveryAction;

// ---------------------------------------------------------------- histogram

TEST(ObsHistogram, BucketBoundsContainEveryValue) {
  // Pure static functions — valid even under EDGEDRIFT_NO_OBS.
  for (std::size_t b = 0; b + 1 < LatencyHistogram::kBuckets; ++b) {
    EXPECT_LE(LatencyHistogram::bucket_lower_ns(b),
              LatencyHistogram::bucket_upper_ns(b));
    EXPECT_LE(LatencyHistogram::bucket_lower_ns(b),
              LatencyHistogram::bucket_lower_ns(b + 1));
    EXPECT_LT(LatencyHistogram::bucket_upper_ns(b),
              LatencyHistogram::bucket_upper_ns(b + 1))
        << "buckets must partition the range in order";
  }
  // Containment at the edges of every power of two, plus random draws.
  std::vector<std::uint64_t> values = {0, 1, 2};
  for (std::size_t p = 1; p < 63; ++p) {
    const std::uint64_t v = std::uint64_t{1} << p;
    values.push_back(v - 1);
    values.push_back(v);
    values.push_back(v + 1);
  }
  util::Rng rng(101);
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<std::uint64_t>(
        rng.uniform(0.0, 4.0e9)));
  }
  for (const std::uint64_t v : values) {
    const std::size_t b = LatencyHistogram::bucket_of(v);
    ASSERT_LT(b, LatencyHistogram::kBuckets);
    EXPECT_LE(LatencyHistogram::bucket_lower_ns(b), v) << "value " << v;
    EXPECT_GE(LatencyHistogram::bucket_upper_ns(b), v) << "value " << v;
  }
}

TEST(ObsHistogram, CountAndSumAreConserved) {
  if (!obs::kObsCompiled) GTEST_SKIP() << "built with EDGEDRIFT_NO_OBS";
  util::Rng rng(7);
  LatencyHistogram h;
  std::uint64_t expected_sum = 0;
  std::uint64_t expected_max = 0;
  constexpr std::size_t kN = 5000;
  for (std::size_t i = 0; i < kN; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform(0.0, 1.0e7));
    h.record(v);
    expected_sum += v;
    expected_max = std::max(expected_max, v);
  }
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), kN);
  EXPECT_EQ(s.sum_ns, expected_sum);
  EXPECT_EQ(s.max_ns, expected_max);
  EXPECT_NEAR(s.mean_ns(),
              static_cast<double>(expected_sum) / static_cast<double>(kN),
              1e-9);
  // The quantile upper bound brackets the true extremes.
  EXPECT_GE(s.quantile_upper_ns(1.0), expected_max);
  double prev_q = 0.0;
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const auto bound = static_cast<double>(s.quantile_upper_ns(q));
    EXPECT_GE(bound, prev_q) << "quantile bound must be monotone in q";
    prev_q = bound;
  }
}

TEST(ObsHistogram, MergeEqualsRecordingAll) {
  if (!obs::kObsCompiled) GTEST_SKIP() << "built with EDGEDRIFT_NO_OBS";
  util::Rng rng(23);
  for (int round = 0; round < 20; ++round) {
    LatencyHistogram a;
    LatencyHistogram b;
    LatencyHistogram all;
    const int na = static_cast<int>(rng.uniform(0.0, 400.0));
    const int nb = static_cast<int>(rng.uniform(0.0, 400.0));
    for (int i = 0; i < na; ++i) {
      const auto v = static_cast<std::uint64_t>(rng.uniform(0.0, 1.0e9));
      a.record(v);
      all.record(v);
    }
    for (int i = 0; i < nb; ++i) {
      const auto v = static_cast<std::uint64_t>(rng.uniform(0.0, 1.0e9));
      b.record(v);
      all.record(v);
    }
    a.merge(b);
    const HistogramSnapshot merged = a.snapshot();
    const HistogramSnapshot direct = all.snapshot();
    EXPECT_EQ(merged.buckets, direct.buckets);
    EXPECT_EQ(merged.sum_ns, direct.sum_ns);
    EXPECT_EQ(merged.max_ns, direct.max_ns);

    // The snapshot-level operator+= agrees with the atomic-level merge.
    HistogramSnapshot sum;
    sum += direct;
    EXPECT_EQ(sum.buckets, direct.buckets);
  }
}

// ------------------------------------------------------------------ journal

TEST(ObsJournal, WraparoundKeepsMostRecentOldestFirst) {
  if (!obs::kObsCompiled) GTEST_SKIP() << "built with EDGEDRIFT_NO_OBS";
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kLabels = 3;
  constexpr std::uint64_t kEvents = 20;
  DriftJournal journal(kCapacity, kLabels);
  std::vector<double> dist(kLabels);
  for (std::uint64_t e = 0; e < kEvents; ++e) {
    for (std::size_t c = 0; c < kLabels; ++c) {
      dist[c] = static_cast<double>(e) + 0.25 * static_cast<double>(c);
    }
    journal.begin_event(/*sample_index=*/e * 10,
                        /*statistic=*/static_cast<double>(e) * 0.5,
                        /*theta_drift=*/1.5, /*window_span=*/100,
                        e % 2 == 0 ? RecoveryAction::kReconstruct
                                   : RecoveryAction::kNone,
                        dist);
    if (e % 2 == 0) journal.complete_event(/*recovery_samples=*/e + 1);
  }
  EXPECT_EQ(journal.total_events(), kEvents);

  const std::vector<DriftEvent> events = journal.snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint64_t e = kEvents - kCapacity + i;  // Oldest first.
    const DriftEvent& ev = events[i];
    EXPECT_EQ(ev.sample_index, e * 10);
    EXPECT_DOUBLE_EQ(ev.statistic, static_cast<double>(e) * 0.5);
    EXPECT_DOUBLE_EQ(ev.theta_drift, 1.5);
    EXPECT_EQ(ev.window_span, 100u);
    EXPECT_EQ(ev.action, e % 2 == 0 ? RecoveryAction::kReconstruct
                                    : RecoveryAction::kNone);
    EXPECT_TRUE(ev.completed);  // Reconstructs completed, detect-only auto.
    EXPECT_EQ(ev.recovery_samples, e % 2 == 0 ? e + 1 : 0);
    ASSERT_EQ(ev.per_label_distance.size(), kLabels);
    for (std::size_t c = 0; c < kLabels; ++c) {
      EXPECT_DOUBLE_EQ(ev.per_label_distance[c],
                       static_cast<double>(e) +
                           0.25 * static_cast<double>(c));
    }
  }
}

TEST(ObsJournal, CompletionTargetsTheLastBegunEvent) {
  if (!obs::kObsCompiled) GTEST_SKIP() << "built with EDGEDRIFT_NO_OBS";
  DriftJournal journal(4, 2);
  journal.begin_event(5, 1.0, 2.0, 50, RecoveryAction::kReconstruct, {});
  {
    const std::vector<DriftEvent> events = journal.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_FALSE(events[0].completed);
    EXPECT_TRUE(events[0].per_label_distance.empty());
  }
  journal.begin_event(9, 1.5, 2.0, 50, RecoveryAction::kRecalibrate, {});
  journal.complete_event(123);
  const std::vector<DriftEvent> events = journal.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].completed) << "older event must stay open";
  EXPECT_TRUE(events[1].completed);
  EXPECT_EQ(events[1].recovery_samples, 123u);

  journal.reset();
  EXPECT_EQ(journal.total_events(), 0u);
  EXPECT_TRUE(journal.snapshot().empty());
}

// ------------------------------------------------------------- bit identity

/// The C=23 label-rich configuration (the fused-GEMM hot path), with a
/// genuine mid-stream concept shift so the drift branch, the journal and
/// the full recovery run under both obs settings.
struct TwinData {
  data::Dataset train;
  data::Dataset stream;
  std::size_t dim = 0;
  std::size_t labels = 0;
};

TwinData make_c23_data() {
  constexpr std::size_t kDim = 38;
  constexpr std::size_t kLabels = 23;
  util::Rng mean_rng(77);
  std::vector<data::GaussianClass> pre(kLabels);
  for (auto& cls : pre) {
    cls.mean.resize(kDim);
    for (auto& m : cls.mean) m = mean_rng.uniform(-2.0, 2.0);
    cls.stddev = {0.35};
    cls.weight = 1.0;
  }
  std::vector<data::GaussianClass> post = pre;
  util::Rng shift_rng(78);
  for (auto& cls : post) {
    // Displace every class off the trained manifold.
    for (auto& m : cls.mean) m += shift_rng.uniform(1.2, 2.0);
  }

  TwinData d;
  d.dim = kDim;
  d.labels = kLabels;
  const data::GaussianConcept pre_concept(pre);
  const data::GaussianConcept post_concept(post);
  util::Rng train_rng(2027);
  d.train = data::draw(pre_concept, 2300, train_rng);
  util::Rng stream_rng(2028);
  const data::Dataset stationary = data::draw(pre_concept, 800, stream_rng);
  const data::Dataset shifted = data::draw(post_concept, 1500, stream_rng);
  d.stream.x = linalg::Matrix(stationary.size() + shifted.size(), kDim);
  for (std::size_t i = 0; i < stationary.size(); ++i) {
    d.stream.x.set_row(i, stationary.x.row(i));
    d.stream.labels.push_back(stationary.labels[i]);
  }
  for (std::size_t i = 0; i < shifted.size(); ++i) {
    d.stream.x.set_row(stationary.size() + i, shifted.x.row(i));
    d.stream.labels.push_back(shifted.labels[i]);
  }
  return d;
}

TEST(ObsBitIdentity, TrajectoriesMatchWithObsOnAndOff) {
  const TwinData data = make_c23_data();

  core::PipelineConfig config;
  config.num_labels = data.labels;
  config.input_dim = data.dim;
  config.window_size = 100;
  config.seed = 9;

  core::PipelineConfig off_config = config;
  off_config.obs.enabled = false;

  core::Pipeline on(config);
  core::Pipeline off(off_config);
  on.fit(data.train.x, data.train.labels);
  off.fit(data.train.x, data.train.labels);
  ASSERT_EQ(on.theta_error(), off.theta_error());

  std::size_t drifts = 0;
  for (std::size_t i = 0; i < data.stream.size(); ++i) {
    const core::PipelineStep a =
        on.process(data.stream.x.row(i), data.stream.labels[i]);
    const core::PipelineStep b =
        off.process(data.stream.x.row(i), data.stream.labels[i]);
    ASSERT_EQ(a.prediction.label, b.prediction.label) << "sample " << i;
    ASSERT_EQ(a.prediction.score, b.prediction.score) << "sample " << i;
    ASSERT_EQ(a.drift_detected, b.drift_detected) << "sample " << i;
    ASSERT_EQ(a.statistic_valid, b.statistic_valid) << "sample " << i;
    ASSERT_EQ(a.statistic, b.statistic) << "sample " << i;
    ASSERT_EQ(a.reconstructing, b.reconstructing) << "sample " << i;
    ASSERT_EQ(a.reconstruction_finished, b.reconstruction_finished)
        << "sample " << i;
    drifts += a.drift_detected;
  }
  ASSERT_GE(drifts, 1u) << "the shifted stream must exercise the drift and "
                           "recovery instrumentation";

  if (obs::kObsCompiled) {
    // The enabled twin recorded the run; the disabled twin stayed frozen.
    const obs::StreamSnapshot recorded = on.obs().snapshot(0);
    EXPECT_EQ(recorded.counters.samples_in, data.stream.size());
    EXPECT_EQ(recorded.counters.samples_out, data.stream.size());
    EXPECT_EQ(recorded.counters.drifts, drifts);
    EXPECT_EQ(recorded.drift_events_total, drifts);
    const obs::StreamSnapshot frozen = off.obs().snapshot(0);
    EXPECT_EQ(frozen.counters.samples_in, 0u);
    EXPECT_EQ(frozen.drift_events_total, 0u);
  }
}

// -------------------------------------------------------------- concurrency

TEST(ObsConcurrency, StatsSnapshotsStayCoherentUnderLoad) {
  if (!obs::kObsCompiled) GTEST_SKIP() << "built with EDGEDRIFT_NO_OBS";
  constexpr std::size_t kStreams = 4;
  constexpr std::size_t kDim = 16;
  constexpr std::size_t kRounds = 40;
  constexpr std::size_t kBlockRows = 64;

  core::PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = kDim;
  config.hidden_dim = 12;
  // Stationary data, and any spurious detection only rearms the detector —
  // the trajectory stays on the hot path the whole test.
  config.recovery = core::RecoveryPolicy::kDetectOnly;

  core::ManagerOptions options;
  options.queue_capacity = 256;

  core::PipelineManager manager(config, kStreams, options);

  util::Rng rng(31);
  linalg::Matrix train(240, kDim);
  std::vector<int> labels(train.rows());
  for (std::size_t i = 0; i < train.rows(); ++i) {
    labels[i] = static_cast<int>(i % 2);
    const double mean = labels[i] == 0 ? 0.2 : 1.2;
    for (std::size_t j = 0; j < kDim; ++j) {
      train(i, j) = rng.gaussian(mean, 0.2);
    }
  }
  for (std::size_t s = 0; s < kStreams; ++s) manager.fit(s, train, labels);

  linalg::Matrix block(kBlockRows, kDim);
  for (std::size_t i = 0; i < kBlockRows; ++i) {
    const double mean = i % 2 == 0 ? 0.2 : 1.2;
    for (std::size_t j = 0; j < kDim; ++j) {
      block(i, j) = rng.gaussian(mean, 0.2);
    }
  }

  // Readers race the producers and the pool's drain tasks. Coherence under
  // the race: per-stream counters are monotone across snapshots, and every
  // sample completed by snapshot t must have been admitted by snapshot t+1
  // (causality: samples_out only advances after samples_in).
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::vector<std::uint64_t> prev_in(kStreams, 0);
      std::vector<std::uint64_t> prev_out(kStreams, 0);
      while (!stop.load(std::memory_order_relaxed)) {
        const obs::Snapshot snap = manager.stats();
        if (snap.streams.size() != kStreams) {
          failures.fetch_add(1);
          continue;
        }
        for (std::size_t s = 0; s < kStreams; ++s) {
          const obs::CounterSnapshot& c = snap.streams[s].counters;
          if (c.samples_in < prev_in[s] || c.samples_out < prev_out[s] ||
              prev_out[s] > c.samples_in) {
            failures.fetch_add(1);
          }
          prev_in[s] = c.samples_in;
          prev_out[s] = c.samples_out;
        }
        for (const obs::StreamSnapshot& s : snap.streams) {
          for (const DriftEvent& ev : s.journal) {
            if (ev.window_span != config.window_size ||
                ev.action != RecoveryAction::kNone) {
              failures.fetch_add(1);
            }
          }
        }
      }
    });
  }

  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      manager.submit_batch(s, block);
    }
  }
  manager.drain();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);

  // Quiescent state: the books balance exactly.
  const obs::Snapshot final_snap = manager.stats();
  ASSERT_EQ(final_snap.streams.size(), kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    const obs::CounterSnapshot& c = final_snap.streams[s].counters;
    EXPECT_EQ(c.samples_in, kRounds * kBlockRows);
    EXPECT_EQ(c.samples_out, kRounds * kBlockRows);
    EXPECT_EQ(c.rejected, 0u);  // kBlock backpressure never drops.
    EXPECT_LE(c.ring_high_water, options.queue_capacity);
    // submit->drain is sampled on absolute ring position: positions
    // 0..total-1 with (pos & mask) == 0, one per latency_sample_every.
    EXPECT_EQ(final_snap.streams[s].submit_to_drain.count(),
              kRounds * kBlockRows / config.obs.latency_sample_every);
  }
  const obs::CounterSnapshot totals = final_snap.totals();
  EXPECT_EQ(totals.samples_in, kStreams * kRounds * kBlockRows);
}

}  // namespace
