// Parameterized property suites (TEST_P): invariants swept across
// configuration space rather than spot-checked.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "edgedrift/cluster/kmeans.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/drift/centroid_detector.hpp"
#include "edgedrift/drift/quanttree.hpp"
#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/oselm/oselm.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::linalg::Matrix;
using edgedrift::oselm::Activation;
using edgedrift::util::Rng;

// ---------------------------------------------------------------------------
// Property: OS-ELM sequential training equals batch training, across hidden
// sizes, activations, regularization strengths, and split points.
// ---------------------------------------------------------------------------

using OsElmParams = std::tuple<std::size_t, Activation, double, std::size_t>;

class OsElmEquivalence : public ::testing::TestWithParam<OsElmParams> {};

TEST_P(OsElmEquivalence, SequentialEqualsBatch) {
  const auto [hidden, activation, lambda, split] = GetParam();
  Rng rng(hidden * 131 + static_cast<std::size_t>(activation) * 17 + split);
  const std::size_t total = 70;
  const std::size_t input = 6;
  const std::size_t output = 3;

  auto proj = edgedrift::oselm::make_projection(input, hidden, activation,
                                                rng);
  const Matrix x = Matrix::random_gaussian(total, input, rng);
  const Matrix t = Matrix::random_gaussian(total, output, rng);

  edgedrift::oselm::OsElmConfig config;
  config.output_dim = output;
  config.reg_lambda = lambda;

  edgedrift::oselm::OsElm sequential(proj, config);
  sequential.init_train(x.slice_rows(0, split), t.slice_rows(0, split));
  for (std::size_t i = split; i < total; ++i) {
    sequential.train(x.row(i), t.row(i));
  }

  edgedrift::oselm::OsElm batch(proj, config);
  batch.init_train(x, t);

  EXPECT_LT(Matrix::max_abs_diff(sequential.beta(), batch.beta()), 1e-6);
  EXPECT_LT(Matrix::max_abs_diff(sequential.p(), batch.p()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OsElmEquivalence,
    ::testing::Combine(
        ::testing::Values<std::size_t>(4, 12, 24),
        ::testing::Values(Activation::kSigmoid, Activation::kTanh,
                          Activation::kIdentity),
        ::testing::Values(1e-3, 1e-1),
        ::testing::Values<std::size_t>(30, 50)));

// ---------------------------------------------------------------------------
// Property: the centroid detector stays quiet on its training distribution
// and fires on a shifted one, across dimensions / window sizes / label
// counts.
// ---------------------------------------------------------------------------

using DetectorParams = std::tuple<std::size_t, std::size_t, std::size_t>;

class CentroidDetectorSweep
    : public ::testing::TestWithParam<DetectorParams> {};

TEST_P(CentroidDetectorSweep, QuietOnConceptFiresOnShift) {
  const auto [dim, window, labels] = GetParam();
  if (window < 5 * labels) {
    // Genuine constraint of Algorithm 1, not a bug: each label's recent
    // centroid averages only ~W/C window samples, and below ~5 samples per
    // class the sampling noise of the centroid alone can cross the Eq. 1
    // threshold (which is calibrated on per-sample distances). This is the
    // quantitative face of the paper's Section 5.2 guidance that W must be
    // chosen against the expected drift behaviour.
    GTEST_SKIP() << "window too small for " << labels
                 << " labels (W >= 5*C required for a stable window mean)";
  }
  Rng rng(dim * 7 + window * 3 + labels);

  // Training data: `labels` well-separated anchors.
  const std::size_t per_label = 120;
  Matrix train(per_label * labels, dim);
  std::vector<int> train_labels(per_label * labels);
  for (std::size_t c = 0; c < labels; ++c) {
    for (std::size_t i = 0; i < per_label; ++i) {
      const std::size_t row = c * per_label + i;
      train_labels[row] = static_cast<int>(c);
      for (std::size_t j = 0; j < dim; ++j) {
        train(row, j) = rng.gaussian(3.0 * static_cast<double>(c), 0.2);
      }
    }
  }

  edgedrift::drift::CentroidDetectorConfig config;
  config.num_labels = labels;
  config.dim = dim;
  config.window_size = window;
  config.theta_error = 0.0;  // Gate open: test the distance logic itself.
  config.initial_count = 0;
  edgedrift::drift::CentroidDetector detector(config);
  detector.calibrate(train, train_labels);

  // Phase 1: stationary stream must not fire.
  std::vector<double> x(dim);
  for (std::size_t i = 0; i < 12 * window; ++i) {
    const std::size_t c = i % labels;
    for (auto& v : x) v = rng.gaussian(3.0 * static_cast<double>(c), 0.2);
    edgedrift::drift::Observation obs;
    obs.x = x;
    obs.predicted_label = static_cast<int>(c);
    obs.anomaly_score = 1.0;
    EXPECT_FALSE(detector.observe(obs).drift)
        << "false alarm at stationary sample " << i;
  }

  // Phase 2: every anchor shifts by +2 per dimension; must fire.
  bool fired = false;
  for (std::size_t i = 0; i < 40 * window && !fired; ++i) {
    const std::size_t c = i % labels;
    for (auto& v : x) {
      v = rng.gaussian(3.0 * static_cast<double>(c) + 2.0, 0.2);
    }
    edgedrift::drift::Observation obs;
    obs.x = x;
    obs.predicted_label = static_cast<int>(c);
    obs.anomaly_score = 1.0;
    fired = detector.observe(obs).drift;
  }
  EXPECT_TRUE(fired) << "shift never detected";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CentroidDetectorSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 8, 32),
                       ::testing::Values<std::size_t>(10, 50),
                       ::testing::Values<std::size_t>(1, 2, 3)));

// ---------------------------------------------------------------------------
// Property: QuantTree's false-positive rate tracks alpha and its detection
// power holds, across bin counts and batch sizes.
// ---------------------------------------------------------------------------

using QuantTreeParams = std::tuple<std::size_t, std::size_t>;

class QuantTreeSweep : public ::testing::TestWithParam<QuantTreeParams> {};

TEST_P(QuantTreeSweep, FalsePositiveRateAndPower) {
  const auto [bins, batch] = GetParam();
  Rng rng(bins * 1000 + batch);

  edgedrift::drift::QuantTreeConfig config;
  config.num_bins = bins;
  config.batch_size = batch;
  config.alpha = 0.02;
  config.monte_carlo_trials = 3000;
  edgedrift::drift::QuantTree qt(config);

  Matrix reference(1500, 4);
  for (std::size_t i = 0; i < reference.rows(); ++i) {
    for (std::size_t j = 0; j < 4; ++j) reference(i, j) = rng.gaussian();
  }
  qt.fit(reference);

  // FP rate over in-distribution batches.
  int fires = 0;
  const int trials = 150;
  Matrix b(batch, 4);
  for (int t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < batch; ++i) {
      for (std::size_t j = 0; j < 4; ++j) b(i, j) = rng.gaussian();
    }
    if (qt.statistic(b) > qt.threshold()) ++fires;
  }
  // alpha = 2%; allow up to ~8% for finite-reference effects.
  EXPECT_LE(fires, trials * 8 / 100 + 2);

  // Power: a 2-sigma mean shift must be caught essentially always.
  int detected = 0;
  for (int t = 0; t < 20; ++t) {
    for (std::size_t i = 0; i < batch; ++i) {
      for (std::size_t j = 0; j < 4; ++j) b(i, j) = rng.gaussian(2.0, 1.0);
    }
    if (qt.statistic(b) > qt.threshold()) ++detected;
  }
  EXPECT_GE(detected, 19);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantTreeSweep,
                         ::testing::Combine(
                             ::testing::Values<std::size_t>(8, 16, 32),
                             ::testing::Values<std::size_t>(64, 256)));

// ---------------------------------------------------------------------------
// Property: k-means bookkeeping invariants hold for every k.
// ---------------------------------------------------------------------------

class KMeansSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansSweep, CountsPartitionAndInertiaConsistent) {
  const std::size_t k = GetParam();
  Rng rng(k * 97);
  Matrix x(240, 3);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      x(i, j) = rng.gaussian(static_cast<double>(i % 4) * 5.0, 0.3);
    }
  }
  const auto result = edgedrift::cluster::kmeans(x, k, rng);

  // Counts partition the data.
  std::size_t total = 0;
  for (const auto c : result.counts) total += c;
  EXPECT_EQ(total, x.rows());
  // Assignments agree with nearest centroids.
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(result.assignments[i]),
              edgedrift::cluster::nearest_centroid(x.row(i),
                                                   result.centroids));
  }
  // Inertia equals the recomputed sum of squared distances.
  double inertia = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    inertia += edgedrift::linalg::squared_l2_distance(
        x.row(i), result.centroids.row(result.assignments[i]));
  }
  EXPECT_NEAR(result.inertia, inertia, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KMeansSweep,
                         ::testing::Values<std::size_t>(1, 2, 4, 7));

// ---------------------------------------------------------------------------
// Property: drift composers preserve labels/dimensions and the advertised
// schedule, across lengths and transition windows.
// ---------------------------------------------------------------------------

using ComposerParams = std::tuple<std::size_t, std::size_t, std::size_t>;

class DriftComposerSweep : public ::testing::TestWithParam<ComposerParams> {};

TEST_P(DriftComposerSweep, SchedulesHold) {
  const auto [n, start, end] = GetParam();
  Rng rng(n + start + end);

  edgedrift::data::GaussianClass lo;
  lo.mean = {0.0};
  lo.stddev = {0.1};
  edgedrift::data::GaussianClass hi;
  hi.mean = {10.0};
  hi.stddev = {0.1};
  const edgedrift::data::GaussianConcept a({lo});
  const edgedrift::data::GaussianConcept b({hi});

  const auto sudden =
      edgedrift::data::make_sudden_drift(a, b, n, start, rng);
  ASSERT_EQ(sudden.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < start) {
      EXPECT_LT(sudden.x(i, 0), 5.0);
    } else {
      EXPECT_GT(sudden.x(i, 0), 5.0);
    }
  }

  const auto reoccurring =
      edgedrift::data::make_reoccurring_drift(a, b, n, start, end, rng);
  for (std::size_t i = 0; i < n; ++i) {
    const bool inside = i >= start && i < end;
    EXPECT_EQ(reoccurring.x(i, 0) > 5.0, inside) << "at index " << i;
  }

  const auto gradual =
      edgedrift::data::make_gradual_drift(a, b, n, start, end, rng);
  for (std::size_t i = 0; i < start; ++i) EXPECT_LT(gradual.x(i, 0), 5.0);
  for (std::size_t i = end; i < n; ++i) EXPECT_GT(gradual.x(i, 0), 5.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DriftComposerSweep,
    ::testing::Values(std::make_tuple(200u, 50u, 150u),
                      std::make_tuple(500u, 100u, 400u),
                      std::make_tuple(100u, 0u, 100u),
                      std::make_tuple(300u, 150u, 150u)));

}  // namespace
