// The vectorized kernel layer (linalg/simd.hpp + gemm.cpp + vector_ops.cpp)
// against the preserved pre-SIMD scalar kernels (linalg/naive.hpp).
//
// Numerics policy under test (docs/ARCHITECTURE.md, "Kernel layer &
// numerics policy"): optimized and naive kernels agree to 1e-12 RELATIVE
// tolerance, never assumed bit-exact — the SIMD backends fuse multiply-adds
// and reduce with multiple accumulators. What IS bit-exact, within one
// build, is the scalar-vs-batch pair the pipeline relies on: a GEMM output
// row against matvec_transposed on the same data (both are one ascending-k
// madd chain per element), which is the contract behind
// Pipeline::process_batch() == process().
//
// Shapes deliberately stress the tails: 1x1, prime dims (7x13x31) that
// never fill a register tile, single row/column, and zero-sized edges.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/linalg/naive.hpp"
#include "edgedrift/linalg/quant.hpp"
#include "edgedrift/linalg/simd.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::linalg::Matrix;
using edgedrift::util::Rng;
namespace linalg = edgedrift::linalg;

constexpr double kRelTol = 1e-12;

void expect_close(double got, double want, const char* what) {
  const double scale = std::max({1.0, std::abs(got), std::abs(want)});
  EXPECT_LE(std::abs(got - want), kRelTol * scale) << what << ": got " << got
                                                   << " want " << want;
}

void expect_matrix_close(const Matrix& got, const Matrix& want,
                         const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      expect_close(got(i, j), want(i, j), what);
    }
  }
}

// m x k x n shapes covering register-tile interiors and every tail case.
struct Shape {
  std::size_t m, k, n;
};

const Shape kShapes[] = {
    {1, 1, 1},     // Degenerate: all tails.
    {7, 13, 31},   // Primes: partial row tile and partial column panel.
    {1, 40, 17},   // Single output row.
    {23, 5, 1},    // Single output column: no full panel at any width.
    {4, 8, 8},     // Exactly one AVX2 register tile.
    {12, 16, 24},  // Multiple full tiles, no tails.
    {0, 5, 7},     // Zero rows.
    {5, 0, 7},     // Empty inner dimension: C must be all zeros.
    {64, 33, 129}, // Large with both tails.
};

TEST(SimdKernels, MatmulMatchesNaive) {
  Rng rng(42);
  for (const Shape& s : kShapes) {
    const Matrix a = Matrix::random_gaussian(s.m, s.k, rng);
    const Matrix b = Matrix::random_gaussian(s.k, s.n, rng);
    expect_matrix_close(linalg::matmul(a, b), linalg::naive::matmul(a, b),
                        "matmul");
  }
}

TEST(SimdKernels, MatmulAtBMatchesNaive) {
  Rng rng(43);
  for (const Shape& s : kShapes) {
    const Matrix a = Matrix::random_gaussian(s.k, s.m, rng);
    const Matrix b = Matrix::random_gaussian(s.k, s.n, rng);
    expect_matrix_close(linalg::matmul_at_b(a, b),
                        linalg::naive::matmul_at_b(a, b), "matmul_at_b");
  }
}

TEST(SimdKernels, MatmulABtMatchesNaive) {
  Rng rng(44);
  for (const Shape& s : kShapes) {
    const Matrix a = Matrix::random_gaussian(s.m, s.k, rng);
    const Matrix b = Matrix::random_gaussian(s.n, s.k, rng);
    expect_matrix_close(linalg::matmul_a_bt(a, b),
                        linalg::naive::matmul_a_bt(a, b), "matmul_a_bt");
  }
}

TEST(SimdKernels, MatvecMatchesNaive) {
  Rng rng(45);
  for (const Shape& s : kShapes) {
    const Matrix a = Matrix::random_gaussian(s.m, s.n, rng);
    std::vector<double> x(s.n), got(s.m), want(s.m);
    for (auto& v : x) v = rng.gaussian();
    linalg::matvec(a, x, got);
    linalg::naive::matvec(a, x, want);
    for (std::size_t i = 0; i < s.m; ++i) {
      expect_close(got[i], want[i], "matvec");
    }
  }
}

TEST(SimdKernels, MatvecTransposedMatchesNaive) {
  Rng rng(46);
  for (const Shape& s : kShapes) {
    const Matrix a = Matrix::random_gaussian(s.m, s.n, rng);
    std::vector<double> x(s.m), got(s.n), want(s.n);
    for (auto& v : x) v = rng.gaussian();
    linalg::matvec_transposed(a, x, got);
    linalg::naive::matvec_transposed(a, x, want);
    for (std::size_t j = 0; j < s.n; ++j) {
      expect_close(got[j], want[j], "matvec_transposed");
    }
  }
}

TEST(SimdKernels, GerMatchesNaive) {
  Rng rng(47);
  for (const Shape& s : kShapes) {
    Matrix got = Matrix::random_gaussian(s.m, s.n, rng);
    Matrix want = got;
    std::vector<double> u(s.m), v(s.n);
    for (auto& e : u) e = rng.gaussian();
    for (auto& e : v) e = rng.gaussian();
    linalg::ger(got, 0.75, u, v);
    linalg::naive::ger(want, 0.75, u, v);
    expect_matrix_close(got, want, "ger");
  }
}

TEST(SimdKernels, DotMatchesNaiveAtTolerance) {
  // The multi-accumulator reduction is the policy's canonical "tolerance,
  // not identity" case: a different summation order than the naive
  // ascending loop, required to agree only to 1e-12 relative.
  Rng rng(48);
  for (const std::size_t n : {0UL, 1UL, 3UL, 7UL, 64UL, 129UL, 1000UL}) {
    std::vector<double> a(n), b(n);
    for (auto& v : a) v = rng.gaussian();
    for (auto& v : b) v = rng.gaussian();
    expect_close(linalg::dot(a, b), linalg::naive::dot(a, b), "dot");
  }
}

TEST(SimdKernels, ZeroHeavyInputsMatch) {
  // The old scalar kernels skipped zero multipliers via a branch; the
  // vectorized layer must produce the same values branch-free.
  Rng rng(49);
  Matrix a = Matrix::random_gaussian(9, 14, rng);
  std::vector<double> x(9, 0.0);
  x[2] = 1.5;
  x[7] = -0.25;  // Mostly zeros: the branch would have skipped 7 of 9 rows.
  std::vector<double> got(14), want(14);
  linalg::matvec_transposed(a, x, got);
  linalg::naive::matvec_transposed(a, x, want);
  for (std::size_t j = 0; j < 14; ++j) {
    expect_close(got[j], want[j], "zero-heavy matvec_transposed");
  }
}

TEST(SimdKernels, GemmRowBitIdenticalToMatvecTransposed) {
  // The bit-identity contract itself: row r of A*B must equal B^T * A.row(r)
  // EXACTLY (EXPECT_EQ, no tolerance) within a build, because both sides are
  // a single ascending-k madd chain per output element. This is the kernel-
  // level fact behind Pipeline::process_batch() == process().
  Rng rng(50);
  for (const Shape& s : kShapes) {
    if (s.m == 0) continue;
    const Matrix a = Matrix::random_gaussian(s.m, s.k, rng);
    const Matrix b = Matrix::random_gaussian(s.k, s.n, rng);
    const Matrix c = linalg::matmul(a, b);
    std::vector<double> y(s.n);
    for (std::size_t r = 0; r < s.m; ++r) {
      linalg::matvec_transposed(b, a.row(r), y);
      for (std::size_t j = 0; j < s.n; ++j) {
        EXPECT_EQ(c(r, j), y[j]) << "row " << r << " col " << j << " shape "
                                 << s.m << "x" << s.k << "x" << s.n;
      }
    }
  }
}

TEST(SimdKernels, SquaredL2MatchesScalarAtTolerance) {
  Rng rng(51);
  for (const std::size_t n : {1UL, 5UL, 38UL, 128UL, 511UL}) {
    std::vector<double> a(n), b(n);
    for (auto& v : a) v = rng.gaussian();
    for (auto& v : b) v = rng.gaussian();
    double want = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[i];
      want += d * d;
    }
    expect_close(linalg::squared_l2_distance(a, b), want,
                 "squared_l2_distance");
    double l1 = 0.0;
    for (std::size_t i = 0; i < n; ++i) l1 += std::abs(a[i] - b[i]);
    expect_close(linalg::l1_distance(a, b), l1, "l1_distance");
  }
}

// --- int8 lanes -----------------------------------------------------------
//
// The i8 kernels are exact in int32 (2^16 terms x 127^2 < 2^31), so every
// backend — portable scalar, AVX2 maddubs pairs, and the AVX-VNNI quad lane
// — must produce the bit-identical accumulator of the naive ascending loop.
// EXPECT_EQ throughout, no tolerance.

std::vector<std::int8_t> random_codes(Rng& rng, std::size_t n) {
  std::vector<std::int8_t> codes(n);
  for (auto& c : codes) {
    // Full symmetric code domain including the +/-127 extremes.
    c = static_cast<std::int8_t>(
        std::lround(std::clamp(rng.gaussian() * 64.0, -127.0, 127.0)));
  }
  return codes;
}

const std::size_t kI8Sizes[] = {1, 2, 7, 15, 16, 17, 31, 32, 33, 64, 129};

TEST(SimdKernels, I8ScaledAccumulateMatchesScalarExactly) {
  namespace simd = linalg::simd;
  Rng rng(53);
  for (const std::size_t n : kI8Sizes) {
    const auto row0 = random_codes(rng, n);
    const auto row1 = random_codes(rng, n);
    for (const int x0 : {-127, -3, 0, 1, 127}) {
      for (const int x1 : {-127, 2, 127}) {
        std::vector<std::int32_t> got(n), want(n);
        for (std::size_t j = 0; j < n; ++j) {
          got[j] = static_cast<std::int32_t>(rng.gaussian() * 1000.0);
          want[j] = got[j] + x0 * row0[j] + x1 * row1[j];
        }
        std::vector<std::int32_t> got2 = got;
        simd::i8_scaled_accumulate(static_cast<std::int8_t>(x0), row0.data(),
                                   got.data(), n);
        simd::i8_scaled_accumulate(static_cast<std::int8_t>(x1), row1.data(),
                                   got.data(), n);
        simd::i8_scaled_accumulate2(static_cast<std::int8_t>(x0), row0.data(),
                                    static_cast<std::int8_t>(x1), row1.data(),
                                    got2.data(), n);
        for (std::size_t j = 0; j < n; ++j) {
          EXPECT_EQ(got[j], want[j]) << "accumulate n=" << n << " j=" << j;
          EXPECT_EQ(got2[j], want[j]) << "accumulate2 n=" << n << " j=" << j;
        }
      }
    }
  }
}

#if defined(EDGEDRIFT_HAVE_I8_VNNI)
TEST(SimdKernels, I8VnniQuadMatchesScalarExactly) {
  namespace simd = linalg::simd;
  if (!simd::i8_vnni_available()) {
    GTEST_SKIP() << "host CPU lacks avx512vnni+avx512vl";
  }
  Rng rng(54);
  for (const std::size_t n : kI8Sizes) {
    std::vector<std::vector<std::int8_t>> rows;
    for (int r = 0; r < 4; ++r) rows.push_back(random_codes(rng, n));
    // Extremes plus a zero multiplier (a zero x must contribute nothing —
    // the sign trick maps it to zero magnitude, not to a stray sign).
    const std::int32_t xs[4] = {127, -127, 0, -5};
    const std::int8_t* row_ptrs[4] = {rows[0].data(), rows[1].data(),
                                      rows[2].data(), rows[3].data()};
    std::vector<std::int32_t> got(n), want(n);
    for (std::size_t j = 0; j < n; ++j) {
      got[j] = static_cast<std::int32_t>(rng.gaussian() * 1000.0);
      want[j] = got[j];
      for (int r = 0; r < 4; ++r) want[j] += xs[r] * rows[r][j];
    }
    simd::i8_scaled_accumulate4_vnni(xs, row_ptrs, got.data(), n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(got[j], want[j]) << "vnni quad n=" << n << " j=" << j;
    }
  }
}
#endif  // EDGEDRIFT_HAVE_I8_VNNI

TEST(SimdKernels, I8MatvecTransposedDequantMatchesReference) {
  // End-to-end over the dispatcher (zero-skip + pair/quad selection + VNNI
  // runtime gate): the int32 accumulator is exact, and the dequant multiply
  // happens in the same order on both sides, so the floats match EXACTLY.
  Rng rng(55);
  for (const Shape& s : kShapes) {
    if (s.m == 0 || s.n == 0) continue;
    const Matrix a = Matrix::random_gaussian(s.m, s.n, rng);
    linalg::QuantizedMatrix qa;
    linalg::quantize(a, qa);
    auto q_x = random_codes(rng, s.m);
    // Sprinkle zeros so the zero-skip path sees uneven run lengths.
    for (std::size_t i = 0; i < s.m; i += 3) q_x[i] = 0;
    const float x_scale = 0.0125f;
    std::vector<std::int32_t> acc(s.n);
    std::vector<float> got(s.n), want(s.n);
    linalg::i8_matvec_transposed_dequant(qa, q_x, x_scale, acc, got);
    for (std::size_t j = 0; j < s.n; ++j) {
      std::int32_t sum = 0;
      for (std::size_t i = 0; i < s.m; ++i) {
        sum += static_cast<std::int32_t>(q_x[i]) *
               static_cast<std::int32_t>(qa.q(i, j));
      }
      want[j] = static_cast<float>(sum) * x_scale * qa.scales[j];
      EXPECT_EQ(got[j], want[j])
          << "i8 matvec_t " << s.m << "x" << s.n << " j=" << j;
    }
  }
}

TEST(SimdKernels, ScaledAccumulateIsPerElementMadd) {
  // scaled_accumulate's contract: y[j] = madd(s, x[j], y[j]) exactly, for
  // every j regardless of vector width or tail position.
  namespace simd = linalg::simd;
  Rng rng(52);
  for (const std::size_t n : {1UL, 4UL, 7UL, 8UL, 9UL, 40UL, 129UL}) {
    std::vector<double> x(n), y(n), want(n);
    for (auto& v : x) v = rng.gaussian();
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = rng.gaussian();
      want[i] = simd::madd(0.6180339887, x[i], y[i]);
    }
    simd::scaled_accumulate(0.6180339887, x.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y[i], want[i]) << "n=" << n << " i=" << i;
    }
  }
}

}  // namespace
