// Parameterized property sweeps for the linear-algebra substrate, swept
// across matrix sizes: factorization identities, incremental-update
// equivalence, and GEMM algebraic laws.
#include <gtest/gtest.h>

#include <cmath>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/linalg/solve.hpp"
#include "edgedrift/linalg/updates.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::linalg::Matrix;
using edgedrift::util::Rng;
namespace linalg = edgedrift::linalg;

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix a = Matrix::random_gaussian(n, n, rng);
  Matrix spd = linalg::matmul_at_b(a, a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  return spd;
}

class SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SizeSweep, LuSolveResidualIsTiny) {
  const std::size_t n = GetParam();
  Rng rng(n * 3 + 1);
  const Matrix a = random_spd(n, rng);
  std::vector<double> b(n), x(n), residual(n);
  for (auto& v : b) v = rng.gaussian();
  const auto f = linalg::lu_factor(a);
  ASSERT_TRUE(f.has_value());
  linalg::lu_solve(*f, b, x);
  linalg::matvec(a, x, residual);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(residual[i], b[i], 1e-8 * (1.0 + std::abs(b[i])));
  }
}

TEST_P(SizeSweep, CholeskyAgreesWithLuOnSpd) {
  const std::size_t n = GetParam();
  Rng rng(n * 5 + 2);
  const Matrix a = random_spd(n, rng);
  const auto chol = linalg::spd_inverse(a);
  const auto lu = linalg::inverse(a);
  ASSERT_TRUE(chol.has_value());
  ASSERT_TRUE(lu.has_value());
  EXPECT_LT(Matrix::max_abs_diff(*chol, *lu), 1e-7);
}

TEST_P(SizeSweep, RepeatedShermanMorrisonTracksDirectInverse) {
  const std::size_t n = GetParam();
  Rng rng(n * 7 + 3);
  Matrix a = random_spd(n, rng);
  Matrix p = *linalg::inverse(a);
  // 10 successive rank-1 updates, then compare against one direct inverse.
  for (int step = 0; step < 10; ++step) {
    std::vector<double> u(n), v(n);
    for (auto& e : u) e = rng.gaussian(0.0, 0.3);
    for (auto& e : v) e = rng.gaussian(0.0, 0.3);
    ASSERT_TRUE(linalg::sherman_morrison_update(p, u, v));
    linalg::ger(a, 1.0, u, v);
  }
  const auto direct = linalg::inverse(a);
  ASSERT_TRUE(direct.has_value());
  EXPECT_LT(Matrix::max_abs_diff(p, *direct), 1e-6);
}

TEST_P(SizeSweep, WoodburyEqualsSequentialRankOne) {
  const std::size_t n = GetParam();
  const std::size_t k = 4;
  Rng rng(n * 11 + 4);
  const Matrix a = random_spd(n, rng);
  const Matrix u = Matrix::random_gaussian(n, k, rng, 0.3);

  // Symmetric update A + U U^T applied two ways.
  Matrix p_block = *linalg::inverse(a);
  ASSERT_TRUE(linalg::woodbury_update(p_block, u, u));

  Matrix p_seq = *linalg::inverse(a);
  for (std::size_t col = 0; col < k; ++col) {
    std::vector<double> uc(n);
    for (std::size_t r = 0; r < n; ++r) uc[r] = u(r, col);
    ASSERT_TRUE(linalg::sherman_morrison_update(p_seq, uc, uc));
  }
  EXPECT_LT(Matrix::max_abs_diff(p_block, p_seq), 1e-7);
}

TEST_P(SizeSweep, GemmIsAssociativeWithinTolerance) {
  const std::size_t n = GetParam();
  Rng rng(n * 13 + 5);
  const Matrix a = Matrix::random_gaussian(n, n, rng);
  const Matrix b = Matrix::random_gaussian(n, n, rng);
  const Matrix c = Matrix::random_gaussian(n, n, rng);
  const Matrix left = linalg::matmul(linalg::matmul(a, b), c);
  const Matrix right = linalg::matmul(a, linalg::matmul(b, c));
  EXPECT_LT(Matrix::max_abs_diff(left, right),
            1e-9 * static_cast<double>(n) * static_cast<double>(n));
}

TEST_P(SizeSweep, TransposeDistributesOverProduct) {
  const std::size_t n = GetParam();
  Rng rng(n * 17 + 6);
  const Matrix a = Matrix::random_gaussian(n, n + 2, rng);
  const Matrix b = Matrix::random_gaussian(n + 2, n + 1, rng);
  const Matrix lhs = linalg::matmul(a, b).transposed();
  const Matrix rhs = linalg::matmul(b.transposed(), a.transposed());
  EXPECT_LT(Matrix::max_abs_diff(lhs, rhs), 1e-10);
}

TEST_P(SizeSweep, RegularizedPinvShrinksWithLambda) {
  // Larger ridge => smaller solution norm (shrinkage property).
  const std::size_t n = GetParam();
  Rng rng(n * 19 + 7);
  const Matrix a = Matrix::random_gaussian(3 * n, n, rng);
  const Matrix b = Matrix::random_gaussian(3 * n, 1, rng);
  double previous_norm = 1e300;
  for (const double lambda : {1e-6, 1e-2, 1.0, 100.0}) {
    const Matrix x = linalg::ridge_least_squares(a, b, lambda);
    double norm = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) norm += x(i, 0) * x(i, 0);
    EXPECT_LE(norm, previous_norm * (1.0 + 1e-9));
    previous_norm = norm;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SizeSweep,
                         ::testing::Values<std::size_t>(2, 5, 13, 22, 40));

}  // namespace
