// Tests for binary serialization and pipeline checkpointing.
#include <gtest/gtest.h>

#include <sstream>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/io/binary.hpp"
#include "edgedrift/io/checkpoint.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::core::Pipeline;
using edgedrift::core::PipelineConfig;
using edgedrift::io::Reader;
using edgedrift::io::Writer;
using edgedrift::linalg::Matrix;
using edgedrift::util::Rng;

TEST(Binary, PrimitiveRoundTrip) {
  std::stringstream buffer;
  Writer w(buffer);
  w.write_u32(0xdeadbeef);
  w.write_u64(1234567890123ull);
  w.write_f64(-3.25);
  w.write_string("edge");
  ASSERT_TRUE(w.ok());

  Reader r(buffer);
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  double f = 0.0;
  std::string s;
  EXPECT_TRUE(r.read_u32(u32));
  EXPECT_TRUE(r.read_u64(u64));
  EXPECT_TRUE(r.read_f64(f));
  EXPECT_TRUE(r.read_string(s));
  EXPECT_EQ(u32, 0xdeadbeef);
  EXPECT_EQ(u64, 1234567890123ull);
  EXPECT_DOUBLE_EQ(f, -3.25);
  EXPECT_EQ(s, "edge");
}

TEST(Binary, MatrixAndVectorRoundTrip) {
  Rng rng(1);
  const Matrix m = Matrix::random_gaussian(5, 7, rng);
  std::vector<double> v{1.5, -2.5, 3.5};
  std::vector<std::size_t> sizes{9, 0, 42};

  std::stringstream buffer;
  Writer w(buffer);
  w.write_matrix(m);
  w.write_doubles(v);
  w.write_sizes(sizes);
  ASSERT_TRUE(w.ok());

  Reader r(buffer);
  Matrix m2;
  std::vector<double> v2;
  std::vector<std::size_t> sizes2;
  EXPECT_TRUE(r.read_matrix(m2));
  EXPECT_TRUE(r.read_doubles(v2));
  EXPECT_TRUE(r.read_sizes(sizes2));
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(m, m2), 0.0);
  EXPECT_EQ(v, v2);
  EXPECT_EQ(sizes, sizes2);
}

TEST(Binary, HeaderRejectsWrongSection) {
  std::stringstream buffer;
  Writer w(buffer);
  w.write_header("alpha");
  Reader r(buffer);
  EXPECT_FALSE(r.read_header("beta"));
  EXPECT_FALSE(r.ok());
}

TEST(Binary, TruncatedStreamFailsLatching) {
  std::stringstream buffer;
  Writer w(buffer);
  w.write_u32(5);
  Reader r(buffer);
  std::uint64_t u64 = 0;
  EXPECT_FALSE(r.read_u64(u64));  // Only 4 bytes available.
  std::uint32_t u32 = 0;
  EXPECT_FALSE(r.read_u32(u32));  // Failure latches.
}

TEST(Binary, CorruptLengthPrefixRejected) {
  std::stringstream buffer;
  Writer w(buffer);
  w.write_u64(~0ull);  // Absurd element count.
  Reader r(buffer);
  std::vector<double> v;
  EXPECT_FALSE(r.read_doubles(v));
}

// ------------------------------------------------------------- checkpoints

struct Scenario {
  edgedrift::data::Dataset train;
  edgedrift::data::Dataset stream;
};

Scenario make_scenario(Rng& rng) {
  edgedrift::data::GaussianClass a;
  a.mean.assign(6, 0.25);
  a.stddev = {0.1};
  edgedrift::data::GaussianClass b;
  b.mean.assign(6, 0.75);
  b.stddev = {0.1};
  edgedrift::data::GaussianConcept concept_ab({a, b});
  Scenario s;
  s.train = edgedrift::data::draw(concept_ab, 300, rng);
  s.stream = edgedrift::data::draw(concept_ab, 200, rng);
  return s;
}

PipelineConfig small_config() {
  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = 6;
  config.hidden_dim = 4;
  config.window_size = 20;
  config.seed = 99;
  return config;
}

TEST(Checkpoint, RoundTripPreservesPredictions) {
  Rng rng(2);
  auto scenario = make_scenario(rng);
  Pipeline original(small_config());
  original.fit(scenario.train.x, scenario.train.labels);

  std::stringstream buffer;
  ASSERT_TRUE(edgedrift::io::save_pipeline(buffer, original));
  auto restored = edgedrift::io::load_pipeline(buffer);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->fitted());
  EXPECT_DOUBLE_EQ(restored->theta_error(), original.theta_error());
  EXPECT_DOUBLE_EQ(restored->centroid_detector()->theta_drift(),
                   original.centroid_detector()->theta_drift());

  // Every prediction and score must be bit-identical.
  for (std::size_t i = 0; i < scenario.stream.size(); ++i) {
    const auto a = original.model().predict(scenario.stream.x.row(i));
    const auto b = restored->model().predict(scenario.stream.x.row(i));
    EXPECT_EQ(a.label, b.label);
    EXPECT_DOUBLE_EQ(a.score, b.score);
  }
}

TEST(Checkpoint, RestoredPipelineKeepsStreamingIdentically) {
  Rng rng(3);
  auto scenario = make_scenario(rng);
  Pipeline original(small_config());
  original.fit(scenario.train.x, scenario.train.labels);

  std::stringstream buffer;
  ASSERT_TRUE(edgedrift::io::save_pipeline(buffer, original));
  auto restored = edgedrift::io::load_pipeline(buffer);
  ASSERT_TRUE(restored.has_value());

  // Process the same stream through both; outcomes must agree sample by
  // sample (both start from the same persisted detector state).
  for (std::size_t i = 0; i < scenario.stream.size(); ++i) {
    const auto a = original.process(scenario.stream.x.row(i));
    const auto b = restored->process(scenario.stream.x.row(i));
    EXPECT_EQ(a.prediction.label, b.prediction.label);
    EXPECT_EQ(a.drift_detected, b.drift_detected);
    EXPECT_DOUBLE_EQ(a.statistic, b.statistic);
  }
}

TEST(Checkpoint, UnfittedPipelineRefusesToSave) {
  Pipeline pipeline(small_config());
  std::stringstream buffer;
  EXPECT_FALSE(edgedrift::io::save_pipeline(buffer, pipeline));
}

TEST(Checkpoint, CorruptedBlobRejected) {
  Rng rng(4);
  auto scenario = make_scenario(rng);
  Pipeline original(small_config());
  original.fit(scenario.train.x, scenario.train.labels);

  std::stringstream buffer;
  ASSERT_TRUE(edgedrift::io::save_pipeline(buffer, original));
  std::string blob = buffer.str();
  // Flip a byte inside the projection-weight block.
  blob[blob.size() / 2] ^= 0x40;
  std::stringstream corrupted(blob);
  EXPECT_FALSE(edgedrift::io::load_pipeline(corrupted).has_value());
}

TEST(Checkpoint, TruncatedBlobRejected) {
  Rng rng(5);
  auto scenario = make_scenario(rng);
  Pipeline original(small_config());
  original.fit(scenario.train.x, scenario.train.labels);

  std::stringstream buffer;
  ASSERT_TRUE(edgedrift::io::save_pipeline(buffer, original));
  const std::string blob = buffer.str();
  std::stringstream truncated(blob.substr(0, blob.size() / 3));
  EXPECT_FALSE(edgedrift::io::load_pipeline(truncated).has_value());
}

TEST(Checkpoint, FileRoundTrip) {
  Rng rng(6);
  auto scenario = make_scenario(rng);
  Pipeline original(small_config());
  original.fit(scenario.train.x, scenario.train.labels);

  const std::string path = "/tmp/edgedrift_checkpoint_test.bin";
  ASSERT_TRUE(edgedrift::io::save_pipeline_file(path, original));
  auto restored = edgedrift::io::load_pipeline_file(path);
  ASSERT_TRUE(restored.has_value());
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileReturnsNullopt) {
  EXPECT_FALSE(edgedrift::io::load_pipeline_file(
                   "/tmp/definitely_missing_checkpoint.bin")
                   .has_value());
}

TEST(Checkpoint, EveryTruncationPointFailsCleanly) {
  // Fuzz: a checkpoint cut at ANY byte offset must be rejected without
  // crashing (the reader's latching failure model).
  Rng rng(7);
  auto scenario = make_scenario(rng);
  Pipeline original(small_config());
  original.fit(scenario.train.x, scenario.train.labels);

  std::stringstream buffer;
  ASSERT_TRUE(edgedrift::io::save_pipeline(buffer, original));
  const std::string blob = buffer.str();
  // Sample offsets across the whole blob (checking all ~20k is slow and
  // redundant; a stride plus the first/last 64 covers every code path).
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < 64 && i < blob.size(); ++i) cuts.push_back(i);
  for (std::size_t i = 64; i + 64 < blob.size(); i += 97) cuts.push_back(i);
  for (std::size_t i = blob.size() - 64; i < blob.size(); ++i) {
    cuts.push_back(i);
  }
  for (const std::size_t cut : cuts) {
    std::stringstream truncated(blob.substr(0, cut));
    EXPECT_FALSE(edgedrift::io::load_pipeline(truncated).has_value())
        << "accepted a blob truncated at byte " << cut;
  }
}

TEST(Checkpoint, RandomSingleByteCorruptionIsAlwaysRejected) {
  // Fuzz: flipping any single byte anywhere must trip either a structural
  // check or the trailing checksum.
  Rng rng(8);
  auto scenario = make_scenario(rng);
  Pipeline original(small_config());
  original.fit(scenario.train.x, scenario.train.labels);

  std::stringstream buffer;
  ASSERT_TRUE(edgedrift::io::save_pipeline(buffer, original));
  const std::string blob = buffer.str();
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = blob;
    const std::size_t pos = rng.uniform_index(corrupted.size());
    const char flip = static_cast<char>(1 + rng.uniform_index(255));
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ flip);
    std::stringstream in(corrupted);
    EXPECT_FALSE(edgedrift::io::load_pipeline(in).has_value())
        << "accepted a blob with byte " << pos << " xor "
        << static_cast<int>(flip);
  }
}

}  // namespace
