// Tests for the OS-ELM substrate. The load-bearing property is the OS-ELM
// theorem: sequential (rank-1 or block) updates after a batch init must
// reproduce the batch solution trained on all data at once.
#include <gtest/gtest.h>

#include <cmath>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/oselm/activation.hpp"
#include "edgedrift/oselm/autoencoder.hpp"
#include "edgedrift/oselm/oselm.hpp"
#include "edgedrift/oselm/projection.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::linalg::Matrix;
using edgedrift::oselm::Activation;
using edgedrift::oselm::Autoencoder;
using edgedrift::oselm::make_projection;
using edgedrift::oselm::OsElm;
using edgedrift::oselm::OsElmConfig;
using edgedrift::util::Rng;

OsElmConfig small_config(std::size_t out) {
  OsElmConfig config;
  config.output_dim = out;
  config.reg_lambda = 1e-2;
  return config;
}

TEST(Activation, SigmoidBounds) {
  std::vector<double> v{-100.0, 0.0, 100.0};
  edgedrift::oselm::apply_activation(Activation::kSigmoid, v);
  EXPECT_NEAR(v[0], 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
  EXPECT_NEAR(v[2], 1.0, 1e-12);
}

TEST(Activation, ReluClampsNegatives) {
  std::vector<double> v{-2.0, 0.0, 3.0};
  edgedrift::oselm::apply_activation(Activation::kRelu, v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(Activation, IdentityLeavesValues) {
  std::vector<double> v{-2.0, 3.0};
  edgedrift::oselm::apply_activation(Activation::kIdentity, v);
  EXPECT_DOUBLE_EQ(v[0], -2.0);
  EXPECT_DOUBLE_EQ(v[1], 3.0);
}

TEST(Activation, Names) {
  EXPECT_EQ(edgedrift::oselm::activation_name(Activation::kSigmoid),
            "sigmoid");
  EXPECT_EQ(edgedrift::oselm::activation_name(Activation::kTanh), "tanh");
}

TEST(Projection, HiddenBatchMatchesPerSample) {
  Rng rng(1);
  auto proj = make_projection(6, 10, Activation::kSigmoid, rng);
  const Matrix x = Matrix::random_gaussian(7, 6, rng);
  const Matrix h = proj->hidden_batch(x);
  std::vector<double> hi(10);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    proj->hidden(x.row(r), hi);
    for (std::size_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(h(r, j), hi[j], 1e-12);
    }
  }
}

TEST(Projection, SharedAcrossInstances) {
  Rng rng(2);
  auto proj = make_projection(4, 8, Activation::kTanh, rng);
  OsElm a(proj, small_config(2));
  OsElm b(proj, small_config(2));
  EXPECT_EQ(a.projection().get(), b.projection().get());
}

TEST(Projection, MemoryBytesCountsWeights) {
  Rng rng(3);
  auto proj = make_projection(10, 20, Activation::kSigmoid, rng);
  EXPECT_GE(proj->memory_bytes(), (10 * 20 + 20) * sizeof(double));
}

// The OS-ELM equivalence theorem: batch-init on X1 followed by sequential
// training on X2 equals batch training on [X1; X2].
TEST(OsElm, SequentialEqualsBatchTraining) {
  Rng rng(4);
  auto proj = make_projection(5, 12, Activation::kSigmoid, rng);
  const Matrix x = Matrix::random_gaussian(60, 5, rng);
  const Matrix w_true = Matrix::random_gaussian(5, 3, rng);
  const Matrix t = edgedrift::linalg::matmul(x, w_true);

  OsElm sequential(proj, small_config(3));
  sequential.init_train(x.slice_rows(0, 40), t.slice_rows(0, 40));
  for (std::size_t i = 40; i < 60; ++i) {
    sequential.train(x.row(i), t.row(i));
  }

  OsElm batch(proj, small_config(3));
  batch.init_train(x, t);

  EXPECT_LT(Matrix::max_abs_diff(sequential.beta(), batch.beta()), 1e-7);
  EXPECT_LT(Matrix::max_abs_diff(sequential.p(), batch.p()), 1e-7);
  EXPECT_EQ(sequential.samples_seen(), batch.samples_seen());
}

TEST(OsElm, BlockUpdateEqualsRankOneUpdates) {
  Rng rng(5);
  auto proj = make_projection(4, 9, Activation::kTanh, rng);
  const Matrix x = Matrix::random_gaussian(50, 4, rng);
  const Matrix t = Matrix::random_gaussian(50, 2, rng);

  OsElm rank1(proj, small_config(2));
  rank1.init_train(x.slice_rows(0, 30), t.slice_rows(0, 30));
  for (std::size_t i = 30; i < 50; ++i) rank1.train(x.row(i), t.row(i));

  OsElm block(proj, small_config(2));
  block.init_train(x.slice_rows(0, 30), t.slice_rows(0, 30));
  block.train_batch(x.slice_rows(30, 50), t.slice_rows(30, 50));

  EXPECT_LT(Matrix::max_abs_diff(rank1.beta(), block.beta()), 1e-7);
  EXPECT_LT(Matrix::max_abs_diff(rank1.p(), block.p()), 1e-7);
}

TEST(OsElm, PureSequentialLearnsLinearMap) {
  // Start from the data-free prior and learn y = W x with identity
  // activation (ELM degenerates to recursive ridge regression).
  Rng rng(6);
  auto proj = make_projection(3, 16, Activation::kIdentity, rng);
  OsElm net(proj, small_config(2));
  net.init_sequential();

  const Matrix w_true = Matrix::random_gaussian(3, 2, rng);
  std::vector<double> x(3), t(2), y(2);
  for (int i = 0; i < 800; ++i) {
    for (auto& v : x) v = rng.gaussian();
    edgedrift::linalg::matvec_transposed(w_true, x, t);
    net.train(x, t);
  }
  // Held-out error must be tiny.
  double worst = 0.0;
  for (int i = 0; i < 50; ++i) {
    for (auto& v : x) v = rng.gaussian();
    edgedrift::linalg::matvec_transposed(w_true, x, t);
    net.predict(x, y);
    for (int j = 0; j < 2; ++j) worst = std::max(worst, std::abs(y[j] - t[j]));
  }
  EXPECT_LT(worst, 1e-3);
}

TEST(OsElm, InitSequentialStartsFromPrior) {
  Rng rng(7);
  auto proj = make_projection(3, 6, Activation::kSigmoid, rng);
  OsElm net(proj, small_config(2));
  net.init_sequential();
  EXPECT_TRUE(net.initialized());
  EXPECT_EQ(net.samples_seen(), 0u);
  EXPECT_DOUBLE_EQ(net.p()(0, 0), 1.0 / 1e-2);
  EXPECT_DOUBLE_EQ(net.p()(0, 1), 0.0);
  std::vector<double> y(2);
  net.predict(std::vector<double>{1.0, 2.0, 3.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(OsElm, ResetClearsTrainingState) {
  Rng rng(8);
  auto proj = make_projection(3, 6, Activation::kSigmoid, rng);
  OsElm net(proj, small_config(1));
  const Matrix x = Matrix::random_gaussian(20, 3, rng);
  const Matrix t = Matrix::random_gaussian(20, 1, rng);
  net.init_train(x, t);
  EXPECT_EQ(net.samples_seen(), 20u);
  net.reset();
  EXPECT_EQ(net.samples_seen(), 0u);
  std::vector<double> y(1);
  net.predict(x.row(0), y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

TEST(OsElm, PredictBatchMatchesPerSample) {
  Rng rng(9);
  auto proj = make_projection(4, 8, Activation::kSigmoid, rng);
  OsElm net(proj, small_config(2));
  const Matrix x = Matrix::random_gaussian(30, 4, rng);
  const Matrix t = Matrix::random_gaussian(30, 2, rng);
  net.init_train(x, t);

  const Matrix batch_pred = net.predict_batch(x);
  std::vector<double> y(2);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    net.predict(x.row(r), y);
    EXPECT_NEAR(batch_pred(r, 0), y[0], 1e-12);
    EXPECT_NEAR(batch_pred(r, 1), y[1], 1e-12);
  }
}

TEST(OsElm, ForgettingFactorTracksChangedTarget) {
  // A forgetting net must adapt to a flipped target faster than a
  // non-forgetting one after many samples of the first concept.
  Rng rng(10);
  auto proj = make_projection(2, 10, Activation::kIdentity, rng);
  OsElmConfig forget_config = small_config(1);
  forget_config.forgetting_factor = 0.95;
  OsElm forgetting(proj, forget_config);
  OsElm standard(proj, small_config(1));
  forgetting.init_sequential();
  standard.init_sequential();

  std::vector<double> x(2), t(1), y(1);
  // Concept A: y = x0 + x1, 500 samples.
  for (int i = 0; i < 500; ++i) {
    for (auto& v : x) v = rng.gaussian();
    t[0] = x[0] + x[1];
    forgetting.train(x, t);
    standard.train(x, t);
  }
  // Concept B: y = -(x0 + x1), 60 samples only.
  for (int i = 0; i < 60; ++i) {
    for (auto& v : x) v = rng.gaussian();
    t[0] = -(x[0] + x[1]);
    forgetting.train(x, t);
    standard.train(x, t);
  }
  double err_forget = 0.0, err_std = 0.0;
  for (int i = 0; i < 100; ++i) {
    for (auto& v : x) v = rng.gaussian();
    const double target = -(x[0] + x[1]);
    forgetting.predict(x, y);
    err_forget += std::abs(y[0] - target);
    standard.predict(x, y);
    err_std += std::abs(y[0] - target);
  }
  EXPECT_LT(err_forget, err_std * 0.5);
}

TEST(OsElm, MemoryBytesScalesWithHiddenDim) {
  Rng rng(11);
  auto small = make_projection(4, 8, Activation::kSigmoid, rng);
  auto large = make_projection(4, 32, Activation::kSigmoid, rng);
  OsElm a(small, small_config(4));
  OsElm b(large, small_config(4));
  EXPECT_LT(a.memory_bytes(), b.memory_bytes());
  EXPECT_GT(a.memory_bytes(true), a.memory_bytes(false));
}

TEST(Autoencoder, ReconstructsTrainingManifold) {
  // Train on points near a 1-D segment embedded in 5-D; scores on-manifold
  // must be far below scores off-manifold.
  Rng rng(12);
  auto proj = make_projection(5, 10, Activation::kSigmoid, rng);
  Autoencoder ae(proj, 1e-3);

  Matrix train(300, 5);
  for (std::size_t i = 0; i < train.rows(); ++i) {
    const double s = rng.uniform(-1.0, 1.0);
    for (std::size_t j = 0; j < 5; ++j) {
      train(i, j) = s * (j % 2 == 0 ? 1.0 : -0.5) + rng.gaussian(0.0, 0.02);
    }
  }
  ae.init_train(train);

  double on_manifold = 0.0;
  for (int i = 0; i < 50; ++i) {
    std::vector<double> x(5);
    const double s = rng.uniform(-1.0, 1.0);
    for (std::size_t j = 0; j < 5; ++j) {
      x[j] = s * (j % 2 == 0 ? 1.0 : -0.5) + rng.gaussian(0.0, 0.02);
    }
    on_manifold += ae.score(x);
  }
  double off_manifold = 0.0;
  for (int i = 0; i < 50; ++i) {
    std::vector<double> x(5);
    for (auto& v : x) v = rng.uniform(2.0, 3.0);
    off_manifold += ae.score(x);
  }
  EXPECT_LT(on_manifold * 10.0, off_manifold);
}

TEST(Autoencoder, SequentialTrainingReducesScore) {
  Rng rng(13);
  auto proj = make_projection(4, 12, Activation::kSigmoid, rng);
  Autoencoder ae(proj, 1e-2);
  ae.init_sequential();

  std::vector<double> x{0.4, -0.2, 0.7, 0.1};
  const double before = ae.score(x);
  for (int i = 0; i < 50; ++i) ae.train(x);
  const double after = ae.score(x);
  EXPECT_LT(after, before * 0.01);
}

TEST(Autoencoder, ScoreIsMeanSquaredError) {
  Rng rng(14);
  auto proj = make_projection(3, 6, Activation::kSigmoid, rng);
  Autoencoder ae(proj, 1e-2);
  ae.init_sequential();  // beta = 0 -> reconstruction = 0.
  std::vector<double> x{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(ae.score(x), (1.0 + 4.0 + 4.0) / 3.0);
}

TEST(Autoencoder, ReconstructWritesOutput) {
  Rng rng(15);
  auto proj = make_projection(3, 6, Activation::kSigmoid, rng);
  Autoencoder ae(proj, 1e-3);
  Matrix train(50, 3);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = 0; j < 3; ++j) train(i, j) = rng.uniform(0.0, 1.0);
  }
  ae.init_train(train);
  std::vector<double> out(3);
  ae.reconstruct(train.row(0), out);
  // Reconstruction should be near the input for trained data.
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(out[j], train(0, j), 0.5);
  }
}

}  // namespace
