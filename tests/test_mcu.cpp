// Tests for the MCU deployment profile (mcu::StaticPipeline): compile-time
// memory budget, agreement with the double-precision pipeline, and the full
// detect -> reconstruct -> recover loop in float32.
#include <gtest/gtest.h>

#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/mcu/static_pipeline.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::core::Pipeline;
using edgedrift::core::PipelineConfig;
using edgedrift::util::Rng;

// The paper's two deployment configurations as compile-time facts.
using NslPipeline = edgedrift::mcu::StaticPipeline<38, 22, 2>;
using FanPipeline = edgedrift::mcu::StaticPipeline<511, 22, 1>;

static_assert(NslPipeline::state_bytes() < 264 * 1024,
              "NSL-KDD config must fit the Raspberry Pi Pico SRAM");
static_assert(FanPipeline::state_bytes() < 264 * 1024,
              "cooling-fan config must fit the Raspberry Pi Pico SRAM");

std::vector<float> to_float(std::span<const double> x) {
  std::vector<float> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = static_cast<float>(x[i]);
  }
  return out;
}

TEST(StaticPipeline, StateSizesAreAsExpected) {
  // Dominant terms: alpha (d*h) + per-label beta (h*d) and P (h*h), all
  // float32, plus four C x D centroid sets.
  EXPECT_LT(NslPipeline::state_bytes(), 32u * 1024u);
  EXPECT_GT(FanPipeline::state_bytes(), 90u * 1024u);
  EXPECT_LT(FanPipeline::state_bytes(), 120u * 1024u);
}

class StaticPipelineNsl : public ::testing::Test {
 protected:
  void SetUp() override {
    edgedrift::data::NslKddLikeConfig data_config;
    data_config.train_size = 800;
    data_config.test_size = 4000;
    data_config.drift_point = 1500;
    edgedrift::data::NslKddLike generator(data_config);
    Rng rng(77);
    train_ = generator.training(rng);
    test_ = generator.test_stream(rng);
    drift_at_ = data_config.drift_point;

    PipelineConfig config;
    config.num_labels = 2;
    config.input_dim = 38;
    config.hidden_dim = 22;
    config.window_size = 100;
    config.detector_initial_count = 0;
    config.theta_error_z = 4.0;
    config.reconstruction = {20, 120, 500};
    reference_ = std::make_unique<Pipeline>(config);
    reference_->fit(train_.x, train_.labels);
    device_.load(*reference_);
  }

  edgedrift::data::Dataset train_;
  edgedrift::data::Dataset test_;
  std::size_t drift_at_ = 0;
  std::unique_ptr<Pipeline> reference_;
  NslPipeline device_;
};

TEST_F(StaticPipelineNsl, LoadCopiesThresholds) {
  EXPECT_TRUE(device_.loaded());
  EXPECT_NEAR(device_.theta_error(), reference_->theta_error(), 1e-6);
  EXPECT_NEAR(device_.theta_drift(), reference_->centroid_detector()->theta_drift(),
              1e-4);
}

TEST_F(StaticPipelineNsl, PredictionsMatchDoublePipeline) {
  std::size_t disagreements = 0;
  const std::size_t n = 500;
  for (std::size_t i = 0; i < n; ++i) {
    const auto x = test_.x.row(i);
    const auto ref = reference_->model().predict(x);
    float score = 0.0f;
    const std::size_t label = device_.predict(to_float(x), score);
    if (label != ref.label) ++disagreements;
    // Scores agree to float precision.
    EXPECT_NEAR(score, static_cast<float>(ref.score),
                5e-4f * (1.0f + score));
  }
  // float32 rounding may flip ties, but essentially never on separated
  // classes.
  EXPECT_LE(disagreements, n / 100);
}

TEST_F(StaticPipelineNsl, DetectsReconstructsAndRecovers) {
  std::size_t hits_tail = 0, tail = 0;
  std::ptrdiff_t detected_at = -1;
  bool recon_finished = false;
  for (std::size_t i = 0; i < test_.size(); ++i) {
    const auto xf = to_float(test_.x.row(i));
    const auto step = device_.process(xf);
    if (step.drift_detected && detected_at < 0) {
      detected_at = static_cast<std::ptrdiff_t>(i);
    }
    recon_finished |= step.reconstruction_finished;
    if (i >= test_.size() * 3 / 4) {
      ++tail;
      hits_tail +=
          static_cast<int>(step.label) == test_.labels[i] ? 1 : 0;
    }
  }
  ASSERT_GE(detected_at, static_cast<std::ptrdiff_t>(drift_at_));
  EXPECT_TRUE(recon_finished);
  EXPECT_GT(static_cast<double>(hits_tail) / tail, 0.9);
}

TEST_F(StaticPipelineNsl, QuietBeforeDrift) {
  for (std::size_t i = 0; i < drift_at_; ++i) {
    const auto step = device_.process(to_float(test_.x.row(i)));
    ASSERT_FALSE(step.drift_detected) << "false alarm at " << i;
  }
}

TEST_F(StaticPipelineNsl, TrainLabelReducesScore) {
  std::vector<float> x(38, 0.9f);
  const float before = device_.score_of(x, 0);
  for (int i = 0; i < 30; ++i) device_.train_label(x, 0);
  const float after = device_.score_of(x, 0);
  EXPECT_LT(after, before * 0.2f);
}

TEST(StaticPipelineFan, SingleLabelConfigLoadsAndRuns) {
  // Minimal smoke of the 511-dim single-label config through a fitted
  // double pipeline (kept tiny: the goal is the load/predict path).
  Rng rng(5);
  edgedrift::data::GaussianClass normal;
  normal.mean.assign(511, 0.3);
  normal.stddev = {0.05};
  edgedrift::data::GaussianConcept concept_n({normal});
  const auto train = edgedrift::data::draw(concept_n, 80, rng);

  PipelineConfig config;
  config.num_labels = 1;
  config.input_dim = 511;
  config.hidden_dim = 22;
  config.window_size = 20;
  Pipeline reference(config);
  reference.fit(train.x, train.labels);

  static FanPipeline device;  // ~100 kB: keep off the test thread's stack.
  device.load(reference);
  float score = 0.0f;
  const std::size_t label = device.predict(to_float(train.x.row(0)), score);
  EXPECT_EQ(label, 0u);
  EXPECT_LT(score, 0.1f);
}

}  // namespace
