// core::PipelineManager: per-stream ordering, determinism against a
// sequential reference pipeline, aggregated statistics, and drain()
// semantics under concurrent submission.
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::core::Pipeline;
using edgedrift::core::PipelineConfig;
using edgedrift::core::PipelineManager;
using edgedrift::core::PipelineStats;
using edgedrift::core::PipelineStep;
using edgedrift::data::Dataset;
using edgedrift::data::GaussianClass;
using edgedrift::data::GaussianConcept;
using edgedrift::util::Rng;

GaussianConcept pre_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  a.stddev = {0.15};
  GaussianClass b;
  b.mean.assign(8, 1.2);
  b.stddev = {0.15};
  return GaussianConcept({a, b});
}

GaussianConcept post_concept() {
  GaussianClass a;
  a.mean.assign(8, 0.2);
  for (std::size_t j = 0; j < 8; j += 2) a.mean[j] += 0.9;
  a.stddev = {0.2};
  GaussianClass b;
  b.mean.assign(8, 0.55);
  for (std::size_t j = 0; j < 8; j += 2) b.mean[j] += 0.9;
  b.stddev = {0.2};
  return GaussianConcept({a, b});
}

PipelineConfig make_config() {
  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = 8;
  config.hidden_dim = 12;
  config.window_size = 40;
  config.detector_initial_count = 0;
  config.reconstruction.n_search = 20;
  config.reconstruction.n_update = 100;
  config.reconstruction.n_total = 400;
  config.seed = 7;
  return config;
}

struct StreamData {
  Dataset train;
  Dataset test;
};

/// Each stream gets its own draw of the same drifting scenario.
std::vector<StreamData> make_streams(std::size_t n) {
  std::vector<StreamData> streams;
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(100 + i);
    StreamData s;
    s.train = edgedrift::data::draw(pre_concept(), 600, rng);
    s.test = edgedrift::data::make_sudden_drift(pre_concept(), post_concept(),
                                                1500, 700, rng);
    streams.push_back(std::move(s));
  }
  return streams;
}

void expect_steps_equal(const std::vector<PipelineStep>& actual,
                        const std::vector<PipelineStep>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    EXPECT_EQ(actual[i].prediction.label, expected[i].prediction.label);
    EXPECT_EQ(actual[i].prediction.score, expected[i].prediction.score);
    EXPECT_EQ(actual[i].drift_detected, expected[i].drift_detected);
    EXPECT_EQ(actual[i].reconstructing, expected[i].reconstructing);
    EXPECT_EQ(actual[i].reconstruction_finished,
              expected[i].reconstruction_finished);
  }
}

TEST(PipelineManager, SeedsStreamsIndependently) {
  PipelineManager manager(make_config(), 3);
  EXPECT_EQ(manager.num_streams(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(manager.stream(i).config().seed, make_config().seed + i);
  }
}

TEST(PipelineManager, MatchesSequentialPipelinePerStream) {
  constexpr std::size_t kStreams = 3;
  const auto data = make_streams(kStreams);

  PipelineManager manager(make_config(), kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    manager.fit(s, data[s].train.x, data[s].train.labels);
  }

  // Reference: plain pipelines built from the manager's own derived
  // per-stream configs, run sequentially.
  std::vector<std::vector<PipelineStep>> expected(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    Pipeline reference(manager.stream(s).config());
    reference.fit(data[s].train.x, data[s].train.labels);
    for (std::size_t i = 0; i < data[s].test.size(); ++i) {
      expected[s].push_back(reference.process(data[s].test.x.row(i)));
    }
  }

  // Interleave submissions round-robin so streams genuinely overlap.
  const std::size_t n = data[0].test.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      manager.submit(s, data[s].test.x.row(i));
    }
  }
  manager.drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    SCOPED_TRACE("stream " + std::to_string(s));
    expect_steps_equal(manager.take_steps(s), expected[s]);
    EXPECT_EQ(manager.stats(s).samples, n);
  }

  const PipelineStats totals = manager.totals();
  EXPECT_EQ(totals.samples, n * kStreams);
  std::size_t drifts = 0;
  for (std::size_t s = 0; s < kStreams; ++s) drifts += manager.stats(s).drifts;
  EXPECT_EQ(totals.drifts, drifts);
  EXPECT_GE(totals.drifts, kStreams);  // Every stream crosses the drift.
  EXPECT_GE(totals.recoveries, kStreams);
}

TEST(PipelineManager, SubmitBatchEnqueuesEveryRow) {
  const auto data = make_streams(1);
  PipelineManager manager(make_config(), 1);
  manager.fit(0, data[0].train.x, data[0].train.labels);

  manager.submit_batch(0, data[0].test.x, data[0].test.labels);
  manager.drain();
  EXPECT_EQ(manager.stats(0).samples, data[0].test.size());
  EXPECT_EQ(manager.take_steps(0).size(), data[0].test.size());
  // After take_steps, the stored steps are consumed.
  EXPECT_TRUE(manager.take_steps(0).empty());
}

TEST(PipelineManager, ConcurrentSubmittersKeepPerStreamOrder) {
  constexpr std::size_t kStreams = 2;
  const auto data = make_streams(kStreams);
  PipelineManager manager(make_config(), kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    manager.fit(s, data[s].train.x, data[s].train.labels);
  }

  std::vector<std::vector<PipelineStep>> expected(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    Pipeline reference(manager.stream(s).config());
    reference.fit(data[s].train.x, data[s].train.labels);
    for (std::size_t i = 0; i < data[s].test.size(); ++i) {
      expected[s].push_back(reference.process(data[s].test.x.row(i)));
    }
  }

  // One submitter thread per stream, racing against each other.
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kStreams; ++s) {
    submitters.emplace_back([&, s] {
      for (std::size_t i = 0; i < data[s].test.size(); ++i) {
        manager.submit(s, data[s].test.x.row(i));
      }
    });
  }
  for (auto& t : submitters) t.join();
  manager.drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    SCOPED_TRACE("stream " + std::to_string(s));
    expect_steps_equal(manager.take_steps(s), expected[s]);
  }
}

TEST(PipelineManager, DrainOnEmptyManagerReturnsImmediately) {
  PipelineManager manager(make_config(), 1);
  manager.drain();  // Nothing submitted: must not block.
  EXPECT_EQ(manager.totals().samples, 0u);
}

}  // namespace
