// eval::score_scenario against hand-constructed detector event sequences:
// every delay, false-alarm and miss count here is computed by hand from
// the matching rule, so a change to the rule fails loudly with exact
// numbers.
#include <vector>

#include <gtest/gtest.h>

#include "edgedrift/eval/scenario_metrics.hpp"

namespace {

using namespace edgedrift;

data::DriftAnnotation abrupt_at(std::size_t start) {
  data::DriftAnnotation a;
  a.start = start;
  a.end = start;
  return a;
}

data::DriftAnnotation gradual_at(std::size_t start, std::size_t end) {
  data::DriftAnnotation a;
  a.start = start;
  a.end = end;
  a.shape = data::DriftShape::kGradual;
  return a;
}

TEST(ScenarioMetrics, SingleEdgeDelayExtrasAndFalseAlarms) {
  const std::vector<data::DriftAnnotation> ann = {abrupt_at(100)};
  // Window: [100, 1100). 40 -> FA, 150 -> hit (delay 50), 700 -> extra,
  // 1200 -> FA.
  const std::vector<std::size_t> det = {40, 150, 700, 1200};
  const eval::ScenarioMetrics m = eval::score_scenario(det, ann, 2000);

  EXPECT_EQ(m.drift_points, 1u);
  EXPECT_EQ(m.detected, 1u);
  EXPECT_EQ(m.missed, 0u);
  ASSERT_EQ(m.delays.size(), 1u);
  EXPECT_EQ(m.delays[0], 50);
  EXPECT_DOUBLE_EQ(m.mean_delay, 50.0);
  EXPECT_EQ(m.extra_detections, 1u);
  EXPECT_EQ(m.false_alarms, 2u);
  EXPECT_EQ(m.watched_samples, 1000u);
  // 2 false alarms over 1000 outside-window samples = 2 per 1k.
  EXPECT_DOUBLE_EQ(m.false_alarm_rate_per_1k, 2.0);
}

TEST(ScenarioMetrics, MissedEdge) {
  const std::vector<data::DriftAnnotation> ann = {abrupt_at(500)};
  const std::vector<std::size_t> det = {100};  // Before the window: FA.
  const eval::ScenarioMetrics m = eval::score_scenario(det, ann, 2000);
  EXPECT_EQ(m.detected, 0u);
  EXPECT_EQ(m.missed, 1u);
  ASSERT_EQ(m.delays.size(), 1u);
  EXPECT_EQ(m.delays[0], -1);
  EXPECT_DOUBLE_EQ(m.mean_delay, 0.0);
  EXPECT_EQ(m.false_alarms, 1u);
}

TEST(ScenarioMetrics, WindowsClipAtTheNextEdge) {
  const std::vector<data::DriftAnnotation> ann = {abrupt_at(100),
                                                  abrupt_at(600)};
  // Windows: [100, 600) and [600, 1600). 550 credits edge 0 (delay 450),
  // 610 credits edge 1 (delay 10), 50 is a false alarm.
  const std::vector<std::size_t> det = {50, 550, 610};
  const eval::ScenarioMetrics m = eval::score_scenario(det, ann, 2000);
  EXPECT_EQ(m.detected, 2u);
  ASSERT_EQ(m.delays.size(), 2u);
  EXPECT_EQ(m.delays[0], 450);
  EXPECT_EQ(m.delays[1], 10);
  EXPECT_DOUBLE_EQ(m.mean_delay, 230.0);
  EXPECT_EQ(m.false_alarms, 1u);
  EXPECT_EQ(m.watched_samples, 1500u);
  // 1 FA over 500 outside samples = 2 per 1k.
  EXPECT_DOUBLE_EQ(m.false_alarm_rate_per_1k, 2.0);
}

TEST(ScenarioMetrics, GradualHorizonCountsFromTheEdgeEnd) {
  const std::vector<data::DriftAnnotation> ann = {gradual_at(100, 400)};
  eval::ScenarioMetricsConfig cfg;
  cfg.detection_horizon = 200;
  // Window: [100, 400 + 200) = [100, 600).
  const std::vector<std::size_t> det = {590, 610};
  const eval::ScenarioMetrics m =
      eval::score_scenario(det, ann, 1000, {}, cfg);
  EXPECT_EQ(m.detected, 1u);
  EXPECT_EQ(m.delays[0], 490);  // Delay is still measured from the onset.
  EXPECT_EQ(m.false_alarms, 1u);
  EXPECT_EQ(m.watched_samples, 500u);
}

TEST(ScenarioMetrics, WindowClipsAtTheStreamEnd) {
  const std::vector<data::DriftAnnotation> ann = {abrupt_at(1800)};
  const eval::ScenarioMetrics m = eval::score_scenario({}, ann, 2000);
  EXPECT_EQ(m.watched_samples, 200u);
  EXPECT_EQ(m.missed, 1u);
}

TEST(ScenarioMetrics, UnsortedDetectionsAreSortedBeforeScoring) {
  const std::vector<data::DriftAnnotation> ann = {abrupt_at(100)};
  const std::vector<std::size_t> sorted = {40, 150, 700};
  const std::vector<std::size_t> shuffled = {700, 40, 150};
  const eval::ScenarioMetrics a = eval::score_scenario(sorted, ann, 2000);
  const eval::ScenarioMetrics b = eval::score_scenario(shuffled, ann, 2000);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.delays, b.delays);
  EXPECT_EQ(a.extra_detections, b.extra_detections);
  EXPECT_EQ(a.false_alarms, b.false_alarms);
}

TEST(ScenarioMetrics, NoAnnotationsMeansEverythingIsAFalseAlarm) {
  const std::vector<std::size_t> det = {10, 20, 30, 40};
  const eval::ScenarioMetrics m = eval::score_scenario(det, {}, 1000);
  EXPECT_EQ(m.drift_points, 0u);
  EXPECT_EQ(m.false_alarms, 4u);
  EXPECT_EQ(m.watched_samples, 0u);
  EXPECT_DOUBLE_EQ(m.false_alarm_rate_per_1k, 4.0);
}

TEST(ScenarioMetrics, AccuracyBlockIsExact) {
  const std::vector<data::DriftAnnotation> ann = {abrupt_at(4)};
  eval::ScenarioMetricsConfig cfg;
  cfg.recovery_window = 3;
  // Stream of 10; recovery region = last 3 samples of [4, 10) = {7, 8, 9}.
  const std::vector<std::uint8_t> correct = {1, 1, 1, 1, 0, 0, 0, 1, 0, 1};
  const eval::ScenarioMetrics m =
      eval::score_scenario({}, ann, 10, correct, cfg);
  EXPECT_EQ(m.recovery_samples, 3u);
  EXPECT_DOUBLE_EQ(m.recovery_accuracy, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.overall_accuracy, 0.6);
}

TEST(ScenarioMetrics, RecoveryRegionsStopAtTheNextEdge) {
  const std::vector<data::DriftAnnotation> ann = {abrupt_at(2), abrupt_at(6)};
  eval::ScenarioMetricsConfig cfg;
  cfg.recovery_window = 2;
  // Segments: [2, 6) tail {4, 5}; [6, 10) tail {8, 9}.
  const std::vector<std::uint8_t> correct = {0, 0, 0, 0, 1, 1, 0, 0, 1, 0};
  const eval::ScenarioMetrics m =
      eval::score_scenario({}, ann, 10, correct, cfg);
  EXPECT_EQ(m.recovery_samples, 4u);
  EXPECT_DOUBLE_EQ(m.recovery_accuracy, 3.0 / 4.0);
}

TEST(ScenarioMetrics, ShortSegmentContributesWhatItHas) {
  const std::vector<data::DriftAnnotation> ann = {abrupt_at(8)};
  eval::ScenarioMetricsConfig cfg;
  cfg.recovery_window = 5;  // Segment [8, 10) has only 2 samples.
  const std::vector<std::uint8_t> correct(10, 1);
  const eval::ScenarioMetrics m =
      eval::score_scenario({}, ann, 10, correct, cfg);
  EXPECT_EQ(m.recovery_samples, 2u);
  EXPECT_DOUBLE_EQ(m.recovery_accuracy, 1.0);
}

TEST(ScenarioMetrics, NoCorrectnessSkipsTheAccuracyBlock) {
  const std::vector<data::DriftAnnotation> ann = {abrupt_at(100)};
  const eval::ScenarioMetrics m = eval::score_scenario({}, ann, 1000);
  EXPECT_EQ(m.recovery_samples, 0u);
  EXPECT_DOUBLE_EQ(m.recovery_accuracy, 0.0);
  EXPECT_DOUBLE_EQ(m.overall_accuracy, 0.0);
}

}  // namespace
