// Golden compiled-scenario transcript: a small abrupt ScenarioSpec compiled
// against a committed hexfloat transcript (tests/golden/scenario_abrupt.golden).
//
// The transcript pins the compiler's bit-identical-regeneration contract:
// the calibrated Hellinger, every stream label, a stride of raw feature
// values, the full divergence trace and the ground-truth annotations. The
// scenario compiler is scalar arithmetic (RNG + libm), so the portable
// SIMD build must match bit for bit; native builds hold the values to
// tight tolerances in case a vectorized libm sneaks in.
//
// Regenerate after an intentional generator change with
//   EDGEDRIFT_REGEN_GOLDEN=1 ./edgedrift_tests --gtest_filter='ScenarioGolden.*'
// from a portable-SIMD build, and commit the diff.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "edgedrift/data/scenario.hpp"
#include "edgedrift/linalg/simd.hpp"

namespace {

using namespace edgedrift;

constexpr std::size_t kFeatureStride = 7;  // Every 7th row's feature 0.

std::string golden_path() {
  return std::string(EDGEDRIFT_TEST_DIR) + "/golden/scenario_abrupt.golden";
}

/// The pinned spec: small enough to keep the transcript a few kilobytes,
/// with every generator feature exercised (calibrated prior drift, label
/// noise, divergence trace).
data::ScenarioSpec golden_spec() {
  data::ScenarioSpec spec;
  spec.name = "golden-abrupt";
  spec.num_features = 4;
  spec.num_labels = 2;
  spec.train_size = 150;
  spec.n_instances = 700;
  spec.burn_in = 300;
  spec.drift_magnitude_prior = 0.8;
  spec.noise_level = 0.05;
  spec.divergence_window = 100;
  spec.seed = 77;
  return spec;
}

struct Transcript {
  double calibrated = 0.0;
  std::string labels;                    // One digit per stream sample.
  std::vector<double> features;          // Every kFeatureStride-th x(i, 0).
  std::vector<double> hellinger;         // Divergence trace.
  std::vector<double> wasserstein;       // Divergence trace (row means).
  std::vector<std::size_t> ann_start;    // Annotation starts.
};

Transcript run_compile() {
  const data::CompiledScenario c = data::compile_scenario(golden_spec());
  Transcript t;
  t.calibrated = c.calibrated_hellinger;
  t.labels.reserve(c.stream.size());
  for (std::size_t i = 0; i < c.stream.size(); ++i) {
    t.labels.push_back(static_cast<char>('0' + (c.stream.labels[i] % 10)));
    if (i % kFeatureStride == 0) t.features.push_back(c.stream.x(i, 0));
  }
  t.hellinger = c.divergence.hellinger;
  t.wasserstein = c.divergence.wasserstein_mean;
  for (const data::DriftAnnotation& a : c.annotations) {
    t.ann_start.push_back(a.start);
  }
  return t;
}

std::string hex(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string render(const Transcript& t) {
  std::string out;
  out += "edgedrift-scenario-golden-v1\n";
  out += "calibrated " + hex(t.calibrated) + "\n";
  out += "labels " + t.labels + "\n";
  out += "annotations";
  for (const std::size_t s : t.ann_start) out += " " + std::to_string(s);
  out += "\n";
  for (std::size_t i = 0; i < t.features.size(); ++i) {
    out += "x " + std::to_string(i * kFeatureStride) + " " +
           hex(t.features[i]) + "\n";
  }
  for (std::size_t w = 0; w < t.hellinger.size(); ++w) {
    out += "div " + std::to_string(w) + " " + hex(t.hellinger[w]) + " " +
           hex(t.wasserstein[w]) + "\n";
  }
  return out;
}

bool parse(const std::string& text, Transcript& t, std::string& error) {
  std::size_t pos = 0;
  bool saw_magic = false;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    if (!saw_magic) {
      if (line != "edgedrift-scenario-golden-v1") {
        error = "bad magic line: " + line;
        return false;
      }
      saw_magic = true;
    } else if (line.rfind("calibrated ", 0) == 0) {
      t.calibrated = std::strtod(line.c_str() + 11, nullptr);
    } else if (line.rfind("labels ", 0) == 0) {
      t.labels = line.substr(7);
    } else if (line.rfind("annotations", 0) == 0) {
      const char* p = line.c_str() + 11;
      char* next = nullptr;
      for (;;) {
        const unsigned long long v = std::strtoull(p, &next, 10);
        if (next == p) break;
        t.ann_start.push_back(static_cast<std::size_t>(v));
        p = next;
      }
    } else if (line.rfind("x ", 0) == 0) {
      char* next = nullptr;
      std::strtoull(line.c_str() + 2, &next, 10);
      t.features.push_back(std::strtod(next, nullptr));
    } else if (line.rfind("div ", 0) == 0) {
      char* next = nullptr;
      std::strtoull(line.c_str() + 4, &next, 10);
      t.hellinger.push_back(std::strtod(next, &next));
      t.wasserstein.push_back(std::strtod(next, nullptr));
    } else {
      error = "unrecognized line: " + line;
      return false;
    }
  }
  if (!saw_magic) {
    error = "empty golden file";
    return false;
  }
  return true;
}

bool is_portable_build() {
  return std::strcmp(linalg::simd::kLevelName, "portable") == 0;
}

TEST(ScenarioGolden, MatchesCommittedTranscript) {
  const std::string path = golden_path();
  const Transcript actual = run_compile();

  if (std::getenv("EDGEDRIFT_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(is_portable_build())
        << "regenerate the golden file from a portable-SIMD build";
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    const std::string text = render(actual);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "golden file regenerated at " << path;
  }

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr)
      << "missing golden file " << path
      << " — regenerate with EDGEDRIFT_REGEN_GOLDEN=1 and commit it";
  std::string text;
  char buf[4096];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    if (n == 0) break;
    text.append(buf, n);
  }
  std::fclose(f);

  Transcript golden;
  std::string error;
  ASSERT_TRUE(parse(text, golden, error)) << error;

  if (is_portable_build()) {
    // Hexfloat round-trips exactly: compilation must be bit-identical.
    EXPECT_EQ(render(actual), text)
        << "portable-build scenario compilation diverged from the committed "
           "transcript; if the generator change is intentional, regenerate "
           "with EDGEDRIFT_REGEN_GOLDEN=1";
    return;
  }

  // The compiler is scalar code, so even native builds should agree; hold
  // to tight tolerances rather than bits in case libm differs.
  EXPECT_EQ(actual.labels, golden.labels);
  EXPECT_EQ(actual.ann_start, golden.ann_start);
  EXPECT_NEAR(actual.calibrated, golden.calibrated, 1e-12);
  ASSERT_EQ(actual.features.size(), golden.features.size());
  for (std::size_t i = 0; i < actual.features.size(); ++i) {
    EXPECT_NEAR(actual.features[i], golden.features[i],
                1e-9 * std::abs(golden.features[i]) + 1e-12);
  }
  ASSERT_EQ(actual.hellinger.size(), golden.hellinger.size());
  for (std::size_t w = 0; w < actual.hellinger.size(); ++w) {
    EXPECT_NEAR(actual.hellinger[w], golden.hellinger[w], 1e-9);
    EXPECT_NEAR(actual.wasserstein[w], golden.wasserstein[w], 1e-9);
  }
}

}  // namespace
