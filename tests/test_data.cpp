// Tests for the data substrate: dataset plumbing, concept generators, drift
// composers (Figure 1 shapes), the two dataset simulators, CSV I/O, and the
// scalers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/data/csv.hpp"
#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/data/normalize.hpp"
#include "edgedrift/data/nsl_kdd_like.hpp"
#include "edgedrift/data/stream.hpp"
#include "edgedrift/linalg/vector_ops.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::data::CoolingFanLike;
using edgedrift::data::Dataset;
using edgedrift::data::FanCondition;
using edgedrift::data::FanEnvironment;
using edgedrift::data::FanSpectrumConcept;
using edgedrift::data::GaussianClass;
using edgedrift::data::GaussianConcept;
using edgedrift::data::NslKddLike;
using edgedrift::linalg::Matrix;
using edgedrift::util::Rng;

GaussianConcept simple_concept(double center, double sep = 4.0) {
  GaussianClass a;
  a.mean = {center, center};
  a.stddev = {0.2};
  GaussianClass b;
  b.mean = {center + sep, center + sep};
  b.stddev = {0.2};
  return GaussianConcept({a, b});
}

double mean_of_dim(const Dataset& d, std::size_t begin, std::size_t end,
                   std::size_t dim) {
  double acc = 0.0;
  for (std::size_t i = begin; i < end; ++i) acc += d.x(i, dim);
  return acc / static_cast<double>(end - begin);
}

TEST(Dataset, PushBackAndSlice) {
  Dataset d;
  d.push_back(std::vector<double>{1.0, 2.0}, 0);
  d.push_back(std::vector<double>{3.0, 4.0}, 1);
  d.push_back(std::vector<double>{5.0, 6.0}, 0);
  EXPECT_EQ(d.size(), 3u);
  const Dataset s = d.slice(1, 3);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x(0, 0), 3.0);
  EXPECT_EQ(s.labels[0], 1);
}

TEST(Dataset, AppendConcatenates) {
  Rng rng(1);
  const auto concept_a = simple_concept(0.0);
  Dataset a = edgedrift::data::draw(concept_a, 10, rng);
  Dataset b = edgedrift::data::draw(concept_a, 5, rng);
  a.append(b);
  EXPECT_EQ(a.size(), 15u);
  EXPECT_EQ(a.labels.size(), 15u);
}

TEST(GaussianConcept, SamplesClusterAroundMeans) {
  Rng rng(2);
  const auto c = simple_concept(1.0);
  Dataset d = edgedrift::data::draw(c, 2000, rng);
  double sum0 = 0.0, sum1 = 0.0;
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.labels[i] == 0) {
      sum0 += d.x(i, 0);
      ++n0;
    } else {
      sum1 += d.x(i, 0);
      ++n1;
    }
  }
  EXPECT_NEAR(sum0 / n0, 1.0, 0.05);
  EXPECT_NEAR(sum1 / n1, 5.0, 0.05);
  // Roughly balanced weights.
  EXPECT_NEAR(static_cast<double>(n0) / d.size(), 0.5, 0.05);
}

TEST(GaussianConcept, WeightsControlLabelFrequency) {
  GaussianClass a;
  a.mean = {0.0};
  a.stddev = {0.1};
  a.weight = 3.0;
  GaussianClass b;
  b.mean = {5.0};
  b.stddev = {0.1};
  b.weight = 1.0;
  GaussianConcept c({a, b});
  Rng rng(3);
  Dataset d = edgedrift::data::draw(c, 4000, rng);
  const auto zeros = static_cast<double>(
      std::count(d.labels.begin(), d.labels.end(), 0));
  EXPECT_NEAR(zeros / 4000.0, 0.75, 0.03);
}

TEST(GaussianConcept, InterpolationMovesMeans) {
  const auto a = simple_concept(0.0);
  const auto b = simple_concept(10.0);
  const auto mid = GaussianConcept::interpolate(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.cls(0).mean[0], 5.0);
  EXPECT_DOUBLE_EQ(mid.cls(1).mean[0], 9.0);
}

TEST(DriftStream, SuddenSwitchesAtExactIndex) {
  Rng rng(4);
  const auto a = simple_concept(0.0);
  const auto b = simple_concept(20.0);
  const Dataset d =
      edgedrift::data::make_sudden_drift(a, b, 200, 100, rng);
  ASSERT_EQ(d.size(), 200u);
  // Everything before 100 is near concept A (values < 10), after is > 10.
  for (std::size_t i = 0; i < 100; ++i) EXPECT_LT(d.x(i, 0), 10.0);
  for (std::size_t i = 100; i < 200; ++i) EXPECT_GT(d.x(i, 0), 10.0);
}

TEST(DriftStream, GradualMixesBothConcepts) {
  Rng rng(5);
  const auto a = simple_concept(0.0);
  const auto b = simple_concept(20.0);
  const Dataset d =
      edgedrift::data::make_gradual_drift(a, b, 1000, 200, 800, rng);
  // In the middle of the transition both concepts appear.
  std::size_t from_a = 0, from_b = 0;
  for (std::size_t i = 450; i < 550; ++i) {
    if (d.x(i, 0) < 10.0) {
      ++from_a;
    } else {
      ++from_b;
    }
  }
  EXPECT_GT(from_a, 20u);
  EXPECT_GT(from_b, 20u);
  // Pure A before, pure B after.
  for (std::size_t i = 0; i < 200; ++i) EXPECT_LT(d.x(i, 0), 10.0);
  for (std::size_t i = 800; i < 1000; ++i) EXPECT_GT(d.x(i, 0), 10.0);
}

TEST(DriftStream, IncrementalShiftsDistributionSmoothly) {
  Rng rng(6);
  const auto a = simple_concept(0.0);
  const auto b = simple_concept(20.0);
  const Dataset d =
      edgedrift::data::make_incremental_drift(a, b, 1200, 200, 1000, rng);
  // Mean of dimension 0 rises monotonically across the transition thirds.
  const double early = mean_of_dim(d, 200, 400, 0);
  const double mid = mean_of_dim(d, 500, 700, 0);
  const double late = mean_of_dim(d, 800, 1000, 0);
  EXPECT_LT(early, mid);
  EXPECT_LT(mid, late);
  // Incremental (not gradual): mid-transition samples are NOT bimodal at
  // the endpoints — no sample near concept A's pure position.
  std::size_t near_a = 0;
  for (std::size_t i = 580; i < 620; ++i) {
    if (d.x(i, 0) < 3.0) ++near_a;
  }
  EXPECT_LT(near_a, 5u);
}

TEST(DriftStream, ReoccurringReturnsToOldConcept) {
  Rng rng(7);
  const auto a = simple_concept(0.0);
  const auto b = simple_concept(20.0);
  const Dataset d =
      edgedrift::data::make_reoccurring_drift(a, b, 300, 100, 150, rng);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_LT(d.x(i, 0), 10.0);
  for (std::size_t i = 100; i < 150; ++i) EXPECT_GT(d.x(i, 0), 10.0);
  for (std::size_t i = 150; i < 300; ++i) EXPECT_LT(d.x(i, 0), 10.0);
}

TEST(NslKddLike, ShapesMatchPaperSetup) {
  edgedrift::data::NslKddLike generator;
  Rng rng(8);
  const Dataset train = generator.training(rng);
  const Dataset test = generator.test_stream(rng);
  EXPECT_EQ(train.size(), 2522u);
  EXPECT_EQ(test.size(), 22701u);
  EXPECT_EQ(train.dim(), 38u);
  EXPECT_EQ(generator.config().drift_point, 8333u);
}

TEST(NslKddLike, PreDriftClassesAreSeparable) {
  edgedrift::data::NslKddLike generator;
  Rng rng(9);
  const Dataset train = generator.training(rng);
  // Nearest-class-mean classification on fresh pre-drift data must be
  // nearly perfect.
  Matrix means(2, train.dim());
  std::vector<std::size_t> counts(2, 0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    edgedrift::linalg::axpy(1.0, train.x.row(i),
                            means.row(train.labels[i]));
    ++counts[train.labels[i]];
  }
  for (int c = 0; c < 2; ++c) {
    for (auto& v : means.row(c)) v /= static_cast<double>(counts[c]);
  }
  const Dataset fresh = edgedrift::data::draw(generator.pre_concept(),
                                              500, rng);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const double d0 = edgedrift::linalg::squared_l2_distance(
        fresh.x.row(i), means.row(0));
    const double d1 = edgedrift::linalg::squared_l2_distance(
        fresh.x.row(i), means.row(1));
    if ((d0 < d1 ? 0 : 1) == fresh.labels[i]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / fresh.size(), 0.97);
}

TEST(NslKddLike, DriftMovesDistribution) {
  edgedrift::data::NslKddLike generator;
  Rng rng(10);
  const Dataset test = generator.test_stream(rng);
  const std::size_t drift = generator.config().drift_point;
  // Per-dimension mean displacement across the drift must be significant.
  double displacement = 0.0;
  for (std::size_t j = 0; j < test.dim(); ++j) {
    const double pre = mean_of_dim(test, 0, drift, j);
    const double post = mean_of_dim(test, drift, test.size(), j);
    displacement += std::abs(post - pre);
  }
  EXPECT_GT(displacement, 1.0);
}

TEST(FanSpectrum, HasHarmonicPeaks) {
  FanSpectrumConcept normal(FanCondition::kNormal, FanEnvironment::kSilent);
  Rng rng(11);
  std::vector<double> x(FanSpectrumConcept::kBins);
  normal.sample(rng, x);
  // Fundamental at bin 49 towers over the floor nearby.
  EXPECT_GT(x[49], 5.0 * x[40]);
  // Second harmonic at bin 99 present.
  EXPECT_GT(x[99], x[90] + 0.1);
}

TEST(FanSpectrum, DamageSignaturesDiffer) {
  Rng rng(12);
  std::vector<double> normal_spec(FanSpectrumConcept::kBins, 0.0);
  std::vector<double> holes_spec(FanSpectrumConcept::kBins, 0.0);
  std::vector<double> chipped_spec(FanSpectrumConcept::kBins, 0.0);
  std::vector<double> tmp(FanSpectrumConcept::kBins);
  FanSpectrumConcept normal(FanCondition::kNormal, FanEnvironment::kSilent);
  FanSpectrumConcept holes(FanCondition::kHoles, FanEnvironment::kSilent);
  FanSpectrumConcept chipped(FanCondition::kChipped,
                             FanEnvironment::kSilent);
  for (int i = 0; i < 50; ++i) {
    normal.sample(rng, tmp);
    for (std::size_t j = 0; j < tmp.size(); ++j) normal_spec[j] += tmp[j];
    holes.sample(rng, tmp);
    for (std::size_t j = 0; j < tmp.size(); ++j) holes_spec[j] += tmp[j];
    chipped.sample(rng, tmp);
    for (std::size_t j = 0; j < tmp.size(); ++j) chipped_spec[j] += tmp[j];
  }
  // Holes: raised blade-pass energy (bin 349) and sidebands (bin 299).
  EXPECT_GT(holes_spec[349], normal_spec[349] * 1.3);
  EXPECT_GT(holes_spec[299], normal_spec[299] * 1.5);
  // Chipped: raised fundamental (unbalance, bin 49) and sub-harmonic
  // (bin 24).
  EXPECT_GT(chipped_spec[49], normal_spec[49] * 1.5);
  EXPECT_GT(chipped_spec[24], normal_spec[24] * 1.5);
}

TEST(FanSpectrum, NoisyEnvironmentRaisesFloor) {
  Rng rng(13);
  FanSpectrumConcept silent(FanCondition::kNormal, FanEnvironment::kSilent);
  FanSpectrumConcept noisy(FanCondition::kNormal, FanEnvironment::kNoisy);
  std::vector<double> x(FanSpectrumConcept::kBins);
  double silent_floor = 0.0, noisy_floor = 0.0;
  for (int i = 0; i < 20; ++i) {
    silent.sample(rng, x);
    silent_floor += x[160];  // A bin away from every peak and shoulder.
    noisy.sample(rng, x);
    noisy_floor += x[160];
  }
  EXPECT_GT(noisy_floor, silent_floor * 2.0);
}

TEST(CoolingFanLike, StreamSchedulesMatchPaper) {
  CoolingFanLike generator;
  Rng rng(14);
  EXPECT_EQ(generator.config().drift_point, 120u);
  EXPECT_EQ(generator.config().gradual_end, 600u);
  EXPECT_EQ(generator.config().reoccur_end, 170u);
  const auto sudden = generator.sudden_stream(rng);
  const auto gradual = generator.gradual_stream(rng);
  const auto reoccur = generator.reoccurring_stream(rng);
  EXPECT_EQ(sudden.size(), 700u);
  EXPECT_EQ(gradual.size(), 700u);
  EXPECT_EQ(reoccur.size(), 700u);
  EXPECT_EQ(sudden.dim(), 511u);
}

TEST(CoolingFanLike, SuddenStreamChangesAtDriftPoint) {
  CoolingFanLike generator;
  Rng rng(15);
  const auto sudden = generator.sudden_stream(rng);
  // Blade-pass sideband bin (299) energy jumps after the drift.
  const double pre = mean_of_dim(sudden, 0, 120, 299);
  const double post = mean_of_dim(sudden, 120, 700, 299);
  EXPECT_GT(post, pre * 1.5);
}

TEST(CoolingFanLike, ReoccurringStreamReturnsToNormal) {
  CoolingFanLike generator;
  Rng rng(16);
  const auto stream = generator.reoccurring_stream(rng);
  // Chipped signature (sub-harmonic bin 24) high only inside [120, 170).
  const double inside = mean_of_dim(stream, 120, 170, 24);
  const double after = mean_of_dim(stream, 200, 700, 24);
  EXPECT_GT(inside, after * 1.5);
}

TEST(Csv, RoundTripPreservesData) {
  Dataset d;
  d.push_back(std::vector<double>{1.5, -2.25}, 0);
  d.push_back(std::vector<double>{0.0, 3.75}, 1);
  const std::string path = "/tmp/edgedrift_csv_test.csv";
  ASSERT_TRUE(edgedrift::data::save_csv(path, d));

  edgedrift::data::CsvOptions options;
  options.label_column = -2;  // Last column.
  const auto loaded = edgedrift::data::load_csv(path, options);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->dim(), 2u);
  EXPECT_DOUBLE_EQ(loaded->x(0, 1), -2.25);
  EXPECT_EQ(loaded->labels[1], 1);
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileReturnsNullopt) {
  EXPECT_FALSE(
      edgedrift::data::load_csv("/tmp/definitely_missing_edgedrift.csv")
          .has_value());
}

TEST(Csv, HeaderIsSkipped) {
  const std::string path = "/tmp/edgedrift_csv_header.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("a,b\n1.0,2.0\n", f);
    fclose(f);
  }
  edgedrift::data::CsvOptions options;
  options.has_header = true;
  const auto loaded = edgedrift::data::load_csv(path, options);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 1u);
  std::filesystem::remove(path);
}

TEST(MinMaxScaler, MapsFitRangeToUnitInterval) {
  Matrix x{{0.0, 10.0}, {5.0, 20.0}, {10.0, 30.0}};
  edgedrift::data::MinMaxScaler scaler;
  scaler.fit(x);
  std::vector<double> sample{5.0, 30.0};
  scaler.transform(sample);
  EXPECT_DOUBLE_EQ(sample[0], 0.5);
  EXPECT_DOUBLE_EQ(sample[1], 1.0);
}

TEST(MinMaxScaler, ClampLimitsOutOfRange) {
  Matrix x{{0.0}, {10.0}};
  edgedrift::data::MinMaxScaler scaler;
  scaler.clamp = true;
  scaler.fit(x);
  std::vector<double> sample{20.0};
  scaler.transform(sample);
  EXPECT_DOUBLE_EQ(sample[0], 1.0);
}

TEST(MinMaxScaler, ConstantDimensionMapsToZero) {
  Matrix x{{3.0}, {3.0}};
  edgedrift::data::MinMaxScaler scaler;
  scaler.fit(x);
  std::vector<double> sample{3.0};
  scaler.transform(sample);
  EXPECT_DOUBLE_EQ(sample[0], 0.0);
}

TEST(ZScoreScaler, StandardizesFitData) {
  Rng rng(17);
  Matrix x(500, 2);
  for (std::size_t i = 0; i < 500; ++i) {
    x(i, 0) = rng.gaussian(5.0, 2.0);
    x(i, 1) = rng.gaussian(-3.0, 0.5);
  }
  edgedrift::data::ZScoreScaler scaler;
  scaler.fit(x);
  Dataset d;
  d.x = x;
  d.labels.assign(500, 0);
  scaler.transform(d);
  EXPECT_NEAR(mean_of_dim(d, 0, 500, 0), 0.0, 1e-9);
  EXPECT_NEAR(mean_of_dim(d, 0, 500, 1), 0.0, 1e-9);
}

}  // namespace
