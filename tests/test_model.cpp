// Tests for the multi-instance discriminative model (paper Section 3.1):
// per-label OS-ELM autoencoders with argmin-score prediction.
#include <gtest/gtest.h>

#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/util/rng.hpp"

namespace {

using edgedrift::linalg::Matrix;
using edgedrift::model::MultiInstanceModel;
using edgedrift::model::Prediction;
using edgedrift::oselm::Activation;
using edgedrift::oselm::make_projection;
using edgedrift::util::Rng;

// Two Gaussian classes in 6-D around distinct anchors.
struct TwoClassData {
  Matrix x;
  std::vector<int> labels;
};

TwoClassData make_two_class(Rng& rng, std::size_t per_class,
                            double separation = 2.0, double noise = 0.15) {
  TwoClassData data;
  data.x.resize_zero(2 * per_class, 6);
  data.labels.resize(2 * per_class);
  for (std::size_t i = 0; i < 2 * per_class; ++i) {
    const int label = i < per_class ? 0 : 1;
    data.labels[i] = label;
    for (std::size_t j = 0; j < 6; ++j) {
      const double center =
          label == 0 ? 0.3 : 0.3 + separation * (j % 2 == 0 ? 0.3 : -0.2);
      data.x(i, j) = rng.gaussian(center, noise);
    }
  }
  return data;
}

MultiInstanceModel make_model(Rng& rng, std::size_t num_labels = 2,
                              double forgetting = 1.0) {
  auto proj = make_projection(6, 14, Activation::kSigmoid, rng);
  return MultiInstanceModel(num_labels, proj, 1e-2, forgetting);
}

TEST(MultiInstanceModel, PredictsTrainingLabels) {
  Rng rng(1);
  auto data = make_two_class(rng, 150);
  auto model = make_model(rng);
  model.init_train(data.x, data.labels);

  std::size_t hits = 0;
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    const Prediction pred = model.predict(data.x.row(i));
    if (static_cast<int>(pred.label) == data.labels[i]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / data.x.rows(), 0.95);
}

TEST(MultiInstanceModel, GeneralizesToHeldOutSamples) {
  Rng rng(2);
  auto train = make_two_class(rng, 150);
  auto test = make_two_class(rng, 50);
  auto model = make_model(rng);
  model.init_train(train.x, train.labels);

  std::size_t hits = 0;
  for (std::size_t i = 0; i < test.x.rows(); ++i) {
    if (static_cast<int>(model.predict(test.x.row(i)).label) ==
        test.labels[i]) {
      ++hits;
    }
  }
  EXPECT_GT(static_cast<double>(hits) / test.x.rows(), 0.9);
}

TEST(MultiInstanceModel, ScoreOfMatchesScoresVector) {
  Rng rng(3);
  auto data = make_two_class(rng, 60);
  auto model = make_model(rng);
  model.init_train(data.x, data.labels);

  std::vector<double> scores(2);
  model.scores(data.x.row(0), scores);
  EXPECT_DOUBLE_EQ(scores[0], model.score_of(data.x.row(0), 0));
  EXPECT_DOUBLE_EQ(scores[1], model.score_of(data.x.row(0), 1));
}

TEST(MultiInstanceModel, PredictionScoreIsMinimum) {
  Rng rng(4);
  auto data = make_two_class(rng, 60);
  auto model = make_model(rng);
  model.init_train(data.x, data.labels);

  const Prediction pred = model.predict(data.x.row(5));
  std::vector<double> scores(2);
  model.scores(data.x.row(5), scores);
  EXPECT_DOUBLE_EQ(pred.score, std::min(scores[0], scores[1]));
}

TEST(MultiInstanceModel, TrainClosestUpdatesWinningInstance) {
  Rng rng(5);
  auto data = make_two_class(rng, 80);
  auto model = make_model(rng);
  model.init_train(data.x, data.labels);

  const auto seen_before_0 = model.instance(0).samples_seen();
  const auto seen_before_1 = model.instance(1).samples_seen();
  const Prediction pred = model.train_closest(data.x.row(0));
  if (pred.label == 0) {
    EXPECT_EQ(model.instance(0).samples_seen(), seen_before_0 + 1);
    EXPECT_EQ(model.instance(1).samples_seen(), seen_before_1);
  } else {
    EXPECT_EQ(model.instance(1).samples_seen(), seen_before_1 + 1);
  }
}

TEST(MultiInstanceModel, TrainLabelTargetsSpecificInstance) {
  Rng rng(6);
  auto model = make_model(rng);
  model.init_sequential();
  std::vector<double> x{0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  model.train_label(x, 1);
  EXPECT_EQ(model.instance(0).samples_seen(), 0u);
  EXPECT_EQ(model.instance(1).samples_seen(), 1u);
}

TEST(MultiInstanceModel, InitSequentialGivesUniformScores) {
  Rng rng(7);
  auto model = make_model(rng);
  model.init_sequential();
  // Zero beta everywhere: both instances give identical MSE = mean(x^2).
  std::vector<double> x{0.5, 0.5, 0.5, 0.5, 0.5, 0.5};
  std::vector<double> scores(2);
  model.scores(x, scores);
  EXPECT_DOUBLE_EQ(scores[0], scores[1]);
  EXPECT_DOUBLE_EQ(scores[0], 0.25);
}

TEST(MultiInstanceModel, ResetRestoresSequentialPrior) {
  Rng rng(8);
  auto data = make_two_class(rng, 60);
  auto model = make_model(rng);
  model.init_train(data.x, data.labels);
  model.reset();
  EXPECT_EQ(model.instance(0).samples_seen(), 0u);
  EXPECT_EQ(model.instance(1).samples_seen(), 0u);
}

TEST(MultiInstanceModel, PermutationSwapsInstances) {
  Rng rng(9);
  auto data = make_two_class(rng, 100);
  auto model = make_model(rng);
  model.init_train(data.x, data.labels);

  const Prediction before = model.predict(data.x.row(0));
  const std::vector<std::size_t> perm{1, 0};
  model.apply_permutation(perm);
  const Prediction after = model.predict(data.x.row(0));
  EXPECT_EQ(after.label, 1 - before.label);
  EXPECT_DOUBLE_EQ(after.score, before.score);
}

TEST(MultiInstanceModel, SharedProjectionCountedOnceInMemory) {
  Rng rng(10);
  auto proj = make_projection(6, 14, Activation::kSigmoid, rng);
  MultiInstanceModel two(2, proj, 1e-2);
  MultiInstanceModel four(4, proj, 1e-2);
  const std::size_t proj_bytes = proj->memory_bytes();
  const std::size_t per_instance =
      (two.memory_bytes() - proj_bytes) / 2;
  // Four instances ~ projection + 4x instance state (scratch differs by a
  // few vector capacities; allow 2 kB slack).
  EXPECT_NEAR(static_cast<double>(four.memory_bytes()),
              static_cast<double>(proj_bytes + 4 * per_instance), 2048.0);
}

TEST(MultiInstanceModel, SingleLabelModelWorks) {
  Rng rng(11);
  auto proj = make_projection(6, 10, Activation::kSigmoid, rng);
  MultiInstanceModel model(1, proj, 1e-2);
  Matrix x(40, 6);
  std::vector<int> labels(40, 0);
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 6; ++j) x(i, j) = rng.uniform(0.0, 1.0);
  }
  model.init_train(x, labels);
  const Prediction pred = model.predict(x.row(0));
  EXPECT_EQ(pred.label, 0u);
  EXPECT_GE(pred.score, 0.0);
}

}  // namespace
