// Locks in the allocation-free steady state of Pipeline::process(): after
// fit() and a short warm-up (grow-only workspaces reach their high-water
// mark), processing a sample performs ZERO heap allocations. This is the
// on-device property the kernel-workspace plumbing exists for — a
// Pico-class target cannot afford a malloc per sample, and a regression
// here silently reintroduces one.
//
// Mechanism: counting replacements of the global operator new/delete,
// enabled only around the measured loop. The dimensions are chosen ABOVE
// the stack-buffer thresholds of the convenience overloads (256 doubles in
// OsElm::predict / Autoencoder::score), so the test fails if the pipeline
// ever falls back from its KernelWorkspace to those heap-fallback paths.
//
// Sanitizer builds replace the allocator themselves; the hooks would fight
// them, so the whole counting apparatus is compiled out and the test skips.
#include <gtest/gtest.h>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define EDGEDRIFT_ALLOC_HOOKS_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define EDGEDRIFT_ALLOC_HOOKS_DISABLED 1
#endif
#endif

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/core/pipeline_manager.hpp"
#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/linalg/workspace.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/obs/stream_obs.hpp"
#include "edgedrift/util/rng.hpp"

#if !defined(EDGEDRIFT_ALLOC_HOOKS_DISABLED)

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

// Global replacements: every new in the test binary funnels through
// counted_alloc; deletes must therefore free() unconditionally.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // !EDGEDRIFT_ALLOC_HOOKS_DISABLED

namespace {

using edgedrift::core::Pipeline;
using edgedrift::core::PipelineConfig;
using edgedrift::linalg::Matrix;
using edgedrift::util::Rng;

TEST(AllocationFree, SteadyStateProcessDoesNotAllocate) {
#if defined(EDGEDRIFT_ALLOC_HOOKS_DISABLED)
  GTEST_SKIP() << "allocation hooks disabled under sanitizers";
#else
  // Dimensions above the 256-double stack thresholds of the convenience
  // overloads: the workspace plumbing, not the stack buffers, must carry
  // the hot path.
  constexpr std::size_t kDim = 300;
  constexpr std::size_t kHidden = 280;
  constexpr std::size_t kTrainRows = 200;

  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = kDim;
  config.hidden_dim = kHidden;

  Rng rng(7);
  Matrix train(kTrainRows, kDim);
  std::vector<int> labels(kTrainRows);
  for (std::size_t i = 0; i < kTrainRows; ++i) {
    labels[i] = static_cast<int>(i % 2);
    const double mean = labels[i] == 0 ? 0.2 : 1.2;
    for (std::size_t j = 0; j < kDim; ++j) {
      train(i, j) = rng.gaussian(mean, 0.2);
    }
  }

  Pipeline pipeline(config);
  pipeline.fit(train, labels);

  // Stationary stream, materialized before counting starts.
  constexpr std::size_t kWarmup = 300;
  constexpr std::size_t kMeasured = 200;
  Matrix stream(kWarmup + kMeasured, kDim);
  for (std::size_t i = 0; i < stream.rows(); ++i) {
    const double mean = i % 2 == 0 ? 0.2 : 1.2;
    for (std::size_t j = 0; j < kDim; ++j) {
      stream(i, j) = rng.gaussian(mean, 0.2);
    }
  }

  // Warm-up: grow-only workspaces reach their steady-state capacity.
  for (std::size_t i = 0; i < kWarmup; ++i) {
    pipeline.process(stream.row(i));
  }
  ASSERT_FALSE(pipeline.recovering())
      << "stationary stream should not trigger a recovery";

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (std::size_t i = kWarmup; i < kWarmup + kMeasured; ++i) {
    pipeline.process(stream.row(i));
  }
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "steady-state process() must not touch the heap";
#endif
}

TEST(AllocationFree, SteadyStateBatchScoringDoesNotAllocate) {
#if defined(EDGEDRIFT_ALLOC_HOOKS_DISABLED)
  GTEST_SKIP() << "allocation hooks disabled under sanitizers";
#else
  // The fused batch path: one [rows x C*n] GEMM into a grow-only
  // BatchWorkspace. Dimensions keep the GEMMs below the thread-pool
  // dispatch threshold (~1M madds) — the pool's task plumbing allocates,
  // so the inline kernel must carry batches of this size.
  constexpr std::size_t kDim = 48;
  constexpr std::size_t kHidden = 40;
  constexpr std::size_t kLabels = 3;
  constexpr std::size_t kRows = 64;

  Rng rng(11);
  auto projection = edgedrift::oselm::make_projection(
      kDim, kHidden, edgedrift::oselm::Activation::kSigmoid, rng);
  edgedrift::model::MultiInstanceModel model(kLabels, projection, 1e-2);
  Matrix train(kLabels * 50, kDim);
  std::vector<int> labels(train.rows());
  for (std::size_t i = 0; i < train.rows(); ++i) {
    labels[i] = static_cast<int>(i % kLabels);
    for (std::size_t j = 0; j < kDim; ++j) {
      train(i, j) = rng.gaussian(0.3 * static_cast<double>(labels[i]), 0.2);
    }
  }
  model.init_train(train, labels);

  Matrix batch(kRows, kDim);
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) {
      batch(i, j) = rng.gaussian(0.3, 0.2);
    }
  }
  const Matrix small_batch = batch.slice_rows(0, kRows / 4);
  std::vector<edgedrift::model::Prediction> preds(kRows);

  edgedrift::model::BatchWorkspace ws;
  ws.reserve(kRows, kDim, kHidden, kLabels);

  // Warm-up one full-size call (the GEMM packing scratch is thread_local
  // and grow-only, outside the workspace).
  model.predict_batch(batch, ws, preds);

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    // Alternate batch shapes: resize_zero within the high-water capacity
    // must never reallocate.
    model.score_batch(batch, ws);
    model.score_batch(small_batch, ws);
    model.predict_batch(batch, ws, {preds.data(), kRows});
  }
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "steady-state batch scoring must not touch the heap";
#endif
}

TEST(AllocationFree, SteadyStateFusedTrainClosestDoesNotAllocate) {
#if defined(EDGEDRIFT_ALLOC_HOOKS_DISABLED)
  GTEST_SKIP() << "allocation hooks disabled under sanitizers";
#else
  // The fused predict-then-train step: shared hidden projection, packed
  // matvec, Sherman–Morrison update, ger_block mirror replay — all against
  // caller-owned or instance-owned grow-only scratch.
  constexpr std::size_t kDim = 300;
  constexpr std::size_t kHidden = 280;
  constexpr std::size_t kLabels = 2;

  Rng rng(13);
  auto projection = edgedrift::oselm::make_projection(
      kDim, kHidden, edgedrift::oselm::Activation::kSigmoid, rng);
  edgedrift::model::MultiInstanceModel model(kLabels, projection, 1e-2);
  Matrix train(kLabels * 60, kDim);
  std::vector<int> labels(train.rows());
  for (std::size_t i = 0; i < train.rows(); ++i) {
    labels[i] = static_cast<int>(i % kLabels);
    for (std::size_t j = 0; j < kDim; ++j) {
      train(i, j) = rng.gaussian(labels[i] == 0 ? 0.2 : 1.2, 0.2);
    }
  }
  model.init_train(train, labels);

  Matrix stream(80, kDim);
  for (std::size_t i = 0; i < stream.rows(); ++i) {
    for (std::size_t j = 0; j < kDim; ++j) {
      stream(i, j) = rng.gaussian(i % 2 == 0 ? 0.2 : 1.2, 0.2);
    }
  }

  edgedrift::linalg::KernelWorkspace ws;
  for (std::size_t i = 0; i < 20; ++i) {
    model.train_closest(stream.row(i), ws);
  }

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (std::size_t i = 20; i < stream.rows(); ++i) {
    model.train_closest(stream.row(i), ws);
  }
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "steady-state fused train_closest() must not touch the heap";
#endif
}

TEST(AllocationFree, ChunkedRecoveryTrainingDoesNotAllocate) {
#if defined(EDGEDRIFT_ALLOC_HOOKS_DISABLED)
  GTEST_SKIP() << "allocation hooks disabled under sanitizers";
#else
  // The chunked rank-k training path: with train_chunk > 1, fit() pre-grows
  // the Woodbury workspaces, per-instance block scratch and bucket gather
  // buffers, so a batched drain consuming recovery training samples in
  // chunks — winner bucketing, block P/beta updates, packed-block repack —
  // performs zero heap allocations once warm.
  constexpr std::size_t kDim = 48;
  constexpr std::size_t kHidden = 22;
  constexpr std::size_t kBurst = 8;

  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = kDim;
  config.hidden_dim = kHidden;
  config.window_size = 40;
  config.detector_initial_count = 0;
  config.reconstruction.n_search = 20;
  config.reconstruction.n_update = 100;
  config.reconstruction.n_total = 400;
  config.train_chunk = kBurst;

  Rng rng(23);
  Matrix train(200, kDim);
  std::vector<int> labels(train.rows());
  for (std::size_t i = 0; i < train.rows(); ++i) {
    labels[i] = static_cast<int>(i % 2);
    const double mean = labels[i] == 0 ? 0.2 : 1.2;
    for (std::size_t j = 0; j < kDim; ++j) {
      train(i, j) = rng.gaussian(mean, 0.2);
    }
  }
  Pipeline pipeline(config);
  pipeline.fit(train, labels);

  // A drifted stream: the same two classes shifted on the even dimensions,
  // enough rows to detect, cross the coordinate phases and train chunked.
  Matrix post(600, kDim);
  for (std::size_t i = 0; i < post.rows(); ++i) {
    const double mean = i % 2 == 0 ? 0.2 : 1.2;
    for (std::size_t j = 0; j < kDim; ++j) {
      post(i, j) = rng.gaussian(mean + (j % 2 == 0 ? 0.9 : 0.0), 0.2);
    }
  }

  std::vector<edgedrift::core::PipelineStep> out;
  out.reserve(2 * kBurst);
  std::size_t at = 0;
  const auto feed = [&] {
    out.clear();
    pipeline.process_batch_range(post, at, at + kBurst, {}, out);
    at += kBurst;
  };

  // Detect, then warm through the per-sample coordinate phases and the
  // first few chunked training calls (grow-only buffers reach their
  // high-water marks; the pre-growth in fit() is what keeps this short).
  while (!pipeline.recovering() && at + kBurst <= post.rows()) feed();
  ASSERT_TRUE(pipeline.reconstructing()) << "drift must trigger a recovery";
  const std::size_t n_update = config.reconstruction.n_update;
  while (pipeline.reconstructor().count() < n_update + 3 * kBurst &&
         at + kBurst <= post.rows()) {
    feed();
  }
  ASSERT_GE(pipeline.reconstructor().count(), n_update + 3 * kBurst);

  // Measure strictly inside the chunk-trained retraining window (well
  // short of the n_total/2 phase boundary).
  constexpr std::size_t kMeasuredBursts = 5;
  ASSERT_LT(pipeline.reconstructor().count() + kMeasuredBursts * kBurst,
            config.reconstruction.n_total / 2);
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (std::size_t b = 0; b < kMeasuredBursts; ++b) feed();
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "chunked recovery training must not touch the heap";
  ASSERT_TRUE(pipeline.reconstructing())
      << "the measured window must lie inside the recovery";
#endif
}

TEST(AllocationFree, SteadyStateManagerSubmitDrainDoesNotAllocate) {
#if defined(EDGEDRIFT_ALLOC_HOOKS_DISABLED)
  GTEST_SKIP() << "allocation hooks disabled under sanitizers";
#else
  // The serving path: submit_batch() copies rows into the preallocated ring
  // slab, the drain feeds contiguous slab ranges straight through
  // process_batch_range(), and take_steps(out) recycles both step buffers.
  // Manual dispatch keeps the whole loop on this thread — the shard
  // workers' Treiber ready-stack nodes live inside the Stream structs, but
  // handing off to another thread would make the allocation count racy, so
  // the bound is measured single-threaded. Observability recording (counters,
  // submit->drain timestamps, sampled stage latencies) stays enabled
  // throughout, so the zero-allocation bound covers the instrumented path.
  constexpr std::size_t kDim = 48;
  constexpr std::size_t kHidden = 22;
  constexpr std::size_t kRows = 48;  // > drain_batch_max and wraps the ring.

  edgedrift::core::PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = kDim;
  config.hidden_dim = kHidden;

  edgedrift::core::ManagerOptions options;
  options.queue_capacity = 64;
  options.drain_batch_max = 32;
  options.dispatch = edgedrift::core::DispatchMode::kManual;

  edgedrift::core::PipelineManager manager(config, 1, options);

  Rng rng(17);
  Matrix train(200, kDim);
  std::vector<int> labels(train.rows());
  for (std::size_t i = 0; i < train.rows(); ++i) {
    labels[i] = static_cast<int>(i % 2);
    const double mean = labels[i] == 0 ? 0.2 : 1.2;
    for (std::size_t j = 0; j < kDim; ++j) {
      train(i, j) = rng.gaussian(mean, 0.2);
    }
  }
  manager.fit(0, train, labels);

  // A stationary block, reused every round (48 rows into a 64-slot ring:
  // the drain crosses the wrap boundary constantly).
  Matrix block(kRows, kDim);
  for (std::size_t i = 0; i < kRows; ++i) {
    const double mean = i % 2 == 0 ? 0.2 : 1.2;
    for (std::size_t j = 0; j < kDim; ++j) {
      block(i, j) = rng.gaussian(mean, 0.2);
    }
  }

  std::vector<edgedrift::core::PipelineStep> steps;
  steps.reserve(kRows);

  // Warm-up: ring slab is preallocated, but the pipeline's grow-only chunk
  // buffers and the steps vectors reach their high-water marks here.
  for (int round = 0; round < 3; ++round) {
    manager.submit_batch(0, block);
    manager.poll(0);
    manager.take_steps(0, steps);
    steps.clear();
  }
  ASSERT_FALSE(manager.stream(0).recovering())
      << "stationary stream should not trigger a recovery";

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    manager.submit_batch(0, block);
    manager.poll(0);
    manager.take_steps(0, steps);
    steps.clear();
  }
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "steady-state submit()/drain must not touch the heap";
  if (edgedrift::obs::kObsCompiled) {
    EXPECT_GT(manager.stream(0).obs().counters.snapshot().samples_in, 0u)
        << "the obs layer must have been live during the measured loop";
  }
#endif
}

TEST(AllocationFree, ObsRecordingDoesNotAllocate) {
#if defined(EDGEDRIFT_ALLOC_HOOKS_DISABLED)
  GTEST_SKIP() << "allocation hooks disabled under sanitizers";
#else
  if (!edgedrift::obs::kObsCompiled) {
    GTEST_SKIP() << "built with EDGEDRIFT_NO_OBS";
  }
  // Every obs recording primitive the hot path touches, hammered directly:
  // construction preallocates, then counters, histogram records and journal
  // begin/complete — including ring wraparound — stay off the heap.
  // snapshot() may allocate; it is a stats()-time operation, never hot.
  edgedrift::obs::ObsOptions options;
  options.journal_capacity = 16;
  edgedrift::obs::StreamObs obs(options, 4);
  std::vector<double> distances = {0.5, 1.5, 2.5, 3.5};

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    obs.counters.add_samples_in();
    obs.counters.add_rejected(2);
    obs.counters.update_ring_high_water(i % 97);
    obs.submit_to_drain.record(i * 13);
    obs.score.record(i * 7);
    obs.journal.begin_event(i, 1.25, 2.5, 100,
                            edgedrift::obs::RecoveryAction::kReconstruct,
                            distances);
    obs.journal.complete_event(i);
    obs.counters.add_samples_out();
  }
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "obs recording must never touch the heap";
  EXPECT_EQ(obs.counters.snapshot().samples_in, 1000u);
  EXPECT_EQ(obs.submit_to_drain.snapshot().count(), 1000u);
  EXPECT_EQ(obs.journal.total_events(), 1000u);
#endif
}

}  // namespace
