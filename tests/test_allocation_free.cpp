// Locks in the allocation-free steady state of Pipeline::process(): after
// fit() and a short warm-up (grow-only workspaces reach their high-water
// mark), processing a sample performs ZERO heap allocations. This is the
// on-device property the kernel-workspace plumbing exists for — a
// Pico-class target cannot afford a malloc per sample, and a regression
// here silently reintroduces one.
//
// Mechanism: counting replacements of the global operator new/delete,
// enabled only around the measured loop. The dimensions are chosen ABOVE
// the stack-buffer thresholds of the convenience overloads (256 doubles in
// OsElm::predict / Autoencoder::score), so the test fails if the pipeline
// ever falls back from its KernelWorkspace to those heap-fallback paths.
//
// Sanitizer builds replace the allocator themselves; the hooks would fight
// them, so the whole counting apparatus is compiled out and the test skips.
#include <gtest/gtest.h>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define EDGEDRIFT_ALLOC_HOOKS_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define EDGEDRIFT_ALLOC_HOOKS_DISABLED 1
#endif
#endif

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/util/rng.hpp"

#if !defined(EDGEDRIFT_ALLOC_HOOKS_DISABLED)

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

// Global replacements: every new in the test binary funnels through
// counted_alloc; deletes must therefore free() unconditionally.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // !EDGEDRIFT_ALLOC_HOOKS_DISABLED

namespace {

using edgedrift::core::Pipeline;
using edgedrift::core::PipelineConfig;
using edgedrift::linalg::Matrix;
using edgedrift::util::Rng;

TEST(AllocationFree, SteadyStateProcessDoesNotAllocate) {
#if defined(EDGEDRIFT_ALLOC_HOOKS_DISABLED)
  GTEST_SKIP() << "allocation hooks disabled under sanitizers";
#else
  // Dimensions above the 256-double stack thresholds of the convenience
  // overloads: the workspace plumbing, not the stack buffers, must carry
  // the hot path.
  constexpr std::size_t kDim = 300;
  constexpr std::size_t kHidden = 280;
  constexpr std::size_t kTrainRows = 200;

  PipelineConfig config;
  config.num_labels = 2;
  config.input_dim = kDim;
  config.hidden_dim = kHidden;

  Rng rng(7);
  Matrix train(kTrainRows, kDim);
  std::vector<int> labels(kTrainRows);
  for (std::size_t i = 0; i < kTrainRows; ++i) {
    labels[i] = static_cast<int>(i % 2);
    const double mean = labels[i] == 0 ? 0.2 : 1.2;
    for (std::size_t j = 0; j < kDim; ++j) {
      train(i, j) = rng.gaussian(mean, 0.2);
    }
  }

  Pipeline pipeline(config);
  pipeline.fit(train, labels);

  // Stationary stream, materialized before counting starts.
  constexpr std::size_t kWarmup = 300;
  constexpr std::size_t kMeasured = 200;
  Matrix stream(kWarmup + kMeasured, kDim);
  for (std::size_t i = 0; i < stream.rows(); ++i) {
    const double mean = i % 2 == 0 ? 0.2 : 1.2;
    for (std::size_t j = 0; j < kDim; ++j) {
      stream(i, j) = rng.gaussian(mean, 0.2);
    }
  }

  // Warm-up: grow-only workspaces reach their steady-state capacity.
  for (std::size_t i = 0; i < kWarmup; ++i) {
    pipeline.process(stream.row(i));
  }
  ASSERT_FALSE(pipeline.recovering())
      << "stationary stream should not trigger a recovery";

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (std::size_t i = kWarmup; i < kWarmup + kMeasured; ++i) {
    pipeline.process(stream.row(i));
  }
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "steady-state process() must not touch the heap";
#endif
}

}  // namespace
