// Dataset and stream primitives.
//
// Experiments in this library are materialized label-annotated datasets
// (a matrix of rows plus an int label per row) walked in order — matching
// how the paper replays NSL-KDD and the cooling-fan traces. Concept
// generators produce stationary labeled distributions; the drift composers
// in drift_stream.hpp splice generators into the four canonical drift
// shapes of the paper's Figure 1.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::util {
class Rng;
}

namespace edgedrift::data {

/// A labeled dataset; rows of `x` align with `labels`.
struct Dataset {
  linalg::Matrix x;
  std::vector<int> labels;

  std::size_t size() const { return x.rows(); }
  std::size_t dim() const { return x.cols(); }

  /// Appends all rows of `other` (same dimensionality).
  void append(const Dataset& other);

  /// Appends a single labeled row.
  void push_back(std::span<const double> row, int label);

  /// Rows in [begin, end) as a new dataset.
  Dataset slice(std::size_t begin, std::size_t end) const;
};

/// A stationary labeled data distribution.
class ConceptGenerator {
 public:
  virtual ~ConceptGenerator() = default;

  /// Feature dimensionality of generated samples.
  virtual std::size_t dim() const = 0;

  /// Number of distinct labels the concept emits.
  virtual std::size_t num_labels() const = 0;

  /// Draws one labeled sample into `x` (length dim()); returns the label.
  virtual int sample(util::Rng& rng, std::span<double> x) const = 0;
};

/// Draws `n` samples from a concept into a dataset.
Dataset draw(const ConceptGenerator& source, std::size_t n, util::Rng& rng);

}  // namespace edgedrift::data
